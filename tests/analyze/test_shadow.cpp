// The shadow-execution analyzer: it must flag the classic pathologies and
// stay quiet on healthy code.

#include <gtest/gtest.h>

#include <cmath>

#include "analyze/shadow.hpp"
#include "ir/expr.hpp"

namespace sh = fpq::shadow;
using E = fpq::ir::Expr;

namespace {

TEST(Shadow, CleanExpressionIsClean) {
  const auto e = E::add(E::mul(E::constant(3.0), E::constant(4.0)),
                        E::constant(5.0));
  const auto report = sh::analyze(e);
  EXPECT_FALSE(report.suspicious());
  EXPECT_EQ(report.double_result, 17.0);
  EXPECT_EQ(report.shadow_result, 17.0);
  EXPECT_EQ(report.relative_error, 0.0);
}

TEST(Shadow, DetectsCatastrophicCancellation) {
  // (1 + 2^-40) - 1: 40 leading bits cancel. The double result is still
  // exact here, but the cancellation itself is the suspicious pattern.
  const auto e = E::sub(E::add(E::constant(1.0), E::constant(0x1.0p-40)),
                        E::constant(1.0));
  sh::Config config;
  config.cancellation_bits_threshold = 30;
  const auto report = sh::analyze(e, config);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_NE(report.findings[0].reason.find("cancellation"),
            std::string::npos);
  EXPECT_GE(report.findings[0].cancelled_bits, 39);
}

TEST(Shadow, DetectsRealAccuracyLoss) {
  // The classic: (a + b) - a with b far below a's precision. binary64
  // returns 0; the true value is b. Relative error is 1.
  const auto a = E::constant(1e16);
  const auto e = E::sub(E::add(a, E::constant(1.0)), a);
  const auto report = sh::analyze(e);
  EXPECT_TRUE(report.suspicious());
  EXPECT_EQ(report.double_result, 0.0);
  EXPECT_EQ(report.shadow_result, 1.0);
}

TEST(Shadow, DetectsFormatInducedOverflow) {
  // 1e300 * 1e300 / 1e300: binary64 hits inf mid-expression; the true
  // value is exactly 1e300.
  const auto e = E::div(E::mul(E::constant(1e300), E::constant(1e300)),
                        E::constant(1e300));
  const auto report = sh::analyze(e);
  EXPECT_TRUE(report.suspicious());
  EXPECT_TRUE(report.double_is_exceptional);
  EXPECT_FALSE(report.shadow_is_exceptional);
  EXPECT_TRUE(report.format_induced_exception);
  EXPECT_EQ(report.shadow_result, 1e300);
}

TEST(Shadow, DetectsFormatInducedNaN) {
  // (1e300*1e300) - (1e300*1e300): inf - inf = NaN in binary64; the true
  // value is 0.
  const auto big = E::mul(E::constant(1e300), E::constant(1e300));
  const auto e = E::sub(big, big);
  const auto report = sh::analyze(e);
  EXPECT_TRUE(std::isnan(report.double_result));
  EXPECT_TRUE(report.format_induced_exception);
  EXPECT_EQ(report.shadow_result, 0.0);
}

TEST(Shadow, HonestWhenMathematicsItselfIsExceptional) {
  // 1/0 is an infinity in ANY precision: not format-induced.
  const auto e = E::div(E::constant(1.0), E::constant(0.0));
  const auto report = sh::analyze(e);
  EXPECT_TRUE(report.double_is_exceptional);
  EXPECT_TRUE(report.shadow_is_exceptional);
  EXPECT_FALSE(report.format_induced_exception);
}

TEST(Shadow, QuietOnBenignRounding) {
  // 1/3 rounds, but the relative error (~1e-17) is far below any sane
  // threshold: no findings.
  const auto e = E::div(E::constant(1.0), E::constant(3.0));
  const auto report = sh::analyze(e);
  EXPECT_FALSE(report.suspicious());
  EXPECT_LT(report.relative_error, 1e-15);
}

TEST(Shadow, ThresholdsAreConfigurable) {
  const auto e = E::div(E::constant(1.0), E::constant(3.0));
  sh::Config strict;
  strict.relative_error_threshold = 1e-20;  // flag even correct rounding
  const auto report = sh::analyze(e, strict);
  EXPECT_TRUE(report.suspicious());
}

TEST(Shadow, SqrtAndFmaShadowed) {
  const auto e = E::fma(E::constant(2.0), E::constant(3.0),
                        E::sqrt(E::constant(16.0)));
  const auto report = sh::analyze(e);
  EXPECT_EQ(report.double_result, 10.0);
  EXPECT_EQ(report.shadow_result, 10.0);
  EXPECT_FALSE(report.suspicious());
}

TEST(Shadow, FindingsSortedWorstFirst) {
  // Two suspicious spots with different severity.
  const auto a = E::constant(1e16);
  const auto cancel = E::sub(E::add(a, E::constant(1.0)), a);  // rel err 1
  const auto mild =
      E::sub(E::add(E::constant(1.0), E::constant(0x1.0p-30)),
             E::constant(1.0));  // exact but cancels
  const auto e = E::mul(cancel, mild);
  sh::Config config;
  config.cancellation_bits_threshold = 25;
  const auto report = sh::analyze(e, config);
  ASSERT_GE(report.findings.size(), 2u);
  EXPECT_GE(report.findings[0].relative_error,
            report.findings[1].relative_error);
}

TEST(Shadow, RenderMentionsVerdictAndNodes) {
  const auto a = E::constant(1e16);
  const auto e = E::sub(E::add(a, E::constant(1.0)), a);
  const auto out = sh::render(sh::analyze(e));
  EXPECT_NE(out.find("VERDICT"), std::string::npos);
  EXPECT_NE(out.find("1e+16"), std::string::npos);
}

TEST(Shadow, LorenzStyleStepMatchesAtHighPrecision) {
  // One Lorenz dy step: shadow and double agree to ~1e-16 — rounding only.
  const auto e = E::add(
      E::constant(1.0),
      E::mul(E::constant(0.01),
             E::sub(E::mul(E::constant(1.0),
                           E::sub(E::constant(28.0), E::constant(1.0))),
                    E::constant(1.0))));
  const auto report = sh::analyze(e);
  EXPECT_FALSE(report.suspicious());
  EXPECT_NEAR(report.double_result, 1.26, 1e-12);
}

}  // namespace
