#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "report/csv.hpp"

namespace rp = fpq::report;

namespace {

TEST(Csv, EscapePlainFieldUnchanged) {
  EXPECT_EQ(rp::csv_escape("hello"), "hello");
  EXPECT_EQ(rp::csv_escape(""), "");
}

TEST(Csv, EscapeQuotesCommasNewlines) {
  EXPECT_EQ(rp::csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(rp::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(rp::csv_escape("line1\nline2"), "\"line1\nline2\"");
}

TEST(Csv, JoinAndSplitRoundTrip) {
  const std::vector<std::string> fields{"plain", "with,comma", "with\"quote",
                                        "", "multi\nline"};
  const std::string line = rp::csv_join(fields);
  std::vector<std::string> parsed;
  ASSERT_TRUE(rp::csv_split(line, parsed));
  EXPECT_EQ(parsed, fields);
}

TEST(Csv, SplitSimpleLine) {
  std::vector<std::string> fields;
  ASSERT_TRUE(rp::csv_split("a,b,c", fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Csv, SplitEmptyFields) {
  std::vector<std::string> fields;
  ASSERT_TRUE(rp::csv_split(",,", fields));
  EXPECT_EQ(fields.size(), 3u);
  for (const auto& f : fields) EXPECT_TRUE(f.empty());
}

TEST(Csv, SplitRejectsUnbalancedQuote) {
  std::vector<std::string> fields;
  EXPECT_FALSE(rp::csv_split("\"unterminated", fields));
}

TEST(Csv, WriterCountsRows) {
  std::ostringstream out;
  rp::CsvWriter w(out);
  w.write_row({"h1", "h2"});
  w.write_row({"1", "2"});
  EXPECT_EQ(w.rows_written(), 2u);
  EXPECT_EQ(out.str(), "h1,h2\n1,2\n");
}

}  // namespace
