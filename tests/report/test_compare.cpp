#include <gtest/gtest.h>

#include <vector>

#include "report/compare.hpp"

namespace rp = fpq::report;

namespace {

TEST(Compare, SummaryCountsWithinTolerance) {
  const std::vector<rp::ComparisonRow> rows{
      {"mean score", 8.5, 8.6, 0.5},
      {"chance", 7.5, 7.5, 0.1},
      {"way off", 1.0, 3.0, 0.5},
  };
  const auto s = rp::summarize_comparison(rows);
  EXPECT_EQ(s.total, 3u);
  EXPECT_EQ(s.within_tolerance, 2u);
  EXPECT_FALSE(s.all_within());
  EXPECT_DOUBLE_EQ(s.max_abs_deviation, 2.0);
}

TEST(Compare, AllWithin) {
  const std::vector<rp::ComparisonRow> rows{{"x", 1.0, 1.0, 0.0}};
  EXPECT_TRUE(rp::summarize_comparison(rows).all_within());
}

TEST(Compare, RenderMarksVerdicts) {
  const std::vector<rp::ComparisonRow> rows{
      {"good", 10.0, 10.1, 0.5},
      {"bad", 10.0, 15.0, 0.5},
  };
  const std::string out = rp::render_comparison("Figure 12", rows, 1);
  EXPECT_NE(out.find("Figure 12"), std::string::npos);
  EXPECT_NE(out.find("OK"), std::string::npos);
  EXPECT_NE(out.find("DEVIATES"), std::string::npos);
  EXPECT_NE(out.find("summary: 1/2 within tolerance"), std::string::npos);
}

TEST(Compare, EmptyBlockRenders) {
  const std::vector<rp::ComparisonRow> rows;
  const std::string out = rp::render_comparison("Empty", rows, 2);
  EXPECT_NE(out.find("summary: 0/0"), std::string::npos);
}

}  // namespace
