#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "report/barchart.hpp"

namespace rp = fpq::report;

namespace {

TEST(BarChart, ScalesToMaxWidth) {
  const std::vector<rp::Bar> bars{{"a", 10.0}, {"b", 5.0}, {"c", 0.0}};
  rp::BarChartOptions opts;
  opts.max_width = 20;
  const std::string out = rp::bar_chart(bars, opts);
  EXPECT_NE(out.find(std::string(20, '#')), std::string::npos)
      << "largest bar uses full width";
  EXPECT_NE(out.find(std::string(10, '#')), std::string::npos);
  EXPECT_NE(out.find("c"), std::string::npos) << "zero bar still listed";
}

TEST(BarChart, ReferenceAnnotation) {
  const std::vector<rp::Bar> bars{{"score", 8.5}};
  rp::BarChartOptions opts;
  opts.reference = 7.5;
  opts.show_reference = true;
  const std::string out = rp::bar_chart(bars, opts);
  EXPECT_NE(out.find("+1.0"), std::string::npos);
  EXPECT_NE(out.find("ref 7.5"), std::string::npos);
}

TEST(BarChart, LabelsAligned) {
  const std::vector<rp::Bar> bars{{"x", 1.0}, {"much-longer", 2.0}};
  rp::BarChartOptions opts;
  const std::string out = rp::bar_chart(bars, opts);
  const auto first_bar = out.find('|');
  const auto second_line = out.find('\n') + 1;
  const auto second_bar = out.find('|', second_line) - second_line;
  EXPECT_EQ(first_bar, second_bar) << out;
}

TEST(IntHistogramChart, OneBarPerValue) {
  fpq::stats::IntHistogram h(0, 3);
  h.add(1);
  h.add(1);
  h.add(3);
  const std::string out = rp::int_histogram_chart(h, 10);
  // 4 lines: values 0..3.
  std::size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(out.find("##########"), std::string::npos);
}

TEST(GroupedSeries, RendersMatrix) {
  const std::vector<std::string> x{"1", "2", "3", "4", "5"};
  const std::vector<rp::GroupedSeries> series{
      {"Overflow", {10.0, 20.0, 30.0, 25.0, 15.0}},
      {"Invalid", {5.0, 5.0, 10.0, 20.0, 60.0}},
  };
  const std::string out = rp::grouped_series_chart(x, series, 1);
  EXPECT_NE(out.find("Overflow"), std::string::npos);
  EXPECT_NE(out.find("Invalid"), std::string::npos);
  EXPECT_NE(out.find("60.0"), std::string::npos);
}

}  // namespace
