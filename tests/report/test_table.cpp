#include <gtest/gtest.h>

#include "report/table.hpp"

namespace rp = fpq::report;

namespace {

TEST(Table, RendersHeaderAndRows) {
  rp::Table t({"Position", "n", "%"});
  t.add_row({"Ph.D. student", "73", "36.7"});
  t.add_row({"Faculty", "49", "24.6"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Position"), std::string::npos);
  EXPECT_NE(out.find("Ph.D. student"), std::string::npos);
  EXPECT_NE(out.find("36.7"), std::string::npos);
  // Three rule lines: top, under header, bottom.
  std::size_t rules = 0;
  std::size_t start = 0;
  while (start < out.size()) {
    if (out[start] == '+') ++rules;
    const std::size_t end = out.find('\n', start);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  EXPECT_EQ(rules, 3u);
}

TEST(Table, ColumnsAlignAcrossRows) {
  rp::Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "100"});
  const std::string out = t.render();
  // Every line must have equal length.
  std::size_t line_len = std::string::npos;
  std::size_t start = 0;
  while (start < out.size()) {
    const std::size_t end = out.find('\n', start);
    const std::size_t len = end - start;
    if (line_len == std::string::npos) line_len = len;
    EXPECT_EQ(len, line_len);
    start = end + 1;
  }
}

TEST(Table, NumericFormatting) {
  EXPECT_EQ(rp::Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(rp::Table::fmt(3.0, 1), "3.0");
  EXPECT_EQ(rp::Table::fmt(-0.5, 1), "-0.5");
  EXPECT_EQ(rp::Table::fmt(std::size_t{42}), "42");
  EXPECT_EQ(rp::Table::fmt(-7), "-7");
  EXPECT_EQ(rp::Table::percent(0.367, 1), "36.7");
  EXPECT_EQ(rp::Table::percent(1.0, 0), "100");
}

TEST(Table, RowAndColumnCounts) {
  rp::Table t({"a", "b"});
  EXPECT_EQ(t.column_count(), 2u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, LeftAlignmentPadsRight) {
  rp::Table t({"label", "n"});
  t.add_row({"ab", "1"});
  t.add_row({"abcdef", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| ab     |"), std::string::npos)
      << "first column is left-aligned by default:\n"
      << out;
}

TEST(Section, TitleUnderlined) {
  const std::string out = rp::section("Figure 1", "body\n");
  EXPECT_NE(out.find("Figure 1\n========\n"), std::string::npos);
}

}  // namespace
