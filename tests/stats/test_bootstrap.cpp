#include <gtest/gtest.h>

#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/prng.hpp"

namespace st = fpq::stats;

namespace {

TEST(Bootstrap, MeanIntervalContainsTruthForNormalData) {
  st::Xoshiro256pp gen(31);
  std::vector<double> data(500);
  for (auto& x : data) x = st::normal(gen, 5.0, 2.0);
  st::Xoshiro256pp boot(32);
  const auto ci = st::bootstrap_mean(data, 2000, 0.95, boot);
  EXPECT_NEAR(ci.estimate, 5.0, 0.3);
  EXPECT_LT(ci.lower, ci.estimate);
  EXPECT_GT(ci.upper, ci.estimate);
  EXPECT_LT(ci.lower, 5.0);
  EXPECT_GT(ci.upper, 5.0);
  EXPECT_EQ(ci.confidence, 0.95);
}

TEST(Bootstrap, IntervalNarrowsWithSampleSize) {
  st::Xoshiro256pp gen(41);
  std::vector<double> small(50), large(5000);
  for (auto& x : small) x = st::normal(gen, 0.0, 1.0);
  for (auto& x : large) x = st::normal(gen, 0.0, 1.0);
  st::Xoshiro256pp b1(42), b2(43);
  const auto ci_small = st::bootstrap_mean(small, 1000, 0.95, b1);
  const auto ci_large = st::bootstrap_mean(large, 1000, 0.95, b2);
  EXPECT_LT(ci_large.upper - ci_large.lower,
            ci_small.upper - ci_small.lower);
}

TEST(Bootstrap, DegenerateDataGivesPointInterval) {
  const std::vector<double> data(100, 3.25);
  st::Xoshiro256pp boot(44);
  const auto ci = st::bootstrap_mean(data, 500, 0.9, boot);
  EXPECT_EQ(ci.estimate, 3.25);
  EXPECT_EQ(ci.lower, 3.25);
  EXPECT_EQ(ci.upper, 3.25);
}

TEST(Bootstrap, ArbitraryStatistic) {
  st::Xoshiro256pp gen(51);
  std::vector<double> data(400);
  for (auto& x : data) x = st::uniform_range(gen, 0.0, 10.0);
  st::Xoshiro256pp boot(52);
  const auto ci = st::bootstrap_interval(
      data, [](std::span<const double> xs) { return st::median(xs); }, 1000,
      0.95, boot);
  EXPECT_NEAR(ci.estimate, 5.0, 0.8);
  EXPECT_LE(ci.lower, ci.estimate);
  EXPECT_GE(ci.upper, ci.estimate);
}

TEST(Bootstrap, DeterministicUnderSeed) {
  st::Xoshiro256pp gen(61);
  std::vector<double> data(100);
  for (auto& x : data) x = st::standard_normal(gen);
  st::Xoshiro256pp b1(62), b2(62);
  const auto c1 = st::bootstrap_mean(data, 500, 0.95, b1);
  const auto c2 = st::bootstrap_mean(data, 500, 0.95, b2);
  EXPECT_EQ(c1.lower, c2.lower);
  EXPECT_EQ(c1.upper, c2.upper);
}

}  // namespace
