#include <gtest/gtest.h>

#include "stats/likert.hpp"
#include "stats/prng.hpp"

namespace st = fpq::stats;

namespace {

TEST(Likert, DefaultIsUniform) {
  const st::LikertDistribution d;
  for (int level = 1; level <= 5; ++level) {
    EXPECT_DOUBLE_EQ(d.proportion(level), 0.2);
  }
  EXPECT_DOUBLE_EQ(d.mean_level(), 3.0);
}

TEST(Likert, NormalizesWeights) {
  const st::LikertDistribution d({1.0, 1.0, 1.0, 1.0, 6.0});
  EXPECT_DOUBLE_EQ(d.proportion(5), 0.6);
  EXPECT_DOUBLE_EQ(d.proportion(1), 0.1);
  EXPECT_DOUBLE_EQ(d.percent(5), 60.0);
}

TEST(Likert, FromCounts) {
  const auto d = st::LikertDistribution::from_counts({10, 0, 0, 0, 30});
  EXPECT_DOUBLE_EQ(d.proportion(1), 0.25);
  EXPECT_DOUBLE_EQ(d.proportion(5), 0.75);
  EXPECT_DOUBLE_EQ(d.mean_level(), 0.25 * 1 + 0.75 * 5);
}

TEST(Likert, ProportionBelowMax) {
  const st::LikertDistribution d({0.0, 0.0, 0.0, 1.0, 2.0});
  EXPECT_NEAR(d.proportion_below_max(), 1.0 / 3.0, 1e-12);
}

TEST(Likert, SamplingMatchesDistribution) {
  const st::LikertDistribution d({0.05, 0.1, 0.15, 0.3, 0.4});
  st::Xoshiro256pp g(73);
  st::LikertAccumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(d.sample(g));
  const auto observed = acc.distribution();
  for (int level = 1; level <= 5; ++level) {
    EXPECT_NEAR(observed.proportion(level), d.proportion(level), 0.01)
        << level;
  }
}

TEST(Likert, AccumulatorDropsOutOfRange) {
  st::LikertAccumulator acc;
  acc.add(0);
  acc.add(6);
  acc.add(3);
  EXPECT_EQ(acc.total(), 1u);
  EXPECT_EQ(acc.dropped(), 2u);
  EXPECT_EQ(acc.count(3), 1u);
}

TEST(Likert, DistanceIsTotalVariation) {
  const st::LikertDistribution a({1.0, 0.0, 0.0, 0.0, 0.0});
  const st::LikertDistribution b({0.0, 0.0, 0.0, 0.0, 1.0});
  EXPECT_DOUBLE_EQ(a.distance(b), 1.0);
  EXPECT_DOUBLE_EQ(a.distance(a), 0.0);
  const st::LikertDistribution c({0.5, 0.0, 0.0, 0.0, 0.5});
  EXPECT_DOUBLE_EQ(a.distance(c), 0.5);
}

}  // namespace
