#include <gtest/gtest.h>

#include <vector>

#include "stats/histogram.hpp"

namespace st = fpq::stats;

namespace {

TEST(IntHistogram, CountsAndProportions) {
  st::IntHistogram h(0, 15);
  EXPECT_EQ(h.bin_count(), 16u);
  h.add(0);
  h.add(7);
  h.add(7);
  h.add(15);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(7), 2u);
  EXPECT_EQ(h.count(3), 0u);
  EXPECT_DOUBLE_EQ(h.proportion(7), 0.5);
}

TEST(IntHistogram, OutOfRangeGoesToOverflowCounters) {
  st::IntHistogram h(0, 10);
  h.add(-1);
  h.add(11);
  h.add(5);
  EXPECT_EQ(h.total(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(-1), 0u);
}

TEST(IntHistogram, MeanOfRecordedValues) {
  st::IntHistogram h(0, 15);
  const std::vector<int> scores{8, 9, 8, 9};
  h.add_all(scores);
  EXPECT_DOUBLE_EQ(h.mean(), 8.5);
}

TEST(IntHistogram, EmptyHistogramSafeAccessors) {
  st::IntHistogram h(0, 5);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.proportion(2), 0.0);
}

TEST(IntHistogram, NegativeRange) {
  st::IntHistogram h(-5, 5);
  h.add(-5);
  h.add(0);
  h.add(5);
  EXPECT_EQ(h.count(-5), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, BinPlacement) {
  st::Histogram h(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.999);
  h.add(9.999);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UpperBoundIsExclusive) {
  st::Histogram h(0.0, 1.0, 4);
  h.add(1.0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, NaNGoesToUnderflow) {
  st::Histogram h(0.0, 1.0, 4);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(Histogram, BinEdges) {
  st::Histogram h(2.0, 4.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lower(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(0), 2.5);
  EXPECT_DOUBLE_EQ(h.bin_lower(3), 3.5);
  EXPECT_DOUBLE_EQ(h.bin_upper(3), 4.0);
}

}  // namespace
