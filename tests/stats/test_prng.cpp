// Determinism and distribution sanity for the PRNG layer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "stats/descriptive.hpp"
#include "stats/prng.hpp"

namespace st = fpq::stats;

namespace {

TEST(Prng, SplitMix64KnownSequence) {
  // Reference values for seed 0 (from the published splitmix64 algorithm).
  std::uint64_t s = 0;
  EXPECT_EQ(st::splitmix64_next(s), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(st::splitmix64_next(s), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(st::splitmix64_next(s), 0x06C45D188009454FULL);
}

TEST(Prng, SameSeedSameStream) {
  st::Xoshiro256pp a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDifferentStreams) {
  st::Xoshiro256pp a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, LowEntropySeedsStillMix) {
  // Consecutive small seeds must not produce correlated first outputs.
  std::set<std::uint64_t> firsts;
  for (std::uint64_t seed = 0; seed < 256; ++seed) {
    st::Xoshiro256pp g(seed);
    firsts.insert(g());
  }
  EXPECT_EQ(firsts.size(), 256u);
}

TEST(Prng, JumpDecorrelates) {
  st::Xoshiro256pp a(7);
  st::Xoshiro256pp b(7);
  b.jump();
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, SplitStreamsAreIndependentAndDeterministic) {
  st::Xoshiro256pp parent1(9), parent2(9);
  auto c1 = parent1.split(5);
  auto c2 = parent2.split(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());

  st::Xoshiro256pp parent3(9);
  auto other = parent3.split(6);
  EXPECT_NE(c1(), other());
}

TEST(Prng, Uniform01RangeAndMean) {
  st::Xoshiro256pp g(123);
  std::vector<double> xs(100000);
  for (auto& x : xs) {
    x = st::uniform01(g);
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
  EXPECT_NEAR(st::mean(xs), 0.5, 0.01);
  EXPECT_NEAR(st::sample_stddev(xs), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Prng, UniformBelowIsInRangeAndRoughlyUniform) {
  st::Xoshiro256pp g(321);
  constexpr std::uint64_t kN = 7;
  std::vector<int> counts(kN, 0);
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) {
    const auto v = st::uniform_below(g, kN);
    ASSERT_LT(v, kN);
    ++counts[v];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / static_cast<double>(kN), 500);
  }
}

TEST(Prng, UniformBelowOneAlwaysZero) {
  st::Xoshiro256pp g(11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(st::uniform_below(g, 1), 0u);
}

TEST(Prng, BernoulliMatchesProbability) {
  st::Xoshiro256pp g(99);
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    int hits = 0;
    constexpr int kDraws = 50000;
    for (int i = 0; i < kDraws; ++i) {
      if (st::bernoulli(g, p)) ++hits;
    }
    EXPECT_NEAR(hits / static_cast<double>(kDraws), p, 0.01) << "p=" << p;
  }
}

TEST(Prng, StandardNormalMoments) {
  st::Xoshiro256pp g(2718);
  std::vector<double> xs(100000);
  for (auto& x : xs) x = st::standard_normal(g);
  EXPECT_NEAR(st::mean(xs), 0.0, 0.02);
  EXPECT_NEAR(st::sample_stddev(xs), 1.0, 0.02);
  // Roughly 68% within one sigma.
  const auto within =
      std::count_if(xs.begin(), xs.end(),
                    [](double x) { return std::fabs(x) < 1.0; });
  EXPECT_NEAR(within / static_cast<double>(xs.size()), 0.6827, 0.01);
}

TEST(Prng, NormalScalesAndShifts) {
  st::Xoshiro256pp g(577);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = st::normal(g, 10.0, 2.5);
  EXPECT_NEAR(st::mean(xs), 10.0, 0.05);
  EXPECT_NEAR(st::sample_stddev(xs), 2.5, 0.05);
}

TEST(Prng, UniformRange) {
  st::Xoshiro256pp g(31415);
  for (int i = 0; i < 10000; ++i) {
    const double x = st::uniform_range(g, -3.0, 7.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.0);
  }
}

}  // namespace
