#include <gtest/gtest.h>

#include <vector>

#include "stats/categorical.hpp"
#include "stats/prng.hpp"

namespace st = fpq::stats;

namespace {

TEST(Categorical, NormalizesWeights) {
  const std::vector<double> w{2.0, 6.0, 2.0};
  st::CategoricalDistribution dist(w);
  EXPECT_EQ(dist.category_count(), 3u);
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.2);
  EXPECT_DOUBLE_EQ(dist.probability(1), 0.6);
  EXPECT_DOUBLE_EQ(dist.probability(2), 0.2);
}

TEST(Categorical, SamplingMatchesProbabilities) {
  const std::vector<double> w{0.1, 0.2, 0.3, 0.4};
  st::CategoricalDistribution dist(w);
  st::Xoshiro256pp g(17);
  const st::FrequencyTable table = st::sample_frequency(dist, 100000, g);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(table.proportion(i), dist.probability(i), 0.01) << i;
  }
}

TEST(Categorical, ZeroWeightCategoryNeverSampled) {
  const std::vector<double> w{0.5, 0.0, 0.5};
  st::CategoricalDistribution dist(w);
  st::Xoshiro256pp g(18);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(dist.sample(g), 1u);
}

TEST(Categorical, SingleCategoryAlwaysSampled) {
  const std::vector<double> w{3.0};
  st::CategoricalDistribution dist(w);
  st::Xoshiro256pp g(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dist.sample(g), 0u);
}

TEST(Categorical, DeterministicUnderSeed) {
  const std::vector<double> w{1.0, 1.0, 1.0};
  st::CategoricalDistribution dist(w);
  st::Xoshiro256pp g1(7), g2(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(dist.sample(g1), dist.sample(g2));
}

TEST(FrequencyTable, BasicCounting) {
  st::FrequencyTable t(3);
  t.add(0);
  t.add(2);
  t.add(2);
  EXPECT_EQ(t.total(), 3u);
  EXPECT_EQ(t.count(2), 2u);
  EXPECT_DOUBLE_EQ(t.proportion(0), 1.0 / 3.0);
  const auto props = t.proportions();
  EXPECT_DOUBLE_EQ(props[1], 0.0);
}

TEST(FrequencyTable, OutOfRangeDropped) {
  st::FrequencyTable t(2);
  t.add(5);
  EXPECT_EQ(t.total(), 0u);
  EXPECT_EQ(t.dropped(), 1u);
}

TEST(FrequencyTable, EmptyProportionsAreZero) {
  st::FrequencyTable t(4);
  for (double p : t.proportions()) EXPECT_EQ(p, 0.0);
  EXPECT_EQ(t.proportion(1), 0.0);
}

TEST(TotalVariation, KnownDistances) {
  const std::vector<double> p{0.5, 0.5};
  const std::vector<double> q{0.5, 0.5};
  EXPECT_DOUBLE_EQ(st::total_variation_distance(p, q), 0.0);
  const std::vector<double> r{1.0, 0.0};
  EXPECT_DOUBLE_EQ(st::total_variation_distance(p, r), 0.5);
  const std::vector<double> s{0.0, 1.0};
  EXPECT_DOUBLE_EQ(st::total_variation_distance(r, s), 1.0);
}

}  // namespace
