// Descriptive statistics: exact small cases plus numerical-robustness
// checks (the stats layer must not itself fall into FP gotchas).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/descriptive.hpp"

namespace st = fpq::stats;

namespace {

TEST(Descriptive, MeanExactSmallCases) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(st::mean(xs), 2.5);
  const std::vector<double> one{7.5};
  EXPECT_EQ(st::mean(one), 7.5);
}

TEST(Descriptive, MeanIsCompensated) {
  // Naive summation of 1e16 + many 1.0s loses the ones entirely;
  // compensated summation must not.
  std::vector<double> xs{1e16};
  for (int i = 0; i < 1000; ++i) xs.push_back(1.0);
  const double m = st::mean(xs);
  const double expected = (1e16 + 1000.0) / 1001.0;
  EXPECT_NEAR(m, expected, 1.0);
  EXPECT_NE(m, 1e16 / 1001.0) << "the ones must not vanish";
}

TEST(Descriptive, VarianceAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Sample variance (n-1) of this classic dataset is 32/7.
  EXPECT_NEAR(st::sample_variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(st::sample_stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, VarianceIsShiftStable) {
  // Welford must survive a large common offset (catastrophic cancellation
  // kills the naive two-pass sum-of-squares formula).
  const std::vector<double> base{4.0, 7.0, 13.0, 16.0};
  std::vector<double> shifted;
  for (double x : base) shifted.push_back(x + 1e9);
  EXPECT_NEAR(st::sample_variance(shifted), st::sample_variance(base), 1e-3);
}

TEST(Descriptive, StandardError) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(st::standard_error(xs),
              st::sample_stddev(xs) / std::sqrt(5.0), 1e-12);
}

TEST(Descriptive, QuantileType7) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(st::quantile(xs, 0.0), 1.0);
  EXPECT_EQ(st::quantile(xs, 1.0), 4.0);
  EXPECT_EQ(st::quantile(xs, 0.5), 2.5);
  EXPECT_NEAR(st::quantile(xs, 0.25), 1.75, 1e-12);
  EXPECT_NEAR(st::quantile(xs, 0.75), 3.25, 1e-12);
}

TEST(Descriptive, QuantileUnsortedInput) {
  const std::vector<double> xs{9.0, 1.0, 5.0, 3.0, 7.0};
  EXPECT_EQ(st::median(xs), 5.0);
  EXPECT_EQ(st::min_value(xs), 1.0);
  EXPECT_EQ(st::max_value(xs), 9.0);
}

TEST(Descriptive, SummaryFields) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const st::Summary s = st::summarize(xs);
  EXPECT_EQ(s.n, 5u);
  EXPECT_EQ(s.mean, 3.0);
  EXPECT_EQ(s.median, 3.0);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.q25, 2.0);
  EXPECT_EQ(s.q75, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Descriptive, SummaryOfSingleton) {
  const std::vector<double> xs{42.0};
  const st::Summary s = st::summarize(xs);
  EXPECT_EQ(s.n, 1u);
  EXPECT_EQ(s.stddev, 0.0);
  EXPECT_EQ(s.median, 42.0);
}

TEST(Descriptive, MeanOfCounts) {
  const std::vector<int> xs{8, 9, 10, 7};
  EXPECT_EQ(st::mean_of_counts(xs), 8.5);
}

TEST(Descriptive, PearsonCorrelation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> ys{2.0, 4.0, 6.0, 8.0, 10.0};
  EXPECT_NEAR(st::pearson_correlation(xs, ys), 1.0, 1e-12);
  std::vector<double> neg;
  for (double y : ys) neg.push_back(-y);
  EXPECT_NEAR(st::pearson_correlation(xs, neg), -1.0, 1e-12);
  const std::vector<double> flat{3.0, 3.0, 3.0, 3.0, 3.0};
  EXPECT_EQ(st::pearson_correlation(xs, flat), 0.0) << "degenerate -> 0";
}

}  // namespace
