// Property-based randomized differential tests for stats/summation:
// pairwise and compensated sums checked against a long-double running
// reference and the exact_sum distiller on generated inputs of varying
// conditioning. Seeds come from stats/prng and are printed on failure, so
// every counterexample is a one-line reproducer.
//
// Tolerances are the classical a-priori bounds in terms of eps * sum|x|
// (Higham, "Accuracy and Stability of Numerical Algorithms", ch. 4) with a
// safety factor — provable, so the properties cannot flake:
//   naive     |err| <= (n-1) eps sum|x|
//   pairwise  |err| <= ceil(log2 n) eps sum|x|
//   Kahan     |err| <= 2 eps sum|x|  (+ O(n eps^2))
//   Neumaier  |err| <= 2 eps sum|x|  (+ O(n eps^2))

#include <gtest/gtest.h>

#include <cfloat>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "stats/prng.hpp"
#include "stats/summation.hpp"

namespace stats = fpq::stats;

namespace {

constexpr std::uint64_t kSuiteSeed = 0x5D5D2026;

long double long_double_sum(std::span<const double> xs) {
  long double s = 0.0L;
  for (double x : xs) s += x;
  return s;
}

double abs_sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += std::fabs(x);
  return s;
}

// Random finite doubles with exponents spread over `exp_spread` binades
// around 1.0: small spreads give well-conditioned data, large spreads
// force heavy magnitude mixing.
std::vector<double> random_values(stats::Xoshiro256pp& g, std::size_t n,
                                  int exp_spread) {
  std::vector<double> out(n);
  for (auto& x : out) {
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp =
        1023 - static_cast<std::uint64_t>(exp_spread) / 2 +
        stats::uniform_below(g, static_cast<std::uint64_t>(exp_spread));
    const std::uint64_t sign = g() & 0x8000000000000000ULL;
    x = std::bit_cast<double>(sign | (exp << 52) | frac);
  }
  return out;
}

// Adversarial cancellation: every value appears with its negation plus an
// occasional tiny dust term, so the true sum is the dust alone and the
// condition number sum|x| / |sum x| is enormous.
std::vector<double> cancelling_values(stats::Xoshiro256pp& g,
                                      std::size_t pairs) {
  std::vector<double> out;
  out.reserve(2 * pairs + pairs / 4 + 1);
  for (std::size_t i = 0; i < pairs; ++i) {
    const double big = random_values(g, 1, 10)[0];
    out.push_back(big);
    out.push_back(-big);
    if (i % 4 == 0) {
      out.push_back(random_values(g, 1, 4)[0] * 0x1.0p-30);
    }
  }
  return out;
}

TEST(SummationProperty, AllAlgorithmsMeetTheirAprioriBounds) {
  stats::Xoshiro256pp g(kSuiteSeed);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t trial_seed = g();
    stats::Xoshiro256pp tg(trial_seed);
    const auto n = 1 + stats::uniform_below(tg, 500);
    const auto xs = random_values(tg, n, 40);
    const double exact = stats::exact_sum(xs);
    const double a = abs_sum(xs);
    const double dn = static_cast<double>(xs.size());
    const double log_n = std::ceil(std::log2(dn + 1.0)) + 1.0;

    EXPECT_LE(std::fabs(stats::naive_sum(xs) - exact),
              2.0 * dn * DBL_EPSILON * a)
        << "seed " << trial_seed;
    EXPECT_LE(std::fabs(stats::pairwise_sum(xs) - exact),
              2.0 * log_n * DBL_EPSILON * a)
        << "seed " << trial_seed;
    EXPECT_LE(std::fabs(stats::kahan_sum(xs) - exact),
              4.0 * DBL_EPSILON * a)
        << "seed " << trial_seed;
    EXPECT_LE(std::fabs(stats::neumaier_sum(xs) - exact),
              4.0 * DBL_EPSILON * a)
        << "seed " << trial_seed;
  }
}

TEST(SummationProperty, LongDoubleReferenceAgreesWithExactSum) {
  // Cross-check the two references against each other: the 64-bit-or-wider
  // long double running sum must land within its own a-priori bound of the
  // correctly rounded exact_sum. Two independent oracles agreeing is what
  // lets the other properties trust either one.
  stats::Xoshiro256pp g(kSuiteSeed ^ 1);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t trial_seed = g();
    stats::Xoshiro256pp tg(trial_seed);
    const auto xs =
        random_values(tg, 2 + stats::uniform_below(tg, 300), 60);
    const double exact = stats::exact_sum(xs);
    const double ref = static_cast<double>(long_double_sum(xs));
    const double dn = static_cast<double>(xs.size());
    // long double eps <= DBL_EPSILON on every platform; rounding the
    // result back to double adds at most half an ulp more.
    EXPECT_LE(std::fabs(ref - exact),
              2.0 * dn * DBL_EPSILON * abs_sum(xs) + std::fabs(exact) *
                  DBL_EPSILON)
        << "seed " << trial_seed;
  }
}

TEST(SummationProperty, CompensationBeatsTheNaiveLoopUnderCancellation) {
  stats::Xoshiro256pp g(kSuiteSeed ^ 2);
  double naive_err = 0.0;
  double kahan_err = 0.0;
  double neumaier_err = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t trial_seed = g();
    stats::Xoshiro256pp tg(trial_seed);
    const auto xs =
        cancelling_values(tg, 50 + stats::uniform_below(tg, 100));
    const double exact = stats::exact_sum(xs);
    const double a = abs_sum(xs);

    // The provable bounds hold even at condition numbers ~1e9.
    EXPECT_LE(std::fabs(stats::neumaier_sum(xs) - exact),
              4.0 * DBL_EPSILON * a)
        << "seed " << trial_seed;
    EXPECT_LE(std::fabs(stats::naive_sum(xs) - exact),
              2.0 * static_cast<double>(xs.size()) * DBL_EPSILON * a)
        << "seed " << trial_seed;

    naive_err += stats::summation_relative_error(stats::naive_sum(xs), xs);
    kahan_err += stats::summation_relative_error(stats::kahan_sum(xs), xs);
    neumaier_err +=
        stats::summation_relative_error(stats::neumaier_sum(xs), xs);
  }
  // Aggregate ordering over 50 adversarial trials. Neumaier compensates
  // in both directions, so it must beat plain accumulation AND classic
  // Kahan, whose compensation is lost whenever an incoming term dwarfs
  // the running sum — which this dust-then-big pattern provokes on
  // purpose (empirically Kahan even trails the naive loop here).
  EXPECT_LE(neumaier_err, naive_err);
  EXPECT_LE(neumaier_err, kahan_err);
}

TEST(SummationProperty, ExactSumIsPermutationInvariant) {
  // exact_sum claims correct rounding of the true sum, so it must be
  // bit-identical under any permutation of the inputs — unlike every
  // approximate algorithm.
  stats::Xoshiro256pp g(kSuiteSeed ^ 3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t trial_seed = g();
    stats::Xoshiro256pp tg(trial_seed);
    auto xs = random_values(tg, 64, 80);
    const double forward = stats::exact_sum(xs);
    // Deterministic Fisher-Yates shuffle from the same trial generator.
    for (std::size_t i = xs.size() - 1; i > 0; --i) {
      std::swap(xs[i], xs[stats::uniform_below(tg, i + 1)]);
    }
    EXPECT_EQ(stats::exact_sum(xs), forward) << "seed " << trial_seed;
    // And reversal, the classic order-dependence probe.
    std::vector<double> reversed(xs.rbegin(), xs.rend());
    EXPECT_EQ(stats::exact_sum(reversed), forward) << "seed " << trial_seed;
  }
}

TEST(SummationProperty, ExactSumNailsDesignedCatastrophes) {
  // Hand-built cases with known exact answers, as anchors for the
  // randomized properties.
  const std::vector<double> tiny_survivor{1e308, 17.0, -1e308};
  EXPECT_EQ(stats::exact_sum(tiny_survivor), 17.0);
  const std::vector<double> dust{0x1.0p+60, 1.0, -0x1.0p+60, 0x1.0p-60};
  EXPECT_EQ(stats::exact_sum(dust), 1.0 + 0x1.0p-60);
  EXPECT_EQ(stats::neumaier_sum(tiny_survivor), 17.0);
}

TEST(SummationProperty, EmptyAndSingletonEdgeCases) {
  const std::vector<double> empty;
  EXPECT_EQ(stats::naive_sum(empty), 0.0);
  EXPECT_EQ(stats::pairwise_sum(empty), 0.0);
  EXPECT_EQ(stats::kahan_sum(empty), 0.0);
  EXPECT_EQ(stats::neumaier_sum(empty), 0.0);
  EXPECT_EQ(stats::exact_sum(empty), 0.0);
  const std::vector<double> one{0x1.fffffffffffffp+1};
  EXPECT_EQ(stats::naive_sum(one), one[0]);
  EXPECT_EQ(stats::pairwise_sum(one), one[0]);
  EXPECT_EQ(stats::kahan_sum(one), one[0]);
  EXPECT_EQ(stats::neumaier_sum(one), one[0]);
  EXPECT_EQ(stats::exact_sum(one), one[0]);
}

}  // namespace
