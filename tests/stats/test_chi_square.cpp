#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/chi_square.hpp"
#include "stats/prng.hpp"

namespace st = fpq::stats;

namespace {

TEST(Gamma, RegularizedGammaKnownValues) {
  // P(1, x) = 1 - e^-x.
  EXPECT_NEAR(st::regularized_gamma_p(1.0, 1.0), 1.0 - std::exp(-1.0), 1e-10);
  EXPECT_NEAR(st::regularized_gamma_p(1.0, 2.5), 1.0 - std::exp(-2.5), 1e-10);
  // P + Q = 1.
  for (double s : {0.5, 1.5, 4.0, 10.0}) {
    for (double x : {0.1, 1.0, 5.0, 20.0}) {
      EXPECT_NEAR(st::regularized_gamma_p(s, x) + st::regularized_gamma_q(s, x),
                  1.0, 1e-12);
    }
  }
  EXPECT_EQ(st::regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_EQ(st::regularized_gamma_q(2.0, 0.0), 1.0);
}

TEST(ChiSquare, SurvivalFunctionKnownValues) {
  // chi2 with 1 dof at 3.841 -> p ~ 0.05; with 2 dof sf(x) = e^{-x/2}.
  EXPECT_NEAR(st::chi_square_sf(3.841, 1.0), 0.05, 0.001);
  EXPECT_NEAR(st::chi_square_sf(5.991, 2.0), 0.05, 0.001);
  EXPECT_NEAR(st::chi_square_sf(4.0, 2.0), std::exp(-2.0), 1e-9);
  EXPECT_EQ(st::chi_square_sf(0.0, 3.0), 1.0);
}

TEST(ChiSquare, GoodnessOfFitPerfectMatch) {
  const std::vector<std::size_t> obs{25, 25, 25, 25};
  const std::vector<double> probs{0.25, 0.25, 0.25, 0.25};
  const auto r = st::chi_square_goodness_of_fit(obs, probs);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.dof, 3.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(ChiSquare, GoodnessOfFitDetectsGrossMismatch) {
  const std::vector<std::size_t> obs{100, 0, 0, 0};
  const std::vector<double> probs{0.25, 0.25, 0.25, 0.25};
  const auto r = st::chi_square_goodness_of_fit(obs, probs);
  EXPECT_GT(r.statistic, 100.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquare, GoodnessOfFitAcceptsSampledData) {
  // Sample from the hypothesized distribution; p-value should not be tiny.
  st::Xoshiro256pp g(777);
  const std::vector<double> probs{0.1, 0.4, 0.3, 0.2};
  std::vector<std::size_t> obs(4, 0);
  for (int i = 0; i < 10000; ++i) {
    const double u = st::uniform01(g);
    if (u < 0.1) {
      ++obs[0];
    } else if (u < 0.5) {
      ++obs[1];
    } else if (u < 0.8) {
      ++obs[2];
    } else {
      ++obs[3];
    }
  }
  const auto r = st::chi_square_goodness_of_fit(obs, probs);
  EXPECT_GT(r.p_value, 1e-4);
}

TEST(ChiSquare, SparseCellsCounted) {
  const std::vector<std::size_t> obs{2, 3, 95};
  const std::vector<double> probs{0.02, 0.03, 0.95};
  const auto r = st::chi_square_goodness_of_fit(obs, probs);
  EXPECT_EQ(r.sparse_cells, 2u);
}

TEST(ChiSquare, ImpossibleCellWithObservationIsInfiniteStatistic) {
  const std::vector<std::size_t> obs{50, 50, 1};
  const std::vector<double> probs{0.5, 0.5, 0.0};
  const auto r = st::chi_square_goodness_of_fit(obs, probs);
  EXPECT_TRUE(std::isinf(r.statistic));
  EXPECT_EQ(r.p_value, 0.0);
}

TEST(ChiSquare, IndependenceOnIndependentTable) {
  // Rows exactly proportional: statistic 0.
  const std::vector<std::size_t> table{10, 20, 30, 20, 40, 60};
  const auto r = st::chi_square_independence(table, 2, 3);
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
  EXPECT_EQ(r.dof, 2.0);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(ChiSquare, IndependenceDetectsAssociation) {
  const std::vector<std::size_t> table{90, 10, 10, 90};
  const auto r = st::chi_square_independence(table, 2, 2);
  EXPECT_GT(r.statistic, 100.0);
  EXPECT_LT(r.p_value, 1e-10);
}

TEST(ChiSquare, IndependenceEmptyTable) {
  const std::vector<std::size_t> table{0, 0, 0, 0};
  const auto r = st::chi_square_independence(table, 2, 2);
  EXPECT_EQ(r.statistic, 0.0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(ChiSquare, IndependenceIgnoresDeadRows) {
  // A zero row must not inflate dof.
  const std::vector<std::size_t> table{10, 20, 0, 0, 30, 60};
  const auto r = st::chi_square_independence(table, 3, 2);
  EXPECT_EQ(r.dof, 1.0);
}

}  // namespace
