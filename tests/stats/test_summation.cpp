// Summation algorithms: exactness of the reference, and the expected
// accuracy ranking on ill-conditioned data.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/prng.hpp"
#include "stats/summation.hpp"

namespace st = fpq::stats;

namespace {

TEST(Summation, AllAgreeOnExactData) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 0.5, 0.25};
  const double expected = 15.75;
  EXPECT_EQ(st::naive_sum(xs), expected);
  EXPECT_EQ(st::pairwise_sum(xs), expected);
  EXPECT_EQ(st::kahan_sum(xs), expected);
  EXPECT_EQ(st::neumaier_sum(xs), expected);
  EXPECT_EQ(st::exact_sum(xs), expected);
}

TEST(Summation, EmptyAndSingleton) {
  const std::vector<double> none;
  EXPECT_EQ(st::naive_sum(none), 0.0);
  EXPECT_EQ(st::exact_sum(none), 0.0);
  const std::vector<double> one{3.25};
  EXPECT_EQ(st::pairwise_sum(one), 3.25);
  EXPECT_EQ(st::kahan_sum(one), 3.25);
}

TEST(Summation, ExactSumIsCorrectlyRounded) {
  // 1e16 + 1 + ... + 1 (1000 ones): exact total is 1e16 + 1000, which is
  // representable (ulp at 1e16 is 2, and 1000 is a multiple of... check:
  // 1e16 + 1000 is representable because 1000 is even and within range).
  std::vector<double> xs{1e16};
  for (int i = 0; i < 1000; ++i) xs.push_back(1.0);
  EXPECT_EQ(st::exact_sum(xs), 1e16 + 1000.0);
  // Classic cancellation: huge + tiny - huge.
  const std::vector<double> c{1e100, 1.0, -1e100};
  EXPECT_EQ(st::exact_sum(c), 1.0);
}

TEST(Summation, NaiveLosesWhatCompensatedKeeps) {
  std::vector<double> xs{1e16};
  for (int i = 0; i < 999; ++i) xs.push_back(1.0);
  // Naive: each +1 is absorbed (ties at 1e16 round to even).
  EXPECT_EQ(st::naive_sum(xs), 1e16);
  // Both compensated sums keep all of it: Kahan's running compensation
  // accumulates the absorbed ones and reinjects them.
  EXPECT_EQ(st::neumaier_sum(xs), st::exact_sum(xs));
  EXPECT_EQ(st::kahan_sum(xs), st::exact_sum(xs));
  // Kahan's documented weakness is a TERM larger than the running sum:
  // the compensation of the small prefix is wiped, Neumaier survives.
  const std::vector<double> swamped{1.0, 1e100, 1.0, -1e100};
  EXPECT_EQ(st::exact_sum(swamped), 2.0);
  EXPECT_EQ(st::neumaier_sum(swamped), 2.0);
  EXPECT_NE(st::kahan_sum(swamped), 2.0);
}

TEST(Summation, ErrorRankingOnRandomIllConditionedData) {
  // Mixed magnitudes with cancellation: naive must be at least as bad as
  // pairwise, and Neumaier essentially exact.
  st::Xoshiro256pp g(0x50B3);
  double naive_worst = 0.0, pairwise_worst = 0.0, neumaier_worst = 0.0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 2000; ++i) {
      const double mag = std::ldexp(1.0, static_cast<int>(
                                             st::uniform_below(g, 100)) -
                                             50);
      xs.push_back(st::bernoulli(g, 0.5) ? mag : -mag);
    }
    naive_worst = std::max(
        naive_worst, st::summation_relative_error(st::naive_sum(xs), xs));
    pairwise_worst = std::max(
        pairwise_worst,
        st::summation_relative_error(st::pairwise_sum(xs), xs));
    neumaier_worst = std::max(
        neumaier_worst,
        st::summation_relative_error(st::neumaier_sum(xs), xs));
  }
  EXPECT_GE(naive_worst, pairwise_worst * 0.1)
      << "naive should not beat pairwise by an order of magnitude";
  EXPECT_LT(neumaier_worst, 1e-13);
  EXPECT_GT(naive_worst, 0.0) << "data must actually be ill-conditioned";
}

TEST(Summation, PairwiseMatchesReassociationStory) {
  // The emulated pipeline's fast-math reassociation is pairwise: the two
  // implementations agree on the demo input.
  const std::vector<double> xs{1e16, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(st::naive_sum(xs), 1e16) << "left-to-right absorbs the ones";
  EXPECT_GT(st::pairwise_sum(xs), 1e16) << "pairwise preserves them";
}

TEST(Summation, ExactSumRandomizedAgainstLongDouble) {
  // Spot-check exact_sum against a simple 80-bit accumulation for data
  // where long double's 64-bit significand is provably sufficient.
  st::Xoshiro256pp g(0xE5AC);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> xs;
    long double acc = 0.0L;
    for (int i = 0; i < 100; ++i) {
      // Small integers: sums are exact in both representations.
      const double v = static_cast<double>(
                           st::uniform_below(g, 1 << 20)) -
                       (1 << 19);
      xs.push_back(v);
      acc += v;
    }
    EXPECT_EQ(st::exact_sum(xs), static_cast<double>(acc));
  }
}

}  // namespace
