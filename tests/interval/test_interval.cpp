// Interval arithmetic: the fundamental containment property (the exact
// real result always lies inside the enclosure), endpoint rounding
// direction, and the certify() verdicts.

#include <gtest/gtest.h>

#include <cmath>

#include "bigfloat/bigfloat.hpp"
#include "interval/interval.hpp"
#include "ir/expr.hpp"
#include "stats/prng.hpp"

namespace iv = fpq::interval;
namespace bf = fpq::bigfloat;
namespace st = fpq::stats;
using E = fpq::ir::Expr;

namespace {

TEST(Interval, PointAndBounds) {
  const auto p = iv::Interval::point(1.5);
  EXPECT_EQ(p.lo(), 1.5);
  EXPECT_EQ(p.hi(), 1.5);
  EXPECT_EQ(p.width(), 0.0);
  EXPECT_TRUE(p.contains(1.5));
  EXPECT_FALSE(p.contains(1.6));
  EXPECT_TRUE(iv::Interval::point(std::nan("")).is_invalid());
  const auto b = iv::Interval::bounds(-1.0, 2.0);
  EXPECT_TRUE(b.contains(0.0));
  EXPECT_FALSE(b.contains(3.0));
}

TEST(Interval, AdditionRoundsOutward) {
  // 0.1 + 0.2 is not representable: the enclosure must strictly contain
  // the double result with lo < hi.
  const auto r = iv::Interval::add(iv::Interval::point(0.1),
                                   iv::Interval::point(0.2));
  EXPECT_LT(r.lo(), r.hi());
  EXPECT_TRUE(r.contains(0.1 + 0.2));
  EXPECT_LE(r.width(), 2e-16);
}

TEST(Interval, ExactOperationsStayDegenerate) {
  const auto r = iv::Interval::add(iv::Interval::point(1.5),
                                   iv::Interval::point(2.25));
  EXPECT_EQ(r.lo(), 3.75);
  EXPECT_EQ(r.hi(), 3.75);
}

TEST(Interval, MulSignCases) {
  const auto pos = iv::Interval::bounds(2.0, 3.0);
  const auto neg = iv::Interval::bounds(-3.0, -2.0);
  const auto mixed = iv::Interval::bounds(-1.0, 2.0);
  EXPECT_EQ(iv::Interval::mul(pos, pos).lo(), 4.0);
  EXPECT_EQ(iv::Interval::mul(pos, pos).hi(), 9.0);
  EXPECT_EQ(iv::Interval::mul(pos, neg).lo(), -9.0);
  EXPECT_EQ(iv::Interval::mul(pos, neg).hi(), -4.0);
  EXPECT_EQ(iv::Interval::mul(mixed, pos).lo(), -3.0);
  EXPECT_EQ(iv::Interval::mul(mixed, pos).hi(), 6.0);
  EXPECT_EQ(iv::Interval::mul(mixed, mixed).lo(), -2.0);
  EXPECT_EQ(iv::Interval::mul(mixed, mixed).hi(), 4.0);
}

TEST(Interval, DivisionByZeroContainingInterval) {
  const auto one = iv::Interval::point(1.0);
  const auto through_zero = iv::Interval::bounds(-1.0, 1.0);
  const auto r = iv::Interval::div(one, through_zero);
  EXPECT_EQ(r.lo(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.hi(), std::numeric_limits<double>::infinity());
  // [0,0]/[0,0] -> invalid; [1,1]/[0,0] -> unbounded (whole() is a sound
  // enclosure for a division that cannot produce any finite value).
  EXPECT_TRUE(iv::Interval::div(iv::Interval::point(0.0),
                                iv::Interval::point(0.0))
                  .is_invalid());
  EXPECT_TRUE(std::isinf(
      iv::Interval::div(one, iv::Interval::point(0.0)).width()));
}

TEST(Interval, SqrtClipsAndRejects) {
  const auto r = iv::Interval::sqrt(iv::Interval::bounds(-1.0, 4.0));
  EXPECT_EQ(r.lo(), 0.0);
  EXPECT_EQ(r.hi(), 2.0);
  EXPECT_TRUE(
      iv::Interval::sqrt(iv::Interval::bounds(-4.0, -1.0)).is_invalid());
}

TEST(Interval, ContainmentPropertyRandomized) {
  // The fundamental theorem: for random expressions over random doubles,
  // the exact value (computed with 512-bit BigFloat) lies inside the
  // evaluated enclosure.
  st::Xoshiro256pp g(0x17E2);
  const bf::Context wide{512, fpq::softfloat::Rounding::kNearestEven};
  for (int i = 0; i < 4000; ++i) {
    auto gen = [&g] {
      const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
      const std::uint64_t exp = 1023 - 20 + st::uniform_below(g, 40);
      const std::uint64_t sign = g() & 0x8000000000000000ULL;
      return std::bit_cast<double>(sign | (exp << 52) | frac);
    };
    const double a = gen(), b = gen(), c = gen(), d = gen();
    // ((a + b) * c) - (a / d)
    const auto expr = E::sub(
        E::mul(E::add(E::constant(a), E::constant(b)), E::constant(c)),
        E::div(E::constant(a), E::constant(d)));
    const auto enclosure = iv::evaluate(expr);
    ASSERT_FALSE(enclosure.is_invalid());
    // Exact value via BigFloat.
    const auto exact = bf::BigFloat::sub(
        bf::BigFloat::mul(
            bf::BigFloat::add(bf::BigFloat::from_double(a),
                              bf::BigFloat::from_double(b), wide),
            bf::BigFloat::from_double(c), wide),
        bf::BigFloat::div(bf::BigFloat::from_double(a),
                          bf::BigFloat::from_double(d), wide),
        wide);
    const double exact_d = exact.to_double();
    // to_double rounds, so test with one-ulp slack via containment of the
    // rounded value or its neighbours.
    const bool contained = enclosure.contains(exact_d) ||
                           enclosure.contains(std::nextafter(
                               exact_d, enclosure.lo())) ||
                           enclosure.contains(std::nextafter(
                               exact_d, enclosure.hi()));
    ASSERT_TRUE(contained)
        << "a=" << a << " b=" << b << " c=" << c << " d=" << d << " exact "
        << exact_d << " enclosure " << enclosure.to_string();
  }
}

TEST(Interval, CertifyCleanExpression) {
  const auto report = iv::certify(
      E::add(E::mul(E::constant(3.0), E::constant(4.0)), E::constant(5.0)));
  EXPECT_EQ(report.double_result, 17.0);
  EXPECT_FALSE(report.enclosure_is_wide);
  EXPECT_FALSE(report.double_escapes);
  EXPECT_TRUE(report.enclosure.contains(17.0));
}

TEST(Interval, CertifyFlagsCancellationAsWideEnclosure) {
  // (1e16 + 1) - 1e16: the enclosure is [0, 2] — relative width 1 —
  // because the inner rounding genuinely destroys the information.
  const auto a = E::constant(1e16);
  const auto report =
      iv::certify(E::sub(E::add(a, E::constant(1.0)), a));
  EXPECT_TRUE(report.enclosure_is_wide)
      << report.enclosure.to_string();
  EXPECT_TRUE(report.enclosure.contains(1.0)) << "true value enclosed";
  EXPECT_TRUE(report.enclosure.contains(report.double_result));
}

TEST(Interval, CertifyQuietOnBenignRounding) {
  const auto report =
      iv::certify(E::div(E::constant(1.0), E::constant(3.0)));
  EXPECT_FALSE(report.enclosure_is_wide);
  EXPECT_LT(report.relative_width, 1e-15);
}

TEST(Interval, RelativeWidthOfUnboundedIsInfinite) {
  const auto r = iv::Interval::div(iv::Interval::point(1.0),
                                   iv::Interval::bounds(-1.0, 1.0));
  EXPECT_TRUE(std::isinf(r.relative_width()));
}

TEST(Interval, ToStringRenders) {
  EXPECT_EQ(iv::Interval::invalid().to_string(), "[invalid]");
  EXPECT_NE(iv::Interval::point(1.5).to_string().find("1.5"),
            std::string::npos);
}

}  // namespace
