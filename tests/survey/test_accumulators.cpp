// Algebra of the mergeable figure accumulators (survey/accumulators.hpp)
// and the streaming shard driver they run on (parallel/stream.hpp):
//
//   * identity element — a fresh accumulator finishes to zeros, never NaN,
//     and merging one in (on either side) changes nothing;
//   * merge associativity in practice — adversarial chunk splits (empty
//     chunks, single-record chunks, lopsided splits) all finish
//     bit-identically to the serial add-one-at-a-time fold;
//   * sharded bit-identity — accumulate_span at 1/2/4/8 threads equals the
//     serial fold exactly (this file carries the `parallel` ctest label so
//     the contract also runs under TSan);
//   * configuration safety — merging accumulators built over different
//     keys/tables/factors throws instead of silently mixing tallies;
//   * generator streaming — stream_accumulate over CohortGenerator shards
//     equals folding the materialized generate_main_cohort vector.

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "parallel/stream.hpp"
#include "parallel/thread_pool.hpp"
#include "respondent/population.hpp"
#include "stats/bootstrap.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace quiz = fpq::quiz;
namespace par = fpq::parallel;

namespace {

// An odd-sized cohort so every chunk partition below is uneven somewhere.
const std::vector<sv::SurveyRecord>& cohort() {
  static const auto records =
      fpq::respondent::generate_main_cohort(123, 257);
  return records;
}

std::size_t position_of(const sv::SurveyRecord& r) {
  return r.background.position;
}

const std::vector<std::size_t>& languages_of(const sv::SurveyRecord& r) {
  return r.background.fp_languages;
}

// -- exact result comparison ------------------------------------------------

void expect_rows_eq(const std::vector<sv::TableRow>& a,
                    const std::vector<sv::TableRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].percent, b[i].percent) << a[i].label;
  }
}

void expect_tally_eq(const sv::AverageTally& a, const sv::AverageTally& b) {
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.incorrect, b.incorrect);
  EXPECT_EQ(a.dont_know, b.dont_know);
  EXPECT_EQ(a.unanswered, b.unanswered);
}

void expect_hist_eq(const fpq::stats::IntHistogram& a,
                    const fpq::stats::IntHistogram& b) {
  ASSERT_EQ(a.lo(), b.lo());
  ASSERT_EQ(a.hi(), b.hi());
  EXPECT_EQ(a.total(), b.total());
  for (int v = a.lo(); v <= a.hi(); ++v) EXPECT_EQ(a.count(v), b.count(v));
}

void expect_breakdown_eq(const std::vector<sv::BreakdownRow>& a,
                         const std::vector<sv::BreakdownRow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].pct_correct, b[i].pct_correct) << a[i].label;
    EXPECT_EQ(a[i].pct_incorrect, b[i].pct_incorrect) << a[i].label;
    EXPECT_EQ(a[i].pct_dont_know, b[i].pct_dont_know) << a[i].label;
    EXPECT_EQ(a[i].pct_unanswered, b[i].pct_unanswered) << a[i].label;
  }
}

void expect_factors_eq(const std::vector<sv::FactorLevelResult>& a,
                       const std::vector<sv::FactorLevelResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].n, b[i].n) << a[i].label;
    expect_tally_eq(a[i].core, b[i].core);
    expect_tally_eq(a[i].opt, b[i].opt);
  }
}

void expect_dists_eq(const sv::SuspicionDistributions& a,
                     const sv::SuspicionDistributions& b) {
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    const auto pa = a[c].proportions();
    const auto pb = b[c].proportions();
    for (std::size_t i = 0; i < pa.size(); ++i) EXPECT_EQ(pa[i], pb[i]);
  }
}

// Serial fold over a sub-span.
template <typename Acc>
Acc fold(const Acc& proto, std::size_t begin, std::size_t end) {
  Acc acc = proto;
  for (std::size_t i = begin; i < end; ++i) acc.add(cohort()[i]);
  return acc;
}

// -- identity element -------------------------------------------------------

TEST(AccumulatorIdentity, EmptyFinishIsZerosNotNaN) {
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  const auto avg = sv::AverageTallyAccumulator::core(core_key).finish();
  EXPECT_EQ(avg.correct, 0.0);
  EXPECT_EQ(avg.unanswered, 0.0);

  const auto rows =
      sv::FrequencyAccumulator(pd::positions(), &position_of).finish();
  ASSERT_EQ(rows.size(), pd::positions().size());
  for (const auto& row : rows) {
    EXPECT_EQ(row.n, 0u);
    EXPECT_EQ(row.percent, 0.0) << row.label;  // a NaN would fail here
  }

  const auto breakdown = sv::BreakdownAccumulator::opt(opt_key).finish();
  for (const auto& row : breakdown) {
    EXPECT_EQ(row.pct_correct, 0.0) << row.label;
    EXPECT_EQ(row.pct_unanswered, 0.0) << row.label;
  }

  const auto levels =
      sv::FactorLevelAccumulator::by_role(core_key, opt_key).finish();
  for (const auto& level : levels) {
    EXPECT_EQ(level.n, 0u);
    EXPECT_EQ(level.core.correct, 0.0) << level.label;
  }

  EXPECT_EQ(sv::ScoreHistogramAccumulator(core_key).finish().total(), 0u);
  EXPECT_EQ(sv::SuspicionAccumulator{}.respondents(), 0u);
}

TEST(AccumulatorIdentity, MergingEmptyOnEitherSideIsANoOp) {
  const auto core_key = quiz::standard_core_truths();
  const auto make = [&] {
    return sv::AverageTallyAccumulator::core(core_key);
  };

  auto populated = fold(make(), 0, 100);
  const auto expected = populated.finish();

  auto right = fold(make(), 0, 100);
  right.merge(make());  // empty on the right
  expect_tally_eq(right.finish(), expected);

  auto left = make();  // empty on the left
  left.merge(fold(make(), 0, 100));
  expect_tally_eq(left.finish(), expected);

  auto both = make();
  both.merge(make());
  expect_tally_eq(both.finish(), sv::AverageTally{});
}

// -- adversarial chunk splits ----------------------------------------------

// Merges the chunks defined by `cuts` (split points into cohort()) and
// expects the result to equal the serial fold. Exercises empty chunks,
// single-record chunks, and lopsided splits for one accumulator type.
template <typename MakeAcc, typename ExpectEq>
void check_splits(const MakeAcc& make, const ExpectEq& expect_eq) {
  const std::size_t n = cohort().size();
  const auto serial = fold(make(), 0, n).finish();

  const std::vector<std::vector<std::size_t>> split_sets = {
      {0, n},                       // one chunk
      {0, 0, n, n},                 // empty first and last chunks
      {0, 1, 2, 3, n},              // single-record chunks up front
      {0, n / 2, n / 2, n},         // empty middle chunk
      {0, n - 1, n},                // lopsided
  };
  for (const auto& cuts : split_sets) {
    auto merged = make();
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      merged.merge(fold(make(), cuts[i], cuts[i + 1]));
    }
    expect_eq(merged.finish(), serial);
  }
}

TEST(AccumulatorSplits, AllTypesSurviveAdversarialChunking) {
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  check_splits(
      [&] { return sv::FrequencyAccumulator(pd::positions(), &position_of); },
      [](const auto& a, const auto& b) { expect_rows_eq(a, b); });
  check_splits(
      [&] {
        return sv::MultiSelectAccumulator(pd::fp_languages(), &languages_of);
      },
      [](const auto& a, const auto& b) { expect_rows_eq(a, b); });
  check_splits(
      [&] { return sv::AverageTallyAccumulator::core(core_key); },
      [](const auto& a, const auto& b) { expect_tally_eq(a, b); });
  check_splits(
      [&] { return sv::AverageTallyAccumulator::opt_tf(opt_key); },
      [](const auto& a, const auto& b) { expect_tally_eq(a, b); });
  check_splits(
      [&] { return sv::ScoreHistogramAccumulator(core_key); },
      [](const auto& a, const auto& b) { expect_hist_eq(a, b); });
  check_splits(
      [&] { return sv::BreakdownAccumulator::core(core_key); },
      [](const auto& a, const auto& b) { expect_breakdown_eq(a, b); });
  check_splits(
      [&] {
        return sv::FactorLevelAccumulator::by_area_group(core_key, opt_key);
      },
      [](const auto& a, const auto& b) { expect_factors_eq(a, b); });
  check_splits([&] { return sv::SuspicionAccumulator{}; },
               [](const auto& a, const auto& b) { expect_dists_eq(a, b); });
}

// -- sharded bit-identity at 1/2/4/8 threads -------------------------------

template <typename MakeAcc, typename ExpectEq>
void check_sharded(const MakeAcc& make, const ExpectEq& expect_eq) {
  const std::span<const sv::SurveyRecord> records(cohort());
  const auto serial = fold(make(), 0, records.size()).finish();
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    for (const std::size_t chunks : {1u, 7u, 32u}) {
      expect_eq(par::accumulate_span(pool, records, chunks, make).finish(),
                serial);
    }
  }
}

TEST(AccumulatorSharded, BitIdenticalAcrossThreadAndChunkCounts) {
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  check_sharded(
      [&] { return sv::FrequencyAccumulator(pd::positions(), &position_of); },
      [](const auto& a, const auto& b) { expect_rows_eq(a, b); });
  check_sharded(
      [&] { return sv::AverageTallyAccumulator::core(core_key); },
      [](const auto& a, const auto& b) { expect_tally_eq(a, b); });
  check_sharded(
      [&] { return sv::ScoreHistogramAccumulator(core_key); },
      [](const auto& a, const auto& b) { expect_hist_eq(a, b); });
  check_sharded(
      [&] { return sv::BreakdownAccumulator::opt(opt_key); },
      [](const auto& a, const auto& b) { expect_breakdown_eq(a, b); });
  check_sharded(
      [&] {
        return sv::FactorLevelAccumulator::by_formal_training(core_key,
                                                              opt_key);
      },
      [](const auto& a, const auto& b) { expect_factors_eq(a, b); });
  check_sharded([&] { return sv::SuspicionAccumulator{}; },
                [](const auto& a, const auto& b) { expect_dists_eq(a, b); });
}

// -- configuration-mismatch detection --------------------------------------

TEST(AccumulatorConfig, MergeAcrossConfigurationsThrows) {
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  auto core_avg = sv::AverageTallyAccumulator::core(core_key);
  EXPECT_THROW(
      core_avg.merge(sv::AverageTallyAccumulator::opt_tf(opt_key)),
      std::invalid_argument);

  auto flipped_key = core_key;
  flipped_key[0] = flipped_key[0] == quiz::Truth::kTrue ? quiz::Truth::kFalse
                                                        : quiz::Truth::kTrue;
  auto histogram = sv::ScoreHistogramAccumulator(core_key);
  EXPECT_THROW(histogram.merge(sv::ScoreHistogramAccumulator(flipped_key)),
               std::invalid_argument);

  auto positions = sv::FrequencyAccumulator(pd::positions(), &position_of);
  EXPECT_THROW(
      positions.merge(sv::FrequencyAccumulator(pd::areas(), &position_of)),
      std::invalid_argument);

  auto by_role = sv::FactorLevelAccumulator::by_role(core_key, opt_key);
  EXPECT_THROW(
      by_role.merge(sv::FactorLevelAccumulator::by_area_group(core_key,
                                                              opt_key)),
      std::invalid_argument);

  auto core_breakdown = sv::BreakdownAccumulator::core(core_key);
  EXPECT_THROW(core_breakdown.merge(sv::BreakdownAccumulator::opt(opt_key)),
               std::invalid_argument);
}

// -- streaming from the generator ------------------------------------------

TEST(StreamAccumulate, GeneratorShardsMatchMaterializedCohort) {
  constexpr std::uint64_t kSeed = 77;
  constexpr std::size_t kN = 203;
  const auto materialized = fpq::respondent::generate_main_cohort(kSeed, kN);
  const auto core_key = quiz::standard_core_truths();

  auto serial = sv::AverageTallyAccumulator::core(core_key);
  for (const auto& r : materialized) serial.add(r);

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    auto streamed = par::stream_accumulate(
        pool, kN, 13,
        [&] { return sv::AverageTallyAccumulator::core(core_key); },
        [&](auto& acc, std::size_t begin, std::size_t end) {
          fpq::respondent::CohortGenerator gen(kSeed);
          gen.seek(begin);
          for (std::size_t i = begin; i < end; ++i) acc.add(gen.next());
        });
    expect_tally_eq(streamed.finish(), serial.finish());
  }
}

TEST(StreamAccumulate, ZeroItemsYieldsIdentityAndChunksClamp) {
  par::ThreadPool pool(2);
  const auto core_key = quiz::standard_core_truths();
  const auto make = [&] {
    return sv::AverageTallyAccumulator::core(core_key);
  };
  const std::span<const sv::SurveyRecord> none;
  EXPECT_EQ(par::accumulate_span(pool, none, 8, make).finish().correct, 0.0);

  // chunks > total and chunks == 0 both clamp instead of misbehaving.
  const std::span<const sv::SurveyRecord> three(cohort().data(), 3);
  const auto serial = fold(make(), 0, 3).finish();
  expect_tally_eq(par::accumulate_span(pool, three, 64, make).finish(),
                  serial);
  expect_tally_eq(par::accumulate_span(pool, three, 0, make).finish(),
                  serial);
}

// -- streaming chunk bootstrap ---------------------------------------------

TEST(ChunkBootstrap, ChunkStatsArriveInChunkOrderAndCIIsThreadInvariant) {
  // Feed values whose chunk sums identify the chunk, then check order.
  par::ThreadPool pool(4);
  const std::size_t total = 40, chunks = 5;
  auto acc = par::stream_accumulate(
      pool, total, chunks, [] { return fpq::stats::ChunkStatAccumulator{}; },
      [](auto& a, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          a.add(static_cast<double>(i));
        }
      });
  const auto stats = acc.finish();
  ASSERT_EQ(stats.size(), chunks);
  double prev_sum = -1.0;
  std::size_t seen = 0;
  for (const auto& s : stats) {
    EXPECT_EQ(s.n, total / chunks);
    EXPECT_GT(s.sum, prev_sum) << "chunk stats out of chunk order";
    prev_sum = s.sum;
    seen += s.n;
  }
  EXPECT_EQ(seen, total);

  const auto ci1 = [&stats] {
    par::ThreadPool single(1);
    return fpq::stats::bootstrap_mean_from_chunks(stats, 500, 0.95, 42,
                                                  single);
  }();
  const auto ci4 =
      fpq::stats::bootstrap_mean_from_chunks(stats, 500, 0.95, 42, pool);
  EXPECT_EQ(ci1.estimate, ci4.estimate);
  EXPECT_EQ(ci1.lower, ci4.lower);
  EXPECT_EQ(ci1.upper, ci4.upper);
  EXPECT_EQ(ci1.estimate, 19.5);  // mean of 0..39
}

}  // namespace
