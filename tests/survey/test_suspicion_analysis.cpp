#include <gtest/gtest.h>

#include <vector>

#include "survey/suspicion_analysis.hpp"

namespace sv = fpq::survey;
namespace quiz = fpq::quiz;

namespace {

TEST(SuspicionAnalysis, DistributionsCountLevels) {
  std::vector<sv::SurveyRecord> records(4);
  for (auto& r : records) r.suspicion = {5, 1, 1, 5, 1};
  records[3].suspicion = {1, 1, 1, 4, 1};
  const auto dists = sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(records));
  const auto overflow =
      static_cast<std::size_t>(quiz::SuspicionItemId::kOverflow);
  EXPECT_DOUBLE_EQ(dists[overflow].proportion(5), 0.75);
  EXPECT_DOUBLE_EQ(dists[overflow].proportion(1), 0.25);
}

TEST(SuspicionAnalysis, SummaryComputesMeansAndOrdering) {
  std::vector<sv::SurveyRecord> records(10);
  for (auto& r : records) r.suspicion = {4, 2, 1, 5, 2};
  const auto dists = sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(records));
  const auto summary = sv::summarize_suspicion(dists);
  EXPECT_DOUBLE_EQ(summary.mean_level[0], 4.0);  // Overflow
  EXPECT_DOUBLE_EQ(summary.mean_level[3], 5.0);  // Invalid
  EXPECT_TRUE(summary.expert_ordering_holds);
  EXPECT_DOUBLE_EQ(summary.invalid_below_max, 0.0);
}

TEST(SuspicionAnalysis, DetectsBrokenOrdering) {
  std::vector<sv::SurveyRecord> records(10);
  for (auto& r : records) r.suspicion = {5, 5, 5, 1, 5};  // inverted world
  const auto summary = sv::summarize_suspicion(sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(records)));
  EXPECT_FALSE(summary.expert_ordering_holds);
}

TEST(SuspicionAnalysis, InvalidBelowMaxFraction) {
  std::vector<sv::SurveyRecord> records(3);
  records[0].suspicion = {1, 1, 1, 5, 1};
  records[1].suspicion = {1, 1, 1, 4, 1};
  records[2].suspicion = {1, 1, 1, 3, 1};
  const auto summary = sv::summarize_suspicion(sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(records)));
  EXPECT_NEAR(summary.invalid_below_max, 2.0 / 3.0, 1e-12);
}

TEST(SuspicionAnalysis, StudentRecordsWorkToo) {
  std::vector<sv::StudentRecord> students(5);
  for (auto& s : students) s.suspicion = {3, 2, 2, 5, 1};
  const auto dists = sv::suspicion_distributions(
      std::span<const sv::StudentRecord>(students));
  EXPECT_DOUBLE_EQ(dists[3].proportion(5), 1.0);
}

TEST(SuspicionAnalysis, DistanceFromAdvice) {
  // A cohort answering exactly the advised levels has distance 0.
  std::vector<sv::SurveyRecord> records(5);
  for (auto& r : records) r.suspicion = {4, 2, 1, 5, 2};
  const auto summary = sv::summarize_suspicion(sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(records)));
  EXPECT_DOUBLE_EQ(sv::distance_from_advice(summary), 0.0);

  // A uniformly unsuspicious cohort is far from advice.
  for (auto& r : records) r.suspicion = {1, 1, 1, 1, 1};
  const auto lax = sv::summarize_suspicion(sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(records)));
  EXPECT_GT(sv::distance_from_advice(lax), 1.5);
}

}  // namespace
