// The analysis pipeline on hand-built records with known answers — the
// pipeline must count exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "survey/analysis.hpp"

namespace sv = fpq::survey;
namespace quiz = fpq::quiz;

namespace {

quiz::CoreSheet perfect_sheet() {
  const auto key = quiz::standard_core_truths();
  quiz::CoreSheet sheet;
  for (std::size_t i = 0; i < quiz::kCoreQuestionCount; ++i) {
    sheet.answers[i] = quiz::to_answer(key[i]);
  }
  return sheet;
}

quiz::CoreSheet inverted_sheet() {
  const auto key = quiz::standard_core_truths();
  quiz::CoreSheet sheet;
  for (std::size_t i = 0; i < quiz::kCoreQuestionCount; ++i) {
    sheet.answers[i] = key[i] == quiz::Truth::kTrue ? quiz::Answer::kFalse
                                                    : quiz::Answer::kTrue;
  }
  return sheet;
}

TEST(Analysis, AverageCoreOnKnownRecords) {
  std::vector<sv::SurveyRecord> records(2);
  records[0].core = perfect_sheet();   // 15 correct
  records[1].core = inverted_sheet();  // 15 incorrect
  const auto avg = sv::average_core(records, quiz::standard_core_truths());
  EXPECT_DOUBLE_EQ(avg.correct, 7.5);
  EXPECT_DOUBLE_EQ(avg.incorrect, 7.5);
  EXPECT_DOUBLE_EQ(avg.dont_know, 0.0);
}

TEST(Analysis, AverageOptTfOnKnownRecords) {
  std::vector<sv::SurveyRecord> records(1);
  records[0].opt.tf_answers = {quiz::Answer::kFalse, quiz::Answer::kFalse,
                               quiz::Answer::kTrue};  // all correct
  const auto avg = sv::average_opt_tf(records, quiz::standard_opt_truths());
  EXPECT_DOUBLE_EQ(avg.correct, 3.0);
  EXPECT_DOUBLE_EQ(avg.dont_know, 0.0);
}

TEST(Analysis, HistogramPlacesScores) {
  std::vector<sv::SurveyRecord> records(3);
  records[0].core = perfect_sheet();
  records[1].core = perfect_sheet();
  records[2].core = inverted_sheet();
  const auto hist =
      sv::core_score_histogram(records, quiz::standard_core_truths());
  EXPECT_EQ(hist.count(15), 2u);
  EXPECT_EQ(hist.count(0), 1u);
  EXPECT_EQ(hist.total(), 3u);
  EXPECT_DOUBLE_EQ(hist.mean(), 10.0);
}

TEST(Analysis, CoreBreakdownPercentages) {
  std::vector<sv::SurveyRecord> records(4);
  records[0].core = perfect_sheet();
  records[1].core = perfect_sheet();
  records[2].core = inverted_sheet();
  // records[3] stays unanswered.
  const auto rows =
      sv::core_question_breakdown(records, quiz::standard_core_truths());
  ASSERT_EQ(rows.size(), quiz::kCoreQuestionCount);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.pct_correct, 50.0) << row.label;
    EXPECT_DOUBLE_EQ(row.pct_incorrect, 25.0) << row.label;
    EXPECT_DOUBLE_EQ(row.pct_unanswered, 25.0) << row.label;
  }
  EXPECT_EQ(rows[0].label, "Commutativity");
  EXPECT_EQ(rows[14].label, "Exception Signal");
}

TEST(Analysis, OptBreakdownIncludesLevelRow) {
  std::vector<sv::SurveyRecord> records(2);
  records[0].opt.level_choice = quiz::kOptLevelCorrectChoice;
  records[1].opt.level_choice = 0;  // wrong
  const auto rows =
      sv::opt_question_breakdown(records, quiz::standard_opt_truths());
  ASSERT_EQ(rows.size(), quiz::kOptQuestionCount);
  EXPECT_EQ(rows[2].label, "Standard-compliant Level");
  EXPECT_DOUBLE_EQ(rows[2].pct_correct, 50.0);
  EXPECT_DOUBLE_EQ(rows[2].pct_incorrect, 50.0);
  // T/F rows in paper order around it.
  EXPECT_EQ(rows[0].label, "MADD");
  EXPECT_EQ(rows[3].label, "Fast-math");
  EXPECT_DOUBLE_EQ(rows[0].pct_unanswered, 100.0);
}

TEST(Analysis, FrequencyTableCounts) {
  std::vector<sv::SurveyRecord> records(4);
  records[0].background.position = 0;
  records[1].background.position = 0;
  records[2].background.position = 1;
  records[3].background.position = 9;
  const auto rows = sv::frequency_table(
      records, fpq::paperdata::positions(),
      [](const sv::SurveyRecord& r) { return r.background.position; });
  ASSERT_EQ(rows.size(), fpq::paperdata::positions().size());
  EXPECT_EQ(rows[0].n, 2u);
  EXPECT_EQ(rows[1].n, 1u);
  EXPECT_EQ(rows[9].n, 1u);
  EXPECT_DOUBLE_EQ(rows[0].percent, 50.0);
  EXPECT_EQ(rows[0].label, "Ph.D. student");
}

TEST(Analysis, MultiSelectTableCounts) {
  std::vector<sv::SurveyRecord> records(2);
  records[0].background.fp_languages = {0, 1};
  records[1].background.fp_languages = {0};
  const auto rows = sv::multi_select_table(
      records, fpq::paperdata::fp_languages(),
      [](const sv::SurveyRecord& r) -> const std::vector<std::size_t>& {
        return r.background.fp_languages;
      });
  EXPECT_EQ(rows[0].n, 2u);  // Python
  EXPECT_EQ(rows[1].n, 1u);  // C
  EXPECT_DOUBLE_EQ(rows[0].percent, 100.0);
}

TEST(Analysis, EmptyRecordsGiveZeroes) {
  const std::vector<sv::SurveyRecord> none;
  const auto avg = sv::average_core(none, quiz::standard_core_truths());
  EXPECT_DOUBLE_EQ(avg.correct, 0.0);
  const auto hist =
      sv::core_score_histogram(none, quiz::standard_core_truths());
  EXPECT_EQ(hist.total(), 0u);
}

// Regression: the legacy loops divided by records.size(), so an empty
// cohort produced NaN percentages. Every entry point must now return
// zeros. std::isnan would also fail the == 0.0 checks, but assert it
// explicitly so the failure message names the bug.
TEST(Analysis, EmptyCohortNeverProducesNaN) {
  const std::vector<sv::SurveyRecord> none;

  const auto avg_opt = sv::average_opt_tf(none, quiz::standard_opt_truths());
  EXPECT_FALSE(std::isnan(avg_opt.correct));
  EXPECT_DOUBLE_EQ(avg_opt.unanswered, 0.0);

  const auto freq = sv::frequency_table(
      none, fpq::paperdata::positions(),
      [](const sv::SurveyRecord& r) { return r.background.position; });
  for (const auto& row : freq) {
    EXPECT_FALSE(std::isnan(row.percent)) << row.label;
    EXPECT_DOUBLE_EQ(row.percent, 0.0) << row.label;
  }

  const auto multi = sv::multi_select_table(
      none, fpq::paperdata::fp_languages(),
      [](const sv::SurveyRecord& r) -> const std::vector<std::size_t>& {
        return r.background.fp_languages;
      });
  for (const auto& row : multi) EXPECT_DOUBLE_EQ(row.percent, 0.0);

  const auto core_rows =
      sv::core_question_breakdown(none, quiz::standard_core_truths());
  ASSERT_EQ(core_rows.size(), quiz::kCoreQuestionCount);
  for (const auto& row : core_rows) {
    EXPECT_FALSE(std::isnan(row.pct_correct)) << row.label;
    EXPECT_DOUBLE_EQ(row.pct_correct, 0.0) << row.label;
    EXPECT_DOUBLE_EQ(row.pct_unanswered, 0.0) << row.label;
  }

  const auto opt_rows =
      sv::opt_question_breakdown(none, quiz::standard_opt_truths());
  for (const auto& row : opt_rows) {
    EXPECT_FALSE(std::isnan(row.pct_correct)) << row.label;
    EXPECT_DOUBLE_EQ(row.pct_correct, 0.0) << row.label;
  }
}

}  // namespace
