#include <gtest/gtest.h>

#include <vector>

#include "core/ground_truth.hpp"
#include "survey/factor_analysis.hpp"

namespace sv = fpq::survey;
namespace quiz = fpq::quiz;

namespace {

quiz::CoreSheet sheet_with_score(std::size_t correct) {
  const auto key = quiz::standard_core_truths();
  quiz::CoreSheet sheet;
  for (std::size_t i = 0; i < quiz::kCoreQuestionCount; ++i) {
    if (i < correct) {
      sheet.answers[i] = quiz::to_answer(key[i]);
    } else {
      sheet.answers[i] = key[i] == quiz::Truth::kTrue
                             ? quiz::Answer::kFalse
                             : quiz::Answer::kTrue;
    }
  }
  return sheet;
}

TEST(FactorAnalysis, ConditionsBySizeBin) {
  std::vector<sv::SurveyRecord> records(3);
  records[0].background.contributed_size = 4;  // >1M bin
  records[0].core = sheet_with_score(12);
  records[1].background.contributed_size = 4;
  records[1].core = sheet_with_score(10);
  records[2].background.contributed_size = 2;  // 100-1K bin
  records[2].core = sheet_with_score(6);

  const auto levels = sv::by_contributed_size(
      records, quiz::standard_core_truths(), quiz::standard_opt_truths());
  ASSERT_EQ(levels.size(), 5u);
  EXPECT_EQ(levels[4].label, ">1M");
  EXPECT_EQ(levels[4].n, 2u);
  EXPECT_DOUBLE_EQ(levels[4].core.correct, 11.0);
  EXPECT_EQ(levels[0].n, 1u);
  EXPECT_DOUBLE_EQ(levels[0].core.correct, 6.0);
  EXPECT_EQ(levels[1].n, 0u);
}

TEST(FactorAnalysis, SkipsUnchartedLevels) {
  std::vector<sv::SurveyRecord> records(1);
  records[0].background.contributed_size = 6;  // Not Reported
  const auto levels = sv::by_contributed_size(
      records, quiz::standard_core_truths(), quiz::standard_opt_truths());
  for (const auto& level : levels) EXPECT_EQ(level.n, 0u);
}

TEST(FactorAnalysis, ConditionsByAreaGroup) {
  std::vector<sv::SurveyRecord> records(2);
  records[0].background.area = 5;  // EE
  records[0].core = sheet_with_score(11);
  records[1].background.area = 1;  // PhysSci
  records[1].core = sheet_with_score(7);
  const auto levels = sv::by_area_group(
      records, quiz::standard_core_truths(), quiz::standard_opt_truths());
  ASSERT_EQ(levels.size(), sv::kAreaGroupCount);
  EXPECT_EQ(levels[0].label, "EE");
  EXPECT_DOUBLE_EQ(levels[0].core.correct, 11.0);
  EXPECT_EQ(levels[4].label, "PhysSci");
  EXPECT_DOUBLE_EQ(levels[4].core.correct, 7.0);
}

TEST(FactorAnalysis, OptTallyConditioned) {
  std::vector<sv::SurveyRecord> records(1);
  records[0].background.dev_role = 1;  // main-role SWE
  records[0].opt.tf_answers = {quiz::Answer::kFalse, quiz::Answer::kDontKnow,
                               quiz::Answer::kTrue};
  const auto levels = sv::by_role(records, quiz::standard_core_truths(),
                                  quiz::standard_opt_truths());
  EXPECT_DOUBLE_EQ(levels[0].opt.correct, 2.0);
  EXPECT_DOUBLE_EQ(levels[0].opt.dont_know, 1.0);
}

TEST(FactorAnalysis, TrainingOrderIsIncreasing) {
  std::vector<sv::SurveyRecord> records(2);
  records[0].background.formal_training = 1;  // None
  records[0].core = sheet_with_score(5);
  records[1].background.formal_training = 3;  // Courses
  records[1].core = sheet_with_score(12);
  const auto levels = sv::by_formal_training(
      records, quiz::standard_core_truths(), quiz::standard_opt_truths());
  EXPECT_EQ(levels[0].label, "None");
  EXPECT_DOUBLE_EQ(levels[0].core.correct, 5.0);
  EXPECT_EQ(levels[3].label, "One or more courses");
  EXPECT_DOUBLE_EQ(levels[3].core.correct, 12.0);
}

TEST(FactorAnalysis, SpreadIgnoresEmptyLevels) {
  std::vector<sv::SurveyRecord> records(2);
  records[0].background.contributed_size = 4;
  records[0].core = sheet_with_score(11);
  records[1].background.contributed_size = 2;
  records[1].core = sheet_with_score(7);
  const auto levels = sv::by_contributed_size(
      records, quiz::standard_core_truths(), quiz::standard_opt_truths());
  EXPECT_DOUBLE_EQ(sv::core_correct_spread(levels), 4.0);
}

}  // namespace
