#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "respondent/population.hpp"
#include "survey/csv_io.hpp"

namespace sv = fpq::survey;

namespace {

sv::SurveyRecord sample_record() {
  sv::SurveyRecord r;
  r.respondent_id = 42;
  r.background.position = 1;
  r.background.area = 3;
  r.background.formal_training = 2;
  r.background.informal_training = {0, 2};
  r.background.dev_role = 0;
  r.background.fp_languages = {0, 1, 2};
  r.background.arb_prec_languages = {};
  r.background.contributed_size = 4;
  r.background.contributed_extent = 1;
  r.background.involved_size = 2;
  r.background.involved_extent = 0;
  r.core[fpq::quiz::CoreQuestionId::kIdentity] = fpq::quiz::Answer::kFalse;
  r.core[fpq::quiz::CoreQuestionId::kSquare] = fpq::quiz::Answer::kDontKnow;
  r.opt.tf_answers = {fpq::quiz::Answer::kTrue, fpq::quiz::Answer::kDontKnow,
                      fpq::quiz::Answer::kTrue};
  r.opt.level_choice = 2;
  r.suspicion = {4, 2, 1, 5, 2};
  return r;
}

TEST(CsvIo, RoundTripsOneRecord) {
  const sv::SurveyRecord original = sample_record();
  std::ostringstream out;
  sv::write_csv(out, std::vector<sv::SurveyRecord>{original});

  std::istringstream in(out.str());
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_csv(in, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  const auto& r = parsed[0];
  EXPECT_EQ(r.respondent_id, 42u);
  EXPECT_EQ(r.background.area, 3u);
  EXPECT_EQ(r.background.informal_training,
            (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(r.background.arb_prec_languages.empty());
  EXPECT_EQ(r.core[fpq::quiz::CoreQuestionId::kIdentity],
            fpq::quiz::Answer::kFalse);
  EXPECT_EQ(r.core[fpq::quiz::CoreQuestionId::kSquare],
            fpq::quiz::Answer::kDontKnow);
  EXPECT_EQ(r.core[fpq::quiz::CoreQuestionId::kOrdering],
            fpq::quiz::Answer::kUnanswered);
  EXPECT_EQ(r.opt.level_choice, 2u);
  EXPECT_EQ(r.suspicion, (std::array<int, 5>{4, 2, 1, 5, 2}));
}

TEST(CsvIo, RoundTripsAFullCohort) {
  const auto cohort = fpq::respondent::generate_main_cohort(7, 199);
  std::ostringstream out;
  sv::write_csv(out, cohort);

  std::istringstream in(out.str());
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_csv(in, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), cohort.size());
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    EXPECT_EQ(parsed[i].respondent_id, cohort[i].respondent_id);
    EXPECT_EQ(parsed[i].background.area, cohort[i].background.area);
    EXPECT_EQ(parsed[i].core.answers, cohort[i].core.answers);
    EXPECT_EQ(parsed[i].opt.tf_answers, cohort[i].opt.tf_answers);
    EXPECT_EQ(parsed[i].opt.level_choice, cohort[i].opt.level_choice);
    EXPECT_EQ(parsed[i].suspicion, cohort[i].suspicion);
  }
}

TEST(CsvIo, LevelSentinelsRoundTrip) {
  sv::SurveyRecord r = sample_record();
  r.opt.level_choice = fpq::quiz::kOptLevelDontKnow;
  std::ostringstream out;
  sv::write_csv(out, std::vector<sv::SurveyRecord>{r});
  std::istringstream in(out.str());
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_csv(in, parsed, error)) << error;
  EXPECT_EQ(parsed[0].opt.level_choice, fpq::quiz::kOptLevelDontKnow);
}

TEST(CsvIo, RejectsBadHeader) {
  std::istringstream in("id,wrong\n");
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(CsvIo, RejectsWrongFieldCount) {
  std::istringstream in(sv::csv_header() + "\n1,2,3\n");
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(CsvIo, RejectsInvalidSuspicionLevel) {
  const sv::SurveyRecord r = sample_record();
  std::ostringstream out;
  sv::write_csv(out, std::vector<sv::SurveyRecord>{r});
  std::string text = out.str();
  // Break the last suspicion value.
  text.replace(text.rfind(",2"), 2, ",9");
  std::istringstream in(text);
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
}

TEST(CsvIo, StudentCohortRoundTrips) {
  const auto students = fpq::respondent::generate_student_cohort(9, 52);
  std::ostringstream out;
  sv::write_student_csv(out, students);
  std::istringstream in(out.str());
  std::vector<sv::StudentRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_student_csv(in, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), students.size());
  for (std::size_t i = 0; i < students.size(); ++i) {
    EXPECT_EQ(parsed[i].respondent_id, students[i].respondent_id);
    EXPECT_EQ(parsed[i].suspicion, students[i].suspicion);
  }
}

TEST(CsvIo, StudentCsvRejectsBadLevel) {
  std::istringstream in(sv::student_csv_header() + "\n1,1,2,3,4,9\n");
  std::vector<sv::StudentRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_student_csv(in, parsed, error));
}

TEST(CsvIo, EmptyInputRejected) {
  std::istringstream in("");
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
}

// -- Corrupt-corpus tests: the structured ParseError API -------------------

// One valid header+row CSV document to mutate.
std::string valid_csv_text() {
  std::ostringstream out;
  sv::write_csv(out, std::vector<sv::SurveyRecord>{sample_record()});
  return out.str();
}

std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t sep = line.find(',', start);
    fields.push_back(line.substr(
        start, sep == std::string::npos ? sep : sep - start));
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return fields;
}

// Replaces the named column of the first data row with `value`.
std::string corrupt_field(const std::string& column,
                          const std::string& value) {
  const std::string text = valid_csv_text();
  const std::size_t header_end = text.find('\n');
  const std::string header = text.substr(0, header_end);
  std::string row = text.substr(header_end + 1);
  if (!row.empty() && row.back() == '\n') row.pop_back();

  const std::vector<std::string> names = split_csv(header);
  std::vector<std::string> fields = split_csv(row);
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == column) fields[i] = value;
  }
  std::string out = header + "\n";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) out += ',';
    out += fields[i];
  }
  return out + "\n";
}

std::optional<sv::ParseError> parse_of(const std::string& text) {
  std::istringstream in(text);
  std::vector<sv::SurveyRecord> parsed;
  return sv::read_csv(in, parsed);
}

TEST(CsvIoCorrupt, TruncatedRowNamesLineNotField) {
  const std::string text = valid_csv_text();
  // Drop everything after the 5th comma of the data row.
  const std::size_t header_end = text.find('\n');
  std::size_t cut = header_end + 1;
  for (int commas = 0; commas < 5; ++commas) {
    cut = text.find(',', cut + 1);
  }
  const auto err = parse_of(text.substr(0, cut) + "\n");
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->line, 2u);
  EXPECT_TRUE(err->field.empty());
  EXPECT_NE(err->message.find("truncated"), std::string::npos)
      << err->message;
  EXPECT_NE(err->to_string().find("line 2"), std::string::npos);
}

TEST(CsvIoCorrupt, OutOfRangeEnumCodeNamesTheColumn) {
  const auto err = parse_of(corrupt_field("area", "99"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->line, 2u);
  EXPECT_EQ(err->field, "area");
  EXPECT_NE(err->message.find("out of range"), std::string::npos)
      << err->message;
}

TEST(CsvIoCorrupt, OutOfRangeMultiSelectIndexNamesTheColumn) {
  const auto err = parse_of(corrupt_field("fp_languages", "0;99"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "fp_languages");
  EXPECT_NE(err->message.find("out of range"), std::string::npos);
}

TEST(CsvIoCorrupt, NonNumericFieldNamesTheColumn) {
  const auto err = parse_of(corrupt_field("position", "senior"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "position");

  const auto id_err = parse_of(corrupt_field("id", "4x2"));
  ASSERT_TRUE(id_err.has_value());
  EXPECT_EQ(id_err->field, "id");
}

TEST(CsvIoCorrupt, BadAnswerCharNamesTheQuestionColumn) {
  const auto err = parse_of(corrupt_field("core_q3", "X"));
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "core_q3");
  EXPECT_NE(err->message.find("T, F, D or U"), std::string::npos);
}

TEST(CsvIoCorrupt, BadLevelAndLikertNameTheirColumns) {
  const auto level = parse_of(corrupt_field("opt_level", "17"));
  ASSERT_TRUE(level.has_value());
  EXPECT_EQ(level->field, "opt_level");

  const auto likert = parse_of(corrupt_field("suspicion_3", "0"));
  ASSERT_TRUE(likert.has_value());
  EXPECT_EQ(likert->field, "suspicion_3");
  EXPECT_NE(likert->message.find("1..5"), std::string::npos);
}

TEST(CsvIoCorrupt, ErrorOnLaterRowReportsItsLineNumber) {
  const std::string text = valid_csv_text();
  const std::size_t header_end = text.find('\n');
  const std::string good_row =
      text.substr(header_end + 1, text.size() - header_end - 2);
  const std::string bad =
      corrupt_field("dev_role", "99");  // header + corrupt row
  // Good row first (line 2), corrupt row second (line 3).
  const std::string bad_row = bad.substr(bad.find('\n') + 1);
  const auto err =
      parse_of(text.substr(0, header_end + 1) + good_row + "\n" + bad_row);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->line, 3u);
  EXPECT_EQ(err->field, "dev_role");
}

TEST(CsvIoCorrupt, FailedParseLeavesRecordsUntouched) {
  std::vector<sv::SurveyRecord> parsed(3);
  std::istringstream in(corrupt_field("area", "99"));
  ASSERT_TRUE(sv::read_csv(in, parsed).has_value());
  EXPECT_EQ(parsed.size(), 3u) << "a failed read must not clobber records";
}

TEST(CsvIoCorrupt, LegacyApiFlattensTheStructuredError) {
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  std::istringstream in(corrupt_field("area", "99"));
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("area"), std::string::npos) << error;
}

TEST(CsvIoCorrupt, ValidCorpusStillParsesAfterHardening) {
  // Boundary values: the largest valid index of every enum table must
  // still be accepted (the range checks are exclusive upper bounds).
  const auto err = parse_of(valid_csv_text());
  EXPECT_FALSE(err.has_value()) << err->to_string();
}

TEST(CsvIoCorrupt, StudentReaderReportsStructuredErrors) {
  std::istringstream in(sv::student_csv_header() + "\n1,1,2,3,4,9\n");
  std::vector<sv::StudentRecord> parsed;
  const auto err = sv::read_student_csv(in, parsed);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->line, 2u);
  EXPECT_EQ(err->field, "suspicion_5");

  std::istringstream truncated(sv::student_csv_header() + "\n1,1,2\n");
  const auto terr = sv::read_student_csv(truncated, parsed);
  ASSERT_TRUE(terr.has_value());
  EXPECT_EQ(terr->line, 2u);
  EXPECT_TRUE(terr->field.empty());
}

// -- Streaming reader: per-record callback, no vector ----------------------

TEST(CsvIoStreaming, DeliversRecordsAsTheyParse) {
  const auto cohort = fpq::respondent::generate_main_cohort(15, 20);
  std::ostringstream out;
  sv::write_csv(out, cohort);

  std::istringstream in(out.str());
  std::size_t delivered = 0;
  const auto err =
      sv::for_each_csv_record(in, [&](sv::SurveyRecord&& r) {
        EXPECT_EQ(r.respondent_id, cohort[delivered].respondent_id);
        EXPECT_EQ(r.core.answers, cohort[delivered].core.answers);
        ++delivered;
      });
  EXPECT_FALSE(err.has_value()) << err->to_string();
  EXPECT_EQ(delivered, cohort.size());
}

TEST(CsvIoStreaming, StopsAtFirstBadRowKeepingEarlierDeliveries) {
  // Row 2 is valid, row 3 is corrupt: the callback must see exactly the
  // valid prefix and the error must name the bad line.
  const std::string good = valid_csv_text();
  const std::size_t header_end = good.find('\n');
  const std::string bad_doc = corrupt_field("area", "99");
  const std::string bad_row = bad_doc.substr(bad_doc.find('\n') + 1);
  std::istringstream in(good + bad_row);

  std::size_t delivered = 0;
  const auto err = sv::for_each_csv_record(
      in, [&](sv::SurveyRecord&&) { ++delivered; });
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->line, 3u);
  EXPECT_EQ(err->field, "area");
  EXPECT_EQ(delivered, 1u) << "the valid prefix stays delivered";
  (void)header_end;
}

TEST(CsvIoStreaming, FeedsAnAccumulatorWithoutAVector) {
  // The intended composition: CSV stream -> accumulator, no record vector.
  const auto cohort = fpq::respondent::generate_main_cohort(15, 25);
  std::ostringstream out;
  sv::write_csv(out, cohort);

  std::size_t suspicious = 0;
  std::istringstream in(out.str());
  const auto err =
      sv::for_each_csv_record(in, [&](sv::SurveyRecord&& r) {
        if (r.suspicion[0] >= 4) ++suspicious;
      });
  EXPECT_FALSE(err.has_value());
  std::size_t expected = 0;
  for (const auto& r : cohort) {
    if (r.suspicion[0] >= 4) ++expected;
  }
  EXPECT_EQ(suspicious, expected);
}

TEST(CsvIoStreaming, StudentVariantStreamsAndReportsErrors) {
  const auto students = fpq::respondent::generate_student_cohort(15, 12);
  std::ostringstream out;
  sv::write_student_csv(out, students);

  std::istringstream in(out.str());
  std::size_t delivered = 0;
  const auto ok = sv::for_each_student_csv_record(
      in, [&](sv::StudentRecord&& r) {
        EXPECT_EQ(r.suspicion, students[delivered].suspicion);
        ++delivered;
      });
  EXPECT_FALSE(ok.has_value());
  EXPECT_EQ(delivered, students.size());

  std::istringstream bad(sv::student_csv_header() + "\n1,1,2,3,4,9\n");
  std::size_t bad_delivered = 0;
  const auto err = sv::for_each_student_csv_record(
      bad, [&](sv::StudentRecord&&) { ++bad_delivered; });
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->field, "suspicion_5");
  EXPECT_EQ(bad_delivered, 0u);
}

TEST(CsvIoStreaming, BadHeaderDeliversNothing) {
  std::istringstream in("id,wrong\n");
  std::size_t delivered = 0;
  const auto err = sv::for_each_csv_record(
      in, [&](sv::SurveyRecord&&) { ++delivered; });
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(delivered, 0u);
}

}  // namespace
