#include <gtest/gtest.h>

#include <sstream>

#include "respondent/population.hpp"
#include "survey/csv_io.hpp"

namespace sv = fpq::survey;

namespace {

sv::SurveyRecord sample_record() {
  sv::SurveyRecord r;
  r.respondent_id = 42;
  r.background.position = 1;
  r.background.area = 3;
  r.background.formal_training = 2;
  r.background.informal_training = {0, 2};
  r.background.dev_role = 0;
  r.background.fp_languages = {0, 1, 2};
  r.background.arb_prec_languages = {};
  r.background.contributed_size = 4;
  r.background.contributed_extent = 1;
  r.background.involved_size = 2;
  r.background.involved_extent = 0;
  r.core[fpq::quiz::CoreQuestionId::kIdentity] = fpq::quiz::Answer::kFalse;
  r.core[fpq::quiz::CoreQuestionId::kSquare] = fpq::quiz::Answer::kDontKnow;
  r.opt.tf_answers = {fpq::quiz::Answer::kTrue, fpq::quiz::Answer::kDontKnow,
                      fpq::quiz::Answer::kTrue};
  r.opt.level_choice = 2;
  r.suspicion = {4, 2, 1, 5, 2};
  return r;
}

TEST(CsvIo, RoundTripsOneRecord) {
  const sv::SurveyRecord original = sample_record();
  std::ostringstream out;
  sv::write_csv(out, std::vector<sv::SurveyRecord>{original});

  std::istringstream in(out.str());
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_csv(in, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), 1u);
  const auto& r = parsed[0];
  EXPECT_EQ(r.respondent_id, 42u);
  EXPECT_EQ(r.background.area, 3u);
  EXPECT_EQ(r.background.informal_training,
            (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(r.background.arb_prec_languages.empty());
  EXPECT_EQ(r.core[fpq::quiz::CoreQuestionId::kIdentity],
            fpq::quiz::Answer::kFalse);
  EXPECT_EQ(r.core[fpq::quiz::CoreQuestionId::kSquare],
            fpq::quiz::Answer::kDontKnow);
  EXPECT_EQ(r.core[fpq::quiz::CoreQuestionId::kOrdering],
            fpq::quiz::Answer::kUnanswered);
  EXPECT_EQ(r.opt.level_choice, 2u);
  EXPECT_EQ(r.suspicion, (std::array<int, 5>{4, 2, 1, 5, 2}));
}

TEST(CsvIo, RoundTripsAFullCohort) {
  const auto cohort = fpq::respondent::generate_main_cohort(7, 199);
  std::ostringstream out;
  sv::write_csv(out, cohort);

  std::istringstream in(out.str());
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_csv(in, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), cohort.size());
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    EXPECT_EQ(parsed[i].respondent_id, cohort[i].respondent_id);
    EXPECT_EQ(parsed[i].background.area, cohort[i].background.area);
    EXPECT_EQ(parsed[i].core.answers, cohort[i].core.answers);
    EXPECT_EQ(parsed[i].opt.tf_answers, cohort[i].opt.tf_answers);
    EXPECT_EQ(parsed[i].opt.level_choice, cohort[i].opt.level_choice);
    EXPECT_EQ(parsed[i].suspicion, cohort[i].suspicion);
  }
}

TEST(CsvIo, LevelSentinelsRoundTrip) {
  sv::SurveyRecord r = sample_record();
  r.opt.level_choice = fpq::quiz::kOptLevelDontKnow;
  std::ostringstream out;
  sv::write_csv(out, std::vector<sv::SurveyRecord>{r});
  std::istringstream in(out.str());
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_csv(in, parsed, error)) << error;
  EXPECT_EQ(parsed[0].opt.level_choice, fpq::quiz::kOptLevelDontKnow);
}

TEST(CsvIo, RejectsBadHeader) {
  std::istringstream in("id,wrong\n");
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(CsvIo, RejectsWrongFieldCount) {
  std::istringstream in(sv::csv_header() + "\n1,2,3\n");
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(CsvIo, RejectsInvalidSuspicionLevel) {
  const sv::SurveyRecord r = sample_record();
  std::ostringstream out;
  sv::write_csv(out, std::vector<sv::SurveyRecord>{r});
  std::string text = out.str();
  // Break the last suspicion value.
  text.replace(text.rfind(",2"), 2, ",9");
  std::istringstream in(text);
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
}

TEST(CsvIo, StudentCohortRoundTrips) {
  const auto students = fpq::respondent::generate_student_cohort(9, 52);
  std::ostringstream out;
  sv::write_student_csv(out, students);
  std::istringstream in(out.str());
  std::vector<sv::StudentRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_student_csv(in, parsed, error)) << error;
  ASSERT_EQ(parsed.size(), students.size());
  for (std::size_t i = 0; i < students.size(); ++i) {
    EXPECT_EQ(parsed[i].respondent_id, students[i].respondent_id);
    EXPECT_EQ(parsed[i].suspicion, students[i].suspicion);
  }
}

TEST(CsvIo, StudentCsvRejectsBadLevel) {
  std::istringstream in(sv::student_csv_header() + "\n1,1,2,3,4,9\n");
  std::vector<sv::StudentRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_student_csv(in, parsed, error));
}

TEST(CsvIo, EmptyInputRejected) {
  std::istringstream in("");
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  EXPECT_FALSE(sv::read_csv(in, parsed, error));
}

}  // namespace
