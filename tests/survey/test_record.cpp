// The record data model's collapse mappings (Figure 2 -> area groups,
// Figure 8 -> ordered size bins, ...), which Figures 16-21 depend on.

#include <gtest/gtest.h>

#include "paperdata/paperdata.hpp"
#include "survey/record.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;

namespace {

TEST(Record, AreaGroupCollapse) {
  EXPECT_EQ(sv::area_group_of(0), sv::AreaGroup::kCS);
  EXPECT_EQ(sv::area_group_of(1), sv::AreaGroup::kPhysSci);
  EXPECT_EQ(sv::area_group_of(2), sv::AreaGroup::kEng);
  EXPECT_EQ(sv::area_group_of(3), sv::AreaGroup::kCE);
  EXPECT_EQ(sv::area_group_of(4), sv::AreaGroup::kMath);
  EXPECT_EQ(sv::area_group_of(5), sv::AreaGroup::kEE);
  EXPECT_EQ(sv::area_group_of(8), sv::AreaGroup::kCS) << "CS&Math";
  EXPECT_EQ(sv::area_group_of(9), sv::AreaGroup::kCE) << "CS&CE";
  EXPECT_EQ(sv::area_group_of(12), sv::AreaGroup::kEng) << "Robotics";
  EXPECT_EQ(sv::area_group_of(6), sv::AreaGroup::kOther) << "Economics";
  EXPECT_EQ(sv::area_group_of(18), sv::AreaGroup::kOther) << "Unreported";
}

TEST(Record, AreaGroupTotalsMatchFactorTable) {
  // Summing Figure 2 counts through the collapse must reproduce the
  // per-group n in paperdata::area_effect().
  std::array<std::size_t, sv::kAreaGroupCount> totals{};
  const auto areas = pd::areas();
  for (std::size_t i = 0; i < areas.size(); ++i) {
    totals[static_cast<std::size_t>(sv::area_group_of(i))] += areas[i].n;
  }
  const auto targets = pd::area_effect();
  ASSERT_EQ(targets.size(), sv::kAreaGroupCount);
  for (std::size_t gidx = 0; gidx < sv::kAreaGroupCount; ++gidx) {
    EXPECT_EQ(totals[gidx], targets[gidx].n) << targets[gidx].label;
  }
}

TEST(Record, ContributedSizeBins) {
  EXPECT_EQ(sv::contributed_size_bin(2), 0u);  // 100-1K
  EXPECT_EQ(sv::contributed_size_bin(0), 1u);  // 1K-10K
  EXPECT_EQ(sv::contributed_size_bin(1), 2u);  // 10K-100K
  EXPECT_EQ(sv::contributed_size_bin(3), 3u);  // 100K-1M
  EXPECT_EQ(sv::contributed_size_bin(4), 4u);  // >1M
  EXPECT_EQ(sv::contributed_size_bin(5), sv::kNoSizeBin);  // <100
  EXPECT_EQ(sv::contributed_size_bin(6), sv::kNoSizeBin);  // Not Reported
}

TEST(Record, SizeBinTotalsMatchFactorTable) {
  const auto sizes = pd::contributed_codebase_sizes();
  const auto targets = pd::contributed_size_effect();
  std::array<std::size_t, sv::kSizeBinCount> totals{};
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto bin = sv::contributed_size_bin(i);
    if (bin != sv::kNoSizeBin) totals[bin] += sizes[i].n;
  }
  for (std::size_t b = 0; b < sv::kSizeBinCount; ++b) {
    EXPECT_EQ(totals[b], targets[b].n) << targets[b].label;
  }
}

TEST(Record, RoleAndTrainingMappings) {
  EXPECT_EQ(sv::role_index(1), 0u);  // main-role SWE -> first chart slot
  EXPECT_EQ(sv::role_index(0), 2u);  // dev-support
  EXPECT_EQ(sv::role_index(4), sv::kNoRole);

  EXPECT_EQ(sv::training_index(1), 0u);  // None first
  EXPECT_EQ(sv::training_index(0), 1u);  // Lectures
  EXPECT_EQ(sv::training_index(2), 2u);  // Weeks
  EXPECT_EQ(sv::training_index(3), 3u);  // Courses
  EXPECT_EQ(sv::training_index(4), sv::kNoTraining);
}

TEST(Record, RoleTotalsMatchFactorTable) {
  const auto roles = pd::dev_roles();
  const auto targets = pd::role_effect();
  std::array<std::size_t, sv::kRoleCount> totals{};
  for (std::size_t i = 0; i < roles.size(); ++i) {
    const auto idx = sv::role_index(i);
    if (idx != sv::kNoRole) totals[idx] += roles[i].n;
  }
  for (std::size_t r = 0; r < sv::kRoleCount; ++r) {
    EXPECT_EQ(totals[r], targets[r].n) << targets[r].label;
  }
}

TEST(Record, DefaultRecordIsSane) {
  const sv::SurveyRecord r;
  for (auto a : r.core.answers) EXPECT_EQ(a, fpq::quiz::Answer::kUnanswered);
  for (int s : r.suspicion) EXPECT_EQ(s, 1);
}

}  // namespace
