// fpq::parallel — the sharded differential oracle itself.
//
// The sweeps are the load-bearing claim of the whole harness (softfloat
// agrees with exact references / native hardware), so beyond "zero
// mismatches" these tests pin the engine's contract: reports are pure
// functions of the config — independent of thread count, chunking and
// cache state — and the cache actually memoizes.

#include <gtest/gtest.h>

#include <cstdint>

#include "parallel/oracle_sweep.hpp"
#include "parallel/result_cache.hpp"
#include "parallel/thread_pool.hpp"

namespace par = fpq::parallel;

namespace {

par::SweepConfig small_config() {
  par::SweepConfig config;
  config.cases_per_task = 256;
  config.tasks_per_axis = 4;
  return config;
}

TEST(OracleSweep, Binary16SweepFindsNoMismatches) {
  par::ThreadPool pool;
  const auto report =
      par::run_binary16_sweep(pool, small_config(), nullptr);
  EXPECT_EQ(report.mismatches, 0u) << report.first_mismatch;
  // 6 ops x 5 modes x 4 classes x 4 tasks x 256 cases.
  EXPECT_EQ(report.tasks, 6u * 5u * 4u * 4u);
  EXPECT_EQ(report.checked, report.tasks * 256u);
  EXPECT_EQ(report.cache_hits, 0u);
}

TEST(OracleSweep, NativeSweepsFindNoMismatchesAndSkipTiesAway) {
  par::ThreadPool pool;
  for (const int bits : {32, 64}) {
    const auto report =
        par::run_native_sweep(pool, bits, small_config(), nullptr);
    EXPECT_EQ(report.mismatches, 0u)
        << "binary" << bits << ": " << report.first_mismatch;
    // roundTiesToAway is not hardware-expressible: 4 modes remain.
    EXPECT_EQ(report.tasks, 6u * 4u * 4u * 4u) << "binary" << bits;
  }
}

TEST(OracleSweep, ReportIsIndependentOfThreadCount) {
  const auto config = small_config();
  par::ThreadPool one(1);
  const auto ref = par::run_binary16_sweep(one, config, nullptr);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    par::ThreadPool pool(threads);
    const auto got = par::run_binary16_sweep(pool, config, nullptr);
    EXPECT_EQ(got.checked, ref.checked) << threads << " threads";
    EXPECT_EQ(got.mismatches, ref.mismatches) << threads << " threads";
    EXPECT_EQ(got.tasks, ref.tasks) << threads << " threads";
  }
}

TEST(OracleSweep, RepeatSweepIsServedFromTheCache) {
  par::ThreadPool pool;
  par::ResultCache cache;
  const auto config = small_config();
  const auto cold = par::run_binary16_sweep(pool, config, &cache);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cache.size(), cold.tasks);

  const auto warm = par::run_binary16_sweep(pool, config, &cache);
  EXPECT_EQ(warm.cache_hits, warm.tasks);  // every shard memoized
  EXPECT_EQ(warm.checked, cold.checked);
  EXPECT_EQ(warm.mismatches, cold.mismatches);

  // Native shards share the cache without colliding: different backend
  // and format fields make different keys.
  const auto native = par::run_native_sweep(pool, 64, config, &cache);
  EXPECT_EQ(native.cache_hits, 0u);
  EXPECT_EQ(cache.size(), cold.tasks + native.tasks);
}

TEST(OracleSweep, ExhaustiveReportIsIndependentOfChunkingAndThreads) {
  // Small cell (one op, one mode) so the cross-product of chunkings and
  // thread counts stays fast. Per-(cell, operand) seeding means even the
  // partner operands must agree across every decomposition.
  par::ExhaustiveConfig config;
  config.ops = {par::SweepOp::kMul};
  config.modes = {fpq::softfloat::Rounding::kNearestAway};
  config.samples_per_operand = 1;

  par::ThreadPool one(1);
  config.chunks_per_cell = 64;
  const auto ref = par::run_exhaustive_binary16(one, config);
  EXPECT_EQ(ref.checked, 0x10000u);
  EXPECT_EQ(ref.mismatches, 0u) << ref.first_mismatch;

  for (const std::size_t chunks : {std::size_t{1}, std::size_t{7},
                                   std::size_t{256}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      par::ThreadPool pool(threads);
      config.chunks_per_cell = chunks;
      const auto got = par::run_exhaustive_binary16(pool, config);
      EXPECT_EQ(got.checked, ref.checked)
          << chunks << " chunks, " << threads << " threads";
      EXPECT_EQ(got.mismatches, 0u)
          << chunks << " chunks, " << threads << " threads: "
          << got.first_mismatch;
    }
  }
}

TEST(OracleSweep, ConfigSubsettingScalesTheTaskCount) {
  par::ThreadPool pool;
  par::SweepConfig config = small_config();
  config.ops = {par::SweepOp::kAdd, par::SweepOp::kFma};
  config.modes = {fpq::softfloat::Rounding::kNearestEven};
  config.classes = {par::OperandClass::kSubnormal,
                    par::OperandClass::kSpecial};
  const auto report = par::run_binary16_sweep(pool, config, nullptr);
  EXPECT_EQ(report.tasks, 2u * 1u * 2u * 4u);
  EXPECT_EQ(report.mismatches, 0u) << report.first_mismatch;
}

}  // namespace
