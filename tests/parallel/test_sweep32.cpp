// fpq::parallel::sweep32 — the 2^32 differential sweep's own contract.
//
// The full-space runs live in bench_sweep32 (hours of CPU); these tests
// pin the machinery on small slices: zero mismatches on every op, the
// whole-sweep fingerprint invariant under thread count and under
// kill/resume splits (bit-identical to an uninterrupted run), manifest
// identity/corruption refusal, deadline slicing, and the corner corpus.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "parallel/sweep32.hpp"
#include "parallel/sweep32_ref.hpp"
#include "parallel/sweep_util.hpp"

namespace sw = fpq::parallel::sweep32;
namespace sf = fpq::softfloat;

namespace {

/// A unique manifest path under the build tree's temp dir, removed on
/// destruction so test orders can't contaminate each other.
class TempManifest {
 public:
  explicit TempManifest(const char* tag)
      : path_(std::string(::testing::TempDir()) + "sweep32_" + tag +
              ".manifest") {
    std::remove(path_.c_str());
  }
  ~TempManifest() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// A small but interesting sqrt slice: the last subnormal binade through
/// the first normal one, plus room for a few chunks per mode.
sw::Sweep32Config small_sqrt_config() {
  sw::Sweep32Config config;
  config.op = sw::UnaryOp32::kSqrt;
  config.begin = 0x007F'F800;
  config.end = 0x0080'4800;  // 5 chunks of 2^12 per mode
  config.chunk_bits = 12;
  config.checkpoint_interval = 4;
  return config;
}

TEST(Sweep32, ShardGridAndIdentity) {
  sw::Sweep32Config config = small_sqrt_config();
  EXPECT_EQ(sw::sweep32_shard_count(config), 5u * 5u);

  const std::uint64_t id = sw::sweep32_identity(config);
  sw::Sweep32Config other = config;
  other.chunk_bits = 13;
  EXPECT_NE(sw::sweep32_identity(other), id);
  other = config;
  other.end += 0x1000;
  EXPECT_NE(sw::sweep32_identity(other), id);
  other = config;
  other.op = sw::UnaryOp32::kRoundToIntegral;
  EXPECT_NE(sw::sweep32_identity(other), id);
  other = config;
  other.modes.pop_back();
  EXPECT_NE(sw::sweep32_identity(other), id);

  // Thread count, manifest path and lane config are NOT identity: a
  // resumed run may use any of them.
  other = config;
  other.threads = 7;
  other.race_tape = false;
  other.manifest_path = "elsewhere";
  EXPECT_EQ(sw::sweep32_identity(other), id);
}

TEST(Sweep32, SqrtSliceCleanAndFingerprintThreadInvariant) {
  sw::Sweep32Config config = small_sqrt_config();
  std::uint64_t fingerprint = 0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    config.threads = threads;
    const sw::Sweep32Report report = sw::run_sweep32(config);
    EXPECT_TRUE(report.complete);
    EXPECT_EQ(report.mismatches, 0u)
        << (report.mismatch_samples.empty() ? ""
                                            : report.mismatch_samples[0]);
    EXPECT_EQ(report.checked, 5u * (config.end - config.begin));
    if (threads == 1) {
      fingerprint = report.fingerprint;
    } else {
      EXPECT_EQ(report.fingerprint, fingerprint) << "threads=" << threads;
    }
  }
}

TEST(Sweep32, InterruptedResumeIsBitIdenticalToUninterrupted) {
  sw::Sweep32Config config = small_sqrt_config();
  config.threads = 1;
  const sw::Sweep32Report oneshot = sw::run_sweep32(config);
  ASSERT_TRUE(oneshot.complete);
  ASSERT_EQ(oneshot.mismatches, 0u);

  // Same sweep, killed after every few shards (max_shards caps a run the
  // way a SIGKILL between checkpoints would) and resumed at a different
  // thread count each time.
  TempManifest manifest("resume");
  config.manifest_path = manifest.path();
  config.max_shards = 7;
  const std::size_t thread_plan[] = {1, 2, 4, 8, 1, 2};
  sw::Sweep32Report resumed;
  std::size_t runs = 0;
  for (const std::size_t threads : thread_plan) {
    config.threads = threads;
    resumed = sw::run_sweep32(config);
    ++runs;
    EXPECT_LE(resumed.run_shards, 7u);
    if (resumed.complete) break;
  }
  EXPECT_EQ(runs, 4u);  // 25 shards at <=7 per run
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.checked, oneshot.checked);
  EXPECT_EQ(resumed.mismatches, oneshot.mismatches);
  EXPECT_EQ(resumed.fingerprint, oneshot.fingerprint);

  // Resuming a COMPLETE sweep runs nothing and reports the same state.
  config.threads = 1;
  const sw::Sweep32Report again = sw::run_sweep32(config);
  EXPECT_TRUE(again.complete);
  EXPECT_EQ(again.run_shards, 0u);
  EXPECT_EQ(again.fingerprint, oneshot.fingerprint);
}

TEST(Sweep32, ManifestIdentityMismatchRefusesToResume) {
  TempManifest manifest("identity");
  sw::Sweep32Config config = small_sqrt_config();
  config.manifest_path = manifest.path();
  config.max_shards = 3;
  (void)sw::run_sweep32(config);

  sw::Sweep32Config other = config;
  other.chunk_bits = 13;
  EXPECT_THROW((void)sw::run_sweep32(other), std::runtime_error);
  other = config;
  other.op = sw::UnaryOp32::kRoundToIntegral;
  other.begin = 0;
  other.end = 0x5000;
  EXPECT_THROW((void)sw::run_sweep32(other), std::runtime_error);
}

TEST(Sweep32, MalformedManifestThrows) {
  sw::Sweep32Config config = small_sqrt_config();
  {
    TempManifest manifest("garbage");
    std::ofstream(manifest.path()) << "not a manifest\n";
    config.manifest_path = manifest.path();
    EXPECT_THROW((void)sw::run_sweep32(config), std::runtime_error);
  }
  {
    TempManifest manifest("truncated");
    std::ofstream(manifest.path())
        << "fpq-sweep32-manifest v1\nop sqrt\ndone 0\n";
    config.manifest_path = manifest.path();
    EXPECT_THROW((void)sw::run_sweep32(config), std::runtime_error);
  }
}

TEST(Sweep32, DeadlineSliceStaysResumable) {
  TempManifest manifest("deadline");
  sw::Sweep32Config config = small_sqrt_config();
  config.manifest_path = manifest.path();
  config.threads = 2;
  config.deadline = std::chrono::milliseconds(1);
  const sw::Sweep32Report slice = sw::run_sweep32(config);
  EXPECT_EQ(slice.run_mismatches, 0u);
  EXPECT_LE(slice.done_shards, slice.total_shards);

  // Whatever the slice managed, finishing the sweep afterwards lands on
  // the uninterrupted fingerprint.
  config.deadline = std::chrono::milliseconds(0);
  const sw::Sweep32Report finished = sw::run_sweep32(config);
  ASSERT_TRUE(finished.complete);

  sw::Sweep32Config fresh = small_sqrt_config();
  fresh.threads = 1;
  EXPECT_EQ(finished.fingerprint, sw::run_sweep32(fresh).fingerprint);
}

// Every op's engine lane agrees with its reference on a slice spanning
// subnormals, normals and the inf/NaN band. The kFrom* ops are cheap
// enough to sweep their ENTIRE 2^16 space here.
TEST(Sweep32, EveryOpSliceClean) {
  for (const sw::UnaryOp32 op : sw::kAllUnaryOps32) {
    sw::Sweep32Config config;
    config.op = op;
    config.chunk_bits = 12;
    if (sw::op_space_size(op) == (std::uint64_t{1} << 16)) {
      config.begin = 0;
      config.end = 0;  // full 2^16
    } else {
      config.begin = 0x7F7F'F000;  // top binade -> inf -> NaNs
      config.end = 0x7F81'1000;
    }
    const sw::Sweep32Report report = sw::run_sweep32(config);
    EXPECT_TRUE(report.complete) << sw::unary_op32_name(op);
    EXPECT_EQ(report.mismatches, 0u)
        << sw::unary_op32_name(op) << ": "
        << (report.mismatch_samples.empty() ? ""
                                            : report.mismatch_samples[0]);
  }
}

TEST(Sweep32, SqrtSubnormalAndZeroBoundarySliceClean) {
  sw::Sweep32Config config;
  config.op = sw::UnaryOp32::kSqrt;
  config.begin = 0;
  config.end = 0x2000;  // +-0 neighbourhood: first subnormal chunks
  config.chunk_bits = 12;
  const sw::Sweep32Report report = sw::run_sweep32(config);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.mismatches, 0u)
      << (report.mismatch_samples.empty() ? ""
                                          : report.mismatch_samples[0]);
}

TEST(Sweep32, CornerCorpusCleanWithRandomTail) {
  const sw::CorpusReport report = sw::run_corner_corpus(512);
  EXPECT_GT(report.checked, 1'000'000u);
  EXPECT_EQ(report.mismatches, 0u)
      << (report.mismatch_samples.empty() ? ""
                                          : report.mismatch_samples[0]);
}

TEST(Sweep32, CornerCorpusIsDeterministic) {
  const sw::CorpusReport a = sw::run_corner_corpus(64, 123);
  const sw::CorpusReport b = sw::run_corner_corpus(64, 123);
  EXPECT_EQ(a.checked, b.checked);
  EXPECT_EQ(a.mismatches, b.mismatches);
}

TEST(Sweep32, UlpStratifiedSamplerCoversBandsAndStaysFinite) {
  fpq::parallel::sweep_detail::Sm64 g(42);
  bool subnormal = false, small_normal = false, large_normal = false;
  bool negative = false;
  for (int i = 0; i < 20000; ++i) {
    const sf::Float32 x{sw::ulp_stratified_pattern(g)};
    ASSERT_TRUE(x.is_finite()) << sf::describe(x);
    if (x.is_subnormal()) subnormal = true;
    if (x.sign()) negative = true;
    const std::uint32_t exp = (x.bits >> 23) & 0xFF;
    if (exp != 0 && exp < 64) small_normal = true;
    if (exp >= 192) large_normal = true;
  }
  EXPECT_TRUE(subnormal);
  EXPECT_TRUE(small_normal);
  EXPECT_TRUE(large_normal);
  EXPECT_TRUE(negative);
}

TEST(Sweep32, CornerCorpusPatternsAreCanonicalAndCoverClasses) {
  bool zero = false, subnormal = false, normal = false, inf = false,
       nan = false;
  for (const std::uint32_t p : sw::corner32_patterns()) {
    EXPECT_EQ(p & 0x8000'0000u, 0u) << std::hex << p
                                    << " (corpus stores magnitudes; the "
                                       "runner mirrors signs)";
    const sf::Float32 x{p};
    zero |= x.is_zero();
    subnormal |= x.is_subnormal();
    normal |= x.is_finite() && !x.is_zero() && !x.is_subnormal();
    inf |= x.is_infinity();
    nan |= x.is_nan();
  }
  EXPECT_TRUE(zero);
  EXPECT_TRUE(subnormal);
  EXPECT_TRUE(normal);
  EXPECT_TRUE(inf);
  EXPECT_TRUE(nan);
}

}  // namespace
