// Hostile-task tests for the hardened thread pool: shard bodies that
// throw, throw persistently, or outlive their deadline, at 1/2/4/8
// threads. The contracts under test: surviving shards' outputs are
// bit-identical to a failure-free run at any thread count, failure
// reports are deterministic (sorted, complete, schedule-independent),
// cancellation and deadlines convert unclaimed shards into typed
// failures, and the retry pass recovers flaky shards deterministically.

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/thread_pool.hpp"

namespace par = fpq::parallel;

namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};
constexpr std::size_t kShards = 64;

// The deterministic per-shard payload every test compares against.
double payload(std::size_t shard) {
  double x = 1.0 + static_cast<double>(shard) * 0.1;
  for (int i = 0; i < 12; ++i) x = x * 1.0000001 + 0.0625;
  return x;
}

bool throws_at(std::size_t shard) { return shard % 7 == 3; }

TEST(HostileTasks, LegacyOverloadReportsEveryFailureNotJustTheFirst) {
  for (const std::size_t threads : kThreadCounts) {
    par::ThreadPool pool(threads);
    std::vector<double> out(kShards, 0.0);
    bool threw = false;
    try {
      pool.run_shards(kShards, [&](std::size_t s) {
        if (throws_at(s)) {
          throw std::runtime_error("boom " + std::to_string(s));
        }
        out[s] = payload(s);
      });
    } catch (const par::ShardFailuresError& e) {
      threw = true;
      std::vector<std::size_t> expected;
      for (std::size_t s = 0; s < kShards; ++s) {
        if (throws_at(s)) expected.push_back(s);
      }
      ASSERT_EQ(e.report().failures.size(), expected.size())
          << threads << " threads";
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(e.report().failures[i].shard, expected[i]);
        EXPECT_EQ(e.report().failures[i].kind,
                  par::FailureKind::kException);
        EXPECT_EQ(e.report().failures[i].message,
                  "boom " + std::to_string(expected[i]));
      }
    }
    EXPECT_TRUE(threw);
    // Every non-throwing shard still ran, and ran exactly its own work.
    for (std::size_t s = 0; s < kShards; ++s) {
      if (!throws_at(s)) {
        EXPECT_EQ(std::bit_cast<std::uint64_t>(out[s]),
                  std::bit_cast<std::uint64_t>(payload(s)));
      }
    }
  }
}

TEST(HostileTasks, SurvivingResultsAndReportsAreIdenticalAcrossThreadCounts) {
  std::vector<std::vector<double>> results;
  std::vector<std::string> reports;
  for (const std::size_t threads : kThreadCounts) {
    par::ThreadPool pool(threads);
    std::vector<double> out(kShards, 0.0);
    const par::ShardRunReport report = pool.run_shards(
        kShards, par::RunOptions{},
        [&](std::size_t s, const par::CancelToken&) {
          if (throws_at(s)) throw std::runtime_error("poisoned");
          out[s] = payload(s);
        });
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.shard_count, kShards);
    EXPECT_EQ(report.completed + report.failures.failures.size(), kShards);
    results.push_back(std::move(out));
    reports.push_back(report.failures.to_string());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << kThreadCounts[i] << " threads";
    EXPECT_EQ(reports[i], reports[0]) << kThreadCounts[i] << " threads";
  }
}

TEST(HostileTasks, CancelOnFailureSkipsUnclaimedShards) {
  // With one lane the schedule is sequential, so everything after the
  // first thrower must be reported kCancelled, untouched.
  par::ThreadPool pool(1);
  par::RunOptions options;
  options.cancel_on_failure = true;
  std::vector<int> ran(kShards, 0);
  const par::ShardRunReport report = pool.run_shards(
      kShards, options, [&](std::size_t s, const par::CancelToken&) {
        ran[s] = 1;
        if (s == 5) throw std::runtime_error("first failure");
      });
  EXPECT_TRUE(report.cancelled);
  EXPECT_FALSE(report.deadline_expired);
  ASSERT_EQ(report.failures.failures.size(), kShards - 5);
  EXPECT_EQ(report.failures.failures.front().shard, 5u);
  EXPECT_EQ(report.failures.failures.front().kind,
            par::FailureKind::kException);
  EXPECT_EQ(report.failures.count(par::FailureKind::kCancelled),
            kShards - 6);
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(ran[s], s <= 5 ? 1 : 0) << "shard " << s;
  }
}

TEST(HostileTasks, CancelOnFailureNeverLosesCompletedWork) {
  for (const std::size_t threads : kThreadCounts) {
    par::ThreadPool pool(threads);
    par::RunOptions options;
    options.cancel_on_failure = true;
    std::vector<double> out(kShards, 0.0);
    const par::ShardRunReport report = pool.run_shards(
        kShards, options, [&](std::size_t s, const par::CancelToken&) {
          if (s == 9) throw std::runtime_error("tripwire");
          out[s] = payload(s);
        });
    // Whatever subset ran before cancellation took hold, each completed
    // shard's slot holds exactly the deterministic payload; failed and
    // skipped slots are untouched.
    std::set<std::size_t> failed;
    for (const par::ShardFailure& f : report.failures.failures) {
      failed.insert(f.shard);
    }
    for (std::size_t s = 0; s < kShards; ++s) {
      const double want = failed.contains(s) ? 0.0 : payload(s);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[s]),
                std::bit_cast<std::uint64_t>(want))
          << "shard " << s << " at " << threads << " threads";
    }
    EXPECT_EQ(report.completed, kShards - failed.size());
  }
}

TEST(HostileTasks, RetryRecoversFlakyShards) {
  for (const std::size_t threads : kThreadCounts) {
    par::ThreadPool pool(threads);
    par::RunOptions options;
    options.max_retries = 2;
    // Flaky: shards 3 and 11 fail on the first attempt only. Attempt
    // counters are per-shard atomics so the parallel pass may race freely.
    std::array<std::atomic<int>, kShards> attempts{};
    std::vector<double> out(kShards, 0.0);
    const par::ShardRunReport report = pool.run_shards(
        kShards, options, [&](std::size_t s, const par::CancelToken&) {
          const int attempt = attempts[s].fetch_add(1);
          if ((s == 3 || s == 11) && attempt == 0) {
            throw std::runtime_error("transient");
          }
          out[s] = payload(s);
        });
    EXPECT_TRUE(report.ok()) << threads << " threads";
    EXPECT_EQ(report.completed, kShards);
    EXPECT_EQ(report.recovered, 2u);
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[s]),
                std::bit_cast<std::uint64_t>(payload(s)));
    }
  }
}

TEST(HostileTasks, PersistentThrowersExhaustTheRetryBudgetDeterministically) {
  for (const std::size_t threads : kThreadCounts) {
    par::ThreadPool pool(threads);
    par::RunOptions options;
    options.max_retries = 3;
    const par::ShardRunReport report = pool.run_shards(
        kShards, options, [&](std::size_t s, const par::CancelToken&) {
          if (s == 20 || s == 40) throw std::runtime_error("hopeless");
        });
    ASSERT_EQ(report.failures.failures.size(), 2u);
    EXPECT_EQ(report.failures.failures[0].shard, 20u);
    EXPECT_EQ(report.failures.failures[1].shard, 40u);
    for (const par::ShardFailure& f : report.failures.failures) {
      EXPECT_EQ(f.kind, par::FailureKind::kException);
      EXPECT_EQ(f.attempts, 4u);  // 1 + max_retries
      EXPECT_EQ(f.message, "hopeless");
    }
    EXPECT_EQ(report.recovered, 0u);
  }
}

TEST(HostileTasks, DeadlineConvertsUnclaimedShardsIntoDeadlineFailures) {
  par::ThreadPool pool(2);
  par::RunOptions options;
  options.deadline = std::chrono::milliseconds(30);
  std::atomic<std::size_t> slow_started{0};
  const par::ShardRunReport report = pool.run_shards(
      256, options, [&](std::size_t s, const par::CancelToken& token) {
        if (s < 2) {
          // Two hog shards occupy both lanes past the deadline, polling
          // the token as a cooperative body should.
          slow_started.fetch_add(1);
          const auto until = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(300);
          while (std::chrono::steady_clock::now() < until) {
            if (token.cancelled()) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
      });
  EXPECT_TRUE(report.deadline_expired);
  EXPECT_TRUE(report.cancelled);
  EXPECT_GT(report.failures.count(par::FailureKind::kDeadline), 0u);
  EXPECT_EQ(report.failures.count(par::FailureKind::kException), 0u);
  // Reported deadline shards were never run.
  for (const par::ShardFailure& f : report.failures.failures) {
    EXPECT_EQ(f.attempts, 0u);
    EXPECT_TRUE(f.message.empty());
  }
}

TEST(HostileTasks, NoDeadlineNoFailuresIsAQuietReport) {
  for (const std::size_t threads : kThreadCounts) {
    par::ThreadPool pool(threads);
    std::vector<double> out(kShards, 0.0);
    const par::ShardRunReport report = pool.run_shards(
        kShards, par::RunOptions{},
        [&](std::size_t s, const par::CancelToken& token) {
          EXPECT_FALSE(token.cancelled());
          out[s] = payload(s);
        });
    EXPECT_TRUE(report.ok());
    EXPECT_FALSE(report.cancelled);
    EXPECT_FALSE(report.deadline_expired);
    EXPECT_EQ(report.completed, kShards);
    EXPECT_EQ(report.recovered, 0u);
    for (std::size_t s = 0; s < kShards; ++s) {
      EXPECT_EQ(out[s], payload(s));
    }
  }
}

TEST(HostileTasks, FailureKindNamesAreStable) {
  EXPECT_EQ(par::failure_kind_name(par::FailureKind::kException),
            "exception");
  EXPECT_EQ(par::failure_kind_name(par::FailureKind::kCancelled),
            "cancelled");
  EXPECT_EQ(par::failure_kind_name(par::FailureKind::kDeadline),
            "deadline");
}

TEST(HostileTasks, ReportToStringListsEveryShardInOrder) {
  par::ThreadPool pool(4);
  const par::ShardRunReport report = pool.run_shards(
      16, par::RunOptions{}, [&](std::size_t s, const par::CancelToken&) {
        if (s % 5 == 2) throw std::runtime_error("x" + std::to_string(s));
      });
  const std::string text = report.failures.to_string();
  std::size_t last = 0;
  for (const std::size_t s : {2u, 7u, 12u}) {
    const std::size_t pos = text.find("#" + std::to_string(s));
    ASSERT_NE(pos, std::string::npos) << text;
    EXPECT_GE(pos, last);
    last = pos;
  }
}

}  // namespace
