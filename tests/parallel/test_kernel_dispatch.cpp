// Dispatch parity for the batch kernel variants: forcing kScalar,
// kPortable, and kAvx2 (where the machine supports it) through the
// sweep32 machinery must produce ZERO mismatches against the independent
// references and IDENTICAL sweep fingerprints — including the sqrt
// tape-gate race, which pins the fast32 tape block against the batch
// kernels and the scalar Tape::execute at every forced variant. The
// full-2^32 claim is the overnight sweep job; these are complete sweeps
// of the 2^16 operand spaces plus boundary windows of the 2^32 spaces.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/sweep32.hpp"
#include "softfloat/kernels.hpp"

namespace sweep32 = fpq::parallel::sweep32;
namespace sf = fpq::softfloat;

namespace {

std::vector<sf::KernelVariant> all_variants() {
  std::vector<sf::KernelVariant> v{sf::KernelVariant::kScalar,
                                   sf::KernelVariant::kPortable};
  if (sf::kernel_variant_available(sf::KernelVariant::kAvx2)) {
    v.push_back(sf::KernelVariant::kAvx2);
  }
  return v;
}

/// Runs the configured sweep once per forced variant and asserts zero
/// mismatches plus a variant-invariant fingerprint.
void expect_variant_invariant_sweep(sweep32::Sweep32Config config,
                                    const char* what) {
  config.manifest_path.clear();  // each run is standalone and complete
  bool have_ref = false;
  std::uint64_t ref_fingerprint = 0;
  for (const sf::KernelVariant v : all_variants()) {
    sf::ScopedKernelVariant forced(v);
    ASSERT_TRUE(forced.applied()) << sf::kernel_variant_name(v);
    const sweep32::Sweep32Report report = sweep32::run_sweep32(config);
    EXPECT_TRUE(report.complete) << what;
    EXPECT_EQ(report.mismatches, 0u)
        << what << " variant " << sf::kernel_variant_name(v)
        << (report.mismatch_samples.empty() ? std::string()
                                            : "\n" +
                                                  report.mismatch_samples[0]);
    if (!have_ref) {
      have_ref = true;
      ref_fingerprint = report.fingerprint;
    } else {
      EXPECT_EQ(report.fingerprint, ref_fingerprint)
          << what << " variant " << sf::kernel_variant_name(v);
    }
  }
}

}  // namespace

// The 2^16-source conversions: the ENTIRE operand space per variant.
TEST(KernelDispatchParity, WidenFrom16FullSpace) {
  sweep32::Sweep32Config config;
  config.op = sweep32::UnaryOp32::kFromBinary16;
  config.chunk_bits = 12;
  expect_variant_invariant_sweep(config, "from16");
}

TEST(KernelDispatchParity, WidenFromBf16FullSpace) {
  sweep32::Sweep32Config config;
  config.op = sweep32::UnaryOp32::kFromBFloat16;
  config.chunk_bits = 12;
  expect_variant_invariant_sweep(config, "from_bf16");
}

// Boundary windows of the 2^32 spaces: each window crosses the class
// borders the vectorized kernels branch on (zero/subnormal/normal, the
// binary16 result bands, integer binades, max-finite/inf/NaN, and the
// positive/negative seam at 2^31).
TEST(KernelDispatchParity, UnaryOpBoundaryWindows) {
  struct Window {
    std::uint64_t begin;
    const char* what;
  };
  constexpr std::uint64_t kWin = std::uint64_t{1} << 15;
  const Window windows[] = {
      {0x0000'0000u, "zero/subnormal border"},
      {0x337F'C000u, "binary16 deep-result band"},
      {0x3F7F'8000u, "around one"},
      {0x4AFF'C000u, "integer binade border"},
      {0x477F'C000u, "binary16 overflow border"},
      {0x7F7F'C000u, "max-finite/inf/NaN border"},
      {0x8000'0000u - kWin / 2, "positive/negative seam"},
      {0xFF7F'C000u, "negative max-finite/inf/NaN border"},
  };
  const sweep32::UnaryOp32 ops[] = {
      sweep32::UnaryOp32::kSqrt,       sweep32::UnaryOp32::kRoundToIntegral,
      sweep32::UnaryOp32::kToBinary16, sweep32::UnaryOp32::kToBFloat16,
      sweep32::UnaryOp32::kToBinary64,
  };
  for (const sweep32::UnaryOp32 op : ops) {
    for (const Window& w : windows) {
      sweep32::Sweep32Config config;
      config.op = op;
      config.begin = w.begin;
      config.end = w.begin + kWin;
      config.chunk_bits = 13;
      // race_tape stays on: for sqrt this races the fast32 tape block
      // (ir::execute_rows) and the scalar Tape::execute stride too — the
      // tape-gate parity claim at every variant.
      expect_variant_invariant_sweep(
          config, (std::string(sweep32::unary_op32_name(op)) + " " + w.what)
                      .c_str());
    }
  }
}

// The corner corpus (div/fma pairs included) under every forced variant.
TEST(KernelDispatchParity, CornerCorpusEveryVariant) {
  for (const sf::KernelVariant v : all_variants()) {
    sf::ScopedKernelVariant forced(v);
    ASSERT_TRUE(forced.applied());
    const sweep32::CorpusReport report = sweep32::run_corner_corpus(512);
    EXPECT_EQ(report.mismatches, 0u)
        << sf::kernel_variant_name(v)
        << (report.mismatch_samples.empty() ? std::string()
                                            : "\n" +
                                                  report.mismatch_samples[0]);
    EXPECT_GT(report.checked, 0u);
  }
}
