// fpq::parallel — thread pool and sharding-primitive contracts.
//
// Everything here must hold for EVERY thread count, so the suites sweep
// pools of 1, 2, 4 and 8 lanes (the pool is exercised well beyond the
// host's core count on purpose: oversubscription must not change any
// observable result).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/result_cache.hpp"
#include "parallel/shard.hpp"
#include "parallel/thread_pool.hpp"

namespace par = fpq::parallel;

namespace {

class ThreadPoolTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadPoolTest, EveryShardRunsExactlyOnce) {
  par::ThreadPool pool(GetParam());
  for (const std::size_t count : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{64},
                                  std::size_t{1000}}) {
    std::vector<std::atomic<int>> runs(count);
    pool.run_shards(count, [&](std::size_t shard) {
      runs[shard].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(runs[i].load(), 1) << "shard " << i << " of " << count;
    }
  }
}

TEST_P(ThreadPoolTest, PoolIsReusableAcrossManyRounds) {
  par::ThreadPool pool(GetParam());
  std::uint64_t total = 0;
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.run_shards(17, [&](std::size_t shard) {
      sum.fetch_add(shard, std::memory_order_relaxed);
    });
    total += sum.load();
  }
  EXPECT_EQ(total, 50u * (16u * 17u / 2u));
}

TEST_P(ThreadPoolTest, FirstExceptionPropagatesAndPoolSurvives) {
  par::ThreadPool pool(GetParam());
  EXPECT_THROW(
      pool.run_shards(64,
                      [&](std::size_t shard) {
                        if (shard == 13) {
                          throw std::runtime_error("shard 13 failed");
                        }
                      }),
      std::runtime_error);
  // The pool must stay usable after a throwing job.
  std::atomic<int> ran{0};
  pool.run_shards(8, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST_P(ThreadPoolTest, ParallelMapFillsSlotsInIndexOrder) {
  par::ThreadPool pool(GetParam());
  const auto out = par::parallel_map(
      pool, 100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST_P(ThreadPoolTest, ParallelMapChunksCoversEveryIndexOnce) {
  par::ThreadPool pool(GetParam());
  const std::size_t total = 237;
  std::vector<std::atomic<int>> seen(total);
  par::parallel_map_chunks(pool, total, 16,
                           [&](std::size_t, std::size_t begin,
                               std::size_t end) {
                             for (std::size_t i = begin; i < end; ++i) {
                               seen[i].fetch_add(1,
                                                 std::memory_order_relaxed);
                             }
                           });
  for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(seen[i].load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Lanes, ThreadPoolTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(ThreadPool, SingleLanePoolRunsInline) {
  // A 1-lane pool is the determinism baseline: shards run on the calling
  // thread in index order.
  par::ThreadPool pool(1);
  EXPECT_EQ(pool.lanes(), 1u);
  const std::thread::id self = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.run_shards(10, [&](std::size_t shard) {
    EXPECT_EQ(std::this_thread::get_id(), self);
    order.push_back(shard);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ShardSeed, IsStableAndDistinctAcrossIndices) {
  // Stability matters: these values participate in recorded experiment
  // outputs, so a change here is a behavioural break.
  const std::uint64_t base = 0x5EED;
  EXPECT_EQ(par::shard_seed(base, 0), par::shard_seed(base, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    seen.insert(par::shard_seed(base, i));
  }
  EXPECT_EQ(seen.size(), 10000u);
  // Different bases give different streams.
  EXPECT_NE(par::shard_seed(1, 0), par::shard_seed(2, 0));
}

TEST(ChunkRange, PartitionIsExactContiguousAndNearEqual) {
  for (const std::size_t total : {std::size_t{0}, std::size_t{1},
                                  std::size_t{13}, std::size_t{64},
                                  std::size_t{65536}}) {
    for (const std::size_t chunks :
         {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const par::ChunkRange r = par::chunk_range(total, chunks, c);
        EXPECT_EQ(r.begin, prev_end);
        EXPECT_LE(r.size(),
                  total / chunks + (total % chunks == 0 ? 0 : 1));
        covered += r.size();
        prev_end = r.end;
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(prev_end, total);
    }
  }
}

TEST(RecommendedChunks, RespectsBoundsAndMinimumGranularity) {
  par::ThreadPool pool(4);
  EXPECT_EQ(par::recommended_chunks(pool, 0), 0u);  // no items, no chunks
  EXPECT_EQ(par::recommended_chunks(pool, 1), 1u);
  // Never more chunks than items.
  EXPECT_LE(par::recommended_chunks(pool, 5), 5u);
  // min_per_chunk caps the chunk count.
  EXPECT_LE(par::recommended_chunks(pool, 100, 50), 2u);
  EXPECT_GE(par::recommended_chunks(pool, 100000), pool.lanes());
}

TEST(TreeReduce, MatchesPairwiseAssociationExactly) {
  // The tree shape must depend only on the element count. Verify against
  // an explicit reference recursion at several sizes.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{5}, std::size_t{31},
                              std::size_t{64}, std::size_t{1000}}) {
    std::vector<double> xs(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = 1.0 / static_cast<double>(i + 3);  // inexact values
    }
    struct Ref {
      static double sum(const std::vector<double>& v, std::size_t lo,
                        std::size_t hi) {
        if (hi - lo == 1) return v[lo];
        if (hi - lo == 2) return v[lo] + v[lo + 1];
        const std::size_t mid = lo + (hi - lo) / 2;
        return sum(v, lo, mid) + sum(v, mid, hi);
      }
    };
    const double expected = n == 0 ? 0.0 : Ref::sum(xs, 0, n);
    const double got = par::tree_reduce<double>(
        xs, 0.0, [](double a, double b) { return a + b; });
    EXPECT_EQ(got, expected) << "n=" << n;  // bitwise, not approximate
  }
}

TEST(ResultCache, InsertFindAndCounters) {
  par::ResultCache cache;
  par::OracleKey key;
  key.backend = "softfloat";
  key.format_bits = 16;
  key.op = 2;
  key.rounding = 1;
  key.operand_class = 3;
  key.task = 7;

  EXPECT_FALSE(cache.find(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  par::ShardResult result;
  result.checked = 2048;
  result.mismatches = 0;
  cache.insert(key, result);
  EXPECT_EQ(cache.size(), 1u);

  const auto hit = cache.find(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->checked, 2048u);
  EXPECT_EQ(cache.hits(), 1u);

  // A different task index is a different shard.
  par::OracleKey other = key;
  other.task = 8;
  EXPECT_FALSE(cache.find(other).has_value());

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(ResultCache, FirstWriterWinsUnderConcurrentInsert) {
  par::ResultCache cache;
  par::ThreadPool pool(8);
  par::OracleKey key;
  key.backend = "softfloat";
  // All shards race to insert the same key with different payloads; the
  // cache must keep exactly one and never corrupt it.
  pool.run_shards(64, [&](std::size_t shard) {
    par::ShardResult r;
    r.checked = shard + 1;
    cache.insert(key, r);
  });
  EXPECT_EQ(cache.size(), 1u);
  const auto hit = cache.find(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_GE(hit->checked, 1u);
  EXPECT_LE(hit->checked, 64u);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(par::ThreadPool::default_thread_count(), 1u);
  par::ThreadPool pool;  // hardware default must construct fine
  EXPECT_GE(pool.lanes(), 1u);
}

}  // namespace
