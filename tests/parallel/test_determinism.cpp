// fpq::parallel — the bit-identity contract.
//
// Every workload threaded through the pool must produce byte-for-byte the
// same answer at 1, 2, 4 and 8 threads. These tests pin that: each one
// computes a reference with a single-lane pool (inline execution) and
// asserts exact equality — EXPECT_EQ on doubles, never near-equality —
// for pools of every width.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/ground_truth.hpp"
#include "core/scoring.hpp"
#include "parallel/thread_pool.hpp"
#include "respondent/population.hpp"
#include "stats/bootstrap.hpp"
#include "stats/prng.hpp"
#include "survey/analysis.hpp"
#include "survey/factor_analysis.hpp"

namespace par = fpq::parallel;
namespace quiz = fpq::quiz;
namespace sv = fpq::survey;
namespace stats = fpq::stats;

namespace {

std::vector<double> sample_data(std::size_t n, std::uint64_t seed) {
  stats::Xoshiro256pp g(seed);
  std::vector<double> out(n);
  for (auto& x : out) {
    x = static_cast<double>(g() >> 11) * 0x1.0p-53;  // uniform [0, 1)
  }
  return out;
}

std::vector<sv::SurveyRecord> cohort() {
  // Deterministic synthetic cohort, larger than the paper's n=199 so the
  // chunked paths actually split.
  static const auto records =
      fpq::respondent::generate_main_cohort(20180521, 600);
  return records;
}

void expect_same_tally(const sv::AverageTally& a, const sv::AverageTally& b) {
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.incorrect, b.incorrect);
  EXPECT_EQ(a.dont_know, b.dont_know);
  EXPECT_EQ(a.unanswered, b.unanswered);
}

class DeterminismTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  par::ThreadPool pool_{GetParam()};
  par::ThreadPool baseline_{1};
};

TEST_P(DeterminismTest, BootstrapIntervalIsBitIdenticalToOneThread) {
  const auto data = sample_data(257, 42);
  const stats::Statistic mean = [](std::span<const double> xs) {
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
  };
  const auto ref =
      stats::bootstrap_interval(data, mean, 2000, 0.95, 99, baseline_);
  const auto got =
      stats::bootstrap_interval(data, mean, 2000, 0.95, 99, pool_);
  EXPECT_EQ(ref.estimate, got.estimate);
  EXPECT_EQ(ref.lower, got.lower);
  EXPECT_EQ(ref.upper, got.upper);
}

TEST_P(DeterminismTest, BootstrapMeanIsBitIdenticalToOneThread) {
  const auto data = sample_data(100, 7);
  const auto ref = stats::bootstrap_mean(data, 1000, 0.9, 1234, baseline_);
  const auto got = stats::bootstrap_mean(data, 1000, 0.9, 1234, pool_);
  EXPECT_EQ(ref.estimate, got.estimate);
  EXPECT_EQ(ref.lower, got.lower);
  EXPECT_EQ(ref.upper, got.upper);
}

TEST_P(DeterminismTest, BatchScoringMatchesSerialScoring) {
  const auto records = cohort();
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  std::vector<quiz::CoreSheet> core_sheets;
  std::vector<quiz::OptSheet> opt_sheets;
  for (const auto& r : records) {
    core_sheets.push_back(r.core);
    opt_sheets.push_back(r.opt);
  }

  const auto core_batch =
      quiz::score_core_batch(core_sheets, core_key, pool_);
  const auto opt_batch =
      quiz::score_opt_tf_batch(opt_sheets, opt_key, pool_);
  ASSERT_EQ(core_batch.size(), core_sheets.size());
  ASSERT_EQ(opt_batch.size(), opt_sheets.size());
  for (std::size_t i = 0; i < core_sheets.size(); ++i) {
    const auto serial = quiz::score_core(core_sheets[i], core_key);
    EXPECT_EQ(core_batch[i].correct, serial.correct);
    EXPECT_EQ(core_batch[i].incorrect, serial.incorrect);
    EXPECT_EQ(core_batch[i].dont_know, serial.dont_know);
    EXPECT_EQ(core_batch[i].unanswered, serial.unanswered);
    const auto serial_opt = quiz::score_opt_tf(opt_sheets[i], opt_key);
    EXPECT_EQ(opt_batch[i].correct, serial_opt.correct);
    EXPECT_EQ(opt_batch[i].incorrect, serial_opt.incorrect);
  }
}

TEST_P(DeterminismTest, AnalysisOverloadsMatchSerialBitForBit) {
  const auto records = cohort();
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  expect_same_tally(sv::average_core(records, core_key),
                    sv::average_core(records, core_key, pool_));
  expect_same_tally(sv::average_opt_tf(records, opt_key),
                    sv::average_opt_tf(records, opt_key, pool_));

  const auto ref_hist = sv::core_score_histogram(records, core_key);
  const auto got_hist = sv::core_score_histogram(records, core_key, pool_);
  ASSERT_EQ(ref_hist.bin_count(), got_hist.bin_count());
  EXPECT_EQ(ref_hist.total(), got_hist.total());
  for (int v = ref_hist.lo(); v <= ref_hist.hi(); ++v) {
    EXPECT_EQ(ref_hist.count(v), got_hist.count(v)) << "score " << v;
  }

  const auto ref_rows = sv::core_question_breakdown(records, core_key);
  const auto got_rows = sv::core_question_breakdown(records, core_key, pool_);
  ASSERT_EQ(ref_rows.size(), got_rows.size());
  for (std::size_t q = 0; q < ref_rows.size(); ++q) {
    EXPECT_EQ(ref_rows[q].label, got_rows[q].label);
    EXPECT_EQ(ref_rows[q].pct_correct, got_rows[q].pct_correct);
    EXPECT_EQ(ref_rows[q].pct_incorrect, got_rows[q].pct_incorrect);
    EXPECT_EQ(ref_rows[q].pct_dont_know, got_rows[q].pct_dont_know);
    EXPECT_EQ(ref_rows[q].pct_unanswered, got_rows[q].pct_unanswered);
  }
}

TEST_P(DeterminismTest, FactorAnalysisOverloadsMatchSerialBitForBit) {
  const auto records = cohort();
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  const auto check = [&](const std::vector<sv::FactorLevelResult>& ref,
                         const std::vector<sv::FactorLevelResult>& got) {
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(ref[i].label, got[i].label);
      EXPECT_EQ(ref[i].n, got[i].n);
      expect_same_tally(ref[i].core, got[i].core);
      expect_same_tally(ref[i].opt, got[i].opt);
    }
  };

  check(sv::by_contributed_size(records, core_key, opt_key),
        sv::by_contributed_size(records, core_key, opt_key, pool_));
  check(sv::by_area_group(records, core_key, opt_key),
        sv::by_area_group(records, core_key, opt_key, pool_));
  check(sv::by_role(records, core_key, opt_key),
        sv::by_role(records, core_key, opt_key, pool_));
  check(sv::by_formal_training(records, core_key, opt_key),
        sv::by_formal_training(records, core_key, opt_key, pool_));
}

INSTANTIATE_TEST_SUITE_P(Lanes, DeterminismTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const auto& info) {
                           return "threads" + std::to_string(info.param);
                         });

TEST(AnswerKeyCache, RepeatedSessionsHitTheMemoizedKey) {
  auto& cache = quiz::AnswerKeyCache::global();
  cache.clear();
  const auto backend = quiz::make_native_double_backend();
  const quiz::AnswerKey& first = quiz::derive_answer_key_cached(*backend);
  EXPECT_EQ(cache.misses(), 1u);
  const quiz::AnswerKey& second = quiz::derive_answer_key_cached(*backend);
  EXPECT_EQ(&first, &second);  // same memoized object, not a re-derivation
  EXPECT_GE(cache.hits(), 1u);
  // And the memoized key matches a fresh derivation exactly.
  const quiz::AnswerKey fresh = quiz::derive_answer_key(*backend);
  for (std::size_t i = 0; i < quiz::kCoreQuestionCount; ++i) {
    EXPECT_EQ(first.core[i].truth, fresh.core[i].truth);
  }
  cache.clear();
}

}  // namespace
