// Parallel flow-monitoring contract: monitored_stream_accumulate folds
// the SAME chunk shape at every pool width, each chunk under its own
// sampling FlowMonitor, and the merged flow report — sites, summary,
// seam conditions, fingerprint — is bit-identical at 1/2/4/8 threads.
// Also exercises monitors NESTED inside pool shards (a kernel opening
// its own FlowMonitor inside a monitored chunk), the configuration TSan
// cares about: per-thread monitor stacks must never share mutable state
// across shards.

#include <cfenv>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "fpmon/stream_flow.hpp"
#include "parallel/thread_pool.hpp"

namespace mon = fpq::mon;
namespace par = fpq::parallel;

namespace {

struct SumAcc {
  double sum = 0.0;
  void merge(SumAcc&& other) { sum += other.sum; }
};

// One deterministic "record": a little FP work whose value class depends
// only on the index, emitted to the chunk's monitor under an
// index-derived tag. Index 0 of every 97-stride births a NaN; the next
// op kills it — so the merged ledger has a known born/killed shape.
double process(std::uint64_t i) {
  const double x = 1.0 + static_cast<double>(i % 1000) * 1e-3;
  const double noisy =
      (i % 97 == 0) ? std::numeric_limits<double>::quiet_NaN() : x;
  const std::uint64_t call = i;
  mon::FlowMonitor::on_op(mon::flow_tag(call, 0), x, x, 0.0, 2, noisy);
  const double killed = std::isnan(noisy) ? 0.0 : noisy;
  mon::FlowMonitor::on_op(mon::flow_tag(call, 1), noisy, 0.0, 0.0, 1,
                          killed);
  return killed;
}

constexpr std::size_t kTotal = 20000;
// Pure function of the total — NEVER of the pool — so the chunk tree and
// therefore the merged flow fingerprint are thread-count invariant.
constexpr std::size_t kChunks = 32;

mon::MonitoredAccumulation<SumAcc> run_fold(par::ThreadPool& pool) {
  return mon::monitored_stream_accumulate(
      pool, kTotal, kChunks, [] { return SumAcc{}; },
      [](SumAcc& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          acc.sum += process(i);
        }
      });
}

TEST(FlowParallel, MonitoredFoldIsBitIdenticalAcrossThreadCounts) {
  par::ThreadPool one(1);
  const auto base = run_fold(one);
  ASSERT_GT(base.flow.ledger.summary().ops, 0u);
  EXPECT_EQ(base.flow.ledger.summary().born,
            (kTotal + 96) / 97);  // every 97th index births a NaN
  EXPECT_EQ(base.flow.ledger.summary().killed, (kTotal + 96) / 97);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    const auto r = run_fold(pool);
    EXPECT_EQ(r.value.sum, base.value.sum) << threads << " threads";
    EXPECT_EQ(r.flow.fingerprint(), base.flow.fingerprint())
        << threads << " threads";
    EXPECT_EQ(r.flow.ledger.summary().ops,
              base.flow.ledger.summary().ops);
    EXPECT_EQ(r.flow.ledger.sites().size(),
              base.flow.ledger.sites().size());
  }
}

TEST(FlowParallel, MonitoringDoesNotChangeTheFoldedValue) {
  par::ThreadPool pool(4);
  const auto monitored = run_fold(pool);
  auto plain = par::stream_accumulate(
      pool, kTotal, kChunks, [] { return SumAcc{}; },
      [](SumAcc& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          acc.sum += process(i);
        }
      });
  EXPECT_EQ(monitored.value.sum, plain.sum);
}

TEST(FlowParallel, SiteCapIsHonoredShardLocally) {
  // With a tiny per-shard cap the merged report still counts every op;
  // only per-site detail is dropped, and the drop is loud. Determinism
  // must survive capping too.
  par::ThreadPool a(1);
  par::ThreadPool b(8);
  const std::size_t cap = 64;
  const auto fill = [](SumAcc& acc, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) acc.sum += process(i);
  };
  const auto r1 = mon::monitored_stream_accumulate(
      a, kTotal, kChunks, [] { return SumAcc{}; }, fill, cap);
  const auto r8 = mon::monitored_stream_accumulate(
      b, kTotal, kChunks, [] { return SumAcc{}; }, fill, cap);
  EXPECT_EQ(r1.flow.ledger.summary().ops, 2 * kTotal);
  EXPECT_GT(r1.flow.ledger.summary().dropped_sites, 0u);
  EXPECT_LE(r1.flow.ledger.sites().size(), cap);
  EXPECT_EQ(r1.flow.fingerprint(), r8.flow.fingerprint());
}

TEST(FlowParallel, NestedMonitorsInsidePoolShardsStayShardLocal) {
  // A kernel that opens its OWN FlowMonitor inside the monitored chunk:
  // the inner monitor sees only its scope, the chunk monitor sees
  // everything, and nothing leaks across shards at any thread count.
  const auto fill = [](SumAcc& acc, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      mon::FlowReport inner;
      mon::monitor_flow(
          [&] {
            EXPECT_TRUE(mon::FlowMonitor::thread_active());
            acc.sum += process(i);
          },
          inner);
      // Each record emits exactly two ops into its private scope.
      EXPECT_EQ(inner.ledger.summary().ops, 2u);
    }
  };
  par::ThreadPool one(1);
  const auto base = mon::monitored_stream_accumulate(
      one, 2000, 16, [] { return SumAcc{}; }, fill);
  EXPECT_EQ(base.flow.ledger.summary().ops, 2u * 2000u);
  for (const std::size_t threads : {2u, 8u}) {
    par::ThreadPool pool(threads);
    const auto r = mon::monitored_stream_accumulate(
        pool, 2000, 16, [] { return SumAcc{}; }, fill);
    EXPECT_EQ(r.value.sum, base.value.sum);
    EXPECT_EQ(r.flow.fingerprint(), base.flow.fingerprint())
        << threads << " threads";
  }
}

}  // namespace
