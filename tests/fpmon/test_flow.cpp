// FlowMonitor / FlowLedger tests: bit-level value classification, the
// born/propagated/killed lifecycle accounting, swallow detection from
// paired flag samples, the bounded-site cap, order-independent merges,
// nesting and throw-safety of the monitor stack, and — where the
// platform can arm FE traps — SIGFPE capture with full mask and signal
// disposition restoration.

#include <csignal>
#include <cfenv>
#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "fpmon/flow.hpp"
#include "softfloat/env.hpp"

namespace mon = fpq::mon;
namespace sf = fpq::softfloat;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(FlowClassify, ReadsTheBitPatternOnly) {
  EXPECT_EQ(mon::classify(0.0), mon::ValueClass::kFinite);
  EXPECT_EQ(mon::classify(-0.0), mon::ValueClass::kFinite);
  EXPECT_EQ(mon::classify(1.5), mon::ValueClass::kFinite);
  EXPECT_EQ(mon::classify(std::numeric_limits<double>::denorm_min()),
            mon::ValueClass::kFinite);
  EXPECT_EQ(mon::classify(kInf), mon::ValueClass::kPosInf);
  EXPECT_EQ(mon::classify(-kInf), mon::ValueClass::kNegInf);
  EXPECT_EQ(mon::classify(kNaN), mon::ValueClass::kNaN);
  EXPECT_EQ(mon::classify(-kNaN), mon::ValueClass::kNaN);
  // Signaling NaN payloads classify as NaN without being evaluated.
  EXPECT_EQ(mon::classify(std::numeric_limits<double>::signaling_NaN()),
            mon::ValueClass::kNaN);

  EXPECT_FALSE(mon::is_exceptional(mon::ValueClass::kFinite));
  EXPECT_TRUE(mon::is_exceptional(mon::ValueClass::kPosInf));
  EXPECT_TRUE(mon::is_exceptional(mon::ValueClass::kNegInf));
  EXPECT_TRUE(mon::is_exceptional(mon::ValueClass::kNaN));
}

TEST(FlowClassify, ClassifyingDoesNotRaiseFlags) {
  std::feclearexcept(FE_ALL_EXCEPT);
  (void)mon::classify(std::numeric_limits<double>::signaling_NaN());
  (void)mon::classify(kInf);
  EXPECT_EQ(std::fetestexcept(FE_ALL_EXCEPT), 0);
}

TEST(FlowTags, AuxSitesSortAfterArithmeticSitesOfTheSameCall) {
  // The swallow-attribution rule "first swallow tag >= armed site tag"
  // leans on aux events (neg/cmp) of call N sorting after EVERY
  // arithmetic op of call N and before call N+1.
  const std::uint64_t arith_last = mon::flow_tag(7, (1ull << 19) - 1);
  const std::uint64_t aux_first = mon::flow_tag(7, mon::kFlowAuxBit | 0);
  const std::uint64_t next_call = mon::flow_tag(8, 0);
  EXPECT_LT(mon::flow_tag(7, 0), arith_last);
  EXPECT_LT(arith_last, aux_first);
  EXPECT_LT(aux_first, next_call);
}

TEST(FlowSignature, PacksOperandsAndResult) {
  const std::uint8_t clean = mon::flow_signature(
      mon::ValueClass::kFinite, mon::ValueClass::kFinite,
      mon::ValueClass::kFinite, mon::ValueClass::kFinite);
  const std::uint8_t poisoned = mon::flow_signature(
      mon::ValueClass::kNaN, mon::ValueClass::kFinite,
      mon::ValueClass::kFinite, mon::ValueClass::kNaN);
  EXPECT_NE(clean, poisoned);
  EXPECT_FALSE(mon::signature_has_exceptional(clean));
  EXPECT_TRUE(mon::signature_has_exceptional(poisoned));
}

TEST(FlowLedger, ClassifiesBornPropagatedKilled) {
  mon::FlowLedger led;
  // Born: finite operands, exceptional result.
  led.record_op(mon::flow_tag(0, 0), mon::ValueClass::kFinite,
                mon::ValueClass::kFinite, mon::ValueClass::kFinite,
                mon::ValueClass::kNaN);
  // Propagated: exceptional operand, exceptional result.
  led.record_op(mon::flow_tag(0, 1), mon::ValueClass::kNaN,
                mon::ValueClass::kFinite, mon::ValueClass::kFinite,
                mon::ValueClass::kNaN);
  // Killed: exceptional operand, finite result (e.g. min(nan, x)).
  led.record_op(mon::flow_tag(0, 2), mon::ValueClass::kNaN,
                mon::ValueClass::kFinite, mon::ValueClass::kFinite,
                mon::ValueClass::kFinite);
  // Clean op: nothing exceptional anywhere.
  led.record_op(mon::flow_tag(0, 3), mon::ValueClass::kFinite,
                mon::ValueClass::kFinite, mon::ValueClass::kFinite,
                mon::ValueClass::kFinite);

  const mon::FlowSummary& s = led.summary();
  EXPECT_EQ(s.ops, 4u);
  EXPECT_EQ(s.exceptional_ops, 3u);
  EXPECT_EQ(s.born, 1u);
  EXPECT_EQ(s.propagated, 1u);
  EXPECT_EQ(s.killed, 1u);

  ASSERT_NE(led.site(mon::flow_tag(0, 0)), nullptr);
  EXPECT_EQ(led.site(mon::flow_tag(0, 0))->born, 1u);
  EXPECT_EQ(led.site(mon::flow_tag(0, 1))->propagated, 1u);
  EXPECT_EQ(led.site(mon::flow_tag(0, 2))->killed, 1u);
  EXPECT_EQ(led.site(mon::flow_tag(9, 9)), nullptr);
}

TEST(FlowLedger, SitesStayTagSortedUnderOutOfOrderRecording) {
  mon::FlowLedger led;
  for (const std::uint64_t tag : {mon::flow_tag(5, 0), mon::flow_tag(1, 2),
                                  mon::flow_tag(3, 1),
                                  mon::flow_tag(1, 0)}) {
    led.record_op(tag, mon::ValueClass::kFinite, mon::ValueClass::kFinite,
                  mon::ValueClass::kFinite, mon::ValueClass::kFinite);
  }
  ASSERT_EQ(led.sites().size(), 4u);
  for (std::size_t i = 1; i < led.sites().size(); ++i) {
    EXPECT_LT(led.sites()[i - 1].tag, led.sites()[i].tag);
  }
}

TEST(FlowLedger, PairedFlagSamplesDetectSwallows) {
  mon::FlowLedger led;
  // Sticky overflow appears, then VANISHES between samples: that is a
  // swallow, credited to the site of the second sample.
  led.record_flag_sample(mon::flow_tag(0, 0),
                         sf::kFlagOverflow | sf::kFlagInexact);
  led.record_flag_sample(mon::flow_tag(0, 1), sf::kFlagInexact);
  // Flags only ACCUMULATING is not a swallow.
  led.record_flag_sample(mon::flow_tag(0, 2),
                         sf::kFlagInexact | sf::kFlagInvalid);

  EXPECT_EQ(led.summary().swallows, 1u);
  EXPECT_EQ(led.summary().flag_samples, 3u);
  ASSERT_NE(led.site(mon::flow_tag(0, 1)), nullptr);
  EXPECT_EQ(led.site(mon::flow_tag(0, 1))->swallows, 1u);
  // Sites only materialize where something HAPPENED: the accumulating
  // third sample created no entry.
  EXPECT_EQ(led.site(mon::flow_tag(0, 2)), nullptr);
}

TEST(FlowLedger, SiteCapDropsLoudly) {
  mon::FlowLedger led(2);
  for (std::uint64_t op = 0; op < 5; ++op) {
    led.record_op(mon::flow_tag(0, op), mon::ValueClass::kFinite,
                  mon::ValueClass::kFinite, mon::ValueClass::kFinite,
                  mon::ValueClass::kNaN);
  }
  EXPECT_EQ(led.sites().size(), 2u);
  EXPECT_EQ(led.summary().dropped_sites, 3u);
  // Totals still count every event — only per-site detail is capped.
  EXPECT_EQ(led.summary().ops, 5u);
  EXPECT_EQ(led.summary().born, 5u);
}

mon::FlowLedger sample_ledger(std::uint64_t call) {
  mon::FlowLedger led;
  led.record_op(mon::flow_tag(call, 0), mon::ValueClass::kFinite,
                mon::ValueClass::kFinite, mon::ValueClass::kFinite,
                mon::ValueClass::kNaN);
  led.record_op(mon::flow_tag(call, 1), mon::ValueClass::kNaN,
                mon::ValueClass::kFinite, mon::ValueClass::kFinite,
                mon::ValueClass::kNaN);
  led.record_flag_sample(mon::flow_tag(call, 0), sf::kFlagInvalid);
  led.record_flag_sample(mon::flow_tag(call, 1), 0);
  led.record_seam(mon::ConditionSet::from_softfloat_flags(sf::kFlagInexact));
  return led;
}

TEST(FlowLedger, MergeIsCommutative) {
  mon::FlowLedger ab = sample_ledger(1);
  ab.merge(sample_ledger(2));
  mon::FlowLedger ba = sample_ledger(2);
  ba.merge(sample_ledger(1));
  EXPECT_EQ(ab.fingerprint(), ba.fingerprint());
  EXPECT_EQ(ab.sites().size(), ba.sites().size());
}

TEST(FlowLedger, MergeEqualsSequentialRecordingOnSharedTags) {
  // Two shards observing the SAME sites merge to the same counters one
  // recorder would have produced.
  mon::FlowLedger merged = sample_ledger(1);
  merged.merge(sample_ledger(1));
  const mon::SiteFlow* site = merged.site(mon::flow_tag(1, 0));
  ASSERT_NE(site, nullptr);
  EXPECT_EQ(site->events, 2u);
  EXPECT_EQ(site->born, 2u);
  EXPECT_EQ(merged.summary().ops, 4u);
  EXPECT_EQ(merged.summary().seam_samples, 2u);
  EXPECT_TRUE(merged.seam_conditions().test(mon::Condition::kPrecision));
}

TEST(FlowLedger, FingerprintIgnoresTrapEvents) {
  // Trap captures are run-local (ASLR PCs, hardware trap timing); a
  // sampling run must fingerprint identically with and without them, or
  // the thread-identity witness would be platform-dependent.
  mon::FlowLedger a = sample_ledger(1);
  mon::FlowLedger b = sample_ledger(1);
  a.record_trap({0x1000, mon::Condition::kDivByZero});
  b.record_trap({0x2000, mon::Condition::kInvalid});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.fingerprint(), sample_ledger(1).fingerprint());
  // The events themselves are still reported in full.
  ASSERT_EQ(a.trap_events().size(), 1u);
  EXPECT_EQ(a.summary().trap_events, 1u);
}

TEST(FlowMonitor, SamplingModeCollectsOpEvents) {
  EXPECT_FALSE(mon::FlowMonitor::thread_active());
  mon::FlowReport report;
  mon::monitor_flow(
      [] {
        EXPECT_TRUE(mon::FlowMonitor::thread_active());
        mon::FlowMonitor::on_op(mon::flow_tag(0, 0), 1.0, 2.0, 0.0, 2,
                                kNaN);
        mon::FlowMonitor::on_op(mon::flow_tag(0, 1), kNaN, 2.0, 0.0, 2,
                                kNaN);
      },
      report);
  EXPECT_FALSE(mon::FlowMonitor::thread_active());
  EXPECT_EQ(report.ledger.summary().born, 1u);
  EXPECT_EQ(report.ledger.summary().propagated, 1u);
  EXPECT_FALSE(report.capability.trap_active);
}

TEST(FlowMonitor, EventsReachEveryMonitorOnTheStack) {
  mon::FlowReport outer_report;
  mon::monitor_flow(
      [&] {
        mon::FlowMonitor::on_op(mon::flow_tag(0, 0), 1.0, 1.0, 0.0, 2,
                                kInf);
        mon::FlowReport inner_report;
        mon::monitor_flow(
            [] {
              mon::FlowMonitor::on_op(mon::flow_tag(0, 1), kInf, 1.0, 0.0,
                                      2, kInf);
            },
            inner_report);
        // Inner saw only its own event; it is done, the outer lives on.
        EXPECT_EQ(inner_report.ledger.summary().ops, 1u);
        EXPECT_EQ(inner_report.ledger.summary().propagated, 1u);
        EXPECT_TRUE(mon::FlowMonitor::thread_active());
      },
      outer_report);
  // Outer saw both its own and the nested scope's events.
  EXPECT_EQ(outer_report.ledger.summary().ops, 2u);
  EXPECT_EQ(outer_report.ledger.summary().born, 1u);
  EXPECT_EQ(outer_report.ledger.summary().propagated, 1u);
}

TEST(FlowMonitor, NestedMonitorReRaisesIntoTheEnclosingRegion) {
  // A FlowMonitor contains a ScopedMonitor: conditions raised inside a
  // nested flow scope must still reach an enclosing plain monitor_region
  // exactly as they would have unmonitored.
  mon::ConditionSet region = mon::monitor_region([] {
    mon::FlowReport report;
    mon::monitor_flow(
        [] {
          std::feraiseexcept(FE_OVERFLOW);
        },
        report);
    EXPECT_TRUE(report.conditions.test(mon::Condition::kOverflow));
  });
  EXPECT_TRUE(region.test(mon::Condition::kOverflow));
}

TEST(FlowMonitor, ThrowStillHarvestsAndRestores) {
  std::feclearexcept(FE_ALL_EXCEPT);
  mon::FlowReport report;
  EXPECT_THROW(
      mon::monitor_flow(
          [] {
            mon::FlowMonitor::on_op(mon::flow_tag(3, 3), 0.0, 0.0, 0.0, 2,
                                    kNaN);
            std::feraiseexcept(FE_DIVBYZERO);
            throw std::runtime_error("kernel died");
          },
          report),
      std::runtime_error);
  // The report was harvested during unwind...
  EXPECT_EQ(report.ledger.summary().born, 1u);
  EXPECT_TRUE(report.conditions.test(mon::Condition::kDivByZero));
  // ...the monitor stack is empty again...
  EXPECT_FALSE(mon::FlowMonitor::thread_active());
  // ...and the region's conditions were re-raised into the enclosing env.
  EXPECT_NE(std::fetestexcept(FE_DIVBYZERO), 0);
  std::feclearexcept(FE_ALL_EXCEPT);
}

TEST(FlowMonitor, TrapModeDegradesToSamplingWithAReason) {
  mon::FlowOptions opts;
  opts.mode = mon::FlowMode::kTrap;
  if (!mon::trap_supported()) {
    // Platform cannot trap: the request itself must degrade loudly.
    mon::FlowMonitor monitor(opts);
    EXPECT_FALSE(monitor.capability().trap_active);
    EXPECT_FALSE(monitor.capability().degradation.empty());
    monitor.stop();
    return;
  }
  // A second concurrent trap session cannot arm; it must degrade
  // LOUDLY, not silently.
  mon::FlowMonitor outer(opts);
  ASSERT_TRUE(outer.capability().trap_active);
  {
    mon::FlowMonitor inner(opts);
    EXPECT_FALSE(inner.capability().trap_active);
    EXPECT_FALSE(inner.capability().degradation.empty());
    inner.stop();
  }
  outer.stop();
}

TEST(FlowMonitorTrap, CapturesRealTrapsAndRestoresEverything) {
  if (!mon::trap_supported()) {
    GTEST_SKIP() << "FE traps unavailable on this platform/build";
  }
  struct sigaction before {};
  sigaction(SIGFPE, nullptr, &before);
  const int masks_before = fegetexcept();

  mon::FlowOptions opts;
  opts.mode = mon::FlowMode::kTrap;
  mon::FlowReport report;
  mon::monitor_flow(
      [] {
        // Two different trap kinds in one scope: the handler must
        // re-mask each kind independently and execution must continue.
        volatile double zero = 0.0;
        volatile double one = 1.0;
        volatile double div = one / zero;  // FE_DIVBYZERO trap
        EXPECT_TRUE(std::isinf(div));
        volatile double inv = zero / zero;  // FE_INVALID trap
        EXPECT_TRUE(std::isnan(inv));
      },
      report, opts);

  EXPECT_TRUE(report.capability.trap_active);
  EXPECT_GE(report.ledger.summary().trap_events, 2u);
  bool saw_div = false;
  bool saw_inv = false;
  for (const mon::TrapEvent& e : report.ledger.trap_events()) {
    EXPECT_NE(e.pc, 0u);
    if (e.condition == mon::Condition::kDivByZero) saw_div = true;
    if (e.condition == mon::Condition::kInvalid) saw_inv = true;
  }
  EXPECT_TRUE(saw_div);
  EXPECT_TRUE(saw_inv);
  // The regular region ConditionSet still reports the conditions too.
  EXPECT_TRUE(report.conditions.test(mon::Condition::kDivByZero));
  EXPECT_TRUE(report.conditions.test(mon::Condition::kInvalid));

  // Exception masks and the SIGFPE disposition are fully restored.
  EXPECT_EQ(fegetexcept(), masks_before);
  struct sigaction after {};
  sigaction(SIGFPE, nullptr, &after);
  EXPECT_EQ(before.sa_flags & SA_SIGINFO, after.sa_flags & SA_SIGINFO);
  if (before.sa_flags & SA_SIGINFO) {
    EXPECT_EQ(before.sa_sigaction, after.sa_sigaction);
  } else {
    EXPECT_EQ(before.sa_handler, after.sa_handler);
  }
  std::feclearexcept(FE_ALL_EXCEPT);
}

TEST(FlowMonitorTrap, FirstTrapPerKindDoesNotStorm) {
  if (!mon::trap_supported()) {
    GTEST_SKIP() << "FE traps unavailable on this platform/build";
  }
  mon::FlowOptions opts;
  opts.mode = mon::FlowMode::kTrap;
  mon::FlowReport report;
  mon::monitor_flow(
      [] {
        volatile double zero = 0.0;
        volatile double one = 1.0;
        // After the first divide-by-zero trap the kind is re-masked in
        // the interrupted context, so a thousand more divisions run at
        // full speed without signaling.
        for (int i = 0; i < 1000; ++i) {
          volatile double r = one / zero;
          (void)r;
        }
      },
      report, opts);
  EXPECT_TRUE(report.capability.trap_active);
  std::uint64_t div_traps = 0;
  for (const mon::TrapEvent& e : report.ledger.trap_events()) {
    if (e.condition == mon::Condition::kDivByZero) ++div_traps;
  }
  EXPECT_EQ(div_traps, 1u);
}

TEST(FlowCollector, InactiveByDefaultAndDrainsIntoTheOwner) {
  EXPECT_FALSE(mon::FlowCollector::active());
  // Samples with no collector are dropped without touching anyone.
  mon::FlowCollector::sample();

  std::feclearexcept(FE_ALL_EXCEPT);
  mon::FlowOptions opts;
  opts.collect_seams = true;
  mon::FlowReport report;
  mon::monitor_flow(
      [] {
        EXPECT_TRUE(mon::FlowCollector::active());
        std::feraiseexcept(FE_UNDERFLOW);
        mon::FlowCollector::sample();
        mon::FlowCollector::sample();
      },
      report, opts);
  EXPECT_FALSE(mon::FlowCollector::active());
  EXPECT_TRUE(report.capability.seam_collector);
  EXPECT_GE(report.ledger.summary().seam_samples, 2u);
  EXPECT_TRUE(
      report.ledger.seam_conditions().test(mon::Condition::kUnderflow));
  std::feclearexcept(FE_ALL_EXCEPT);
}

TEST(FlowReport, RenderNamesTheLoadBearingPieces) {
  mon::FlowReport report;
  mon::monitor_flow(
      [] {
        mon::FlowMonitor::on_op(mon::flow_tag(0, 0), 1.0, 0.0, 0.0, 2,
                                kNaN);
        mon::FlowMonitor::on_op(mon::flow_tag(0, 1), kNaN, 0.0, 0.0, 2,
                                1.0);
      },
      report);
  const std::string text = mon::render_flow_report(report);
  for (const char* needle :
       {"born", "killed", "capability", "trap", "denormal"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
