#include <gtest/gtest.h>

#include "fpmon/report.hpp"

namespace mon = fpq::mon;

namespace {

TEST(Report, SeverityRankingMatchesPaper) {
  // §IV-D: Invalid >> Overflow >> the rest.
  EXPECT_EQ(mon::advised_severity(mon::Condition::kInvalid),
            mon::Severity::kCritical);
  EXPECT_EQ(mon::advised_severity(mon::Condition::kOverflow),
            mon::Severity::kWarning);
  EXPECT_EQ(mon::advised_severity(mon::Condition::kUnderflow),
            mon::Severity::kInfo);
  EXPECT_EQ(mon::advised_severity(mon::Condition::kPrecision),
            mon::Severity::kInfo);
  EXPECT_EQ(mon::advised_severity(mon::Condition::kDenorm),
            mon::Severity::kInfo);
}

TEST(Report, AdvisedSuspicionLevels) {
  EXPECT_EQ(mon::advised_suspicion_level(mon::Condition::kInvalid), 5);
  EXPECT_EQ(mon::advised_suspicion_level(mon::Condition::kOverflow), 4);
  EXPECT_EQ(mon::advised_suspicion_level(mon::Condition::kUnderflow), 2);
  EXPECT_EQ(mon::advised_suspicion_level(mon::Condition::kDenorm), 2);
  EXPECT_EQ(mon::advised_suspicion_level(mon::Condition::kPrecision), 1);
}

TEST(Report, VerdictCleanRun) {
  const mon::Verdict v = mon::evaluate(mon::ConditionSet{});
  EXPECT_TRUE(v.clean);
  EXPECT_EQ(v.suspicion_level, 1);
  EXPECT_EQ(v.worst, mon::Severity::kInfo);
}

TEST(Report, VerdictWorstConditionWins) {
  mon::ConditionSet set;
  set.set(mon::Condition::kPrecision);
  set.set(mon::Condition::kInvalid);
  const mon::Verdict v = mon::evaluate(set);
  EXPECT_FALSE(v.clean);
  EXPECT_EQ(v.worst, mon::Severity::kCritical);
  EXPECT_EQ(v.suspicion_level, 5);
}

TEST(Report, VerdictOverflowOnly) {
  mon::ConditionSet set;
  set.set(mon::Condition::kOverflow);
  const mon::Verdict v = mon::evaluate(set);
  EXPECT_EQ(v.worst, mon::Severity::kWarning);
  EXPECT_EQ(v.suspicion_level, 4);
}

TEST(Report, RenderMentionsEveryCondition) {
  mon::ConditionSet set;
  set.set(mon::Condition::kInvalid);
  const std::string out = mon::render_report(set);
  EXPECT_NE(out.find("Invalid: OCCURRED"), std::string::npos);
  EXPECT_NE(out.find("Overflow: not observed"), std::string::npos);
  EXPECT_NE(out.find("CRITICAL"), std::string::npos);
  EXPECT_NE(out.find("suspicion level 5/5"), std::string::npos);
}

TEST(Report, RenderCleanVerdict) {
  const std::string out = mon::render_report(mon::ConditionSet{});
  EXPECT_NE(out.find("clean run"), std::string::npos);
}

}  // namespace
