// The scoped hardware exception monitor: each IEEE condition raised in
// isolation, nesting, sticky re-merging, and softfloat harvesting.

#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "fpmon/monitor.hpp"
#include "softfloat/ops.hpp"

namespace mon = fpq::mon;
namespace sf = fpq::softfloat;

namespace {

// Opaque operations that really execute on the FPU.
[[gnu::noinline]] double op_div(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va / vb;
  return r;
}
[[gnu::noinline]] double op_mul(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va * vb;
  return r;
}
[[gnu::noinline]] double op_add(double a, double b) {
  volatile double va = a, vb = b;
  volatile double r = va + vb;
  return r;
}

TEST(Monitor, CleanRegionReportsNothing) {
  const auto seen = mon::monitor_region([] { (void)op_add(1.0, 2.0); });
  EXPECT_FALSE(seen.any());
  EXPECT_EQ(seen.to_string(), "none");
}

TEST(Monitor, DetectsDivByZero) {
  const auto seen = mon::monitor_region([] { (void)op_div(1.0, 0.0); });
  EXPECT_TRUE(seen.test(mon::Condition::kDivByZero));
  EXPECT_FALSE(seen.test(mon::Condition::kInvalid));
}

TEST(Monitor, DetectsInvalid) {
  const auto seen = mon::monitor_region([] { (void)op_div(0.0, 0.0); });
  EXPECT_TRUE(seen.test(mon::Condition::kInvalid));
}

TEST(Monitor, DetectsOverflowAndPrecision) {
  const auto seen = mon::monitor_region([] { (void)op_mul(1e300, 1e300); });
  EXPECT_TRUE(seen.test(mon::Condition::kOverflow));
  EXPECT_TRUE(seen.test(mon::Condition::kPrecision));
}

TEST(Monitor, DetectsUnderflow) {
  const auto seen = mon::monitor_region([] { (void)op_mul(1e-300, 1e-300); });
  EXPECT_TRUE(seen.test(mon::Condition::kUnderflow));
}

TEST(Monitor, DetectsPrecisionAlone) {
  const auto seen = mon::monitor_region([] { (void)op_div(1.0, 3.0); });
  EXPECT_TRUE(seen.test(mon::Condition::kPrecision));
  EXPECT_FALSE(seen.test(mon::Condition::kOverflow));
  EXPECT_FALSE(seen.test(mon::Condition::kInvalid));
}

TEST(Monitor, DetectsDenormalOperandWhenSupported) {
  mon::ScopedMonitor monitor;
  if (!monitor.tracks_denormals()) GTEST_SKIP() << "no MXCSR on this host";
  (void)op_mul(4.9406564584124654e-324, 2.0);  // subnormal operand
  const auto seen = monitor.stop();
  EXPECT_TRUE(seen.test(mon::Condition::kDenorm));
}

TEST(Monitor, InnerScopeDoesNotHideFromOuter) {
  mon::ScopedMonitor outer;
  {
    mon::ScopedMonitor inner;
    (void)op_div(1.0, 0.0);
    const auto inner_seen = inner.stop();
    EXPECT_TRUE(inner_seen.test(mon::Condition::kDivByZero));
  }
  const auto outer_seen = outer.stop();
  EXPECT_TRUE(outer_seen.test(mon::Condition::kDivByZero))
      << "sticky semantics must be re-merged on inner exit";
}

TEST(Monitor, InnerScopeStartsClean) {
  mon::ScopedMonitor outer;
  (void)op_div(1.0, 0.0);
  {
    mon::ScopedMonitor inner;
    const auto inner_seen = inner.stop();
    EXPECT_FALSE(inner_seen.any())
        << "outer exceptions must not leak into the inner scope";
  }
  EXPECT_TRUE(outer.stop().test(mon::Condition::kDivByZero));
}

TEST(Monitor, RestoresPreexistingFlags) {
  std::feclearexcept(FE_ALL_EXCEPT);
  (void)op_div(1.0, 0.0);  // raise divbyzero before any monitor
  {
    mon::ScopedMonitor monitor;
    (void)monitor.stop();
  }
  EXPECT_TRUE(std::fetestexcept(FE_DIVBYZERO))
      << "the monitor must restore flags that were already pending";
  std::feclearexcept(FE_ALL_EXCEPT);
}

TEST(Monitor, PeekWithoutStopping) {
  mon::ScopedMonitor monitor;
  (void)op_div(0.0, 0.0);
  EXPECT_TRUE(monitor.peek().test(mon::Condition::kInvalid));
  (void)op_div(1.0, 0.0);
  const auto seen = monitor.stop();
  EXPECT_TRUE(seen.test(mon::Condition::kInvalid));
  EXPECT_TRUE(seen.test(mon::Condition::kDivByZero));
}

TEST(Monitor, StopIsIdempotent) {
  mon::ScopedMonitor monitor;
  (void)op_div(0.0, 0.0);
  const auto first = monitor.stop();
  (void)op_div(1.0, 0.0);  // after stop: not recorded
  const auto second = monitor.stop();
  EXPECT_EQ(first, second);
  std::feclearexcept(FE_ALL_EXCEPT);
}

TEST(ConditionSet, MergeAndCount) {
  mon::ConditionSet a, b;
  a.set(mon::Condition::kOverflow);
  b.set(mon::Condition::kInvalid);
  b.set(mon::Condition::kPrecision);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_TRUE(a.test(mon::Condition::kOverflow));
  EXPECT_TRUE(a.test(mon::Condition::kInvalid));
}

TEST(ConditionSet, FromSoftfloatFlags) {
  sf::Env env;
  sf::div(sf::from_native(1.0), sf::from_native(0.0), env);
  sf::div(sf::from_native(0.0), sf::from_native(0.0), env);
  const auto seen = mon::ConditionSet::from_softfloat_flags(env.flags());
  EXPECT_TRUE(seen.test(mon::Condition::kDivByZero));
  EXPECT_TRUE(seen.test(mon::Condition::kInvalid));
  EXPECT_FALSE(seen.test(mon::Condition::kOverflow));
}

TEST(ConditionSet, ToStringListsConditions) {
  mon::ConditionSet set;
  set.set(mon::Condition::kOverflow);
  set.set(mon::Condition::kInvalid);
  EXPECT_EQ(set.to_string(), "Overflow|Invalid");
}

TEST(Monitor, ThrowInsideNestedMonitorUnwindsSafely) {
  // A throw between construction and stop() must run the inner monitor's
  // destructor harvest: the outer scope still sees the inner conditions
  // (sticky re-merge) and the host flag state is left balanced.
  std::feclearexcept(FE_ALL_EXCEPT);
  mon::ScopedMonitor outer;
  try {
    mon::ScopedMonitor inner;
    (void)op_div(1.0, 0.0);
    throw std::runtime_error("mid-region failure");
  } catch (const std::runtime_error&) {
  }
  (void)op_div(1.0, 3.0);  // the outer region keeps monitoring after unwind
  const auto outer_seen = outer.stop();
  EXPECT_TRUE(outer_seen.test(mon::Condition::kDivByZero))
      << "inner conditions must survive exceptional unwind";
  EXPECT_TRUE(outer_seen.test(mon::Condition::kPrecision));
  std::feclearexcept(FE_ALL_EXCEPT);
}

TEST(Monitor, MonitorRegionCaptureOverloadSurvivesThrow) {
  // The capture overload harvests into `out` even when the region body
  // throws — the throwing path of the §V wrapper question.
  mon::ConditionSet seen;
  bool caught = false;
  try {
    mon::monitor_region(
        [] {
          (void)op_div(0.0, 0.0);
          throw std::runtime_error("simulation blew up");
        },
        seen);
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
  EXPECT_TRUE(seen.test(mon::Condition::kInvalid))
      << "conditions raised before the throw must be harvested";
}

TEST(Monitor, MonitorRegionCaptureMatchesReturningOverload) {
  mon::ConditionSet captured;
  mon::monitor_region([] { (void)op_div(1.0, 0.0); }, captured);
  const auto returned = mon::monitor_region([] { (void)op_div(1.0, 0.0); });
  EXPECT_EQ(captured, returned);
}

TEST(Monitor, SuspicionQuizShape) {
  // The paper's suspicion-quiz scenario: wrap a "simulation", then ask
  // which of the five conditions occurred one or more times.
  const auto seen = mon::monitor_region([] {
    double acc = 1.0;
    for (int i = 0; i < 400; ++i) acc = op_mul(acc, 10.0);   // -> overflow
    (void)op_add(acc, -acc);                                  // inf - inf
  });
  EXPECT_TRUE(seen.test(mon::Condition::kOverflow));
  EXPECT_TRUE(seen.test(mon::Condition::kInvalid));
  EXPECT_TRUE(seen.test(mon::Condition::kPrecision));
}

}  // namespace
