// The background sampler must reproduce the published marginals: checked
// with chi-square goodness of fit on a large sample.

#include <gtest/gtest.h>

#include <vector>

#include "paperdata/paperdata.hpp"
#include "respondent/background_model.hpp"
#include "stats/chi_square.hpp"

namespace rs = fpq::respondent;
namespace pd = fpq::paperdata;

namespace {

constexpr std::size_t kSample = 20000;

std::vector<fpq::survey::BackgroundProfile> sample_many(std::uint64_t seed) {
  fpq::stats::Xoshiro256pp g(seed);
  std::vector<fpq::survey::BackgroundProfile> out;
  out.reserve(kSample);
  for (std::size_t i = 0; i < kSample; ++i) {
    out.push_back(rs::sample_background(g));
  }
  return out;
}

void expect_marginal_fit(std::span<const pd::CategoryCount> table,
                         const std::vector<std::size_t>& observed,
                         const char* what) {
  double total = 0.0;
  for (const auto& row : table) total += static_cast<double>(row.n);
  std::vector<double> probs;
  for (const auto& row : table) {
    probs.push_back(static_cast<double>(row.n) / total);
  }
  const auto result =
      fpq::stats::chi_square_goodness_of_fit(observed, probs);
  EXPECT_GT(result.p_value, 1e-4) << what << " chi2=" << result.statistic;
}

TEST(BackgroundModel, PositionMarginal) {
  const auto sample = sample_many(101);
  std::vector<std::size_t> counts(pd::positions().size(), 0);
  for (const auto& b : sample) ++counts[b.position];
  expect_marginal_fit(pd::positions(), counts, "positions");
}

TEST(BackgroundModel, AreaMarginal) {
  const auto sample = sample_many(102);
  std::vector<std::size_t> counts(pd::areas().size(), 0);
  for (const auto& b : sample) ++counts[b.area];
  expect_marginal_fit(pd::areas(), counts, "areas");
}

TEST(BackgroundModel, TrainingAndRoleMarginals) {
  const auto sample = sample_many(103);
  std::vector<std::size_t> training(pd::formal_training().size(), 0);
  std::vector<std::size_t> roles(pd::dev_roles().size(), 0);
  for (const auto& b : sample) {
    ++training[b.formal_training];
    ++roles[b.dev_role];
  }
  expect_marginal_fit(pd::formal_training(), training, "formal training");
  expect_marginal_fit(pd::dev_roles(), roles, "roles");
}

TEST(BackgroundModel, CodebaseMarginals) {
  const auto sample = sample_many(104);
  std::vector<std::size_t> contributed(
      pd::contributed_codebase_sizes().size(), 0);
  std::vector<std::size_t> involved(pd::involved_codebase_sizes().size(), 0);
  for (const auto& b : sample) {
    ++contributed[b.contributed_size];
    ++involved[b.involved_size];
  }
  expect_marginal_fit(pd::contributed_codebase_sizes(), contributed,
                      "contributed sizes");
  expect_marginal_fit(pd::involved_codebase_sizes(), involved,
                      "involved sizes");
}

TEST(BackgroundModel, MultiSelectRates) {
  const auto sample = sample_many(105);
  const auto langs = pd::fp_languages();
  std::vector<std::size_t> counts(langs.size(), 0);
  for (const auto& b : sample) {
    for (std::size_t idx : b.fp_languages) ++counts[idx];
  }
  for (std::size_t i = 0; i < langs.size(); ++i) {
    const double expected = static_cast<double>(langs[i].n) /
                            static_cast<double>(pd::kMainCohortSize);
    const double observed = static_cast<double>(counts[i]) /
                            static_cast<double>(kSample);
    EXPECT_NEAR(observed, expected, 0.012) << langs[i].label;
  }
}

TEST(BackgroundModel, DeterministicUnderSeed) {
  fpq::stats::Xoshiro256pp g1(7), g2(7);
  for (int i = 0; i < 50; ++i) {
    const auto a = rs::sample_background(g1);
    const auto b = rs::sample_background(g2);
    EXPECT_EQ(a.position, b.position);
    EXPECT_EQ(a.area, b.area);
    EXPECT_EQ(a.fp_languages, b.fp_languages);
    EXPECT_EQ(a.contributed_size, b.contributed_size);
  }
}

}  // namespace
