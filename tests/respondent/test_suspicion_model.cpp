#include <gtest/gtest.h>

#include "paperdata/paperdata.hpp"
#include "respondent/suspicion_model.hpp"
#include "stats/likert.hpp"

namespace rs = fpq::respondent;
namespace pd = fpq::paperdata;

namespace {

TEST(SuspicionModel, MainCohortMatchesFigure22a) {
  fpq::stats::Xoshiro256pp g(77);
  std::array<fpq::stats::LikertAccumulator, 5> acc;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    const auto levels = rs::sample_suspicion(rs::Cohort::kMain, g);
    for (std::size_t c = 0; c < 5; ++c) acc[c].add(levels[c]);
  }
  const auto targets = pd::suspicion_targets();
  for (std::size_t c = 0; c < 5; ++c) {
    const auto dist = acc[c].distribution();
    for (int level = 1; level <= 5; ++level) {
      EXPECT_NEAR(dist.percent(level),
                  targets[c].percent_main[level - 1], 1.0)
          << targets[c].condition << " level " << level;
    }
  }
}

TEST(SuspicionModel, StudentCohortMatchesFigure22b) {
  fpq::stats::Xoshiro256pp g(78);
  std::array<fpq::stats::LikertAccumulator, 5> acc;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) {
    const auto levels = rs::sample_suspicion(rs::Cohort::kStudents, g);
    for (std::size_t c = 0; c < 5; ++c) acc[c].add(levels[c]);
  }
  const auto targets = pd::suspicion_targets();
  for (std::size_t c = 0; c < 5; ++c) {
    const auto dist = acc[c].distribution();
    for (int level = 1; level <= 5; ++level) {
      EXPECT_NEAR(dist.percent(level),
                  targets[c].percent_students[level - 1], 1.0)
          << targets[c].condition << " level " << level;
    }
  }
}

TEST(SuspicionModel, CohortsDifferWhereThePaperSaysTheyDo) {
  fpq::stats::Xoshiro256pp g(79);
  double main_underflow = 0.0, student_underflow = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    main_underflow += rs::sample_suspicion(rs::Cohort::kMain, g)[1];
    student_underflow += rs::sample_suspicion(rs::Cohort::kStudents, g)[1];
  }
  EXPECT_LT(student_underflow / kN, main_underflow / kN)
      << "students less suspicious of Underflow";
}

TEST(SuspicionModel, LevelsAlwaysValid) {
  fpq::stats::Xoshiro256pp g(80);
  for (int i = 0; i < 1000; ++i) {
    for (int level : rs::sample_suspicion(rs::Cohort::kMain, g)) {
      EXPECT_GE(level, 1);
      EXPECT_LE(level, 5);
    }
  }
}

}  // namespace
