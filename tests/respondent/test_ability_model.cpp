#include <gtest/gtest.h>

#include "paperdata/paperdata.hpp"
#include "respondent/ability_model.hpp"
#include "respondent/background_model.hpp"

namespace rs = fpq::respondent;
namespace pd = fpq::paperdata;

namespace {

TEST(AbilityModel, EffectsAreCentered) {
  // Each factor's participant-weighted mean effect must be ~0 (so adding
  // factors does not shift the overall mean).
  double size_acc = 0.0;
  for (std::size_t row = 0; row < pd::contributed_codebase_sizes().size();
       ++row) {
    size_acc += static_cast<double>(pd::contributed_codebase_sizes()[row].n) *
                rs::core_effect_contributed_size(row);
  }
  EXPECT_NEAR(size_acc / 199.0, 0.0, 0.05);

  double area_acc = 0.0;
  for (std::size_t row = 0; row < pd::areas().size(); ++row) {
    area_acc += static_cast<double>(pd::areas()[row].n) *
                rs::core_effect_area(row);
  }
  EXPECT_NEAR(area_acc / 199.0, 0.0, 0.05);

  double role_acc = 0.0;
  for (std::size_t row = 0; row < pd::dev_roles().size(); ++row) {
    role_acc += static_cast<double>(pd::dev_roles()[row].n) *
                rs::core_effect_role(row);
  }
  EXPECT_NEAR(role_acc / 199.0, 0.0, 0.08);
}

TEST(AbilityModel, EffectSignsMatchTheProse) {
  // Million-line contributors above the mean; sub-1K below.
  EXPECT_GT(rs::core_effect_contributed_size(4), 2.0);  // >1M
  EXPECT_LT(rs::core_effect_contributed_size(2), -1.0);  // 100-1K
  // EE above; PhysSci below.
  EXPECT_GT(rs::core_effect_area(5), 2.0);
  EXPECT_LT(rs::core_effect_area(1), -0.5);
  // Primary software engineers slightly above.
  EXPECT_GT(rs::core_effect_role(1), 0.5);
  // Training monotone.
  EXPECT_LT(rs::core_effect_training(1), rs::core_effect_training(3));
}

TEST(AbilityModel, UnchartedLevelsHaveZeroEffect) {
  EXPECT_DOUBLE_EQ(rs::core_effect_contributed_size(6), 0.0);  // Not Rep.
  EXPECT_DOUBLE_EQ(rs::core_effect_role(4), 0.0);
  EXPECT_DOUBLE_EQ(rs::core_effect_training(4), 0.0);
}

TEST(AbilityModel, PopulationMeansMatchFigure12) {
  fpq::stats::Xoshiro256pp g(2024);
  double core_sum = 0.0, opt_sum = 0.0, dk_sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const auto background = rs::sample_background(g);
    const auto a = rs::derive_ability(background, g);
    core_sum += a.core_target;
    opt_sum += a.opt_target;
    dk_sum += a.dont_know_propensity;
  }
  EXPECT_NEAR(core_sum / kN, 8.5, 0.1);
  // The opt target is clamped below at 0, which shifts the mean slightly
  // above the 0.6 center.
  EXPECT_NEAR(opt_sum / kN, 0.6, 0.12);
  EXPECT_NEAR(dk_sum / kN, 1.0, 0.03);
}

TEST(AbilityModel, TargetsStayInRange) {
  fpq::stats::Xoshiro256pp g(99);
  for (int i = 0; i < 5000; ++i) {
    const auto a = rs::derive_ability(rs::sample_background(g), g);
    EXPECT_GE(a.core_target, 0.0);
    EXPECT_LE(a.core_target, 15.0);
    EXPECT_GE(a.opt_target, 0.0);
    EXPECT_LE(a.opt_target, 3.0);
    EXPECT_GT(a.dont_know_propensity, 0.0);
  }
}

TEST(AbilityModel, ConditionalMeansTrackFactorTargets) {
  // E[core_target | size bin] must reproduce the Figure 16 targets,
  // because factors are independent and effects centered.
  fpq::stats::Xoshiro256pp g(555);
  std::array<double, 5> sum{};
  std::array<int, 5> count{};
  for (int i = 0; i < 40000; ++i) {
    const auto background = rs::sample_background(g);
    const auto a = rs::derive_ability(background, g);
    const auto bin =
        fpq::survey::contributed_size_bin(background.contributed_size);
    if (bin == fpq::survey::kNoSizeBin) continue;
    sum[bin] += a.core_target;
    ++count[bin];
  }
  const auto targets = pd::contributed_size_effect();
  for (std::size_t b = 0; b < 5; ++b) {
    ASSERT_GT(count[b], 100);
    EXPECT_NEAR(sum[b] / count[b], targets[b].core_correct, 0.25)
        << targets[b].label;
  }
}

}  // namespace
