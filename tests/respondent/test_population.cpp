#include <gtest/gtest.h>

#include "respondent/population.hpp"

namespace rs = fpq::respondent;

namespace {

TEST(Population, GeneratesRequestedSizes) {
  const auto main_cohort = rs::generate_main_cohort(1);
  EXPECT_EQ(main_cohort.size(), 199u);
  const auto students = rs::generate_student_cohort(1);
  EXPECT_EQ(students.size(), 52u);
}

TEST(Population, RespondentIdsSequential) {
  const auto cohort = rs::generate_main_cohort(2, 10);
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    EXPECT_EQ(cohort[i].respondent_id, i + 1);
  }
}

TEST(Population, DeterministicUnderSeed) {
  const auto a = rs::generate_main_cohort(42, 50);
  const auto b = rs::generate_main_cohort(42, 50);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].background.area, b[i].background.area);
    EXPECT_EQ(a[i].core.answers, b[i].core.answers);
    EXPECT_EQ(a[i].opt.level_choice, b[i].opt.level_choice);
    EXPECT_EQ(a[i].suspicion, b[i].suspicion);
  }
}

TEST(Population, DifferentSeedsDiffer) {
  const auto a = rs::generate_main_cohort(1, 50);
  const auto b = rs::generate_main_cohort(2, 50);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].core.answers == b[i].core.answers) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Population, SuspicionLevelsInRange) {
  const auto cohort = rs::generate_main_cohort(3);
  for (const auto& r : cohort) {
    for (int level : r.suspicion) {
      EXPECT_GE(level, 1);
      EXPECT_LE(level, 5);
    }
  }
  const auto students = rs::generate_student_cohort(3);
  for (const auto& s : students) {
    for (int level : s.suspicion) {
      EXPECT_GE(level, 1);
      EXPECT_LE(level, 5);
    }
  }
}

TEST(Population, BackgroundIndicesInRange) {
  const auto cohort = rs::generate_main_cohort(4);
  for (const auto& r : cohort) {
    EXPECT_LT(r.background.position, 10u);
    EXPECT_LT(r.background.area, 19u);
    EXPECT_LT(r.background.formal_training, 5u);
    EXPECT_LT(r.background.dev_role, 5u);
    EXPECT_LT(r.background.contributed_size, 7u);
    EXPECT_LT(r.background.involved_size, 7u);
  }
}

// -- CohortGenerator: streaming, shard-addressable generation --------------

TEST(CohortGenerator, StreamsTheExactLegacyCohort) {
  const auto cohort = rs::generate_main_cohort(11, 60);
  rs::CohortGenerator gen(11);
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    EXPECT_EQ(gen.position(), i);
    const auto r = gen.next();
    EXPECT_EQ(r.respondent_id, cohort[i].respondent_id);
    EXPECT_EQ(r.background.area, cohort[i].background.area);
    EXPECT_EQ(r.core.answers, cohort[i].core.answers);
    EXPECT_EQ(r.opt.tf_answers, cohort[i].opt.tf_answers);
    EXPECT_EQ(r.opt.level_choice, cohort[i].opt.level_choice);
    EXPECT_EQ(r.suspicion, cohort[i].suspicion);
  }
}

TEST(CohortGenerator, RecordByIndexMatchesSequentialGeneration) {
  const auto cohort = rs::generate_main_cohort(11, 60);
  rs::CohortGenerator gen(11);
  // Out-of-order access, including backwards seeks.
  for (const std::size_t i : {40u, 3u, 59u, 3u, 0u, 17u}) {
    const auto r = gen.record(i);
    EXPECT_EQ(r.respondent_id, cohort[i].respondent_id);
    EXPECT_EQ(r.core.answers, cohort[i].core.answers) << "index " << i;
    EXPECT_EQ(r.suspicion, cohort[i].suspicion) << "index " << i;
    EXPECT_EQ(gen.position(), i + 1);
  }
}

TEST(CohortGenerator, SeekIsANoOpAtTheCurrentPosition) {
  rs::CohortGenerator a(5), b(5);
  a.next();
  a.next();
  a.seek(2);  // already there
  b.next();
  b.next();
  EXPECT_EQ(a.next().core.answers, b.next().core.answers);
}

TEST(CohortGenerator, ShardsReassembleTheFullCohort) {
  // Independent generators seeked to shard starts must reproduce the
  // sequential stream — the property bench/stream_main_cohort relies on.
  const auto cohort = rs::generate_main_cohort(13, 50);
  for (const std::size_t begin : {0u, 1u, 24u, 49u}) {
    rs::CohortGenerator gen(13);
    gen.seek(begin);
    for (std::size_t i = begin; i < cohort.size(); ++i) {
      EXPECT_EQ(gen.next().core.answers, cohort[i].core.answers)
          << "shard start " << begin << ", index " << i;
    }
  }
}

TEST(StudentCohortGenerator, StreamsTheExactLegacyCohort) {
  const auto students = rs::generate_student_cohort(21, 30);
  rs::StudentCohortGenerator gen(21);
  for (std::size_t i = 0; i < students.size(); ++i) {
    const auto r = gen.next();
    EXPECT_EQ(r.respondent_id, students[i].respondent_id);
    EXPECT_EQ(r.suspicion, students[i].suspicion);
  }
  // Shard-addressable too.
  EXPECT_EQ(gen.record(7).suspicion, students[7].suspicion);
}

}  // namespace
