#include <gtest/gtest.h>

#include "respondent/population.hpp"

namespace rs = fpq::respondent;

namespace {

TEST(Population, GeneratesRequestedSizes) {
  const auto main_cohort = rs::generate_main_cohort(1);
  EXPECT_EQ(main_cohort.size(), 199u);
  const auto students = rs::generate_student_cohort(1);
  EXPECT_EQ(students.size(), 52u);
}

TEST(Population, RespondentIdsSequential) {
  const auto cohort = rs::generate_main_cohort(2, 10);
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    EXPECT_EQ(cohort[i].respondent_id, i + 1);
  }
}

TEST(Population, DeterministicUnderSeed) {
  const auto a = rs::generate_main_cohort(42, 50);
  const auto b = rs::generate_main_cohort(42, 50);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].background.area, b[i].background.area);
    EXPECT_EQ(a[i].core.answers, b[i].core.answers);
    EXPECT_EQ(a[i].opt.level_choice, b[i].opt.level_choice);
    EXPECT_EQ(a[i].suspicion, b[i].suspicion);
  }
}

TEST(Population, DifferentSeedsDiffer) {
  const auto a = rs::generate_main_cohort(1, 50);
  const auto b = rs::generate_main_cohort(2, 50);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].core.answers == b[i].core.answers) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Population, SuspicionLevelsInRange) {
  const auto cohort = rs::generate_main_cohort(3);
  for (const auto& r : cohort) {
    for (int level : r.suspicion) {
      EXPECT_GE(level, 1);
      EXPECT_LE(level, 5);
    }
  }
  const auto students = rs::generate_student_cohort(3);
  for (const auto& s : students) {
    for (int level : s.suspicion) {
      EXPECT_GE(level, 1);
      EXPECT_LE(level, 5);
    }
  }
}

TEST(Population, BackgroundIndicesInRange) {
  const auto cohort = rs::generate_main_cohort(4);
  for (const auto& r : cohort) {
    EXPECT_LT(r.background.position, 10u);
    EXPECT_LT(r.background.area, 19u);
    EXPECT_LT(r.background.formal_training, 5u);
    EXPECT_LT(r.background.dev_role, 5u);
    EXPECT_LT(r.background.contributed_size, 7u);
    EXPECT_LT(r.background.involved_size, 7u);
  }
}

}  // namespace
