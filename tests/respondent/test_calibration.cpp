// The calibrated item-response model: per-question marginals and the
// unit-slope property.

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "respondent/background_model.hpp"
#include "respondent/calibration.hpp"

namespace rs = fpq::respondent;
namespace pd = fpq::paperdata;
namespace quiz = fpq::quiz;

namespace {

const rs::CalibratedQuizModel& model() {
  static const auto m = rs::CalibratedQuizModel::fit(0xF17);
  return m;
}

TEST(Calibration, FitIsDeterministic) {
  const auto a = rs::CalibratedQuizModel::fit(0xF17);
  const auto b = rs::CalibratedQuizModel::fit(0xF17);
  EXPECT_EQ(a.gamma_core(), b.gamma_core());
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    EXPECT_EQ(a.core_beta(q), b.core_beta(q));
  }
}

TEST(Calibration, GammaIsPositiveAndSane) {
  EXPECT_GT(model().gamma_core(), 0.1);
  EXPECT_LT(model().gamma_core(), 2.0);
}

TEST(Calibration, OptModelIsLinearInTarget) {
  rs::Ability lo, mid, hi;
  lo.opt_target = 0.3;
  mid.opt_target = 0.6;
  hi.opt_target = 1.2;
  EXPECT_NEAR(model().expected_opt_score(mid), 0.58, 0.05)
      << "population center reproduces Figure 12's 0.6";
  EXPECT_NEAR(model().expected_opt_score(lo),
              model().expected_opt_score(mid) / 2.0, 0.05);
  EXPECT_NEAR(model().expected_opt_score(hi),
              model().expected_opt_score(mid) * 2.0, 0.1);
}

TEST(Calibration, PerQuestionCorrectRatesMatchFigure14) {
  // Generate a large population and compare each question's correct rate
  // against the published percentage.
  fpq::stats::Xoshiro256pp g(11);
  constexpr int kN = 20000;
  std::array<int, quiz::kCoreQuestionCount> correct{};
  std::array<int, quiz::kCoreQuestionCount> dont_know{};
  const auto truths = quiz::standard_core_truths();
  for (int i = 0; i < kN; ++i) {
    const auto background = rs::sample_background(g);
    const auto ability = rs::derive_ability(background, g);
    const auto sheet = model().sample_core(ability, g);
    for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
      const auto grade = quiz::grade_answer(sheet.answers[q], truths[q]);
      if (grade == quiz::Grade::kCorrect) ++correct[q];
      if (grade == quiz::Grade::kDontKnow) ++dont_know[q];
    }
  }
  const auto rows = pd::core_breakdown();
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    const double pct = 100.0 * correct[q] / kN;
    EXPECT_NEAR(pct, rows[q].pct_correct, 2.5) << rows[q].label;
    const double dk_pct = 100.0 * dont_know[q] / kN;
    EXPECT_NEAR(dk_pct, rows[q].pct_dont_know, 3.0) << rows[q].label;
  }
}

TEST(Calibration, OptQuizRatesMatchFigure15) {
  fpq::stats::Xoshiro256pp g(12);
  constexpr int kN = 20000;
  std::array<int, quiz::kOptTrueFalseCount> correct{};
  std::array<int, quiz::kOptTrueFalseCount> dont_know{};
  int level_correct = 0;
  int level_dk = 0;
  const auto truths = quiz::standard_opt_truths();
  for (int i = 0; i < kN; ++i) {
    const auto background = rs::sample_background(g);
    const auto ability = rs::derive_ability(background, g);
    const auto sheet = model().sample_opt(ability, g);
    for (std::size_t q = 0; q < quiz::kOptTrueFalseCount; ++q) {
      const auto grade = quiz::grade_answer(sheet.tf_answers[q], truths[q]);
      if (grade == quiz::Grade::kCorrect) ++correct[q];
      if (grade == quiz::Grade::kDontKnow) ++dont_know[q];
    }
    const auto lg = quiz::grade_level_choice(sheet.level_choice);
    if (lg == quiz::Grade::kCorrect) ++level_correct;
    if (lg == quiz::Grade::kDontKnow) ++level_dk;
  }
  const auto rows = pd::opt_breakdown();
  const std::array<std::size_t, 3> row_of{0, 1, 3};
  for (std::size_t q = 0; q < quiz::kOptTrueFalseCount; ++q) {
    EXPECT_NEAR(100.0 * correct[q] / kN, rows[row_of[q]].pct_correct, 2.5)
        << rows[row_of[q]].label;
    EXPECT_NEAR(100.0 * dont_know[q] / kN, rows[row_of[q]].pct_dont_know,
                3.0)
        << rows[row_of[q]].label;
  }
  EXPECT_NEAR(100.0 * level_correct / kN, rows[2].pct_correct, 2.5);
  EXPECT_NEAR(100.0 * level_dk / kN, rows[2].pct_dont_know, 3.0);
}

TEST(Calibration, ExpectedScoreHasUnitSlopeNearCenter) {
  rs::Ability low, high;
  low.core_target = 7.0;
  high.core_target = 10.0;
  const double gap = model().expected_core_score(high) -
                     model().expected_core_score(low);
  EXPECT_NEAR(gap, 3.0, 0.6) << "one target point ~ one expected point";
}

TEST(Calibration, ExpectedScoreTracksTargetAbsolutely) {
  for (double target : {6.0, 8.5, 11.0}) {
    rs::Ability a;
    a.core_target = target;
    EXPECT_NEAR(model().expected_core_score(a), target, 0.9)
        << "target " << target;
  }
}

TEST(Calibration, HigherDkPropensityLowersScore) {
  rs::Ability hedger, confident;
  hedger.dont_know_propensity = 2.0;
  confident.dont_know_propensity = 0.3;
  EXPECT_LT(model().expected_core_score(hedger),
            model().expected_core_score(confident));
}

TEST(Calibration, SamplingIsDeterministicUnderSeed) {
  rs::Ability a;
  fpq::stats::Xoshiro256pp g1(5), g2(5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(model().sample_core(a, g1).answers,
              model().sample_core(a, g2).answers);
  }
}

}  // namespace
