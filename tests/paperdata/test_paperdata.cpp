// Internal consistency of the transcribed paper data: counts sum to the
// cohort size, percents match counts, and the prose anchors hold.

#include <gtest/gtest.h>

#include <cmath>

#include "paperdata/paperdata.hpp"

namespace pd = fpq::paperdata;

namespace {

double weighted_core_mean(std::span<const pd::FactorLevelTarget> levels) {
  double num = 0.0, den = 0.0;
  for (const auto& l : levels) {
    num += static_cast<double>(l.n) * l.core_correct;
    den += static_cast<double>(l.n);
  }
  return num / den;
}

double weighted_opt_mean(std::span<const pd::FactorLevelTarget> levels) {
  double num = 0.0, den = 0.0;
  for (const auto& l : levels) {
    num += static_cast<double>(l.n) * l.opt_correct;
    den += static_cast<double>(l.n);
  }
  return num / den;
}

std::size_t total_n(std::span<const pd::CategoryCount> rows) {
  std::size_t n = 0;
  for (const auto& r : rows) n += r.n;
  return n;
}

TEST(PaperData, SingleSelectTablesSumTo199) {
  // Figure 1 as printed sums to 200, not 199 — an inconsistency in the
  // paper itself (the percents are 199-consistent). We transcribe it
  // verbatim and pin the published total here.
  EXPECT_EQ(total_n(pd::positions()), 200u);
  EXPECT_EQ(total_n(pd::areas()), pd::kMainCohortSize);
  EXPECT_EQ(total_n(pd::formal_training()), pd::kMainCohortSize);
  EXPECT_EQ(total_n(pd::dev_roles()), pd::kMainCohortSize);
  EXPECT_EQ(total_n(pd::contributed_codebase_sizes()), pd::kMainCohortSize);
  EXPECT_EQ(total_n(pd::contributed_fp_extent()), pd::kMainCohortSize);
  EXPECT_EQ(total_n(pd::involved_codebase_sizes()), pd::kMainCohortSize);
  EXPECT_EQ(total_n(pd::involved_fp_extent()), pd::kMainCohortSize);
}

TEST(PaperData, PercentsMatchCounts) {
  for (const auto table :
       {pd::positions(), pd::formal_training(), pd::dev_roles(),
        pd::contributed_codebase_sizes(), pd::involved_codebase_sizes()}) {
    for (const auto& row : table) {
      const double expected =
          100.0 * static_cast<double>(row.n) / pd::kMainCohortSize;
      EXPECT_NEAR(row.percent, expected, 0.15) << row.label;
    }
  }
}

TEST(PaperData, MultiSelectTablesWithinCohort) {
  for (const auto& row : pd::informal_training()) {
    EXPECT_LE(row.n, pd::kMainCohortSize);
  }
  for (const auto& row : pd::fp_languages()) {
    EXPECT_LE(row.n, pd::kMainCohortSize);
    EXPECT_GE(row.n, 5u) << "Figure 6 lists languages with n >= 5";
  }
}

TEST(PaperData, Figure12Averages) {
  const auto core = pd::core_quiz_averages();
  EXPECT_DOUBLE_EQ(core.correct, 8.5);
  EXPECT_DOUBLE_EQ(core.chance, 7.5);
  // The four outcome averages must account for all 15 questions.
  EXPECT_NEAR(core.correct + core.incorrect + core.dont_know +
                  core.unanswered,
              15.0, 0.2);
  const auto opt = pd::opt_quiz_averages();
  EXPECT_DOUBLE_EQ(opt.chance, 1.5);
  EXPECT_NEAR(opt.correct + opt.incorrect + opt.dont_know + opt.unanswered,
              3.0, 0.15);
}

TEST(PaperData, Figure14RowsSumTo100) {
  ASSERT_EQ(pd::core_breakdown().size(), 15u);
  for (const auto& q : pd::core_breakdown()) {
    EXPECT_NEAR(q.pct_correct + q.pct_incorrect + q.pct_dont_know +
                    q.pct_unanswered,
                100.0, 0.5)
        << q.label;
  }
}

TEST(PaperData, Figure14ChanceAndMajorityWrongFlags) {
  std::size_t at_chance = 0, majority_wrong = 0;
  for (const auto& q : pd::core_breakdown()) {
    if (q.at_chance_level) ++at_chance;
    if (q.majority_wrong) {
      ++majority_wrong;
      EXPECT_GT(q.pct_incorrect, 50.0) << q.label;
    }
  }
  EXPECT_EQ(at_chance, 6u) << "6/15 answered at chance (§IV-A)";
  EXPECT_EQ(majority_wrong, 2u) << "2/15 answered incorrectly by most";
}

TEST(PaperData, Figure14AverageCorrectMatchesFigure12) {
  // The per-question correct rates must average to 8.5/15 = 56.7%.
  double sum = 0.0;
  for (const auto& q : pd::core_breakdown()) sum += q.pct_correct;
  EXPECT_NEAR(sum / 15.0, 100.0 * 8.5 / 15.0, 1.0);
}

TEST(PaperData, Figure15DontKnowDominates) {
  ASSERT_EQ(pd::opt_breakdown().size(), 4u);
  for (const auto& q : pd::opt_breakdown()) {
    EXPECT_GT(q.pct_dont_know, 50.0) << q.label;
    EXPECT_NEAR(q.pct_correct + q.pct_incorrect + q.pct_dont_know +
                    q.pct_unanswered,
                100.0, 0.5)
        << q.label;
  }
}

TEST(PaperData, FactorTargetsReproduceOverallMeans) {
  // Participant-weighted means must land on Figure 12's 8.5 (core) and
  // 0.6 (opt) within transcription tolerance.
  EXPECT_NEAR(weighted_core_mean(pd::contributed_size_effect()), 8.5, 0.1);
  EXPECT_NEAR(weighted_core_mean(pd::area_effect()), 8.5, 0.15);
  EXPECT_NEAR(weighted_core_mean(pd::role_effect()), 8.5, 0.15);
  EXPECT_NEAR(weighted_core_mean(pd::training_effect()), 8.5, 0.1);
  EXPECT_NEAR(weighted_opt_mean(pd::area_effect()), 0.6, 0.1);
  EXPECT_NEAR(weighted_opt_mean(pd::role_effect()), 0.6, 0.1);
}

TEST(PaperData, FactorAnchorsFromProse) {
  // Codebase size: monotone, best ~11, spread 4 (§IV-B).
  const auto sizes = pd::contributed_size_effect();
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i].core_correct, sizes[i - 1].core_correct);
  }
  EXPECT_DOUBLE_EQ(sizes.back().core_correct, 11.0);
  EXPECT_DOUBLE_EQ(
      sizes.back().core_correct - sizes.front().core_correct, 4.0);

  // Area: EE best at 11, PhysSci and Eng at chance 7.5, spread 3.5.
  const auto areas = pd::area_effect();
  double best = 0.0, worst = 15.0;
  for (const auto& a : areas) {
    best = std::max(best, a.core_correct);
    worst = std::min(worst, a.core_correct);
    if (a.label == "PhysSci" || a.label == "Eng") {
      EXPECT_DOUBLE_EQ(a.core_correct, 7.5) << a.label << " at chance";
    }
  }
  EXPECT_DOUBLE_EQ(best, 11.0);
  EXPECT_DOUBLE_EQ(best - worst, 3.5);

  // Training: spread ~2, max ~1 above the 8.5 overall mean.
  const auto training = pd::training_effect();
  EXPECT_NEAR(training.back().core_correct - training.front().core_correct,
              2.0, 0.3);
  EXPECT_NEAR(training.back().core_correct - 8.5, 1.0, 0.2);
}

TEST(PaperData, SuspicionAnchorsFromProse) {
  const auto targets = pd::suspicion_targets();
  ASSERT_EQ(targets.size(), 5u);

  auto mean_level = [](const std::array<double, 5>& pct) {
    double m = 0.0;
    for (int i = 0; i < 5; ++i) m += pct[i] * (i + 1);
    return m / 100.0;
  };

  const auto& overflow = targets[0];
  const auto& underflow = targets[1];
  const auto& precision = targets[2];
  const auto& invalid = targets[3];
  const auto& denorm = targets[4];

  // Invalid > Overflow > the rest, in both cohorts.
  EXPECT_GT(mean_level(invalid.percent_main),
            mean_level(overflow.percent_main));
  EXPECT_GT(mean_level(overflow.percent_main),
            mean_level(underflow.percent_main));
  EXPECT_GT(mean_level(overflow.percent_main),
            mean_level(denorm.percent_main));
  EXPECT_GT(mean_level(invalid.percent_students),
            mean_level(overflow.percent_students));

  // ~1/3 of both groups below max suspicion for Invalid.
  EXPECT_NEAR(100.0 - invalid.percent_main[4], 33.3, 5.0);
  EXPECT_NEAR(100.0 - invalid.percent_students[4], 33.3, 5.0);

  // Students less suspicious of Underflow, Denorm, Overflow.
  EXPECT_LT(mean_level(underflow.percent_students),
            mean_level(underflow.percent_main));
  EXPECT_LT(mean_level(denorm.percent_students),
            mean_level(denorm.percent_main));
  EXPECT_LT(mean_level(overflow.percent_students),
            mean_level(overflow.percent_main));

  // Precision similar across cohorts.
  EXPECT_NEAR(mean_level(precision.percent_students),
              mean_level(precision.percent_main), 0.2);

  // Each row sums to 100% per cohort.
  for (const auto& t : targets) {
    double main_sum = 0.0, student_sum = 0.0;
    for (int i = 0; i < 5; ++i) {
      main_sum += t.percent_main[i];
      student_sum += t.percent_students[i];
    }
    EXPECT_NEAR(main_sum, 100.0, 0.1) << t.condition;
    EXPECT_NEAR(student_sum, 100.0, 0.1) << t.condition;
  }
}

}  // namespace
