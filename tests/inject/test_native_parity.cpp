// Cross-substrate campaign parity, as property tests: for every fault
// class, the softfloat injecting context and the native (host-FPU)
// injecting context — fed the same (seed, CampaignConfig, kernel) — must
// arm the same sites, agree on which were effective, record the same
// values (NaN-canonically: the substrates manufacture different NaN bit
// patterns), and report identical sites_fingerprint()s. And all of it
// must be bit-identical whether the campaigns run on 1, 2, 4 or 8
// threads, because a campaign's identity is (seed, config, kernel) —
// never the schedule.

#include <cstddef>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "fpmon/monitor.hpp"
#include "inject/context.hpp"
#include "inject/fault.hpp"
#include "inject/gauntlet.hpp"
#include "parallel/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace inj = fpq::inject;
namespace mon = fpq::mon;
namespace par = fpq::parallel;
namespace wl = fpq::workloads;

namespace {

inj::CampaignConfig campaign(inj::FaultClass cls, std::uint64_t seed) {
  inj::CampaignConfig cc;
  cc.seed = seed;
  cc.fault_class = cls;
  // Dense enough that most campaigns arm within a probe; sticky classes
  // and max_faults keep the site lists small anyway.
  cc.rate = 0.1;
  cc.max_faults = cls == inj::FaultClass::kForceFtz ? 0 : 1;
  return cc;
}

struct CampaignRun {
  std::vector<inj::FaultSite> sites;
  std::uint64_t fingerprint = 0;
};

CampaignRun run_campaign(inj::Substrate substrate,
                         const wl::Workload& workload,
                         const inj::CampaignConfig& cc) {
  inj::Injector injector(cc);
  if (substrate == inj::Substrate::kSoftfloat) {
    inj::SoftInjectingContext ctx(injector);
    workload.probe(ctx);
  } else {
    // The monitor gives the native run the same empty sticky-flag start
    // the softfloat run's fresh Env has — without it, leftover thread
    // fenv state would feed the swallow fault's effectiveness decision.
    inj::NativeInjectingContext ctx(injector);
    mon::ConditionSet observed;
    mon::monitor_region([&] { workload.probe(ctx); }, observed);
  }
  return {injector.sites(), inj::sites_fingerprint(injector.sites())};
}

TEST(NativeParity, SiteListsMatchFieldByFieldOnEveryClassAndWorkload) {
  for (const wl::Workload& workload : wl::catalogue()) {
    for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
      const auto cls = static_cast<inj::FaultClass>(c);
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const inj::CampaignConfig cc = campaign(cls, seed * 0x9E37);
        const CampaignRun soft =
            run_campaign(inj::Substrate::kSoftfloat, workload, cc);
        const CampaignRun native =
            run_campaign(inj::Substrate::kNative, workload, cc);

        ASSERT_EQ(soft.sites.size(), native.sites.size())
            << workload.name << " / " << inj::fault_class_name(cls)
            << " seed " << seed;
        for (std::size_t i = 0; i < soft.sites.size(); ++i) {
          const inj::FaultSite& a = soft.sites[i];
          const inj::FaultSite& b = native.sites[i];
          EXPECT_EQ(a.call, b.call);
          EXPECT_EQ(a.op, b.op);
          EXPECT_EQ(a.fault_class, b.fault_class);
          EXPECT_EQ(a.effective, b.effective)
              << workload.name << " / " << inj::fault_class_name(cls)
              << " seed " << seed << " site " << i << " (call " << a.call
              << ", op " << a.op << ")";
          EXPECT_EQ(inj::canonical_value_bits(a.original),
                    inj::canonical_value_bits(b.original));
          EXPECT_EQ(inj::canonical_value_bits(a.injected),
                    inj::canonical_value_bits(b.injected));
        }
        EXPECT_EQ(soft.fingerprint, native.fingerprint)
            << workload.name << " / " << inj::fault_class_name(cls)
            << " seed " << seed;
      }
    }
  }
}

TEST(NativeParity, EveryClassArmsEffectivelySomewhereOnBothSubstrates) {
  // The parity above would be vacuous if the campaigns never armed; make
  // sure each class produces at least one EFFECTIVE site on each
  // substrate across the catalogue sweep.
  for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
    const auto cls = static_cast<inj::FaultClass>(c);
    for (const auto substrate :
         {inj::Substrate::kSoftfloat, inj::Substrate::kNative}) {
      bool effective = false;
      for (const wl::Workload& workload : wl::catalogue()) {
        for (std::uint64_t seed = 1; seed <= 3 && !effective; ++seed) {
          const CampaignRun run = run_campaign(
              substrate, workload, campaign(cls, seed * 0x9E37));
          for (const inj::FaultSite& s : run.sites) {
            effective = effective || s.effective;
          }
        }
        if (effective) break;
      }
      EXPECT_TRUE(effective) << inj::substrate_name(substrate) << " / "
                             << inj::fault_class_name(cls);
    }
  }
}

TEST(NativeParity, FingerprintsAreBitIdenticalAcrossThreadCounts) {
  // Shards the (workload, class) campaign grid over the pool — each shard
  // runs BOTH substrates — and demands the full fingerprint table be
  // byte-identical at every thread count. Native trials flip real fenv
  // state per thread; this is the proof none of it leaks across shards.
  const std::span<const wl::Workload> cat = wl::catalogue();
  const std::size_t total = cat.size() * inj::kFaultClassCount;

  struct Pair {
    std::uint64_t soft = 0;
    std::uint64_t native = 0;
  };
  auto sweep = [&](std::size_t threads) {
    std::vector<Pair> out(total);
    par::ThreadPool pool(threads);
    pool.run_shards(total, [&](std::size_t idx) {
      const wl::Workload& workload = cat[idx / inj::kFaultClassCount];
      const auto cls =
          static_cast<inj::FaultClass>(idx % inj::kFaultClassCount);
      const inj::CampaignConfig cc = campaign(cls, 0xFEED ^ idx);
      out[idx].soft =
          run_campaign(inj::Substrate::kSoftfloat, workload, cc)
              .fingerprint;
      out[idx].native =
          run_campaign(inj::Substrate::kNative, workload, cc).fingerprint;
    });
    return out;
  };

  const std::vector<Pair> base = sweep(1);
  for (std::size_t i = 0; i < total; ++i) {
    EXPECT_EQ(base[i].soft, base[i].native) << "campaign " << i;
  }
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const std::vector<Pair> r = sweep(threads);
    for (std::size_t i = 0; i < total; ++i) {
      EXPECT_EQ(r[i].soft, base[i].soft)
          << threads << " threads, campaign " << i;
      EXPECT_EQ(r[i].native, base[i].native)
          << threads << " threads, campaign " << i;
    }
  }
}

}  // namespace
