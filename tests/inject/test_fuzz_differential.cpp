// Fuzz-style differential sweep over the whole injection stack: seeded,
// deterministic random IR trees run clean and injected on BOTH substrates.
// The properties under test are the ones the gauntlet's scoring silently
// assumes:
//
//   * clean runs agree across substrates (NaN-canonically — the engines
//     manufacture different NaN bit patterns),
//   * a control trial (campaign with zero effective sites) is bit- and
//     flag-identical to its own substrate's clean baseline,
//   * every EFFECTIVE poison/bit-flip site really changed its value
//     (inert-site misclassification would corrupt control accounting),
//   * both substrates report the same campaign fingerprint.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "fpmon/monitor.hpp"
#include "inject/context.hpp"
#include "inject/fault.hpp"
#include "inject/gauntlet.hpp"
#include "ir/expr.hpp"
#include "stats/prng.hpp"
#include "workloads/workloads.hpp"

namespace inj = fpq::inject;
namespace ir = fpq::ir;
namespace mon = fpq::mon;
namespace stats = fpq::stats;
namespace wl = fpq::workloads;

namespace {

constexpr std::size_t kTrees = 24;
constexpr std::size_t kCallsPerRun = 5;

/// Small random expression tree, depth-bounded, arithmetic ops only.
/// Constants are drawn from a palette that exercises rounding, overflow,
/// and the subnormal range; pure function of the RNG state.
ir::Expr random_tree(stats::Xoshiro256pp& rng, int depth) {
  static const double kPalette[] = {1.0,   0.5,    3.0,  -2.5,
                                    0.1,   1e300,  1e-3, 7.25,
                                    1e-310, -0.75};
  if (depth <= 0 || stats::uniform_below(rng, 4) == 0) {
    if (stats::uniform_below(rng, 2) == 0) {
      const auto v = static_cast<std::size_t>(stats::uniform_below(rng, 3));
      const char* names[] = {"v0", "v1", "v2"};
      return ir::Expr::variable(names[v], static_cast<unsigned>(v));
    }
    return ir::Expr::constant(
        kPalette[stats::uniform_below(rng, std::size(kPalette))]);
  }
  switch (stats::uniform_below(rng, 7)) {
    case 0:
      return ir::Expr::add(random_tree(rng, depth - 1),
                           random_tree(rng, depth - 1));
    case 1:
      return ir::Expr::sub(random_tree(rng, depth - 1),
                           random_tree(rng, depth - 1));
    case 2:
      return ir::Expr::mul(random_tree(rng, depth - 1),
                           random_tree(rng, depth - 1));
    case 3:
      return ir::Expr::div(random_tree(rng, depth - 1),
                           random_tree(rng, depth - 1));
    case 4:
      return ir::Expr::sqrt(random_tree(rng, depth - 1));
    case 5:
      return ir::Expr::neg(random_tree(rng, depth - 1));
    default:
      return ir::Expr::fma(random_tree(rng, depth - 1),
                           random_tree(rng, depth - 1),
                           random_tree(rng, depth - 1));
  }
}

/// The fuzz kernel: the tree evaluated kCallsPerRun times with varying
/// bindings (one of them dips into the subnormal range so FTZ/DAZ and
/// denormal-flag traffic occur).
void fuzz_kernel(const ir::Expr& tree, wl::EvalContext& ctx) {
  for (std::size_t i = 0; i < kCallsPerRun; ++i) {
    const double binds[] = {0.5 + static_cast<double>(i),
                            1.0 / 3.0 + 0.25 * static_cast<double>(i),
                            1e-310 * static_cast<double>(i + 1)};
    (void)ctx.call(tree, binds);
  }
}

struct RunResult {
  std::vector<double> values;          // per-call results, in call order
  mon::ConditionSet observed;          // run-level condition union
  std::vector<inj::FaultSite> sites;   // empty for clean runs
  std::uint64_t fingerprint = 0;
  std::size_t effective = 0;
};

RunResult run_one(inj::Substrate substrate, const ir::Expr& tree,
            const inj::CampaignConfig* cc) {
  RunResult out;
  inj::Injector injector(cc != nullptr ? *cc : inj::CampaignConfig{});
  if (substrate == inj::Substrate::kSoftfloat) {
    if (cc != nullptr) {
      inj::SoftInjectingContext ctx(injector);
      inj::RecordingContext rec(ctx);
      fuzz_kernel(tree, rec);
      for (const inj::CallRecord& r : rec.records())
        out.values.push_back(r.result);
      out.observed = ctx.observed();
    } else {
      inj::SoftContext ctx;
      inj::RecordingContext rec(ctx);
      fuzz_kernel(tree, rec);
      for (const inj::CallRecord& r : rec.records())
        out.values.push_back(r.result);
      out.observed = ctx.observed();
    }
  } else {
    if (cc != nullptr) {
      inj::NativeInjectingContext ctx(injector);
      inj::RecordingContext rec(ctx);
      mon::monitor_region([&] { fuzz_kernel(tree, rec); }, out.observed);
      for (const inj::CallRecord& r : rec.records())
        out.values.push_back(r.result);
    } else {
      wl::NativeContext ctx;
      inj::RecordingContext rec(ctx);
      mon::monitor_region([&] { fuzz_kernel(tree, rec); }, out.observed);
      for (const inj::CallRecord& r : rec.records())
        out.values.push_back(r.result);
    }
  }
  if (cc != nullptr) {
    out.sites = injector.sites();
    out.fingerprint = inj::sites_fingerprint(injector.sites());
    out.effective = injector.effective_count();
  }
  return out;
}

inj::CampaignConfig fuzz_campaign(inj::FaultClass cls, std::uint64_t seed) {
  inj::CampaignConfig cc;
  cc.seed = seed;
  cc.fault_class = cls;
  cc.rate = 0.15;
  cc.max_faults = cls == inj::FaultClass::kForceFtz ? 0 : 1;
  return cc;
}

TEST(FuzzDifferential, SubstratesAndCampaignsAgreeOnRandomTrees) {
  std::size_t effective_trials = 0;
  std::size_t control_trials = 0;
  std::size_t value_mutations_checked = 0;

  for (std::size_t t = 0; t < kTrees; ++t) {
    stats::Xoshiro256pp rng(0xF022EE5 + t);
    const ir::Expr tree = random_tree(rng, 4);

    // Clean cross-substrate parity (NaN-canonical).
    const RunResult soft_clean =
        run_one(inj::Substrate::kSoftfloat, tree, nullptr);
    const RunResult native_clean =
        run_one(inj::Substrate::kNative, tree, nullptr);
    ASSERT_EQ(soft_clean.values.size(), native_clean.values.size());
    for (std::size_t i = 0; i < soft_clean.values.size(); ++i) {
      EXPECT_TRUE(
          inj::same_value(soft_clean.values[i], native_clean.values[i]))
          << "tree " << t << " call " << i;
    }

    for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
      const auto cls = static_cast<inj::FaultClass>(c);
      const inj::CampaignConfig cc = fuzz_campaign(cls, 0xABCD + 31 * t);
      const RunResult soft = run_one(inj::Substrate::kSoftfloat, tree, &cc);
      const RunResult native = run_one(inj::Substrate::kNative, tree, &cc);

      // Identical campaigns on identical kernels: same fingerprint.
      EXPECT_EQ(soft.fingerprint, native.fingerprint)
          << "tree " << t << " class " << inj::fault_class_name(cls);
      EXPECT_EQ(soft.effective, native.effective);

      // The injected value streams agree NaN-canonically too: both
      // substrates applied the same mutations to the same arithmetic.
      ASSERT_EQ(soft.values.size(), native.values.size());
      for (std::size_t i = 0; i < soft.values.size(); ++i) {
        EXPECT_TRUE(inj::same_value(soft.values[i], native.values[i]))
            << "tree " << t << " class " << inj::fault_class_name(cls)
            << " call " << i;
      }

      // Control trials are indistinguishable from clean — bit-exact
      // values (same substrate, so no NaN caveat) and identical
      // condition unions.
      const std::pair<const RunResult*, const RunResult*> controls[] = {
          {&soft, &soft_clean}, {&native, &native_clean}};
      for (const auto& [injected_ptr, clean_ptr] : controls) {
        const RunResult& injected = *injected_ptr;
        const RunResult& clean = *clean_ptr;
        if (injected.effective != 0) continue;
        ++control_trials;
        for (std::size_t i = 0; i < injected.values.size(); ++i) {
          EXPECT_EQ(std::bit_cast<std::uint64_t>(injected.values[i]),
                    std::bit_cast<std::uint64_t>(clean.values[i]))
              << "tree " << t << " class " << inj::fault_class_name(cls)
              << " call " << i;
        }
        EXPECT_EQ(injected.observed, clean.observed)
            << "tree " << t << " class " << inj::fault_class_name(cls);
      }
      if (soft.effective != 0) ++effective_trials;

      // Effective single-shot value faults really moved the value.
      if (cls == inj::FaultClass::kPoison ||
          cls == inj::FaultClass::kBitFlip) {
        for (const RunResult* run : {&soft, &native}) {
          for (const inj::FaultSite& s : run->sites) {
            if (!s.effective) continue;
            ++value_mutations_checked;
            EXPECT_NE(inj::canonical_value_bits(s.original),
                      inj::canonical_value_bits(s.injected))
                << "tree " << t << " class "
                << inj::fault_class_name(cls);
          }
        }
      }
    }
  }

  // The sweep must not be vacuous: faults armed, controls occurred, and
  // value mutations were actually checked.
  EXPECT_GT(effective_trials, 5u);
  EXPECT_GT(control_trials, 5u);
  EXPECT_GT(value_mutations_checked, 5u);
}

}  // namespace
