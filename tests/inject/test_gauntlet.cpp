// Detector-gauntlet tests: the coverage matrix is bit-reproducible at
// every thread count, every fault class is caught by at least one
// detector, control trials never read as detections, and the probe
// contracts hold — the acceptance criteria of the fault-injection
// subsystem, as tests.

#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "inject/gauntlet.hpp"
#include "parallel/thread_pool.hpp"

namespace inj = fpq::inject;
namespace par = fpq::parallel;

namespace {

inj::GauntletConfig small_campaign() {
  inj::GauntletConfig config;
  config.seed = 0xC0FFEE;
  config.trials = 3;
  return config;
}

TEST(Gauntlet, MatrixIsBitIdenticalAcrossThreadCounts) {
  const inj::GauntletConfig config = small_campaign();
  par::ThreadPool one(1);
  const inj::GauntletResult base = inj::run_gauntlet(one, config);
  ASSERT_GT(base.total_trials, 0u);
  ASSERT_GT(base.total_effective, 0u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    const inj::GauntletResult r = inj::run_gauntlet(pool, config);
    EXPECT_EQ(r.fingerprint, base.fingerprint) << threads << " threads";
    EXPECT_EQ(r.total_trials, base.total_trials);
    EXPECT_EQ(r.total_sites, base.total_sites);
    EXPECT_EQ(r.total_effective, base.total_effective);
    ASSERT_EQ(r.undetected.size(), base.undetected.size());
    for (std::size_t u = 0; u < r.undetected.size(); ++u) {
      EXPECT_EQ(r.undetected[u].workload, base.undetected[u].workload);
      EXPECT_EQ(r.undetected[u].fault_class,
                base.undetected[u].fault_class);
      EXPECT_EQ(r.undetected[u].trial, base.undetected[u].trial);
    }
    for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
      for (std::size_t d = 0; d < inj::kDetectorCount; ++d) {
        EXPECT_EQ(r.cells[c][d].hits, base.cells[c][d].hits);
        EXPECT_EQ(r.cells[c][d].misses, base.cells[c][d].misses);
        EXPECT_EQ(r.cells[c][d].false_positives,
                  base.cells[c][d].false_positives);
        EXPECT_EQ(r.cells[c][d].controls, base.cells[c][d].controls);
      }
    }
  }
}

TEST(Gauntlet, DifferentSeedsProduceDifferentCampaigns) {
  par::ThreadPool pool(4);
  inj::GauntletConfig config = small_campaign();
  const inj::GauntletResult a = inj::run_gauntlet(pool, config);
  config.seed ^= 0x9E3779B97F4A7C15ull;
  const inj::GauntletResult b = inj::run_gauntlet(pool, config);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Gauntlet, EveryFaultClassIsCaughtBySomeDetector) {
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
    const auto cls = static_cast<inj::FaultClass>(c);
    EXPECT_TRUE(r.class_covered(cls)) << inj::fault_class_name(cls);
  }
}

TEST(Gauntlet, ControlTrialsNeverFireAnyDetector) {
  // Control trials replay the clean record stream bit-for-bit, so a
  // baseline-compared detector firing on one would mean the comparison
  // itself is broken.
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
    for (std::size_t d = 0; d < inj::kDetectorCount; ++d) {
      EXPECT_EQ(r.cells[c][d].false_positives, 0u)
          << inj::fault_class_name(static_cast<inj::FaultClass>(c)) << " / "
          << inj::detector_name(static_cast<inj::Detector>(d));
    }
  }
}

TEST(Gauntlet, ProbeContractsHold) {
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  ASSERT_FALSE(r.contracts.empty());
  for (const auto& row : r.contracts) {
    EXPECT_TRUE(row.holds) << row.workload;
  }
}

TEST(Gauntlet, CellAccountingIsConsistent) {
  par::ThreadPool pool(2);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  std::size_t scored = 0;
  for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
    // Every detector scores every trial of the class, so each detector
    // column of a class row accounts for the same trial total.
    const auto& row = r.cells[c];
    for (std::size_t d = 0; d < inj::kDetectorCount; ++d) {
      EXPECT_EQ(row[d].trials, row[0].trials);
      EXPECT_EQ(row[d].hits + row[d].misses + row[d].controls,
                row[d].trials);
      EXPECT_EQ(row[d].controls, row[0].controls);
    }
    scored += row[0].trials;
  }
  EXPECT_EQ(scored, r.total_trials);
}

TEST(Gauntlet, RenderNamesEveryClassAndDetector) {
  par::ThreadPool pool(2);
  inj::GauntletConfig config = small_campaign();
  config.trials = 1;
  const std::string text = inj::render(inj::run_gauntlet(pool, config));
  for (const char* needle :
       {"poison", "flag-swallow", "force-ftz", "rounding-perturb",
        "bit-flip", "fpmon", "shadow", "interval", "fingerprint"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
