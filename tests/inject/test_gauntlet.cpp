// Detector-gauntlet tests: the coverage matrix is bit-reproducible at
// every thread count, every fault class is caught by at least one
// detector ON EACH SUBSTRATE, the softfloat and native halves of every
// campaign report identical fingerprints, control trials never read as
// detections, and the probe contracts hold on both substrates — the
// acceptance criteria of the fault-injection subsystem, as tests.

#include <cstddef>
#include <string>

#include <gtest/gtest.h>

#include "fpmon/flow.hpp"
#include "inject/gauntlet.hpp"
#include "parallel/thread_pool.hpp"

namespace inj = fpq::inject;
namespace par = fpq::parallel;

namespace {

inj::GauntletConfig small_campaign() {
  inj::GauntletConfig config;
  config.seed = 0xC0FFEE;
  config.trials = 3;
  return config;
}

TEST(Gauntlet, MatrixIsBitIdenticalAcrossThreadCounts) {
  const inj::GauntletConfig config = small_campaign();
  par::ThreadPool one(1);
  const inj::GauntletResult base = inj::run_gauntlet(one, config);
  ASSERT_GT(base.total_trials, 0u);
  ASSERT_GT(base.total_effective, 0u);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    const inj::GauntletResult r = inj::run_gauntlet(pool, config);
    EXPECT_EQ(r.fingerprint, base.fingerprint) << threads << " threads";
    EXPECT_EQ(r.total_trials, base.total_trials);
    EXPECT_EQ(r.total_sites, base.total_sites);
    EXPECT_EQ(r.total_effective, base.total_effective);
    EXPECT_EQ(r.parity_mismatches.size(), base.parity_mismatches.size());
    ASSERT_EQ(r.undetected.size(), base.undetected.size());
    for (std::size_t u = 0; u < r.undetected.size(); ++u) {
      EXPECT_EQ(r.undetected[u].workload, base.undetected[u].workload);
      EXPECT_EQ(r.undetected[u].substrate, base.undetected[u].substrate);
      EXPECT_EQ(r.undetected[u].fault_class,
                base.undetected[u].fault_class);
      EXPECT_EQ(r.undetected[u].trial, base.undetected[u].trial);
    }
    for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
      for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
        for (std::size_t d = 0; d < inj::kDetectorCount; ++d) {
          EXPECT_EQ(r.cells[s][c][d].hits, base.cells[s][c][d].hits);
          EXPECT_EQ(r.cells[s][c][d].misses, base.cells[s][c][d].misses);
          EXPECT_EQ(r.cells[s][c][d].false_positives,
                    base.cells[s][c][d].false_positives);
          EXPECT_EQ(r.cells[s][c][d].controls,
                    base.cells[s][c][d].controls);
        }
      }
    }
  }
}

TEST(Gauntlet, SubstratesReportIdenticalCampaignFingerprints) {
  // The acceptance criterion of the native substrate: one campaign
  // identity, two machines, zero fingerprint disagreements.
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  EXPECT_TRUE(r.parity_mismatches.empty())
      << r.parity_mismatches.size() << " campaigns diverged, first: "
      << (r.parity_mismatches.empty()
              ? ""
              : r.parity_mismatches.front().workload + " / " +
                    inj::fault_class_name(
                        r.parity_mismatches.front().fault_class));
}

TEST(Gauntlet, DifferentSeedsProduceDifferentCampaigns) {
  par::ThreadPool pool(4);
  inj::GauntletConfig config = small_campaign();
  const inj::GauntletResult a = inj::run_gauntlet(pool, config);
  config.seed ^= 0x9E3779B97F4A7C15ull;
  const inj::GauntletResult b = inj::run_gauntlet(pool, config);
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(Gauntlet, EveryFaultClassIsCaughtOnEverySubstrate) {
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
    for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
      const auto substrate = static_cast<inj::Substrate>(s);
      const auto cls = static_cast<inj::FaultClass>(c);
      EXPECT_TRUE(r.class_covered(substrate, cls))
          << inj::substrate_name(substrate) << " / "
          << inj::fault_class_name(cls);
    }
  }
}

TEST(Gauntlet, ControlTrialsNeverFireAnyDetector) {
  // Control trials replay the clean record stream bit-for-bit, so a
  // baseline-compared detector firing on one would mean the comparison
  // itself is broken — on either substrate.
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
    for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
      for (std::size_t d = 0; d < inj::kDetectorCount; ++d) {
        EXPECT_EQ(r.cells[s][c][d].false_positives, 0u)
            << inj::substrate_name(static_cast<inj::Substrate>(s)) << " / "
            << inj::fault_class_name(static_cast<inj::FaultClass>(c))
            << " / " << inj::detector_name(static_cast<inj::Detector>(d));
      }
    }
  }
}

TEST(Gauntlet, ProbeContractsHoldOnBothSubstrates) {
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  ASSERT_FALSE(r.contracts.empty());
  std::size_t native_rows = 0;
  for (const auto& row : r.contracts) {
    EXPECT_TRUE(row.holds)
        << row.workload << " [" << inj::substrate_name(row.substrate)
        << "] observed " << row.observed.to_string();
    if (row.substrate == inj::Substrate::kNative) ++native_rows;
  }
  // Every workload must have been contract-checked on the real FPU too.
  EXPECT_EQ(native_rows * inj::kSubstrateCount, r.contracts.size());
  EXPECT_GT(native_rows, 0u);
}

TEST(Gauntlet, CellAccountingIsConsistent) {
  par::ThreadPool pool(2);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  std::size_t scored = 0;
  for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
    for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
      // Every detector scores every trial of the class, so each detector
      // column of a class row accounts for the same trial total.
      const auto& row = r.cells[s][c];
      for (std::size_t d = 0; d < inj::kDetectorCount; ++d) {
        EXPECT_EQ(row[d].trials, row[0].trials);
        EXPECT_EQ(row[d].hits + row[d].misses + row[d].controls,
                  row[d].trials);
        EXPECT_EQ(row[d].controls, row[0].controls);
      }
      scored += row[0].trials;
    }
  }
  EXPECT_EQ(scored, r.total_trials);
}

TEST(Gauntlet, RenderNamesEveryClassDetectorAndSubstrate) {
  par::ThreadPool pool(2);
  inj::GauntletConfig config = small_campaign();
  config.trials = 1;
  const std::string text = inj::render(inj::run_gauntlet(pool, config));
  for (const char* needle :
       {"poison", "flag-swallow", "force-ftz", "rounding-perturb",
        "bit-flip", "fpmon", "shadow", "interval", "fingerprint",
        "softfloat", "native", "parity", "fpmon-flow", "attribution",
        "capability"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

TEST(Gauntlet, FingerprintIsPinnedAcrossDetectorAdditions) {
  // The campaign fingerprint is defined over the LEGACY detector cells
  // (kLegacyDetectorCount) precisely so new detector columns can never
  // rewrite history. This pin is the PR 5/6 value for the small
  // campaign; if it moves, a fingerprint-visible behavior changed.
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  EXPECT_EQ(r.fingerprint, 4516197573157899061ull);
}

TEST(Gauntlet, FlowColumnAttributesPoisonToTheBirthSite) {
  // The fpmon-flow acceptance bar: >= 90% of effective poison faults
  // credited to the exact injected site, and swallows localized at or
  // after the armed site, on BOTH substrates.
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
    const inj::FlowScore& fs = r.flow_scores[s];
    const std::string sub =
        inj::substrate_name(static_cast<inj::Substrate>(s));
    ASSERT_GT(fs.poison_effective, 0u) << sub;
    EXPECT_GE(fs.poison_attributed * 10, fs.poison_effective * 9) << sub;
    ASSERT_GT(fs.swallow_effective, 0u) << sub;
    EXPECT_GE(fs.swallow_attributed * 10, fs.swallow_effective * 9)
        << sub;
  }
}

TEST(Gauntlet, FlowLedgerReportsNoAnomaliesOnControls) {
  // Control trials replay the clean value stream bit-for-bit, so any
  // signature-anomalous site the flow ledger reports on one is a false
  // birth — zero tolerance, both substrates.
  par::ThreadPool pool(4);
  const inj::GauntletResult r = inj::run_gauntlet(pool, small_campaign());
  for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
    const inj::FlowScore& fs = r.flow_scores[s];
    EXPECT_GT(fs.control_trials, 0u);
    EXPECT_EQ(fs.control_anomalies, 0u)
        << inj::substrate_name(static_cast<inj::Substrate>(s));
  }
}

TEST(Gauntlet, ResultSurfacesPlatformCapabilities) {
  // The matrix JSON and render lead with the capabilities the monitors
  // ran under; the fields must agree with what fpmon itself reports.
  par::ThreadPool pool(2);
  inj::GauntletConfig config = small_campaign();
  config.trials = 1;
  const inj::GauntletResult r = inj::run_gauntlet(pool, config);
  EXPECT_EQ(r.trap_available, fpq::mon::trap_supported());
  EXPECT_EQ(r.tracks_denormals, fpq::mon::ScopedMonitor().tracks_denormals());
}

}  // namespace
