// fpq::inject unit tests: the Injector state machine and the
// InjectingEvaluator decorator, verified directly against a softfloat
// inner evaluator — arming determinism, every fault class's value-level
// effect, and the sticky classes' flag/rounding tampering.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "inject/evaluator.hpp"
#include "inject/fault.hpp"
#include "ir/evaluators.hpp"
#include "ir/expr.hpp"
#include "softfloat/env.hpp"

namespace inj = fpq::inject;
namespace ir = fpq::ir;
namespace sf = fpq::softfloat;

namespace {

// Drives `ops` injectable operations through an InjectingEvaluator
// wrapped around a fresh softfloat engine and returns the results.
// x_{n+1} = (x_n + step) * scale, one call per iteration, two ops each.
struct DriveResult {
  std::vector<double> values;
  unsigned flags = 0;
};

// step and scale are deliberately not exactly representable, so every
// add and mul rounds — a perturbed rounding mode has something to bite.
DriveResult drive(inj::Injector& injector, std::size_t calls,
                  double x0 = 1.0, double step = 0.1,
                  double scale = 1.0000001) {
  const ir::Expr expr =
      ir::Expr::mul(ir::Expr::add(ir::Expr::variable("x", 0),
                                  ir::Expr::variable("step", 1)),
                    ir::Expr::variable("scale", 2));
  ir::SoftEvaluator<64> soft{ir::EvalConfig::ieee_strict()};
  inj::InjectingEvaluator ev(soft, injector);
  DriveResult out;
  double x = x0;
  for (std::size_t i = 0; i < calls; ++i) {
    injector.begin_call();
    const double binds[] = {x, step, scale};
    x = ir::evaluate_tree<double>(expr, ev, binds);
    out.values.push_back(x);
  }
  out.flags = soft.flags();
  return out;
}

inj::CampaignConfig campaign(inj::FaultClass cls, std::uint64_t seed,
                             double rate = 0.2, std::size_t max_faults = 1) {
  inj::CampaignConfig c;
  c.seed = seed;
  c.fault_class = cls;
  c.rate = rate;
  c.max_faults = max_faults;
  return c;
}

TEST(Injector, ArmingIsAPureFunctionOfCampaignIdentity) {
  for (const auto cls :
       {inj::FaultClass::kPoison, inj::FaultClass::kFlagSwallow,
        inj::FaultClass::kForceFtz, inj::FaultClass::kRoundingPerturb,
        inj::FaultClass::kBitFlip}) {
    inj::Injector a(campaign(cls, 42, 0.3, 0));
    inj::Injector b(campaign(cls, 42, 0.3, 0));
    drive(a, 40);
    drive(b, 40);
    ASSERT_EQ(a.sites().size(), b.sites().size());
    EXPECT_EQ(inj::sites_fingerprint(a.sites()),
              inj::sites_fingerprint(b.sites()));
  }
}

TEST(Injector, DifferentSeedsDrawDifferentSites) {
  inj::Injector a(campaign(inj::FaultClass::kBitFlip, 1, 0.3, 0));
  inj::Injector b(campaign(inj::FaultClass::kBitFlip, 2, 0.3, 0));
  drive(a, 40);
  drive(b, 40);
  EXPECT_NE(inj::sites_fingerprint(a.sites()),
            inj::sites_fingerprint(b.sites()));
}

TEST(Injector, RateZeroNeverArms) {
  inj::Injector i(campaign(inj::FaultClass::kPoison, 7, 0.0, 0));
  const DriveResult injected = drive(i, 60);
  inj::Injector none(campaign(inj::FaultClass::kPoison, 7, 0.0, 0));
  // A rate-0 campaign is byte-for-byte the clean run.
  EXPECT_TRUE(i.sites().empty());
  EXPECT_EQ(i.effective_count(), 0u);
  const DriveResult again = drive(none, 60);
  EXPECT_EQ(injected.values, again.values);
  EXPECT_EQ(injected.flags, again.flags);
}

TEST(Injector, MaxFaultsCapsArmedSites) {
  inj::Injector i(campaign(inj::FaultClass::kBitFlip, 11, 1.0, 3));
  drive(i, 30);
  EXPECT_EQ(i.sites().size(), 3u);
}

TEST(Injector, StickyClassesArmAtMostOnce) {
  for (const auto cls : {inj::FaultClass::kFlagSwallow,
                         inj::FaultClass::kRoundingPerturb}) {
    inj::Injector i(campaign(cls, 13, 1.0, 0));
    drive(i, 30);
    EXPECT_EQ(i.sites().size(), 1u) << inj::fault_class_name(cls);
  }
}

TEST(InjectingEvaluator, PoisonProducesNonFinite) {
  inj::Injector i(campaign(inj::FaultClass::kPoison, 3, 1.0, 1));
  const DriveResult r = drive(i, 10);
  ASSERT_EQ(i.sites().size(), 1u);
  const inj::FaultSite& site = i.sites().front();
  EXPECT_TRUE(site.effective);
  EXPECT_FALSE(std::isfinite(site.injected));
  // The poison value must reach the call stream (directly, or laundered
  // through the rest of the call's arithmetic).
  bool saw_nonfinite = false;
  for (double v : r.values) saw_nonfinite = saw_nonfinite || !std::isfinite(v);
  EXPECT_TRUE(saw_nonfinite);
}

TEST(InjectingEvaluator, BitFlipTouchesOneLowMantissaBit) {
  inj::Injector i(campaign(inj::FaultClass::kBitFlip, 5, 1.0, 1));
  drive(i, 10);
  ASSERT_EQ(i.sites().size(), 1u);
  const inj::FaultSite& site = i.sites().front();
  ASSERT_TRUE(site.effective);
  const std::uint64_t diff = std::bit_cast<std::uint64_t>(site.original) ^
                             std::bit_cast<std::uint64_t>(site.injected);
  EXPECT_TRUE(std::has_single_bit(diff));
  const unsigned bit = static_cast<unsigned>(std::countr_zero(diff));
  EXPECT_GE(bit, 8u);
  EXPECT_LE(bit, 15u);
}

TEST(InjectingEvaluator, FlagSwallowErasesStickyFlags) {
  // 1/3 raises inexact on every call; a swallow campaign must leave the
  // engine's sticky set empty afterwards and confess what it ate.
  const ir::Expr expr = ir::Expr::div(ir::Expr::constant(1.0),
                                      ir::Expr::constant(3.0));
  ir::SoftEvaluator<64> soft{ir::EvalConfig::ieee_strict()};
  inj::Injector injector(campaign(inj::FaultClass::kFlagSwallow, 17, 1.0));
  inj::InjectingEvaluator ev(soft, injector);
  for (int c = 0; c < 4; ++c) {
    injector.begin_call();
    ir::evaluate_tree<double>(expr, ev);
  }
  EXPECT_EQ(soft.flags(), 0u);
  EXPECT_NE(injector.swallowed_flags() & sf::kFlagInexact, 0u);
  ASSERT_EQ(injector.sites().size(), 1u);
  EXPECT_TRUE(injector.sites().front().effective);
}

TEST(InjectingEvaluator, ForceFtzFlushesSubnormalResults) {
  // min_normal / 4 is subnormal: under forced FTZ the result must flush
  // to zero (and the arming site must be marked effective).
  const ir::Expr expr = ir::Expr::div(
      ir::Expr::constant(std::numeric_limits<double>::min()),
      ir::Expr::constant(4.0));
  ir::SoftEvaluator<64> soft{ir::EvalConfig::ieee_strict()};
  inj::Injector injector(campaign(inj::FaultClass::kForceFtz, 23, 1.0, 0));
  inj::InjectingEvaluator ev(soft, injector);
  injector.begin_call();
  const double r = ir::evaluate_tree<double>(expr, ev);
  EXPECT_EQ(r, 0.0);
  ASSERT_FALSE(injector.sites().empty());
  EXPECT_TRUE(injector.sites().front().effective);
}

TEST(InjectingEvaluator, RoundingPerturbBiasesEveryLaterOp) {
  inj::Injector injector(
      campaign(inj::FaultClass::kRoundingPerturb, 29, 1.0));
  const DriveResult injected = drive(injector, 20);
  ASSERT_EQ(injector.sites().size(), 1u);
  EXPECT_TRUE(injector.sites().front().effective);

  inj::Injector quiet(campaign(inj::FaultClass::kRoundingPerturb, 29, 0.0));
  const DriveResult clean = drive(quiet, 20);
  // Sticky: once armed, results diverge and STAY diverged.
  std::size_t diverged = 0;
  for (std::size_t c = 0; c < injected.values.size(); ++c) {
    if (injected.values[c] != clean.values[c]) ++diverged;
  }
  EXPECT_GT(diverged, 10u);
  // Value-only tampering: the flag accounting is untouched.
  EXPECT_EQ(injected.flags, clean.flags);
}

TEST(InjectingEvaluator, ControlTrialsAreBitIdenticalToClean) {
  // An armed-but-inert campaign (FTZ over a workload with no subnormals)
  // must reproduce the clean run exactly — that is what makes control
  // trials meaningful.
  inj::Injector armed(campaign(inj::FaultClass::kForceFtz, 31, 1.0, 0));
  const DriveResult injected = drive(armed, 40);
  inj::Injector quiet(campaign(inj::FaultClass::kForceFtz, 31, 0.0));
  const DriveResult clean = drive(quiet, 40);
  EXPECT_EQ(armed.effective_count(), 0u);
  for (std::size_t c = 0; c < clean.values.size(); ++c) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(injected.values[c]),
              std::bit_cast<std::uint64_t>(clean.values[c]))
        << "call " << c;
  }
  EXPECT_EQ(injected.flags, clean.flags);
}

TEST(Injector, FingerprintIsOrderIndependentContentHash) {
  inj::Injector i(campaign(inj::FaultClass::kBitFlip, 37, 0.5, 0));
  drive(i, 30);
  ASSERT_GE(i.sites().size(), 2u);
  std::vector<inj::FaultSite> reversed(i.sites().rbegin(),
                                       i.sites().rend());
  EXPECT_EQ(inj::sites_fingerprint(i.sites()),
            inj::sites_fingerprint(reversed));
}

TEST(Injector, FaultClassNamesAreStable) {
  EXPECT_EQ(inj::fault_class_name(inj::FaultClass::kPoison), "poison");
  EXPECT_EQ(inj::fault_class_name(inj::FaultClass::kFlagSwallow),
            "flag-swallow");
  EXPECT_EQ(inj::fault_class_name(inj::FaultClass::kForceFtz), "force-ftz");
  EXPECT_EQ(inj::fault_class_name(inj::FaultClass::kRoundingPerturb),
            "rounding-perturb");
  EXPECT_EQ(inj::fault_class_name(inj::FaultClass::kBitFlip), "bit-flip");
}

}  // namespace
