// NativeInjectingContext hygiene and guard tests. The native substrate
// attacks the REAL floating-point environment — swallow faults call real
// feclearexcept, perturb faults real fesetround — so the contract under
// test is surgical damage: the fenv effects the fault model specifies
// happen, and nothing else leaks. Rounding mode and entry sticky flags
// must survive every exit path, including a campaign that throws
// mid-kernel, and the exact-trace tape guard must refuse (with structured
// error, before any campaign state advances) rather than silently
// mis-number fault sites.

#include <cfenv>
#include <cfloat>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <optional>

#include <gtest/gtest.h>

#include "fpmon/monitor.hpp"
#include "inject/context.hpp"
#include "inject/fault.hpp"
#include "ir/expr.hpp"
#include "ir/tape.hpp"
#include "workloads/workloads.hpp"

namespace inj = fpq::inject;
namespace ir = fpq::ir;
namespace mon = fpq::mon;
namespace sf = fpq::softfloat;
namespace wl = fpq::workloads;

namespace {

ir::Expr add_vars() {
  return ir::Expr::add(ir::Expr::variable("v0", 0),
                       ir::Expr::variable("v1", 1));
}

inj::CampaignConfig sticky_campaign(inj::FaultClass cls,
                                    std::uint64_t seed) {
  inj::CampaignConfig cc;
  cc.seed = seed;
  cc.fault_class = cls;
  cc.rate = 1.0;
  cc.max_faults = 0;
  return cc;
}

const wl::Workload& workload_named(const char* name) {
  for (const wl::Workload& w : wl::catalogue()) {
    if (w.name == name) return w;
  }
  ADD_FAILURE() << "no workload named " << name;
  std::abort();
}

/// RAII guard: every test here leaves the process fenv exactly as it
/// found it, whatever the assertions did.
struct FenvRestorer {
  FenvRestorer() { std::fegetenv(&env_); }
  ~FenvRestorer() { std::fesetenv(&env_); }
  std::fenv_t env_;
};

TEST(NativeContext, RoundingModeSurvivesAnInjectedRun) {
  FenvRestorer restore;
  ASSERT_EQ(std::fesetround(FE_TOWARDZERO), 0);

  inj::Injector injector(
      sticky_campaign(inj::FaultClass::kRoundingPerturb, 7));
  inj::NativeInjectingContext ctx(injector);
  const ir::Expr e = add_vars();
  const double binds[] = {0.1, 0.2};
  for (int i = 0; i < 4; ++i) (void)ctx.call(e, binds);

  EXPECT_EQ(std::fegetround(), FE_TOWARDZERO);
}

TEST(NativeContext, EntryStickyFlagsSurviveAnInjectedRun) {
  FenvRestorer restore;
  std::feclearexcept(FE_ALL_EXCEPT);
  std::feraiseexcept(FE_DIVBYZERO);

  // Perturb campaigns excursion through fesetround + a recompute that
  // raises its own flags; the snapshot restore must bring the entry
  // DIVBYZERO back untouched.
  inj::Injector injector(
      sticky_campaign(inj::FaultClass::kRoundingPerturb, 11));
  inj::NativeInjectingContext ctx(injector);
  const ir::Expr e = add_vars();
  const double binds[] = {0.1, 0.2};
  for (int i = 0; i < 4; ++i) (void)ctx.call(e, binds);

  EXPECT_NE(std::fetestexcept(FE_DIVBYZERO), 0);
}

TEST(NativeContext, PerturbRecomputeLeavesNoPhantomFlags) {
  FenvRestorer restore;

  // Find a campaign whose perturbed mode is round-toward-positive: for
  // DBL_MAX + 1.0 the perturbed recompute overflows to +inf while the
  // primary nearest-even op only raises INEXACT. The overflow raised
  // INSIDE the recompute must not leak into the ambient fenv.
  std::optional<std::uint64_t> up_seed;
  for (std::uint64_t seed = 0; seed < 512 && !up_seed; ++seed) {
    inj::Injector probe(
        sticky_campaign(inj::FaultClass::kRoundingPerturb, seed));
    inj::NativeInjectingContext ctx(probe);
    const double binds[] = {1.0, 2.0};
    (void)ctx.call(add_vars(), binds);
    if (probe.perturb_rounding() == sf::Rounding::kUp) up_seed = seed;
  }
  ASSERT_TRUE(up_seed.has_value());

  inj::Injector injector(
      sticky_campaign(inj::FaultClass::kRoundingPerturb, *up_seed));
  inj::NativeInjectingContext ctx(injector);
  std::feclearexcept(FE_ALL_EXCEPT);
  const double binds[] = {DBL_MAX, 1.0};
  const double r = ctx.call(add_vars(), binds);

  // The fault's VALUE effect landed...
  EXPECT_TRUE(std::isinf(r));
  EXPECT_GT(r, 0.0);
  // ...the primary op's own flag is still there...
  EXPECT_NE(std::fetestexcept(FE_INEXACT), 0);
  // ...and the recompute's overflow excursion is not.
  EXPECT_EQ(std::fetestexcept(FE_OVERFLOW), 0);
}

TEST(NativeContext, SwallowFaultEatsTheRealFenvFlags) {
  FenvRestorer restore;
  std::feclearexcept(FE_ALL_EXCEPT);

  inj::Injector injector(
      sticky_campaign(inj::FaultClass::kFlagSwallow, 3));
  inj::NativeInjectingContext ctx(injector);
  const ir::Expr e = add_vars();
  const double binds[] = {0.1, 0.2};  // inexact on every call
  for (int i = 0; i < 4; ++i) (void)ctx.call(e, binds);

  // The fault's whole point: the hardware's INEXACT record is gone, and
  // the injector confessed to exactly that.
  EXPECT_EQ(std::fetestexcept(FE_INEXACT), 0);
  EXPECT_NE(injector.swallowed_flags() & sf::kFlagInexact, 0u);
  EXPECT_GE(injector.effective_count(), 1u);
}

TEST(NativeContext, TapeTraceErrorIsStructuredAndThrownBeforeArming) {
  inj::Injector injector(sticky_campaign(inj::FaultClass::kPoison, 5));
  // Default TapeOptions enable CSE/folding — exactly the tape shape an
  // injected campaign must refuse.
  inj::NativeInjectingContext ctx(injector, ir::TapeOptions{});
  const double binds[] = {0.1, 0.2};
  try {
    (void)ctx.call(add_vars(), binds);
    FAIL() << "expected TapeTraceError";
  } catch (const inj::TapeTraceError& e) {
    EXPECT_NE(e.tape_fingerprint(), 0u);
    EXPECT_FALSE(e.tape_options() == ir::TapeOptions::exact_trace());
    EXPECT_NE(std::string(e.what()).find("exact-trace"),
              std::string::npos);
  }
  // Refused before begin_call: the campaign state never advanced, so a
  // retry on a correct tape still arms at the same (call, op) sites.
  EXPECT_TRUE(injector.sites().empty());
}

TEST(NativeContext, ThrowMidKernelRestoresRoundingMode) {
  FenvRestorer restore;
  ASSERT_EQ(std::fesetround(FE_DOWNWARD), 0);

  inj::Injector injector(
      sticky_campaign(inj::FaultClass::kRoundingPerturb, 13));
  inj::NativeInjectingContext good(injector);
  inj::NativeInjectingContext bad(injector, ir::TapeOptions{});
  const ir::Expr e = add_vars();
  const double binds[] = {0.1, 0.2};

  mon::ConditionSet observed;
  EXPECT_THROW(mon::monitor_region(
                   [&] {
                     (void)good.call(e, binds);
                     (void)good.call(e, binds);
                     (void)bad.call(e, binds);  // throws mid-kernel
                   },
                   observed),
               inj::TapeTraceError);

  EXPECT_EQ(std::fegetround(), FE_DOWNWARD);
}

TEST(NativeContext, FullScaleRunKernelCarriesTheFaultFootprint) {
  FenvRestorer restore;
  const wl::Workload& w = workload_named("lorenz/healthy");

  // Clean full-scale run: inexact arithmetic leaves its fpmon record.
  const mon::ConditionSet clean = wl::observe(w);

  // Same full-scale run() kernel, attacked through the context seam with
  // a flag swallower: the record the monitor harvests has been eaten.
  inj::Injector injector(
      sticky_campaign(inj::FaultClass::kFlagSwallow, 17));
  inj::NativeInjectingContext ctx(injector);
  const mon::ConditionSet injected = wl::observe(w, ctx);

  EXPECT_GE(injector.effective_count(), 1u);
  EXPECT_NE(injector.swallowed_flags(), 0u);
  EXPECT_FALSE(injected == clean)
      << "clean " << clean.to_string() << " vs injected "
      << injected.to_string();
}

TEST(NativeContext, EveryFaultClassLeavesRoundingAndEntryFlagsIntact) {
  FenvRestorer restore;
  const wl::Workload& w = workload_named("variance/healthy");

  for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
    ASSERT_EQ(std::fesetround(FE_UPWARD), 0);
    std::feclearexcept(FE_ALL_EXCEPT);
    std::feraiseexcept(FE_DIVBYZERO);

    inj::CampaignConfig cc =
        sticky_campaign(static_cast<inj::FaultClass>(c), 23 + c);
    cc.rate = 0.2;
    inj::Injector injector(cc);
    inj::NativeInjectingContext ctx(injector);
    mon::ConditionSet observed;
    mon::monitor_region([&] { w.probe(ctx); }, observed);

    const auto cls = static_cast<inj::FaultClass>(c);
    EXPECT_EQ(std::fegetround(), FE_UPWARD)
        << inj::fault_class_name(cls);
    EXPECT_NE(std::fetestexcept(FE_DIVBYZERO), 0)
        << inj::fault_class_name(cls);

    std::fesetround(FE_TONEAREST);
    std::feclearexcept(FE_ALL_EXCEPT);
  }
}

}  // namespace
