// The emulated optimization pipeline: contraction, reassociation, and
// flush modes change results in exactly the documented ways.

#include <gtest/gtest.h>

#include "optprobe/emulated_pipeline.hpp"

namespace opt = fpq::opt;
namespace sf = fpq::softfloat;

namespace {

TEST(Pipeline, ConstantEvaluates) {
  const auto r = opt::evaluate(opt::Expr::constant(2.5),
                               opt::PipelineConfig::ieee_strict());
  EXPECT_EQ(sf::to_native(r.value), 2.5);
  EXPECT_EQ(r.flags, 0u);
}

TEST(Pipeline, BasicArithmetic) {
  const auto e = opt::Expr::add(
      opt::Expr::mul(opt::Expr::constant(3.0), opt::Expr::constant(4.0)),
      opt::Expr::constant(5.0));
  const auto r = opt::evaluate(e, opt::PipelineConfig::ieee_strict());
  EXPECT_EQ(sf::to_native(r.value), 17.0);
}

TEST(Pipeline, SqrtAndDiv) {
  const auto e = opt::Expr::div(
      opt::Expr::sqrt(opt::Expr::constant(9.0)), opt::Expr::constant(2.0));
  const auto r = opt::evaluate(e, opt::PipelineConfig::ieee_strict());
  EXPECT_EQ(sf::to_native(r.value), 1.5);
}

TEST(Pipeline, FlagsPropagate) {
  const auto e =
      opt::Expr::div(opt::Expr::constant(1.0), opt::Expr::constant(0.0));
  const auto r = opt::evaluate(e, opt::PipelineConfig::ieee_strict());
  EXPECT_TRUE(r.value.is_infinity());
  EXPECT_TRUE((r.flags & sf::kFlagDivByZero) != 0);
}

TEST(Pipeline, ContractionChangesTheDemoExpression) {
  const auto d = opt::diverge(opt::demo_contraction_sensitive(),
                              opt::PipelineConfig::o3_like());
  EXPECT_TRUE(d.value_differs)
      << "strict: " << sf::describe(d.baseline.value)
      << " contracted: " << sf::describe(d.optimized.value);
  EXPECT_TRUE(d.baseline.value.is_zero())
      << "uncontracted x*x - round(x*x) is exactly zero";
  EXPECT_FALSE(d.optimized.value.is_zero())
      << "contracted form exposes the multiply's rounding error";
}

TEST(Pipeline, ContractionLeavesPlainExpressionsAlone) {
  const auto e =
      opt::Expr::add(opt::Expr::constant(1.5), opt::Expr::constant(2.5));
  const auto d = opt::diverge(e, opt::PipelineConfig::o3_like());
  EXPECT_FALSE(d.value_differs);
}

TEST(Pipeline, ExplicitFmaIsIdenticalUnderAllConfigs) {
  const auto x = opt::Expr::constant(1.0 + 0x1.0p-30);
  const auto e = opt::Expr::fma(x, x, opt::Expr::constant(-1.0));
  const auto d = opt::diverge(e, opt::PipelineConfig::o3_like());
  EXPECT_FALSE(d.value_differs)
      << "an explicit fma is already fused; contraction changes nothing";
}

TEST(Pipeline, ReassociationChangesLongSums) {
  const auto d = opt::diverge(opt::demo_reassociation_sensitive(),
                              opt::PipelineConfig::fast_math_like());
  EXPECT_TRUE(d.value_differs);
  // Left-to-right: the +1s all round away against 1e16.
  EXPECT_EQ(sf::to_native(d.baseline.value), 1e16);
  // Pairwise: the +1s combine with each other first and survive.
  EXPECT_GT(sf::to_native(d.optimized.value), 1e16);
}

TEST(Pipeline, FtzChangesSubnormalFlow) {
  opt::PipelineConfig ftz;
  ftz.flush_to_zero = true;
  const auto d = opt::diverge(opt::demo_flush_sensitive(), ftz);
  EXPECT_TRUE(d.value_differs);
  EXPECT_FALSE(d.baseline.value.is_zero())
      << "gradual underflow preserves min_normal/2 * 2";
  EXPECT_TRUE(d.optimized.value.is_zero()) << "FTZ kills the intermediate";
  EXPECT_TRUE((d.optimized.flags & sf::kFlagUnderflow) != 0);
}

TEST(Pipeline, RoundingModeIsConfigurable) {
  // 1/3's tail begins with a 0 bit, so nearest-even equals truncation
  // here; round-up is the mode guaranteed to land one ulp higher.
  opt::PipelineConfig ru;
  ru.rounding = sf::Rounding::kUp;
  const auto e =
      opt::Expr::div(opt::Expr::constant(1.0), opt::Expr::constant(3.0));
  const auto strict = opt::evaluate(e, opt::PipelineConfig::ieee_strict());
  const auto up = opt::evaluate(e, ru);
  EXPECT_NE(strict.value.bits, up.value.bits);
}

TEST(Pipeline, ToStringRendersTree) {
  const auto e = opt::Expr::add(
      opt::Expr::mul(opt::Expr::constant(2.0), opt::Expr::constant(3.0)),
      opt::Expr::constant(1.0));
  EXPECT_EQ(e.to_string(), "((2 * 3) + 1)");
  EXPECT_EQ(opt::Expr::sqrt(opt::Expr::constant(2.0)).to_string(),
            "sqrt(2)");
}

TEST(Pipeline, SumBuildsLeftToRightChain) {
  const auto e = opt::Expr::sum({1.0, 2.0, 3.0});
  EXPECT_EQ(e.to_string(), "((1 + 2) + 3)");
  const auto r = opt::evaluate(e, opt::PipelineConfig::ieee_strict());
  EXPECT_EQ(sf::to_native(r.value), 6.0);
}

TEST(Pipeline, ReassociationPreservesExactSums) {
  // When everything is exactly representable, reassociation is harmless —
  // the quiz's point is that you cannot know that in general.
  const auto e = opt::Expr::sum({1.0, 2.0, 4.0, 8.0, 16.0});
  const auto d = opt::diverge(e, opt::PipelineConfig::fast_math_like());
  EXPECT_FALSE(d.value_differs);
  EXPECT_EQ(sf::to_native(d.optimized.value), 31.0);
}

TEST(Pipeline, SubContractionUsesNegatedAddend) {
  // mul(a,b) - c must contract to fma(a, b, -c) and stay correct.
  const auto a = opt::Expr::constant(3.0);
  const auto e = opt::Expr::sub(opt::Expr::mul(a, a), opt::Expr::constant(1.0));
  const auto strict = opt::evaluate(e, opt::PipelineConfig::ieee_strict());
  const auto contracted = opt::evaluate(e, opt::PipelineConfig::o3_like());
  EXPECT_EQ(sf::to_native(strict.value), 8.0);
  EXPECT_EQ(sf::to_native(contracted.value), 8.0);
}

}  // namespace
