// Build-semantics probes. This TU is compiled with the repo's strict
// flags, so the "here" probes must agree with the library baseline.

#include <gtest/gtest.h>

#include "optprobe/probes.hpp"

namespace opt = fpq::opt;

namespace {

TEST(Probes, StrictTuReportsCompliant) {
  const opt::SemanticsReport r = opt::probe_semantics_here();
  EXPECT_FALSE(r.facts.fast_math);
  EXPECT_FALSE(r.contracts_fma)
      << "this TU is built with -ffp-contract=off";
  EXPECT_TRUE(r.nan_semantics_ok);
  EXPECT_TRUE(r.signed_zero_ok);
  EXPECT_TRUE(r.appears_standard_compliant);
}

TEST(Probes, BaselineMatchesStrictTu) {
  const opt::SemanticsReport baseline = opt::probe_semantics_baseline();
  const opt::SemanticsReport here = opt::probe_semantics_here();
  EXPECT_EQ(baseline.contracts_fma, here.contracts_fma);
  EXPECT_EQ(baseline.appears_standard_compliant,
            here.appears_standard_compliant);
}

TEST(Probes, NanProbeDetectsRealNanSemantics) {
  EXPECT_TRUE(opt::nan_compares_unequal_here());
}

TEST(Probes, SignedZeroProbe) {
  EXPECT_TRUE(opt::signed_zero_preserved_here());
}

TEST(Probes, BuildFactsConsistent) {
  const opt::BuildFacts f = opt::build_facts();
  EXPECT_FALSE(f.fast_math);
  EXPECT_FALSE(f.finite_math_only);
  // x86-64 SSE arithmetic evaluates in-type.
  EXPECT_EQ(f.flt_eval_method, 0);
}

TEST(Probes, DescribeRendersVerdict) {
  const std::string out = opt::describe(opt::probe_semantics_baseline());
  EXPECT_NE(out.find("verdict"), std::string::npos);
  EXPECT_NE(out.find("standard-compliant"), std::string::npos);
}

}  // namespace
