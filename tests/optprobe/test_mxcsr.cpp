#include <gtest/gtest.h>

#include "fpmon/hardware.hpp"
#include "optprobe/mxcsr.hpp"

namespace mon = fpq::mon;
namespace opt = fpq::opt;

namespace {

TEST(Mxcsr, ScopedFlushModeRestores) {
  if (!mon::mxcsr_supported()) GTEST_SKIP() << "no MXCSR";
  const std::uint32_t before = mon::read_mxcsr();
  {
    mon::ScopedFlushMode guard(true, true);
    ASSERT_TRUE(guard.active());
    EXPECT_TRUE(mon::flush_to_zero_enabled());
    EXPECT_TRUE(mon::denormals_are_zero_enabled());
  }
  EXPECT_EQ(mon::read_mxcsr(), before);
}

TEST(Mxcsr, ScopedFlushModeCanDisable) {
  if (!mon::mxcsr_supported()) GTEST_SKIP() << "no MXCSR";
  mon::ScopedFlushMode outer(true, false);
  {
    mon::ScopedFlushMode inner(false, false);
    EXPECT_FALSE(mon::flush_to_zero_enabled());
  }
  EXPECT_TRUE(mon::flush_to_zero_enabled());
}

TEST(Mxcsr, FlushProbeDemonstratesBothModes) {
  const opt::FlushProbeResult r = opt::probe_flush_modes();
  if (!r.mxcsr_available) GTEST_SKIP() << "no MXCSR";
  EXPECT_TRUE(r.ieee_gradual_underflow)
      << "IEEE mode must preserve subnormals";
  EXPECT_TRUE(r.ftz_flushes_results) << "FTZ must flush tiny results";
  EXPECT_TRUE(r.daz_zeroes_operands) << "DAZ must zero subnormal operands";
}

TEST(Mxcsr, ProbeReportsEntryModes) {
  if (!mon::mxcsr_supported()) GTEST_SKIP() << "no MXCSR";
  // The library itself never leaves flush modes on.
  const opt::FlushProbeResult r = opt::probe_flush_modes();
  EXPECT_FALSE(r.ftz_default_on);
  EXPECT_FALSE(r.daz_default_on);
}

TEST(Mxcsr, DescribeRendersOutcome) {
  const opt::FlushProbeResult r = opt::probe_flush_modes();
  const std::string out = opt::describe(r);
  if (r.mxcsr_available) {
    EXPECT_NE(out.find("FTZ"), std::string::npos);
    EXPECT_NE(out.find("DAZ"), std::string::npos);
  } else {
    EXPECT_NE(out.find("not available"), std::string::npos);
  }
}

}  // namespace
