// The flag audit is the optimization quiz's answer key as data; these
// tests pin the classifications the paper's questions rely on.

#include <gtest/gtest.h>

#include "optprobe/flag_audit.hpp"

namespace opt = fpq::opt;

namespace {

TEST(FlagAudit, HighestCompliantLevelIsO2) {
  // Optimization quiz "Standard-compliant Level".
  EXPECT_EQ(opt::highest_compliant_opt_level(), "-O2");
  EXPECT_EQ(opt::find_flag("-O2")->compliance, opt::Compliance::kCompliant);
  EXPECT_NE(opt::find_flag("-O3")->compliance, opt::Compliance::kCompliant);
}

TEST(FlagAudit, FastMathIsNonCompliant) {
  // Optimization quiz "Fast-math".
  const auto info = opt::find_flag("-ffast-math");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->compliance, opt::Compliance::kNonCompliant);
  EXPECT_TRUE(opt::can_change_results("-ffast-math"));
}

TEST(FlagAudit, MaddIsIeee2008ButChangesResults) {
  // Optimization quiz "MADD": part of the newer standard, not the original,
  // and it can compute different results than separate mul + add.
  const auto info = opt::find_flag("MADD");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->compliance, opt::Compliance::kMayDiverge);
  EXPECT_NE(info->explanation.find("754-2008"), std::string_view::npos);
  EXPECT_NE(info->explanation.find("754-1985"), std::string_view::npos);
}

TEST(FlagAudit, FtzDazAreNonStandardHardwareModes) {
  // Optimization quiz "Flush to Zero".
  for (const char* name : {"FTZ", "DAZ"}) {
    const auto info = opt::find_flag(name);
    ASSERT_TRUE(info.has_value()) << name;
    EXPECT_EQ(info->compliance, opt::Compliance::kNonCompliant) << name;
    EXPECT_EQ(info->kind, "hardware") << name;
  }
}

TEST(FlagAudit, LowOptLevelsCompliant) {
  for (const char* name : {"-O0", "-O1", "-O2", "-ffp-contract=off"}) {
    EXPECT_FALSE(opt::can_change_results(name)) << name;
  }
}

TEST(FlagAudit, UnsafeFamilyNonCompliant) {
  for (const char* name :
       {"-Ofast", "-funsafe-math-optimizations", "-fassociative-math",
        "-ffinite-math-only"}) {
    const auto info = opt::find_flag(name);
    ASSERT_TRUE(info.has_value()) << name;
    EXPECT_EQ(info->compliance, opt::Compliance::kNonCompliant) << name;
  }
}

TEST(FlagAudit, UnknownFlagNotFound) {
  EXPECT_FALSE(opt::find_flag("-fmade-up").has_value());
  EXPECT_FALSE(opt::can_change_results("-fmade-up"));
}

TEST(FlagAudit, RenderListsEverything) {
  const std::string out = opt::render_audit();
  for (const auto& f : opt::audited_flags()) {
    EXPECT_NE(out.find(std::string(f.name)), std::string::npos)
        << f.name;
  }
}

}  // namespace
