// Seed stability: the reproduction must not hinge on a lucky seed. Five
// independent cohorts all land on the paper's headline quantities.

#include <gtest/gtest.h>

#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "respondent/population.hpp"
#include "survey/analysis.hpp"
#include "survey/suspicion_analysis.hpp"

namespace sv = fpq::survey;
namespace quiz = fpq::quiz;

namespace {

class SeedStability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedStability, Figure12HoldsForEverySeed) {
  const auto cohort =
      fpq::respondent::generate_main_cohort(GetParam(), 199);
  const auto avg = sv::average_core(cohort, quiz::standard_core_truths());
  EXPECT_NEAR(avg.correct, 8.5, 0.7) << "seed " << GetParam();
  EXPECT_GT(avg.correct, 7.5) << "always above chance";
  const auto opt = sv::average_opt_tf(cohort, quiz::standard_opt_truths());
  EXPECT_GT(opt.dont_know, 1.5) << "DK always dominates the opt quiz";
  EXPECT_LT(opt.correct, 1.5) << "opt correct always below chance";
}

TEST_P(SeedStability, MajorityWrongRowsHoldForEverySeed) {
  const auto cohort =
      fpq::respondent::generate_main_cohort(GetParam(), 199);
  const auto rows =
      sv::core_question_breakdown(cohort, quiz::standard_core_truths());
  const auto identity =
      static_cast<std::size_t>(quiz::CoreQuestionId::kIdentity);
  const auto div_zero =
      static_cast<std::size_t>(quiz::CoreQuestionId::kDivideByZero);
  EXPECT_GT(rows[identity].pct_incorrect, 60.0) << "seed " << GetParam();
  EXPECT_GT(rows[div_zero].pct_incorrect, 60.0) << "seed " << GetParam();
}

TEST_P(SeedStability, SuspicionOrderingHoldsForEverySeed) {
  const auto cohort =
      fpq::respondent::generate_main_cohort(GetParam(), 199);
  const auto summary = sv::summarize_suspicion(sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(cohort)));
  EXPECT_TRUE(summary.expert_ordering_holds) << "seed " << GetParam();
  EXPECT_NEAR(summary.invalid_below_max, 1.0 / 3.0, 0.15)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(FiveSeeds, SeedStability,
                         ::testing::Values(1ULL, 7ULL, 1234ULL,
                                           0xDEADBEEFULL, 20180521ULL));

}  // namespace
