// End-to-end: generate a cohort, push it through the entire analysis
// pipeline, and confirm the pieces compose (figures come out with the
// right shapes and internally consistent numbers).

#include <gtest/gtest.h>

#include <sstream>

#include "core/ground_truth.hpp"
#include "respondent/population.hpp"
#include "survey/analysis.hpp"
#include "survey/csv_io.hpp"
#include "survey/factor_analysis.hpp"
#include "survey/suspicion_analysis.hpp"

namespace sv = fpq::survey;
namespace quiz = fpq::quiz;

namespace {

const std::vector<sv::SurveyRecord>& cohort() {
  static const auto c = fpq::respondent::generate_main_cohort(0xE2E, 199);
  return c;
}

TEST(EndToEnd, QuizAveragesAccountForAllQuestions) {
  const auto avg = sv::average_core(cohort(), quiz::standard_core_truths());
  EXPECT_NEAR(avg.correct + avg.incorrect + avg.dont_know + avg.unanswered,
              15.0, 1e-9);
  const auto opt = sv::average_opt_tf(cohort(), quiz::standard_opt_truths());
  EXPECT_NEAR(opt.correct + opt.incorrect + opt.dont_know + opt.unanswered,
              3.0, 1e-9);
}

TEST(EndToEnd, HistogramTotalsMatchCohort) {
  const auto hist =
      sv::core_score_histogram(cohort(), quiz::standard_core_truths());
  EXPECT_EQ(hist.total(), cohort().size());
  EXPECT_NEAR(hist.mean(),
              sv::average_core(cohort(), quiz::standard_core_truths()).correct,
              1e-9);
}

TEST(EndToEnd, BreakdownRowsSumTo100) {
  const auto rows =
      sv::core_question_breakdown(cohort(), quiz::standard_core_truths());
  for (const auto& row : rows) {
    EXPECT_NEAR(row.pct_correct + row.pct_incorrect + row.pct_dont_know +
                    row.pct_unanswered,
                100.0, 1e-9)
        << row.label;
  }
}

TEST(EndToEnd, FactorLevelsPartitionTheChartedCohort) {
  const auto levels = sv::by_contributed_size(
      cohort(), quiz::standard_core_truths(), quiz::standard_opt_truths());
  std::size_t charted = 0;
  for (const auto& level : levels) charted += level.n;
  std::size_t expected = 0;
  for (const auto& r : cohort()) {
    if (sv::contributed_size_bin(r.background.contributed_size) !=
        sv::kNoSizeBin) {
      ++expected;
    }
  }
  EXPECT_EQ(charted, expected);
}

TEST(EndToEnd, AreaGroupsPartitionWholeCohort) {
  const auto levels = sv::by_area_group(
      cohort(), quiz::standard_core_truths(), quiz::standard_opt_truths());
  std::size_t total = 0;
  for (const auto& level : levels) total += level.n;
  EXPECT_EQ(total, cohort().size()) << "every area collapses to some group";
}

TEST(EndToEnd, SuspicionSummaryShape) {
  const auto dists = sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(cohort()));
  const auto summary = sv::summarize_suspicion(dists);
  for (double mean : summary.mean_level) {
    EXPECT_GE(mean, 1.0);
    EXPECT_LE(mean, 5.0);
  }
  EXPECT_TRUE(summary.expert_ordering_holds)
      << "cohort calibrated to the paper keeps Invalid > Overflow > rest";
}

TEST(EndToEnd, CsvRoundTripPreservesAnalysis) {
  std::ostringstream out;
  sv::write_csv(out, cohort());
  std::istringstream in(out.str());
  std::vector<sv::SurveyRecord> parsed;
  std::string error;
  ASSERT_TRUE(sv::read_csv(in, parsed, error)) << error;
  const auto before =
      sv::average_core(cohort(), quiz::standard_core_truths());
  const auto after = sv::average_core(parsed, quiz::standard_core_truths());
  EXPECT_DOUBLE_EQ(before.correct, after.correct);
  EXPECT_DOUBLE_EQ(before.dont_know, after.dont_know);
}

TEST(EndToEnd, GradingAgainstExecutedKeyMatchesDeclaredKey) {
  // The analysis used the declared standard truths; grading against the
  // key executed on the softfloat backend must give identical results.
  auto backend = quiz::make_soft_backend_64();
  const quiz::AnswerKey executed = quiz::derive_answer_key(*backend);
  std::array<quiz::Truth, quiz::kCoreQuestionCount> executed_truths{};
  for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
    executed_truths[q] = executed.core[q].truth;
  }
  const auto declared =
      sv::average_core(cohort(), quiz::standard_core_truths());
  const auto derived = sv::average_core(cohort(), executed_truths);
  EXPECT_DOUBLE_EQ(declared.correct, derived.correct);
  EXPECT_DOUBLE_EQ(declared.incorrect, derived.incorrect);
}

}  // namespace
