// Cross-module consistency: three independent evaluators — the strict
// binary64 pipeline (softfloat), the 256-bit shadow (bigfloat), and the
// interval enclosure (directed softfloat rounding) — must agree on random
// expression trees: the shadow value lies inside the enclosure, and the
// binary64 result lies inside (or within one ulp of) the enclosure.
// A violation in any pair indicts one of the three arithmetic cores.

#include <gtest/gtest.h>

#include <cmath>

#include "analyze/shadow.hpp"
#include "interval/interval.hpp"
#include "optprobe/emulated_pipeline.hpp"
#include "stats/prng.hpp"

namespace sh = fpq::shadow;
namespace iv = fpq::interval;
namespace st = fpq::stats;
using E = fpq::opt::Expr;

namespace {

double gen_value(st::Xoshiro256pp& g) {
  const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
  const std::uint64_t exp = 1023 - 12 + st::uniform_below(g, 24);
  const std::uint64_t sign = g() & 0x8000000000000000ULL;
  return std::bit_cast<double>(sign | (exp << 52) | frac);
}

// Random expression tree of bounded depth. Division is biased toward
// divisors away from zero so most trees stay finite.
E gen_expr(st::Xoshiro256pp& g, int depth) {
  if (depth == 0 || st::uniform_below(g, 4) == 0) {
    return E::constant(gen_value(g));
  }
  switch (st::uniform_below(g, 5)) {
    case 0:
      return E::add(gen_expr(g, depth - 1), gen_expr(g, depth - 1));
    case 1:
      return E::sub(gen_expr(g, depth - 1), gen_expr(g, depth - 1));
    case 2:
      return E::mul(gen_expr(g, depth - 1), gen_expr(g, depth - 1));
    case 3:
      return E::div(gen_expr(g, depth - 1),
                    E::constant(std::fabs(gen_value(g)) + 1.0));
    default:
      return E::sqrt(E::mul(gen_expr(g, depth - 1),
                            gen_expr(g, depth - 1)));  // sqrt(x^2) >= 0
  }
}

bool within_one_ulp_of_interval(double x, const iv::Interval& enc) {
  if (enc.contains(x)) return true;
  return enc.contains(std::nextafter(x, enc.lo())) ||
         enc.contains(std::nextafter(x, enc.hi()));
}

TEST(CrossModule, ShadowValueInsideEnclosure) {
  st::Xoshiro256pp g(0xC505);
  int checked = 0;
  for (int i = 0; i < 1500; ++i) {
    const E expr = gen_expr(g, 4);
    const auto enclosure = iv::evaluate(expr);
    if (enclosure.is_invalid()) continue;
    sh::Config cfg;
    cfg.precision = 256;
    const auto shadow = sh::analyze(expr, cfg);
    if (shadow.shadow_is_exceptional) continue;
    if (std::isinf(enclosure.width())) continue;  // unbounded: trivially true
    ++checked;
    ASSERT_TRUE(within_one_ulp_of_interval(shadow.shadow_result, enclosure))
        << expr.to_string() << "\n shadow " << shadow.shadow_result
        << " enclosure " << enclosure.to_string();
  }
  EXPECT_GT(checked, 500) << "most random trees must be checkable";
}

TEST(CrossModule, Binary64ResultInsideEnclosure) {
  st::Xoshiro256pp g(0xC506);
  int checked = 0;
  for (int i = 0; i < 1500; ++i) {
    const E expr = gen_expr(g, 4);
    const auto report = iv::certify(expr);
    if (report.enclosure.is_invalid()) continue;
    if (std::isnan(report.double_result)) continue;
    ++checked;
    ASSERT_FALSE(report.double_escapes)
        << expr.to_string() << "\n double " << report.double_result
        << " enclosure " << report.enclosure.to_string();
  }
  EXPECT_GT(checked, 500);
}

TEST(CrossModule, ThreeWayAgreementOnCleanExpressions) {
  // On expressions the analyzers both call clean, the three results agree
  // to near machine precision.
  st::Xoshiro256pp g(0xC507);
  int agreements = 0;
  for (int i = 0; i < 800; ++i) {
    const E expr = gen_expr(g, 3);
    const auto report = iv::certify(expr);
    const auto shadow = sh::analyze(expr);
    if (report.enclosure.is_invalid() || shadow.suspicious() ||
        report.enclosure_is_wide || std::isnan(report.double_result) ||
        std::isinf(report.double_result)) {
      continue;
    }
    ++agreements;
    if (report.double_result != 0.0) {
      EXPECT_LT(std::fabs(report.double_result - shadow.shadow_result) /
                    std::fabs(report.double_result),
                1e-9)
          << expr.to_string();
    }
  }
  EXPECT_GT(agreements, 200);
}

TEST(CrossModule, WideEnclosureAndShadowFindingsCoincideOnCancellation) {
  // The two analyses flag the same classic pathology.
  const auto a = E::constant(1e16);
  const auto expr = E::sub(E::add(a, E::constant(1.0)), a);
  const auto cert = iv::certify(expr);
  const auto shadow = sh::analyze(expr);
  EXPECT_TRUE(cert.enclosure_is_wide);
  EXPECT_TRUE(shadow.suspicious());
  // And the enclosure contains the shadow's (correct) answer 1.0.
  EXPECT_TRUE(cert.enclosure.contains(shadow.shadow_result));
}

}  // namespace
