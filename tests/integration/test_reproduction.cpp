// The reproduction claims, as tests: a synthetic 199-respondent cohort
// analyzed by the pipeline reproduces the paper's published results within
// sampling tolerance — means, per-question rates, factor trends, and
// suspicion distributions. These are the same comparisons the bench
// harness prints; here they gate the build.

#include <gtest/gtest.h>

#include <cmath>

#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "respondent/population.hpp"
#include "survey/analysis.hpp"
#include "survey/factor_analysis.hpp"
#include "survey/suspicion_analysis.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace quiz = fpq::quiz;

namespace {

// A fixed seed; tolerances are set for n = 199 binomial noise
// (sigma ~ 0.25 score points for the mean, ~3.5% for per-question rates).
const std::vector<sv::SurveyRecord>& cohort() {
  static const auto c = fpq::respondent::generate_main_cohort(0x1908, 199);
  return c;
}

TEST(Reproduction, Figure12CoreAverages) {
  const auto avg = sv::average_core(cohort(), quiz::standard_core_truths());
  const auto paper = pd::core_quiz_averages();
  EXPECT_NEAR(avg.correct, paper.correct, 0.6);
  EXPECT_NEAR(avg.incorrect, paper.incorrect, 0.6);
  EXPECT_NEAR(avg.dont_know, paper.dont_know, 0.6);
  EXPECT_NEAR(avg.unanswered, paper.unanswered, 0.3);
  // The headline: barely above chance.
  EXPECT_GT(avg.correct, paper.chance);
  EXPECT_LT(avg.correct, paper.chance + 2.0);
}

TEST(Reproduction, Figure12OptAverages) {
  const auto avg = sv::average_opt_tf(cohort(), quiz::standard_opt_truths());
  const auto paper = pd::opt_quiz_averages();
  EXPECT_NEAR(avg.correct, paper.correct, 0.25);
  EXPECT_NEAR(avg.dont_know, paper.dont_know, 0.35);
  // The reassuring result: developers know they don't know — DK dominates
  // and the correct count sits far below even chance.
  EXPECT_GT(avg.dont_know, 1.5);
  EXPECT_LT(avg.correct, paper.chance);
}

TEST(Reproduction, Figure13HistogramShape) {
  const auto hist =
      sv::core_score_histogram(cohort(), quiz::standard_core_truths());
  EXPECT_NEAR(hist.mean(), pd::kCoreScoreMean, 0.6);
  // Unimodal-ish bulk: most mass within [4, 13].
  std::size_t bulk = 0;
  for (int s = 4; s <= 13; ++s) bulk += hist.count(s);
  EXPECT_GT(static_cast<double>(bulk) / hist.total(), 0.85);
}

TEST(Reproduction, Figure14PerQuestionRates) {
  const auto rows =
      sv::core_question_breakdown(cohort(), quiz::standard_core_truths());
  const auto paper = pd::core_breakdown();
  for (std::size_t q = 0; q < rows.size(); ++q) {
    EXPECT_NEAR(rows[q].pct_correct, paper[q].pct_correct, 11.0)
        << paper[q].label;
    EXPECT_NEAR(rows[q].pct_dont_know, paper[q].pct_dont_know, 11.0)
        << paper[q].label;
  }
}

TEST(Reproduction, Figure14MajorityWrongQuestionsStayWrong) {
  // Identity and Divide by Zero must be answered incorrectly by most of
  // the cohort — the paper's most alarming rows.
  const auto rows =
      sv::core_question_breakdown(cohort(), quiz::standard_core_truths());
  for (std::size_t q = 0; q < rows.size(); ++q) {
    if (pd::core_breakdown()[q].majority_wrong) {
      EXPECT_GT(rows[q].pct_incorrect, 50.0) << rows[q].label;
      EXPECT_LT(rows[q].pct_correct, 30.0) << rows[q].label;
    }
  }
}

TEST(Reproduction, Figure15DontKnowDominates) {
  const auto rows =
      sv::opt_question_breakdown(cohort(), quiz::standard_opt_truths());
  const auto paper = pd::opt_breakdown();
  for (std::size_t q = 0; q < rows.size(); ++q) {
    EXPECT_GT(rows[q].pct_dont_know, 50.0) << rows[q].label;
    EXPECT_NEAR(rows[q].pct_correct, paper[q].pct_correct, 9.0)
        << rows[q].label;
  }
}

TEST(Reproduction, Figure16SizeTrendMonotoneAndSpread) {
  const auto levels = sv::by_contributed_size(
      cohort(), quiz::standard_core_truths(), quiz::standard_opt_truths());
  const auto targets = pd::contributed_size_effect();
  // Compare populated levels against targets; small bins get loose bounds.
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].n < 5) continue;
    const double tol = levels[i].n >= 25 ? 1.0 : 2.0;
    EXPECT_NEAR(levels[i].core.correct, targets[i].core_correct, tol)
        << targets[i].label << " (n=" << levels[i].n << ")";
  }
  // The paper's qualitative claim: bigger codebases, better scores
  // (checked on the well-populated middle bins).
  EXPECT_LT(levels[0].core.correct, levels[2].core.correct + 0.5);
  EXPECT_GT(sv::core_correct_spread(levels), 1.5);
}

TEST(Reproduction, Figure17AreaEffects) {
  const auto levels = sv::by_area_group(
      cohort(), quiz::standard_core_truths(), quiz::standard_opt_truths());
  const auto targets = pd::area_effect();
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].n < 15) continue;  // tiny groups are pure noise at n=199
    EXPECT_NEAR(levels[i].core.correct, targets[i].core_correct, 1.2)
        << targets[i].label;
  }
  // PhysSci (well populated) sits at chance.
  EXPECT_NEAR(levels[4].core.correct, 7.5, 1.2);
}

TEST(Reproduction, Figure19TrainingEffectIsSmall) {
  const auto levels = sv::by_formal_training(
      cohort(), quiz::standard_core_truths(), quiz::standard_opt_truths());
  EXPECT_LT(sv::core_correct_spread(levels), 3.5)
      << "formal training is NOT a strong factor";
  // ... but it is monotone in expectation: courses beat none.
  EXPECT_GT(levels[3].core.correct, levels[0].core.correct - 0.5);
}

TEST(Reproduction, Figures20And21OptEffects) {
  const auto by_role = sv::by_role(cohort(), quiz::standard_core_truths(),
                                   quiz::standard_opt_truths());
  // Primary software engineers do best on the optimization quiz.
  EXPECT_GT(by_role[0].opt.correct, by_role[2].opt.correct);
  const auto by_area = sv::by_area_group(
      cohort(), quiz::standard_core_truths(), quiz::standard_opt_truths());
  // CS (well populated) above PhysSci.
  EXPECT_GT(by_area[2].opt.correct, by_area[4].opt.correct);
}

TEST(Reproduction, Figure22SuspicionBothCohorts) {
  const auto main_dists = sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(cohort()));
  const auto students_records =
      fpq::respondent::generate_student_cohort(0x1908, 52);
  const auto student_dists = sv::suspicion_distributions(
      std::span<const sv::StudentRecord>(students_records));

  const auto main_summary = sv::summarize_suspicion(main_dists);
  const auto student_summary = sv::summarize_suspicion(student_dists);

  EXPECT_TRUE(main_summary.expert_ordering_holds);
  // ~1/3 below max suspicion for Invalid in both cohorts.
  EXPECT_NEAR(main_summary.invalid_below_max, 1.0 / 3.0, 0.12);
  EXPECT_NEAR(student_summary.invalid_below_max, 1.0 / 3.0, 0.17);
  // Students less suspicious of Underflow and Denorm.
  const auto uf = static_cast<std::size_t>(quiz::SuspicionItemId::kUnderflow);
  const auto dn = static_cast<std::size_t>(quiz::SuspicionItemId::kDenorm);
  EXPECT_LT(student_summary.mean_level[uf], main_summary.mean_level[uf] + 0.15);
  EXPECT_LT(student_summary.mean_level[dn], main_summary.mean_level[dn] + 0.15);
}

TEST(Reproduction, BackgroundTablesWithinSamplingNoise) {
  // Figure 1-11 shapes: compare the generated cohort's frequency tables
  // against the published ones with a chi-square test.
  const auto rows = sv::frequency_table(
      cohort(), pd::formal_training(),
      [](const sv::SurveyRecord& r) { return r.background.formal_training; });
  double total = 0.0;
  for (const auto& row : pd::formal_training()) {
    total += static_cast<double>(row.n);
  }
  double chi2 = 0.0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double expected = static_cast<double>(pd::formal_training()[i].n) /
                            total * static_cast<double>(cohort().size());
    if (expected < 1.0) continue;
    const double diff = static_cast<double>(rows[i].n) - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 20.0) << "gross mismatch against Figure 3";
}

}  // namespace
