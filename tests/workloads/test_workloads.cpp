// The workload catalogue: every variant's condition contract must hold
// under the monitor — the suspicion quiz as a regression suite.

#include <gtest/gtest.h>

#include "fpmon/report.hpp"
#include "workloads/workloads.hpp"

namespace wl = fpq::workloads;
namespace mon = fpq::mon;

namespace {

class WorkloadContract
    : public ::testing::TestWithParam<const wl::Workload*> {};

TEST_P(WorkloadContract, ObservedConditionsMatchContract) {
  const wl::Workload& w = *GetParam();
  const auto observed = wl::observe(w);
  EXPECT_TRUE(wl::contract_holds(w, observed))
      << w.name << ": observed " << observed.to_string() << ", expected "
      << w.expected.to_string() << ", forbidden " << w.forbidden.to_string();
}

TEST_P(WorkloadContract, ObservationIsRepeatable) {
  const wl::Workload& w = *GetParam();
  EXPECT_EQ(wl::observe(w), wl::observe(w)) << w.name;
}

std::vector<const wl::Workload*> all_workloads() {
  std::vector<const wl::Workload*> out;
  for (const auto& w : wl::catalogue()) out.push_back(&w);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Catalogue, WorkloadContract,
                         ::testing::ValuesIn(all_workloads()),
                         [](const auto& info) {
                           std::string n = info.param->name;
                           for (auto& c : n)
                             if (c == '/') c = '_';
                           return n;
                         });

TEST(Workloads, CatalogueShape) {
  const auto cat = wl::catalogue();
  EXPECT_GE(cat.size(), 8u);
  // Every broken variant has a healthy sibling.
  for (const auto& w : cat) {
    if (w.name.find("/broken") == std::string::npos) continue;
    const std::string healthy =
        w.name.substr(0, w.name.find('/')) + "/healthy";
    bool found = false;
    for (const auto& other : cat) {
      if (other.name == healthy) found = true;
    }
    EXPECT_TRUE(found) << "no healthy sibling for " << w.name;
  }
}

TEST(Workloads, BrokenVariantsLookSuspiciousHealthyOnesDoNot) {
  // fpmon's verdict machinery must separate the pairs: every broken
  // variant reaches at least warning severity; healthy ones stay at
  // advised suspicion <= 2 (rounding/underflow only).
  for (const auto& w : wl::catalogue()) {
    const auto verdict = mon::evaluate(wl::observe(w));
    if (w.name.find("/broken") != std::string::npos) {
      EXPECT_GE(verdict.suspicion_level, 4) << w.name;
    } else {
      EXPECT_LE(verdict.suspicion_level, 2) << w.name;
    }
  }
}

TEST(Workloads, ContractCheckerRejectsViolations) {
  const wl::Workload& lorenz_ok = wl::catalogue()[0];
  mon::ConditionSet with_nan;
  with_nan.set(mon::Condition::kPrecision);
  with_nan.set(mon::Condition::kInvalid);  // forbidden for healthy lorenz
  EXPECT_FALSE(wl::contract_holds(lorenz_ok, with_nan));
  mon::ConditionSet missing;  // expected Precision absent
  EXPECT_FALSE(wl::contract_holds(lorenz_ok, missing));
}

}  // namespace
