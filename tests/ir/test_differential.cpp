// The differential proof for the IR retarget: the unified evaluation core
// (rewrite passes + SoftEvaluator) is BIT-IDENTICAL — values and sticky
// flags — to the legacy emulated-pipeline evaluator it replaced, across
// random expressions, every pipeline configuration, and all five rounding
// modes; the backend tree evaluator reproduces direct backend-op
// sequences including their ConditionSets; and the quiz answer key
// derived through the IR path still matches the declared standard.

#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/backend_eval.hpp"
#include "core/ground_truth.hpp"
#include "ir/ir.hpp"
#include "optprobe/emulated_pipeline.hpp"
#include "softfloat/env.hpp"
#include "softfloat/ops.hpp"
#include "stats/prng.hpp"

namespace ir = fpq::ir;
namespace sf = fpq::softfloat;
namespace st = fpq::stats;
namespace quiz = fpq::quiz;
using E = ir::Expr;
using K = ir::ExprKind;

namespace {

// ---------------------------------------------------------------------
// The legacy evaluator, reproduced verbatim from the pre-IR emulated
// pipeline (evaluation-time rewrites buried in the recursion, one sticky
// Env for the whole walk). This is the reference the unified core must
// match bit for bit.
// ---------------------------------------------------------------------

void legacy_flatten(const E& e, std::vector<E>& out) {
  const E::Node& n = e.node();
  if (n.kind == K::kAdd) {
    legacy_flatten(n.children[0], out);
    legacy_flatten(n.children[1], out);
  } else {
    out.push_back(e);
  }
}

sf::Float64 legacy_eval(const E& e, const ir::EvalConfig& cfg, sf::Env& env);

sf::Float64 legacy_pairwise(const std::vector<sf::Float64>& xs,
                            std::size_t lo, std::size_t hi, sf::Env& env) {
  if (hi - lo == 1) return xs[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  return sf::add(legacy_pairwise(xs, lo, mid, env),
                 legacy_pairwise(xs, mid, hi, env), env);
}

sf::Float64 legacy_eval(const E& e, const ir::EvalConfig& cfg,
                        sf::Env& env) {
  const E::Node& n = e.node();
  switch (n.kind) {
    case K::kConst:
      return n.value;
    case K::kAdd: {
      if (cfg.reassociate) {
        std::vector<E> addends;
        legacy_flatten(e, addends);
        if (addends.size() > 2) {
          std::vector<sf::Float64> values;
          values.reserve(addends.size());
          for (const E& a : addends) values.push_back(legacy_eval(a, cfg, env));
          return legacy_pairwise(values, 0, values.size(), env);
        }
      }
      if (cfg.contract_mul_add) {
        const E::Node& l = n.children[0].node();
        const E::Node& r = n.children[1].node();
        if (l.kind == K::kMul) {
          return sf::fma(legacy_eval(l.children[0], cfg, env),
                         legacy_eval(l.children[1], cfg, env),
                         legacy_eval(n.children[1], cfg, env), env);
        }
        if (r.kind == K::kMul) {
          return sf::fma(legacy_eval(r.children[0], cfg, env),
                         legacy_eval(r.children[1], cfg, env),
                         legacy_eval(n.children[0], cfg, env), env);
        }
      }
      return sf::add(legacy_eval(n.children[0], cfg, env),
                     legacy_eval(n.children[1], cfg, env), env);
    }
    case K::kSub: {
      if (cfg.contract_mul_add) {
        const E::Node& l = n.children[0].node();
        if (l.kind == K::kMul) {
          return sf::fma(legacy_eval(l.children[0], cfg, env),
                         legacy_eval(l.children[1], cfg, env),
                         legacy_eval(n.children[1], cfg, env).negated(), env);
        }
      }
      return sf::sub(legacy_eval(n.children[0], cfg, env),
                     legacy_eval(n.children[1], cfg, env), env);
    }
    case K::kMul:
      return sf::mul(legacy_eval(n.children[0], cfg, env),
                     legacy_eval(n.children[1], cfg, env), env);
    case K::kDiv:
      return sf::div(legacy_eval(n.children[0], cfg, env),
                     legacy_eval(n.children[1], cfg, env), env);
    case K::kSqrt:
      return sf::sqrt(legacy_eval(n.children[0], cfg, env), env);
    case K::kFma:
      return sf::fma(legacy_eval(n.children[0], cfg, env),
                     legacy_eval(n.children[1], cfg, env),
                     legacy_eval(n.children[2], cfg, env), env);
    default:
      break;
  }
  return sf::Float64::quiet_nan();
}

ir::Outcome legacy_evaluate(const E& e, const ir::EvalConfig& cfg) {
  sf::Env env(cfg.rounding);
  env.set_flush_to_zero(cfg.flush_to_zero);
  env.set_denormals_are_zero(cfg.denormals_are_zero);
  ir::Outcome r;
  r.value = legacy_eval(e, cfg, env);
  r.flags = env.flags();
  return r;
}

// ---------------------------------------------------------------------
// Random expression generator over the legacy node kinds, seeded with
// the constants that exercise every flag: zeros, subnormals, huge values,
// exact small integers, and non-representable fractions.
// ---------------------------------------------------------------------

E random_tree(st::Xoshiro256pp& g, int depth) {
  static const double kPool[] = {
      0.0,     -0.0,    1.0,    -1.0,   0.5,     3.0,
      0.1,     1.0 / 3, -2.5,   7.25,   1e16,    -1e16,
      1e300,   -1e300,  1e-300, 5e-324, 2.2250738585072014e-308,
      1.0 + 0x1.0p-30, 1.7976931348623157e308};
  if (depth <= 0 || st::uniform_below(g, 4) == 0) {
    return E::constant(kPool[st::uniform_below(g, std::size(kPool))]);
  }
  switch (st::uniform_below(g, 6)) {
    case 0:
      return E::add(random_tree(g, depth - 1), random_tree(g, depth - 1));
    case 1:
      return E::sub(random_tree(g, depth - 1), random_tree(g, depth - 1));
    case 2:
      return E::mul(random_tree(g, depth - 1), random_tree(g, depth - 1));
    case 3:
      return E::div(random_tree(g, depth - 1), random_tree(g, depth - 1));
    case 4:
      return E::sqrt(random_tree(g, depth - 1));
    default:
      return E::fma(random_tree(g, depth - 1), random_tree(g, depth - 1),
                    random_tree(g, depth - 1));
  }
}

std::vector<ir::EvalConfig> pipeline_configs() {
  std::vector<ir::EvalConfig> out;
  const sf::Rounding modes[] = {
      sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
      sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway};
  for (const auto r : modes) {
    ir::EvalConfig strict;
    strict.rounding = r;
    out.push_back(strict);
    ir::EvalConfig o3 = strict;
    o3.contract_mul_add = true;
    out.push_back(o3);
    ir::EvalConfig reassoc = strict;
    reassoc.reassociate = true;
    out.push_back(reassoc);
    ir::EvalConfig fast = strict;
    fast.contract_mul_add = true;
    fast.reassociate = true;
    fast.flush_to_zero = true;
    fast.denormals_are_zero = true;
    out.push_back(fast);
  }
  return out;
}

TEST(IrVsLegacy, RandomTreesBitIdenticalAcrossConfigsAndRoundings) {
  st::Xoshiro256pp g(0xD18DA);
  const auto configs = pipeline_configs();
  for (int i = 0; i < 150; ++i) {
    const E tree = random_tree(g, 5);
    for (const auto& cfg : configs) {
      const auto legacy = legacy_evaluate(tree, cfg);
      const auto unified = ir::evaluate(tree, cfg);
      ASSERT_EQ(legacy.value.bits, unified.value.bits)
          << tree.to_string() << "\n  rounding "
          << sf::rounding_to_string(cfg.rounding) << " contract "
          << cfg.contract_mul_add << " reassoc " << cfg.reassociate
          << " ftz " << cfg.flush_to_zero;
      ASSERT_EQ(legacy.flags, unified.flags)
          << tree.to_string() << ": " << sf::flags_to_string(legacy.flags)
          << " vs " << sf::flags_to_string(unified.flags);
    }
  }
}

TEST(IrVsLegacy, TapeMatchesLegacyAcrossConfigsAndRoundings) {
  // Third leg of the differential: the compiled tape (with CSE and
  // constant folding enabled) must agree with the LEGACY evaluator too,
  // not just with the tree walk it was pinned against.
  st::Xoshiro256pp g(0x7A9ED1);
  const auto configs = pipeline_configs();
  for (int i = 0; i < 60; ++i) {
    const E tree = random_tree(g, 5);
    for (const auto& cfg : configs) {
      const auto legacy = legacy_evaluate(tree, cfg);
      const auto taped = ir::execute(ir::Tape::compile(tree, cfg));
      ASSERT_EQ(legacy.value.bits, taped.value.bits)
          << tree.to_string() << "\n  rounding "
          << sf::rounding_to_string(cfg.rounding) << " contract "
          << cfg.contract_mul_add << " reassoc " << cfg.reassociate;
      ASSERT_EQ(legacy.flags, taped.flags)
          << tree.to_string() << ": " << sf::flags_to_string(legacy.flags)
          << " vs " << sf::flags_to_string(taped.flags);
    }
  }
}

TEST(IrVsLegacy, DeepAdditionChainsExerciseReassociation) {
  // Long +-chains are the reassociation pass's whole reason to exist;
  // sweep lengths 3..24 so every pairwise split shape appears.
  st::Xoshiro256pp g(0xCAB1E);
  const auto configs = pipeline_configs();
  for (std::size_t len = 3; len <= 24; ++len) {
    std::vector<E> terms;
    for (std::size_t i = 0; i < len; ++i) {
      terms.push_back(random_tree(g, 2));
    }
    E chain = terms[0];
    for (std::size_t i = 1; i < len; ++i) chain = E::add(chain, terms[i]);
    for (const auto& cfg : configs) {
      const auto legacy = legacy_evaluate(chain, cfg);
      const auto unified = ir::evaluate(chain, cfg);
      ASSERT_EQ(legacy.value.bits, unified.value.bits)
          << "chain length " << len;
      ASSERT_EQ(legacy.flags, unified.flags) << "chain length " << len;
    }
  }
}

TEST(IrVsLegacy, OptprobeFacadeMatchesLegacyOnItsOwnDemos) {
  namespace opt = fpq::opt;
  const E demos[] = {opt::demo_contraction_sensitive(),
                     opt::demo_reassociation_sensitive(),
                     opt::demo_flush_sensitive()};
  const opt::PipelineConfig cfgs[] = {opt::PipelineConfig::ieee_strict(),
                                      opt::PipelineConfig::o3_like(),
                                      opt::PipelineConfig::fast_math_like()};
  for (const auto& demo : demos) {
    for (const auto& cfg : cfgs) {
      const auto now = opt::evaluate(demo, cfg);
      const auto then = legacy_evaluate(demo, opt::ir_config(cfg));
      EXPECT_EQ(now.value.bits, then.value.bits);
      EXPECT_EQ(now.flags, then.flags);
    }
  }
}

// ---------------------------------------------------------------------
// Backend differential: evaluating a tree through BackendEvaluator is the
// same op sequence a hand-written loop would issue — same result bits,
// same accumulated ConditionSet — on EVERY backend in the registry.
// ---------------------------------------------------------------------

TEST(IrVsBackends, TreeEvaluationMatchesDirectOpSequences) {
  const double pool[] = {0.0,  -0.0, 1.0,   0.1,  -2.5,
                         1e16, 3.0,  7.25,  1e300, 1e-300};
  const auto x = E::variable("x", 0);
  const auto y = E::variable("y", 1);
  const auto z = E::variable("z", 2);
  // fma(x, y, z) + sqrt(x*x) - y/z : touches every new virtual.
  const auto tree =
      E::sub(E::add(E::fma(x, y, z), E::sqrt(E::mul(x, x))), E::div(y, z));
  for (const auto& backend : quiz::make_all_backends()) {
    st::Xoshiro256pp g(0xBEEF);
    for (int i = 0; i < 64; ++i) {
      const double xs[] = {pool[st::uniform_below(g, std::size(pool))],
                           pool[st::uniform_below(g, std::size(pool))],
                           pool[st::uniform_below(g, std::size(pool))]};
      (void)backend->take_conditions();
      const double via_tree = fpq::quiz::evaluate_on_backend(
          *backend, tree, std::span<const double>(xs));
      const auto tree_conditions = backend->take_conditions();
      const double f = backend->fma(xs[0], xs[1], xs[2]);
      const double s = backend->sqrt(backend->mul(xs[0], xs[0]));
      const double q = backend->div(xs[1], xs[2]);
      const double direct = backend->sub(backend->add(f, s), q);
      const auto direct_conditions = backend->take_conditions();
      ASSERT_EQ(std::bit_cast<std::uint64_t>(via_tree),
                std::bit_cast<std::uint64_t>(direct))
          << backend->name() << " x=" << xs[0] << " y=" << xs[1]
          << " z=" << xs[2];
      ASSERT_EQ(tree_conditions, direct_conditions)
          << backend->name() << ": " << tree_conditions.to_string()
          << " vs " << direct_conditions.to_string();
    }
  }
}

// ---------------------------------------------------------------------
// The answer key: ground truth is now derived by executing IR trees on
// each backend (witness.cpp evaluates through BackendEvaluator), and the
// executed key must still match the declared standard truths everywhere —
// the FTZ backend included, whose divergence lives in its witnesses.
// ---------------------------------------------------------------------

TEST(IrAnswerKey, EveryRegistryBackendStillMatchesTheStandardKey) {
  for (const auto& backend : quiz::make_all_backends()) {
    const auto key = quiz::derive_answer_key(*backend);
    std::string mismatch;
    EXPECT_TRUE(quiz::key_matches_standard(key, &mismatch))
        << backend->name() << " diverged at " << mismatch;
  }
}

}  // namespace
