// fpq::ir expression trees: hash consing (structural equality IS pointer
// equality), rendering, the span-style builders (sum/dot/horner), variable
// bindings, and operation-level provenance traces.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "ir/ir.hpp"
#include "softfloat/env.hpp"

namespace ir = fpq::ir;
namespace sf = fpq::softfloat;
using E = ir::Expr;

namespace {

TEST(ExprInterning, StructurallyEqualTreesShareOneNode) {
  const auto a = E::add(E::constant(1.0), E::constant(2.0));
  const auto b = E::add(E::constant(1.0), E::constant(2.0));
  EXPECT_TRUE(a == b);
  EXPECT_EQ(&a.node(), &b.node());
  EXPECT_EQ(a.hash(), b.hash());
}

TEST(ExprInterning, DistinctTreesDiffer) {
  const auto a = E::add(E::constant(1.0), E::constant(2.0));
  const auto b = E::add(E::constant(2.0), E::constant(1.0));  // not commutative
  const auto c = E::sub(E::constant(1.0), E::constant(2.0));
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(ExprInterning, NegativeZeroConstantIsDistinctFromPositiveZero) {
  // The IR stores constants by bit pattern: +0 and -0 are different
  // programs (the paper's negative-zero question depends on it).
  const auto pos = E::constant(0.0);
  const auto neg = E::constant(-0.0);
  EXPECT_FALSE(pos == neg);
}

TEST(ExprInterning, SharedSubtreesReuseInternedNodes) {
  const std::size_t before = E::intern_pool_size();
  const auto x = E::mul(E::constant(41.5), E::constant(2.0));
  const auto twice = E::add(x, x);
  const std::size_t after = E::intern_pool_size();
  // mul + two consts + add: at most 4 fresh nodes even though the mul
  // appears twice in the sum.
  EXPECT_LE(after - before, 4u);
  EXPECT_TRUE(twice.node().children[0] == twice.node().children[1]);
}

TEST(ExprRender, AllNodeKindsRender) {
  EXPECT_EQ(E::constant(1.5).to_string(), "1.5");
  EXPECT_EQ(E::variable("x", 0).to_string(), "x");
  const auto x = E::variable("x", 0);
  const auto y = E::variable("y", 1);
  EXPECT_EQ(E::add(x, y).to_string(), "(x + y)");
  EXPECT_EQ(E::sub(x, y).to_string(), "(x - y)");
  EXPECT_EQ(E::mul(x, y).to_string(), "(x * y)");
  EXPECT_EQ(E::div(x, y).to_string(), "(x / y)");
  EXPECT_EQ(E::sqrt(x).to_string(), "sqrt(x)");
  EXPECT_EQ(E::fma(x, y, E::constant(1.0)).to_string(), "fma(x, y, 1)");
  EXPECT_NE(E::neg(x).to_string().find("x"), std::string::npos);
  EXPECT_NE(E::cmp_eq(x, y).to_string().find("=="), std::string::npos);
  EXPECT_NE(E::cmp_lt(x, y).to_string().find("<"), std::string::npos);
}

TEST(ExprBuilders, SumIsLeftToRightChain) {
  const auto s = E::sum({1.0, 2.0, 3.0});
  // ((1 + 2) + 3): the order C source implies.
  EXPECT_EQ(s.to_string(), "((1 + 2) + 3)");
  EXPECT_EQ(E::sum({7.0}).to_string(), "7");
}

TEST(ExprBuilders, SumOverExprSpan) {
  const std::array<E, 3> xs{E::variable("a", 0), E::variable("b", 1),
                            E::variable("c", 2)};
  const auto s = E::sum(std::span<const E>(xs));
  EXPECT_EQ(s.to_string(), "((a + b) + c)");
}

TEST(ExprBuilders, DotIsNaiveAccumulation) {
  const std::array<double, 3> xs{1.0, 2.0, 3.0};
  const std::array<double, 3> ys{4.0, 5.0, 6.0};
  const auto d = E::dot(std::span<const double>(xs),
                        std::span<const double>(ys));
  EXPECT_EQ(d.to_string(), "(((1 * 4) + (2 * 5)) + (3 * 6))");
  const auto r = ir::evaluate(d, ir::EvalConfig::ieee_strict());
  EXPECT_EQ(sf::to_native(r.value), 32.0);
}

TEST(ExprBuilders, HornerNestsHighestDegreeFirst) {
  const std::array<double, 3> c{2.0, -3.0, 1.0};  // 2x^2 - 3x + 1
  const auto p = E::horner(std::span<const double>(c), E::variable("x", 0));
  EXPECT_EQ(p.to_string(), "((((2 * x) + -3) * x) + 1)");
  // The value at x=3 is 2*9 - 3*3 + 1 = 10, exactly.
  const std::array<double, 1> binding{3.0};
  const auto r = ir::evaluate(p, ir::EvalConfig::ieee_strict(),
                              std::span<const double>(binding));
  EXPECT_EQ(sf::to_native(r.value), 10.0);
  // Single coefficient: the constant polynomial.
  const std::array<double, 1> k{5.0};
  EXPECT_EQ(E::horner(std::span<const double>(k), E::variable("x", 0))
                .to_string(),
            "5");
}

TEST(ExprEval, VariablesReadTheirBindingSlot) {
  const auto e = E::sub(E::variable("a", 0), E::variable("b", 1));
  const std::array<double, 2> binding{10.0, 4.0};
  const auto r = ir::evaluate(e, ir::EvalConfig::ieee_strict(),
                              std::span<const double>(binding));
  EXPECT_EQ(sf::to_native(r.value), 6.0);
}

TEST(ExprEval, MissingBindingIsQuietNaN) {
  const auto e = E::variable("ghost", 7);
  const auto r = ir::evaluate(e, ir::EvalConfig::ieee_strict());
  EXPECT_TRUE(std::isnan(sf::to_native(r.value)));
  EXPECT_EQ(r.flags, 0u) << "binding a NaN is quiet";
}

TEST(ExprEval, NegIsSignBitFlipNotSubtraction) {
  // neg(+0) = -0 with no flags; sub(0, +0) = +0 under round-to-nearest.
  const auto r = ir::evaluate(E::neg(E::constant(0.0)),
                              ir::EvalConfig::ieee_strict());
  EXPECT_TRUE(std::signbit(sf::to_native(r.value)));
  EXPECT_EQ(r.flags, 0u);
}

TEST(ExprEval, ComparisonsEvaluateToZeroOrOne) {
  const auto cfg = ir::EvalConfig::ieee_strict();
  const auto nan = E::div(E::constant(0.0), E::constant(0.0));
  // NaN == NaN is false (quiet); NaN < 1 is false and signals invalid.
  EXPECT_EQ(sf::to_native(ir::evaluate(E::cmp_eq(nan, nan), cfg).value), 0.0);
  const auto lt = ir::evaluate(E::cmp_lt(nan, E::constant(1.0)), cfg);
  EXPECT_EQ(sf::to_native(lt.value), 0.0);
  EXPECT_NE(lt.flags & sf::kFlagInvalid, 0u) << "less is the signaling <";
  EXPECT_EQ(sf::to_native(ir::evaluate(
                              E::cmp_eq(E::constant(0.0), E::constant(-0.0)),
                              cfg)
                              .value),
            1.0)
      << "+0 == -0";
}

TEST(ProvenanceTrace, RecordsPerOperationFlags) {
  // (1e300 * 1e300) / 1e300: the multiply overflows, the divide then only
  // rounds — the trace must attribute the overflow to the multiply.
  const auto e = E::div(E::mul(E::constant(1e300), E::constant(1e300)),
                        E::constant(1e300));
  ir::ProvenanceTrace trace;
  const auto r =
      ir::evaluate(e, ir::EvalConfig::ieee_strict(), {}, &trace);
  ASSERT_EQ(trace.events().size(), 2u) << "one event per operation";
  EXPECT_EQ(trace.events()[0].kind, ir::ExprKind::kMul);
  EXPECT_NE(trace.events()[0].flags & sf::kFlagOverflow, 0u);
  EXPECT_EQ(trace.events()[1].kind, ir::ExprKind::kDiv);
  EXPECT_EQ(trace.events()[1].flags & sf::kFlagOverflow, 0u);
  const auto* first = trace.first_raiser(sf::kFlagOverflow);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->kind, ir::ExprKind::kMul);
  EXPECT_EQ(trace.cumulative_flags(), r.flags)
      << "per-op flags union to the sticky set";
}

TEST(ProvenanceTrace, StickyUnionUnchangedByInstrumentation) {
  const auto e = E::add(E::div(E::constant(1.0), E::constant(0.0)),
                        E::div(E::constant(1.0), E::constant(3.0)));
  const auto plain = ir::evaluate(e, ir::EvalConfig::ieee_strict());
  ir::ProvenanceTrace trace;
  const auto traced =
      ir::evaluate(e, ir::EvalConfig::ieee_strict(), {}, &trace);
  EXPECT_EQ(plain.value.bits, traced.value.bits);
  EXPECT_EQ(plain.flags, traced.flags);
  EXPECT_EQ(trace.cumulative_flags(), plain.flags);
}

TEST(ProvenanceTrace, RenderNamesFlagsAndFirstRaiser) {
  const auto e = E::div(E::constant(1.0), E::constant(0.0));
  ir::ProvenanceTrace trace;
  ir::evaluate(e, ir::EvalConfig::ieee_strict(), {}, &trace);
  const auto out = trace.render();
  EXPECT_NE(out.find("(1 / 0)"), std::string::npos);
  EXPECT_NE(out.find("divbyzero"), std::string::npos);
  trace.clear();
  EXPECT_TRUE(trace.events().empty());
}

}  // namespace
