// The tape differential-parity suite: compiling an Expr to bytecode and
// executing it — scalar engine or generic run_tape — must be BIT-identical
// (values) and sticky-flag-identical to the reference tree walk across
// every format, every rounding mode, FTZ/DAZ, and both option sets; the
// per-op trace on an exact_trace tape must be the tree walk's op sequence
// verbatim; and CSE/folding must change neither values nor flag unions,
// only (documentedly) how often shared nodes appear in the trace.

#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include "ir/ir.hpp"
#include "softfloat/env.hpp"
#include "stats/prng.hpp"

namespace ir = fpq::ir;
namespace sf = fpq::softfloat;
namespace st = fpq::stats;
using E = ir::Expr;

namespace {

// Random trees over constants AND variables, seeded with the values that
// exercise every flag class (zeros, subnormals, huge, inexact fractions).
const double kPool[] = {
    0.0,     -0.0,    1.0,    -1.0,   0.5,     3.0,
    0.1,     1.0 / 3, -2.5,   7.25,   1e16,    -1e16,
    1e300,   -1e300,  1e-300, 5e-324, 2.2250738585072014e-308,
    1.0 + 0x1.0p-30, 1.7976931348623157e308};

constexpr std::size_t kVars = 3;

E random_tree(st::Xoshiro256pp& g, int depth) {
  if (depth <= 0 || st::uniform_below(g, 5) == 0) {
    if (st::uniform_below(g, 2) == 0) {
      const auto i = st::uniform_below(g, kVars);
      return E::variable("v", static_cast<std::size_t>(i));
    }
    return E::constant(kPool[st::uniform_below(g, std::size(kPool))]);
  }
  switch (st::uniform_below(g, 8)) {
    case 0:
      return E::add(random_tree(g, depth - 1), random_tree(g, depth - 1));
    case 1:
      return E::sub(random_tree(g, depth - 1), random_tree(g, depth - 1));
    case 2:
      return E::mul(random_tree(g, depth - 1), random_tree(g, depth - 1));
    case 3:
      return E::div(random_tree(g, depth - 1), random_tree(g, depth - 1));
    case 4:
      return E::sqrt(random_tree(g, depth - 1));
    case 5:
      return E::neg(random_tree(g, depth - 1));
    case 6:
      return E::cmp_lt(random_tree(g, depth - 1), random_tree(g, depth - 1));
    default:
      return E::fma(random_tree(g, depth - 1), random_tree(g, depth - 1),
                    random_tree(g, depth - 1));
  }
}

std::vector<double> random_bindings(st::Xoshiro256pp& g) {
  std::vector<double> out(kVars);
  for (double& x : out) x = kPool[st::uniform_below(g, std::size(kPool))];
  return out;
}

std::vector<ir::EvalConfig> all_configs() {
  std::vector<ir::EvalConfig> out;
  const int formats[] = {16, 32, 64, sf::kBFloat16};
  const sf::Rounding modes[] = {
      sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
      sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway};
  for (const int fmt : formats) {
    for (const auto r : modes) {
      ir::EvalConfig cfg;
      cfg.format_bits = fmt;
      cfg.rounding = r;
      out.push_back(cfg);
    }
    // One flush-mode and one rewrite configuration per format keeps the
    // matrix dense without exploding the runtime.
    ir::EvalConfig flush;
    flush.format_bits = fmt;
    flush.flush_to_zero = true;
    flush.denormals_are_zero = true;
    out.push_back(flush);
    ir::EvalConfig fast;
    fast.format_bits = fmt;
    fast.contract_mul_add = true;
    fast.reassociate = true;
    out.push_back(fast);
  }
  return out;
}

// ---------------------------------------------------------------------
// Compile shape: what CSE and folding are allowed (and not allowed) to do.
// ---------------------------------------------------------------------

TEST(TapeCompile, SharedSubtreeEmittedOnceUnderCse) {
  const E x = E::variable("x", 0);
  const E y = E::variable("y", 1);
  const E m = E::mul(x, y);
  const E t = E::add(m, m);  // hash consing makes both children one node
  const ir::Tape cse = ir::Tape::compile(t);
  EXPECT_EQ(cse.cse_reuses(), 1u);
  EXPECT_EQ(cse.code().size(), 4u);  // x, y, mul, add
  const ir::Tape exact =
      ir::Tape::compile(t, {}, ir::TapeOptions::exact_trace());
  EXPECT_EQ(exact.cse_reuses(), 0u);
  EXPECT_EQ(exact.code().size(), 7u);  // x, y, mul, x, y, mul, add
}

TEST(TapeCompile, FlagCleanConstantTreeFoldsToOneLoad) {
  const E t = E::add(E::mul(E::constant(2.0), E::constant(4.0)),
                     E::constant(1.0));
  const ir::Tape tape = ir::Tape::compile(t);
  ASSERT_EQ(tape.code().size(), 1u);
  EXPECT_EQ(tape.code()[0].op, ir::TapeOp::kConst);
  EXPECT_EQ(tape.folded_ops(), 2u);
  EXPECT_EQ(sf::to_native(tape.constants()[tape.code()[0].a]), 9.0);
}

TEST(TapeCompile, InexactConstantOperationDoesNotFold) {
  // 1/3 raises inexact: folding it would silently discard the flag the
  // program is entitled to observe, so the division must stay on tape.
  const E t = E::div(E::constant(1.0), E::constant(3.0));
  const ir::Tape tape = ir::Tape::compile(t);
  EXPECT_EQ(tape.folded_ops(), 0u);
  ASSERT_EQ(tape.code().size(), 3u);
  EXPECT_EQ(tape.code()[2].op, ir::TapeOp::kDiv);
}

TEST(TapeCompile, FoldingLegalityDependsOnTheFormat) {
  // 1024 + 1 is exact in binary64/32 but rounds (inexact) in binary16's
  // 11-bit significand at that magnitude? No: 1025 needs 11 bits — still
  // exact. Use 2048 + 1 = 2049, which needs 12 bits: exact in 32/64,
  // inexact in binary16, so it folds there and only there.
  const E t = E::add(E::constant(2048.0), E::constant(1.0));
  ir::EvalConfig wide;
  wide.format_bits = 64;
  EXPECT_EQ(ir::Tape::compile(t, wide).folded_ops(), 1u);
  ir::EvalConfig half;
  half.format_bits = 16;
  EXPECT_EQ(ir::Tape::compile(t, half).folded_ops(), 0u);
}

TEST(TapeCompile, RegistersAreReusedAcrossAChain) {
  E chain = E::variable("x", 0);
  for (int i = 1; i <= 10; ++i) {
    chain = E::add(chain, E::constant(static_cast<double>(i)));
  }
  const ir::Tape tape =
      ir::Tape::compile(chain, {}, ir::TapeOptions::exact_trace());
  EXPECT_EQ(tape.code().size(), 21u);
  // A left-leaning chain needs only the accumulator and one operand slot.
  EXPECT_LE(tape.register_count(), 3u);
}

TEST(TapeCompile, RequiredWidthIsOnePastTheLargestVarIndex) {
  const E t = E::add(E::variable("a", 0), E::variable("d", 3));
  EXPECT_EQ(ir::Tape::compile(t).required_width(), 4u);
  EXPECT_EQ(ir::Tape::compile(E::constant(1.0)).required_width(), 0u);
}

TEST(TapeCompile, FingerprintSeparatesProgramConfigAndOptions) {
  const E a = E::add(E::variable("x", 0), E::constant(0.1));
  const E b = E::sub(E::variable("x", 0), E::constant(0.1));
  ir::EvalConfig nearest;
  ir::EvalConfig upward;
  upward.rounding = sf::Rounding::kUp;
  const auto fp = [](const E& e, const ir::EvalConfig& c,
                     const ir::TapeOptions& o = {}) {
    return ir::Tape::compile(e, c, o).fingerprint();
  };
  EXPECT_EQ(fp(a, nearest), fp(a, nearest));  // deterministic
  EXPECT_NE(fp(a, nearest), fp(b, nearest));  // program
  EXPECT_NE(fp(a, nearest), fp(a, upward));   // rounding
  // Options change the fingerprint only through the emitted code; a tree
  // with a shared subtree compiles to different code with CSE off.
  const E m = E::mul(E::variable("x", 0), E::variable("x", 0));
  const E shared = E::add(m, m);
  EXPECT_NE(fp(shared, nearest),
            fp(shared, nearest, ir::TapeOptions::exact_trace()));
}

TEST(TapeCompile, ProcessWideCacheReturnsTheSameTape) {
  ir::Tape::clear_cache();
  const E t = E::add(E::variable("x", 0), E::constant(1.5));
  const auto first = ir::Tape::cached(t);
  const auto second = ir::Tape::cached(t);
  EXPECT_EQ(first.get(), second.get());
  const auto stats = ir::Tape::cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
  // Different options are a different cache line.
  const auto exact = ir::Tape::cached(t, {}, ir::TapeOptions::exact_trace());
  EXPECT_NE(first.get(), exact.get());
}

// ---------------------------------------------------------------------
// Differential parity: tape execution vs the reference tree walk.
// ---------------------------------------------------------------------

TEST(TapeParity, ScalarEngineMatchesEvaluateEverywhere) {
  st::Xoshiro256pp g(0x7A9E);
  const auto configs = all_configs();
  for (int i = 0; i < 60; ++i) {
    const E tree = random_tree(g, 4);
    const auto bindings = random_bindings(g);
    for (const auto& cfg : configs) {
      const ir::Outcome ref = ir::evaluate(tree, cfg, bindings);
      for (const auto& options :
           {ir::TapeOptions{}, ir::TapeOptions::exact_trace()}) {
        const ir::Tape tape = ir::Tape::compile(tree, cfg, options);
        const ir::Outcome got = ir::execute(tape, bindings);
        ASSERT_EQ(ref.value.bits, got.value.bits)
            << tree.to_string() << "\n  format " << cfg.format_bits
            << " rounding " << sf::rounding_to_string(cfg.rounding)
            << " cse " << options.cse << " fold " << options.fold_constants;
        ASSERT_EQ(ref.flags, got.flags)
            << tree.to_string() << ": " << sf::flags_to_string(ref.flags)
            << " vs " << sf::flags_to_string(got.flags) << "\n  format "
            << cfg.format_bits << " cse " << options.cse;
      }
    }
  }
}

TEST(TapeParity, RunTapeDrivesAnEvaluatorLikeTheTreeWalk) {
  st::Xoshiro256pp g(0xBEA7);
  for (int i = 0; i < 40; ++i) {
    const E tree = random_tree(g, 4);
    const auto bindings = random_bindings(g);
    ir::SoftEvaluator<64> walk_ev{ir::EvalConfig::ieee_strict()};
    const double walk = ir::evaluate_tree<double>(tree, walk_ev, bindings);
    const auto tape =
        ir::Tape::cached(tree, {}, ir::TapeOptions::exact_trace());
    ir::SoftEvaluator<64> tape_ev{ir::EvalConfig::ieee_strict()};
    const double got = ir::run_tape<double>(*tape, tape_ev, bindings);
    ASSERT_EQ(std::bit_cast<std::uint64_t>(walk),
              std::bit_cast<std::uint64_t>(got))
        << tree.to_string();
    ASSERT_EQ(walk_ev.flags(), tape_ev.flags()) << tree.to_string();
  }
}

TEST(TapeParity, ShortBindingsKeepThePerNodeQuietNanContract) {
  // Scalar tape paths preserve evaluate_tree's per-node fallback: a
  // variable beyond the span reads quiet NaN (batched execution instead
  // throws BindingWidthError up front — see the batch suite).
  const E t = E::add(E::variable("a", 0), E::variable("far", 5));
  const std::vector<double> bindings = {2.0};
  const ir::Outcome ref = ir::evaluate(t, {}, bindings);
  const ir::Outcome got = ir::execute(ir::Tape::compile(t), bindings);
  EXPECT_EQ(ref.value.bits, got.value.bits);
  EXPECT_EQ(ref.flags, got.flags);
}

// ---------------------------------------------------------------------
// Trace semantics: op sequences and CSE'd-node provenance.
// ---------------------------------------------------------------------

struct RecordedOp {
  const void* node;
  std::uint64_t value_bits;
  unsigned flags;

  bool operator==(const RecordedOp&) const = default;
};

class Recorder final : public ir::TraceSink {
 public:
  void on_op(const E& e, double value, unsigned flags) override {
    ops.push_back({&e.node(), std::bit_cast<std::uint64_t>(value), flags});
  }
  std::vector<RecordedOp> ops;
};

TEST(TapeTrace, ExactTapeReproducesTheTreeWalkOpSequence) {
  st::Xoshiro256pp g(0x17ACE);
  const auto configs = all_configs();
  for (int i = 0; i < 20; ++i) {
    const E tree = random_tree(g, 4);
    const auto bindings = random_bindings(g);
    for (const auto& cfg : configs) {
      Recorder walk;
      const ir::Outcome ref = ir::evaluate(tree, cfg, bindings, &walk);
      Recorder tape;
      const ir::Outcome got = ir::execute(
          ir::Tape::compile(tree, cfg, ir::TapeOptions::exact_trace()),
          bindings, &tape);
      ASSERT_EQ(ref.value.bits, got.value.bits) << tree.to_string();
      ASSERT_EQ(ref.flags, got.flags) << tree.to_string();
      ASSERT_EQ(walk.ops, tape.ops)
          << tree.to_string() << " format " << cfg.format_bits;
    }
  }
}

TEST(TapeTrace, CseTapeTracesSharedNodesOnceWithUnchangedUnion) {
  const E x = E::variable("x", 0);
  const E shared = E::add(x, E::constant(0.1));  // inexact every time
  const E t = E::mul(shared, shared);
  const std::vector<double> bindings = {1.0};

  Recorder walk;
  const ir::Outcome ref = ir::evaluate(t, {}, bindings, &walk);
  ASSERT_EQ(walk.ops.size(), 3u);  // add, add, mul

  Recorder tape;
  const ir::Outcome got =
      ir::execute(ir::Tape::compile(t), bindings, &tape);
  // The shared add fires once; values, flags and the sticky union are
  // unchanged (duplicate subtrees raise identical flags).
  ASSERT_EQ(tape.ops.size(), 2u);
  EXPECT_EQ(tape.ops[0], walk.ops[0]);
  EXPECT_EQ(tape.ops[1], walk.ops[2]);
  EXPECT_EQ(ref.value.bits, got.value.bits);
  EXPECT_EQ(ref.flags, got.flags);
}

}  // namespace
