// Batched IR evaluation: evaluate_many must be row-for-row identical to
// single evaluate() at every thread count and chunking, and its
// memoization must hit on repeated sweeps without changing a bit. These
// tests carry the `parallel` ctest label (via the test_ir_batch binary)
// so the determinism contract is re-checked under TSan.

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "ir/ir.hpp"
#include "parallel/result_cache.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/prng.hpp"

namespace ir = fpq::ir;
namespace pl = fpq::parallel;
namespace st = fpq::stats;
using E = ir::Expr;

namespace {

ir::BindingTable random_table(std::uint64_t seed, std::size_t width,
                              std::size_t rows) {
  st::Xoshiro256pp g(seed);
  ir::BindingTable table;
  table.width = width;
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<double> row(width);
    for (auto& x : row) x = st::uniform_range(g, -1e3, 1e3);
    table.push_row(row);
  }
  return table;
}

// A tree using every variable plus flag-raising operations, so per-row
// flag isolation actually matters.
E probe_tree() {
  const auto x = E::variable("x", 0);
  const auto y = E::variable("y", 1);
  return E::add(E::div(E::constant(1.0), x),
                E::sqrt(E::sub(E::mul(x, y), y)));
}

TEST(BindingTable, ShapeAndRowAccess) {
  ir::BindingTable t;
  t.width = 3;
  EXPECT_EQ(t.rows(), 0u);
  const std::array<double, 3> r0{1.0, 2.0, 3.0};
  const std::array<double, 3> r1{4.0, 5.0, 6.0};
  t.push_row(r0);
  t.push_row(r1);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(1)[0], 4.0);
  EXPECT_EQ(t.row(1).size(), 3u);
}

TEST(BatchEvaluate, MatchesSingleEvaluatePerRow) {
  const E tree = probe_tree();
  const auto table = random_table(0xAB5, 2, 300);
  pl::ThreadPool pool(4);
  ir::BatchOptions opts;
  opts.memoize = false;
  const auto cfg = ir::EvalConfig::ieee_strict();
  const auto batched = ir::evaluate_many(pool, tree, table, cfg, opts);
  ASSERT_EQ(batched.size(), table.rows());
  for (std::size_t r = 0; r < table.rows(); ++r) {
    const auto single = ir::evaluate(tree, cfg, table.row(r));
    ASSERT_EQ(batched[r].value.bits, single.value.bits) << "row " << r;
    ASSERT_EQ(batched[r].flags, single.flags) << "row " << r;
  }
}

TEST(BatchEvaluate, RewriteConfigsMatchSingleEvaluateToo) {
  // The batch path must apply the SAME pipeline rewrites as evaluate().
  const auto x = E::variable("x", 0);
  const auto y = E::variable("y", 1);
  const E tree = E::add(E::add(E::mul(x, y), x), y);  // contractable chain
  const auto table = random_table(0xF00D, 2, 128);
  pl::ThreadPool pool(3);
  ir::EvalConfig cfg;
  cfg.contract_mul_add = true;
  cfg.reassociate = true;
  const auto batched = ir::evaluate_many(pool, tree, table, cfg);
  for (std::size_t r = 0; r < table.rows(); ++r) {
    const auto single = ir::evaluate(tree, cfg, table.row(r));
    ASSERT_EQ(batched[r].value.bits, single.value.bits) << "row " << r;
    ASSERT_EQ(batched[r].flags, single.flags) << "row " << r;
  }
}

TEST(BatchEvaluate, BitIdenticalAtEveryThreadCountAndChunking) {
  const E tree = probe_tree();
  const auto table = random_table(0x5EED, 2, 500);
  const auto cfg = ir::EvalConfig::ieee_strict();
  ir::BatchOptions fine;
  fine.memoize = false;
  fine.min_rows_per_chunk = 1;
  ir::BatchOptions coarse;
  coarse.memoize = false;
  coarse.min_rows_per_chunk = 1000;  // single chunk
  pl::ThreadPool one(1);
  pl::ThreadPool many(8);
  const auto a = ir::evaluate_many(one, tree, table, cfg, fine);
  const auto b = ir::evaluate_many(many, tree, table, cfg, fine);
  const auto c = ir::evaluate_many(many, tree, table, cfg, coarse);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), c.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    ASSERT_TRUE(a[r] == b[r]) << "thread-count divergence at row " << r;
    ASSERT_TRUE(a[r] == c[r]) << "chunking divergence at row " << r;
  }
}

TEST(BatchEvaluate, PerRowFlagsAreIsolated) {
  // Row 0 divides by zero; row 1 is clean. Sharding must not leak row 0's
  // flags into row 1 (each row gets a fresh evaluator).
  const auto x = E::variable("x", 0);
  const E tree = E::div(E::constant(1.0), x);
  ir::BindingTable table;
  table.width = 1;
  const std::array<double, 1> zero{0.0};
  const std::array<double, 1> two{2.0};
  table.push_row(zero);
  table.push_row(two);
  pl::ThreadPool pool(2);
  ir::BatchOptions opts;
  opts.memoize = false;
  const auto out =
      ir::evaluate_many(pool, tree, table, ir::EvalConfig::ieee_strict(), opts);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].flags & fpq::softfloat::kFlagDivByZero, 0u);
  EXPECT_EQ(out[1].flags, 0u);
}

TEST(BatchEvaluate, RepeatedSweepHitsTheMemoCache) {
  // A tree unique to this test, so the global cache's counters move only
  // because of these two calls.
  const auto x = E::variable("x", 0);
  const E tree = E::fma(x, E::constant(0x1.badcafep4), E::constant(42.0));
  const auto table = random_table(0xCAFE, 1, 256);
  pl::ThreadPool pool(4);
  auto& cache = pl::BatchResultCache::global();
  const auto misses_before = cache.misses();
  const auto hits_before = cache.hits();
  const auto cfg = ir::EvalConfig::ieee_strict();
  const auto first = ir::evaluate_many(pool, tree, table, cfg);
  EXPECT_GT(cache.misses(), misses_before) << "first sweep must miss";
  const auto misses_after_first = cache.misses();
  const auto second = ir::evaluate_many(pool, tree, table, cfg);
  EXPECT_GT(cache.hits(), hits_before) << "second sweep must hit";
  EXPECT_EQ(cache.misses(), misses_after_first)
      << "second sweep must not re-execute any chunk";
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t r = 0; r < first.size(); ++r) {
    ASSERT_TRUE(first[r] == second[r]) << "memoized bits differ at row " << r;
  }
}

TEST(BatchEvaluate, DistinctConfigsDoNotShareMemoEntries) {
  // Same tree + bindings under two configs: the second config must MISS
  // (different fingerprint) and produce different bits where rounding
  // direction matters.
  const auto x = E::variable("x", 0);
  const E tree = E::div(E::constant(1.0), E::add(x, E::constant(3.0)));
  const auto table = random_table(0xD15C, 1, 64);
  pl::ThreadPool pool(2);
  ir::EvalConfig nearest;
  ir::EvalConfig down;
  down.rounding = fpq::softfloat::Rounding::kDown;
  EXPECT_NE(nearest.fingerprint(), down.fingerprint());
  const auto a = ir::evaluate_many(pool, tree, table, nearest);
  const auto b = ir::evaluate_many(pool, tree, table, down);
  bool any_differ = false;
  for (std::size_t r = 0; r < a.size(); ++r) {
    any_differ = any_differ || a[r].value.bits != b[r].value.bits;
  }
  EXPECT_TRUE(any_differ) << "rounding mode must reach the memoized path";
}

TEST(BatchEvaluate, EmptyTableIsEmptyResult) {
  pl::ThreadPool pool(2);
  ir::BindingTable empty;
  empty.width = 1;
  const auto out = ir::evaluate_many(pool, probe_tree(), empty,
                                     ir::EvalConfig::ieee_strict());
  EXPECT_TRUE(out.empty());
}

}  // namespace
