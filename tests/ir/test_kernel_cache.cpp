// The BatchResultCache's kernel-variant isolation contract: a chunk
// computed under one KernelVariant must never be served to a run
// executing under another. The parity gates prove the variants agree,
// but the cache's correctness must not DEPEND on that proof — the
// variant is part of BatchKey's identity, and these tests pin that the
// key, its hash, and the execute_batch plumbing all honor it. The tape
// fingerprint, by contrast, names the PROGRAM and must stay
// variant-independent, or resumable sweep manifests would fork per
// machine.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <iterator>

#include "ir/ir.hpp"
#include "parallel/result_cache.hpp"
#include "parallel/thread_pool.hpp"
#include "softfloat/kernels.hpp"
#include "stats/prng.hpp"

namespace ir = fpq::ir;
namespace par = fpq::parallel;
namespace sf = fpq::softfloat;
namespace st = fpq::stats;
using E = ir::Expr;

namespace {

const double kPool[] = {
    0.0,     -0.0,    1.0,    -1.0,   0.5,     3.0,
    0.1,     1.0 / 3, -2.5,   7.25,   1e16,    -1e16,
    1e300,   -1e300,  1e-300, 5e-324, 2.2250738585072014e-308,
    1.0 + 0x1.0p-30, 1.7976931348623157e308};

E poly() {
  const E x = E::variable("x", 0);
  E acc = E::constant(1.25);
  for (const double c : {-0.5, 0.1, 2.0, -1.0 / 3}) {
    acc = E::add(E::mul(acc, x), E::constant(c));
  }
  return acc;
}

ir::BindingTable random_table(std::size_t rows, std::uint64_t seed) {
  st::Xoshiro256pp g(seed);
  ir::BindingTable table;
  table.width = 1;
  for (std::size_t r = 0; r < rows; ++r) {
    table.values.push_back(kPool[st::uniform_below(g, std::size(kPool))]);
  }
  return table;
}

TEST(KernelCacheKey, VariantDistinguishesEqualityAndHash) {
  par::BatchKey a;
  a.tape_fingerprint = 0xFEED'F00D'CAFE'BABEULL;
  a.bindings_hash = 0x1234'5678'9ABC'DEF0ULL;
  a.chunk = 7;
  a.variant = 0;
  par::BatchKey b = a;
  b.variant = 1;
  EXPECT_FALSE(a == b);
  EXPECT_NE(par::BatchKeyHash{}(a), par::BatchKeyHash{}(b));
}

TEST(KernelCacheKey, CacheSeparatesVariantEntries) {
  par::BatchResultCache cache;
  par::BatchKey key;
  key.tape_fingerprint = 0x7EA9;
  key.bindings_hash = 0xB1B2;
  par::BatchChunkResult scalar_payload;
  scalar_payload.outcomes.emplace_back(0x3F80'0000ULL, 0u);
  cache.insert(key, scalar_payload);
  par::BatchKey other = key;
  other.variant = 2;
  EXPECT_FALSE(cache.find(other).has_value());
  const auto back = cache.find(key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->outcomes, scalar_payload.outcomes);
}

TEST(KernelCacheIsolation, CrossVariantRunsNeverShareEntries) {
  par::ThreadPool pool(2);
  auto& cache = par::BatchResultCache::global();
  cache.clear();
  const ir::BindingTable table = random_table(512, 0x5111D);
  ir::EvalConfig cfg;
  cfg.format_bits = 32;  // the format the accelerated kernels cover
  const ir::Tape tape = ir::Tape::compile(poly(), cfg);
  ir::BatchOptions options;
  options.min_rows_per_chunk = 64;

  sf::ScopedKernelVariant portable(sf::KernelVariant::kPortable);
  ASSERT_TRUE(portable.applied());
  const auto fast = ir::execute_batch(pool, tape, table, options);
  EXPECT_EQ(cache.hits(), 0u);
  const std::size_t portable_entries = cache.size();
  EXPECT_GT(portable_entries, 0u);

  // Same tape, same bindings, different variant: the warm cache must be
  // invisible — zero hits, and a fresh set of entries is written.
  {
    sf::ScopedKernelVariant scalar(sf::KernelVariant::kScalar);
    ASSERT_TRUE(scalar.applied());
    const auto slow = ir::execute_batch(pool, tape, table, options);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 2 * portable_entries);
    // The variants still agree on the numbers (the parity claim).
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t r = 0; r < fast.size(); ++r) {
      ASSERT_EQ(fast[r].value.bits, slow[r].value.bits) << "row " << r;
      ASSERT_EQ(fast[r].flags, slow[r].flags) << "row " << r;
    }
  }

  // Back under the variant that warmed the cache, every chunk hits.
  const std::uint64_t misses_before = cache.misses();
  const auto again = ir::execute_batch(pool, tape, table, options);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), misses_before);
  EXPECT_EQ(cache.size(), 2 * portable_entries);
  for (std::size_t r = 0; r < fast.size(); ++r) {
    ASSERT_EQ(fast[r].value.bits, again[r].value.bits) << "row " << r;
  }
  cache.clear();
}

TEST(KernelCacheIsolation, TapeFingerprintIsVariantIndependent) {
  // The fingerprint names the program + numeric config; executing under
  // a different kernel variant must not change it (manifest resumability
  // across machines depends on this).
  ir::EvalConfig cfg;
  cfg.format_bits = 32;
  std::uint64_t ref = 0;
  bool have_ref = false;
  for (const sf::KernelVariant v :
       {sf::KernelVariant::kScalar, sf::KernelVariant::kPortable,
        sf::KernelVariant::kAvx2}) {
    if (!sf::kernel_variant_available(v)) continue;
    sf::ScopedKernelVariant forced(v);
    ASSERT_TRUE(forced.applied());
    const ir::Tape tape = ir::Tape::compile(poly(), cfg);
    if (!have_ref) {
      have_ref = true;
      ref = tape.fingerprint();
    } else {
      EXPECT_EQ(tape.fingerprint(), ref) << sf::kernel_variant_name(v);
    }
  }
}

TEST(KernelCacheIsolation, SharedTapeCacheIgnoresVariantSwitches) {
  // Tape::cached interns compiled PROGRAMS; switching the kernel variant
  // must return the same tape object, not fork per variant.
  ir::Tape::clear_cache();
  ir::EvalConfig cfg;
  cfg.format_bits = 32;
  const E tree = poly();
  sf::ScopedKernelVariant portable(sf::KernelVariant::kPortable);
  const auto first = ir::Tape::cached(tree, cfg);
  {
    sf::ScopedKernelVariant scalar(sf::KernelVariant::kScalar);
    const auto second = ir::Tape::cached(tree, cfg);
    EXPECT_EQ(first.get(), second.get());
  }
  ir::Tape::clear_cache();
}

}  // namespace
