// IR→IR rewrite passes: the rewritten tree's SHAPE (contraction fuses the
// exact patterns the emulated pipeline always fused, reassociation builds
// the same pairwise tree), identity behavior (untouched trees come back
// pointer-equal), and the semantics question the optimization quiz asks:
// rewrites change results exactly when the quiz says they may.

#include <gtest/gtest.h>

#include <array>
#include <span>

#include "ir/ir.hpp"
#include "optprobe/emulated_pipeline.hpp"
#include "softfloat/env.hpp"

namespace ir = fpq::ir;
namespace sf = fpq::softfloat;
namespace opt = fpq::opt;
using E = ir::Expr;
using K = ir::ExprKind;

namespace {

TEST(ContractMulAdd, FusesLeftMulOfAdd) {
  const auto e = E::add(E::mul(E::variable("a", 0), E::variable("b", 1)),
                        E::variable("c", 2));
  const auto r = ir::contract_mul_add(e);
  ASSERT_EQ(r.node().kind, K::kFma);
  EXPECT_EQ(r.to_string(), "fma(a, b, c)");
}

TEST(ContractMulAdd, FusesRightMulOfAdd) {
  const auto e = E::add(E::variable("c", 2),
                        E::mul(E::variable("a", 0), E::variable("b", 1)));
  const auto r = ir::contract_mul_add(e);
  ASSERT_EQ(r.node().kind, K::kFma);
  // add(c, mul(a,b)) fuses as fma(a, b, c) — multiplicands first, exactly
  // as the emulated pipeline always evaluated it.
  EXPECT_EQ(r.to_string(), "fma(a, b, c)");
}

TEST(ContractMulAdd, SubFusesOnlyLeftMulWithNegatedAddend) {
  const auto sub_left =
      E::sub(E::mul(E::variable("a", 0), E::variable("b", 1)),
             E::variable("c", 2));
  const auto r = ir::contract_mul_add(sub_left);
  ASSERT_EQ(r.node().kind, K::kFma);
  // The addend is the sign-bit flip of c, NOT sub(0, c).
  EXPECT_EQ(r.node().children[2].node().kind, K::kNeg);
  // c - a*b does NOT fuse (the pipeline never rewrote that side).
  const auto sub_right =
      E::sub(E::variable("c", 2),
             E::mul(E::variable("a", 0), E::variable("b", 1)));
  EXPECT_EQ(ir::contract_mul_add(sub_right).node().kind, K::kSub);
}

TEST(ContractMulAdd, UntouchedTreeIsPointerEqual) {
  const auto e = E::div(E::add(E::variable("x", 0), E::constant(1.0)),
                        E::constant(3.0));
  EXPECT_TRUE(ir::contract_mul_add(e) == e)
      << "identity rewrites return the interned tree itself";
}

TEST(ContractMulAdd, RewritesInsideSubtrees) {
  const auto inner = E::add(E::mul(E::variable("a", 0), E::variable("b", 1)),
                            E::constant(1.0));
  const auto e = E::sqrt(E::div(inner, E::constant(2.0)));
  const auto r = ir::contract_mul_add(e);
  EXPECT_EQ(r.node().children[0].node().children[0].node().kind, K::kFma);
}

TEST(ReassociateSums, ChainOfFourBecomesBalancedTree) {
  const auto chain = E::sum({1.0, 2.0, 3.0, 4.0});  // ((1+2)+3)+4
  const auto r = ir::reassociate_sums(chain);
  // Pairwise with mid = lo + (hi-lo)/2: (1+2) + (3+4).
  EXPECT_EQ(r.to_string(), "((1 + 2) + (3 + 4))");
}

TEST(ReassociateSums, ChainOfThreeSplitsOneTwo) {
  const auto chain = E::sum({1.0, 2.0, 3.0});  // (1+2)+3
  const auto r = ir::reassociate_sums(chain);
  // mid = 0 + 3/2 = 1: 1 + (2+3).
  EXPECT_EQ(r.to_string(), "(1 + (2 + 3))");
}

TEST(ReassociateSums, PlainTwoAddendAddIsUntouched) {
  const auto e = E::add(E::constant(1.0), E::constant(2.0));
  EXPECT_TRUE(ir::reassociate_sums(e) == e);
}

TEST(PipelineRewrite, ReassociationTakesPrecedenceAtChainHead) {
  // a*b + c + d is a 3-addend chain whose first addend is a mul. With
  // both passes on, the chain head reassociates and NO fma appears at the
  // synthesized adds — the precedence the divergence demos pin down.
  const auto chain =
      E::add(E::add(E::mul(E::variable("a", 0), E::variable("b", 1)),
                    E::variable("c", 2)),
             E::variable("d", 3));
  const auto r = ir::pipeline_rewrite(chain, /*contract=*/true,
                                      /*reassociate=*/true);
  EXPECT_EQ(r.to_string(), "((a * b) + (c + d))")
      << "pairwise over 3 addends, multiply left un-fused";
  // With only contraction on, the very same tree DOES fuse.
  const auto c = ir::pipeline_rewrite(chain, true, false);
  EXPECT_EQ(c.node().children[0].node().kind, K::kFma);
}

TEST(PipelineRewrite, TwoAddendChainStillContractsUnderBothFlags) {
  const auto e = E::add(E::mul(E::variable("a", 0), E::variable("b", 1)),
                        E::variable("c", 2));
  const auto r = ir::pipeline_rewrite(e, true, true);
  EXPECT_EQ(r.node().kind, K::kFma)
      << "a 2-addend chain falls through to contraction";
}

TEST(PipelineRewrite, NoFlagsIsIdentity) {
  const auto e = E::sum({1.0, 2.0, 3.0, 4.0});
  EXPECT_TRUE(ir::pipeline_rewrite(e, false, false) == e);
}

// -- Semantics: rewrites change bits exactly when the quiz says so ------

ir::Outcome run(const E& e, bool contract, bool reassociate) {
  ir::EvalConfig cfg;
  cfg.contract_mul_add = contract;
  cfg.reassociate = reassociate;
  return ir::evaluate(e, cfg);
}

TEST(RewriteSemantics, ContractionChangesContractionSensitiveDemo) {
  // The optimization quiz's "-O3 may contract to MADD" ground truth:
  // x*x - x_squared_rounded is 0 strictly, nonzero contracted.
  const auto e = opt::demo_contraction_sensitive();
  const auto strict = run(e, false, false);
  const auto fused = run(e, true, false);
  EXPECT_NE(strict.value.bits, fused.value.bits);
  EXPECT_EQ(sf::to_native(strict.value), 0.0);
}

TEST(RewriteSemantics, ContractionPreservesExactArithmetic) {
  // 2*3 + 4 is exact either way: fusing must NOT change the answer —
  // contraction is only observable through the eliminated rounding.
  const auto e = E::add(E::mul(E::constant(2.0), E::constant(3.0)),
                        E::constant(4.0));
  EXPECT_EQ(run(e, false, false).value.bits, run(e, true, false).value.bits);
}

TEST(RewriteSemantics, ReassociationChangesAbsorptionChain) {
  // 1 + u + u + u with u = 2^-53 (half an ulp of 1): left-to-right, every
  // u is absorbed by ties-to-even and the sum stays exactly 1; pairwise,
  // u + u = 2^-52 is a whole ulp and survives — the "-ffast-math may
  // change results" truth as a two-answer experiment.
  const auto e = E::sum({1.0, 0x1.0p-53, 0x1.0p-53, 0x1.0p-53});
  const auto strict = run(e, false, false);
  const auto fast = run(e, false, true);
  EXPECT_EQ(sf::to_native(strict.value), 1.0);
  EXPECT_EQ(sf::to_native(fast.value), 1.0 + 0x1.0p-52);
  EXPECT_NE(strict.value.bits, fast.value.bits);
}

TEST(RewriteSemantics, ReassociationPreservesExactChains) {
  const auto e = E::sum({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(run(e, false, false).value.bits,
            run(e, false, true).value.bits);
}

TEST(RewriteSemantics, OptimizedTreeIsWhatThePipelineEvaluates) {
  // Evaluating the REWRITTEN tree under a strict config gives the same
  // bits as evaluating the original under the optimized config: the
  // rewrite pass IS the optimization.
  const auto e = opt::demo_contraction_sensitive();
  const auto direct = run(e, true, false);
  const auto rewritten = run(ir::pipeline_rewrite(e, true, false),
                             false, false);
  EXPECT_EQ(direct.value.bits, rewritten.value.bits);
  EXPECT_EQ(direct.flags, rewritten.flags);
}

TEST(RewriteSemantics, FlushSensitiveDemoDivergesUnderFtz) {
  const auto d = opt::diverge(opt::demo_flush_sensitive(),
                              opt::PipelineConfig::fast_math_like());
  EXPECT_TRUE(d.value_differs || d.flags_differ);
}

}  // namespace
