// The batched tape executor's contract: SoA execution over the thread
// pool is bit- and flag-identical to per-row reference evaluation, at
// EVERY thread count; memoization keys on the tape's content fingerprint
// and never changes results; short binding tables fail structurally
// (BindingWidthError) instead of quiet-NaN-poisoning rows; and the native
// SoA kernels reproduce the NativeEvaluator tree walks bitwise.

#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

#include "ir/ir.hpp"
#include "parallel/result_cache.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/prng.hpp"

namespace ir = fpq::ir;
namespace par = fpq::parallel;
namespace sf = fpq::softfloat;
namespace st = fpq::stats;
using E = ir::Expr;

namespace {

const double kPool[] = {
    0.0,     -0.0,    1.0,    -1.0,   0.5,     3.0,
    0.1,     1.0 / 3, -2.5,   7.25,   1e16,    -1e16,
    1e300,   -1e300,  1e-300, 5e-324, 2.2250738585072014e-308,
    1.0 + 0x1.0p-30, 1.7976931348623157e308};

E horner_poly() {
  // Degree-4 Horner over x: enough structure to need several registers
  // and raise inexact/overflow/underflow across the operand pool.
  const E x = E::variable("x", 0);
  E acc = E::constant(1.25);
  const double coeffs[] = {-0.5, 0.1, 2.0, -1.0 / 3};
  for (const double c : coeffs) {
    acc = E::add(E::mul(acc, x), E::constant(c));
  }
  return acc;
}

E two_var_tree() {
  const E x = E::variable("x", 0);
  const E y = E::variable("y", 1);
  return E::add(E::div(E::sqrt(E::mul(x, x)), E::add(y, E::constant(0.1))),
                E::fma(x, y, E::neg(x)));
}

ir::BindingTable random_table(std::size_t rows, std::size_t width,
                              std::uint64_t seed) {
  st::Xoshiro256pp g(seed);
  ir::BindingTable table;
  table.width = width;
  for (std::size_t r = 0; r < rows * width; ++r) {
    table.values.push_back(kPool[st::uniform_below(g, std::size(kPool))]);
  }
  return table;
}

std::vector<ir::EvalConfig> batch_configs() {
  std::vector<ir::EvalConfig> out;
  for (const int fmt : {16, 32, 64, sf::kBFloat16}) {
    ir::EvalConfig cfg;
    cfg.format_bits = fmt;
    out.push_back(cfg);
    ir::EvalConfig fast;
    fast.format_bits = fmt;
    fast.rounding = sf::Rounding::kTowardZero;
    fast.contract_mul_add = true;
    fast.reassociate = true;
    fast.flush_to_zero = true;
    fast.denormals_are_zero = true;
    out.push_back(fast);
  }
  return out;
}

TEST(TapeBatch, MatchesPerRowEvaluateAcrossFormatsAndConfigs) {
  par::ThreadPool pool(4);
  const ir::BindingTable table = random_table(257, 2, 0xB17C);
  ir::BatchOptions options;
  options.memoize = false;
  for (const E& tree : {two_var_tree(), horner_poly()}) {
    for (const auto& cfg : batch_configs()) {
      const ir::Tape tape = ir::Tape::compile(tree, cfg);
      const auto got = ir::execute_batch(pool, tape, table, options);
      ASSERT_EQ(got.size(), table.rows());
      for (std::size_t r = 0; r < table.rows(); ++r) {
        const ir::Outcome ref = ir::evaluate(tree, cfg, table.row(r));
        ASSERT_EQ(ref.value.bits, got[r].value.bits)
            << "row " << r << " format " << cfg.format_bits;
        ASSERT_EQ(ref.flags, got[r].flags)
            << "row " << r << " format " << cfg.format_bits;
      }
    }
  }
}

TEST(TapeBatch, BitIdenticalAtOneTwoFourEightThreads) {
  const ir::BindingTable table = random_table(1023, 1, 0xDE7);
  const ir::Tape tape = ir::Tape::compile(horner_poly());
  ir::BatchOptions options;
  options.memoize = false;
  options.min_rows_per_chunk = 32;
  par::ThreadPool one(1);
  const auto ref = ir::execute_batch(one, tape, table, options);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    par::ThreadPool pool(threads);
    const auto got = ir::execute_batch(pool, tape, table, options);
    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t r = 0; r < ref.size(); ++r) {
      ASSERT_EQ(ref[r].value.bits, got[r].value.bits)
          << "threads " << threads << " row " << r;
      ASSERT_EQ(ref[r].flags, got[r].flags)
          << "threads " << threads << " row " << r;
    }
  }
}

TEST(TapeBatch, SecondSweepHitsTheFingerprintKeyedCache) {
  par::ThreadPool pool(4);
  auto& cache = par::BatchResultCache::global();
  cache.clear();
  const ir::BindingTable table = random_table(512, 1, 0xCAC4E);
  const ir::Tape tape = ir::Tape::compile(horner_poly());
  const auto first = ir::execute_batch(pool, tape, table);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_GT(cache.stats().entries, 0u);
  const auto second = ir::execute_batch(pool, tape, table);
  EXPECT_GT(cache.hits(), 0u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t r = 0; r < first.size(); ++r) {
    ASSERT_EQ(first[r].value.bits, second[r].value.bits);
    ASSERT_EQ(first[r].flags, second[r].flags);
  }
  // A different rounding mode compiles a different tape, whose
  // fingerprint must not collide with the first one's entries.
  ir::EvalConfig upward;
  upward.rounding = sf::Rounding::kUp;
  const ir::Tape other = ir::Tape::compile(horner_poly(), upward);
  ASSERT_NE(other.fingerprint(), tape.fingerprint());
  const std::uint64_t hits_before = cache.hits();
  (void)ir::execute_batch(pool, other, table);
  EXPECT_EQ(cache.hits(), hits_before);
  cache.clear();
}

TEST(TapeBatch, EvaluateManyRidesTheTapeAndStillMatches) {
  par::ThreadPool pool(4);
  par::BatchResultCache::global().clear();
  const ir::BindingTable table = random_table(300, 2, 0x914D);
  const E tree = two_var_tree();
  for (const auto& cfg : batch_configs()) {
    const auto many = ir::evaluate_many(pool, tree, table, cfg);
    for (std::size_t r = 0; r < table.rows(); ++r) {
      const ir::Outcome ref = ir::evaluate(tree, cfg, table.row(r));
      ASSERT_EQ(ref.value.bits, many[r].value.bits) << "row " << r;
      ASSERT_EQ(ref.flags, many[r].flags) << "row " << r;
    }
  }
  par::BatchResultCache::global().clear();
}

TEST(TapeBatch, ShortTableThrowsStructuredWidthError) {
  par::ThreadPool pool(2);
  const E tree = two_var_tree();  // needs width 2
  const ir::BindingTable narrow = random_table(64, 1, 0x5407);
  try {
    (void)ir::evaluate_many(pool, tree, narrow);
    FAIL() << "expected BindingWidthError";
  } catch (const ir::BindingWidthError& e) {
    EXPECT_EQ(e.required, 2u);
    EXPECT_EQ(e.provided, 1u);
  }
  const ir::Tape tape = ir::Tape::compile(tree);
  std::vector<ir::Outcome> out(narrow.rows());
  EXPECT_THROW(ir::execute_range(tape, narrow, 0, narrow.rows(), out),
               ir::BindingWidthError);
  // An empty table never validates: there is nothing to evaluate.
  const ir::BindingTable empty;
  EXPECT_TRUE(ir::evaluate_many(pool, tree, empty).empty());
}

TEST(TapeBatch, NativeKernelsMatchTheNativeTreeWalks) {
  const ir::BindingTable table = random_table(200, 2, 0xFA57);
  const E tree = two_var_tree();
  const auto tape =
      ir::Tape::cached(tree, {}, ir::TapeOptions::exact_trace());
  std::vector<double> batch64(table.rows());
  ir::execute_range_native64(*tape, table, 0, table.rows(), batch64);
  std::vector<double> batch32(table.rows());
  {
    ir::EvalConfig cfg32;
    cfg32.format_bits = 32;
    const auto tape32 =
        ir::Tape::cached(tree, cfg32, ir::TapeOptions::exact_trace());
    ir::execute_range_native32(*tape32, table, 0, table.rows(), batch32);
  }
  for (std::size_t r = 0; r < table.rows(); ++r) {
    ir::NativeEvaluator64 n64;
    const double ref64 = ir::evaluate_tree<double>(tree, n64, table.row(r));
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ref64),
              std::bit_cast<std::uint64_t>(batch64[r]))
        << "row " << r;
    ir::NativeEvaluator32 n32;
    const double ref32 = ir::evaluate_tree<double>(tree, n32, table.row(r));
    ASSERT_EQ(std::bit_cast<std::uint64_t>(ref32),
              std::bit_cast<std::uint64_t>(batch32[r]))
        << "row " << r;
  }
}

TEST(TapeBatch, CacheCapacityEvictsAndCounts) {
  par::BatchResultCache cache;
  cache.set_capacity(32);
  par::BatchChunkResult payload;
  payload.outcomes.emplace_back(0x3FF0000000000000ULL, 0u);
  for (std::uint32_t i = 0; i < 512; ++i) {
    par::BatchKey key;
    key.tape_fingerprint = 0x7EA9 + i;
    key.bindings_hash = i * 0x9E3779B97F4A7C15ULL;
    key.chunk = i;
    cache.insert(key, payload);
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  // Per-stripe bound is capacity/16 = 2, so 16 stripes * 2 entries max.
  EXPECT_LE(stats.entries, 32u);
  cache.set_capacity(0);
}

}  // namespace
