// Format conversions and integer conversions.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace st = fpq::stats;

namespace {

using F16 = sf::Float16;
using F32 = sf::Float32;
using F64 = sf::Float64;

TEST(Convert, WideningIsExactForEveryBinary16Value) {
  // Exhaustive: every one of the 65536 binary16 encodings widens to
  // binary32 and back without change (NaNs keep their class).
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 h{static_cast<std::uint16_t>(raw)};
    sf::Env env;
    const F32 widened = sf::convert<32>(h, env);
    if (!h.is_signaling_nan()) {
      EXPECT_EQ(env.flags() & ~sf::kFlagDenormalInput, 0u)
          << "widening must be exact, raw=0x" << std::hex << raw;
    }
    sf::Env env2;
    const F16 back = sf::convert<16>(widened, env2);
    if (h.is_nan()) {
      EXPECT_TRUE(back.is_nan());
    } else {
      EXPECT_EQ(back.bits, h.bits) << "raw=0x" << std::hex << raw;
      EXPECT_EQ(env2.flags() & ~sf::kFlagDenormalInput, 0u);
    }
  }
}

TEST(Convert, WideningBinary16ToBinary64RoundTrips) {
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 h{static_cast<std::uint16_t>(raw)};
    sf::Env env;
    const F64 widened = sf::convert<64>(h, env);
    sf::Env env2;
    const F16 back = sf::convert<16>(widened, env2);
    if (h.is_nan()) {
      EXPECT_TRUE(back.is_nan());
    } else {
      EXPECT_EQ(back.bits, h.bits) << "raw=0x" << std::hex << raw;
    }
  }
}

TEST(Convert, KnownBinary16Values) {
  sf::Env env;
  // 1.0, 65504 (max), 2^-14 (min normal), 2^-24 (min subnormal), 0.1.
  EXPECT_EQ(sf::to_native(sf::convert<64>(F16{std::uint16_t{0x3C00}}, env)),
            1.0);
  EXPECT_EQ(sf::to_native(sf::convert<64>(F16::max_finite(), env)), 65504.0);
  EXPECT_EQ(sf::to_native(sf::convert<64>(F16::min_normal(), env)),
            6.103515625e-05);
  EXPECT_EQ(sf::to_native(sf::convert<64>(F16::min_subnormal(), env)),
            5.9604644775390625e-08);
  // 0.1 narrows to 0x2E66 in binary16 (0.0999755859375).
  const F16 tenth = sf::convert<16>(sf::from_native(0.1), env);
  EXPECT_EQ(tenth.bits, 0x2E66u);
}

TEST(Convert, NarrowingOverflowsToInfinity) {
  sf::Env env;
  const F16 r = sf::convert<16>(sf::from_native(1e5), env);  // > 65504
  EXPECT_TRUE(r.is_infinity());
  EXPECT_TRUE(env.test(sf::kFlagOverflow));
  EXPECT_TRUE(env.test(sf::kFlagInexact));

  sf::Env rz(sf::Rounding::kTowardZero);
  EXPECT_EQ(sf::convert<16>(sf::from_native(1e5), rz).bits,
            F16::max_finite().bits)
      << "toward-zero clamps to 65504 instead";
}

TEST(Convert, NarrowingUnderflowsToSubnormalsAndZero) {
  sf::Env env;
  const F16 sub = sf::convert<16>(sf::from_native(1e-7), env);
  EXPECT_TRUE(sub.is_subnormal());
  EXPECT_TRUE(env.test(sf::kFlagUnderflow));

  sf::Env env2;
  const F16 z = sf::convert<16>(sf::from_native(1e-12), env2);
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(env2.test(sf::kFlagUnderflow));
  EXPECT_TRUE(env2.test(sf::kFlagInexact));
}

TEST(Convert, NaNPayloadSurvivesWideningAndQuietsSignaling) {
  sf::Env env;
  const F32 snan = F32::signaling_nan();
  const F64 widened = sf::convert<64>(snan, env);
  EXPECT_TRUE(widened.is_quiet_nan());
  EXPECT_TRUE(env.test(sf::kFlagInvalid));

  sf::Env env2;
  const F64 qnan = F64::quiet_nan();
  EXPECT_TRUE(sf::convert<32>(qnan, env2).is_quiet_nan());
  EXPECT_FALSE(env2.test(sf::kFlagInvalid));
}

TEST(Convert, SignsSurviveConversion) {
  sf::Env env;
  EXPECT_TRUE(sf::convert<16>(sf::from_native(-0.0), env).sign());
  EXPECT_TRUE(sf::convert<16>(sf::from_native(-0.0), env).is_zero());
  EXPECT_TRUE(sf::convert<64>(F16::infinity(true), env).sign());
}

TEST(Convert, FromInt64ExactSmallIntegers) {
  sf::Env env;
  for (std::int64_t v : {0LL, 1LL, -1LL, 42LL, -65504LL, 1048576LL}) {
    const F64 r = sf::from_int64<64>(v, env);
    EXPECT_EQ(sf::to_native(r), static_cast<double>(v)) << v;
  }
  EXPECT_EQ(env.flags(), 0u);
}

TEST(Convert, FromInt64RoundsWhenTooWide) {
  sf::Env env;
  const std::int64_t big = (std::int64_t{1} << 53) + 1;  // not representable
  const F64 r = sf::from_int64<64>(big, env);
  EXPECT_TRUE(env.test(sf::kFlagInexact));
  EXPECT_EQ(sf::to_native(r), 9007199254740992.0);
}

TEST(Convert, FromInt64MatchesNativeCast) {
  st::Xoshiro256pp g(0x1277);
  sf::Env env;
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<std::int64_t>(g());
    const F64 r = sf::from_int64<64>(v, env);
    EXPECT_EQ(sf::to_native(r), static_cast<double>(v)) << v;
  }
}

TEST(Convert, ToInt64TruncationAndRounding) {
  sf::Env rz(sf::Rounding::kTowardZero);
  EXPECT_EQ(sf::to_int64(sf::from_native(2.75), rz), 2);
  EXPECT_EQ(sf::to_int64(sf::from_native(-2.75), rz), -2);
  EXPECT_TRUE(rz.test(sf::kFlagInexact));

  sf::Env rn;
  EXPECT_EQ(sf::to_int64(sf::from_native(2.5), rn), 2) << "ties to even";
  EXPECT_EQ(sf::to_int64(sf::from_native(3.5), rn), 4);
  EXPECT_EQ(sf::to_int64(sf::from_native(-2.5), rn), -2);

  sf::Env ru(sf::Rounding::kUp);
  EXPECT_EQ(sf::to_int64(sf::from_native(2.25), ru), 3);
  sf::Env rd(sf::Rounding::kDown);
  EXPECT_EQ(sf::to_int64(sf::from_native(-2.25), rd), -3);
}

TEST(Convert, ToInt64SpecialsRaiseInvalid) {
  const auto min64 = std::numeric_limits<std::int64_t>::min();
  const auto max64 = std::numeric_limits<std::int64_t>::max();
  {
    sf::Env env;
    EXPECT_EQ(sf::to_int64(F64::quiet_nan(), env), min64);
    EXPECT_TRUE(env.test(sf::kFlagInvalid));
  }
  {
    sf::Env env;
    EXPECT_EQ(sf::to_int64(F64::infinity(), env), max64);
    EXPECT_TRUE(env.test(sf::kFlagInvalid));
  }
  {
    sf::Env env;
    EXPECT_EQ(sf::to_int64(F64::infinity(true), env), min64);
    EXPECT_TRUE(env.test(sf::kFlagInvalid));
  }
  {
    sf::Env env;
    EXPECT_EQ(sf::to_int64(sf::from_native(1e300), env), max64);
    EXPECT_TRUE(env.test(sf::kFlagInvalid));
  }
}

TEST(Convert, ToInt64Boundaries) {
  sf::Env env;
  // -2^63 is exactly representable and converts cleanly.
  EXPECT_EQ(sf::to_int64(sf::from_native(-9223372036854775808.0), env),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_FALSE(env.test(sf::kFlagInvalid));
  // +2^63 overflows int64.
  sf::Env env2;
  EXPECT_EQ(sf::to_int64(sf::from_native(9223372036854775808.0), env2),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_TRUE(env2.test(sf::kFlagInvalid));
}

TEST(Convert, RoundTripInt64ThroughBinary64) {
  st::Xoshiro256pp g(0x1278);
  for (int i = 0; i < 20000; ++i) {
    // 52-bit integers survive the round trip exactly.
    const auto v =
        static_cast<std::int64_t>(st::uniform_below(g, 1ULL << 52)) -
        (1LL << 51);
    sf::Env env;
    const F64 f = sf::from_int64<64>(v, env);
    EXPECT_EQ(sf::to_int64(f, env), v);
    EXPECT_EQ(env.flags(), 0u) << v;
  }
}

TEST(Convert, NarrowDoubleThroughFloatDiffersFromDirect) {
  // Double rounding through an intermediate format can change the answer:
  // choose a double halfway pattern that rounds differently via float.
  // x = 1 + 2^-24 + 2^-45: direct to binary16 vs via binary32.
  const double x = 1.0 + std::ldexp(1.0, -11) + std::ldexp(1.0, -22);
  sf::Env env;
  const F16 direct = sf::convert<16>(sf::from_native(x), env);
  const F32 inter = sf::convert<32>(sf::from_native(x), env);
  const F16 via = sf::convert<16>(inter, env);
  // 1 + 2^-11 + 2^-22: to binary16 (p=11): tie-ish above 1+2^-11?
  // Direct: frac beyond 10 bits is 2^-11 + 2^-22 > half ulp(=2^-11)/... the
  // key assertion is that both paths produce values within one ulp and the
  // test documents whether they differ.
  EXPECT_TRUE(direct.bits == via.bits || direct.bits + 1 == via.bits ||
              via.bits + 1 == direct.bits);
}

}  // namespace
