// Algebraic property sweeps over random operands: which real-arithmetic
// laws floating point keeps, and which it provably loses — the exact
// subject matter of the paper's core quiz, verified as properties of the
// engine rather than of human belief.

#include <gtest/gtest.h>

#include <cstdint>

#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace st = fpq::stats;

namespace {

using F64 = sf::Float64;

F64 d(double x) { return sf::from_native(x); }

std::uint64_t gen_any(st::Xoshiro256pp& g) { return g(); }

std::uint64_t gen_nonnan(st::Xoshiro256pp& g) {
  for (;;) {
    const std::uint64_t bits = g();
    if (!F64{bits}.is_nan()) return bits;
  }
}

constexpr int kSweep = 20000;

TEST(Properties, AdditionIsCommutativeEvenForSpecials) {
  // Core quiz "Commutativity": value-level commutativity holds; with NaNs
  // the *payload* may differ but the class does not.
  st::Xoshiro256pp g(0xC0331);
  for (int i = 0; i < kSweep; ++i) {
    const F64 a{gen_any(g)}, b{gen_any(g)};
    sf::Env e1, e2;
    const F64 ab = sf::add(a, b, e1);
    const F64 ba = sf::add(b, a, e2);
    if (ab.is_nan()) {
      EXPECT_TRUE(ba.is_nan());
    } else {
      EXPECT_EQ(ab.bits, ba.bits)
          << sf::describe(a) << " + " << sf::describe(b);
    }
    EXPECT_EQ(e1.flags(), e2.flags());
  }
}

TEST(Properties, MultiplicationIsCommutative) {
  st::Xoshiro256pp g(0xC0332);
  for (int i = 0; i < kSweep; ++i) {
    const F64 a{gen_any(g)}, b{gen_any(g)};
    sf::Env e1, e2;
    const F64 ab = sf::mul(a, b, e1);
    const F64 ba = sf::mul(b, a, e2);
    if (ab.is_nan()) {
      EXPECT_TRUE(ba.is_nan());
    } else {
      EXPECT_EQ(ab.bits, ba.bits);
    }
    EXPECT_EQ(e1.flags(), e2.flags());
  }
}

TEST(Properties, AssociativityFailsMeasurablyOften) {
  // Core quiz "Associativity": count how often (a+b)+c != a+(b+c) over
  // random normal operands — it must fail for a sizeable fraction.
  st::Xoshiro256pp g(0xA5501);
  // Moderate exponents: with fully random exponents one operand dominates
  // and both association orders collapse to it.
  auto gen_moderate = [&g] {
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = 1023 - 8 + st::uniform_below(g, 16);
    const std::uint64_t sign = g() & 0x8000000000000000ULL;
    return F64{sign | (exp << 52) | frac};
  };
  int mismatches = 0;
  int comparable = 0;
  for (int i = 0; i < kSweep; ++i) {
    const F64 a = gen_moderate(), b = gen_moderate(), c = gen_moderate();
    sf::Env env;
    const F64 left = sf::add(sf::add(a, b, env), c, env);
    const F64 right = sf::add(a, sf::add(b, c, env), env);
    if (left.is_nan() || right.is_nan()) continue;
    ++comparable;
    if (left.bits != right.bits) ++mismatches;
  }
  ASSERT_GT(comparable, kSweep / 2);
  EXPECT_GT(mismatches, comparable / 20)
      << "associativity should fail for >5% of random triples";
}

TEST(Properties, DistributivityFailsMeasurablyOften) {
  st::Xoshiro256pp g(0xD1507);
  // Moderate exponents so both sides stay finite and the roundings of
  // (b+c), a*b and a*c actually interact.
  auto gen_moderate = [&g] {
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = 1023 - 8 + st::uniform_below(g, 16);
    const std::uint64_t sign = g() & 0x8000000000000000ULL;
    return F64{sign | (exp << 52) | frac};
  };
  int mismatches = 0;
  int comparable = 0;
  for (int i = 0; i < kSweep; ++i) {
    const F64 a = gen_moderate(), b = gen_moderate(), c = gen_moderate();
    sf::Env env;
    const F64 left = sf::mul(a, sf::add(b, c, env), env);
    const F64 right =
        sf::add(sf::mul(a, b, env), sf::mul(a, c, env), env);
    if (left.is_nan() || right.is_nan()) continue;
    ++comparable;
    if (left.bits != right.bits) ++mismatches;
  }
  ASSERT_GT(comparable, kSweep / 4);
  EXPECT_GT(mismatches, comparable / 20);
}

TEST(Properties, SubtractionOfEqualsIsZeroForFinite) {
  st::Xoshiro256pp g(0x5E10);
  for (int i = 0; i < kSweep; ++i) {
    const F64 a{gen_nonnan(g)};
    if (!a.is_finite()) continue;
    sf::Env env;
    EXPECT_TRUE(sf::sub(a, a, env).is_zero()) << sf::describe(a);
  }
}

TEST(Properties, SquareIsNeverNegative) {
  // Core quiz "Square": for every non-NaN x, x*x has a clear sign bit.
  st::Xoshiro256pp g(0x50AE);
  for (int i = 0; i < kSweep; ++i) {
    const F64 a{gen_nonnan(g)};
    sf::Env env;
    const F64 sq = sf::mul(a, a, env);
    EXPECT_FALSE(sq.sign()) << sf::describe(a);
    EXPECT_FALSE(sq.is_nan()) << sf::describe(a);
  }
}

TEST(Properties, SqrtOfSquareWithinOneUlpOfAbs) {
  st::Xoshiro256pp g(0x5C27);
  for (int i = 0; i < kSweep; ++i) {
    // Keep exponents small enough that the square neither overflows nor
    // slips into the subnormal range.
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = 1023 - 100 + st::uniform_below(g, 200);
    const F64 a{(exp << 52) | frac};
    sf::Env env;
    const F64 back = sf::sqrt(sf::mul(a, a, env), env);
    // Two roundings: |back - a| <= 1 ulp.
    EXPECT_TRUE(back.bits == a.bits || back.bits == sf::next_up(a).bits ||
                back.bits == sf::next_down(a).bits)
        << sf::describe(a) << " -> " << sf::describe(back);
  }
}

TEST(Properties, SqrtIsMonotone) {
  st::Xoshiro256pp g(0x3010);
  for (int i = 0; i < kSweep; ++i) {
    const std::uint64_t bits = g() & 0x7FEFFFFFFFFFFFFFULL;  // finite >= 0
    const F64 a{bits};
    const F64 b = sf::next_up(a);
    sf::Env env;
    const F64 ra = sf::sqrt(a, env);
    const F64 rb = sf::sqrt(b, env);
    EXPECT_TRUE(sf::total_order(ra, rb)) << sf::describe(a);
  }
}

TEST(Properties, FmaMatchesExactMulWhenAddendZero) {
  st::Xoshiro256pp g(0xF3A9);
  for (int i = 0; i < kSweep; ++i) {
    const F64 a{gen_nonnan(g)}, b{gen_nonnan(g)};
    sf::Env e1, e2;
    const F64 fused = sf::fma(a, b, F64::zero(), e1);
    const F64 plain = sf::mul(a, b, e2);
    if (fused.is_nan()) {
      EXPECT_TRUE(plain.is_nan());
      continue;
    }
    if (plain.is_zero() && plain.sign()) {
      // -0 + +0 = +0: the only sign difference between fma(a,b,0) and mul.
      EXPECT_TRUE(fused.is_zero());
    } else {
      EXPECT_EQ(fused.bits, plain.bits)
          << sf::describe(a) << " * " << sf::describe(b);
    }
  }
}

TEST(Properties, FmaResidualRecoversRoundingError) {
  // fma(a, b, -round(a*b)) is the exact rounding error of the multiply —
  // the key identity behind double-double arithmetic (only valid where the
  // exact error is representable: keep exponents moderate).
  st::Xoshiro256pp g(0xE1107);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t fa = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t fb = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t ea = 1023 - 15 + st::uniform_below(g, 30);
    const std::uint64_t eb = 1023 - 15 + st::uniform_below(g, 30);
    const F64 a{(ea << 52) | fa};
    const F64 b{(eb << 52) | fb};
    sf::Env env;
    const F64 prod = sf::mul(a, b, env);
    sf::Env env2;
    const F64 residual = sf::fma(a, b, prod.negated(), env2);
    EXPECT_FALSE(env2.test(sf::kFlagInexact))
        << "the residual must be exact: " << sf::describe(a) << " * "
        << sf::describe(b);
    if (!env.test(sf::kFlagInexact)) {
      EXPECT_TRUE(residual.is_zero());
    }
  }
}

TEST(Properties, CompareAgreesWithSubtractionSign) {
  st::Xoshiro256pp g(0xC03B4);
  for (int i = 0; i < kSweep; ++i) {
    const F64 a{gen_nonnan(g)}, b{gen_nonnan(g)};
    sf::Env env;
    const sf::Ordering ord = sf::compare_quiet(a, b, env);
    sf::Env env2;
    const F64 diff = sf::sub(a, b, env2);
    if (diff.is_nan()) continue;  // inf - inf
    switch (ord) {
      case sf::Ordering::kLess:
        EXPECT_TRUE(diff.sign() && !diff.is_zero());
        break;
      case sf::Ordering::kGreater:
        EXPECT_TRUE(!diff.sign() && !diff.is_zero());
        break;
      case sf::Ordering::kEqual:
        EXPECT_TRUE(diff.is_zero());
        break;
      case sf::Ordering::kUnordered:
        ADD_FAILURE() << "non-NaN operands compared unordered";
    }
  }
}

TEST(Properties, AdditionIsMonotoneNonDecreasing) {
  // If a <= b then a + c <= b + c (finite results, same rounding).
  st::Xoshiro256pp g(0x30003);
  for (int i = 0; i < kSweep; ++i) {
    const F64 a{gen_nonnan(g)};
    const F64 b = sf::next_up(a);
    const F64 c{gen_nonnan(g)};
    if (!a.is_finite() || !b.is_finite() || !c.is_finite()) continue;
    sf::Env env;
    const F64 ac = sf::add(a, c, env);
    const F64 bc = sf::add(b, c, env);
    if (ac.is_nan() || bc.is_nan()) continue;
    EXPECT_TRUE(sf::total_order(ac, bc) || (ac.is_zero() && bc.is_zero()))
        << sf::describe(a) << " " << sf::describe(c);
  }
}

TEST(Properties, DivisionByPowerOfTwoIsExactWhenInRange) {
  st::Xoshiro256pp g(0xD1F2);
  const F64 two = d(2.0);
  for (int i = 0; i < kSweep; ++i) {
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = 100 + st::uniform_below(g, 1800);
    const F64 a{(exp << 52) | frac};
    sf::Env env;
    sf::div(a, two, env);
    if (exp > 53) {  // result stays normal: must be exact
      EXPECT_FALSE(env.test(sf::kFlagInexact)) << sf::describe(a);
    }
  }
}

TEST(Properties, NaNsAbsorbEverything) {
  st::Xoshiro256pp g(0x4A42);
  const F64 nan = F64::quiet_nan();
  for (int i = 0; i < 2000; ++i) {
    const F64 a{gen_any(g)};
    sf::Env env;
    EXPECT_TRUE(sf::add(nan, a, env).is_nan());
    EXPECT_TRUE(sf::sub(a, nan, env).is_nan());
    EXPECT_TRUE(sf::mul(nan, a, env).is_nan());
    EXPECT_TRUE(sf::div(a, nan, env).is_nan());
    EXPECT_TRUE(sf::fma(nan, a, a, env).is_nan());
  }
}

}  // namespace
