// roundToIntegralExact and minNum/maxNum, including differential tests
// against the host (nearbyint under fesetround; fmin/fmax for the
// number-beats-NaN behavior).

#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>

#include "hw_ref.hpp"
#include "softfloat/ops.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace st = fpq::stats;

namespace {

using F64 = sf::Float64;

F64 d(double x) { return sf::from_native(x); }

TEST(RoundToIntegral, BasicNearestEven) {
  sf::Env env;
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(2.5), env)), 2.0)
      << "ties to even";
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(3.5), env)), 4.0);
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(-2.5), env)), -2.0);
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(2.25), env)), 2.0);
  EXPECT_TRUE(env.test(sf::kFlagInexact));
}

TEST(RoundToIntegral, ExactIntegersRaiseNothing) {
  sf::Env env;
  EXPECT_EQ(sf::round_to_integral(d(42.0), env).bits, d(42.0).bits);
  EXPECT_EQ(sf::round_to_integral(d(-7.0), env).bits, d(-7.0).bits);
  EXPECT_EQ(sf::round_to_integral(d(1e300), env).bits, d(1e300).bits)
      << "huge values are already integral";
  EXPECT_EQ(env.flags(), 0u);
}

TEST(RoundToIntegral, DirectedModes) {
  sf::Env up(sf::Rounding::kUp);
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(2.1), up)), 3.0);
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(-2.1), up)), -2.0);
  sf::Env down(sf::Rounding::kDown);
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(2.9), down)), 2.0);
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(-2.1), down)), -3.0);
  sf::Env zero(sf::Rounding::kTowardZero);
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(2.9), zero)), 2.0);
  EXPECT_EQ(sf::to_native(sf::round_to_integral(d(-2.9), zero)), -2.0);
}

TEST(RoundToIntegral, SignOfZeroResultPreserved) {
  sf::Env env;
  const F64 r = sf::round_to_integral(d(-0.25), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.sign()) << "-0.25 rounds to -0, not +0";
  EXPECT_EQ(sf::round_to_integral(d(-0.0), env).bits, d(-0.0).bits);
}

TEST(RoundToIntegral, SpecialsPassThrough) {
  sf::Env env;
  EXPECT_TRUE(sf::round_to_integral(F64::infinity(), env).is_infinity());
  EXPECT_TRUE(sf::round_to_integral(F64::quiet_nan(), env).is_nan());
  EXPECT_EQ(env.flags(), 0u);
  EXPECT_TRUE(
      sf::round_to_integral(F64::signaling_nan(), env).is_quiet_nan());
  EXPECT_TRUE(env.test(sf::kFlagInvalid));
}

TEST(RoundToIntegral, DifferentialVsNearbyint) {
  st::Xoshiro256pp g(0x21E4);
  const fpq::test::ScopedHwRounding guard(FE_TONEAREST);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = 1023 - 5 + st::uniform_below(g, 60);
    const std::uint64_t sign = g() & 0x8000000000000000ULL;
    const double x = std::bit_cast<double>(sign | (exp << 52) | frac);
    sf::Env env;
    const double soft = sf::to_native(sf::round_to_integral(d(x), env));
    const double hw = std::nearbyint(x);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(soft),
              std::bit_cast<std::uint64_t>(hw))
        << x;
  }
}

TEST(MinMaxNum, NumbersOrderNormally) {
  sf::Env env;
  EXPECT_EQ(sf::to_native(sf::min_num(d(1.0), d(2.0), env)), 1.0);
  EXPECT_EQ(sf::to_native(sf::max_num(d(1.0), d(2.0), env)), 2.0);
  EXPECT_EQ(sf::to_native(sf::min_num(d(-1.0), d(1.0), env)), -1.0);
  EXPECT_EQ(sf::to_native(sf::min_num(F64::infinity(true), d(0.0), env)),
            -std::numeric_limits<double>::infinity());
}

TEST(MinMaxNum, NumberBeatsQuietNaN) {
  // The 754-2008 surprise: minNum(NaN, 3) is 3, not NaN.
  sf::Env env;
  EXPECT_EQ(sf::to_native(sf::min_num(F64::quiet_nan(), d(3.0), env)), 3.0);
  EXPECT_EQ(sf::to_native(sf::max_num(d(3.0), F64::quiet_nan(), env)), 3.0);
  EXPECT_EQ(env.flags(), 0u) << "quiet NaN raises nothing here";
  // Matches the C library's fmin/fmax semantics.
  EXPECT_EQ(std::fmin(std::nan(""), 3.0), 3.0);
}

TEST(MinMaxNum, BothNaNStaysNaN) {
  sf::Env env;
  EXPECT_TRUE(
      sf::min_num(F64::quiet_nan(), F64::quiet_nan(), env).is_nan());
  EXPECT_EQ(env.flags(), 0u);
}

TEST(MinMaxNum, SignalingNaNIsInvalid) {
  sf::Env env;
  EXPECT_TRUE(sf::min_num(F64::signaling_nan(), d(1.0), env).is_nan());
  EXPECT_TRUE(env.test(sf::kFlagInvalid));
}

TEST(MinMaxNum, ZerosOrderedBySign) {
  sf::Env env;
  EXPECT_TRUE(sf::min_num(d(0.0), d(-0.0), env).sign())
      << "minNum(+0, -0) = -0";
  EXPECT_FALSE(sf::max_num(d(0.0), d(-0.0), env).sign())
      << "maxNum(+0, -0) = +0";
}

TEST(MinMaxNum, Binary16Works) {
  sf::Env env;
  const auto one = sf::Float16::one();
  const auto two = sf::add(one, one, env);
  EXPECT_EQ(sf::min_num(one, two, env).bits, one.bits);
  EXPECT_EQ(sf::max_num(sf::Float16::quiet_nan(), two, env).bits, two.bits);
}

TEST(MinMaxNum, DifferentialVsFminFmax) {
  st::Xoshiro256pp g(0x3141);
  for (int i = 0; i < 20000; ++i) {
    const double x = std::bit_cast<double>(g());
    const double y = std::bit_cast<double>(g());
    if (std::isnan(x) || std::isnan(y)) continue;  // NaN paths pinned above
    if ((x == 0.0 && y == 0.0)) continue;  // fmin's zero choice is libc's
    sf::Env env;
    EXPECT_EQ(sf::to_native(sf::min_num(d(x), d(y), env)), std::fmin(x, y));
    EXPECT_EQ(sf::to_native(sf::max_num(d(x), d(y), env)), std::fmax(x, y));
  }
}

}  // namespace
