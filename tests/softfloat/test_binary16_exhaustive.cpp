// Exhaustive unary sweeps over ALL 65536 binary16 encodings: total
// coverage of sqrt, roundToIntegralExact, and the encoding-order
// utilities on a complete format. (Binary ops are covered by the random
// oracle in test_binary16_oracle.cpp; 2^32 pairs would be exhaustive but
// slow — 2^16 unary is free.)
//
// The sharded differential sweeps at the bottom extend the coverage to
// sqrt and fma under ALL FIVE rounding modes (including roundTiesToAway,
// which no host FPU expresses): sqrt exhausts the full encoding space per
// mode, fma pairs every first operand with seeded partners, both checked
// against the exact references in parallel/oracle_sweep.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "ir/ir.hpp"
#include "parallel/oracle_sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "softfloat/fast16.hpp"
#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"

namespace sf = fpq::softfloat;

namespace {

using F16 = sf::Float16;

double widen(F16 x) {
  sf::Env env;
  return sf::to_native(sf::convert<64>(x, env));
}

TEST(Binary16Exhaustive, SqrtWithinOneUlpOfWideSqrtAndExactWhenSquare) {
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 x{static_cast<std::uint16_t>(raw)};
    sf::Env env;
    const F16 r = sf::sqrt(x, env);
    if (x.is_nan() || (x.sign() && !x.is_zero())) {
      ASSERT_TRUE(r.is_nan()) << sf::describe(x);
      continue;
    }
    if (x.is_zero() || x.is_infinity()) {
      ASSERT_EQ(r.bits, x.bits) << sf::describe(x);
      continue;
    }
    // Reference: binary64 sqrt of the widened value, narrowed. Double
    // rounding can differ from the directly rounded result by at most one
    // ulp; and when the input is an exact square the result is exact.
    const double wide = std::sqrt(widen(x));
    sf::Env narrow;
    const F16 via = sf::convert<16>(sf::from_native(wide), narrow);
    const bool close = r.bits == via.bits || r.bits + 1 == via.bits ||
                       via.bits + 1 == r.bits;
    ASSERT_TRUE(close) << sf::describe(x) << " -> " << sf::describe(r)
                       << " vs " << sf::describe(via);
    // Exactness invariant: sqrt(r)^2 == x implies no inexact flag.
    const double back = widen(r) * widen(r);
    if (back == widen(x)) {
      ASSERT_FALSE(env.test(sf::kFlagInexact)) << sf::describe(x);
    }
  }
}

TEST(Binary16Exhaustive, RoundToIntegralContract) {
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 x{static_cast<std::uint16_t>(raw)};
    sf::Env env;
    const F16 r = sf::round_to_integral(x, env);
    if (x.is_nan()) {
      ASSERT_TRUE(r.is_nan());
      continue;
    }
    if (x.is_infinity()) {
      ASSERT_EQ(r.bits, x.bits);
      continue;
    }
    const double xv = widen(x);
    const double rv = widen(r);
    // Result is integral...
    ASSERT_EQ(rv, std::nearbyint(rv)) << sf::describe(x);
    // ... within 0.5 of the input (nearest-even mode) ...
    ASSERT_LE(std::fabs(rv - xv), 0.5) << sf::describe(x);
    // ... matches the host's nearbyint ...
    ASSERT_EQ(rv, std::nearbyint(xv)) << sf::describe(x);
    // ... preserves sign of zero results ...
    if (rv == 0.0) {
      ASSERT_EQ(std::signbit(rv), x.sign()) << sf::describe(x);
    }
    // ... and raises inexact exactly when the value changed.
    ASSERT_EQ(env.test(sf::kFlagInexact), rv != xv) << sf::describe(x);
  }
}

TEST(Binary16Exhaustive, NextUpIsTheSuccessorInValueOrder) {
  // For every finite x (except the largest), next_up(x) is strictly
  // greater and nothing fits strictly between (checked through the exact
  // binary64 widening).
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 x{static_cast<std::uint16_t>(raw)};
    if (x.is_nan() || x.is_infinity()) continue;
    const F16 up = sf::next_up(x);
    if (up.is_infinity()) {
      ASSERT_EQ(x.bits, F16::max_finite().bits);
      continue;
    }
    ASSERT_GT(widen(up), widen(x)) << sf::describe(x);
    // Successor property: the midpoint narrows to one of the two.
    sf::Env env;
    const double mid = (widen(x) + widen(up)) / 2.0;
    const F16 narrowed = sf::convert<16>(sf::from_native(mid), env);
    ASSERT_TRUE(narrowed.bits == x.bits || narrowed.bits == up.bits ||
                (narrowed.is_zero() && x.is_zero()))
        << sf::describe(x);
  }
}

TEST(Binary16Exhaustive, UlpMatchesNeighbourGap) {
  for (std::uint32_t raw = 0; raw <= 0x7BFE; ++raw) {  // positive finite
    const F16 x{static_cast<std::uint16_t>(raw)};
    const F16 up = sf::next_up(x);
    const double gap = widen(up) - widen(x);
    const double u = widen(sf::ulp(x));
    // ulp(x) equals the gap to the next value away from zero; at binade
    // boundaries next_up crosses into the wider gap, so allow gap or
    // half-gap... for positive x going up IS away from zero: exact match
    // except where x is a power of two (the gap above is the larger one).
    ASSERT_TRUE(u == gap || 2.0 * u == gap) << sf::describe(x);
  }
}

TEST(Binary16Exhaustive, NegationRoundTripsAndAbsClearsSign) {
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 x{static_cast<std::uint16_t>(raw)};
    ASSERT_EQ(x.negated().negated().bits, x.bits);
    ASSERT_FALSE(x.abs().sign());
    ASSERT_EQ(x.abs().abs().bits, x.abs().bits);
  }
}

TEST(Binary16Exhaustive, SqrtExhaustiveUnderAllFiveRoundingModes) {
  // All 2^16 encodings, all five modes, against the double-rounding-safe
  // hardware reference (shards aggregate failures; the assert runs here
  // on the main thread only).
  fpq::parallel::ThreadPool pool;
  fpq::parallel::ExhaustiveConfig config;
  config.ops = {fpq::parallel::SweepOp::kSqrt};
  const auto report = fpq::parallel::run_exhaustive_binary16(pool, config);
  EXPECT_EQ(report.mismatches, 0u) << report.first_mismatch;
  EXPECT_EQ(report.checked, 5ull * 0x10000ull);
}

TEST(Binary16Exhaustive, FmaAllFirstOperandsUnderAllFiveRoundingModes) {
  // Every first-operand encoding x seeded (b, c) partners x five modes,
  // against the exact product + TwoSum + round-to-odd reference.
  fpq::parallel::ThreadPool pool;
  fpq::parallel::ExhaustiveConfig config;
  config.ops = {fpq::parallel::SweepOp::kFma};
  config.samples_per_operand = 4;
  const auto report = fpq::parallel::run_exhaustive_binary16(pool, config);
  EXPECT_EQ(report.mismatches, 0u) << report.first_mismatch;
  EXPECT_EQ(report.checked, 5ull * 0x10000ull * 4ull);
}

TEST(Binary16Exhaustive, BatchedTapeMatchesDirectSoftfloatExhaustively) {
  // The batched SoA tape executor against DIRECT softfloat calls (no IR
  // reference in the loop at all): op(x, partner) for every one of the
  // 2^16 first-operand encodings, bit-identical values AND per-row flag
  // unions. This is the perf-path's ground-truth anchor: the engine the
  // benches race is pinned to the scalar ops it claims to batch.
  namespace ir = fpq::ir;
  fpq::parallel::ThreadPool pool;
  const ir::Expr x = ir::Expr::variable("x", 0);
  const ir::Expr y = ir::Expr::variable("y", 1);
  const double partner = 1.0 / 3;  // inexact in binary16, finite, normal
  sf::Env quiet;
  const F16 partner16 = sf::convert<16>(sf::from_native(partner), quiet);

  struct Case {
    ir::Expr tree;
    F16 (*direct)(F16, F16, sf::Env&);
  };
  const Case cases[] = {
      {ir::Expr::add(x, y),
       +[](F16 a, F16 b, sf::Env& e) { return sf::add(a, b, e); }},
      {ir::Expr::mul(x, y),
       +[](F16 a, F16 b, sf::Env& e) { return sf::mul(a, b, e); }},
      {ir::Expr::div(x, y),
       +[](F16 a, F16 b, sf::Env& e) { return sf::div(a, b, e); }},
  };

  ir::BindingTable table;
  table.width = 2;
  table.values.reserve(2 * 0x10000);
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    table.values.push_back(widen(F16{static_cast<std::uint16_t>(raw)}));
    table.values.push_back(partner);
  }

  ir::EvalConfig half;
  half.format_bits = 16;
  ir::BatchOptions options;
  options.memoize = false;
  for (const Case& c : cases) {
    const ir::Tape tape = ir::Tape::compile(c.tree, half);
    const auto got = ir::execute_batch(pool, tape, table, options);
    ASSERT_EQ(got.size(), std::size_t{0x10000});
    for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
      // Bindings are doubles, so the engine sees the operand after a
      // widen→narrow round trip — bit-identity for every encoding except
      // sNaN, which quiets on operand entry (the documented semantics of
      // every evaluator's `variable`). Feed the reference the same value.
      const F16 a = sf::convert<16>(
          sf::from_native(widen(F16{static_cast<std::uint16_t>(raw)})),
          quiet);
      sf::Env env;
      const F16 direct = c.direct(a, partner16, env);
      ASSERT_EQ(got[raw].value.bits,
                sf::convert<64>(direct, quiet).bits)
          << sf::describe(a) << " " << c.tree.to_string();
      ASSERT_EQ(got[raw].flags, env.flags())
          << sf::describe(a) << " " << c.tree.to_string();
    }
  }
}

TEST(Binary16Exhaustive, FastNarrowMatchesConvertAtEveryBoundary) {
  // fast16::narrow16_value (the batched tape's flag-free operand narrow)
  // against softfloat convert<16>, all five rounding modes, probing every
  // adjacent pair of finite binary16 values at the points where rounding
  // decisions flip: the lower value itself, the exact midpoint, and one
  // binary64 ulp to either side of the midpoint. Also the overflow band
  // above max_finite and the underflow band below the smallest subnormal.
  namespace f16 = sf::fast16;
  const sf::Rounding modes[] = {
      sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
      sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway};
  auto check = [&](double x) {
    if (x == 0.0 || !f16::is_finite(x)) return;
    const std::uint64_t xb = std::bit_cast<std::uint64_t>(x);
    if (((xb >> 52) & 0x7FF) == 0) return;  // double-subnormal: not ours
    for (sf::Rounding mode : modes) {
      sf::Env env(mode);
      const double want = widen(sf::convert<16>(sf::from_native(x), env));
      const double got = f16::narrow16_value(x, mode);
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got),
                std::bit_cast<std::uint64_t>(want))
          << x << " mode " << static_cast<int>(mode);
    }
  };
  for (std::uint32_t raw = 0; raw < 0x7C00; ++raw) {  // positive finite
    const F16 lo{static_cast<std::uint16_t>(raw)};
    const F16 hi = sf::next_up(lo);
    const double lov = widen(lo);
    const double hiv = hi.is_infinity() ? 2.0 * widen(F16::max_finite())
                                        : widen(hi);
    const double mid = (lov + hiv) / 2.0;  // exact: adjacent significands
    for (double p : {lov, mid, std::nextafter(mid, lov),
                     std::nextafter(mid, hiv)}) {
      check(p);
      check(-p);
    }
  }
  // Deep underflow, the overflow threshold (max_finite + half an ulp =
  // 65520), and far overflow.
  for (double p : {0x1p-26, 0x1p-100, 0x1.8p-25, 65520.0,
                   std::nextafter(65520.0, 0.0),
                   std::nextafter(65520.0, 1.0e9), 65536.0, 1.0e5,
                   1.0e300}) {
    check(p);
    check(-p);
  }
}

TEST(Binary16Exhaustive, BatchedTapeFlushModesMatchDirectSoftfloat) {
  // The batched executor's FTZ/DAZ and directed-rounding behaviour
  // against direct softfloat calls, swept over every first-operand
  // encoding with a subnormal partner so flush semantics actually fire.
  namespace ir = fpq::ir;
  fpq::parallel::ThreadPool pool;
  const ir::Expr x = ir::Expr::variable("x", 0);
  const ir::Expr y = ir::Expr::variable("y", 1);
  sf::Env quiet;
  const F16 partner16{0x02ABu};  // a subnormal: exercises DE/DAZ paths
  const double partner = widen(partner16);

  struct Config {
    sf::Rounding mode;
    bool ftz;
    bool daz;
  };
  const Config configs[] = {
      {sf::Rounding::kNearestEven, true, true},
      {sf::Rounding::kDown, true, false},
      {sf::Rounding::kUp, false, true},
  };

  ir::BindingTable table;
  table.width = 2;
  table.values.reserve(2 * 0x10000);
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    table.values.push_back(widen(F16{static_cast<std::uint16_t>(raw)}));
    table.values.push_back(partner);
  }

  ir::BatchOptions options;
  options.memoize = false;
  for (const Config& fc : configs) {
    ir::EvalConfig half;
    half.format_bits = 16;
    half.rounding = fc.mode;
    half.flush_to_zero = fc.ftz;
    half.denormals_are_zero = fc.daz;
    for (int op = 0; op < 3; ++op) {
      const ir::Expr tree = op == 0   ? ir::Expr::add(x, y)
                            : op == 1 ? ir::Expr::mul(x, y)
                                      : ir::Expr::div(x, y);
      const ir::Tape tape = ir::Tape::compile(tree, half);
      const auto got = ir::execute_batch(pool, tape, table, options);
      ASSERT_EQ(got.size(), std::size_t{0x10000});
      for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
        const F16 a = sf::convert<16>(
            sf::from_native(widen(F16{static_cast<std::uint16_t>(raw)})),
            quiet);
        sf::Env env(fc.mode);
        env.set_flush_to_zero(fc.ftz);
        env.set_denormals_are_zero(fc.daz);
        const F16 direct = op == 0   ? sf::add(a, partner16, env)
                           : op == 1 ? sf::mul(a, partner16, env)
                                     : sf::div(a, partner16, env);
        ASSERT_EQ(got[raw].value.bits, sf::convert<64>(direct, quiet).bits)
            << sf::describe(a) << " op " << op << " mode "
            << static_cast<int>(fc.mode) << " ftz " << fc.ftz << " daz "
            << fc.daz;
        ASSERT_EQ(got[raw].flags, env.flags())
            << sf::describe(a) << " op " << op << " mode "
            << static_cast<int>(fc.mode) << " ftz " << fc.ftz << " daz "
            << fc.daz;
      }
    }
  }
}

TEST(Binary16Exhaustive, AddMulDivExhaustiveFirstOperandSweep) {
  // The remaining binary ops through the same sharded engine: every first
  // operand, sampled partners, all five modes.
  fpq::parallel::ThreadPool pool;
  fpq::parallel::ExhaustiveConfig config;
  config.ops = {fpq::parallel::SweepOp::kAdd, fpq::parallel::SweepOp::kSub,
                fpq::parallel::SweepOp::kMul, fpq::parallel::SweepOp::kDiv};
  config.samples_per_operand = 2;
  const auto report = fpq::parallel::run_exhaustive_binary16(pool, config);
  EXPECT_EQ(report.mismatches, 0u) << report.first_mismatch;
  EXPECT_EQ(report.checked, 4ull * 5ull * 0x10000ull * 2ull);
}

}  // namespace
