// Exhaustive unary sweeps over ALL 65536 binary16 encodings: total
// coverage of sqrt, roundToIntegralExact, and the encoding-order
// utilities on a complete format. (Binary ops are covered by the random
// oracle in test_binary16_oracle.cpp; 2^32 pairs would be exhaustive but
// slow — 2^16 unary is free.)
//
// The sharded differential sweeps at the bottom extend the coverage to
// sqrt and fma under ALL FIVE rounding modes (including roundTiesToAway,
// which no host FPU expresses): sqrt exhausts the full encoding space per
// mode, fma pairs every first operand with seeded partners, both checked
// against the exact references in parallel/oracle_sweep.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "parallel/oracle_sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"

namespace sf = fpq::softfloat;

namespace {

using F16 = sf::Float16;

double widen(F16 x) {
  sf::Env env;
  return sf::to_native(sf::convert<64>(x, env));
}

TEST(Binary16Exhaustive, SqrtWithinOneUlpOfWideSqrtAndExactWhenSquare) {
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 x{static_cast<std::uint16_t>(raw)};
    sf::Env env;
    const F16 r = sf::sqrt(x, env);
    if (x.is_nan() || (x.sign() && !x.is_zero())) {
      ASSERT_TRUE(r.is_nan()) << sf::describe(x);
      continue;
    }
    if (x.is_zero() || x.is_infinity()) {
      ASSERT_EQ(r.bits, x.bits) << sf::describe(x);
      continue;
    }
    // Reference: binary64 sqrt of the widened value, narrowed. Double
    // rounding can differ from the directly rounded result by at most one
    // ulp; and when the input is an exact square the result is exact.
    const double wide = std::sqrt(widen(x));
    sf::Env narrow;
    const F16 via = sf::convert<16>(sf::from_native(wide), narrow);
    const bool close = r.bits == via.bits || r.bits + 1 == via.bits ||
                       via.bits + 1 == r.bits;
    ASSERT_TRUE(close) << sf::describe(x) << " -> " << sf::describe(r)
                       << " vs " << sf::describe(via);
    // Exactness invariant: sqrt(r)^2 == x implies no inexact flag.
    const double back = widen(r) * widen(r);
    if (back == widen(x)) {
      ASSERT_FALSE(env.test(sf::kFlagInexact)) << sf::describe(x);
    }
  }
}

TEST(Binary16Exhaustive, RoundToIntegralContract) {
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 x{static_cast<std::uint16_t>(raw)};
    sf::Env env;
    const F16 r = sf::round_to_integral(x, env);
    if (x.is_nan()) {
      ASSERT_TRUE(r.is_nan());
      continue;
    }
    if (x.is_infinity()) {
      ASSERT_EQ(r.bits, x.bits);
      continue;
    }
    const double xv = widen(x);
    const double rv = widen(r);
    // Result is integral...
    ASSERT_EQ(rv, std::nearbyint(rv)) << sf::describe(x);
    // ... within 0.5 of the input (nearest-even mode) ...
    ASSERT_LE(std::fabs(rv - xv), 0.5) << sf::describe(x);
    // ... matches the host's nearbyint ...
    ASSERT_EQ(rv, std::nearbyint(xv)) << sf::describe(x);
    // ... preserves sign of zero results ...
    if (rv == 0.0) {
      ASSERT_EQ(std::signbit(rv), x.sign()) << sf::describe(x);
    }
    // ... and raises inexact exactly when the value changed.
    ASSERT_EQ(env.test(sf::kFlagInexact), rv != xv) << sf::describe(x);
  }
}

TEST(Binary16Exhaustive, NextUpIsTheSuccessorInValueOrder) {
  // For every finite x (except the largest), next_up(x) is strictly
  // greater and nothing fits strictly between (checked through the exact
  // binary64 widening).
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 x{static_cast<std::uint16_t>(raw)};
    if (x.is_nan() || x.is_infinity()) continue;
    const F16 up = sf::next_up(x);
    if (up.is_infinity()) {
      ASSERT_EQ(x.bits, F16::max_finite().bits);
      continue;
    }
    ASSERT_GT(widen(up), widen(x)) << sf::describe(x);
    // Successor property: the midpoint narrows to one of the two.
    sf::Env env;
    const double mid = (widen(x) + widen(up)) / 2.0;
    const F16 narrowed = sf::convert<16>(sf::from_native(mid), env);
    ASSERT_TRUE(narrowed.bits == x.bits || narrowed.bits == up.bits ||
                (narrowed.is_zero() && x.is_zero()))
        << sf::describe(x);
  }
}

TEST(Binary16Exhaustive, UlpMatchesNeighbourGap) {
  for (std::uint32_t raw = 0; raw <= 0x7BFE; ++raw) {  // positive finite
    const F16 x{static_cast<std::uint16_t>(raw)};
    const F16 up = sf::next_up(x);
    const double gap = widen(up) - widen(x);
    const double u = widen(sf::ulp(x));
    // ulp(x) equals the gap to the next value away from zero; at binade
    // boundaries next_up crosses into the wider gap, so allow gap or
    // half-gap... for positive x going up IS away from zero: exact match
    // except where x is a power of two (the gap above is the larger one).
    ASSERT_TRUE(u == gap || 2.0 * u == gap) << sf::describe(x);
  }
}

TEST(Binary16Exhaustive, NegationRoundTripsAndAbsClearsSign) {
  for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
    const F16 x{static_cast<std::uint16_t>(raw)};
    ASSERT_EQ(x.negated().negated().bits, x.bits);
    ASSERT_FALSE(x.abs().sign());
    ASSERT_EQ(x.abs().abs().bits, x.abs().bits);
  }
}

TEST(Binary16Exhaustive, SqrtExhaustiveUnderAllFiveRoundingModes) {
  // All 2^16 encodings, all five modes, against the double-rounding-safe
  // hardware reference (shards aggregate failures; the assert runs here
  // on the main thread only).
  fpq::parallel::ThreadPool pool;
  fpq::parallel::ExhaustiveConfig config;
  config.ops = {fpq::parallel::SweepOp::kSqrt};
  const auto report = fpq::parallel::run_exhaustive_binary16(pool, config);
  EXPECT_EQ(report.mismatches, 0u) << report.first_mismatch;
  EXPECT_EQ(report.checked, 5ull * 0x10000ull);
}

TEST(Binary16Exhaustive, FmaAllFirstOperandsUnderAllFiveRoundingModes) {
  // Every first-operand encoding x seeded (b, c) partners x five modes,
  // against the exact product + TwoSum + round-to-odd reference.
  fpq::parallel::ThreadPool pool;
  fpq::parallel::ExhaustiveConfig config;
  config.ops = {fpq::parallel::SweepOp::kFma};
  config.samples_per_operand = 4;
  const auto report = fpq::parallel::run_exhaustive_binary16(pool, config);
  EXPECT_EQ(report.mismatches, 0u) << report.first_mismatch;
  EXPECT_EQ(report.checked, 5ull * 0x10000ull * 4ull);
}

TEST(Binary16Exhaustive, AddMulDivExhaustiveFirstOperandSweep) {
  // The remaining binary ops through the same sharded engine: every first
  // operand, sampled partners, all five modes.
  fpq::parallel::ThreadPool pool;
  fpq::parallel::ExhaustiveConfig config;
  config.ops = {fpq::parallel::SweepOp::kAdd, fpq::parallel::SweepOp::kSub,
                fpq::parallel::SweepOp::kMul, fpq::parallel::SweepOp::kDiv};
  config.samples_per_operand = 2;
  const auto report = fpq::parallel::run_exhaustive_binary16(pool, config);
  EXPECT_EQ(report.mismatches, 0u) << report.first_mismatch;
  EXPECT_EQ(report.checked, 4ull * 5ull * 0x10000ull * 2ull);
}

}  // namespace
