// Randomized differential testing of the softfloat engine against the host
// FPU (which is IEEE 754 compliant for +, -, *, /, sqrt and fma on x86-64).
//
// For every sampled operand pair we compare the result bit pattern and the
// five sticky exception flags across all four hardware rounding modes.
// NaN results are compared as a class (payload propagation conventions are
// implementation-defined and differ between vendors).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "hw_ref.hpp"  // NOLINT(build/include_subdir) — test-local helper
#include "softfloat/ops.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace st = fpq::stats;
using fpq::test::run_hw;

namespace {

// Directed special values mixed into every stream.
const std::uint64_t kSpecial64[] = {
    0x0000000000000000ULL,  // +0
    0x8000000000000000ULL,  // -0
    0x3FF0000000000000ULL,  // 1.0
    0xBFF0000000000000ULL,  // -1.0
    0x7FF0000000000000ULL,  // +inf
    0xFFF0000000000000ULL,  // -inf
    0x7FF8000000000000ULL,  // qNaN
    0x7FEFFFFFFFFFFFFFULL,  // max finite
    0xFFEFFFFFFFFFFFFFULL,  // -max finite
    0x0010000000000000ULL,  // min normal
    0x0000000000000001ULL,  // min subnormal
    0x000FFFFFFFFFFFFFULL,  // max subnormal
    0x8000000000000001ULL,  // -min subnormal
    0x4340000000000000ULL,  // 2^53
    0x3CA0000000000000ULL,  // 2^-53
};

const std::uint32_t kSpecial32[] = {
    0x00000000u, 0x80000000u, 0x3F800000u, 0xBF800000u, 0x7F800000u,
    0xFF800000u, 0x7FC00000u, 0x7F7FFFFFu, 0xFF7FFFFFu, 0x00800000u,
    0x00000001u, 0x007FFFFFu, 0x80000001u, 0x4B800000u, 0x33800000u,
};

// Operand generator: a blend of uniform random bits (hits every class),
// "realistic" normals, and the directed special list.
std::uint64_t gen_bits64(st::Xoshiro256pp& g) {
  const auto pick = st::uniform_below(g, 10);
  if (pick < 2) return kSpecial64[st::uniform_below(g, std::size(kSpecial64))];
  if (pick < 7) return g();  // uniform bit pattern
  // Moderate-exponent normal: avoids always-overflowing products.
  const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
  const std::uint64_t exp = 1023 - 40 + st::uniform_below(g, 80);
  const std::uint64_t sign = g() & 0x8000000000000000ULL;
  return sign | (exp << 52) | frac;
}

std::uint32_t gen_bits32(st::Xoshiro256pp& g) {
  const auto pick = st::uniform_below(g, 10);
  if (pick < 2) return kSpecial32[st::uniform_below(g, std::size(kSpecial32))];
  if (pick < 7) return static_cast<std::uint32_t>(g());
  const std::uint32_t frac = static_cast<std::uint32_t>(g()) & 0x007FFFFFu;
  const auto exp =
      static_cast<std::uint32_t>(127 - 20 + st::uniform_below(g, 40));
  const std::uint32_t sign = static_cast<std::uint32_t>(g()) & 0x80000000u;
  return sign | (exp << 23) | frac;
}

struct ModeParam {
  sf::Rounding soft;
  int hard;
  const char* name;
};

const ModeParam kModes[] = {
    {sf::Rounding::kNearestEven, FE_TONEAREST, "nearest-even"},
    {sf::Rounding::kTowardZero, FE_TOWARDZERO, "toward-zero"},
    {sf::Rounding::kDown, FE_DOWNWARD, "downward"},
    {sf::Rounding::kUp, FE_UPWARD, "upward"},
};

class DifferentialF64 : public ::testing::TestWithParam<ModeParam> {};
class DifferentialF32 : public ::testing::TestWithParam<ModeParam> {};

constexpr int kIterations = 20000;
constexpr unsigned kStdFlags = sf::kFlagInvalid | sf::kFlagDivByZero |
                               sf::kFlagOverflow | sf::kFlagUnderflow |
                               sf::kFlagInexact;

// Compares one softfloat op against one hardware op over a random stream.
template <typename SoftOp, typename HwOp>
void check_f64(const ModeParam& mode, std::uint64_t seed, SoftOp soft_op,
               HwOp hw_op, const char* op_name) {
  st::Xoshiro256pp g(seed);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint64_t abits = gen_bits64(g);
    const std::uint64_t bbits = gen_bits64(g);
    const sf::Float64 a{abits}, b{bbits};

    sf::Env env(mode.soft);
    const sf::Float64 soft = soft_op(a, b, env);
    const auto hw = run_hw<double>(mode.hard, [&] {
      return hw_op(std::bit_cast<double>(abits), std::bit_cast<double>(bbits));
    });
    const std::uint64_t hw_bits = std::bit_cast<std::uint64_t>(hw.value);

    const bool both_nan = soft.is_nan() && std::isnan(hw.value);
    ASSERT_TRUE(both_nan || soft.bits == hw_bits)
        << op_name << " mode=" << mode.name << " a=0x" << std::hex << abits
        << " b=0x" << bbits << " soft=0x" << soft.bits << " hw=0x" << hw_bits;
    ASSERT_EQ(env.flags() & kStdFlags, hw.flags)
        << op_name << " flags mode=" << mode.name << " a=0x" << std::hex
        << abits << " b=0x" << bbits << " soft="
        << sf::flags_to_string(env.flags() & kStdFlags)
        << " hw=" << sf::flags_to_string(hw.flags);
  }
}

template <typename SoftOp, typename HwOp>
void check_f32(const ModeParam& mode, std::uint64_t seed, SoftOp soft_op,
               HwOp hw_op, const char* op_name) {
  st::Xoshiro256pp g(seed);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint32_t abits = gen_bits32(g);
    const std::uint32_t bbits = gen_bits32(g);
    const sf::Float32 a{abits}, b{bbits};

    sf::Env env(mode.soft);
    const sf::Float32 soft = soft_op(a, b, env);
    const auto hw = run_hw<float>(mode.hard, [&] {
      return hw_op(std::bit_cast<float>(abits), std::bit_cast<float>(bbits));
    });
    const std::uint32_t hw_bits = std::bit_cast<std::uint32_t>(hw.value);

    const bool both_nan = soft.is_nan() && std::isnan(hw.value);
    ASSERT_TRUE(both_nan || soft.bits == hw_bits)
        << op_name << " mode=" << mode.name << " a=0x" << std::hex << abits
        << " b=0x" << bbits << " soft=0x" << soft.bits << " hw=0x" << hw_bits;
    ASSERT_EQ(env.flags() & kStdFlags, hw.flags)
        << op_name << " flags mode=" << mode.name << " a=0x" << std::hex
        << abits << " b=0x" << bbits;
  }
}

TEST_P(DifferentialF64, Add) {
  check_f64(
      GetParam(), 0xADD0001,
      [](auto a, auto b, sf::Env& e) { return sf::add(a, b, e); },
      fpq::test::hw_add_d, "add64");
}

TEST_P(DifferentialF64, Sub) {
  check_f64(
      GetParam(), 0x50B0002,
      [](auto a, auto b, sf::Env& e) { return sf::sub(a, b, e); },
      fpq::test::hw_sub_d, "sub64");
}

TEST_P(DifferentialF64, Mul) {
  check_f64(
      GetParam(), 0x3010003,
      [](auto a, auto b, sf::Env& e) { return sf::mul(a, b, e); },
      fpq::test::hw_mul_d, "mul64");
}

TEST_P(DifferentialF64, Div) {
  check_f64(
      GetParam(), 0xD140004,
      [](auto a, auto b, sf::Env& e) { return sf::div(a, b, e); },
      fpq::test::hw_div_d, "div64");
}

TEST_P(DifferentialF64, Sqrt) {
  const ModeParam mode = GetParam();
  st::Xoshiro256pp g(0x5095);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint64_t abits = gen_bits64(g);
    sf::Env env(mode.soft);
    const sf::Float64 soft = sf::sqrt(sf::Float64{abits}, env);
    const auto hw = run_hw<double>(mode.hard, [&] {
      return fpq::test::hw_sqrt_d(std::bit_cast<double>(abits));
    });
    const std::uint64_t hw_bits = std::bit_cast<std::uint64_t>(hw.value);
    const bool both_nan = soft.is_nan() && std::isnan(hw.value);
    ASSERT_TRUE(both_nan || soft.bits == hw_bits)
        << "sqrt64 mode=" << mode.name << " a=0x" << std::hex << abits
        << " soft=0x" << soft.bits << " hw=0x" << hw_bits;
    ASSERT_EQ(env.flags() & kStdFlags, hw.flags)
        << "sqrt64 flags a=0x" << std::hex << abits;
  }
}

TEST_P(DifferentialF64, Fma) {
  const ModeParam mode = GetParam();
  st::Xoshiro256pp g(0xF3A0006);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint64_t abits = gen_bits64(g);
    const std::uint64_t bbits = gen_bits64(g);
    const std::uint64_t cbits = gen_bits64(g);
    sf::Env env(mode.soft);
    const sf::Float64 soft =
        sf::fma(sf::Float64{abits}, sf::Float64{bbits}, sf::Float64{cbits},
                env);
    const auto hw = run_hw<double>(mode.hard, [&] {
      return fpq::test::hw_fma_d(std::bit_cast<double>(abits),
                                 std::bit_cast<double>(bbits),
                                 std::bit_cast<double>(cbits));
    });
    const std::uint64_t hw_bits = std::bit_cast<std::uint64_t>(hw.value);
    const bool both_nan = soft.is_nan() && std::isnan(hw.value);
    ASSERT_TRUE(both_nan || soft.bits == hw_bits)
        << "fma64 mode=" << mode.name << " a=0x" << std::hex << abits
        << " b=0x" << bbits << " c=0x" << cbits << " soft=0x" << soft.bits
        << " hw=0x" << hw_bits;
    // Flag comparison: invalid-on-(0*inf+NaN) is implementation-defined in
    // C (F.10.10.1), so tolerate a mismatch in kFlagInvalid for exactly
    // that operand pattern.
    const bool zero_inf_nan =
        ((sf::Float64{abits}.is_zero() && sf::Float64{bbits}.is_infinity()) ||
         (sf::Float64{abits}.is_infinity() && sf::Float64{bbits}.is_zero())) &&
        sf::Float64{cbits}.is_nan();
    const unsigned mask = zero_inf_nan ? (kStdFlags & ~sf::kFlagInvalid)
                                       : kStdFlags;
    ASSERT_EQ(env.flags() & mask, hw.flags & mask)
        << "fma64 flags mode=" << mode.name << " a=0x" << std::hex << abits
        << " b=0x" << bbits << " c=0x" << cbits;
  }
}

TEST_P(DifferentialF32, Add) {
  check_f32(
      GetParam(), 0xADD1001,
      [](auto a, auto b, sf::Env& e) { return sf::add(a, b, e); },
      fpq::test::hw_add_f, "add32");
}

TEST_P(DifferentialF32, Sub) {
  check_f32(
      GetParam(), 0x50B1002,
      [](auto a, auto b, sf::Env& e) { return sf::sub(a, b, e); },
      fpq::test::hw_sub_f, "sub32");
}

TEST_P(DifferentialF32, Mul) {
  check_f32(
      GetParam(), 0x3011003,
      [](auto a, auto b, sf::Env& e) { return sf::mul(a, b, e); },
      fpq::test::hw_mul_f, "mul32");
}

TEST_P(DifferentialF32, Div) {
  check_f32(
      GetParam(), 0xD141004,
      [](auto a, auto b, sf::Env& e) { return sf::div(a, b, e); },
      fpq::test::hw_div_f, "div32");
}

TEST_P(DifferentialF32, Sqrt) {
  const ModeParam mode = GetParam();
  st::Xoshiro256pp g(0x5F32);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint32_t abits = gen_bits32(g);
    sf::Env env(mode.soft);
    const sf::Float32 soft = sf::sqrt(sf::Float32{abits}, env);
    const auto hw = run_hw<float>(mode.hard, [&] {
      return fpq::test::hw_sqrt_f(std::bit_cast<float>(abits));
    });
    const std::uint32_t hw_bits = std::bit_cast<std::uint32_t>(hw.value);
    const bool both_nan = soft.is_nan() && std::isnan(hw.value);
    ASSERT_TRUE(both_nan || soft.bits == hw_bits)
        << "sqrt32 mode=" << mode.name << " a=0x" << std::hex << abits;
    ASSERT_EQ(env.flags() & kStdFlags, hw.flags)
        << "sqrt32 flags a=0x" << std::hex << abits;
  }
}

TEST_P(DifferentialF32, Fma) {
  const ModeParam mode = GetParam();
  st::Xoshiro256pp g(0xF3A1006);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint32_t abits = gen_bits32(g);
    const std::uint32_t bbits = gen_bits32(g);
    const std::uint32_t cbits = gen_bits32(g);
    sf::Env env(mode.soft);
    const sf::Float32 soft =
        sf::fma(sf::Float32{abits}, sf::Float32{bbits}, sf::Float32{cbits},
                env);
    const auto hw = run_hw<float>(mode.hard, [&] {
      return fpq::test::hw_fma_f(std::bit_cast<float>(abits),
                                 std::bit_cast<float>(bbits),
                                 std::bit_cast<float>(cbits));
    });
    const std::uint32_t hw_bits = std::bit_cast<std::uint32_t>(hw.value);
    const bool both_nan = soft.is_nan() && std::isnan(hw.value);
    ASSERT_TRUE(both_nan || soft.bits == hw_bits)
        << "fma32 mode=" << mode.name << " a=0x" << std::hex << abits
        << " b=0x" << bbits << " c=0x" << cbits << " soft=0x" << soft.bits
        << " hw=0x" << hw_bits;
    const bool zero_inf_nan =
        ((sf::Float32{abits}.is_zero() && sf::Float32{bbits}.is_infinity()) ||
         (sf::Float32{abits}.is_infinity() && sf::Float32{bbits}.is_zero())) &&
        sf::Float32{cbits}.is_nan();
    const unsigned mask = zero_inf_nan ? (kStdFlags & ~sf::kFlagInvalid)
                                       : kStdFlags;
    ASSERT_EQ(env.flags() & mask, hw.flags & mask)
        << "fma32 flags mode=" << mode.name << " a=0x" << std::hex << abits
        << " b=0x" << bbits << " c=0x" << cbits;
  }
}

// Subnormal-dense sweep: operands concentrated around the gradual
// underflow boundary, where tininess detection and flag semantics are the
// most delicate. Every op, every hardware rounding mode.
TEST(DifferentialSubnormal, DenseSweepAllOpsAllModes) {
  st::Xoshiro256pp g(0x5DB01);
  auto gen_tiny = [&g]() -> std::uint64_t {
    // Exponent in [0, 3]: subnormals and the first normal binades, with
    // random signs and occasional exact zeros.
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = st::uniform_below(g, 4);
    const std::uint64_t sign = g() & 0x8000000000000000ULL;
    if ((g() & 0xFF) == 0) return sign;  // ±0
    return sign | (exp << 52) | frac;
  };
  for (const ModeParam& mode : kModes) {
    for (int i = 0; i < 8000; ++i) {
      const std::uint64_t abits = gen_tiny();
      const std::uint64_t bbits = gen_tiny();
      struct Case {
        const char* name;
        sf::Float64 (*soft)(sf::Float64, sf::Float64, sf::Env&);
        double (*hard)(double, double);
      };
      static const Case kCases[] = {
          {"add", [](sf::Float64 a, sf::Float64 b,
                     sf::Env& e) { return sf::add(a, b, e); },
           fpq::test::hw_add_d},
          {"sub", [](sf::Float64 a, sf::Float64 b,
                     sf::Env& e) { return sf::sub(a, b, e); },
           fpq::test::hw_sub_d},
          {"mul", [](sf::Float64 a, sf::Float64 b,
                     sf::Env& e) { return sf::mul(a, b, e); },
           fpq::test::hw_mul_d},
          {"div", [](sf::Float64 a, sf::Float64 b,
                     sf::Env& e) { return sf::div(a, b, e); },
           fpq::test::hw_div_d},
      };
      for (const Case& c : kCases) {
        sf::Env env(mode.soft);
        const sf::Float64 soft = c.soft(sf::Float64{abits},
                                        sf::Float64{bbits}, env);
        const auto hw = run_hw<double>(mode.hard, [&] {
          return c.hard(std::bit_cast<double>(abits),
                        std::bit_cast<double>(bbits));
        });
        const std::uint64_t hw_bits = std::bit_cast<std::uint64_t>(hw.value);
        const bool both_nan = soft.is_nan() && std::isnan(hw.value);
        ASSERT_TRUE(both_nan || soft.bits == hw_bits)
            << c.name << " mode=" << mode.name << " a=0x" << std::hex
            << abits << " b=0x" << bbits;
        ASSERT_EQ(env.flags() & kStdFlags, hw.flags)
            << c.name << " flags mode=" << mode.name << " a=0x" << std::hex
            << abits << " b=0x" << bbits << " soft="
            << sf::flags_to_string(env.flags() & kStdFlags)
            << " hw=" << sf::flags_to_string(hw.flags);
      }
    }
  }
}

TEST(DifferentialConvert, NarrowDoubleToFloatMatchesHardware) {
  st::Xoshiro256pp g(0xC0471);
  for (const ModeParam& mode : kModes) {
    for (int i = 0; i < kIterations; ++i) {
      const std::uint64_t abits = gen_bits64(g);
      sf::Env env(mode.soft);
      const sf::Float32 soft = sf::convert<32>(sf::Float64{abits}, env);
      const auto hw = run_hw<float>(mode.hard, [&] {
        volatile double a = std::bit_cast<double>(abits);
        volatile float r = static_cast<float>(a);
        return r;
      });
      const std::uint32_t hw_bits = std::bit_cast<std::uint32_t>(hw.value);
      const bool both_nan = soft.is_nan() && std::isnan(hw.value);
      ASSERT_TRUE(both_nan || soft.bits == hw_bits)
          << "cvt64to32 mode=" << mode.name << " a=0x" << std::hex << abits
          << " soft=0x" << soft.bits << " hw=0x" << hw_bits;
      ASSERT_EQ(env.flags() & kStdFlags, hw.flags)
          << "cvt64to32 flags mode=" << mode.name << " a=0x" << std::hex
          << abits;
    }
  }
}

TEST(DifferentialConvert, WidenFloatToDoubleMatchesHardware) {
  st::Xoshiro256pp g(0xC0472);
  for (int i = 0; i < kIterations; ++i) {
    const std::uint32_t abits = gen_bits32(g);
    sf::Env env;
    const sf::Float64 soft = sf::convert<64>(sf::Float32{abits}, env);
    const auto hw = run_hw<double>(FE_TONEAREST, [&] {
      volatile float a = std::bit_cast<float>(abits);
      volatile double r = static_cast<double>(a);
      return r;
    });
    const std::uint64_t hw_bits = std::bit_cast<std::uint64_t>(hw.value);
    const bool both_nan = soft.is_nan() && std::isnan(hw.value);
    ASSERT_TRUE(both_nan || soft.bits == hw_bits)
        << "cvt32to64 a=0x" << std::hex << abits;
    // Widening raises no flags except invalid for signaling NaN inputs.
    ASSERT_EQ(env.flags() & kStdFlags, hw.flags)
        << "cvt32to64 flags a=0x" << std::hex << abits;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRoundingModes, DifferentialF64,
                         ::testing::ValuesIn(kModes),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

INSTANTIATE_TEST_SUITE_P(AllRoundingModes, DifferentialF32,
                         ::testing::ValuesIn(kModes),
                         [](const auto& info) {
                           std::string n = info.param.name;
                           for (auto& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

}  // namespace
