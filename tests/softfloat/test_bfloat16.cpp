// bfloat16: the truncated-binary32 ML format. Known encodings, the
// "binary32 range with almost no precision" trade-off, and an exact
// arithmetic oracle through binary64 (7-bit significands make every
// add/sub/mul exact in double).

#include <gtest/gtest.h>

#include <cstdint>

#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace st = fpq::stats;

namespace {

using BF = sf::BFloat16;

constexpr int kB = sf::kBFloat16;

TEST(BFloat16, Layout) {
  EXPECT_EQ(BF::one().bits, 0x3F80u) << "same as binary32's top 16 bits";
  EXPECT_EQ(BF::infinity().bits, 0x7F80u);
  EXPECT_EQ(BF::quiet_nan().bits, 0x7FC0u);
  EXPECT_EQ(BF::max_finite().bits, 0x7F7Fu);
  EXPECT_EQ(BF::min_normal().bits, 0x0080u);
  EXPECT_EQ(sf::format_name<kB>(), std::string("bfloat16"));
}

TEST(BFloat16, SharesBinary32ExponentRange) {
  sf::Env env;
  // max finite ~ 3.39e38, like binary32's magnitude range.
  const double maxf = sf::to_native(sf::convert<64>(BF::max_finite(), env));
  EXPECT_GT(maxf, 3e38);
  EXPECT_LT(maxf, 4e38);
  // ... but 1 + eps jumps straight to 1.0078125 (7 fraction bits).
  const BF above_one = sf::next_up(BF::one());
  EXPECT_EQ(sf::to_native(sf::convert<64>(above_one, env)), 1.0078125);
}

TEST(BFloat16, ConversionFromBinary32IsTopHalfRounded) {
  // Round-to-nearest of the low 16 bits of the binary32 encoding.
  st::Xoshiro256pp g(0xBF01);
  sf::Env env;
  for (int i = 0; i < 50000; ++i) {
    const auto fbits = static_cast<std::uint32_t>(g());
    const sf::Float32 f{fbits};
    if (f.is_nan()) continue;
    const BF b = sf::convert<kB>(f, env);
    // Manual reference: round the 32-bit encoding to its top 16 bits
    // (round-to-nearest-even on the dropped half) — the classic bfloat16
    // truncate-with-rounding, valid because the layouts nest.
    const std::uint32_t lower = fbits & 0xFFFFu;
    std::uint32_t top = fbits >> 16;
    if (lower > 0x8000u || (lower == 0x8000u && (top & 1u))) top += 1;
    // (top may carry into inf, which is correct overflow behavior)
    EXPECT_EQ(b.bits, static_cast<std::uint16_t>(top))
        << sf::describe(f);
  }
}

TEST(BFloat16, WideningToBinary32AppendsZeros) {
  st::Xoshiro256pp g(0xBF02);
  sf::Env env;
  for (int i = 0; i < 50000; ++i) {
    const BF b{static_cast<std::uint16_t>(g())};
    if (b.is_nan()) continue;
    const sf::Float32 f = sf::convert<32>(b, env);
    EXPECT_EQ(f.bits, static_cast<std::uint32_t>(b.bits) << 16)
        << sf::describe(b);
  }
}

enum class Op { kAdd, kSub, kMul };

class BFloat16Oracle : public ::testing::TestWithParam<Op> {};

TEST_P(BFloat16Oracle, ExactThroughBinary64) {
  // 8-bit significands: sums/products are exact in binary64, so one
  // final rounding gives the correct bfloat16 answer.
  st::Xoshiro256pp g(0xBF03 + static_cast<int>(GetParam()));
  for (int i = 0; i < 60000; ++i) {
    const BF a{static_cast<std::uint16_t>(g())};
    const BF b{static_cast<std::uint16_t>(g())};
    sf::Env env;
    BF direct;
    switch (GetParam()) {
      case Op::kAdd:
        direct = sf::add(a, b, env);
        break;
      case Op::kSub:
        direct = sf::sub(a, b, env);
        break;
      case Op::kMul:
        direct = sf::mul(a, b, env);
        break;
    }
    sf::Env wide_env;
    const sf::Float64 wa = sf::convert<64>(a, wide_env);
    const sf::Float64 wb = sf::convert<64>(b, wide_env);
    sf::Float64 wide;
    switch (GetParam()) {
      case Op::kAdd:
        wide = sf::add(wa, wb, wide_env);
        break;
      case Op::kSub:
        wide = sf::sub(wa, wb, wide_env);
        break;
      case Op::kMul:
        wide = sf::mul(wa, wb, wide_env);
        break;
    }
    sf::Env narrow;
    const BF via = sf::convert<kB>(wide, narrow);
    const bool both_nan = direct.is_nan() && via.is_nan();
    ASSERT_TRUE(both_nan || direct.bits == via.bits)
        << sf::describe(a) << " op " << sf::describe(b) << " direct "
        << sf::describe(direct) << " oracle " << sf::describe(via);
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, BFloat16Oracle,
                         ::testing::Values(Op::kAdd, Op::kSub, Op::kMul),
                         [](const auto& info) {
                           switch (info.param) {
                             case Op::kAdd:
                               return "add";
                             case Op::kSub:
                               return "sub";
                             default:
                               return "mul";
                           }
                         });

TEST(BFloat16, PrecisionGotchasAreWorseThanBinary16) {
  // The Saturation Plus threshold arrives at 256 (!) in bfloat16: ulp(256)
  // = 2, so 256 + 1 rounds back down.
  sf::Env env;
  const BF one = BF::one();
  const BF bf256 = sf::from_int64<kB>(256, env);
  EXPECT_EQ(sf::add(bf256, one, env).bits, bf256.bits)
      << "256 + 1 == 256 in bfloat16";
  // Compare: binary16 holds on until 2048.
  const auto h2048 = sf::from_int64<16>(2048, env);
  const auto hone = sf::Float16::one();
  EXPECT_EQ(sf::add(h2048, hone, env).bits, h2048.bits);
  const auto h1024 = sf::from_int64<16>(1024, env);
  EXPECT_NE(sf::add(h1024, hone, env).bits, h1024.bits);
}

TEST(BFloat16, QuizGotchasHoldInBfloat16Too) {
  // The core-quiz behaviors are format-independent: spot-check the
  // headline ones on bfloat16.
  sf::Env env;
  const BF zero = BF::zero();
  const BF one = BF::one();
  const BF nan = sf::div(zero, zero, env);
  EXPECT_TRUE(nan.is_nan()) << "0/0 invalid";
  EXPECT_FALSE(sf::equal(nan, nan, env)) << "Identity fails";
  EXPECT_TRUE(sf::div(one, zero, env).is_infinity()) << "1/0 is inf";
  EXPECT_TRUE(sf::equal(zero, zero.negated(), env)) << "-0 == +0";
  const BF big = BF::max_finite();
  EXPECT_TRUE(sf::add(big, big, env).is_infinity()) << "saturating overflow";
}

TEST(BFloat16, UtilitiesWork) {
  EXPECT_EQ(sf::next_up(BF::max_finite()).bits, BF::infinity().bits);
  EXPECT_EQ(sf::next_up(BF::zero()).bits, BF::min_subnormal().bits);
  sf::Env env;
  EXPECT_EQ(sf::min_num(BF::quiet_nan(), BF::one(), env).bits,
            BF::one().bits);
  EXPECT_EQ(sf::to_native(sf::convert<64>(
                sf::round_to_integral(sf::convert<kB>(
                                          sf::from_native(2.5), env),
                                      env),
                env)),
            2.0);
}

}  // namespace
