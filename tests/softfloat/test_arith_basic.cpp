// Directed arithmetic tests: special values, signed zeros, saturation,
// exception flags — the behaviors the paper's core quiz is about, asserted
// against the engine directly.

#include <gtest/gtest.h>

#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"

namespace sf = fpq::softfloat;

namespace {

using F64 = sf::Float64;
using F32 = sf::Float32;

F64 d(double x) { return sf::from_native(x); }

TEST(ArithBasic, SimpleExactSums) {
  sf::Env env;
  EXPECT_EQ(sf::add(d(1.0), d(2.0), env).bits, d(3.0).bits);
  EXPECT_EQ(sf::add(d(-1.0), d(1.0), env).bits, d(0.0).bits);
  EXPECT_EQ(sf::sub(d(5.0), d(3.0), env).bits, d(2.0).bits);
  EXPECT_EQ(sf::mul(d(3.0), d(4.0), env).bits, d(12.0).bits);
  EXPECT_EQ(sf::div(d(1.0), d(4.0), env).bits, d(0.25).bits);
  EXPECT_EQ(env.flags(), 0u) << "all of the above are exact";
}

TEST(ArithBasic, InexactRaisesOnlyInexact) {
  sf::Env env;
  const F64 r = sf::div(d(1.0), d(3.0), env);
  EXPECT_EQ(r.bits, d(1.0 / 3.0).bits);
  EXPECT_EQ(env.flags(), sf::kFlagInexact);
}

TEST(ArithBasic, DivideByZeroGivesInfinityNotNaN) {
  // Core quiz "Divide By Zero": 1.0/0.0 is an infinity — a non-NaN value
  // that can silently propagate into output.
  sf::Env env;
  const F64 r = sf::div(d(1.0), d(0.0), env);
  EXPECT_TRUE(r.is_infinity());
  EXPECT_FALSE(r.sign());
  EXPECT_FALSE(r.is_nan());
  EXPECT_EQ(env.flags(), sf::kFlagDivByZero);

  sf::Env env2;
  EXPECT_TRUE(sf::div(d(-1.0), d(0.0), env2).is_infinity());
  EXPECT_TRUE(sf::div(d(-1.0), d(0.0), env2).sign());
}

TEST(ArithBasic, ZeroDivZeroIsNaN) {
  // Core quiz "Zero Divide By Zero": 0.0/0.0 IS a NaN.
  sf::Env env;
  const F64 r = sf::div(d(0.0), d(0.0), env);
  EXPECT_TRUE(r.is_nan());
  EXPECT_EQ(env.flags(), sf::kFlagInvalid);
}

TEST(ArithBasic, InfMinusInfIsInvalid) {
  sf::Env env;
  const F64 r = sf::sub(F64::infinity(), F64::infinity(), env);
  EXPECT_TRUE(r.is_nan());
  EXPECT_TRUE(env.test(sf::kFlagInvalid));
}

TEST(ArithBasic, InfPlusInfSameSign) {
  sf::Env env;
  EXPECT_TRUE(sf::add(F64::infinity(), F64::infinity(), env).is_infinity());
  EXPECT_EQ(env.flags(), 0u);
}

TEST(ArithBasic, ZeroTimesInfIsInvalid) {
  sf::Env env;
  EXPECT_TRUE(sf::mul(d(0.0), F64::infinity(), env).is_nan());
  EXPECT_TRUE(env.test(sf::kFlagInvalid));
}

TEST(ArithBasic, InfOverInfIsInvalid) {
  sf::Env env;
  EXPECT_TRUE(sf::div(F64::infinity(), F64::infinity(), env).is_nan());
  EXPECT_TRUE(env.test(sf::kFlagInvalid));
}

TEST(ArithBasic, SaturationPlusOne) {
  // Core quiz "Saturation Plus": (a + 1.0) == a is possible — at infinity
  // and for large finite magnitudes where 1.0 is below half an ulp.
  sf::Env env;
  const F64 inf = F64::infinity();
  EXPECT_EQ(sf::add(inf, d(1.0), env).bits, inf.bits);

  const F64 big = d(1e300);
  EXPECT_EQ(sf::add(big, d(1.0), env).bits, big.bits);
  EXPECT_TRUE(env.test(sf::kFlagInexact));
}

TEST(ArithBasic, SaturationMinusCannotBackOffInfinity) {
  // Core quiz "Saturation Minus": inf - 1.0 == inf; you cannot "back off".
  sf::Env env;
  EXPECT_EQ(sf::sub(F64::infinity(), d(1.0), env).bits, F64::infinity().bits);
  EXPECT_EQ(sf::sub(F64::infinity(true), d(-1.0), env).bits,
            F64::infinity(true).bits);
}

TEST(ArithBasic, OverflowSaturatesToInfinity) {
  // Core quiz "Overflow": floating point overflow saturates at infinity,
  // unlike integer wrap-around.
  sf::Env env;
  const F64 r = sf::mul(F64::max_finite(), d(2.0), env);
  EXPECT_TRUE(r.is_infinity());
  EXPECT_FALSE(r.sign());
  EXPECT_TRUE(env.test(sf::kFlagOverflow));
  EXPECT_TRUE(env.test(sf::kFlagInexact));

  sf::Env env2;
  const F64 sum = sf::add(F64::max_finite(), F64::max_finite(), env2);
  EXPECT_TRUE(sum.is_infinity());
}

TEST(ArithBasic, SquareOfFiniteIsNonNegative) {
  // Core quiz "Square": x*x >= 0 always holds for non-NaN floating point
  // (no integer-style wrap to negative).
  sf::Env env;
  const double samples[] = {0.0, -0.0, 1.5, -2.5, 1e300, -1e300, 1e-320};
  for (double x : samples) {
    const F64 sq = sf::mul(d(x), d(x), env);
    EXPECT_FALSE(sq.sign()) << "x = " << x;
    EXPECT_FALSE(sq.is_nan()) << "x = " << x;
  }
  // Even when the square overflows, the result is +inf, still >= 0.
  EXPECT_FALSE(sf::mul(F64::max_finite(true), F64::max_finite(true), env)
                   .sign());
}

TEST(ArithBasic, SignedZeroRules) {
  sf::Env env;
  // x - x = +0 (round-to-nearest).
  EXPECT_EQ(sf::sub(d(1.0), d(1.0), env).bits, d(+0.0).bits);
  // (+0) + (-0) = +0; (-0) + (-0) = -0.
  EXPECT_EQ(sf::add(d(+0.0), d(-0.0), env).bits, d(+0.0).bits);
  EXPECT_EQ(sf::add(d(-0.0), d(-0.0), env).bits, d(-0.0).bits);
  // Negative zero from multiplication sign rules.
  EXPECT_EQ(sf::mul(d(-1.0), d(0.0), env).bits, d(-0.0).bits);
  EXPECT_EQ(sf::div(d(0.0), d(-4.0), env).bits, d(-0.0).bits);
}

TEST(ArithBasic, XMinusXIsMinusZeroWhenRoundingDown) {
  sf::Env env(sf::Rounding::kDown);
  EXPECT_EQ(sf::sub(d(1.0), d(1.0), env).bits, d(-0.0).bits);
  EXPECT_EQ(sf::add(d(1.0), d(-1.0), env).bits, d(-0.0).bits);
}

TEST(ArithBasic, NegativeZeroEqualsPositiveZero) {
  // Core quiz "Negative Zero": two zero values are never unequal.
  sf::Env env;
  EXPECT_TRUE(sf::equal(d(+0.0), d(-0.0), env));
  EXPECT_FALSE(sf::less(d(-0.0), d(+0.0), env));
  EXPECT_EQ(env.flags(), 0u);
}

TEST(ArithBasic, NaNNeverEqualsItself) {
  // Core quiz "Identity": a == a is false when a is NaN.
  sf::Env env;
  const F64 nan = F64::quiet_nan();
  EXPECT_FALSE(sf::equal(nan, nan, env));
  EXPECT_EQ(env.flags(), 0u) << "quiet compare of qNaN raises nothing";
  EXPECT_FALSE(sf::less(nan, nan, env));
  EXPECT_TRUE(env.test(sf::kFlagInvalid)) << "signaling compare raises";
}

TEST(ArithBasic, SignalingNaNRaisesOnQuietCompare) {
  sf::Env env;
  EXPECT_FALSE(sf::equal(F64::signaling_nan(), d(1.0), env));
  EXPECT_TRUE(env.test(sf::kFlagInvalid));
}

TEST(ArithBasic, NaNPropagatesThroughArithmetic) {
  sf::Env env;
  EXPECT_TRUE(sf::add(F64::quiet_nan(), d(1.0), env).is_nan());
  EXPECT_TRUE(sf::mul(d(2.0), F64::quiet_nan(), env).is_nan());
  EXPECT_TRUE(sf::div(F64::quiet_nan(), d(0.0), env).is_nan());
  EXPECT_TRUE(sf::sqrt(F64::quiet_nan(), env).is_nan());
  EXPECT_EQ(env.flags(), 0u) << "quiet NaNs propagate without flags";

  sf::Env env2;
  EXPECT_TRUE(sf::add(F64::signaling_nan(), d(1.0), env2).is_quiet_nan());
  EXPECT_TRUE(env2.test(sf::kFlagInvalid));
}

TEST(ArithBasic, SqrtSpecials) {
  sf::Env env;
  EXPECT_EQ(sf::sqrt(d(4.0), env).bits, d(2.0).bits);
  EXPECT_EQ(sf::sqrt(d(0.0), env).bits, d(0.0).bits);
  EXPECT_EQ(sf::sqrt(d(-0.0), env).bits, d(-0.0).bits);  // sqrt(-0) = -0 (!)
  EXPECT_TRUE(sf::sqrt(F64::infinity(), env).is_infinity());
  EXPECT_EQ(env.flags(), 0u);

  sf::Env env2;
  EXPECT_TRUE(sf::sqrt(d(-1.0), env2).is_nan());
  EXPECT_TRUE(env2.test(sf::kFlagInvalid));
}

TEST(ArithBasic, SqrtExactAndInexact) {
  sf::Env env;
  EXPECT_EQ(sf::sqrt(d(2.25), env).bits, d(1.5).bits);
  EXPECT_EQ(env.flags(), 0u);
  EXPECT_EQ(sf::sqrt(d(2.0), env).bits, d(1.4142135623730951).bits);
  EXPECT_EQ(env.flags(), sf::kFlagInexact);
}

TEST(ArithBasic, GradualUnderflowProducesSubnormals) {
  sf::Env env;
  const F64 tiny = F64::min_normal();
  const F64 r = sf::div(tiny, d(2.0), env);
  EXPECT_TRUE(r.is_subnormal());
  EXPECT_EQ(env.flags(), 0u) << "exact subnormal result: no underflow flag";
}

TEST(ArithBasic, InexactTinyResultRaisesUnderflow) {
  sf::Env env;
  const F64 r = sf::mul(d(1e-300), d(1e-300), env);  // 1e-600 underflows
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(env.test(sf::kFlagUnderflow));
  EXPECT_TRUE(env.test(sf::kFlagInexact));
}

TEST(ArithBasic, FmaDiffersFromMulThenAdd) {
  // The MADD question: one rounding vs two can change the result.
  // Construct: a*a - a*a' where the product needs more than 53 bits.
  const F64 a = d(1.0 + 0x1.0p-52);
  sf::Env env;
  const F64 prod = sf::mul(a, a, env);                 // rounded product
  const F64 fused = sf::fma(a, a, prod.negated(), env);  // exact residual
  EXPECT_FALSE(fused.is_zero())
      << "fma exposes the rounding error of the multiply";
  const F64 unfused = sf::sub(prod, prod, env);
  EXPECT_TRUE(unfused.is_zero());
}

TEST(ArithBasic, FmaBasics) {
  sf::Env env;
  EXPECT_EQ(sf::fma(d(2.0), d(3.0), d(4.0), env).bits, d(10.0).bits);
  EXPECT_EQ(sf::fma(d(2.0), d(3.0), d(-6.0), env).bits, d(0.0).bits);
  EXPECT_EQ(env.flags(), 0u);
  // inf handling: 0*inf + c invalid; inf*x + (-inf) invalid.
  sf::Env env2;
  EXPECT_TRUE(sf::fma(d(0.0), F64::infinity(), d(1.0), env2).is_nan());
  EXPECT_TRUE(env2.test(sf::kFlagInvalid));
  sf::Env env3;
  EXPECT_TRUE(
      sf::fma(d(1.0), F64::infinity(), F64::infinity(true), env3).is_nan());
  EXPECT_TRUE(env3.test(sf::kFlagInvalid));
}

TEST(ArithBasic, StickyFlagsAccumulate) {
  sf::Env env;
  sf::div(d(1.0), d(3.0), env);          // inexact
  sf::div(d(1.0), d(0.0), env);          // divbyzero
  sf::mul(d(1e-300), d(1e-300), env);    // underflow + inexact
  sf::mul(d(1e300), d(1e300), env);      // overflow + inexact
  EXPECT_TRUE(env.test(sf::kFlagInexact));
  EXPECT_TRUE(env.test(sf::kFlagDivByZero));
  EXPECT_TRUE(env.test(sf::kFlagUnderflow));
  EXPECT_TRUE(env.test(sf::kFlagOverflow));
  EXPECT_FALSE(env.test(sf::kFlagInvalid));
  env.clear_flags();
  EXPECT_EQ(env.flags(), 0u);
}

TEST(ArithBasic, AssociativityCounterexample) {
  // Core quiz "Associativity": (a+b)+c != a+(b+c) in general.
  sf::Env env;
  const F64 a = d(1e16), b = d(-1e16), c = d(1.0);
  const F64 left = sf::add(sf::add(a, b, env), c, env);
  const F64 right = sf::add(a, sf::add(b, c, env), env);
  EXPECT_EQ(sf::to_native(left), 1.0);
  // b + c = -9999999999999999 is an exact tie; 1e16's even significand
  // wins, so the inner sum rounds back to -1e16 and the total is 0.
  EXPECT_EQ(sf::to_native(right), 0.0);
  EXPECT_NE(left.bits, right.bits);
}

TEST(ArithBasic, OrderingCounterexample) {
  // Core quiz "Ordering": ((a+b)-a) == b is not always true.
  sf::Env env;
  const F64 a = d(1e16), b = d(1.0);
  const F64 r = sf::sub(sf::add(a, b, env), a, env);
  EXPECT_NE(r.bits, b.bits);
  EXPECT_EQ(sf::to_native(r), 0.0);
}

TEST(ArithBasic, DistributivityCounterexample) {
  // Core quiz "Distributivity": a*(b+c) != a*b + a*c in general.
  sf::Env env;
  // Extreme case: a*(b+c) is exactly 0 while a*b + a*c is inf - inf = NaN.
  const F64 a = d(1e308), b = d(1e308), c = d(-1e308);
  const F64 left = sf::mul(a, sf::add(b, c, env), env);
  const F64 right = sf::add(sf::mul(a, b, env), sf::mul(a, c, env), env);
  EXPECT_TRUE(left.is_zero());
  EXPECT_TRUE(right.is_nan());
  EXPECT_NE(left.bits, right.bits);

  // Ordinary rounding case: 0.1 * (0.7 + 0.1) vs 0.1*0.7 + 0.1*0.1.
  sf::Env env2;
  const F64 x = d(0.1), y = d(0.7), z = d(0.1);
  const F64 l2 = sf::mul(x, sf::add(y, z, env2), env2);
  const F64 r2 = sf::add(sf::mul(x, y, env2), sf::mul(x, z, env2), env2);
  EXPECT_EQ(l2.bits, sf::from_native(0.1 * (0.7 + 0.1)).bits);
  EXPECT_EQ(r2.bits, sf::from_native(0.1 * 0.7 + 0.1 * 0.1).bits);
}

TEST(ArithBasic, CommutativityHolds) {
  // Core quiz "Commutativity": a+b == b+a for floating point (non-NaN).
  sf::Env env;
  const double xs[] = {0.1, -3.5, 1e300, 1e-320, 0.0, -0.0, 7.25};
  for (double x : xs) {
    for (double y : xs) {
      EXPECT_EQ(sf::add(d(x), d(y), env).bits, sf::add(d(y), d(x), env).bits);
      EXPECT_EQ(sf::mul(d(x), d(y), env).bits, sf::mul(d(y), d(x), env).bits);
    }
  }
}

TEST(ArithBasic, Binary32Arithmetic) {
  sf::Env env;
  const F32 a = sf::from_native(0.1f);
  const F32 b = sf::from_native(0.2f);
  const F32 sum = sf::add(a, b, env);
  EXPECT_EQ(sum.bits, sf::from_native(0.1f + 0.2f).bits);
}

TEST(ArithBasic, Binary16Arithmetic) {
  sf::Env env;
  using F16 = sf::Float16;
  const F16 one = F16::one();
  const F16 two = sf::add(one, one, env);
  EXPECT_EQ(two.bits, 0x4000u);
  // 1/3 in binary16, known value 0x3555 (0.333251953125).
  const F16 three = sf::from_int64<16>(3, env);
  EXPECT_EQ(sf::div(one, three, env).bits, 0x3555u);
  // binary16 saturates quickly: 65504 + 15 rounds back down to 65504, but
  // 65504 + 16 is the tie at 65520, and the even significand is 65536's,
  // so the tie rounds UP and overflows to infinity.
  const F16 maxf = F16::max_finite();
  sf::Env env2;
  const F16 fifteen = sf::from_int64<16>(15, env2);
  EXPECT_EQ(sf::add(maxf, fifteen, env2).bits, maxf.bits);
  sf::Env env3;
  const F16 sixteen = sf::from_int64<16>(16, env3);
  EXPECT_TRUE(sf::add(maxf, sixteen, env3).is_infinity());
  EXPECT_TRUE(env3.test(sf::kFlagOverflow));
}

}  // namespace
