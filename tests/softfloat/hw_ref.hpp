// Test-only hardware reference oracle: runs an operation on the host FPU
// under a chosen rounding mode, capturing the resulting fenv sticky flags,
// so softfloat results can be compared bit-for-bit against IEEE hardware.
#pragma once

#include <cfenv>
#include <cstdint>

#include "softfloat/env.hpp"

namespace fpq::test {

/// Maps a softfloat rounding mode to the host's fenv constant; returns
/// false for modes the hardware cannot express (roundTiesToAway).
inline bool to_fenv_rounding(softfloat::Rounding r, int& out) {
  switch (r) {
    case softfloat::Rounding::kNearestEven:
      out = FE_TONEAREST;
      return true;
    case softfloat::Rounding::kTowardZero:
      out = FE_TOWARDZERO;
      return true;
    case softfloat::Rounding::kDown:
      out = FE_DOWNWARD;
      return true;
    case softfloat::Rounding::kUp:
      out = FE_UPWARD;
      return true;
    case softfloat::Rounding::kNearestAway:
      return false;
  }
  return false;
}

/// Translates raised fenv flags into softfloat Flag bits (the five standard
/// exceptions only; kFlagDenormalInput has no portable fenv equivalent).
inline unsigned from_fenv_flags(int excepts) {
  unsigned flags = 0;
  if (excepts & FE_INVALID) flags |= softfloat::kFlagInvalid;
  if (excepts & FE_DIVBYZERO) flags |= softfloat::kFlagDivByZero;
  if (excepts & FE_OVERFLOW) flags |= softfloat::kFlagOverflow;
  if (excepts & FE_UNDERFLOW) flags |= softfloat::kFlagUnderflow;
  if (excepts & FE_INEXACT) flags |= softfloat::kFlagInexact;
  return flags;
}

/// Result of running one operation on the host FPU.
template <typename T>
struct HwResult {
  T value{};
  unsigned flags = 0;  ///< softfloat Flag bits
};

/// RAII rounding-mode guard for the host fenv.
class ScopedHwRounding {
 public:
  explicit ScopedHwRounding(int mode) : saved_(fegetround()) {
    fesetround(mode);
  }
  ~ScopedHwRounding() { fesetround(saved_); }
  ScopedHwRounding(const ScopedHwRounding&) = delete;
  ScopedHwRounding& operator=(const ScopedHwRounding&) = delete;

 private:
  int saved_;
};

/// Runs `op` (a callable returning T) with clean sticky flags under the
/// given fenv rounding mode and captures value + flags. The callable must
/// keep its operands opaque to the optimizer (the helpers below do).
template <typename T, typename Op>
HwResult<T> run_hw(int fenv_rounding, Op&& op) {
  ScopedHwRounding guard(fenv_rounding);
  std::feclearexcept(FE_ALL_EXCEPT);
  HwResult<T> r;
  r.value = op();
  r.flags = from_fenv_flags(std::fetestexcept(FE_ALL_EXCEPT));
  return r;
}

// Opaque arithmetic helpers: noinline + volatile operands defeat constant
// folding so the operations really execute under the runtime fenv state.
#define FPQ_HW_BINOP(NAME, TYPE, EXPR)                              \
  [[gnu::noinline]] inline TYPE NAME(TYPE a, TYPE b) {              \
    volatile TYPE va = a;                                           \
    volatile TYPE vb = b;                                           \
    volatile TYPE r = EXPR;                                         \
    return r;                                                       \
  }

FPQ_HW_BINOP(hw_add_f, float, va + vb)
FPQ_HW_BINOP(hw_sub_f, float, va - vb)
FPQ_HW_BINOP(hw_mul_f, float, va * vb)
FPQ_HW_BINOP(hw_div_f, float, va / vb)
FPQ_HW_BINOP(hw_add_d, double, va + vb)
FPQ_HW_BINOP(hw_sub_d, double, va - vb)
FPQ_HW_BINOP(hw_mul_d, double, va * vb)
FPQ_HW_BINOP(hw_div_d, double, va / vb)

#undef FPQ_HW_BINOP

[[gnu::noinline]] inline float hw_sqrt_f(float a) {
  volatile float va = a;
  volatile float r = __builtin_sqrtf(va);
  return r;
}
[[gnu::noinline]] inline double hw_sqrt_d(double a) {
  volatile double va = a;
  volatile double r = __builtin_sqrt(va);
  return r;
}
[[gnu::noinline]] inline float hw_fma_f(float a, float b, float c) {
  volatile float va = a, vb = b, vc = c;
  volatile float r = __builtin_fmaf(va, vb, vc);
  return r;
}
[[gnu::noinline]] inline double hw_fma_d(double a, double b, double c) {
  volatile double va = a, vb = b, vc = c;
  volatile double r = __builtin_fma(va, vb, vc);
  return r;
}

}  // namespace fpq::test
