// Exact-oracle testing for binary16 arithmetic.
//
// binary16 operands have 11-bit significands and 5-bit exponents, so the
// EXACT sum/difference/product of any two of them is representable in
// binary64 with plenty of room (sums need <= ~36 significant bits,
// products <= 22). Therefore:
//
//     convert16(  exact-op-in-binary64( widen(a), widen(b) )  )
//
// rounds exactly once and is the correctly rounded binary16 answer. This
// gives a perfect independent reference for add/sub/mul that exercises the
// engine's binary16 instantiation far beyond the directed tests — across
// all five rounding modes, over both random and exhaustive-boundary
// operand sets.

#include <gtest/gtest.h>

#include <cstdint>

#include "softfloat/ops.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace st = fpq::stats;

namespace {

using F16 = sf::Float16;
using F64 = sf::Float64;

const sf::Rounding kAllModes[] = {
    sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
    sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway,
};

enum class Op { kAdd, kSub, kMul };

F16 run_f16(Op op, F16 a, F16 b, sf::Env& env) {
  switch (op) {
    case Op::kAdd:
      return sf::add(a, b, env);
    case Op::kSub:
      return sf::sub(a, b, env);
    case Op::kMul:
      return sf::mul(a, b, env);
  }
  return F16{};
}

F64 run_f64(Op op, F64 a, F64 b, sf::Env& env) {
  switch (op) {
    case Op::kAdd:
      return sf::add(a, b, env);
    case Op::kSub:
      return sf::sub(a, b, env);
    case Op::kMul:
      return sf::mul(a, b, env);
  }
  return F64{};
}

// Computes the oracle result: exact op in binary64, one rounding to
// binary16. Returns true when the binary64 step was indeed exact (it must
// be for add/sub/mul of binary16 values).
F16 oracle(Op op, F16 a, F16 b, sf::Rounding mode, bool& exact64) {
  sf::Env widen;  // widening is exact
  const F64 wa = sf::convert<64>(a, widen);
  const F64 wb = sf::convert<64>(b, widen);
  // The wide op must run under the target mode: even exact results carry
  // mode dependence through the sign of exact zeros (x + (-x) is -0 under
  // roundTowardNegative).
  sf::Env exact_env(mode);
  const F64 wide = run_f64(op, wa, wb, exact_env);
  exact64 = !exact_env.test(sf::kFlagInexact);
  sf::Env narrow(mode);
  return sf::convert<16>(wide, narrow);
}

void check_pair(Op op, std::uint16_t abits, std::uint16_t bbits,
                sf::Rounding mode, const char* what) {
  const F16 a{abits}, b{bbits};
  sf::Env env(mode);
  const F16 direct = run_f16(op, a, b, env);
  bool exact64 = false;
  const F16 via = oracle(op, a, b, mode, exact64);
  if (a.is_finite() && b.is_finite()) {
    ASSERT_TRUE(exact64) << what << ": binary64 intermediate must be exact";
  }
  const bool both_nan = direct.is_nan() && via.is_nan();
  ASSERT_TRUE(both_nan || direct.bits == via.bits)
      << what << " op=" << static_cast<int>(op)
      << " mode=" << sf::rounding_to_string(mode) << " a="
      << sf::describe(a) << " b=" << sf::describe(b) << " direct="
      << sf::describe(direct) << " oracle=" << sf::describe(via);
}

class Binary16Oracle : public ::testing::TestWithParam<Op> {};

TEST_P(Binary16Oracle, RandomPairsAllModes) {
  st::Xoshiro256pp g(0x160A + static_cast<int>(GetParam()));
  for (sf::Rounding mode : kAllModes) {
    for (int i = 0; i < 40000; ++i) {
      const auto abits = static_cast<std::uint16_t>(g());
      const auto bbits = static_cast<std::uint16_t>(g());
      check_pair(GetParam(), abits, bbits, mode, "random");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST_P(Binary16Oracle, BoundaryPairsAllModes) {
  // Exhaustive over a boundary set: values around the subnormal/normal
  // border, the overflow border, powers of two, and specials.
  std::vector<std::uint16_t> boundary;
  for (std::uint16_t base : {
           std::uint16_t{0x0000},  // +0
           std::uint16_t{0x0001},  // min subnormal
           std::uint16_t{0x03FF},  // max subnormal
           std::uint16_t{0x0400},  // min normal
           std::uint16_t{0x3C00},  // 1.0
           std::uint16_t{0x7BFF},  // max finite
           std::uint16_t{0x7C00},  // +inf
           std::uint16_t{0x7E00},  // qNaN
           std::uint16_t{0x4000},  // 2.0
           std::uint16_t{0x3555},  // ~1/3
       }) {
    for (int delta : {-2, -1, 0, 1, 2}) {
      const int v = static_cast<int>(base) + delta;
      if (v < 0 || v > 0xFFFF) continue;
      boundary.push_back(static_cast<std::uint16_t>(v));
      boundary.push_back(
          static_cast<std::uint16_t>(v | 0x8000));  // negative twin
    }
  }
  for (sf::Rounding mode : kAllModes) {
    for (std::uint16_t a : boundary) {
      for (std::uint16_t b : boundary) {
        check_pair(GetParam(), a, b, mode, "boundary");
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, Binary16Oracle,
                         ::testing::Values(Op::kAdd, Op::kSub, Op::kMul),
                         [](const auto& info) {
                           switch (info.param) {
                             case Op::kAdd:
                               return "add";
                             case Op::kSub:
                               return "sub";
                             default:
                               return "mul";
                           }
                         });

TEST(Binary16OracleDiv, QuotientWithinOneUlpOfWideQuotient) {
  // Division is not exact in binary64, so the oracle is weaker: the
  // binary16 quotient must be one of the two binary16 neighbours of the
  // correctly rounded binary64 quotient (single- vs double-rounding can
  // differ by at most the final ulp).
  st::Xoshiro256pp g(0xD16);
  for (int i = 0; i < 40000; ++i) {
    const F16 a{static_cast<std::uint16_t>(g())};
    const F16 b{static_cast<std::uint16_t>(g())};
    sf::Env env;
    const F16 direct = sf::div(a, b, env);
    sf::Env wide_env;
    const F64 wide = sf::div(sf::convert<64>(a, wide_env),
                             sf::convert<64>(b, wide_env), wide_env);
    sf::Env narrow;
    const F16 via = sf::convert<16>(wide, narrow);
    if (direct.is_nan()) {
      ASSERT_TRUE(via.is_nan());
      continue;
    }
    const bool close = direct.bits == via.bits ||
                       direct.bits + 1 == via.bits ||
                       via.bits + 1 == direct.bits;
    ASSERT_TRUE(close) << sf::describe(a) << " / " << sf::describe(b)
                       << " -> " << sf::describe(direct) << " vs "
                       << sf::describe(via);
  }
}

}  // namespace
