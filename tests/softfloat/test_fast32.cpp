// Differential tests for the binary32 fast path and the vectorized batch
// kernels (softfloat/fast32.hpp, softfloat/batch_kernels_*.cpp): every
// kernel variant must be bit- and flag-identical to the scalar softfloat
// reference, across all five rounding modes and every FTZ/DAZ
// combination. The full proof is the exhaustive sweep32 gate; this suite
// is the fast regression: a ULP-stratified 2^16 lattice seeded with the
// sweep corner corpus, exhaustive 2^16 sweeps where the operand space
// permits, and the corpus cross-product for the fallback-lane predicate.
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/sweep32_ref.hpp"
#include "softfloat/batch.hpp"
#include "softfloat/fast32.hpp"
#include "softfloat/kernels.hpp"
#include "softfloat/ops.hpp"

namespace sf = fpq::softfloat;
namespace f32 = fpq::softfloat::fast32;
namespace sweep32 = fpq::parallel::sweep32;

namespace {

struct EnvCfg {
  sf::Rounding mode;
  bool ftz;
  bool daz;
};

constexpr sf::Rounding kModes[] = {
    sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
    sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway};

sf::Env make_env(const EnvCfg& cfg) {
  sf::Env env(cfg.mode);
  env.set_flush_to_zero(cfg.ftz);
  env.set_denormals_are_zero(cfg.daz);
  return env;
}

std::string cfg_name(const EnvCfg& cfg) {
  std::string s = "mode=";
  s += std::to_string(static_cast<int>(cfg.mode));
  if (cfg.ftz) s += " ftz";
  if (cfg.daz) s += " daz";
  return s;
}

/// The ULP-stratified operand lattice, seeded with every sign-mirrored
/// corpus encoding so the special/boundary cases are always present.
std::vector<sf::Float32> lattice32(std::size_t n, std::uint64_t seed) {
  std::vector<sf::Float32> v;
  v.reserve(n);
  for (const std::uint32_t p : sweep32::corner32_patterns()) {
    v.push_back(sf::Float32::from_bits(p));
    v.push_back(sf::Float32::from_bits(p | 0x8000'0000u));
  }
  fpq::parallel::sweep_detail::Sm64 g(seed);
  while (v.size() < n) {
    v.push_back(sf::Float32::from_bits(sweep32::ulp_stratified_pattern(g)));
  }
  v.resize(n);
  return v;
}

struct LaneResult {
  std::vector<std::uint64_t> bits;
  std::vector<unsigned> flags;
  bool operator==(const LaneResult&) const = default;
};

/// Runs `call` (which invokes a batch entry point into the given output
/// span) under a forced kernel variant and packages bits + flags.
template <typename F, typename Call>
LaneResult run_variant(sf::KernelVariant variant, std::size_t n,
                       const EnvCfg& cfg, Call call) {
  sf::ScopedKernelVariant forced(variant);
  EXPECT_TRUE(forced.applied());
  std::vector<F> out(n);
  std::vector<unsigned> flags(n, 0);
  sf::Env env = make_env(cfg);
  call(out.data(), flags.data(), env);
  LaneResult r;
  r.bits.reserve(n);
  for (const F& x : out) r.bits.push_back(x.bits);
  r.flags = std::move(flags);
  return r;
}

std::vector<sf::KernelVariant> accelerated_variants() {
  std::vector<sf::KernelVariant> v{sf::KernelVariant::kPortable};
  if (sf::kernel_variant_available(sf::KernelVariant::kAvx2)) {
    v.push_back(sf::KernelVariant::kAvx2);
  }
  return v;
}

/// Asserts every accelerated variant matches kScalar lane-for-lane.
template <typename F, typename Call>
void expect_parity(const char* what, std::size_t n, const EnvCfg& cfg,
                   Call call) {
  const LaneResult ref =
      run_variant<F>(sf::KernelVariant::kScalar, n, cfg, call);
  for (const sf::KernelVariant v : accelerated_variants()) {
    const LaneResult got = run_variant<F>(v, n, cfg, call);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref.bits[i], got.bits[i])
          << what << " lane " << i << " variant "
          << sf::kernel_variant_name(v) << " " << cfg_name(cfg);
      ASSERT_EQ(ref.flags[i], got.flags[i])
          << what << " flags lane " << i << " variant "
          << sf::kernel_variant_name(v) << " " << cfg_name(cfg);
    }
  }
}

}  // namespace

// The 2^16 stratified add/sub/mul/div/fma lattice: every accelerated
// variant vs the scalar reference, 5 modes x FTZ/DAZ.
TEST(Fast32Lattice, BinaryOpsMatchScalarAllModesAllEnvs) {
  constexpr std::size_t kN = std::size_t{1} << 16;
  const auto a = lattice32(kN, 0xA5A5'0001);
  const auto b = lattice32(kN, 0x5A5A'0002);
  for (const sf::Rounding mode : kModes) {
    for (int ebits = 0; ebits < 4; ++ebits) {
      const EnvCfg cfg{mode, (ebits & 1) != 0, (ebits & 2) != 0};
      expect_parity<sf::Float32>(
          "add", kN, cfg, [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::add_n<32>(a.data(), b.data(), out, fl, kN, env);
          });
      expect_parity<sf::Float32>(
          "sub", kN, cfg, [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::sub_n<32>(a.data(), b.data(), out, fl, kN, env);
          });
      expect_parity<sf::Float32>(
          "mul", kN, cfg, [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::mul_n<32>(a.data(), b.data(), out, fl, kN, env);
          });
      expect_parity<sf::Float32>(
          "div", kN, cfg, [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::div_n<32>(a.data(), b.data(), out, fl, kN, env);
          });
    }
  }
}

TEST(Fast32Lattice, FmaMatchesScalarAllModesAllEnvs) {
  constexpr std::size_t kN = std::size_t{1} << 16;
  const auto a = lattice32(kN, 0x1111'0003);
  const auto b = lattice32(kN, 0x2222'0004);
  const auto c = lattice32(kN, 0x3333'0005);
  for (const sf::Rounding mode : kModes) {
    for (int ebits = 0; ebits < 4; ++ebits) {
      const EnvCfg cfg{mode, (ebits & 1) != 0, (ebits & 2) != 0};
      expect_parity<sf::Float32>(
          "fma", kN, cfg, [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::fma_n<32>(a.data(), b.data(), c.data(), out, fl, kN, env);
          });
    }
  }
}

// The AVX2-vectorized unary ops and narrowing converts over the same
// lattice (their exhaustive proof is the full-2^32 sweep gate).
TEST(Fast32Lattice, UnaryAndNarrowMatchScalarAllModesAllEnvs) {
  constexpr std::size_t kN = std::size_t{1} << 16;
  const auto a = lattice32(kN, 0x7777'0006);
  for (const sf::Rounding mode : kModes) {
    for (int ebits = 0; ebits < 4; ++ebits) {
      const EnvCfg cfg{mode, (ebits & 1) != 0, (ebits & 2) != 0};
      expect_parity<sf::Float32>(
          "sqrt", kN, cfg, [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::sqrt_n<32>(a.data(), out, fl, kN, env);
          });
      expect_parity<sf::Float32>(
          "round_int", kN, cfg,
          [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::round_int_n<32>(a.data(), out, fl, kN, env);
          });
      expect_parity<sf::Float16>(
          "narrow16", kN, cfg,
          [&](sf::Float16* out, unsigned* fl, sf::Env& env) {
            sf::convert_n<16, 32>(a.data(), out, fl, kN, env);
          });
      expect_parity<sf::BFloat16>(
          "narrow_bf16", kN, cfg,
          [&](sf::BFloat16* out, unsigned* fl, sf::Env& env) {
            sf::convert_n<sf::kBFloat16, 32>(a.data(), out, fl, kN, env);
          });
      expect_parity<sf::Float64>(
          "widen64", kN, cfg,
          [&](sf::Float64* out, unsigned* fl, sf::Env& env) {
            sf::convert_n<64, 32>(a.data(), out, fl, kN, env);
          });
    }
  }
}

// binary64 -> binary32: random 64-bit patterns plus widened lattice
// values with the low discarded bits perturbed to straddle every tie.
TEST(Fast32Lattice, Narrow64MatchesScalarAllModes) {
  constexpr std::size_t kN = std::size_t{1} << 16;
  const auto seeds = lattice32(kN / 4, 0xBEEF'0007);
  std::vector<sf::Float64> a;
  a.reserve(kN);
  sf::Env quiet;
  fpq::parallel::sweep_detail::Sm64 g(0xD00D'0008);
  for (const sf::Float32 s : seeds) {
    const std::uint64_t w = sf::convert<64>(s, quiet).bits;
    a.push_back(sf::Float64::from_bits(w));
    a.push_back(sf::Float64::from_bits(w | (std::uint64_t{1} << 28)));
    a.push_back(sf::Float64::from_bits(w + 1));
    a.push_back(sf::Float64::from_bits(w == 0 ? g.next() : w - 1));
  }
  while (a.size() < kN) a.push_back(sf::Float64::from_bits(g.next()));
  for (const sf::Rounding mode : kModes) {
    for (int ebits = 0; ebits < 4; ++ebits) {
      const EnvCfg cfg{mode, (ebits & 1) != 0, (ebits & 2) != 0};
      expect_parity<sf::Float32>(
          "narrow64_32", kN, cfg,
          [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::convert_n<32, 64>(a.data(), out, fl, kN, env);
          });
    }
  }
}

// The 16-bit source formats are small enough to prove exhaustively.
TEST(Fast32Exhaustive, WidenFrom16AndBf16AllEncodings) {
  constexpr std::size_t kN = std::size_t{1} << 16;
  std::vector<sf::Float16> h(kN);
  std::vector<sf::BFloat16> bf(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    h[i] = sf::Float16::from_bits(static_cast<std::uint16_t>(i));
    bf[i] = sf::BFloat16::from_bits(static_cast<std::uint16_t>(i));
  }
  for (const sf::Rounding mode : kModes) {
    for (int ebits = 0; ebits < 4; ++ebits) {
      const EnvCfg cfg{mode, (ebits & 1) != 0, (ebits & 2) != 0};
      expect_parity<sf::Float32>(
          "widen_16_32", kN, cfg,
          [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::convert_n<32, 16>(h.data(), out, fl, kN, env);
          });
      expect_parity<sf::Float32>(
          "widen_bf16_32", kN, cfg,
          [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::convert_n<32, sf::kBFloat16>(bf.data(), out, fl, kN, env);
          });
    }
  }
}

// The fallback-lane predicate (fast32::is_finite on the widened value)
// must classify exactly like the encoding's own finiteness test, and the
// fast path must agree with the scalar reference on every corpus
// encoding cross-pair — the encodings built to sit ON the fallback /
// fast-path boundary.
TEST(Fast32Corpus, FallbackPredicateMatchesEncodingClassification) {
  for (const std::uint32_t p : sweep32::corner32_patterns()) {
    for (const std::uint32_t s : {0u, 0x8000'0000u}) {
      const sf::Float32 x = sf::Float32::from_bits(p | s);
      const double w = f32::widen(x);
      EXPECT_EQ(f32::is_finite(w), x.is_finite()) << std::hex << x.bits;
      EXPECT_EQ(f32::is_subnormal32(w),
                x.biased_exponent() == 0 && x.fraction() != 0 &&
                    x.is_finite())
          << std::hex << x.bits;
      // Exact widen/renarrow roundtrip (quiet NaNs keep payload; the
      // signaling bit is quieted by to_f32's convert, so sNaNs are the
      // one legitimate difference).
      const sf::Float32 back = f32::to_f32(w);
      if (!x.is_nan()) {
        EXPECT_EQ(back.bits, x.bits) << std::hex << x.bits;
      } else {
        EXPECT_TRUE(back.is_nan());
      }
    }
  }
}

TEST(Fast32Corpus, CrossPairsMatchScalarEveryMode) {
  std::vector<sf::Float32> ops;
  for (const std::uint32_t p : sweep32::corner32_patterns()) {
    ops.push_back(sf::Float32::from_bits(p));
    ops.push_back(sf::Float32::from_bits(p | 0x8000'0000u));
  }
  const std::size_t m = ops.size();
  std::vector<sf::Float32> a(m * m), b(m * m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      a[i * m + j] = ops[i];
      b[i * m + j] = ops[j];
    }
  }
  const std::size_t n = a.size();
  for (const sf::Rounding mode : kModes) {
    for (const bool flush : {false, true}) {
      const EnvCfg cfg{mode, flush, flush};
      expect_parity<sf::Float32>(
          "corpus add", n, cfg,
          [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::add_n<32>(a.data(), b.data(), out, fl, n, env);
          });
      expect_parity<sf::Float32>(
          "corpus mul", n, cfg,
          [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::mul_n<32>(a.data(), b.data(), out, fl, n, env);
          });
      expect_parity<sf::Float32>(
          "corpus div", n, cfg,
          [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::div_n<32>(a.data(), b.data(), out, fl, n, env);
          });
      expect_parity<sf::Float32>(
          "corpus fma(a,b,a)", n, cfg,
          [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
            sf::fma_n<32>(a.data(), b.data(), a.data(), out, fl, n, env);
          });
    }
  }
}

// Batch contract: out may alias an input.
TEST(Fast32Kernels, AliasingOutputOverInput) {
  constexpr std::size_t kN = 4096;
  const auto a0 = lattice32(kN, 0xFEED'0009);
  const auto b = lattice32(kN, 0xFACE'000A);
  const EnvCfg cfg{sf::Rounding::kNearestEven, false, false};
  const LaneResult ref = run_variant<sf::Float32>(
      sf::KernelVariant::kScalar, kN, cfg,
      [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
        auto a = a0;
        sf::add_n<32>(a.data(), b.data(), a.data(), fl, kN, env);
        for (std::size_t i = 0; i < kN; ++i) out[i] = a[i];
      });
  for (const sf::KernelVariant v : accelerated_variants()) {
    const LaneResult got = run_variant<sf::Float32>(
        v, kN, cfg, [&](sf::Float32* out, unsigned* fl, sf::Env& env) {
          auto a = a0;
          sf::add_n<32>(a.data(), b.data(), a.data(), fl, kN, env);
          for (std::size_t i = 0; i < kN; ++i) out[i] = a[i];
        });
    EXPECT_EQ(ref, got) << sf::kernel_variant_name(v);
  }
}

// narrow32_value (the value-only operand narrower the tape kVar lanes
// use) against the flag-computing scalar convert, on doubles that
// straddle binary32 ties in every band.
TEST(Fast32Primitives, Narrow32ValueMatchesConvert) {
  fpq::parallel::sweep_detail::Sm64 g(0xC0DE'000B);
  for (const sf::Rounding mode : kModes) {
    sf::Env quiet(mode);
    for (int i = 0; i < 200000; ++i) {
      const std::uint64_t raw = g.next();
      const auto be = (raw >> 52) & 0x7FF;
      if (be == 0 || be == 0x7FF) continue;  // handled by the kVar branches
      const double x = std::bit_cast<double>(raw);
      const double got = f32::narrow32_value(x, mode);
      quiet.clear_flags();
      const double want =
          f32::widen(sf::convert<32>(sf::from_native(x), quiet));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                std::bit_cast<std::uint64_t>(want))
          << std::hex << raw << " mode " << static_cast<int>(mode);
    }
  }
}
