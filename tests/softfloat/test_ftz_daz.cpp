// The non-standard x86 flush modes, emulated: FTZ (flush tiny results to
// zero) and DAZ (treat subnormal inputs as zero). These are the subject of
// the paper's "Flush to Zero" optimization-quiz question — NOT part of the
// IEEE standard, and a source of silent result changes.

#include <gtest/gtest.h>

#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"

namespace sf = fpq::softfloat;

namespace {

using F64 = sf::Float64;
using F32 = sf::Float32;

F64 d(double x) { return sf::from_native(x); }

sf::Env ftz_env() {
  sf::Env env;
  env.set_flush_to_zero(true);
  return env;
}

sf::Env daz_env() {
  sf::Env env;
  env.set_denormals_are_zero(true);
  return env;
}

TEST(Ftz, SubnormalResultFlushesToSignedZero) {
  sf::Env env = ftz_env();
  const F64 r = sf::div(F64::min_normal(), d(2.0), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_FALSE(r.sign());
  EXPECT_TRUE(env.test(sf::kFlagUnderflow));
  EXPECT_TRUE(env.test(sf::kFlagInexact));

  sf::Env env2 = ftz_env();
  const F64 neg = sf::div(F64::min_normal(true), d(2.0), env2);
  EXPECT_TRUE(neg.is_zero());
  EXPECT_TRUE(neg.sign()) << "flush preserves the sign";
}

TEST(Ftz, SameOperationWithoutFtzIsExactSubnormal) {
  sf::Env env;  // IEEE default
  const F64 r = sf::div(F64::min_normal(), d(2.0), env);
  EXPECT_TRUE(r.is_subnormal());
  EXPECT_EQ(env.flags(), 0u) << "gradual underflow, exact: no flags at all";
}

TEST(Ftz, NormalResultsUnaffected) {
  sf::Env env = ftz_env();
  EXPECT_EQ(sf::add(d(1.0), d(2.0), env).bits, d(3.0).bits);
  EXPECT_EQ(sf::mul(d(1.5), d(2.0), env).bits, d(3.0).bits);
  EXPECT_EQ(env.flags(), 0u);
}

TEST(Ftz, SmallestNormalResultSurvives) {
  sf::Env env = ftz_env();
  const F64 r = sf::mul(F64::min_normal(), d(1.0), env);
  EXPECT_EQ(r.bits, F64::min_normal().bits);
}

TEST(Daz, SubnormalInputTreatedAsZero) {
  sf::Env env = daz_env();
  const F64 sub = F64::min_subnormal();
  // subnormal + 0 == +0 under DAZ (the operand itself vanishes).
  EXPECT_TRUE(sf::add(sub, d(0.0), env).is_zero());
  // subnormal * huge == 0 under DAZ instead of a normal value.
  EXPECT_TRUE(sf::mul(sub, d(1e300), env).is_zero());

  sf::Env ieee;
  EXPECT_FALSE(sf::mul(sub, d(1e300), ieee).is_zero())
      << "without DAZ the product is a representable normal";
}

TEST(Daz, DivisionByDazedSubnormalIsDivByZero) {
  // A dramatic DAZ consequence: x / subnormal becomes x / 0 -> infinity
  // with the divide-by-zero flag, where IEEE gives a huge finite quotient.
  const F64 max_subnormal{0x000FFFFFFFFFFFFFULL};
  sf::Env env = daz_env();
  const F64 r = sf::div(d(1.0), max_subnormal, env);
  EXPECT_TRUE(r.is_infinity());
  EXPECT_TRUE(env.test(sf::kFlagDivByZero));

  sf::Env ieee;
  const F64 honest = sf::div(d(1.0), max_subnormal, ieee);
  EXPECT_TRUE(honest.is_finite());
  EXPECT_FALSE(ieee.test(sf::kFlagDivByZero));
}

TEST(Daz, ComparisonSeesFlushedOperands) {
  sf::Env env = daz_env();
  EXPECT_TRUE(sf::equal(F64::min_subnormal(), d(0.0), env))
      << "under DAZ a subnormal compares equal to zero";
  sf::Env ieee;
  EXPECT_FALSE(sf::equal(F64::min_subnormal(), d(0.0), ieee));
}

TEST(Daz, SignOfFlushedOperandPreserved) {
  sf::Env env = daz_env();
  const F64 r = sf::add(F64::min_subnormal(true), F64::zero(true), env);
  EXPECT_TRUE(r.is_zero());
  EXPECT_TRUE(r.sign());
}

TEST(FtzDaz, DenormalInputFlagMirrorsX86DE) {
  // Without DAZ, consuming a subnormal raises the diagnostic
  // denormal-input flag; with DAZ, x86 does not set DE and neither do we.
  sf::Env ieee;
  sf::mul(F64::min_subnormal(), d(2.0), ieee);
  EXPECT_TRUE(ieee.test(sf::kFlagDenormalInput));

  sf::Env env = daz_env();
  sf::mul(F64::min_subnormal(), d(2.0), env);
  EXPECT_FALSE(env.test(sf::kFlagDenormalInput));
}

TEST(FtzDaz, Binary32FlushBehavesLikeBinary64) {
  sf::Env env = ftz_env();
  const F32 tiny = F32::min_normal();
  const F32 half = sf::from_native(0.5f);
  EXPECT_TRUE(sf::mul(tiny, half, env).is_zero());
  EXPECT_TRUE(env.test(sf::kFlagUnderflow));
}

TEST(FtzDaz, FtzChangesIterativeDecayResult) {
  // The "very small magnitude numbers matter" scenario from the paper's
  // Denormal Precision discussion: repeated halving under IEEE reaches the
  // smallest subnormal and only then zero; under FTZ it hits zero as soon
  // as the result leaves the normal range.
  sf::Env ieee;
  sf::Env ftz = ftz_env();
  F64 x_ieee = F64::min_normal();
  F64 x_ftz = F64::min_normal();
  const F64 half = d(0.5);
  int ieee_steps = 0, ftz_steps = 0;
  while (!x_ieee.is_zero() && ieee_steps < 200) {
    x_ieee = sf::mul(x_ieee, half, ieee);
    ++ieee_steps;
  }
  while (!x_ftz.is_zero() && ftz_steps < 200) {
    x_ftz = sf::mul(x_ftz, half, ftz);
    ++ftz_steps;
  }
  EXPECT_EQ(ftz_steps, 1) << "FTZ kills the value on the first tiny result";
  EXPECT_EQ(ieee_steps, 53) << "gradual underflow walks down 52 subnormal "
                               "bits before reaching zero";
}

}  // namespace
