// Classification, named constants, and encoding utilities.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "softfloat/util.hpp"
#include "softfloat/value.hpp"

namespace sf = fpq::softfloat;

namespace {

TEST(Value, NamedConstantsBinary64) {
  EXPECT_EQ(sf::Float64::zero().bits, 0u);
  EXPECT_EQ(sf::Float64::zero(true).bits, 0x8000000000000000ULL);
  EXPECT_EQ(sf::Float64::one().bits, 0x3FF0000000000000ULL);
  EXPECT_EQ(sf::Float64::infinity().bits, 0x7FF0000000000000ULL);
  EXPECT_EQ(sf::Float64::infinity(true).bits, 0xFFF0000000000000ULL);
  EXPECT_EQ(sf::Float64::quiet_nan().bits, 0x7FF8000000000000ULL);
  EXPECT_EQ(sf::Float64::max_finite().bits, 0x7FEFFFFFFFFFFFFFULL);
  EXPECT_EQ(sf::Float64::min_normal().bits, 0x0010000000000000ULL);
  EXPECT_EQ(sf::Float64::min_subnormal().bits, 0x0000000000000001ULL);
}

TEST(Value, NamedConstantsBinary32) {
  EXPECT_EQ(sf::Float32::one().bits, 0x3F800000u);
  EXPECT_EQ(sf::Float32::infinity().bits, 0x7F800000u);
  EXPECT_EQ(sf::Float32::quiet_nan().bits, 0x7FC00000u);
  EXPECT_EQ(sf::Float32::max_finite().bits, 0x7F7FFFFFu);
  EXPECT_EQ(sf::Float32::min_normal().bits, 0x00800000u);
}

TEST(Value, NamedConstantsBinary16) {
  EXPECT_EQ(sf::Float16::one().bits, 0x3C00u);
  EXPECT_EQ(sf::Float16::infinity().bits, 0x7C00u);
  EXPECT_EQ(sf::Float16::quiet_nan().bits, 0x7E00u);
  EXPECT_EQ(sf::Float16::max_finite().bits, 0x7BFFu);  // 65504
  EXPECT_EQ(sf::Float16::min_normal().bits, 0x0400u);
}

TEST(Value, NativeInteropRoundTrips) {
  EXPECT_EQ(sf::from_native(1.0).bits, sf::Float64::one().bits);
  EXPECT_EQ(sf::to_native(sf::Float64::one()), 1.0);
  EXPECT_EQ(sf::from_native(1.0f).bits, sf::Float32::one().bits);
  EXPECT_EQ(sf::to_native(sf::from_native(-0.0)), -0.0);
  EXPECT_TRUE(std::signbit(sf::to_native(sf::from_native(-0.0))));
}

TEST(Value, Classification) {
  EXPECT_EQ(sf::Float64::zero().classify(), sf::ValueClass::kZero);
  EXPECT_EQ(sf::Float64::zero(true).classify(), sf::ValueClass::kZero);
  EXPECT_EQ(sf::Float64::one().classify(), sf::ValueClass::kNormal);
  EXPECT_EQ(sf::Float64::min_subnormal().classify(),
            sf::ValueClass::kSubnormal);
  EXPECT_EQ(sf::Float64::infinity().classify(), sf::ValueClass::kInfinite);
  EXPECT_EQ(sf::Float64::quiet_nan().classify(), sf::ValueClass::kQuietNaN);
  EXPECT_EQ(sf::Float64::signaling_nan().classify(),
            sf::ValueClass::kSignalingNaN);
}

TEST(Value, NaNPredicates) {
  EXPECT_TRUE(sf::Float64::quiet_nan().is_nan());
  EXPECT_TRUE(sf::Float64::signaling_nan().is_nan());
  EXPECT_TRUE(sf::Float64::quiet_nan().is_quiet_nan());
  EXPECT_FALSE(sf::Float64::quiet_nan().is_signaling_nan());
  EXPECT_TRUE(sf::Float64::signaling_nan().is_signaling_nan());
  EXPECT_FALSE(sf::Float64::infinity().is_nan());
  EXPECT_EQ(sf::Float64::signaling_nan().quieted().classify(),
            sf::ValueClass::kQuietNaN);
}

TEST(Value, SignOperations) {
  const auto one = sf::Float64::one();
  EXPECT_TRUE(one.negated().sign());
  EXPECT_FALSE(one.negated().negated().sign());
  EXPECT_FALSE(one.negated().abs().sign());
  EXPECT_TRUE(one.with_sign(true).sign());
  // Negation of NaN flips only the sign bit and never quiets.
  const auto snan = sf::Float64::signaling_nan();
  EXPECT_TRUE(snan.negated().is_signaling_nan());
}

TEST(Value, NextUpBasics) {
  const auto one = sf::Float64::one();
  const auto up = sf::next_up(one);
  EXPECT_EQ(up.bits, one.bits + 1);
  EXPECT_EQ(sf::next_down(up).bits, one.bits);

  EXPECT_EQ(sf::next_up(sf::Float64::zero()).bits,
            sf::Float64::min_subnormal().bits);
  EXPECT_EQ(sf::next_up(sf::Float64::max_finite()).bits,
            sf::Float64::infinity().bits);
  EXPECT_EQ(sf::next_up(sf::Float64::infinity()).bits,
            sf::Float64::infinity().bits);
  EXPECT_EQ(sf::next_up(sf::Float64::infinity(true)).bits,
            sf::Float64::max_finite(true).bits);
  // nextUp(-min_subnormal) == -0.
  EXPECT_EQ(sf::next_up(sf::Float64::min_subnormal(true)).bits,
            sf::Float64::zero(true).bits);
}

TEST(Value, NextUpAgreesWithNativeNextafter) {
  const double samples[] = {1.0,    -1.0,   0.5,     3.14159, 1e300,
                            -1e300, 1e-308, -1e-308, 65536.0, -0.125};
  for (double x : samples) {
    const double expected = std::nextafter(x, std::numeric_limits<double>::infinity());  // toward +inf
    EXPECT_EQ(sf::next_up(sf::from_native(x)).bits,
              sf::from_native(expected).bits)
        << "x = " << x;
  }
}

TEST(Value, UlpMatchesNeighbourGap) {
  const double samples[] = {1.0, 2.0, 1.5, 1e10, 1e-300, 4096.0};
  for (double x : samples) {
    const double gap = std::nextafter(x, std::numeric_limits<double>::infinity()) - x;
    EXPECT_EQ(sf::to_native(sf::ulp(sf::from_native(x))), gap) << "x = " << x;
  }
  EXPECT_EQ(sf::ulp(sf::Float64::zero()).bits,
            sf::Float64::min_subnormal().bits);
  EXPECT_TRUE(sf::ulp(sf::Float64::infinity()).is_nan());
  EXPECT_TRUE(sf::ulp(sf::Float64::quiet_nan()).is_nan());
}

TEST(Value, UlpOfSubnormalIsMinSubnormal) {
  EXPECT_EQ(sf::ulp(sf::Float64::min_subnormal()).bits,
            sf::Float64::min_subnormal().bits);
  EXPECT_EQ(sf::ulp(sf::Float64::min_normal()).bits,
            sf::from_native(std::nextafter(
                                sf::to_native(sf::Float64::min_normal()),
                                1.0) -
                            sf::to_native(sf::Float64::min_normal()))
                .bits);
}

TEST(Value, TotalOrder) {
  using F = sf::Float64;
  EXPECT_TRUE(sf::total_order(F::infinity(true), F::max_finite(true)));
  EXPECT_TRUE(sf::total_order(F::max_finite(true), F::zero(true)));
  EXPECT_TRUE(sf::total_order(F::zero(true), F::zero(false)));  // -0 < +0
  EXPECT_FALSE(sf::total_order(F::zero(false), F::zero(true)));
  EXPECT_TRUE(sf::total_order(F::zero(false), F::min_subnormal()));
  EXPECT_TRUE(sf::total_order(F::max_finite(), F::infinity()));
  EXPECT_TRUE(sf::total_order(F::infinity(), F::quiet_nan()));
  EXPECT_TRUE(sf::total_order(F::one(), F::one()));
}

TEST(Value, DescribeRendersClassAndBits) {
  EXPECT_NE(sf::describe(sf::Float64::one()).find("normal"),
            std::string::npos);
  EXPECT_NE(sf::describe(sf::Float64::quiet_nan()).find("qNaN"),
            std::string::npos);
  EXPECT_NE(sf::describe(sf::Float16::min_subnormal()).find("subnormal"),
            std::string::npos);
  EXPECT_NE(sf::describe(sf::Float32::infinity(true)).find("-inf"),
            std::string::npos);
  EXPECT_NE(sf::describe(sf::Float64::one()).find("0x3FF0000000000000"),
            std::string::npos);
}

}  // namespace
