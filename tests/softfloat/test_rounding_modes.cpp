// Rounding-direction properties that hold for every operation, checked as
// parameterized property sweeps (no hardware needed, so roundTiesToAway is
// covered here too).

#include <gtest/gtest.h>

#include <cstdint>

#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace st = fpq::stats;

namespace {

using F64 = sf::Float64;

F64 d(double x) { return sf::from_native(x); }

std::uint64_t gen_finite(st::Xoshiro256pp& g) {
  // Finite normal values of moderate exponent.
  const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
  const std::uint64_t exp = 1023 - 30 + st::uniform_below(g, 60);
  const std::uint64_t sign = g() & 0x8000000000000000ULL;
  return sign | (exp << 52) | frac;
}

enum class Op { kAdd, kMul, kDiv };

class RoundingEnvelope : public ::testing::TestWithParam<Op> {};

// For finite operands the roundTowardNegative and roundTowardPositive
// results bracket the exact value; toward-zero picks the endpoint closer to
// zero and both nearest modes return one of the two endpoints.
TEST_P(RoundingEnvelope, DirectedResultsBracketNearest) {
  st::Xoshiro256pp g(0xE4E70 + static_cast<int>(GetParam()));
  for (int i = 0; i < 5000; ++i) {
    const F64 a{gen_finite(g)};
    const F64 b{gen_finite(g)};
    auto run = [&](sf::Rounding r) {
      sf::Env env(r);
      switch (GetParam()) {
        case Op::kAdd:
          return sf::add(a, b, env);
        case Op::kMul:
          return sf::mul(a, b, env);
        case Op::kDiv:
          return sf::div(a, b, env);
      }
      return F64{};
    };
    const F64 down = run(sf::Rounding::kDown);
    const F64 up = run(sf::Rounding::kUp);
    const F64 near_even = run(sf::Rounding::kNearestEven);
    const F64 near_away = run(sf::Rounding::kNearestAway);
    const F64 trunc = run(sf::Rounding::kTowardZero);

    if (down.is_nan()) {
      EXPECT_TRUE(up.is_nan());
      continue;
    }
    EXPECT_TRUE(sf::total_order(down, up))
        << "a=" << sf::describe(a) << " b=" << sf::describe(b);
    EXPECT_TRUE(near_even.bits == down.bits || near_even.bits == up.bits);
    EXPECT_TRUE(near_away.bits == down.bits || near_away.bits == up.bits);
    const F64 expected_trunc = down.sign() ? up : down;
    EXPECT_TRUE(trunc.bits == expected_trunc.bits || down.bits == up.bits)
        << "a=" << sf::describe(a) << " b=" << sf::describe(b);
  }
}

INSTANTIATE_TEST_SUITE_P(Ops, RoundingEnvelope,
                         ::testing::Values(Op::kAdd, Op::kMul, Op::kDiv),
                         [](const auto& info) {
                           switch (info.param) {
                             case Op::kAdd:
                               return "add";
                             case Op::kMul:
                               return "mul";
                             default:
                               return "div";
                           }
                         });

TEST(RoundingModes, ExactOperationsIgnoreMode) {
  // 1.5 + 2.25 is exact: every mode must agree and raise nothing.
  for (sf::Rounding r :
       {sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
        sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway}) {
    sf::Env env(r);
    EXPECT_EQ(sf::add(d(1.5), d(2.25), env).bits, d(3.75).bits);
    EXPECT_EQ(env.flags(), 0u) << sf::rounding_to_string(r);
  }
}

TEST(RoundingModes, OneThirdRoundsByMode) {
  // 1/3 = 0.0101...b: toward-zero and down truncate, up goes one ulp above.
  sf::Env rn(sf::Rounding::kNearestEven);
  sf::Env rz(sf::Rounding::kTowardZero);
  sf::Env rd(sf::Rounding::kDown);
  sf::Env ru(sf::Rounding::kUp);
  const F64 third_rn = sf::div(d(1.0), d(3.0), rn);
  const F64 third_rz = sf::div(d(1.0), d(3.0), rz);
  const F64 third_rd = sf::div(d(1.0), d(3.0), rd);
  const F64 third_ru = sf::div(d(1.0), d(3.0), ru);
  EXPECT_EQ(third_rz.bits, third_rd.bits) << "positive: RZ == RD";
  EXPECT_EQ(sf::next_up(third_rd).bits, third_ru.bits) << "one ulp apart";
  EXPECT_TRUE(third_rn.bits == third_rd.bits ||
              third_rn.bits == third_ru.bits);
}

TEST(RoundingModes, NegativeOneThirdMirrors) {
  sf::Env rz(sf::Rounding::kTowardZero);
  sf::Env rd(sf::Rounding::kDown);
  sf::Env ru(sf::Rounding::kUp);
  const F64 rz_v = sf::div(d(-1.0), d(3.0), rz);
  const F64 rd_v = sf::div(d(-1.0), d(3.0), rd);
  const F64 ru_v = sf::div(d(-1.0), d(3.0), ru);
  EXPECT_EQ(rz_v.bits, ru_v.bits) << "negative: RZ == RU";
  EXPECT_EQ(sf::next_down(ru_v).bits, rd_v.bits);
}

TEST(RoundingModes, TiesToEvenVsAway) {
  // 2^53 + 1 is an exact tie in binary64.
  sf::Env even(sf::Rounding::kNearestEven);
  sf::Env away(sf::Rounding::kNearestAway);
  const F64 big = d(9007199254740992.0);  // 2^53
  const F64 one = d(1.0);
  EXPECT_EQ(sf::to_native(sf::add(big, one, even)), 9007199254740992.0)
      << "tie to even stays at 2^53";
  EXPECT_EQ(sf::to_native(sf::add(big, one, away)), 9007199254740994.0)
      << "tie away from zero goes up";
}

TEST(RoundingModes, OverflowRespectsDirectedModes) {
  const F64 max = F64::max_finite();
  {
    sf::Env env(sf::Rounding::kTowardZero);
    EXPECT_EQ(sf::mul(max, d(2.0), env).bits, max.bits)
        << "RZ overflow clamps to max finite";
  }
  {
    sf::Env env(sf::Rounding::kDown);
    EXPECT_EQ(sf::mul(max, d(2.0), env).bits, max.bits);
    EXPECT_TRUE(sf::mul(max.negated(), d(2.0), env).is_infinity())
        << "RD overflow to -inf on the negative side";
  }
  {
    sf::Env env(sf::Rounding::kUp);
    EXPECT_TRUE(sf::mul(max, d(2.0), env).is_infinity());
    EXPECT_EQ(sf::mul(max.negated(), d(2.0), env).bits, max.negated().bits);
  }
  {
    sf::Env env(sf::Rounding::kNearestAway);
    EXPECT_TRUE(sf::mul(max, d(2.0), env).is_infinity());
  }
}

TEST(RoundingModes, DirectedUnderflowProducesMinSubnormal) {
  // A positive value far below the subnormal range rounds to min_subnormal
  // under RU but to zero under RZ/RD.
  const F64 tiny = F64::min_subnormal();
  sf::Env ru(sf::Rounding::kUp);
  const F64 r_up = sf::mul(tiny, d(0.25), ru);
  EXPECT_EQ(r_up.bits, tiny.bits);
  EXPECT_TRUE(ru.test(sf::kFlagUnderflow));

  sf::Env rd(sf::Rounding::kDown);
  EXPECT_TRUE(sf::mul(tiny, d(0.25), rd).is_zero());

  sf::Env rz(sf::Rounding::kTowardZero);
  EXPECT_TRUE(sf::mul(tiny, d(0.25), rz).is_zero());
}

}  // namespace
