// fpq::softfloat — conversion round-trip properties for the narrow
// formats, under ALL five rounding modes and the FTZ/DAZ flush configs.
//
// The spec guarantees two things these tests pin exhaustively (the narrow
// spaces are 2^16, so "exhaustively" is cheap):
//
//   * widening is exact: binary16 -> binary32 -> binary16 and
//     bfloat16 -> binary32 -> bfloat16 recover the original encoding
//     bit-for-bit in every rounding mode, with no flags raised beyond
//     the engine's denormal-input diagnostic (signaling NaNs quiet and
//     raise invalid — also pinned);
//   * narrowing an already-representable value is exact: if x widened
//     from a narrow encoding, narrow(x) is that encoding with no inexact.
//
// Plus the properties the sweep relies on: double-narrowing idempotence
// (narrow(widen(narrow(x))) == narrow(x)) and the independent references
// from sweep32_ref agreeing with convert<> on the full narrow spaces.

#include <gtest/gtest.h>

#include <cstdint>

#include "parallel/sweep32_ref.hpp"
#include "softfloat/env.hpp"
#include "softfloat/ops.hpp"
#include "softfloat/value.hpp"

namespace sf = fpq::softfloat;
namespace sw = fpq::parallel::sweep32;

namespace {

const sf::Rounding kModes[] = {
    sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
    sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway,
};

TEST(ConvertRoundTrip, Binary16ThroughBinary32IsExactEverywhere) {
  for (const sf::Rounding mode : kModes) {
    for (std::uint32_t p = 0; p < (1u << 16); ++p) {
      const sf::Float16 h{static_cast<std::uint16_t>(p)};
      sf::Env env(mode);
      const sf::Float32 wide = sf::convert<32, 16>(h, env);
      const sf::Float16 back = sf::convert<16, 32>(wide, env);
      if (h.is_signaling_nan()) {
        // Widening a signaling NaN quiets it (and raises invalid); the
        // round trip returns the QUIETED encoding, payload preserved.
        EXPECT_TRUE(back.is_quiet_nan());
        EXPECT_TRUE(env.test(sf::kFlagInvalid));
        EXPECT_EQ(back.bits, h.bits | 0x0200u);
      } else {
        EXPECT_EQ(back.bits, h.bits)
            << sf::rounding_to_string(mode) << " " << sf::describe(h);
        EXPECT_FALSE(env.test(sf::kFlagInexact | sf::kFlagOverflow |
                              sf::kFlagUnderflow | sf::kFlagInvalid))
            << sf::describe(h) << " flags " << sf::flags_to_string(
                   env.flags());
      }
    }
  }
}

TEST(ConvertRoundTrip, BFloat16ThroughBinary32IsExactEverywhere) {
  for (const sf::Rounding mode : kModes) {
    for (std::uint32_t p = 0; p < (1u << 16); ++p) {
      const sf::BFloat16 h{static_cast<std::uint16_t>(p)};
      sf::Env env(mode);
      const sf::Float32 wide = sf::convert<32, sf::kBFloat16>(h, env);
      const sf::BFloat16 back = sf::convert<sf::kBFloat16, 32>(wide, env);
      if (h.is_signaling_nan()) {
        EXPECT_TRUE(back.is_quiet_nan());
        EXPECT_TRUE(env.test(sf::kFlagInvalid));
        EXPECT_EQ(back.bits, h.bits | 0x0040u);
      } else {
        EXPECT_EQ(back.bits, h.bits)
            << sf::rounding_to_string(mode) << " " << sf::describe(h);
        EXPECT_FALSE(env.test(sf::kFlagInexact | sf::kFlagOverflow |
                              sf::kFlagUnderflow | sf::kFlagInvalid));
      }
    }
  }
}

TEST(ConvertRoundTrip, NarrowingRepresentableBinary32IsExactAndFlagless) {
  for (const sf::Rounding mode : kModes) {
    for (std::uint32_t p = 0; p < (1u << 16); ++p) {
      const sf::Float16 h{static_cast<std::uint16_t>(p)};
      if (h.is_nan()) continue;
      sf::Env widen_env;
      const sf::Float32 x = sf::convert<32, 16>(h, widen_env);
      sf::Env env(mode);
      const sf::Float16 narrow = sf::convert<16, 32>(x, env);
      EXPECT_EQ(narrow.bits, h.bits)
          << sf::rounding_to_string(mode) << " " << sf::describe(h);
      EXPECT_FALSE(env.test(sf::kFlagInexact));
    }
  }
}

TEST(ConvertRoundTrip, DoubleNarrowingIsIdempotent) {
  // narrow(widen(narrow(x))) == narrow(x): once a value has been pushed
  // into binary16 / bfloat16, pushing it through again changes nothing,
  // in any mode. Deterministic ULP-stratified operands.
  for (const sf::Rounding mode : kModes) {
    fpq::parallel::sweep_detail::Sm64 g(
        0xD0'0B1E + static_cast<std::uint64_t>(mode));
    for (int i = 0; i < 50000; ++i) {
      const sf::Float32 x{sw::ulp_stratified_pattern(g)};
      {
        sf::Env env(mode);
        const sf::Float16 once = sf::convert<16, 32>(x, env);
        const sf::Float32 wide = sf::convert<32, 16>(once, env);
        sf::Env env2(mode);
        const sf::Float16 twice = sf::convert<16, 32>(wide, env2);
        EXPECT_EQ(twice.bits, once.bits)
            << sf::rounding_to_string(mode) << " " << sf::describe(x);
        EXPECT_FALSE(env2.test(sf::kFlagInexact));
      }
      {
        sf::Env env(mode);
        const sf::BFloat16 once = sf::convert<sf::kBFloat16, 32>(x, env);
        const sf::Float32 wide = sf::convert<32, sf::kBFloat16>(once, env);
        sf::Env env2(mode);
        const sf::BFloat16 twice =
            sf::convert<sf::kBFloat16, 32>(wide, env2);
        EXPECT_EQ(twice.bits, once.bits)
            << sf::rounding_to_string(mode) << " " << sf::describe(x);
        EXPECT_FALSE(env2.test(sf::kFlagInexact));
      }
    }
  }
}

TEST(ConvertRoundTrip, NarrowingMatchesIndependentReferences) {
  // convert<16,32> / convert<kBFloat16,32> against sweep32_ref's
  // independent algorithms on every widened narrow encoding plus its
  // round-trip-critical neighbours (one ulp32 either side, where the
  // narrowing actually has to round).
  for (const sf::Rounding mode : kModes) {
    for (std::uint32_t p = 0; p < (1u << 16); ++p) {
      sf::Env widen_env;
      const sf::Float32 x = sf::convert<32, 16>(
          sf::Float16{static_cast<std::uint16_t>(p)}, widen_env);
      for (const std::uint32_t bits :
           {x.bits, x.bits + 1, x.bits - 1}) {
        const sf::Float32 probe{bits};
        sf::Env env(mode);
        const sf::Float16 got = sf::convert<16, 32>(probe, env);
        const sf::Float16 want = sw::ref_narrow16(probe, mode);
        EXPECT_EQ(got.bits, want.bits)
            << sf::rounding_to_string(mode) << " " << sf::describe(probe);
      }
      const sf::Float32 y{static_cast<std::uint32_t>(p) << 16};
      for (const std::uint32_t bits :
           {y.bits, y.bits + 1, y.bits + 0x8000u}) {
        const sf::Float32 probe{bits};
        sf::Env env(mode);
        const sf::BFloat16 got =
            sf::convert<sf::kBFloat16, 32>(probe, env);
        const sf::BFloat16 want = sw::ref_narrow_bf16(probe, mode);
        EXPECT_EQ(got.bits, want.bits)
            << sf::rounding_to_string(mode) << " " << sf::describe(probe);
      }
    }
  }
}

TEST(ConvertRoundTrip, DazZeroesSubnormalNarrowInputs) {
  for (const sf::Rounding mode : kModes) {
    for (std::uint32_t p = 0; p < (1u << 16); ++p) {
      const sf::Float16 h{static_cast<std::uint16_t>(p)};
      if (!h.is_subnormal()) continue;
      sf::Env env(mode);
      env.set_denormals_are_zero(true);
      const sf::Float32 wide = sf::convert<32, 16>(h, env);
      EXPECT_TRUE(wide.is_zero()) << sf::describe(h);
      EXPECT_EQ(wide.sign(), h.sign());
    }
  }
}

TEST(ConvertRoundTrip, FtzFlushesSubnormalNarrowResults) {
  // Binary32 values whose binary16 narrowing would be subnormal flush to
  // signed zero under FTZ; the round trip therefore loses them entirely —
  // the gradual-underflow-vs-FTZ contrast the paper's optimization
  // questions probe.
  for (const sf::Rounding mode : kModes) {
    for (std::uint32_t p = 0; p < (1u << 16); ++p) {
      const sf::Float16 h{static_cast<std::uint16_t>(p)};
      if (!h.is_subnormal()) continue;
      sf::Env widen_env;
      const sf::Float32 x = sf::convert<32, 16>(h, widen_env);
      sf::Env env(mode);
      env.set_flush_to_zero(true);
      const sf::Float16 narrow = sf::convert<16, 32>(x, env);
      EXPECT_TRUE(narrow.is_zero()) << sf::describe(h);
      EXPECT_EQ(narrow.sign(), h.sign());
      EXPECT_TRUE(env.test(sf::kFlagUnderflow));
    }
  }
}

}  // namespace
