// The question bank: structure, ordering, and survey-design invariants
// (no prompting/anchoring terms in the text shown to participants).

#include <gtest/gtest.h>

#include <string>

#include "core/question_bank.hpp"

namespace quiz = fpq::quiz;

namespace {

TEST(QuestionBank, FifteenCoreQuestionsInPaperOrder) {
  const auto questions = quiz::core_questions();
  ASSERT_EQ(questions.size(), quiz::kCoreQuestionCount);
  for (std::size_t i = 0; i < questions.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(questions[i].id), i);
  }
  EXPECT_EQ(questions.front().id, quiz::CoreQuestionId::kCommutativity);
  EXPECT_EQ(questions.back().id, quiz::CoreQuestionId::kExceptionSignal);
}

TEST(QuestionBank, FourOptQuestionsOneMultipleChoice) {
  const auto questions = quiz::opt_questions();
  ASSERT_EQ(questions.size(), quiz::kOptQuestionCount);
  std::size_t tf = 0;
  for (const auto& q : questions) {
    if (q.is_true_false) ++tf;
  }
  EXPECT_EQ(tf, quiz::kOptTrueFalseCount);
  EXPECT_FALSE(
      quiz::opt_question(quiz::OptQuestionId::kStandardCompliantLevel)
          .is_true_false);
}

TEST(QuestionBank, FiveSuspicionItems) {
  const auto items = quiz::suspicion_items();
  ASSERT_EQ(items.size(), quiz::kSuspicionItemCount);
  EXPECT_EQ(items[3].id, quiz::SuspicionItemId::kInvalid);
  EXPECT_EQ(items[3].advised_level, 5);
  EXPECT_EQ(items[0].advised_level, 4);  // Overflow
  EXPECT_EQ(items[2].advised_level, 1);  // Precision
}

TEST(QuestionBank, NoAnchoringTermsInCoreQuestionText) {
  // The survey deliberately never says "NaN", "infinity", "denormal" etc.
  // in assertions that test for understanding of those concepts without
  // the terminology (§II-B: "the term NaN is not used in order to avoid
  // prompting or anchoring").
  using Id = quiz::CoreQuestionId;
  for (Id id : {Id::kCommutativity, Id::kAssociativity, Id::kIdentity,
                Id::kNegativeZero, Id::kSquare, Id::kDivideByZero,
                Id::kZeroDivideByZero, Id::kSaturationPlus,
                Id::kSaturationMinus}) {
    const auto& q = quiz::core_question(id);
    const std::string text =
        std::string(q.snippet) + " " + std::string(q.assertion);
    EXPECT_EQ(text.find("NaN"), std::string::npos)
        << quiz::core_question_label(id);
    EXPECT_EQ(text.find("nan"), std::string::npos)
        << quiz::core_question_label(id);
    EXPECT_EQ(text.find("infinity"), std::string::npos)
        << quiz::core_question_label(id);
    EXPECT_EQ(text.find("denormal"), std::string::npos)
        << quiz::core_question_label(id);
  }
}

TEST(QuestionBank, DeclaredTruthsMatchThePaper) {
  // Figure 14's implied key.
  using Id = quiz::CoreQuestionId;
  auto truth = [](Id id) { return quiz::core_question(id).standard_truth; };
  EXPECT_EQ(truth(Id::kCommutativity), quiz::Truth::kTrue);
  EXPECT_EQ(truth(Id::kAssociativity), quiz::Truth::kFalse);
  EXPECT_EQ(truth(Id::kDistributivity), quiz::Truth::kFalse);
  EXPECT_EQ(truth(Id::kOrdering), quiz::Truth::kFalse);
  EXPECT_EQ(truth(Id::kIdentity), quiz::Truth::kFalse);
  EXPECT_EQ(truth(Id::kNegativeZero), quiz::Truth::kFalse);
  EXPECT_EQ(truth(Id::kSquare), quiz::Truth::kTrue);
  EXPECT_EQ(truth(Id::kOverflow), quiz::Truth::kFalse);
  EXPECT_EQ(truth(Id::kDivideByZero), quiz::Truth::kTrue);
  EXPECT_EQ(truth(Id::kZeroDivideByZero), quiz::Truth::kFalse);
  EXPECT_EQ(truth(Id::kSaturationPlus), quiz::Truth::kTrue);
  EXPECT_EQ(truth(Id::kSaturationMinus), quiz::Truth::kTrue);
  EXPECT_EQ(truth(Id::kDenormalPrecision), quiz::Truth::kTrue);
  EXPECT_EQ(truth(Id::kOperationPrecision), quiz::Truth::kTrue);
  EXPECT_EQ(truth(Id::kExceptionSignal), quiz::Truth::kFalse);
}

TEST(QuestionBank, OptQuizTruths) {
  using Id = quiz::OptQuestionId;
  EXPECT_EQ(quiz::opt_question(Id::kMadd).standard_truth,
            quiz::Truth::kFalse);
  EXPECT_EQ(quiz::opt_question(Id::kFlushToZero).standard_truth,
            quiz::Truth::kFalse);
  EXPECT_EQ(quiz::opt_question(Id::kFastMath).standard_truth,
            quiz::Truth::kTrue);
  EXPECT_STREQ(quiz::kOptLevelChoices[quiz::kOptLevelCorrectChoice], "-O2");
}

TEST(QuestionBank, LabelsAreUnique) {
  for (std::size_t i = 0; i < quiz::kCoreQuestionCount; ++i) {
    for (std::size_t j = i + 1; j < quiz::kCoreQuestionCount; ++j) {
      EXPECT_NE(
          quiz::core_question_label(static_cast<quiz::CoreQuestionId>(i)),
          quiz::core_question_label(static_cast<quiz::CoreQuestionId>(j)));
    }
  }
}

TEST(QuestionBank, EveryQuestionHasRationale) {
  for (const auto& q : quiz::core_questions()) {
    EXPECT_FALSE(q.rationale.empty());
    EXPECT_FALSE(q.assertion.empty());
  }
  for (const auto& q : quiz::opt_questions()) {
    EXPECT_FALSE(q.rationale.empty());
    EXPECT_FALSE(q.prompt.empty());
  }
}

}  // namespace
