// The headline invariant of the quiz harness: the answer key is DERIVED BY
// EXECUTION, and every IEEE-compliant backend — native double, native
// float, softfloat at 64/32/16 bits — derives exactly the same key, which
// matches the declared standard truths. Parameterized over backends.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/ground_truth.hpp"

namespace quiz = fpq::quiz;

namespace {

using Factory = std::unique_ptr<quiz::ArithmeticBackend> (*)();

struct BackendParam {
  Factory make;
  const char* name;
};

const BackendParam kBackends[] = {
    {&quiz::make_native_double_backend, "native_double"},
    {&quiz::make_native_float_backend, "native_float"},
    {&quiz::make_soft_backend_64, "soft64"},
    {&quiz::make_soft_backend_32, "soft32"},
    {&quiz::make_soft_backend_16, "soft16"},
    {&quiz::make_soft_backend_bf16, "bfloat16"},
};

class AnswerKeyOnBackend : public ::testing::TestWithParam<BackendParam> {};

TEST_P(AnswerKeyOnBackend, ExecutedKeyMatchesStandardTruths) {
  auto backend = GetParam().make();
  const quiz::AnswerKey key = quiz::derive_answer_key(*backend);
  std::string mismatch;
  EXPECT_TRUE(quiz::key_matches_standard(key, &mismatch))
      << "backend " << backend->name() << " diverges on: " << mismatch;
}

TEST_P(AnswerKeyOnBackend, EveryDemonstrationHasAWitness) {
  auto backend = GetParam().make();
  const quiz::AnswerKey key = quiz::derive_answer_key(*backend);
  for (const auto& demo : key.core) {
    EXPECT_FALSE(demo.witness.empty());
    EXPECT_EQ(demo.witness.find("unexpected"), std::string::npos)
        << demo.witness;
  }
}

INSTANTIATE_TEST_SUITE_P(AllIeeeBackends, AnswerKeyOnBackend,
                         ::testing::ValuesIn(kBackends),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(AnswerKeyFtz, FtzBackendStillDerivesStandardKey) {
  // The FTZ/DAZ backend demonstrates different *witnesses* (flush instead
  // of gradual underflow) but the same T/F key — the divergence story
  // lives in the witnesses and the optprobe demos.
  auto backend = quiz::make_soft_backend_64_ftz();
  EXPECT_FALSE(backend->ieee_compliant());
  const quiz::AnswerKey key = quiz::derive_answer_key(*backend);
  std::string mismatch;
  EXPECT_TRUE(quiz::key_matches_standard(key, &mismatch)) << mismatch;
  // ... and its denormal witness must mention the flush.
  const auto& denorm_demo =
      key.core[static_cast<std::size_t>(
          quiz::CoreQuestionId::kDenormalPrecision)];
  EXPECT_NE(denorm_demo.witness.find("flush"), std::string::npos)
      << denorm_demo.witness;
}

TEST(AnswerKey, StandardTruthArraysConsistent) {
  const auto core = quiz::standard_core_truths();
  EXPECT_EQ(core.size(), quiz::kCoreQuestionCount);
  const auto opt = quiz::standard_opt_truths();
  EXPECT_EQ(opt[0], quiz::Truth::kFalse);  // MADD
  EXPECT_EQ(opt[1], quiz::Truth::kFalse);  // Flush to Zero
  EXPECT_EQ(opt[2], quiz::Truth::kTrue);   // Fast-math
}

TEST(AnswerKey, RenderIncludesEvidence) {
  auto backend = quiz::make_soft_backend_64();
  const quiz::AnswerKey key = quiz::derive_answer_key(*backend);
  const std::string out = quiz::render_answer_key(key);
  EXPECT_NE(out.find("Associativity"), std::string::npos);
  EXPECT_NE(out.find("counterexample"), std::string::npos);
  EXPECT_NE(out.find("evidence"), std::string::npos);
  EXPECT_NE(out.find("MADD"), std::string::npos);
}

TEST(AnswerKey, KeyMismatchDetected) {
  auto backend = quiz::make_soft_backend_64();
  quiz::AnswerKey key = quiz::derive_answer_key(*backend);
  key.core[0].truth = quiz::Truth::kFalse;  // corrupt Commutativity
  std::string mismatch;
  EXPECT_FALSE(quiz::key_matches_standard(key, &mismatch));
  EXPECT_EQ(mismatch, "Commutativity");
}

}  // namespace
