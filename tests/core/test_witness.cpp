// Individual demonstrations: the witnesses must contain the concrete
// values that exhibit each behavior.

#include <gtest/gtest.h>

#include "core/witness.hpp"

namespace quiz = fpq::quiz;

namespace {

TEST(Witness, AssociativityCounterexampleNamesValues) {
  auto backend = quiz::make_soft_backend_64();
  const auto demo = quiz::demonstrate_core(
      quiz::CoreQuestionId::kAssociativity, *backend);
  EXPECT_EQ(demo.truth, quiz::Truth::kFalse);
  EXPECT_NE(demo.witness.find("counterexample"), std::string::npos);
  EXPECT_NE(demo.witness.find("a="), std::string::npos);
}

TEST(Witness, AssociativityOnBinary16FindsSmallCounterexample) {
  // In binary16 the counterexample appears at a = 2^12 = 4096 already.
  auto backend = quiz::make_soft_backend_16();
  const auto demo = quiz::demonstrate_core(
      quiz::CoreQuestionId::kAssociativity, *backend);
  EXPECT_EQ(demo.truth, quiz::Truth::kFalse);
  EXPECT_NE(demo.witness.find("4096"), std::string::npos) << demo.witness;
}

TEST(Witness, AssociativityOnBinary64FindsItAt2Pow54) {
  // At a = 2^53, b+c = -(2^53 - 1) is still exact; the first power where
  // the inner sum rounds back (tie to even) is 2^54.
  auto backend = quiz::make_soft_backend_64();
  const auto demo = quiz::demonstrate_core(
      quiz::CoreQuestionId::kAssociativity, *backend);
  EXPECT_NE(demo.witness.find("18014398509481984"), std::string::npos)
      << demo.witness;
}

TEST(Witness, SaturationWitnessIsInfinity) {
  auto backend = quiz::make_native_double_backend();
  const auto demo = quiz::demonstrate_core(
      quiz::CoreQuestionId::kSaturationPlus, *backend);
  EXPECT_EQ(demo.truth, quiz::Truth::kTrue);
  EXPECT_NE(demo.witness.find("infinity"), std::string::npos);
}

TEST(Witness, DivideByZeroWitnessShowsInf) {
  auto backend = quiz::make_soft_backend_64();
  const auto demo = quiz::demonstrate_core(
      quiz::CoreQuestionId::kDivideByZero, *backend);
  EXPECT_EQ(demo.truth, quiz::Truth::kTrue);
  EXPECT_NE(demo.witness.find("inf"), std::string::npos);
}

TEST(Witness, ExceptionSignalWitnessShowsFlags) {
  auto backend = quiz::make_soft_backend_64();
  const auto demo = quiz::demonstrate_core(
      quiz::CoreQuestionId::kExceptionSignal, *backend);
  EXPECT_EQ(demo.truth, quiz::Truth::kFalse);
  EXPECT_NE(demo.witness.find("Invalid"), std::string::npos);
  EXPECT_NE(demo.witness.find("no signal"), std::string::npos);
}

TEST(Witness, DenormalPrecisionShowsRatioDrift) {
  auto backend = quiz::make_soft_backend_64();
  const auto demo = quiz::demonstrate_core(
      quiz::CoreQuestionId::kDenormalPrecision, *backend);
  EXPECT_EQ(demo.truth, quiz::Truth::kTrue);
  EXPECT_NE(demo.witness.find("min_subnormal"), std::string::npos);
}

TEST(Witness, OptDemonstrationsCarryEvidence) {
  for (std::size_t i = 0; i < quiz::kOptQuestionCount; ++i) {
    const auto demo =
        quiz::demonstrate_opt(static_cast<quiz::OptQuestionId>(i));
    EXPECT_FALSE(demo.witness.empty());
    EXPECT_EQ(demo.witness.find("unexpected"), std::string::npos)
        << demo.witness;
  }
}

TEST(Witness, OptMaddDemoMentionsBothStandards) {
  const auto demo = quiz::demonstrate_opt(quiz::OptQuestionId::kMadd);
  EXPECT_EQ(demo.truth, quiz::Truth::kFalse);
  EXPECT_NE(demo.witness.find("754-2008"), std::string::npos);
}

TEST(Witness, OptLevelDemoSaysO2) {
  const auto demo = quiz::demonstrate_opt(
      quiz::OptQuestionId::kStandardCompliantLevel);
  EXPECT_NE(demo.witness.find("-O2"), std::string::npos);
}

}  // namespace
