#include <gtest/gtest.h>

#include "core/session.hpp"

namespace quiz = fpq::quiz;

namespace {

TEST(Session, PerfectSheetsGradePerfect) {
  auto backend = quiz::make_soft_backend_64();
  const quiz::QuizSession session(*backend);
  const auto report = session.grade(session.perfect_core_sheet(),
                                    session.perfect_opt_sheet());
  EXPECT_EQ(report.core.correct, quiz::kCoreQuestionCount);
  EXPECT_EQ(report.opt_tf.correct, quiz::kOptTrueFalseCount);
  EXPECT_EQ(report.level_grade, quiz::Grade::kCorrect);
  EXPECT_EQ(report.core_score, 15u);
  EXPECT_DOUBLE_EQ(report.core_vs_chance, 7.5);
}

TEST(Session, EmptySheetsGradeUnanswered) {
  auto backend = quiz::make_soft_backend_64();
  const quiz::QuizSession session(*backend);
  const auto report = session.grade(quiz::CoreSheet{}, quiz::OptSheet{});
  EXPECT_EQ(report.core.unanswered, quiz::kCoreQuestionCount);
  EXPECT_EQ(report.core_score, 0u);
  EXPECT_DOUBLE_EQ(report.core_vs_chance, -7.5);
}

TEST(Session, KeyComesFromBackend) {
  auto backend = quiz::make_native_double_backend();
  const quiz::QuizSession session(*backend);
  EXPECT_EQ(session.key().backend_name, "native-binary64");
  std::string mismatch;
  EXPECT_TRUE(quiz::key_matches_standard(session.key(), &mismatch))
      << mismatch;
}

TEST(Session, QuizTextListsAllQuestionsWithoutLabels) {
  auto backend = quiz::make_soft_backend_64();
  const quiz::QuizSession session(*backend);
  const std::string text = session.render_quiz_text();
  EXPECT_NE(text.find("Q1."), std::string::npos);
  EXPECT_NE(text.find("Q19."), std::string::npos) << "15 core + 4 opt";
  // Labels like "Associativity" must NOT appear in the survey text.
  EXPECT_EQ(text.find("Associativity"), std::string::npos);
  EXPECT_EQ(text.find("Saturation"), std::string::npos);
  // The level question's options do.
  EXPECT_NE(text.find("-O2"), std::string::npos);
}

TEST(Session, ReportExplainsIncorrectAnswers) {
  auto backend = quiz::make_soft_backend_64();
  const quiz::QuizSession session(*backend);
  quiz::CoreSheet sheet = session.perfect_core_sheet();
  // Flip Identity (truth False -> answer True).
  sheet[quiz::CoreQuestionId::kIdentity] = quiz::Answer::kTrue;
  const std::string out =
      session.render_report(sheet, session.perfect_opt_sheet());
  EXPECT_NE(out.find("Identity: True — INCORRECT"), std::string::npos)
      << out;
  EXPECT_NE(out.find("core score: 14/15"), std::string::npos);
}

TEST(Session, ReportShowsChanceLine) {
  auto backend = quiz::make_soft_backend_64();
  const quiz::QuizSession session(*backend);
  const std::string out =
      session.render_report(quiz::CoreSheet{}, quiz::OptSheet{});
  EXPECT_NE(out.find("chance would be 7.5"), std::string::npos);
}

}  // namespace
