#include <gtest/gtest.h>

#include "core/ground_truth.hpp"
#include "core/scoring.hpp"

namespace quiz = fpq::quiz;

namespace {

TEST(Scoring, GradeAnswerMatrix) {
  using quiz::Answer;
  using quiz::Grade;
  using quiz::Truth;
  EXPECT_EQ(quiz::grade_answer(Answer::kTrue, Truth::kTrue), Grade::kCorrect);
  EXPECT_EQ(quiz::grade_answer(Answer::kFalse, Truth::kFalse),
            Grade::kCorrect);
  EXPECT_EQ(quiz::grade_answer(Answer::kTrue, Truth::kFalse),
            Grade::kIncorrect);
  EXPECT_EQ(quiz::grade_answer(Answer::kFalse, Truth::kTrue),
            Grade::kIncorrect);
  EXPECT_EQ(quiz::grade_answer(Answer::kDontKnow, Truth::kTrue),
            Grade::kDontKnow);
  EXPECT_EQ(quiz::grade_answer(Answer::kUnanswered, Truth::kFalse),
            Grade::kUnanswered);
}

TEST(Scoring, PerfectSheetScoresFull) {
  const auto key = quiz::standard_core_truths();
  quiz::CoreSheet sheet;
  for (std::size_t i = 0; i < quiz::kCoreQuestionCount; ++i) {
    sheet.answers[i] = quiz::to_answer(key[i]);
  }
  const auto tally = quiz::score_core(sheet, key);
  EXPECT_EQ(tally.correct, quiz::kCoreQuestionCount);
  EXPECT_EQ(tally.incorrect, 0u);
  EXPECT_EQ(tally.total(), quiz::kCoreQuestionCount);
}

TEST(Scoring, InvertedSheetScoresZero) {
  const auto key = quiz::standard_core_truths();
  quiz::CoreSheet sheet;
  for (std::size_t i = 0; i < quiz::kCoreQuestionCount; ++i) {
    sheet.answers[i] = key[i] == quiz::Truth::kTrue ? quiz::Answer::kFalse
                                                    : quiz::Answer::kTrue;
  }
  const auto tally = quiz::score_core(sheet, key);
  EXPECT_EQ(tally.correct, 0u);
  EXPECT_EQ(tally.incorrect, quiz::kCoreQuestionCount);
}

TEST(Scoring, DefaultSheetIsAllUnanswered) {
  const quiz::CoreSheet sheet;
  const auto tally = quiz::score_core(sheet, quiz::standard_core_truths());
  EXPECT_EQ(tally.unanswered, quiz::kCoreQuestionCount);
  const quiz::OptSheet opt;
  EXPECT_EQ(quiz::grade_level_choice(opt.level_choice),
            quiz::Grade::kUnanswered);
}

TEST(Scoring, MixedSheetTalliesEachBucket) {
  const auto key = quiz::standard_core_truths();
  quiz::CoreSheet sheet;
  sheet.answers[0] = quiz::to_answer(key[0]);  // correct
  sheet.answers[1] =
      key[1] == quiz::Truth::kTrue ? quiz::Answer::kFalse
                                   : quiz::Answer::kTrue;  // incorrect
  sheet.answers[2] = quiz::Answer::kDontKnow;
  // remaining 12 stay unanswered
  const auto tally = quiz::score_core(sheet, key);
  EXPECT_EQ(tally.correct, 1u);
  EXPECT_EQ(tally.incorrect, 1u);
  EXPECT_EQ(tally.dont_know, 1u);
  EXPECT_EQ(tally.unanswered, 12u);
}

TEST(Scoring, OptTfExcludesLevelQuestion) {
  const auto key = quiz::standard_opt_truths();
  quiz::OptSheet sheet;
  sheet.tf_answers = {quiz::Answer::kFalse, quiz::Answer::kFalse,
                      quiz::Answer::kTrue};  // all correct
  sheet.level_choice = 0;                    // -O0: incorrect
  const auto tally = quiz::score_opt_tf(sheet, key);
  EXPECT_EQ(tally.correct, 3u);
  EXPECT_EQ(tally.total(), quiz::kOptTrueFalseCount)
      << "level question not in the T/F tally (Figure 12 note)";
  EXPECT_EQ(quiz::grade_level_choice(sheet.level_choice),
            quiz::Grade::kIncorrect);
}

TEST(Scoring, LevelChoiceGrading) {
  EXPECT_EQ(quiz::grade_level_choice(quiz::kOptLevelCorrectChoice),
            quiz::Grade::kCorrect);
  EXPECT_EQ(quiz::grade_level_choice(0), quiz::Grade::kIncorrect);
  EXPECT_EQ(quiz::grade_level_choice(4), quiz::Grade::kIncorrect);
  EXPECT_EQ(quiz::grade_level_choice(quiz::kOptLevelDontKnow),
            quiz::Grade::kDontKnow);
  EXPECT_EQ(quiz::grade_level_choice(quiz::kOptLevelUnanswered),
            quiz::Grade::kUnanswered);
}

TEST(Scoring, ChanceConstantsMatchPaper) {
  EXPECT_DOUBLE_EQ(quiz::kCoreChanceScore, 7.5);
  EXPECT_DOUBLE_EQ(quiz::kOptChanceScore, 1.5);
}

}  // namespace
