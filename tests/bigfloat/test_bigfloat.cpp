// The arbitrary-precision engine: exact round trips, correct rounding,
// and differential agreement with binary64 at precision 53.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "bigfloat/bigfloat.hpp"
#include "stats/prng.hpp"

namespace bf = fpq::bigfloat;
namespace st = fpq::stats;

namespace {

const bf::Context kHigh{256, fpq::softfloat::Rounding::kNearestEven};
const bf::Context k53{53, fpq::softfloat::Rounding::kNearestEven};

double gen_double(st::Xoshiro256pp& g) {
  const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
  const std::uint64_t exp = 1023 - 40 + st::uniform_below(g, 80);
  const std::uint64_t sign = g() & 0x8000000000000000ULL;
  return std::bit_cast<double>(sign | (exp << 52) | frac);
}

TEST(BigFloat, DoubleRoundTripIsExact) {
  st::Xoshiro256pp g(0xB16);
  for (int i = 0; i < 20000; ++i) {
    const double x = gen_double(g);
    EXPECT_EQ(bf::BigFloat::from_double(x).to_double(), x);
  }
  EXPECT_EQ(bf::BigFloat::from_double(0.0).to_double(), 0.0);
  EXPECT_TRUE(std::signbit(bf::BigFloat::from_double(-0.0).to_double()));
  EXPECT_TRUE(std::isinf(
      bf::BigFloat::from_double(std::numeric_limits<double>::infinity())
          .to_double()));
  EXPECT_TRUE(std::isnan(
      bf::BigFloat::from_double(std::numeric_limits<double>::quiet_NaN())
          .to_double()));
  // Subnormals round-trip too.
  const double denorm = 4.9406564584124654e-324;
  EXPECT_EQ(bf::BigFloat::from_double(denorm).to_double(), denorm);
  EXPECT_EQ(bf::BigFloat::from_double(denorm * 3).to_double(), denorm * 3);
}

TEST(BigFloat, IntConstruction) {
  EXPECT_EQ(bf::BigFloat::from_int(0).to_double(), 0.0);
  EXPECT_EQ(bf::BigFloat::from_int(42).to_double(), 42.0);
  EXPECT_EQ(bf::BigFloat::from_int(-7).to_double(), -7.0);
  EXPECT_EQ(bf::BigFloat::from_int(std::numeric_limits<std::int64_t>::min())
                .to_double(),
            -9223372036854775808.0);
}

TEST(BigFloat, ExactSmallArithmetic) {
  const auto a = bf::BigFloat::from_double(1.5);
  const auto b = bf::BigFloat::from_double(2.25);
  EXPECT_EQ(bf::BigFloat::add(a, b, kHigh).to_double(), 3.75);
  EXPECT_EQ(bf::BigFloat::sub(a, b, kHigh).to_double(), -0.75);
  EXPECT_EQ(bf::BigFloat::mul(a, b, kHigh).to_double(), 3.375);
  EXPECT_EQ(bf::BigFloat::div(b, a, kHigh).to_double(), 1.5);
  EXPECT_EQ(
      bf::BigFloat::sqrt(bf::BigFloat::from_double(2.25), kHigh).to_double(),
      1.5);
}

TEST(BigFloat, HighPrecisionSeesWhatDoubleLoses) {
  // (1e16 + 1) - 1e16: double loses the 1; 256-bit shadow keeps it.
  const auto big = bf::BigFloat::from_double(1e16);
  const auto one = bf::BigFloat::from_double(1.0);
  const auto sum = bf::BigFloat::add(big, one, kHigh);
  const auto back = bf::BigFloat::sub(sum, big, kHigh);
  EXPECT_EQ(back.to_double(), 1.0);
  // And 0.1 + 0.2 - 0.3 is NOT zero even in high precision (the doubles
  // 0.1, 0.2, 0.3 are already wrong) — the shadow is honest about inputs.
  const auto r = bf::BigFloat::sub(
      bf::BigFloat::add(bf::BigFloat::from_double(0.1),
                        bf::BigFloat::from_double(0.2), kHigh),
      bf::BigFloat::from_double(0.3), kHigh);
  EXPECT_NE(r.to_double(), 0.0);
}

TEST(BigFloat, Precision53MatchesHardwareAddMul) {
  // At precision 53 with round-to-nearest-even, BigFloat arithmetic on
  // double inputs must agree with the hardware bit for bit (as long as no
  // double-subnormal rounding is involved — kept away from by operand
  // choice).
  st::Xoshiro256pp g(0xB53);
  for (int i = 0; i < 20000; ++i) {
    const double x = gen_double(g);
    const double y = gen_double(g);
    const auto bx = bf::BigFloat::from_double(x);
    const auto by = bf::BigFloat::from_double(y);
    EXPECT_EQ(bf::BigFloat::add(bx, by, k53).to_double(), x + y)
        << x << " + " << y;
    EXPECT_EQ(bf::BigFloat::mul(bx, by, k53).to_double(), x * y)
        << x << " * " << y;
    EXPECT_EQ(bf::BigFloat::div(bx, by, k53).to_double(), x / y)
        << x << " / " << y;
  }
}

TEST(BigFloat, Precision53MatchesHardwareSqrt) {
  st::Xoshiro256pp g(0xB54);
  for (int i = 0; i < 10000; ++i) {
    const double x = std::fabs(gen_double(g));
    const auto r =
        bf::BigFloat::sqrt(bf::BigFloat::from_double(x), k53).to_double();
    EXPECT_EQ(r, std::sqrt(x)) << x;
  }
}

TEST(BigFloat, Precision53MatchesHardwareFma) {
  st::Xoshiro256pp g(0xB55);
  for (int i = 0; i < 10000; ++i) {
    const double x = gen_double(g);
    const double y = gen_double(g);
    const double z = gen_double(g);
    const auto r = bf::BigFloat::fma(bf::BigFloat::from_double(x),
                                     bf::BigFloat::from_double(y),
                                     bf::BigFloat::from_double(z), k53)
                       .to_double();
    EXPECT_EQ(r, std::fma(x, y, z)) << x << " " << y << " " << z;
  }
}

TEST(BigFloat, SpecialValueSemantics) {
  const auto inf = bf::BigFloat::infinity(false);
  const auto ninf = bf::BigFloat::infinity(true);
  const auto one = bf::BigFloat::from_double(1.0);
  const auto zero = bf::BigFloat::zero(false);
  EXPECT_TRUE(bf::BigFloat::add(inf, ninf, kHigh).is_nan());
  EXPECT_TRUE(bf::BigFloat::mul(zero, inf, kHigh).is_nan());
  EXPECT_TRUE(bf::BigFloat::div(zero, zero, kHigh).is_nan());
  EXPECT_TRUE(bf::BigFloat::div(one, zero, kHigh).is_infinity());
  EXPECT_TRUE(bf::BigFloat::div(one, inf, kHigh).is_zero());
  EXPECT_TRUE(
      bf::BigFloat::sqrt(one.negated(), kHigh).is_nan());
  EXPECT_TRUE(bf::BigFloat::add(inf, one, kHigh).is_infinity());
}

TEST(BigFloat, CompareOrdering) {
  const auto a = bf::BigFloat::from_double(1.0);
  const auto b = bf::BigFloat::from_double(2.0);
  const auto na = bf::BigFloat::from_double(-1.0);
  EXPECT_EQ(bf::BigFloat::compare(a, b), -1);
  EXPECT_EQ(bf::BigFloat::compare(b, a), 1);
  EXPECT_EQ(bf::BigFloat::compare(a, a), 0);
  EXPECT_EQ(bf::BigFloat::compare(na, a), -1);
  EXPECT_EQ(bf::BigFloat::compare(bf::BigFloat::zero(true),
                                  bf::BigFloat::zero(false)),
            0)
      << "-0 == +0";
  EXPECT_EQ(bf::BigFloat::compare(a, bf::BigFloat::nan()), 2);
}

TEST(BigFloat, DirectedRoundingAtPrecision) {
  // 1/3 at 8 bits of precision: RD/RZ truncate, RU goes one step up.
  bf::Context rd{8, fpq::softfloat::Rounding::kDown};
  bf::Context ru{8, fpq::softfloat::Rounding::kUp};
  const auto one = bf::BigFloat::from_double(1.0);
  const auto three = bf::BigFloat::from_double(3.0);
  const double lo = bf::BigFloat::div(one, three, rd).to_double();
  const double hi = bf::BigFloat::div(one, three, ru).to_double();
  EXPECT_LT(lo, 1.0 / 3.0);
  EXPECT_GT(hi, 1.0 / 3.0);
  EXPECT_NEAR(hi - lo, std::ldexp(1.0, -9), std::ldexp(1.0, -10))
      << "one ulp at 8-bit precision near 1/3";
}

TEST(BigFloat, VeryHighPrecisionDivisionIsConsistent) {
  // 1/7 at 1024 bits, multiplied back by 7, must round to exactly 1.
  bf::Context wide{1024, fpq::softfloat::Rounding::kNearestEven};
  const auto one = bf::BigFloat::from_int(1);
  const auto seven = bf::BigFloat::from_int(7);
  const auto seventh = bf::BigFloat::div(one, seven, wide);
  const auto back = bf::BigFloat::mul(seventh, seven, k53);
  EXPECT_EQ(back.to_double(), 1.0);
  EXPECT_GE(seventh.significant_bits(), 1000u);
}

TEST(BigFloat, RelativeError) {
  const auto exact = bf::BigFloat::from_double(1.0);
  EXPECT_EQ(bf::relative_error(1.0, exact, kHigh), 0.0);
  EXPECT_NEAR(bf::relative_error(1.0 + 1e-9, exact, kHigh), 1e-9, 1e-15);
  EXPECT_TRUE(std::isinf(
      bf::relative_error(1.0, bf::BigFloat::zero(false), kHigh)));
  EXPECT_EQ(bf::relative_error(0.0, bf::BigFloat::zero(false), kHigh), 0.0);
  EXPECT_TRUE(std::isnan(
      bf::relative_error(std::nan(""), exact, kHigh)));
}

TEST(BigFloat, ToStringRenders) {
  EXPECT_EQ(bf::BigFloat::zero(true).to_string(), "-0");
  EXPECT_EQ(bf::BigFloat::infinity(false).to_string(), "+inf");
  EXPECT_EQ(bf::BigFloat::nan().to_string(), "nan");
  EXPECT_NE(bf::BigFloat::from_double(1.5).to_string().find("1.5"),
            std::string::npos);
}

TEST(BigFloat, HighPrecisionRecoversAssociativity) {
  // The core quiz's Associativity/Ordering/Distributivity failures are
  // binary64 artifacts: at 256 bits, sums and products of double inputs
  // are exact, so the real-arithmetic laws hold again. This is exactly
  // the sanity-check workflow §V proposes.
  st::Xoshiro256pp g(0xA16E);
  for (int i = 0; i < 3000; ++i) {
    const double a = gen_double(g);
    const double b = gen_double(g);
    const double c = gen_double(g);
    const auto ba = bf::BigFloat::from_double(a);
    const auto bb = bf::BigFloat::from_double(b);
    const auto bc = bf::BigFloat::from_double(c);
    const auto left =
        bf::BigFloat::add(bf::BigFloat::add(ba, bb, kHigh), bc, kHigh);
    const auto right =
        bf::BigFloat::add(ba, bf::BigFloat::add(bb, bc, kHigh), kHigh);
    EXPECT_EQ(bf::BigFloat::compare(left, right), 0)
        << a << " " << b << " " << c;
    // Ordering: ((a + b) - a) == b, exactly.
    const auto recovered = bf::BigFloat::sub(
        bf::BigFloat::add(ba, bb, kHigh), ba, kHigh);
    EXPECT_EQ(bf::BigFloat::compare(recovered, bb), 0) << a << " " << b;
  }
}

TEST(BigFloat, HighPrecisionRecoversDistributivity) {
  // a*(b+c) == a*b + a*c needs ~107 exact product bits plus alignment:
  // 512 is plenty for double inputs of moderate exponent.
  const bf::Context wide{512, fpq::softfloat::Rounding::kNearestEven};
  st::Xoshiro256pp g(0xD157);
  for (int i = 0; i < 2000; ++i) {
    const double a = gen_double(g);
    const double b = gen_double(g);
    const double c = gen_double(g);
    const auto ba = bf::BigFloat::from_double(a);
    const auto bb = bf::BigFloat::from_double(b);
    const auto bc = bf::BigFloat::from_double(c);
    const auto left =
        bf::BigFloat::mul(ba, bf::BigFloat::add(bb, bc, wide), wide);
    const auto right =
        bf::BigFloat::add(bf::BigFloat::mul(ba, bb, wide),
                          bf::BigFloat::mul(ba, bc, wide), wide);
    EXPECT_EQ(bf::BigFloat::compare(left, right), 0)
        << a << " " << b << " " << c;
  }
}

TEST(BigFloat, OverflowToDoubleInfinity) {
  // 2^2000 is finite in BigFloat but overflows binary64.
  bf::Context wide{64, fpq::softfloat::Rounding::kNearestEven};
  auto x = bf::BigFloat::from_double(2.0);
  for (int i = 0; i < 11; ++i) x = bf::BigFloat::mul(x, x, wide);  // 2^2048
  EXPECT_TRUE(x.is_finite());
  EXPECT_TRUE(std::isinf(x.to_double()));
}

TEST(BigFloat, UnderflowToDoubleSubnormalAndZero) {
  bf::Context wide{64, fpq::softfloat::Rounding::kNearestEven};
  const auto half = bf::BigFloat::from_double(0.5);
  auto x = bf::BigFloat::from_double(1.0);
  for (int i = 0; i < 1074; ++i) x = bf::BigFloat::mul(x, half, wide);
  EXPECT_EQ(x.to_double(), 4.9406564584124654e-324) << "min subnormal";
  x = bf::BigFloat::mul(x, half, wide);  // 2^-1075: tie -> even -> 0
  EXPECT_EQ(x.to_double(), 0.0);
  EXPECT_TRUE(x.is_finite());
  // Slightly above the midpoint rounds up to the min subnormal.
  const auto above = bf::BigFloat::mul(
      x, bf::BigFloat::from_double(1.5), wide);  // 1.5 * 2^-1075
  EXPECT_EQ(above.to_double(), 4.9406564584124654e-324);
}

}  // namespace
