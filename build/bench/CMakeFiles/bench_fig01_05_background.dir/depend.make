# Empty dependencies file for bench_fig01_05_background.
# This may be replaced when dependencies are built.
