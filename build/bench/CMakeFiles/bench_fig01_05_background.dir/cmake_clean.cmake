file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_05_background.dir/bench_fig01_05_background.cpp.o"
  "CMakeFiles/bench_fig01_05_background.dir/bench_fig01_05_background.cpp.o.d"
  "bench_fig01_05_background"
  "bench_fig01_05_background.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_05_background.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
