# Empty dependencies file for bench_perf_monitor.
# This may be replaced when dependencies are built.
