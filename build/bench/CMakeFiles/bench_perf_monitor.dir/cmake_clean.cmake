file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_monitor.dir/bench_perf_monitor.cpp.o"
  "CMakeFiles/bench_perf_monitor.dir/bench_perf_monitor.cpp.o.d"
  "bench_perf_monitor"
  "bench_perf_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
