file(REMOVE_RECURSE
  "CMakeFiles/bench_answer_key.dir/bench_answer_key.cpp.o"
  "CMakeFiles/bench_answer_key.dir/bench_answer_key.cpp.o.d"
  "bench_answer_key"
  "bench_answer_key.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_answer_key.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
