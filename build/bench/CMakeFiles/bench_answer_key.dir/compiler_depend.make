# Empty compiler generated dependencies file for bench_answer_key.
# This may be replaced when dependencies are built.
