# Empty dependencies file for bench_fig06_07_languages.
# This may be replaced when dependencies are built.
