file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_07_languages.dir/bench_fig06_07_languages.cpp.o"
  "CMakeFiles/bench_fig06_07_languages.dir/bench_fig06_07_languages.cpp.o.d"
  "bench_fig06_07_languages"
  "bench_fig06_07_languages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_07_languages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
