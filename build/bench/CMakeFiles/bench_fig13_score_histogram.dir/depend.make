# Empty dependencies file for bench_fig13_score_histogram.
# This may be replaced when dependencies are built.
