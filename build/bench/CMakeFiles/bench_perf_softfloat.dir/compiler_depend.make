# Empty compiler generated dependencies file for bench_perf_softfloat.
# This may be replaced when dependencies are built.
