file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_softfloat.dir/bench_perf_softfloat.cpp.o"
  "CMakeFiles/bench_perf_softfloat.dir/bench_perf_softfloat.cpp.o.d"
  "bench_perf_softfloat"
  "bench_perf_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
