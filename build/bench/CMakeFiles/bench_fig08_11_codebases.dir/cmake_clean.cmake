file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_11_codebases.dir/bench_fig08_11_codebases.cpp.o"
  "CMakeFiles/bench_fig08_11_codebases.dir/bench_fig08_11_codebases.cpp.o.d"
  "bench_fig08_11_codebases"
  "bench_fig08_11_codebases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_11_codebases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
