# Empty compiler generated dependencies file for bench_fig08_11_codebases.
# This may be replaced when dependencies are built.
