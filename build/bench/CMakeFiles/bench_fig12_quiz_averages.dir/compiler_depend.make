# Empty compiler generated dependencies file for bench_fig12_quiz_averages.
# This may be replaced when dependencies are built.
