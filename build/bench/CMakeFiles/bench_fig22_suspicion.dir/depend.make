# Empty dependencies file for bench_fig22_suspicion.
# This may be replaced when dependencies are built.
