file(REMOVE_RECURSE
  "CMakeFiles/bench_fig22_suspicion.dir/bench_fig22_suspicion.cpp.o"
  "CMakeFiles/bench_fig22_suspicion.dir/bench_fig22_suspicion.cpp.o.d"
  "bench_fig22_suspicion"
  "bench_fig22_suspicion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig22_suspicion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
