# Empty compiler generated dependencies file for bench_fig20_21_opt_factors.
# This may be replaced when dependencies are built.
