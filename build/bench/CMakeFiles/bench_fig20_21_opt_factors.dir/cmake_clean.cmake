file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_21_opt_factors.dir/bench_fig20_21_opt_factors.cpp.o"
  "CMakeFiles/bench_fig20_21_opt_factors.dir/bench_fig20_21_opt_factors.cpp.o.d"
  "bench_fig20_21_opt_factors"
  "bench_fig20_21_opt_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_21_opt_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
