file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_19_core_factors.dir/bench_fig16_19_core_factors.cpp.o"
  "CMakeFiles/bench_fig16_19_core_factors.dir/bench_fig16_19_core_factors.cpp.o.d"
  "bench_fig16_19_core_factors"
  "bench_fig16_19_core_factors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_19_core_factors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
