# Empty dependencies file for bench_fig16_19_core_factors.
# This may be replaced when dependencies are built.
