# Empty dependencies file for fpq_analyze.
# This may be replaced when dependencies are built.
