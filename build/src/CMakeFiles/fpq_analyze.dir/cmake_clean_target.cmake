file(REMOVE_RECURSE
  "libfpq_analyze.a"
)
