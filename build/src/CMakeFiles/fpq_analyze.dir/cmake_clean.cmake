file(REMOVE_RECURSE
  "CMakeFiles/fpq_analyze.dir/analyze/shadow.cpp.o"
  "CMakeFiles/fpq_analyze.dir/analyze/shadow.cpp.o.d"
  "libfpq_analyze.a"
  "libfpq_analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
