file(REMOVE_RECURSE
  "libfpq_paperdata.a"
)
