file(REMOVE_RECURSE
  "CMakeFiles/fpq_paperdata.dir/paperdata/background.cpp.o"
  "CMakeFiles/fpq_paperdata.dir/paperdata/background.cpp.o.d"
  "CMakeFiles/fpq_paperdata.dir/paperdata/factors.cpp.o"
  "CMakeFiles/fpq_paperdata.dir/paperdata/factors.cpp.o.d"
  "CMakeFiles/fpq_paperdata.dir/paperdata/quiz_results.cpp.o"
  "CMakeFiles/fpq_paperdata.dir/paperdata/quiz_results.cpp.o.d"
  "CMakeFiles/fpq_paperdata.dir/paperdata/suspicion.cpp.o"
  "CMakeFiles/fpq_paperdata.dir/paperdata/suspicion.cpp.o.d"
  "libfpq_paperdata.a"
  "libfpq_paperdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_paperdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
