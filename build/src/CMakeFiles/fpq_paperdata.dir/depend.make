# Empty dependencies file for fpq_paperdata.
# This may be replaced when dependencies are built.
