
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paperdata/background.cpp" "src/CMakeFiles/fpq_paperdata.dir/paperdata/background.cpp.o" "gcc" "src/CMakeFiles/fpq_paperdata.dir/paperdata/background.cpp.o.d"
  "/root/repo/src/paperdata/factors.cpp" "src/CMakeFiles/fpq_paperdata.dir/paperdata/factors.cpp.o" "gcc" "src/CMakeFiles/fpq_paperdata.dir/paperdata/factors.cpp.o.d"
  "/root/repo/src/paperdata/quiz_results.cpp" "src/CMakeFiles/fpq_paperdata.dir/paperdata/quiz_results.cpp.o" "gcc" "src/CMakeFiles/fpq_paperdata.dir/paperdata/quiz_results.cpp.o.d"
  "/root/repo/src/paperdata/suspicion.cpp" "src/CMakeFiles/fpq_paperdata.dir/paperdata/suspicion.cpp.o" "gcc" "src/CMakeFiles/fpq_paperdata.dir/paperdata/suspicion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
