# Empty dependencies file for fpq_workloads.
# This may be replaced when dependencies are built.
