file(REMOVE_RECURSE
  "CMakeFiles/fpq_workloads.dir/workloads/workloads.cpp.o"
  "CMakeFiles/fpq_workloads.dir/workloads/workloads.cpp.o.d"
  "libfpq_workloads.a"
  "libfpq_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
