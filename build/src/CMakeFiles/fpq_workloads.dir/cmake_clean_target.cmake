file(REMOVE_RECURSE
  "libfpq_workloads.a"
)
