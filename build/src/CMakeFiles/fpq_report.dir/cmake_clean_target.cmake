file(REMOVE_RECURSE
  "libfpq_report.a"
)
