# Empty compiler generated dependencies file for fpq_report.
# This may be replaced when dependencies are built.
