file(REMOVE_RECURSE
  "CMakeFiles/fpq_report.dir/report/barchart.cpp.o"
  "CMakeFiles/fpq_report.dir/report/barchart.cpp.o.d"
  "CMakeFiles/fpq_report.dir/report/compare.cpp.o"
  "CMakeFiles/fpq_report.dir/report/compare.cpp.o.d"
  "CMakeFiles/fpq_report.dir/report/csv.cpp.o"
  "CMakeFiles/fpq_report.dir/report/csv.cpp.o.d"
  "CMakeFiles/fpq_report.dir/report/table.cpp.o"
  "CMakeFiles/fpq_report.dir/report/table.cpp.o.d"
  "libfpq_report.a"
  "libfpq_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
