# Empty compiler generated dependencies file for fpq_stats.
# This may be replaced when dependencies are built.
