
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/CMakeFiles/fpq_stats.dir/stats/bootstrap.cpp.o" "gcc" "src/CMakeFiles/fpq_stats.dir/stats/bootstrap.cpp.o.d"
  "/root/repo/src/stats/categorical.cpp" "src/CMakeFiles/fpq_stats.dir/stats/categorical.cpp.o" "gcc" "src/CMakeFiles/fpq_stats.dir/stats/categorical.cpp.o.d"
  "/root/repo/src/stats/chi_square.cpp" "src/CMakeFiles/fpq_stats.dir/stats/chi_square.cpp.o" "gcc" "src/CMakeFiles/fpq_stats.dir/stats/chi_square.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/fpq_stats.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/fpq_stats.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/fpq_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/fpq_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/likert.cpp" "src/CMakeFiles/fpq_stats.dir/stats/likert.cpp.o" "gcc" "src/CMakeFiles/fpq_stats.dir/stats/likert.cpp.o.d"
  "/root/repo/src/stats/prng.cpp" "src/CMakeFiles/fpq_stats.dir/stats/prng.cpp.o" "gcc" "src/CMakeFiles/fpq_stats.dir/stats/prng.cpp.o.d"
  "/root/repo/src/stats/summation.cpp" "src/CMakeFiles/fpq_stats.dir/stats/summation.cpp.o" "gcc" "src/CMakeFiles/fpq_stats.dir/stats/summation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
