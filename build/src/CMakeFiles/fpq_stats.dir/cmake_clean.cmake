file(REMOVE_RECURSE
  "CMakeFiles/fpq_stats.dir/stats/bootstrap.cpp.o"
  "CMakeFiles/fpq_stats.dir/stats/bootstrap.cpp.o.d"
  "CMakeFiles/fpq_stats.dir/stats/categorical.cpp.o"
  "CMakeFiles/fpq_stats.dir/stats/categorical.cpp.o.d"
  "CMakeFiles/fpq_stats.dir/stats/chi_square.cpp.o"
  "CMakeFiles/fpq_stats.dir/stats/chi_square.cpp.o.d"
  "CMakeFiles/fpq_stats.dir/stats/descriptive.cpp.o"
  "CMakeFiles/fpq_stats.dir/stats/descriptive.cpp.o.d"
  "CMakeFiles/fpq_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/fpq_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/fpq_stats.dir/stats/likert.cpp.o"
  "CMakeFiles/fpq_stats.dir/stats/likert.cpp.o.d"
  "CMakeFiles/fpq_stats.dir/stats/prng.cpp.o"
  "CMakeFiles/fpq_stats.dir/stats/prng.cpp.o.d"
  "CMakeFiles/fpq_stats.dir/stats/summation.cpp.o"
  "CMakeFiles/fpq_stats.dir/stats/summation.cpp.o.d"
  "libfpq_stats.a"
  "libfpq_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
