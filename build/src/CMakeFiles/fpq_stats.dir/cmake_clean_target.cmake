file(REMOVE_RECURSE
  "libfpq_stats.a"
)
