file(REMOVE_RECURSE
  "libfpq_softfloat.a"
)
