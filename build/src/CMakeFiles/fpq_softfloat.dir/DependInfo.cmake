
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/softfloat/add_sub.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/add_sub.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/add_sub.cpp.o.d"
  "/root/repo/src/softfloat/compare.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/compare.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/compare.cpp.o.d"
  "/root/repo/src/softfloat/convert.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/convert.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/convert.cpp.o.d"
  "/root/repo/src/softfloat/div.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/div.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/div.cpp.o.d"
  "/root/repo/src/softfloat/env.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/env.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/env.cpp.o.d"
  "/root/repo/src/softfloat/fma.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/fma.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/fma.cpp.o.d"
  "/root/repo/src/softfloat/mul.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/mul.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/mul.cpp.o.d"
  "/root/repo/src/softfloat/round_int_minmax.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/round_int_minmax.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/round_int_minmax.cpp.o.d"
  "/root/repo/src/softfloat/round_pack.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/round_pack.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/round_pack.cpp.o.d"
  "/root/repo/src/softfloat/sqrt.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/sqrt.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/sqrt.cpp.o.d"
  "/root/repo/src/softfloat/value.cpp" "src/CMakeFiles/fpq_softfloat.dir/softfloat/value.cpp.o" "gcc" "src/CMakeFiles/fpq_softfloat.dir/softfloat/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
