file(REMOVE_RECURSE
  "CMakeFiles/fpq_softfloat.dir/softfloat/add_sub.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/add_sub.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/compare.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/compare.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/convert.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/convert.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/div.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/div.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/env.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/env.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/fma.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/fma.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/mul.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/mul.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/round_int_minmax.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/round_int_minmax.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/round_pack.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/round_pack.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/sqrt.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/sqrt.cpp.o.d"
  "CMakeFiles/fpq_softfloat.dir/softfloat/value.cpp.o"
  "CMakeFiles/fpq_softfloat.dir/softfloat/value.cpp.o.d"
  "libfpq_softfloat.a"
  "libfpq_softfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
