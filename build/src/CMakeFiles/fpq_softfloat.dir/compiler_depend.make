# Empty compiler generated dependencies file for fpq_softfloat.
# This may be replaced when dependencies are built.
