file(REMOVE_RECURSE
  "libfpq_fpmon.a"
)
