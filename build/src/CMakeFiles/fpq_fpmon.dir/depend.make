# Empty dependencies file for fpq_fpmon.
# This may be replaced when dependencies are built.
