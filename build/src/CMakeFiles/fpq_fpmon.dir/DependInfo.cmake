
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpmon/hardware.cpp" "src/CMakeFiles/fpq_fpmon.dir/fpmon/hardware.cpp.o" "gcc" "src/CMakeFiles/fpq_fpmon.dir/fpmon/hardware.cpp.o.d"
  "/root/repo/src/fpmon/monitor.cpp" "src/CMakeFiles/fpq_fpmon.dir/fpmon/monitor.cpp.o" "gcc" "src/CMakeFiles/fpq_fpmon.dir/fpmon/monitor.cpp.o.d"
  "/root/repo/src/fpmon/report.cpp" "src/CMakeFiles/fpq_fpmon.dir/fpmon/report.cpp.o" "gcc" "src/CMakeFiles/fpq_fpmon.dir/fpmon/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
