file(REMOVE_RECURSE
  "CMakeFiles/fpq_fpmon.dir/fpmon/hardware.cpp.o"
  "CMakeFiles/fpq_fpmon.dir/fpmon/hardware.cpp.o.d"
  "CMakeFiles/fpq_fpmon.dir/fpmon/monitor.cpp.o"
  "CMakeFiles/fpq_fpmon.dir/fpmon/monitor.cpp.o.d"
  "CMakeFiles/fpq_fpmon.dir/fpmon/report.cpp.o"
  "CMakeFiles/fpq_fpmon.dir/fpmon/report.cpp.o.d"
  "libfpq_fpmon.a"
  "libfpq_fpmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_fpmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
