file(REMOVE_RECURSE
  "libfpq_bigfloat.a"
)
