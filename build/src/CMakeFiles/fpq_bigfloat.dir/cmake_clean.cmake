file(REMOVE_RECURSE
  "CMakeFiles/fpq_bigfloat.dir/bigfloat/bigfloat.cpp.o"
  "CMakeFiles/fpq_bigfloat.dir/bigfloat/bigfloat.cpp.o.d"
  "libfpq_bigfloat.a"
  "libfpq_bigfloat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_bigfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
