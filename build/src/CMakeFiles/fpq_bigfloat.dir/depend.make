# Empty dependencies file for fpq_bigfloat.
# This may be replaced when dependencies are built.
