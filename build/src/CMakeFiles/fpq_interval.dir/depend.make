# Empty dependencies file for fpq_interval.
# This may be replaced when dependencies are built.
