file(REMOVE_RECURSE
  "libfpq_interval.a"
)
