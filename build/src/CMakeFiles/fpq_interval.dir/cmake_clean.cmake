file(REMOVE_RECURSE
  "CMakeFiles/fpq_interval.dir/interval/interval.cpp.o"
  "CMakeFiles/fpq_interval.dir/interval/interval.cpp.o.d"
  "libfpq_interval.a"
  "libfpq_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
