file(REMOVE_RECURSE
  "CMakeFiles/fpq_respondent.dir/respondent/ability_model.cpp.o"
  "CMakeFiles/fpq_respondent.dir/respondent/ability_model.cpp.o.d"
  "CMakeFiles/fpq_respondent.dir/respondent/background_model.cpp.o"
  "CMakeFiles/fpq_respondent.dir/respondent/background_model.cpp.o.d"
  "CMakeFiles/fpq_respondent.dir/respondent/calibration.cpp.o"
  "CMakeFiles/fpq_respondent.dir/respondent/calibration.cpp.o.d"
  "CMakeFiles/fpq_respondent.dir/respondent/population.cpp.o"
  "CMakeFiles/fpq_respondent.dir/respondent/population.cpp.o.d"
  "CMakeFiles/fpq_respondent.dir/respondent/suspicion_model.cpp.o"
  "CMakeFiles/fpq_respondent.dir/respondent/suspicion_model.cpp.o.d"
  "libfpq_respondent.a"
  "libfpq_respondent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_respondent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
