file(REMOVE_RECURSE
  "libfpq_respondent.a"
)
