
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/respondent/ability_model.cpp" "src/CMakeFiles/fpq_respondent.dir/respondent/ability_model.cpp.o" "gcc" "src/CMakeFiles/fpq_respondent.dir/respondent/ability_model.cpp.o.d"
  "/root/repo/src/respondent/background_model.cpp" "src/CMakeFiles/fpq_respondent.dir/respondent/background_model.cpp.o" "gcc" "src/CMakeFiles/fpq_respondent.dir/respondent/background_model.cpp.o.d"
  "/root/repo/src/respondent/calibration.cpp" "src/CMakeFiles/fpq_respondent.dir/respondent/calibration.cpp.o" "gcc" "src/CMakeFiles/fpq_respondent.dir/respondent/calibration.cpp.o.d"
  "/root/repo/src/respondent/population.cpp" "src/CMakeFiles/fpq_respondent.dir/respondent/population.cpp.o" "gcc" "src/CMakeFiles/fpq_respondent.dir/respondent/population.cpp.o.d"
  "/root/repo/src/respondent/suspicion_model.cpp" "src/CMakeFiles/fpq_respondent.dir/respondent/suspicion_model.cpp.o" "gcc" "src/CMakeFiles/fpq_respondent.dir/respondent/suspicion_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_paperdata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_optprobe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_fpmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_report.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
