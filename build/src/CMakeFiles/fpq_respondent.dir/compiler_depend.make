# Empty compiler generated dependencies file for fpq_respondent.
# This may be replaced when dependencies are built.
