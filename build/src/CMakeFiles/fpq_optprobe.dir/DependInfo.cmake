
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/optprobe/emulated_pipeline.cpp" "src/CMakeFiles/fpq_optprobe.dir/optprobe/emulated_pipeline.cpp.o" "gcc" "src/CMakeFiles/fpq_optprobe.dir/optprobe/emulated_pipeline.cpp.o.d"
  "/root/repo/src/optprobe/flag_audit.cpp" "src/CMakeFiles/fpq_optprobe.dir/optprobe/flag_audit.cpp.o" "gcc" "src/CMakeFiles/fpq_optprobe.dir/optprobe/flag_audit.cpp.o.d"
  "/root/repo/src/optprobe/mxcsr.cpp" "src/CMakeFiles/fpq_optprobe.dir/optprobe/mxcsr.cpp.o" "gcc" "src/CMakeFiles/fpq_optprobe.dir/optprobe/mxcsr.cpp.o.d"
  "/root/repo/src/optprobe/probes.cpp" "src/CMakeFiles/fpq_optprobe.dir/optprobe/probes.cpp.o" "gcc" "src/CMakeFiles/fpq_optprobe.dir/optprobe/probes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpq_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_fpmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
