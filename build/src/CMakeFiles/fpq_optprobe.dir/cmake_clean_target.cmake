file(REMOVE_RECURSE
  "libfpq_optprobe.a"
)
