file(REMOVE_RECURSE
  "CMakeFiles/fpq_optprobe.dir/optprobe/emulated_pipeline.cpp.o"
  "CMakeFiles/fpq_optprobe.dir/optprobe/emulated_pipeline.cpp.o.d"
  "CMakeFiles/fpq_optprobe.dir/optprobe/flag_audit.cpp.o"
  "CMakeFiles/fpq_optprobe.dir/optprobe/flag_audit.cpp.o.d"
  "CMakeFiles/fpq_optprobe.dir/optprobe/mxcsr.cpp.o"
  "CMakeFiles/fpq_optprobe.dir/optprobe/mxcsr.cpp.o.d"
  "CMakeFiles/fpq_optprobe.dir/optprobe/probes.cpp.o"
  "CMakeFiles/fpq_optprobe.dir/optprobe/probes.cpp.o.d"
  "libfpq_optprobe.a"
  "libfpq_optprobe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_optprobe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
