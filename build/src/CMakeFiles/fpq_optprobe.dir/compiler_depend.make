# Empty compiler generated dependencies file for fpq_optprobe.
# This may be replaced when dependencies are built.
