file(REMOVE_RECURSE
  "CMakeFiles/fpq_core.dir/core/backend.cpp.o"
  "CMakeFiles/fpq_core.dir/core/backend.cpp.o.d"
  "CMakeFiles/fpq_core.dir/core/backend_native.cpp.o"
  "CMakeFiles/fpq_core.dir/core/backend_native.cpp.o.d"
  "CMakeFiles/fpq_core.dir/core/backend_soft.cpp.o"
  "CMakeFiles/fpq_core.dir/core/backend_soft.cpp.o.d"
  "CMakeFiles/fpq_core.dir/core/ground_truth.cpp.o"
  "CMakeFiles/fpq_core.dir/core/ground_truth.cpp.o.d"
  "CMakeFiles/fpq_core.dir/core/question_bank.cpp.o"
  "CMakeFiles/fpq_core.dir/core/question_bank.cpp.o.d"
  "CMakeFiles/fpq_core.dir/core/scoring.cpp.o"
  "CMakeFiles/fpq_core.dir/core/scoring.cpp.o.d"
  "CMakeFiles/fpq_core.dir/core/session.cpp.o"
  "CMakeFiles/fpq_core.dir/core/session.cpp.o.d"
  "CMakeFiles/fpq_core.dir/core/witness.cpp.o"
  "CMakeFiles/fpq_core.dir/core/witness.cpp.o.d"
  "libfpq_core.a"
  "libfpq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
