file(REMOVE_RECURSE
  "libfpq_core.a"
)
