
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cpp" "src/CMakeFiles/fpq_core.dir/core/backend.cpp.o" "gcc" "src/CMakeFiles/fpq_core.dir/core/backend.cpp.o.d"
  "/root/repo/src/core/backend_native.cpp" "src/CMakeFiles/fpq_core.dir/core/backend_native.cpp.o" "gcc" "src/CMakeFiles/fpq_core.dir/core/backend_native.cpp.o.d"
  "/root/repo/src/core/backend_soft.cpp" "src/CMakeFiles/fpq_core.dir/core/backend_soft.cpp.o" "gcc" "src/CMakeFiles/fpq_core.dir/core/backend_soft.cpp.o.d"
  "/root/repo/src/core/ground_truth.cpp" "src/CMakeFiles/fpq_core.dir/core/ground_truth.cpp.o" "gcc" "src/CMakeFiles/fpq_core.dir/core/ground_truth.cpp.o.d"
  "/root/repo/src/core/question_bank.cpp" "src/CMakeFiles/fpq_core.dir/core/question_bank.cpp.o" "gcc" "src/CMakeFiles/fpq_core.dir/core/question_bank.cpp.o.d"
  "/root/repo/src/core/scoring.cpp" "src/CMakeFiles/fpq_core.dir/core/scoring.cpp.o" "gcc" "src/CMakeFiles/fpq_core.dir/core/scoring.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/fpq_core.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/fpq_core.dir/core/session.cpp.o.d"
  "/root/repo/src/core/witness.cpp" "src/CMakeFiles/fpq_core.dir/core/witness.cpp.o" "gcc" "src/CMakeFiles/fpq_core.dir/core/witness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpq_softfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_optprobe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_fpmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
