# Empty compiler generated dependencies file for fpq_core.
# This may be replaced when dependencies are built.
