# Empty dependencies file for fpq_core.
# This may be replaced when dependencies are built.
