
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/survey/analysis.cpp" "src/CMakeFiles/fpq_survey.dir/survey/analysis.cpp.o" "gcc" "src/CMakeFiles/fpq_survey.dir/survey/analysis.cpp.o.d"
  "/root/repo/src/survey/csv_io.cpp" "src/CMakeFiles/fpq_survey.dir/survey/csv_io.cpp.o" "gcc" "src/CMakeFiles/fpq_survey.dir/survey/csv_io.cpp.o.d"
  "/root/repo/src/survey/factor_analysis.cpp" "src/CMakeFiles/fpq_survey.dir/survey/factor_analysis.cpp.o" "gcc" "src/CMakeFiles/fpq_survey.dir/survey/factor_analysis.cpp.o.d"
  "/root/repo/src/survey/record.cpp" "src/CMakeFiles/fpq_survey.dir/survey/record.cpp.o" "gcc" "src/CMakeFiles/fpq_survey.dir/survey/record.cpp.o.d"
  "/root/repo/src/survey/suspicion_analysis.cpp" "src/CMakeFiles/fpq_survey.dir/survey/suspicion_analysis.cpp.o" "gcc" "src/CMakeFiles/fpq_survey.dir/survey/suspicion_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_paperdata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_optprobe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_fpmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
