file(REMOVE_RECURSE
  "libfpq_survey.a"
)
