# Empty compiler generated dependencies file for fpq_survey.
# This may be replaced when dependencies are built.
