file(REMOVE_RECURSE
  "CMakeFiles/fpq_survey.dir/survey/analysis.cpp.o"
  "CMakeFiles/fpq_survey.dir/survey/analysis.cpp.o.d"
  "CMakeFiles/fpq_survey.dir/survey/csv_io.cpp.o"
  "CMakeFiles/fpq_survey.dir/survey/csv_io.cpp.o.d"
  "CMakeFiles/fpq_survey.dir/survey/factor_analysis.cpp.o"
  "CMakeFiles/fpq_survey.dir/survey/factor_analysis.cpp.o.d"
  "CMakeFiles/fpq_survey.dir/survey/record.cpp.o"
  "CMakeFiles/fpq_survey.dir/survey/record.cpp.o.d"
  "CMakeFiles/fpq_survey.dir/survey/suspicion_analysis.cpp.o"
  "CMakeFiles/fpq_survey.dir/survey/suspicion_analysis.cpp.o.d"
  "libfpq_survey.a"
  "libfpq_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpq_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
