file(REMOVE_RECURSE
  "CMakeFiles/optimization_audit.dir/optimization_audit.cpp.o"
  "CMakeFiles/optimization_audit.dir/optimization_audit.cpp.o.d"
  "optimization_audit"
  "optimization_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimization_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
