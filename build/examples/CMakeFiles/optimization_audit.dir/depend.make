# Empty dependencies file for optimization_audit.
# This may be replaced when dependencies are built.
