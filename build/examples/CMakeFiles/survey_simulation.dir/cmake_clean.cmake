file(REMOVE_RECURSE
  "CMakeFiles/survey_simulation.dir/survey_simulation.cpp.o"
  "CMakeFiles/survey_simulation.dir/survey_simulation.cpp.o.d"
  "survey_simulation"
  "survey_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
