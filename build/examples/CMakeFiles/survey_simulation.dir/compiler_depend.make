# Empty compiler generated dependencies file for survey_simulation.
# This may be replaced when dependencies are built.
