# Empty dependencies file for workload_audit.
# This may be replaced when dependencies are built.
