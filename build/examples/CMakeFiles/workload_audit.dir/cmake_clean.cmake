file(REMOVE_RECURSE
  "CMakeFiles/workload_audit.dir/workload_audit.cpp.o"
  "CMakeFiles/workload_audit.dir/workload_audit.cpp.o.d"
  "workload_audit"
  "workload_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
