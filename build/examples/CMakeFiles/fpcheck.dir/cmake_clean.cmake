file(REMOVE_RECURSE
  "CMakeFiles/fpcheck.dir/fpcheck.cpp.o"
  "CMakeFiles/fpcheck.dir/fpcheck.cpp.o.d"
  "fpcheck"
  "fpcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
