
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/fpcheck.cpp" "examples/CMakeFiles/fpcheck.dir/fpcheck.cpp.o" "gcc" "examples/CMakeFiles/fpcheck.dir/fpcheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpq_respondent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_paperdata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_analyze.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_bigfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_optprobe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_fpmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
