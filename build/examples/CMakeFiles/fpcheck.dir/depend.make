# Empty dependencies file for fpcheck.
# This may be replaced when dependencies are built.
