file(REMOVE_RECURSE
  "CMakeFiles/lorenz_suspicion.dir/lorenz_suspicion.cpp.o"
  "CMakeFiles/lorenz_suspicion.dir/lorenz_suspicion.cpp.o.d"
  "lorenz_suspicion"
  "lorenz_suspicion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lorenz_suspicion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
