# Empty compiler generated dependencies file for lorenz_suspicion.
# This may be replaced when dependencies are built.
