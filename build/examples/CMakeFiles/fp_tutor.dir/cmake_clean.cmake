file(REMOVE_RECURSE
  "CMakeFiles/fp_tutor.dir/fp_tutor.cpp.o"
  "CMakeFiles/fp_tutor.dir/fp_tutor.cpp.o.d"
  "fp_tutor"
  "fp_tutor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fp_tutor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
