# Empty dependencies file for fp_tutor.
# This may be replaced when dependencies are built.
