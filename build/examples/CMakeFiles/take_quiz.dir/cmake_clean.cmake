file(REMOVE_RECURSE
  "CMakeFiles/take_quiz.dir/take_quiz.cpp.o"
  "CMakeFiles/take_quiz.dir/take_quiz.cpp.o.d"
  "take_quiz"
  "take_quiz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/take_quiz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
