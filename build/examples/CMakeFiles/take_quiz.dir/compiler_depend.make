# Empty compiler generated dependencies file for take_quiz.
# This may be replaced when dependencies are built.
