# Empty compiler generated dependencies file for test_bigfloat.
# This may be replaced when dependencies are built.
