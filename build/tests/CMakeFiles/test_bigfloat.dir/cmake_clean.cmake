file(REMOVE_RECURSE
  "CMakeFiles/test_bigfloat.dir/bigfloat/test_bigfloat.cpp.o"
  "CMakeFiles/test_bigfloat.dir/bigfloat/test_bigfloat.cpp.o.d"
  "test_bigfloat"
  "test_bigfloat.pdb"
  "test_bigfloat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
