# Empty compiler generated dependencies file for test_respondent.
# This may be replaced when dependencies are built.
