file(REMOVE_RECURSE
  "CMakeFiles/test_respondent.dir/respondent/test_ability_model.cpp.o"
  "CMakeFiles/test_respondent.dir/respondent/test_ability_model.cpp.o.d"
  "CMakeFiles/test_respondent.dir/respondent/test_background_model.cpp.o"
  "CMakeFiles/test_respondent.dir/respondent/test_background_model.cpp.o.d"
  "CMakeFiles/test_respondent.dir/respondent/test_calibration.cpp.o"
  "CMakeFiles/test_respondent.dir/respondent/test_calibration.cpp.o.d"
  "CMakeFiles/test_respondent.dir/respondent/test_population.cpp.o"
  "CMakeFiles/test_respondent.dir/respondent/test_population.cpp.o.d"
  "CMakeFiles/test_respondent.dir/respondent/test_suspicion_model.cpp.o"
  "CMakeFiles/test_respondent.dir/respondent/test_suspicion_model.cpp.o.d"
  "test_respondent"
  "test_respondent.pdb"
  "test_respondent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_respondent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
