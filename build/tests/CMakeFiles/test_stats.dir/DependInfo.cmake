
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_bootstrap.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o.d"
  "/root/repo/tests/stats/test_categorical.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_categorical.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_categorical.cpp.o.d"
  "/root/repo/tests/stats/test_chi_square.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_chi_square.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_chi_square.cpp.o.d"
  "/root/repo/tests/stats/test_descriptive.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_likert.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_likert.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_likert.cpp.o.d"
  "/root/repo/tests/stats/test_prng.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_prng.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_prng.cpp.o.d"
  "/root/repo/tests/stats/test_summation.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_summation.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_summation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpq_respondent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_paperdata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_analyze.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_bigfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_optprobe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_fpmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
