file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_ground_truth.cpp.o"
  "CMakeFiles/test_core.dir/core/test_ground_truth.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_question_bank.cpp.o"
  "CMakeFiles/test_core.dir/core/test_question_bank.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_scoring.cpp.o"
  "CMakeFiles/test_core.dir/core/test_scoring.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o"
  "CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_witness.cpp.o"
  "CMakeFiles/test_core.dir/core/test_witness.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
