
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/softfloat/test_arith_basic.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_arith_basic.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_arith_basic.cpp.o.d"
  "/root/repo/tests/softfloat/test_bfloat16.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_bfloat16.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_bfloat16.cpp.o.d"
  "/root/repo/tests/softfloat/test_binary16_exhaustive.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_binary16_exhaustive.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_binary16_exhaustive.cpp.o.d"
  "/root/repo/tests/softfloat/test_binary16_oracle.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_binary16_oracle.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_binary16_oracle.cpp.o.d"
  "/root/repo/tests/softfloat/test_convert.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_convert.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_convert.cpp.o.d"
  "/root/repo/tests/softfloat/test_differential.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_differential.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_differential.cpp.o.d"
  "/root/repo/tests/softfloat/test_ftz_daz.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_ftz_daz.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_ftz_daz.cpp.o.d"
  "/root/repo/tests/softfloat/test_properties.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_properties.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_properties.cpp.o.d"
  "/root/repo/tests/softfloat/test_round_int_minmax.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_round_int_minmax.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_round_int_minmax.cpp.o.d"
  "/root/repo/tests/softfloat/test_rounding_modes.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_rounding_modes.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_rounding_modes.cpp.o.d"
  "/root/repo/tests/softfloat/test_value.cpp" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_value.cpp.o" "gcc" "tests/CMakeFiles/test_softfloat.dir/softfloat/test_value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fpq_respondent.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_report.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_paperdata.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_analyze.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_bigfloat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_interval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_optprobe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_fpmon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fpq_softfloat.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
