file(REMOVE_RECURSE
  "CMakeFiles/test_softfloat.dir/softfloat/test_arith_basic.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_arith_basic.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_bfloat16.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_bfloat16.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_binary16_exhaustive.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_binary16_exhaustive.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_binary16_oracle.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_binary16_oracle.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_convert.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_convert.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_differential.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_differential.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_ftz_daz.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_ftz_daz.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_properties.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_properties.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_round_int_minmax.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_round_int_minmax.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_rounding_modes.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_rounding_modes.cpp.o.d"
  "CMakeFiles/test_softfloat.dir/softfloat/test_value.cpp.o"
  "CMakeFiles/test_softfloat.dir/softfloat/test_value.cpp.o.d"
  "test_softfloat"
  "test_softfloat.pdb"
  "test_softfloat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_softfloat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
