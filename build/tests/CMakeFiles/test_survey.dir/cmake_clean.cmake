file(REMOVE_RECURSE
  "CMakeFiles/test_survey.dir/survey/test_analysis.cpp.o"
  "CMakeFiles/test_survey.dir/survey/test_analysis.cpp.o.d"
  "CMakeFiles/test_survey.dir/survey/test_csv_io.cpp.o"
  "CMakeFiles/test_survey.dir/survey/test_csv_io.cpp.o.d"
  "CMakeFiles/test_survey.dir/survey/test_factor_analysis.cpp.o"
  "CMakeFiles/test_survey.dir/survey/test_factor_analysis.cpp.o.d"
  "CMakeFiles/test_survey.dir/survey/test_record.cpp.o"
  "CMakeFiles/test_survey.dir/survey/test_record.cpp.o.d"
  "CMakeFiles/test_survey.dir/survey/test_suspicion_analysis.cpp.o"
  "CMakeFiles/test_survey.dir/survey/test_suspicion_analysis.cpp.o.d"
  "test_survey"
  "test_survey.pdb"
  "test_survey[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
