file(REMOVE_RECURSE
  "CMakeFiles/test_paperdata.dir/paperdata/test_paperdata.cpp.o"
  "CMakeFiles/test_paperdata.dir/paperdata/test_paperdata.cpp.o.d"
  "test_paperdata"
  "test_paperdata.pdb"
  "test_paperdata[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paperdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
