file(REMOVE_RECURSE
  "CMakeFiles/test_report.dir/report/test_barchart.cpp.o"
  "CMakeFiles/test_report.dir/report/test_barchart.cpp.o.d"
  "CMakeFiles/test_report.dir/report/test_compare.cpp.o"
  "CMakeFiles/test_report.dir/report/test_compare.cpp.o.d"
  "CMakeFiles/test_report.dir/report/test_csv.cpp.o"
  "CMakeFiles/test_report.dir/report/test_csv.cpp.o.d"
  "CMakeFiles/test_report.dir/report/test_table.cpp.o"
  "CMakeFiles/test_report.dir/report/test_table.cpp.o.d"
  "test_report"
  "test_report.pdb"
  "test_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
