# Empty dependencies file for test_optprobe.
# This may be replaced when dependencies are built.
