file(REMOVE_RECURSE
  "CMakeFiles/test_optprobe.dir/optprobe/test_emulated_pipeline.cpp.o"
  "CMakeFiles/test_optprobe.dir/optprobe/test_emulated_pipeline.cpp.o.d"
  "CMakeFiles/test_optprobe.dir/optprobe/test_flag_audit.cpp.o"
  "CMakeFiles/test_optprobe.dir/optprobe/test_flag_audit.cpp.o.d"
  "CMakeFiles/test_optprobe.dir/optprobe/test_mxcsr.cpp.o"
  "CMakeFiles/test_optprobe.dir/optprobe/test_mxcsr.cpp.o.d"
  "CMakeFiles/test_optprobe.dir/optprobe/test_probes.cpp.o"
  "CMakeFiles/test_optprobe.dir/optprobe/test_probes.cpp.o.d"
  "test_optprobe"
  "test_optprobe.pdb"
  "test_optprobe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_optprobe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
