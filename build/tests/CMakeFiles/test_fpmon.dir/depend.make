# Empty dependencies file for test_fpmon.
# This may be replaced when dependencies are built.
