file(REMOVE_RECURSE
  "CMakeFiles/test_fpmon.dir/fpmon/test_monitor.cpp.o"
  "CMakeFiles/test_fpmon.dir/fpmon/test_monitor.cpp.o.d"
  "CMakeFiles/test_fpmon.dir/fpmon/test_report.cpp.o"
  "CMakeFiles/test_fpmon.dir/fpmon/test_report.cpp.o.d"
  "test_fpmon"
  "test_fpmon.pdb"
  "test_fpmon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fpmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
