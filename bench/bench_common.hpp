// Shared plumbing for the reproduction benches: the fixed evaluation
// cohorts and comparison-row helpers. Every bench uses the same seed so
// EXPERIMENTS.md quotes one consistent synthetic dataset.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "report/compare.hpp"
#include "respondent/population.hpp"
#include "survey/record.hpp"

namespace fpq::bench {

inline constexpr std::uint64_t kCohortSeed = 20180521;  // IPDPS 2018

inline const std::vector<survey::SurveyRecord>& main_cohort() {
  static const auto cohort =
      respondent::generate_main_cohort(kCohortSeed, 199);
  return cohort;
}

inline const std::vector<survey::StudentRecord>& student_cohort() {
  static const auto cohort =
      respondent::generate_student_cohort(kCohortSeed, 52);
  return cohort;
}

/// Prints a comparison block and returns 0 if everything is within
/// tolerance, 1 otherwise (benches exit nonzero on gross divergence so CI
/// catches shape regressions).
inline int finish(const std::string& title,
                  const std::vector<report::ComparisonRow>& rows,
                  int decimals = 2) {
  std::fputs(report::render_comparison(title, rows, decimals).c_str(),
             stdout);
  return report::summarize_comparison(rows).all_within() ? 0 : 1;
}

}  // namespace fpq::bench
