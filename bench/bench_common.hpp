// Shared plumbing for the reproduction benches: the fixed evaluation
// cohorts, comparison-row helpers, and the machine-readable perf emitter
// every perf bench can write (BENCH_perf.json — archived by CI). Every
// bench uses the same seed so EXPERIMENTS.md quotes one consistent
// synthetic dataset.
#pragma once

#include <cfenv>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "optprobe/mxcsr.hpp"
#include "parallel/stream.hpp"
#include "parallel/thread_pool.hpp"
#include "report/compare.hpp"
#include "respondent/population.hpp"
#include "softfloat/kernels.hpp"
#include "survey/record.hpp"

namespace fpq::bench {

/// The host floating-point environment a perf run was measured under.
/// Perf numbers are meaningless to compare across runs if the rounding
/// direction or the flush modes differed, so every BENCH_*.json records
/// them alongside the rows.
struct PerfEnv {
  std::string rounding;        ///< fegetround() at capture time
  bool mxcsr_available = false;
  bool ftz = false;            ///< MXCSR flush-to-zero was set
  bool daz = false;            ///< MXCSR denormals-are-zero was set
  int hardware_threads = 1;    ///< ThreadPool::default_thread_count()
  /// The softfloat batch kernel variant the run dispatched on
  /// ("scalar" / "portable" / "avx2") — perf rows measured under
  /// different engines must never be diffed against each other.
  std::string kernel_variant;

  static PerfEnv capture() {
    PerfEnv env;
    switch (std::fegetround()) {
      case FE_TONEAREST:
        env.rounding = "nearest-even";
        break;
      case FE_TOWARDZERO:
        env.rounding = "toward-zero";
        break;
      case FE_DOWNWARD:
        env.rounding = "downward";
        break;
      case FE_UPWARD:
        env.rounding = "upward";
        break;
      default:
        env.rounding = "unknown";
        break;
    }
    const opt::FlushProbeResult probe = opt::probe_flush_modes();
    env.mxcsr_available = probe.mxcsr_available;
    env.ftz = probe.ftz_default_on;
    env.daz = probe.daz_default_on;
    env.hardware_threads =
        static_cast<int>(parallel::ThreadPool::default_thread_count());
    env.kernel_variant =
        softfloat::kernel_variant_name(softfloat::active_kernel_variant());
    return env;
  }
};

/// One measured configuration of a perf bench.
struct PerfRow {
  std::string name;          ///< engine/workload, e.g. "tape-batched/binary16-sweep"
  double ns_per_op = 0.0;
  double ops_per_s = 0.0;
  int threads = 1;
  /// Content identity of the measured campaign: the tape fingerprint for
  /// tape engines, an injection campaign's sites_fingerprint, or 0 when
  /// the workload has no content hash.
  std::uint64_t fingerprint = 0;
};

/// Accumulates PerfRows and renders/writes them as JSON, so CI can
/// archive BENCH_perf.json and regression tooling can diff runs without
/// scraping bench stdout.
class PerfJson {
 public:
  PerfJson() : env_(PerfEnv::capture()) {}

  void add(PerfRow row) { rows_.push_back(std::move(row)); }

  std::string render() const {
    std::string out = "{\n";
    {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "  \"env\": {\"rounding\": \"%s\", "
                    "\"mxcsr_available\": %s, \"ftz\": %s, \"daz\": %s, "
                    "\"hardware_threads\": %d, "
                    "\"kernel_variant\": \"%s\"},\n",
                    env_.rounding.c_str(),
                    env_.mxcsr_available ? "true" : "false",
                    env_.ftz ? "true" : "false",
                    env_.daz ? "true" : "false", env_.hardware_threads,
                    env_.kernel_variant.c_str());
      out += buf;
    }
    out += "  \"bench\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const PerfRow& r = rows_[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                    "\"ops_per_s\": %.1f, \"threads\": %d, "
                    "\"fingerprint\": \"0x%016" PRIx64 "\"}%s\n",
                    r.name.c_str(), r.ns_per_op, r.ops_per_s, r.threads,
                    r.fingerprint, i + 1 < rows_.size() ? "," : "");
      out += buf;
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Returns false (and prints to stderr) if the file cannot be written.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "PerfJson: cannot open %s\n", path.c_str());
      return false;
    }
    const std::string text = render();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                    text.size();
    std::fclose(f);
    return ok;
  }

  bool empty() const noexcept { return rows_.empty(); }
  const PerfEnv& env() const noexcept { return env_; }

 private:
  PerfEnv env_;
  std::vector<PerfRow> rows_;
};

inline constexpr std::uint64_t kCohortSeed = 20180521;  // IPDPS 2018

inline const std::vector<survey::SurveyRecord>& main_cohort() {
  static const auto cohort =
      respondent::generate_main_cohort(kCohortSeed, 199);
  return cohort;
}

inline const std::vector<survey::StudentRecord>& student_cohort() {
  static const auto cohort =
      respondent::generate_student_cohort(kCohortSeed, 52);
  return cohort;
}

/// Shared pool for the streaming figure benches (default thread count).
inline parallel::ThreadPool& stream_pool() {
  static parallel::ThreadPool pool;
  return pool;
}

/// Streams the first n records of the kCohortSeed main cohort through a
/// fresh accumulator per shard: each shard seeks its CohortGenerator to
/// the chunk start (two cheap root draws per skipped respondent) and
/// feeds its range, so no record vector ever exists. Bit-identical to
/// folding generate_main_cohort(kCohortSeed, n) through one accumulator.
template <typename MakeAcc>
auto stream_main_cohort(std::size_t n, const MakeAcc& make_acc) {
  auto& pool = stream_pool();
  return parallel::stream_accumulate(
      pool, n, parallel::recommended_chunks(pool, n, 64), make_acc,
      [](auto& acc, std::size_t begin, std::size_t end) {
        respondent::CohortGenerator gen(kCohortSeed);
        gen.seek(begin);
        for (std::size_t i = begin; i < end; ++i) acc.add(gen.next());
      });
}

/// Student-cohort counterpart of stream_main_cohort.
template <typename MakeAcc>
auto stream_student_cohort(std::size_t n, const MakeAcc& make_acc) {
  auto& pool = stream_pool();
  return parallel::stream_accumulate(
      pool, n, parallel::recommended_chunks(pool, n, 64), make_acc,
      [](auto& acc, std::size_t begin, std::size_t end) {
        respondent::StudentCohortGenerator gen(kCohortSeed);
        gen.seek(begin);
        for (std::size_t i = begin; i < end; ++i) acc.add(gen.next());
      });
}

/// Prints a comparison block and returns 0 if everything is within
/// tolerance, 1 otherwise (benches exit nonzero on gross divergence so CI
/// catches shape regressions).
inline int finish(const std::string& title,
                  const std::vector<report::ComparisonRow>& rows,
                  int decimals = 2) {
  std::fputs(report::render_comparison(title, rows, decimals).c_str(),
             stdout);
  return report::summarize_comparison(rows).all_within() ? 0 : 1;
}

}  // namespace fpq::bench
