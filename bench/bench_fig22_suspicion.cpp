// Figure 22: the suspicion-quiz Likert distributions for the main (a) and
// student (b) cohorts, plus the prose claims: Invalid > Overflow > rest,
// ~1/3 below maximum suspicion for Invalid, students laxer on
// Underflow/Denorm/Overflow.

#include <cmath>

#include "bench_common.hpp"
#include "paperdata/paperdata.hpp"
#include "report/barchart.hpp"
#include "report/table.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

int main() {
  const auto main_dists =
      fpq::bench::stream_main_cohort(199, [] {
        return sv::SuspicionAccumulator{};
      }).finish();
  const auto student_dists =
      fpq::bench::stream_student_cohort(52, [] {
        return sv::SuspicionAccumulator{};
      }).finish();

  const std::vector<std::string> levels{"1", "2", "3", "4", "5"};
  std::vector<rp::GroupedSeries> main_series, student_series;
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    const auto label =
        quiz::suspicion_item_label(static_cast<quiz::SuspicionItemId>(c));
    rp::GroupedSeries m{label, {}}, s{label, {}};
    for (int level = 1; level <= 5; ++level) {
      m.values.push_back(main_dists[c].percent(level));
      s.values.push_back(student_dists[c].percent(level));
    }
    main_series.push_back(std::move(m));
    student_series.push_back(std::move(s));
  }
  std::fputs(rp::section("Figure 22(a): main group, % per suspicion level",
                         rp::grouped_series_chart(levels, main_series))
                 .c_str(),
             stdout);
  std::fputs(
      rp::section("Figure 22(b): student group, % per suspicion level",
                  rp::grouped_series_chart(levels, student_series))
          .c_str(),
      stdout);

  const auto targets = pd::suspicion_targets();
  std::vector<rp::ComparisonRow> rows;
  // Per-cell tolerance: ~3 sigma (50 cells are compared at once, so 2.5
  // sigma would flag a cell by chance in most runs).
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    for (int level = 1; level <= 5; ++level) {
      const double p_main = targets[c].percent_main[level - 1] / 100.0;
      rows.push_back({"22a " + std::string(targets[c].condition) + " L" +
                          std::to_string(level),
                      100.0 * p_main, main_dists[c].percent(level),
                      300.0 * std::sqrt(p_main * (1 - p_main) / 199.0) +
                          1.0});
      const double p_st = targets[c].percent_students[level - 1] / 100.0;
      rows.push_back({"22b " + std::string(targets[c].condition) + " L" +
                          std::to_string(level),
                      100.0 * p_st, student_dists[c].percent(level),
                      300.0 * std::sqrt(p_st * (1 - p_st) / 52.0) + 2.0});
    }
  }
  const int rc =
      fpq::bench::finish("Figure 22: suspicion distributions (percent)",
                         rows, 1);

  const auto main_summary = sv::summarize_suspicion(main_dists);
  const auto student_summary = sv::summarize_suspicion(student_dists);
  std::printf(
      "shape checks: expert ordering (Invalid > Overflow > rest) holds for "
      "main: %s, students: %s; below-max suspicion for Invalid: main "
      "%.0f%%, students %.0f%% (paper: ~33%% for both).\n",
      main_summary.expert_ordering_holds ? "yes" : "NO",
      student_summary.expert_ordering_holds ? "yes" : "NO",
      100.0 * main_summary.invalid_below_max,
      100.0 * student_summary.invalid_below_max);
  std::printf(
      "distance from fpmon's expert advice (mean |cohort - advised| Likert "
      "levels): main %.2f, students %.2f — neither cohort matches the §IV-D "
      "expert ranking exactly; the biggest gap is the under-feared NaN "
      "column.\n",
      sv::distance_from_advice(main_summary),
      sv::distance_from_advice(student_summary));
  return rc;
}
