// Figures 1-5: participant background tables — positions, areas, formal
// and informal training, development roles. Regenerates each table by
// streaming the synthetic cohort through the survey accumulators (no
// record vector) and compares row counts against the paper.

#include <cmath>

#include "bench_common.hpp"
#include "paperdata/paperdata.hpp"
#include "report/table.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;

namespace {

constexpr std::size_t kN = 199;

// Tolerance for one multinomial cell at n=199: ~2.5 sigma.
double cell_tolerance(double expected_n) {
  const double p = expected_n / 199.0;
  return 2.5 * std::sqrt(199.0 * p * (1.0 - p)) + 1.0;
}

void add_rows(std::vector<rp::ComparisonRow>& rows, const char* figure,
              std::span<const pd::CategoryCount> paper,
              const std::vector<sv::TableRow>& measured) {
  for (std::size_t i = 0; i < paper.size(); ++i) {
    rows.push_back({std::string(figure) + ": " + std::string(paper[i].label),
                    static_cast<double>(paper[i].n),
                    static_cast<double>(measured[i].n),
                    cell_tolerance(static_cast<double>(paper[i].n))});
  }
}

std::vector<sv::TableRow> stream_frequency(
    std::span<const pd::CategoryCount> table, sv::FieldSelector selector) {
  return fpq::bench::stream_main_cohort(kN, [&] {
           return sv::FrequencyAccumulator(table, selector);
         })
      .finish();
}

}  // namespace

int main() {
  std::vector<rp::ComparisonRow> rows;

  add_rows(rows, "Fig1 position", pd::positions(),
           stream_frequency(pd::positions(), [](const sv::SurveyRecord& r) {
             return r.background.position;
           }));
  add_rows(rows, "Fig2 area", pd::areas(),
           stream_frequency(pd::areas(), [](const sv::SurveyRecord& r) {
             return r.background.area;
           }));
  add_rows(rows, "Fig3 training", pd::formal_training(),
           stream_frequency(pd::formal_training(),
                            [](const sv::SurveyRecord& r) {
                              return r.background.formal_training;
                            }));
  add_rows(rows, "Fig4 informal", pd::informal_training(),
           fpq::bench::stream_main_cohort(kN, [] {
             return sv::MultiSelectAccumulator(
                 pd::informal_training(),
                 [](const sv::SurveyRecord& r)
                     -> const std::vector<std::size_t>& {
                   return r.background.informal_training;
                 });
           }).finish());
  add_rows(rows, "Fig5 role", pd::dev_roles(),
           stream_frequency(pd::dev_roles(), [](const sv::SurveyRecord& r) {
             return r.background.dev_role;
           }));

  return fpq::bench::finish(
      "Figures 1-5: participant background (counts, n=199)", rows, 0);
}
