// Figures 1-5: participant background tables — positions, areas, formal
// and informal training, development roles. Regenerates each table from
// the synthetic cohort and compares row counts against the paper.

#include <cmath>

#include "bench_common.hpp"
#include "paperdata/paperdata.hpp"
#include "report/table.hpp"
#include "survey/analysis.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;

namespace {

// Tolerance for one multinomial cell at n=199: ~2.5 sigma.
double cell_tolerance(double expected_n) {
  const double p = expected_n / 199.0;
  return 2.5 * std::sqrt(199.0 * p * (1.0 - p)) + 1.0;
}

void add_rows(std::vector<rp::ComparisonRow>& rows, const char* figure,
              std::span<const pd::CategoryCount> paper,
              const std::vector<sv::TableRow>& measured) {
  for (std::size_t i = 0; i < paper.size(); ++i) {
    rows.push_back({std::string(figure) + ": " + std::string(paper[i].label),
                    static_cast<double>(paper[i].n),
                    static_cast<double>(measured[i].n),
                    cell_tolerance(static_cast<double>(paper[i].n))});
  }
}

}  // namespace

int main() {
  const auto& cohort = fpq::bench::main_cohort();
  std::vector<rp::ComparisonRow> rows;

  add_rows(rows, "Fig1 position", pd::positions(),
           sv::frequency_table(cohort, pd::positions(),
                               [](const sv::SurveyRecord& r) {
                                 return r.background.position;
                               }));
  add_rows(rows, "Fig2 area", pd::areas(),
           sv::frequency_table(cohort, pd::areas(),
                               [](const sv::SurveyRecord& r) {
                                 return r.background.area;
                               }));
  add_rows(rows, "Fig3 training", pd::formal_training(),
           sv::frequency_table(cohort, pd::formal_training(),
                               [](const sv::SurveyRecord& r) {
                                 return r.background.formal_training;
                               }));
  add_rows(rows, "Fig4 informal", pd::informal_training(),
           sv::multi_select_table(
               cohort, pd::informal_training(),
               [](const sv::SurveyRecord& r)
                   -> const std::vector<std::size_t>& {
                 return r.background.informal_training;
               }));
  add_rows(rows, "Fig5 role", pd::dev_roles(),
           sv::frequency_table(cohort, pd::dev_roles(),
                               [](const sv::SurveyRecord& r) {
                                 return r.background.dev_role;
                               }));

  return fpq::bench::finish(
      "Figures 1-5: participant background (counts, n=199)", rows, 0);
}
