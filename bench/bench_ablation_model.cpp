// Ablation: which parts of the respondent model carry which figures.
//
// DESIGN.md's calibration section claims two load-bearing components:
//   1. the latent factor effects (without them Figures 16-21 flatten), and
//   2. the per-question calibrated rates (without them Figure 14's profile
//      collapses to a uniform correct rate).
// This bench measures both ablations against the full model so the claims
// are numbers, not prose.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "report/table.hpp"
#include "respondent/background_model.hpp"
#include "respondent/calibration.hpp"
#include "respondent/suspicion_model.hpp"
#include "respondent/population.hpp"
#include "stats/prng.hpp"
#include "survey/analysis.hpp"
#include "survey/factor_analysis.hpp"

namespace sv = fpq::survey;
namespace rs = fpq::respondent;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

namespace {

// Ablated cohort A: flat ability (factor effects removed) — everyone gets
// the population-mean target.
std::vector<sv::SurveyRecord> flat_ability_cohort(std::uint64_t seed,
                                                  std::size_t n) {
  static const auto model = rs::CalibratedQuizModel::fit(0xCA11B8A7EDULL);
  fpq::stats::Xoshiro256pp root(seed);
  std::vector<sv::SurveyRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto g = root.split(i);
    sv::SurveyRecord r;
    r.respondent_id = i + 1;
    r.background = rs::sample_background(g);
    rs::Ability flat;  // defaults: mean targets, propensity 1
    // keep individual noise so the histogram is not a spike
    flat.core_target = pd::core_quiz_averages().correct +
                       fpq::stats::normal(g, 0.0, rs::kCoreResidualSigma);
    r.core = model.sample_core(flat, g);
    r.opt = model.sample_opt(flat, g);
    r.suspicion = rs::sample_suspicion(rs::Cohort::kMain, g);
    records.push_back(std::move(r));
  }
  return records;
}

// Ablated cohort B: uncalibrated questions — every question answered
// correctly with the same flat probability (the overall 8.5/15 = 56.7%),
// no don't-know structure.
std::vector<sv::SurveyRecord> uncalibrated_cohort(std::uint64_t seed,
                                                  std::size_t n) {
  fpq::stats::Xoshiro256pp root(seed);
  const auto truths = quiz::standard_core_truths();
  std::vector<sv::SurveyRecord> records;
  records.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto g = root.split(i);
    sv::SurveyRecord r;
    r.respondent_id = i + 1;
    r.background = rs::sample_background(g);
    for (std::size_t q = 0; q < quiz::kCoreQuestionCount; ++q) {
      const bool correct = fpq::stats::bernoulli(g, 8.5 / 15.0);
      r.core.answers[q] = correct ? quiz::to_answer(truths[q])
                          : truths[q] == quiz::Truth::kTrue
                              ? quiz::Answer::kFalse
                              : quiz::Answer::kTrue;
    }
    records.push_back(std::move(r));
  }
  return records;
}

// Spread of per-question correct rates (Figure 14's profile "texture").
double question_rate_spread(const std::vector<sv::SurveyRecord>& cohort) {
  const auto rows =
      sv::core_question_breakdown(cohort, quiz::standard_core_truths());
  double lo = 100.0, hi = 0.0;
  for (const auto& row : rows) {
    lo = std::min(lo, row.pct_correct);
    hi = std::max(hi, row.pct_correct);
  }
  return hi - lo;
}

double size_factor_spread(const std::vector<sv::SurveyRecord>& cohort) {
  return sv::core_correct_spread(sv::by_contributed_size(
      cohort, quiz::standard_core_truths(), quiz::standard_opt_truths()));
}

}  // namespace

int main() {
  const auto& full = fpq::bench::main_cohort();
  const auto flat = flat_ability_cohort(fpq::bench::kCohortSeed, 199);
  const auto uncal = uncalibrated_cohort(fpq::bench::kCohortSeed, 199);

  rp::Table table({"model variant", "Fig16 size spread (/15)",
                   "Fig14 question-rate spread (pct pts)"});
  table.add_row({"full model", rp::Table::fmt(size_factor_spread(full), 2),
                 rp::Table::fmt(question_rate_spread(full), 1)});
  table.add_row({"ablation: no factor effects",
                 rp::Table::fmt(size_factor_spread(flat), 2),
                 rp::Table::fmt(question_rate_spread(flat), 1)});
  table.add_row({"ablation: no per-question calibration",
                 rp::Table::fmt(size_factor_spread(uncal), 2),
                 rp::Table::fmt(question_rate_spread(uncal), 1)});
  table.add_row({"paper", "4.00", "70.3"});
  std::fputs(rp::section("Ablation: which model component carries which "
                         "figure",
                         table.render())
                 .c_str(),
             stdout);

  // Verdicts: the full model must dominate each ablation on its figure.
  const bool factors_matter =
      size_factor_spread(full) > size_factor_spread(flat) + 1.0;
  const bool calibration_matters =
      question_rate_spread(full) > question_rate_spread(uncal) + 20.0;
  std::printf(
      "factor effects carry Figure 16: %s (spread %.2f vs %.2f flat)\n",
      factors_matter ? "yes" : "NO", size_factor_spread(full),
      size_factor_spread(flat));
  std::printf(
      "per-question calibration carries Figure 14: %s (spread %.1f vs "
      "%.1f flat)\n",
      calibration_matters ? "yes" : "NO", question_rate_spread(full),
      question_rate_spread(uncal));
  return factors_matter && calibration_matters ? 0 : 1;
}
