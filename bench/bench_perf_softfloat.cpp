// Performance of the softfloat engine vs host hardware (google-benchmark),
// plus the sharded exhaustive binary16 differential sweep at several
// thread counts (the parallel engine's scaling benchmark).
//
// Not a paper figure — an engineering characterization of the substrate:
// how much slower is the bit-exact software implementation, per operation
// and format, and what FTZ/emulation modes cost.
//
// Usage: bench_perf_softfloat [--threads N[,N...]] [google-benchmark args]
// The default sweep registers thread counts 1, 2, 4 and 8.
//
// --tape-gate[=PATH] switches to the CI perf-smoke mode instead of
// google-benchmark: the exhaustive binary16 IR sweep workload is timed on
// the virtual tree walk, the scalar tape runner, and the batched SoA tape
// executor side by side (verifying bit-identical values and flag unions
// across all engines), machine-readable results are written to PATH
// (default BENCH_perf.json), and the process exits nonzero if the tape
// runner is slower than the tree walk. --gate-samples=N and
// --gate-modes=N shrink the sweep for CI.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bench_common.hpp"
#include "ir/ir.hpp"
#include "parallel/oracle_sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "softfloat/ops.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace ir = fpq::ir;

namespace {

std::vector<double> make_operands(std::size_t n, std::uint64_t seed) {
  fpq::stats::Xoshiro256pp g(seed);
  std::vector<double> out(n);
  for (auto& x : out) {
    // Finite normals of moderate exponent (no special-case bias).
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = 1023 - 30 + fpq::stats::uniform_below(g, 60);
    const std::uint64_t sign = g() & 0x8000000000000000ULL;
    x = std::bit_cast<double>(sign | (exp << 52) | frac);
  }
  return out;
}

constexpr std::size_t kN = 4096;

template <typename Op>
void soft_binop_bench(benchmark::State& state, Op op) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = op(sf::from_native(xs[i]), sf::from_native(ys[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

void BM_SoftAdd64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::add(a, b, e);
  });
}
void BM_SoftMul64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::mul(a, b, e);
  });
}
void BM_SoftDiv64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::div(a, b, e);
  });
}
void BM_SoftFma64(benchmark::State& state) {
  const auto xs = make_operands(kN, 3);
  const auto ys = make_operands(kN, 4);
  const auto zs = make_operands(kN, 5);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = sf::fma(sf::from_native(xs[i]), sf::from_native(ys[i]),
                           sf::from_native(zs[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}
void BM_SoftSqrt64(benchmark::State& state) {
  const auto xs = make_operands(kN, 6);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = sf::sqrt(sf::from_native(xs[i]).abs(), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

void BM_SoftAdd64Ftz(benchmark::State& state) {
  const auto xs = make_operands(kN, 7);
  const auto ys = make_operands(kN, 8);
  sf::Env env;
  env.set_flush_to_zero(true);
  env.set_denormals_are_zero(true);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r =
        sf::add(sf::from_native(xs[i]), sf::from_native(ys[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

// Hardware baselines for the speedup ratio.
void BM_HardwareAdd64(benchmark::State& state) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    volatile double r = xs[i] + ys[i];
    benchmark::DoNotOptimize(r);
    i = (i + 1) % kN;
  }
}
void BM_HardwareDiv64(benchmark::State& state) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    volatile double r = xs[i] / ys[i];
    benchmark::DoNotOptimize(r);
    i = (i + 1) % kN;
  }
}

// -- fpq::ir evaluation overhead and batch/memoization throughput -------
//
// The same degree-8 Horner polynomial four ways: a hand-rolled softfloat
// loop (what the pre-IR modules did), a per-call IR tree walk (virtual
// dispatch + traversal overhead on top of the same 16 softfloat ops), the
// batched evaluate_many path sharded over the pool, and the batched path
// hitting the memo cache on every sweep after the first.

constexpr std::array<double, 9> kPolyCoeffs{1.25,  -0.5,  3.0,   0.125,
                                            -2.75, 0.875, -1.5,  2.0,
                                            -0.0625};

ir::Expr poly_tree() {
  return ir::Expr::horner(std::span<const double>(kPolyCoeffs),
                          ir::Expr::variable("x", 0));
}

void BM_DirectSoftHorner64(benchmark::State& state) {
  const auto xs = make_operands(kN, 9);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto x = sf::from_native(xs[i]);
    auto acc = sf::from_native(kPolyCoeffs[0]);
    for (std::size_t k = 1; k < kPolyCoeffs.size(); ++k) {
      acc = sf::add(sf::mul(acc, x, env), sf::from_native(kPolyCoeffs[k]),
                    env);
    }
    benchmark::DoNotOptimize(acc.bits);
    i = (i + 1) % kN;
  }
}

void BM_IrTreeWalkHorner64(benchmark::State& state) {
  const auto tree = poly_tree();
  const auto xs = make_operands(kN, 9);
  const auto cfg = ir::EvalConfig::ieee_strict();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::array<double, 1> binding{xs[i]};
    const auto r = ir::evaluate(tree, cfg, binding);
    benchmark::DoNotOptimize(r.value.bits);
    i = (i + 1) % kN;
  }
}

void BM_IrBatchHorner64(benchmark::State& state, int threads, bool memoize) {
  fpq::parallel::ThreadPool pool(static_cast<std::size_t>(threads));
  const auto tree = poly_tree();
  ir::BindingTable table;
  table.width = 1;
  table.values = make_operands(kN, 10);
  ir::BatchOptions opts;
  opts.memoize = memoize;
  const auto cfg = ir::EvalConfig::ieee_strict();
  if (memoize) {
    // Warm the cache so every timed sweep is the all-hits path.
    benchmark::DoNotOptimize(
        ir::evaluate_many(pool, tree, table, cfg, opts).data());
  }
  for (auto _ : state) {
    auto out = ir::evaluate_many(pool, tree, table, cfg, opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN));
}

// The same Horner polynomial on the compiled tape: scalar runner (one
// row at a time, no virtual dispatch) and the batched SoA executor.
// Registered next to BM_IrTreeWalkHorner64 so one run reports tree walk
// vs tape vs batched tape side by side.
void BM_IrTapeHorner64(benchmark::State& state) {
  const auto tape = ir::Tape::cached(poly_tree());
  const auto xs = make_operands(kN, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::array<double, 1> binding{xs[i]};
    const auto r = ir::execute(*tape, binding);
    benchmark::DoNotOptimize(r.value.bits);
    i = (i + 1) % kN;
  }
}

void BM_IrTapeBatchHorner64(benchmark::State& state, int threads) {
  fpq::parallel::ThreadPool pool(static_cast<std::size_t>(threads));
  const auto tape = ir::Tape::cached(poly_tree());
  ir::BindingTable table;
  table.width = 1;
  table.values = make_operands(kN, 10);
  ir::BatchOptions opts;
  opts.memoize = false;
  for (auto _ : state) {
    auto out = ir::execute_batch(pool, *tape, table, opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN));
}

BENCHMARK(BM_SoftAdd64);
BENCHMARK(BM_SoftMul64);
BENCHMARK(BM_SoftDiv64);
BENCHMARK(BM_SoftFma64);
BENCHMARK(BM_SoftSqrt64);
BENCHMARK(BM_SoftAdd64Ftz);
BENCHMARK(BM_HardwareAdd64);
BENCHMARK(BM_HardwareDiv64);
BENCHMARK(BM_DirectSoftHorner64);
BENCHMARK(BM_IrTreeWalkHorner64);
BENCHMARK(BM_IrTapeHorner64);

// The sharded exhaustive binary16 differential sweep (all 2^16 first
// operands x sampled partners, six ops, five rounding modes). Same work
// at every thread count, so the reported real times give the scaling
// curve directly.
void BM_ExhaustiveBinary16Sweep(benchmark::State& state, int threads) {
  fpq::parallel::ThreadPool pool(static_cast<std::size_t>(threads));
  fpq::parallel::ExhaustiveConfig config;
  config.samples_per_operand = 2;  // bench-sized; tests use more
  std::uint64_t checked = 0;
  for (auto _ : state) {
    const auto report = fpq::parallel::run_exhaustive_binary16(pool, config);
    if (report.mismatches != 0) {
      const std::string msg =
          "differential mismatch: " + report.first_mismatch;
      state.SkipWithError(msg.c_str());
      return;
    }
    checked += report.checked;
    benchmark::DoNotOptimize(report.checked);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checked));
}

// -- The --tape-gate perf-smoke mode -------------------------------------
//
// One workload, three engines, hard parity checks, machine-readable
// output. The workload is the paper's exhaustive binary16 differential
// sweep reshaped as IR programs: every 2^16 first-operand encoding x
// sampled partners, through add/sub/mul/div/sqrt/fma trees, per rounding
// mode, format binary16.

using GateClock = std::chrono::steady_clock;

double seconds_since(GateClock::time_point t0) {
  return std::chrono::duration<double>(GateClock::now() - t0).count();
}

int run_tape_gate(const std::string& json_path, int samples, int mode_limit,
                  int max_threads) {
  namespace par = fpq::parallel;
  const ir::Expr x = ir::Expr::variable("x", 0);
  const ir::Expr y = ir::Expr::variable("y", 1);
  const ir::Expr z = ir::Expr::variable("z", 2);
  const ir::Expr trees[] = {ir::Expr::add(x, y),  ir::Expr::sub(x, y),
                            ir::Expr::mul(x, y),  ir::Expr::div(x, y),
                            ir::Expr::sqrt(x),    ir::Expr::fma(x, y, z)};
  const sf::Rounding all_modes[] = {
      sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
      sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway};
  const int modes =
      std::max(1, std::min(mode_limit, static_cast<int>(std::size(all_modes))));

  // Binding table: every binary16 encoding as first operand, seeded
  // binary16-valued partners (so all operands are exactly representable).
  sf::Env quiet;
  const auto widen16 = [&quiet](std::uint16_t bits) {
    return sf::to_native(sf::convert<64>(sf::Float16{bits}, quiet));
  };
  fpq::stats::Xoshiro256pp g(20180521);
  ir::BindingTable table;
  table.width = 3;
  table.values.reserve(3u * 0x10000u * static_cast<unsigned>(samples));
  for (int s = 0; s < samples; ++s) {
    for (std::uint32_t raw = 0; raw <= 0xFFFF; ++raw) {
      table.values.push_back(widen16(static_cast<std::uint16_t>(raw)));
      table.values.push_back(widen16(static_cast<std::uint16_t>(g())));
      table.values.push_back(widen16(static_cast<std::uint16_t>(g())));
    }
  }
  const std::size_t rows = table.rows();

  par::ThreadPool pool_one(1);
  par::ThreadPool pool_many(static_cast<std::size_t>(std::max(1, max_threads)));
  ir::BatchOptions opts;
  opts.memoize = false;

  double walk_s = 0, scalar_s = 0, batch1_s = 0, batchn_s = 0;
  std::size_t total_rows = 0;
  std::uint64_t campaign = 0;
  std::vector<ir::Outcome> ref(rows), got(rows);
  for (int m = 0; m < modes; ++m) {
    ir::EvalConfig cfg;
    cfg.format_bits = 16;
    cfg.rounding = all_modes[m];
    for (const ir::Expr& tree : trees) {
      const ir::Tape tape = ir::Tape::compile(tree, cfg);
      campaign ^= tape.fingerprint();
      total_rows += rows;

      auto t0 = GateClock::now();
      for (std::size_t r = 0; r < rows; ++r) {
        ref[r] = ir::evaluate(tree, cfg, table.row(r));
      }
      walk_s += seconds_since(t0);

      t0 = GateClock::now();
      for (std::size_t r = 0; r < rows; ++r) {
        got[r] = ir::execute(tape, table.row(r));
      }
      scalar_s += seconds_since(t0);
      for (std::size_t r = 0; r < rows; ++r) {
        if (ref[r].value.bits != got[r].value.bits ||
            ref[r].flags != got[r].flags) {
          std::fprintf(stderr,
                       "tape-gate: scalar tape diverges from tree walk "
                       "(%s row %zu)\n",
                       tree.to_string().c_str(), r);
          return 2;
        }
      }

      t0 = GateClock::now();
      auto batched = ir::execute_batch(pool_one, tape, table, opts);
      batch1_s += seconds_since(t0);
      for (std::size_t r = 0; r < rows; ++r) {
        if (ref[r].value.bits != batched[r].value.bits ||
            ref[r].flags != batched[r].flags) {
          std::fprintf(stderr,
                       "tape-gate: batched tape diverges from tree walk "
                       "(%s row %zu)\n",
                       tree.to_string().c_str(), r);
          return 2;
        }
      }

      t0 = GateClock::now();
      auto wide = ir::execute_batch(pool_many, tape, table, opts);
      batchn_s += seconds_since(t0);
      for (std::size_t r = 0; r < rows; ++r) {
        if (batched[r].value.bits != wide[r].value.bits ||
            batched[r].flags != wide[r].flags) {
          std::fprintf(stderr,
                       "tape-gate: batched tape not thread-count invariant "
                       "(%s row %zu)\n",
                       tree.to_string().c_str(), r);
          return 2;
        }
      }
    }
  }

  const auto row_of = [&](const char* name, double secs, int threads) {
    fpq::bench::PerfRow r;
    r.name = name;
    r.ns_per_op = secs * 1e9 / static_cast<double>(total_rows);
    r.ops_per_s = static_cast<double>(total_rows) / secs;
    r.threads = threads;
    r.fingerprint = campaign;
    return r;
  };
  fpq::bench::PerfJson json;
  json.add(row_of("tree-walk/binary16-sweep", walk_s, 1));
  json.add(row_of("tape-scalar/binary16-sweep", scalar_s, 1));
  json.add(row_of("tape-batched/binary16-sweep", batch1_s, 1));
  json.add(row_of("tape-batched/binary16-sweep", batchn_s,
                  std::max(1, max_threads)));
  if (!json.write(json_path)) return 2;

  std::printf(
      "tape-gate: %zu rows (%d sample(s), %d mode(s)), campaign "
      "%016llx\n",
      total_rows, samples, modes,
      static_cast<unsigned long long>(campaign));
  std::printf("  %-28s %10s %14s %9s\n", "engine", "ns/op", "ops/s",
              "vs walk");
  const auto line = [&](const char* name, double secs) {
    std::printf("  %-28s %10.1f %14.0f %8.2fx\n", name,
                secs * 1e9 / static_cast<double>(total_rows),
                static_cast<double>(total_rows) / secs, walk_s / secs);
  };
  line("tree-walk (reference)", walk_s);
  line("tape-scalar", scalar_s);
  line("tape-batched x1", batch1_s);
  const std::string wide_name =
      "tape-batched x" + std::to_string(std::max(1, max_threads));
  line(wide_name.c_str(), batchn_s);
  std::printf("  parity: all engines bit- and flag-identical\n");
  std::printf("  wrote %s\n", json_path.c_str());

  // The coarse CI gate: the scalar tape runner must not be slower than
  // the virtual tree walk it replaces.
  if (scalar_s > walk_s) {
    std::fprintf(stderr,
                 "tape-gate: FAIL — tape runner slower than tree walk "
                 "(%.2fx)\n",
                 walk_s / scalar_s);
    return 1;
  }
  return 0;
}

std::vector<int> parse_thread_list(std::string_view spec) {
  std::vector<int> out;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    const std::string item(spec.substr(0, comma));
    const int n = std::atoi(item.c_str());
    if (n > 0) out.push_back(n);
    if (comma == std::string_view::npos) break;
    spec.remove_prefix(comma + 1);
  }
  return out;
}

}  // namespace

// Custom main: google-benchmark rejects flags it does not know, so
// --threads is stripped from argv before Initialize sees it.
int main(int argc, char** argv) {
  std::vector<char*> bench_args;
  std::vector<int> thread_counts;
  bool tape_gate = false;
  std::string gate_path = "BENCH_perf.json";
  int gate_samples = 2;
  int gate_modes = 5;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      const auto parsed = parse_thread_list(argv[++i]);
      thread_counts.insert(thread_counts.end(), parsed.begin(),
                           parsed.end());
      continue;
    }
    if (arg.starts_with("--threads=")) {
      const auto parsed = parse_thread_list(arg.substr(10));
      thread_counts.insert(thread_counts.end(), parsed.begin(),
                           parsed.end());
      continue;
    }
    if (arg == "--tape-gate") {
      tape_gate = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') gate_path = argv[++i];
      continue;
    }
    if (arg.starts_with("--tape-gate=")) {
      tape_gate = true;
      gate_path = std::string(arg.substr(12));
      continue;
    }
    if (arg.starts_with("--gate-samples=")) {
      gate_samples = std::max(1, std::atoi(arg.substr(15).data()));
      continue;
    }
    if (arg.starts_with("--gate-modes=")) {
      gate_modes = std::max(1, std::atoi(arg.substr(13).data()));
      continue;
    }
    bench_args.push_back(argv[i]);
  }
  if (thread_counts.empty()) thread_counts = {1, 2, 4, 8};

  if (tape_gate) {
    const int max_threads =
        *std::max_element(thread_counts.begin(), thread_counts.end());
    return run_tape_gate(gate_path, gate_samples, gate_modes, max_threads);
  }

  for (const int t : thread_counts) {
    const std::string name =
        "BM_ExhaustiveBinary16Sweep/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [t](benchmark::State& state) { BM_ExhaustiveBinary16Sweep(state, t); })
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
    const std::string batch_name =
        "BM_IrBatchHorner64/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(batch_name.c_str(),
                                 [t](benchmark::State& state) {
                                   BM_IrBatchHorner64(state, t, false);
                                 })
        ->UseRealTime();
    const std::string memo_name =
        "BM_IrBatchHorner64Memoized/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(memo_name.c_str(),
                                 [t](benchmark::State& state) {
                                   BM_IrBatchHorner64(state, t, true);
                                 })
        ->UseRealTime();
    const std::string tape_name =
        "BM_IrTapeBatchHorner64/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(tape_name.c_str(),
                                 [t](benchmark::State& state) {
                                   BM_IrTapeBatchHorner64(state, t);
                                 })
        ->UseRealTime();
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
