// Performance of the softfloat engine vs host hardware (google-benchmark).
// Not a paper figure — an engineering characterization of the substrate:
// how much slower is the bit-exact software implementation, per operation
// and format, and what FTZ/emulation modes cost.

#include <benchmark/benchmark.h>

#include <vector>

#include "softfloat/ops.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;

namespace {

std::vector<double> make_operands(std::size_t n, std::uint64_t seed) {
  fpq::stats::Xoshiro256pp g(seed);
  std::vector<double> out(n);
  for (auto& x : out) {
    // Finite normals of moderate exponent (no special-case bias).
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = 1023 - 30 + fpq::stats::uniform_below(g, 60);
    const std::uint64_t sign = g() & 0x8000000000000000ULL;
    x = std::bit_cast<double>(sign | (exp << 52) | frac);
  }
  return out;
}

constexpr std::size_t kN = 4096;

template <typename Op>
void soft_binop_bench(benchmark::State& state, Op op) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = op(sf::from_native(xs[i]), sf::from_native(ys[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

void BM_SoftAdd64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::add(a, b, e);
  });
}
void BM_SoftMul64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::mul(a, b, e);
  });
}
void BM_SoftDiv64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::div(a, b, e);
  });
}
void BM_SoftFma64(benchmark::State& state) {
  const auto xs = make_operands(kN, 3);
  const auto ys = make_operands(kN, 4);
  const auto zs = make_operands(kN, 5);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = sf::fma(sf::from_native(xs[i]), sf::from_native(ys[i]),
                           sf::from_native(zs[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}
void BM_SoftSqrt64(benchmark::State& state) {
  const auto xs = make_operands(kN, 6);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = sf::sqrt(sf::from_native(xs[i]).abs(), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

void BM_SoftAdd64Ftz(benchmark::State& state) {
  const auto xs = make_operands(kN, 7);
  const auto ys = make_operands(kN, 8);
  sf::Env env;
  env.set_flush_to_zero(true);
  env.set_denormals_are_zero(true);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r =
        sf::add(sf::from_native(xs[i]), sf::from_native(ys[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

// Hardware baselines for the speedup ratio.
void BM_HardwareAdd64(benchmark::State& state) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    volatile double r = xs[i] + ys[i];
    benchmark::DoNotOptimize(r);
    i = (i + 1) % kN;
  }
}
void BM_HardwareDiv64(benchmark::State& state) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    volatile double r = xs[i] / ys[i];
    benchmark::DoNotOptimize(r);
    i = (i + 1) % kN;
  }
}

BENCHMARK(BM_SoftAdd64);
BENCHMARK(BM_SoftMul64);
BENCHMARK(BM_SoftDiv64);
BENCHMARK(BM_SoftFma64);
BENCHMARK(BM_SoftSqrt64);
BENCHMARK(BM_SoftAdd64Ftz);
BENCHMARK(BM_HardwareAdd64);
BENCHMARK(BM_HardwareDiv64);

}  // namespace

BENCHMARK_MAIN();
