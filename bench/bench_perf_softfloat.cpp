// Performance of the softfloat engine vs host hardware (google-benchmark),
// plus the sharded exhaustive binary16 differential sweep at several
// thread counts (the parallel engine's scaling benchmark).
//
// Not a paper figure — an engineering characterization of the substrate:
// how much slower is the bit-exact software implementation, per operation
// and format, and what FTZ/emulation modes cost.
//
// Usage: bench_perf_softfloat [--threads N[,N...]] [google-benchmark args]
// The default sweep registers thread counts 1, 2, 4 and 8.

#include <benchmark/benchmark.h>

#include <array>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ir/ir.hpp"
#include "parallel/oracle_sweep.hpp"
#include "parallel/thread_pool.hpp"
#include "softfloat/ops.hpp"
#include "stats/prng.hpp"

namespace sf = fpq::softfloat;
namespace ir = fpq::ir;

namespace {

std::vector<double> make_operands(std::size_t n, std::uint64_t seed) {
  fpq::stats::Xoshiro256pp g(seed);
  std::vector<double> out(n);
  for (auto& x : out) {
    // Finite normals of moderate exponent (no special-case bias).
    const std::uint64_t frac = g() & 0x000FFFFFFFFFFFFFULL;
    const std::uint64_t exp = 1023 - 30 + fpq::stats::uniform_below(g, 60);
    const std::uint64_t sign = g() & 0x8000000000000000ULL;
    x = std::bit_cast<double>(sign | (exp << 52) | frac);
  }
  return out;
}

constexpr std::size_t kN = 4096;

template <typename Op>
void soft_binop_bench(benchmark::State& state, Op op) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = op(sf::from_native(xs[i]), sf::from_native(ys[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

void BM_SoftAdd64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::add(a, b, e);
  });
}
void BM_SoftMul64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::mul(a, b, e);
  });
}
void BM_SoftDiv64(benchmark::State& state) {
  soft_binop_bench(state, [](sf::Float64 a, sf::Float64 b, sf::Env& e) {
    return sf::div(a, b, e);
  });
}
void BM_SoftFma64(benchmark::State& state) {
  const auto xs = make_operands(kN, 3);
  const auto ys = make_operands(kN, 4);
  const auto zs = make_operands(kN, 5);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = sf::fma(sf::from_native(xs[i]), sf::from_native(ys[i]),
                           sf::from_native(zs[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}
void BM_SoftSqrt64(benchmark::State& state) {
  const auto xs = make_operands(kN, 6);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r = sf::sqrt(sf::from_native(xs[i]).abs(), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

void BM_SoftAdd64Ftz(benchmark::State& state) {
  const auto xs = make_operands(kN, 7);
  const auto ys = make_operands(kN, 8);
  sf::Env env;
  env.set_flush_to_zero(true);
  env.set_denormals_are_zero(true);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto r =
        sf::add(sf::from_native(xs[i]), sf::from_native(ys[i]), env);
    benchmark::DoNotOptimize(r.bits);
    i = (i + 1) % kN;
  }
}

// Hardware baselines for the speedup ratio.
void BM_HardwareAdd64(benchmark::State& state) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    volatile double r = xs[i] + ys[i];
    benchmark::DoNotOptimize(r);
    i = (i + 1) % kN;
  }
}
void BM_HardwareDiv64(benchmark::State& state) {
  const auto xs = make_operands(kN, 1);
  const auto ys = make_operands(kN, 2);
  std::size_t i = 0;
  for (auto _ : state) {
    volatile double r = xs[i] / ys[i];
    benchmark::DoNotOptimize(r);
    i = (i + 1) % kN;
  }
}

// -- fpq::ir evaluation overhead and batch/memoization throughput -------
//
// The same degree-8 Horner polynomial four ways: a hand-rolled softfloat
// loop (what the pre-IR modules did), a per-call IR tree walk (virtual
// dispatch + traversal overhead on top of the same 16 softfloat ops), the
// batched evaluate_many path sharded over the pool, and the batched path
// hitting the memo cache on every sweep after the first.

constexpr std::array<double, 9> kPolyCoeffs{1.25,  -0.5,  3.0,   0.125,
                                            -2.75, 0.875, -1.5,  2.0,
                                            -0.0625};

ir::Expr poly_tree() {
  return ir::Expr::horner(std::span<const double>(kPolyCoeffs),
                          ir::Expr::variable("x", 0));
}

void BM_DirectSoftHorner64(benchmark::State& state) {
  const auto xs = make_operands(kN, 9);
  sf::Env env;
  std::size_t i = 0;
  for (auto _ : state) {
    const auto x = sf::from_native(xs[i]);
    auto acc = sf::from_native(kPolyCoeffs[0]);
    for (std::size_t k = 1; k < kPolyCoeffs.size(); ++k) {
      acc = sf::add(sf::mul(acc, x, env), sf::from_native(kPolyCoeffs[k]),
                    env);
    }
    benchmark::DoNotOptimize(acc.bits);
    i = (i + 1) % kN;
  }
}

void BM_IrTreeWalkHorner64(benchmark::State& state) {
  const auto tree = poly_tree();
  const auto xs = make_operands(kN, 9);
  const auto cfg = ir::EvalConfig::ieee_strict();
  std::size_t i = 0;
  for (auto _ : state) {
    const std::array<double, 1> binding{xs[i]};
    const auto r = ir::evaluate(tree, cfg, binding);
    benchmark::DoNotOptimize(r.value.bits);
    i = (i + 1) % kN;
  }
}

void BM_IrBatchHorner64(benchmark::State& state, int threads, bool memoize) {
  fpq::parallel::ThreadPool pool(static_cast<std::size_t>(threads));
  const auto tree = poly_tree();
  ir::BindingTable table;
  table.width = 1;
  table.values = make_operands(kN, 10);
  ir::BatchOptions opts;
  opts.memoize = memoize;
  const auto cfg = ir::EvalConfig::ieee_strict();
  if (memoize) {
    // Warm the cache so every timed sweep is the all-hits path.
    benchmark::DoNotOptimize(
        ir::evaluate_many(pool, tree, table, cfg, opts).data());
  }
  for (auto _ : state) {
    auto out = ir::evaluate_many(pool, tree, table, cfg, opts);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kN));
}

BENCHMARK(BM_SoftAdd64);
BENCHMARK(BM_SoftMul64);
BENCHMARK(BM_SoftDiv64);
BENCHMARK(BM_SoftFma64);
BENCHMARK(BM_SoftSqrt64);
BENCHMARK(BM_SoftAdd64Ftz);
BENCHMARK(BM_HardwareAdd64);
BENCHMARK(BM_HardwareDiv64);
BENCHMARK(BM_DirectSoftHorner64);
BENCHMARK(BM_IrTreeWalkHorner64);

// The sharded exhaustive binary16 differential sweep (all 2^16 first
// operands x sampled partners, six ops, five rounding modes). Same work
// at every thread count, so the reported real times give the scaling
// curve directly.
void BM_ExhaustiveBinary16Sweep(benchmark::State& state, int threads) {
  fpq::parallel::ThreadPool pool(static_cast<std::size_t>(threads));
  fpq::parallel::ExhaustiveConfig config;
  config.samples_per_operand = 2;  // bench-sized; tests use more
  std::uint64_t checked = 0;
  for (auto _ : state) {
    const auto report = fpq::parallel::run_exhaustive_binary16(pool, config);
    if (report.mismatches != 0) {
      const std::string msg =
          "differential mismatch: " + report.first_mismatch;
      state.SkipWithError(msg.c_str());
      return;
    }
    checked += report.checked;
    benchmark::DoNotOptimize(report.checked);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(checked));
}

std::vector<int> parse_thread_list(std::string_view spec) {
  std::vector<int> out;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    const std::string item(spec.substr(0, comma));
    const int n = std::atoi(item.c_str());
    if (n > 0) out.push_back(n);
    if (comma == std::string_view::npos) break;
    spec.remove_prefix(comma + 1);
  }
  return out;
}

}  // namespace

// Custom main: google-benchmark rejects flags it does not know, so
// --threads is stripped from argv before Initialize sees it.
int main(int argc, char** argv) {
  std::vector<char*> bench_args;
  std::vector<int> thread_counts;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      const auto parsed = parse_thread_list(argv[++i]);
      thread_counts.insert(thread_counts.end(), parsed.begin(),
                           parsed.end());
      continue;
    }
    if (arg.starts_with("--threads=")) {
      const auto parsed = parse_thread_list(arg.substr(10));
      thread_counts.insert(thread_counts.end(), parsed.begin(),
                           parsed.end());
      continue;
    }
    bench_args.push_back(argv[i]);
  }
  if (thread_counts.empty()) thread_counts = {1, 2, 4, 8};

  for (const int t : thread_counts) {
    const std::string name =
        "BM_ExhaustiveBinary16Sweep/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(
        name.c_str(),
        [t](benchmark::State& state) { BM_ExhaustiveBinary16Sweep(state, t); })
        ->UseRealTime()
        ->Unit(benchmark::kMillisecond);
    const std::string batch_name =
        "BM_IrBatchHorner64/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(batch_name.c_str(),
                                 [t](benchmark::State& state) {
                                   BM_IrBatchHorner64(state, t, false);
                                 })
        ->UseRealTime();
    const std::string memo_name =
        "BM_IrBatchHorner64Memoized/threads:" + std::to_string(t);
    benchmark::RegisterBenchmark(memo_name.c_str(),
                                 [t](benchmark::State& state) {
                                   BM_IrBatchHorner64(state, t, true);
                                 })
        ->UseRealTime();
  }

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
