// Survey pipeline at serving scale: streams an n-respondent synthetic
// cohort (default 10M) through the mergeable figure accumulators and
// proves the three properties the streaming refactor exists for:
//
//   1. IDENTITY — at small n, every figure analysis computed by the
//      streaming path (1/2/4/8-thread pools) is bit-identical to the
//      classic materialize-then-analyze vector path. Exact ==, no
//      tolerances.
//   2. FLAT MEMORY — peak RSS grows by less than --rss-ceiling-mb when n
//      grows 8x (streaming is O(chunks), a materialized cohort would be
//      O(n)). Gated; CI runs the 1M slice.
//   3. THREAD SCALING — ops/s for the streamed fold at 1 thread vs the
//      full pool, written to BENCH_survey_scale.json for regression
//      tooling (informational: machines differ, CI does not gate it).
//
// Plus the serving-scale CI machinery: a cluster bootstrap over streamed
// chunk statistics (stats/bootstrap.hpp) — memory O(chunks + replicates).
//
//   ./bench_survey_scale [--n N] [--threads T] [--json PATH]
//                        [--rss-ceiling-mb MB] [--monitor]
//                        [--monitor-budget FRAC]
//
// --monitor adds phase 5: the same streamed fold under always-on flow
// monitoring (fpmon/stream_flow.hpp), gated on sampling overhead staying
// within --monitor-budget (default 0.10 = 10%) of the unmonitored
// wall-clock, and on the flow report fingerprint being bit-identical at
// 1/2/4/8-thread pools (the chunk count is a pure function of n, so the
// monitored merge tree is too).

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "fpmon/stream_flow.hpp"
#include "paperdata/paperdata.hpp"
#include "stats/bootstrap.hpp"
#include "survey/accumulators.hpp"
#include "survey/analysis.hpp"
#include "survey/factor_analysis.hpp"
#include "survey/suspicion_analysis.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace quiz = fpq::quiz;
namespace par = fpq::parallel;

namespace {

double max_rss_mb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  // Linux reports ru_maxrss in kilobytes.
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

/// Streams records [0, n) of the kCohortSeed cohort through make_acc()'s
/// accumulator type on the given pool.
template <typename MakeAcc>
auto stream_n(par::ThreadPool& pool, std::size_t n, const MakeAcc& make_acc) {
  return par::stream_accumulate(
      pool, n, par::recommended_chunks(pool, n, 64), make_acc,
      [](auto& acc, std::size_t begin, std::size_t end) {
        fpq::respondent::CohortGenerator gen(fpq::bench::kCohortSeed);
        gen.seek(begin);
        for (std::size_t i = begin; i < end; ++i) acc.add(gen.next());
      });
}

int g_failures = 0;

void check(bool ok, const char* what, int threads) {
  if (!ok) {
    std::printf("IDENTITY FAILURE: %s at %d thread(s)\n", what, threads);
    ++g_failures;
  }
}

bool rows_equal(const std::vector<sv::TableRow>& a,
                const std::vector<sv::TableRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].n != b[i].n ||
        a[i].percent != b[i].percent) {
      return false;
    }
  }
  return true;
}

bool tally_equal(const sv::AverageTally& a, const sv::AverageTally& b) {
  return a.correct == b.correct && a.incorrect == b.incorrect &&
         a.dont_know == b.dont_know && a.unanswered == b.unanswered;
}

bool hist_equal(const fpq::stats::IntHistogram& a,
                const fpq::stats::IntHistogram& b) {
  if (a.lo() != b.lo() || a.hi() != b.hi() || a.total() != b.total() ||
      a.underflow() != b.underflow() || a.overflow() != b.overflow()) {
    return false;
  }
  for (int v = a.lo(); v <= a.hi(); ++v) {
    if (a.count(v) != b.count(v)) return false;
  }
  return true;
}

bool breakdown_equal(const std::vector<sv::BreakdownRow>& a,
                     const std::vector<sv::BreakdownRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].pct_correct != b[i].pct_correct ||
        a[i].pct_incorrect != b[i].pct_incorrect ||
        a[i].pct_dont_know != b[i].pct_dont_know ||
        a[i].pct_unanswered != b[i].pct_unanswered) {
      return false;
    }
  }
  return true;
}

bool factors_equal(const std::vector<sv::FactorLevelResult>& a,
                   const std::vector<sv::FactorLevelResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].n != b[i].n ||
        !tally_equal(a[i].core, b[i].core) ||
        !tally_equal(a[i].opt, b[i].opt)) {
      return false;
    }
  }
  return true;
}

bool dists_equal(const sv::SuspicionDistributions& a,
                 const sv::SuspicionDistributions& b) {
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    const auto pa = a[c].proportions();
    const auto pb = b[c].proportions();
    for (std::size_t i = 0; i < pa.size(); ++i) {
      if (pa[i] != pb[i]) return false;
    }
  }
  return true;
}

/// Phase 1: bit-identity of every streamed figure analysis against the
/// materialized vector path, at 1/2/4/8-thread pools.
void identity_gate() {
  constexpr std::size_t kSmallN = 2000;
  const auto cohort =
      fpq::respondent::generate_main_cohort(fpq::bench::kCohortSeed, kSmallN);
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  const auto ref_freq = sv::frequency_table(
      cohort, pd::positions(),
      [](const sv::SurveyRecord& r) { return r.background.position; });
  const auto ref_multi = sv::multi_select_table(
      cohort, pd::fp_languages(),
      [](const sv::SurveyRecord& r) -> const std::vector<std::size_t>& {
        return r.background.fp_languages;
      });
  const auto ref_core = sv::average_core(cohort, core_key);
  const auto ref_opt = sv::average_opt_tf(cohort, opt_key);
  const auto ref_hist = sv::core_score_histogram(cohort, core_key);
  const auto ref_cbrk = sv::core_question_breakdown(cohort, core_key);
  const auto ref_obrk = sv::opt_question_breakdown(cohort, opt_key);
  const auto ref_area = sv::by_area_group(cohort, core_key, opt_key);
  const auto ref_susp = sv::suspicion_distributions(
      std::span<const sv::SurveyRecord>(cohort));

  for (const int threads : {1, 2, 4, 8}) {
    par::ThreadPool pool(static_cast<std::size_t>(threads));
    check(rows_equal(ref_freq,
                     stream_n(pool, kSmallN, [] {
                       return sv::FrequencyAccumulator(
                           pd::positions(), [](const sv::SurveyRecord& r) {
                             return r.background.position;
                           });
                     }).finish()),
          "frequency_table", threads);
    check(rows_equal(ref_multi,
                     stream_n(pool, kSmallN, [] {
                       return sv::MultiSelectAccumulator(
                           pd::fp_languages(),
                           [](const sv::SurveyRecord& r)
                               -> const std::vector<std::size_t>& {
                             return r.background.fp_languages;
                           });
                     }).finish()),
          "multi_select_table", threads);
    check(tally_equal(ref_core,
                      stream_n(pool, kSmallN, [&] {
                        return sv::AverageTallyAccumulator::core(core_key);
                      }).finish()),
          "average_core", threads);
    check(tally_equal(ref_opt,
                      stream_n(pool, kSmallN, [&] {
                        return sv::AverageTallyAccumulator::opt_tf(opt_key);
                      }).finish()),
          "average_opt_tf", threads);
    check(hist_equal(ref_hist,
                     stream_n(pool, kSmallN, [&] {
                       return sv::ScoreHistogramAccumulator(core_key);
                     }).finish()),
          "core_score_histogram", threads);
    check(breakdown_equal(ref_cbrk,
                          stream_n(pool, kSmallN, [&] {
                            return sv::BreakdownAccumulator::core(core_key);
                          }).finish()),
          "core_question_breakdown", threads);
    check(breakdown_equal(ref_obrk,
                          stream_n(pool, kSmallN, [&] {
                            return sv::BreakdownAccumulator::opt(opt_key);
                          }).finish()),
          "opt_question_breakdown", threads);
    check(factors_equal(ref_area,
                        stream_n(pool, kSmallN, [&] {
                          return sv::FactorLevelAccumulator::by_area_group(
                              core_key, opt_key);
                        }).finish()),
          "by_area_group", threads);
    check(dists_equal(ref_susp,
                      stream_n(pool, kSmallN, [] {
                        return sv::SuspicionAccumulator{};
                      }).finish()),
          "suspicion_distributions", threads);
  }
  std::printf(
      "identity gate: streamed == materialized for 9 analyses x {1,2,4,8} "
      "threads: %s\n",
      g_failures == 0 ? "PASS (bit-exact)" : "FAIL");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n = 10'000'000;
  std::size_t threads = 0;  // 0 = hardware default
  std::string json_path = "BENCH_survey_scale.json";
  double rss_ceiling_mb = 512.0;
  bool monitor = false;
  double monitor_budget = 0.10;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--rss-ceiling-mb") == 0 && i + 1 < argc) {
      rss_ceiling_mb = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--monitor") == 0) {
      monitor = true;
    } else if (std::strcmp(argv[i], "--monitor-budget") == 0 && i + 1 < argc) {
      monitor_budget = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }
  if (n < 64) {
    std::fprintf(stderr, "--n must be >= 64\n");
    return 2;
  }

  identity_gate();

  par::ThreadPool pool(threads);
  const auto core_key = quiz::standard_core_truths();
  fpq::bench::PerfJson json;

  // Phase 2: flat memory. Warm the allocator and pool with an n/8 run,
  // snapshot peak RSS, then run the full n; ru_maxrss is a lifetime max,
  // so any growth is attributable to the 8x larger stream.
  const std::size_t warm_n = n / 8;
  auto warm = stream_n(pool, warm_n, [&] {
    return sv::AverageTallyAccumulator::core(core_key);
  });
  const double rss_before = max_rss_mb();

  const auto t0 = std::chrono::steady_clock::now();
  auto full = stream_n(pool, n, [&] {
    return sv::AverageTallyAccumulator::core(core_key);
  });
  const auto t1 = std::chrono::steady_clock::now();
  const double rss_after = max_rss_mb();
  const double rss_delta = rss_after - rss_before;

  const double pooled_s =
      std::chrono::duration<double>(t1 - t0).count();
  const auto avg = full.finish();
  std::printf(
      "streamed %zu respondents in %.2fs (%.0f records/s, %zu threads): "
      "mean core correct %.4f (chance 7.5)\n",
      n, pooled_s, static_cast<double>(n) / pooled_s, pool.lanes(),
      avg.correct);
  if (warm.finish().correct == 0.0 && warm_n > 0) {
    std::printf("warm-up fold produced an unexpected zero mean\n");
    ++g_failures;
  }

  const double materialized_floor_mb =
      static_cast<double>(n) * sizeof(sv::SurveyRecord) / (1024.0 * 1024.0);
  std::printf(
      "flat-memory gate: peak RSS %.1f MB -> %.1f MB (delta %.1f MB, "
      "ceiling %.1f MB); a materialized cohort vector would need >= %.0f "
      "MB before heap fields\n",
      rss_before, rss_after, rss_delta, rss_ceiling_mb,
      materialized_floor_mb);
  if (rss_delta > rss_ceiling_mb) {
    std::printf("FLAT-MEMORY FAILURE: RSS grew %.1f MB > ceiling %.1f MB\n",
                rss_delta, rss_ceiling_mb);
    ++g_failures;
  }

  // Phase 3: thread scaling — the same fold on a single-thread pool.
  par::ThreadPool single(1);
  const auto s0 = std::chrono::steady_clock::now();
  auto serial = stream_n(single, n, [&] {
    return sv::AverageTallyAccumulator::core(core_key);
  });
  const auto s1 = std::chrono::steady_clock::now();
  const double serial_s = std::chrono::duration<double>(s1 - s0).count();
  if (!tally_equal(serial.finish(), avg)) {
    std::printf("IDENTITY FAILURE: full-scale 1-thread vs pooled fold\n");
    ++g_failures;
  }
  std::printf(
      "thread scaling: 1 thread %.2fs, %zu threads %.2fs — speedup "
      "%.2fx\n",
      serial_s, pool.lanes(), pooled_s, serial_s / pooled_s);

  json.add({"survey-scale/stream-average-core", 1e9 * pooled_s /
                static_cast<double>(n),
            static_cast<double>(n) / pooled_s,
            static_cast<int>(pool.lanes()), 0});
  json.add({"survey-scale/stream-average-core-1t",
            1e9 * serial_s / static_cast<double>(n),
            static_cast<double>(n) / serial_s, 1, 0});

  // Phase 4: the memory-bounded bootstrap CI over streamed chunk stats.
  class ScoreChunks {
   public:
    explicit ScoreChunks(const sv::CoreKey& key) : key_(key) {}
    void add(const sv::SurveyRecord& r) {
      acc_.add(static_cast<double>(quiz::score_core(r.core, key_).correct));
    }
    void merge(ScoreChunks&& other) { acc_.merge(std::move(other.acc_)); }
    std::vector<fpq::stats::ChunkMeanStat> finish() const {
      return acc_.finish();
    }

   private:
    sv::CoreKey key_;
    fpq::stats::ChunkStatAccumulator acc_;
  };
  const auto chunk_stats =
      stream_n(pool, n, [&] { return ScoreChunks(core_key); }).finish();
  const auto ci = fpq::stats::bootstrap_mean_from_chunks(
      chunk_stats, 2000, 0.95, 0xB007, pool);
  std::printf(
      "streaming chunk bootstrap (%zu chunks, 2000 replicates): mean core "
      "score %.4f, 95%% CI [%.4f, %.4f]\n",
      chunk_stats.size(), ci.estimate, ci.lower, ci.upper);
  if (ci.estimate != avg.correct) {
    std::printf(
        "IDENTITY FAILURE: chunk-stat mean %.17g != streamed mean %.17g\n",
        ci.estimate, avg.correct);
    ++g_failures;
  }

  // Phase 5 (--monitor): the same fold under always-on flow monitoring.
  // The chunk count is fixed by n alone so the monitored merge tree —
  // and therefore the flow report fingerprint — is thread-count
  // invariant.
  if (monitor) {
    const std::size_t flow_chunks =
        std::min<std::size_t>(64, std::max<std::size_t>(1, n / 64));
    const auto fill = [](auto& acc, std::size_t begin, std::size_t end) {
      fpq::respondent::CohortGenerator gen(fpq::bench::kCohortSeed);
      gen.seek(begin);
      for (std::size_t i = begin; i < end; ++i) acc.add(gen.next());
    };
    const auto make_acc = [&] {
      return sv::AverageTallyAccumulator::core(core_key);
    };

    // Unmonitored reference fold over the SAME fixed chunk shape, so the
    // overhead comparison is monitoring cost only, not chunking changes.
    const auto u0 = std::chrono::steady_clock::now();
    auto plain =
        par::stream_accumulate(pool, n, flow_chunks, make_acc, fill);
    const auto u1 = std::chrono::steady_clock::now();
    const double plain_s = std::chrono::duration<double>(u1 - u0).count();

    const auto m0 = std::chrono::steady_clock::now();
    auto monitored = fpq::mon::monitored_stream_accumulate(
        pool, n, flow_chunks, make_acc, fill);
    const auto m1 = std::chrono::steady_clock::now();
    const double mon_s = std::chrono::duration<double>(m1 - m0).count();
    const double overhead =
        plain_s > 0.0 ? (mon_s - plain_s) / plain_s : 0.0;

    const auto flow_summary = monitored.flow.ledger.summary();
    std::printf(
        "monitored fold: %.2fs vs %.2fs unmonitored (overhead %+.1f%%, "
        "budget %.0f%%); conditions [%s]; flow: %zu seam samples, %zu "
        "born, %zu killed\n",
        mon_s, plain_s, 100.0 * overhead, 100.0 * monitor_budget,
        monitored.flow.conditions.to_string().c_str(),
        flow_summary.seam_samples, flow_summary.born,
        flow_summary.killed);
    std::printf(
        "monitor capability: trap %s, denormal tracking %s, seam "
        "collector %s\n",
        monitored.flow.capability.trap_supported ? "available"
                                                 : "unavailable",
        monitored.flow.capability.tracks_denormals ? "on" : "off",
        monitored.flow.capability.seam_collector ? "on" : "off");
    if (!tally_equal(monitored.value.finish(), plain.finish())) {
      std::printf(
          "IDENTITY FAILURE: monitored fold changed the tally\n");
      ++g_failures;
    }
    if (overhead > monitor_budget) {
      std::printf(
          "MONITOR-OVERHEAD FAILURE: %.1f%% > budget %.0f%%\n",
          100.0 * overhead, 100.0 * monitor_budget);
      ++g_failures;
    }
    json.add({"survey-scale/stream-average-core-monitored",
              1e9 * mon_s / static_cast<double>(n),
              static_cast<double>(n) / mon_s,
              static_cast<int>(pool.lanes()), 0});

    // Flow-report determinism: the fingerprint must be bit-identical at
    // every pool width (merge order is fixed by the chunk tree).
    const std::uint64_t ref_fp = monitored.flow.fingerprint();
    for (const int t : {1, 2, 4, 8}) {
      par::ThreadPool tp(static_cast<std::size_t>(t));
      auto again = fpq::mon::monitored_stream_accumulate(
          tp, n, flow_chunks, make_acc, fill);
      if (again.flow.fingerprint() != ref_fp) {
        std::printf(
            "IDENTITY FAILURE: flow fingerprint diverged at %d "
            "thread(s)\n",
            t);
        ++g_failures;
      }
    }
    std::printf(
        "monitor identity gate: flow fingerprint 0x%016llx stable over "
        "{1,2,4,8} threads: %s\n",
        static_cast<unsigned long long>(ref_fp),
        g_failures == 0 ? "PASS" : "FAIL");
  }

  if (!json_path.empty() && !json.write(json_path)) ++g_failures;
  std::printf("%s\n", g_failures == 0 ? "survey-scale: ALL GATES PASS"
                                      : "survey-scale: FAILURES");
  return g_failures == 0 ? 0 : 1;
}
