// Figure 13: histogram of core quiz scores (0..15). The paper prints the
// chart and its mean (8.5, chance 7.5); we render the regenerated chart
// (streamed through ScoreHistogramAccumulator — no record vector) and
// compare the summary statistics.

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "report/barchart.hpp"
#include "report/table.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

int main() {
  constexpr std::size_t kN = 199;
  const auto key = quiz::standard_core_truths();
  const auto hist = fpq::bench::stream_main_cohort(kN, [&] {
                      return sv::ScoreHistogramAccumulator(key);
                    }).finish();

  std::fputs(rp::section("Figure 13: core quiz score histogram (simulated)",
                         rp::int_histogram_chart(hist))
                 .c_str(),
             stdout);

  // Mode and tails as shape descriptors.
  int mode = 0;
  for (int s = 0; s <= 15; ++s) {
    if (hist.count(s) > hist.count(mode)) mode = s;
  }
  std::size_t below_chance = 0;
  for (int s = 0; s <= 7; ++s) below_chance += hist.count(s);

  std::vector<rp::ComparisonRow> rows{
      {"mean core score", fpq::paperdata::kCoreScoreMean, hist.mean(), 0.5},
      {"mode (paper chart peaks near 8-9)", 8.5, static_cast<double>(mode),
       1.5},
      {"fraction scoring <= chance (paper chart ~0.4)", 0.40,
       static_cast<double>(below_chance) / static_cast<double>(hist.total()),
       0.12},
  };
  return fpq::bench::finish("Figure 13: summary statistics", rows);
}
