// The 2^32 differential sweep driver: races the softfloat batch kernels
// against the host FPU / independent references (and, for sqrt, the tape
// engines) over the full binary32 pattern space, sharded and checkpointed
// so a run can be killed and resumed, or time-boxed for CI slices.
//
//   bench_sweep32 [--op NAME] [--modes N] [--threads N] [--begin N]
//                 [--end N] [--chunk-bits N] [--manifest FILE]
//                 [--deadline-ms N] [--max-shards N] [--no-tape]
//                 [--no-hardware] [--corpus N] [--json FILE]
//                 [--variant NAME]
//
// --op: sqrt (default), round_int, to_b16, to_b64, to_bf16, from_b16,
//       from_bf16, corpus (corner corpus only), all (every sweep op).
// --modes: how many of the five rounding modes to sweep (default all 5).
// --corpus N: also run the corner corpus with N random cases per mode.
// --json: PerfJson output path (default BENCH_sweep32.json).
// --variant: force the batch kernel engine (scalar / portable / avx2);
//            default is the best the CPU supports. Exits 2 when the
//            requested variant is unavailable on this machine. The
//            variant lands in the PerfJson env metadata, so the CI
//            speedup comparison (scalar vs accelerated values/s) never
//            diffs rows measured under different engines.
//
// Exits nonzero on any lane mismatch — the sweep IS the assertion. An
// interrupted run exits 0 with "incomplete" status as long as the shards
// it DID verify all agreed; rerun with the same --manifest to continue.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "parallel/sweep32.hpp"
#include "softfloat/kernels.hpp"

namespace sw = fpq::parallel::sweep32;
namespace sf = fpq::softfloat;

namespace {

struct Cli {
  std::string op = "sqrt";
  std::size_t modes = 5;
  std::size_t threads = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  int chunk_bits = 18;
  std::string manifest;
  std::uint64_t deadline_ms = 0;
  std::size_t max_shards = 0;
  bool tape = true;
  bool hardware = true;
  std::size_t corpus = 0;
  bool corpus_only = false;
  std::string json = "BENCH_sweep32.json";
  std::string variant;  ///< empty = best available
};

bool parse(int argc, char** argv, Cli& cli) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](std::uint64_t& out) {
      if (i + 1 >= argc) return false;
      out = std::strtoull(argv[++i], nullptr, 0);
      return true;
    };
    std::uint64_t v = 0;
    if (a == "--op" && i + 1 < argc) {
      cli.op = argv[++i];
    } else if (a == "--modes" && next(v)) {
      cli.modes = static_cast<std::size_t>(v);
    } else if (a == "--threads" && next(v)) {
      cli.threads = static_cast<std::size_t>(v);
    } else if (a == "--begin" && next(v)) {
      cli.begin = v;
    } else if (a == "--end" && next(v)) {
      cli.end = v;
    } else if (a == "--chunk-bits" && next(v)) {
      cli.chunk_bits = static_cast<int>(v);
    } else if (a == "--manifest" && i + 1 < argc) {
      cli.manifest = argv[++i];
    } else if (a == "--deadline-ms" && next(v)) {
      cli.deadline_ms = v;
    } else if (a == "--max-shards" && next(v)) {
      cli.max_shards = static_cast<std::size_t>(v);
    } else if (a == "--no-tape") {
      cli.tape = false;
    } else if (a == "--no-hardware") {
      cli.hardware = false;
    } else if (a == "--corpus" && next(v)) {
      cli.corpus = static_cast<std::size_t>(v);
    } else if (a == "--json" && i + 1 < argc) {
      cli.json = argv[++i];
    } else if (a == "--variant" && i + 1 < argc) {
      cli.variant = argv[++i];
    } else {
      std::fprintf(stderr, "bench_sweep32: bad argument '%s'\n", a.c_str());
      return false;
    }
  }
  if (cli.modes < 1 || cli.modes > 5) {
    std::fprintf(stderr, "bench_sweep32: --modes must be 1..5\n");
    return false;
  }
  return true;
}

bool op_from_name(const std::string& name, sw::UnaryOp32& out) {
  for (const sw::UnaryOp32 op : sw::kAllUnaryOps32) {
    if (name == sw::unary_op32_name(op)) {
      out = op;
      return true;
    }
  }
  return false;
}

/// Runs one op's sweep; returns false on mismatch. Appends a PerfRow.
/// With `multi` (--op all) the manifest path gets a per-op suffix — each
/// op is its own sweep identity, so sharing one file would make the
/// second op refuse to resume.
bool run_op(const Cli& cli, sw::UnaryOp32 op, fpq::bench::PerfJson& json,
            bool multi = false) {
  sw::Sweep32Config config;
  config.op = op;
  config.modes.assign(std::begin(fpq::parallel::kAllRoundings),
                      std::begin(fpq::parallel::kAllRoundings) + cli.modes);
  config.begin = cli.begin;
  config.end = cli.end;
  config.chunk_bits = cli.chunk_bits;
  config.threads = cli.threads;
  config.manifest_path = cli.manifest;
  if (multi && !config.manifest_path.empty()) {
    config.manifest_path += std::string(".") + sw::unary_op32_name(op);
  }
  config.deadline = std::chrono::milliseconds(cli.deadline_ms);
  config.max_shards = cli.max_shards;
  config.race_hardware = cli.hardware;
  config.race_tape = cli.tape;

  const auto t0 = std::chrono::steady_clock::now();
  const sw::Sweep32Report report = sw::run_sweep32(config);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const double vps =
      secs > 0.0 ? static_cast<double>(report.run_checked) / secs : 0.0;
  std::printf(
      "sweep32/%-9s shards %llu/%llu done (%llu this run)  "
      "checked %llu (this run %llu, %.3g values/s)  mismatches %llu%s%s\n",
      sw::unary_op32_name(op),
      static_cast<unsigned long long>(report.done_shards),
      static_cast<unsigned long long>(report.total_shards),
      static_cast<unsigned long long>(report.run_shards),
      static_cast<unsigned long long>(report.checked),
      static_cast<unsigned long long>(report.run_checked), vps,
      static_cast<unsigned long long>(report.mismatches),
      report.deadline_expired ? "  [deadline]" : "",
      report.complete ? "  [complete]" : "  [incomplete]");
  if (report.complete) {
    std::printf("sweep32/%-9s fingerprint 0x%016llx\n",
                sw::unary_op32_name(op),
                static_cast<unsigned long long>(report.fingerprint));
  }
  for (const std::string& s : report.mismatch_samples) {
    std::printf("  MISMATCH %s\n", s.c_str());
  }

  fpq::bench::PerfRow row;
  row.name = std::string("sweep32/") + sw::unary_op32_name(op);
  row.ns_per_op = vps > 0.0 ? 1e9 / vps : 0.0;
  row.ops_per_s = vps;
  row.threads = static_cast<int>(
      cli.threads != 0 ? cli.threads
                       : fpq::parallel::ThreadPool::default_thread_count());
  row.fingerprint = report.complete ? report.fingerprint : 0;
  json.add(row);
  return report.mismatches == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!parse(argc, argv, cli)) return 2;

  // Force the kernel engine BEFORE PerfJson captures the env, so the
  // variant metadata matches what the rows were measured under.
  if (!cli.variant.empty()) {
    sf::KernelVariant v{};
    if (!sf::parse_kernel_variant(cli.variant, v)) {
      std::fprintf(stderr, "bench_sweep32: unknown --variant '%s'\n",
                   cli.variant.c_str());
      return 2;
    }
    if (!sf::set_kernel_variant_override(v)) {
      std::fprintf(stderr,
                   "bench_sweep32: variant '%s' unavailable on this machine\n",
                   cli.variant.c_str());
      return 2;
    }
  }

  fpq::bench::PerfJson json;
  bool ok = true;
  try {
    if (cli.op == "corpus") {
      cli.corpus_only = true;
    } else if (cli.op == "all") {
      for (const sw::UnaryOp32 op : sw::kAllUnaryOps32) {
        ok = run_op(cli, op, json, /*multi=*/true) && ok;
      }
    } else {
      sw::UnaryOp32 op{};
      if (!op_from_name(cli.op, op)) {
        std::fprintf(stderr, "bench_sweep32: unknown --op '%s'\n",
                     cli.op.c_str());
        return 2;
      }
      ok = run_op(cli, op, json) && ok;
    }

    if (cli.corpus != 0 || cli.corpus_only) {
      const auto t0 = std::chrono::steady_clock::now();
      const sw::CorpusReport corpus = sw::run_corner_corpus(cli.corpus);
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      const double vps =
          secs > 0.0 ? static_cast<double>(corpus.checked) / secs : 0.0;
      std::printf("sweep32/corpus    checked %llu (%.3g checks/s)  "
                  "mismatches %llu\n",
                  static_cast<unsigned long long>(corpus.checked), vps,
                  static_cast<unsigned long long>(corpus.mismatches));
      for (const std::string& s : corpus.mismatch_samples) {
        std::printf("  MISMATCH %s\n", s.c_str());
      }
      fpq::bench::PerfRow row;
      row.name = "sweep32/corpus";
      row.ns_per_op = vps > 0.0 ? 1e9 / vps : 0.0;
      row.ops_per_s = vps;
      row.threads = 1;
      json.add(row);
      ok = ok && corpus.mismatches == 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_sweep32: %s\n", e.what());
    return 2;
  }

  if (!json.empty()) json.write(cli.json);
  return ok ? 0 : 1;
}
