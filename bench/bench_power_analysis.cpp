// Power analysis: could the paper even have SEEN its factor effects?
//
// §IV-B reports that several factors are "somewhat predictive" but none
// strong, and Figure 19's training effect is small. With a generative
// model in hand we can ask the quantitative question the paper could not:
// at n = 199, what is the statistical power to detect each factor's
// top-vs-bottom category difference (two-sample z test, alpha = 0.05)?
// And what n would have been needed?
//
// This extends the paper's analysis rather than reproducing a figure.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "parallel/shard.hpp"
#include "parallel/thread_pool.hpp"
#include "report/table.hpp"
#include "respondent/population.hpp"
#include "survey/record.hpp"

namespace sv = fpq::survey;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

namespace {

struct GroupStats {
  double mean = 0.0;
  double var = 0.0;
  std::size_t n = 0;
};

GroupStats stats_of(const std::vector<double>& xs) {
  GroupStats s;
  s.n = xs.size();
  if (xs.empty()) return s;
  for (double x : xs) s.mean += x;
  s.mean /= static_cast<double>(xs.size());
  for (double x : xs) s.var += (x - s.mean) * (x - s.mean);
  s.var = xs.size() > 1 ? s.var / static_cast<double>(xs.size() - 1) : 0.0;
  return s;
}

// Bucket selector: returns 0 (bottom), 1 (top) or npos.
using Bucket = std::size_t (*)(const sv::SurveyRecord&);

std::size_t size_bucket(const sv::SurveyRecord& r) {
  const auto bin = sv::contributed_size_bin(r.background.contributed_size);
  if (bin == sv::kNoSizeBin) return static_cast<std::size_t>(-1);
  if (bin <= 1) return 0;  // <= 10K lines
  if (bin >= 3) return 1;  // >= 100K lines
  return static_cast<std::size_t>(-1);
}

std::size_t training_bucket(const sv::SurveyRecord& r) {
  const auto idx = sv::training_index(r.background.formal_training);
  if (idx == sv::kNoTraining) return static_cast<std::size_t>(-1);
  if (idx == 0) return 0;  // none
  if (idx == 3) return 1;  // one or more courses
  return static_cast<std::size_t>(-1);
}

std::size_t role_bucket(const sv::SurveyRecord& r) {
  const auto idx = sv::role_index(r.background.dev_role);
  if (idx == sv::kNoRole) return static_cast<std::size_t>(-1);
  if (idx == 0) return 1;  // main-role software engineer
  if (idx == 2) return 0;  // dev in support of main role
  return static_cast<std::size_t>(-1);
}

// One cohort: is the top-vs-bottom difference significant at alpha=.05?
bool detects(const std::vector<sv::SurveyRecord>& cohort, Bucket bucket) {
  const auto key = quiz::standard_core_truths();
  std::vector<double> lo, hi;
  for (const auto& r : cohort) {
    const std::size_t b = bucket(r);
    if (b > 1) continue;
    const double score =
        static_cast<double>(quiz::score_core(r.core, key).correct);
    (b == 0 ? lo : hi).push_back(score);
  }
  if (lo.size() < 5 || hi.size() < 5) return false;
  const GroupStats a = stats_of(lo);
  const GroupStats b = stats_of(hi);
  const double se = std::sqrt(a.var / static_cast<double>(a.n) +
                              b.var / static_cast<double>(b.n));
  if (se == 0.0) return false;
  return std::fabs(b.mean - a.mean) / se > 1.96;
}

// Each trial's cohort is seeded seed_base + t, so trials shard cleanly:
// the hit count (and thus the power) is identical at every thread count.
double power_at(std::size_t n, Bucket bucket, std::uint64_t seed_base,
                fpq::parallel::ThreadPool& pool) {
  constexpr std::size_t kTrials = 60;
  const auto hits = fpq::parallel::parallel_map(
      pool, kTrials, [&](std::size_t t) {
        const auto cohort =
            fpq::respondent::generate_main_cohort(seed_base + t, n);
        return detects(cohort, bucket) ? 1 : 0;
      });
  int total = 0;
  for (const int h : hits) total += h;
  return static_cast<double>(total) / static_cast<double>(kTrials);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = static_cast<std::size_t>(std::atoi(argv[i] + 10));
    }
  }
  fpq::parallel::ThreadPool pool(threads == 0 ? 0 : threads);
  const std::size_t sizes[] = {50, 100, 199, 400, 800};
  struct Factor {
    const char* name;
    Bucket bucket;
    std::uint64_t seed;
  };
  const Factor factors[] = {
      {"contributed size (<=10K vs >=100K)", &size_bucket, 0x90001},
      {"role (support-dev vs main SWE)", &role_bucket, 0x90002},
      {"formal training (none vs courses)", &training_bucket, 0x90003},
  };

  rp::Table table({"factor", "n=50", "n=100", "n=199", "n=400", "n=800"});
  double power_199[3] = {0, 0, 0};
  int fi = 0;
  for (const Factor& f : factors) {
    std::vector<std::string> row{f.name};
    for (std::size_t n : sizes) {
      const double p = power_at(n, f.bucket, f.seed + n, pool);
      if (n == 199) power_199[fi] = p;
      row.push_back(rp::Table::fmt(p, 2));
    }
    table.add_row(std::move(row));
    ++fi;
  }
  std::fputs(rp::section("Statistical power to detect factor effects "
                         "(two-sample z, alpha=0.05, 60 cohorts/cell)",
                         table.render())
                 .c_str(),
             stdout);

  std::printf(
      "reading: at the paper's n=199 the factor ordering matches §IV-B — "
      "codebase size is the most detectable effect (power %.2f), then role "
      "(%.2f), then formal training (%.2f, the weakest, which is why "
      "Figure 19 looks so flat); none of the top-vs-bottom contrasts needs "
      "more than ~400 participants to become near-certain.\n",
      power_199[0], power_199[1], power_199[2]);

  // Sanity gates: size must dominate training at n=199.
  return power_199[0] > power_199[2] ? 0 : 1;
}
