// fpmon overhead microbench: what does always-on flow monitoring cost?
//
// Times every healthy workloads kernel (the broken ones would trap) in
// four configurations and reports per-run deltas:
//
//   * native-unmonitored — NativeContext, no monitor: the floor.
//   * flowctx-idle       — FlowContext with NO FlowMonitor live: the
//                          always-on price every caller pays for keeping
//                          the flow seam compiled in (one thread-local
//                          load per kernel call).
//   * flow-sampling      — observe_flow(): FlowContext under a
//                          sampling-mode FlowMonitor, per-op class
//                          emission into the ledger.
//   * flow-trap          — same under trap mode, when the platform can
//                          arm FE traps (healthy kernels raise none of
//                          the trapped kinds, so this measures the
//                          enable/disable + signal-path bookkeeping, not
//                          trap storms).
//
//   bench_fpmon [--reps N] [--out FILE] [--budget FILE]
//
// --out writes the rows as BENCH_fpmon.json (bench_common PerfJson).
// --budget reads "mode max_ratio" lines and exits nonzero when a mode's
// measured overhead ratio vs native-unmonitored exceeds its budget —
// the CI regression gate for monitoring cost. Budgets are deliberately
// generous: per-op hooks on cheap interpreted kernels are expected to
// cost integer multiples, and the gate exists to catch order-of-
// magnitude regressions, not scheduler noise.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fpmon/flow.hpp"
#include "workloads/workloads.hpp"

namespace mon = fpq::mon;
namespace wl = fpq::workloads;

namespace {

template <typename F>
double time_ns_per_rep(std::size_t reps, F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < reps; ++i) f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(reps);
}

std::vector<const wl::Workload*> healthy_workloads() {
  std::vector<const wl::Workload*> out;
  for (const wl::Workload& w : wl::catalogue()) {
    if (w.name.find("/healthy") != std::string::npos) out.push_back(&w);
  }
  return out;
}

bool load_budget(const char* path, std::map<std::string, double>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string mode;
  double ratio = 0.0;
  while (in >> mode) {
    if (!mode.empty() && mode.front() == '#') {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (!(in >> ratio)) return false;
    out[mode] = ratio;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t reps = 200;
  const char* out_path = nullptr;
  const char* budget_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--reps") == 0 && value) {
      reps = std::strtoull(value, nullptr, 0);
      ++i;
    } else if (std::strcmp(arg, "--out") == 0 && value) {
      out_path = value;
      ++i;
    } else if (std::strcmp(arg, "--budget") == 0 && value) {
      budget_path = value;
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--reps N] [--out FILE] [--budget FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<const wl::Workload*> kernels = healthy_workloads();
  if (kernels.empty()) {
    std::fprintf(stderr, "no healthy workloads in catalogue\n");
    return 1;
  }

  // Warm every tape cache before timing so the first mode measured does
  // not pay one-time trace costs the later modes skip.
  {
    wl::NativeContext native;
    wl::FlowContext flow;
    for (const wl::Workload* w : kernels) {
      w->run(native);
      w->run(flow);
      (void)wl::observe_flow(*w);
    }
  }

  struct Mode {
    std::string name;
    double ns_per_run = 0.0;
  };
  std::vector<Mode> modes;

  modes.push_back({"native-unmonitored",
                   time_ns_per_rep(reps, [&] {
                     wl::NativeContext ctx;
                     for (const wl::Workload* w : kernels) w->run(ctx);
                   })});
  modes.push_back({"flowctx-idle",
                   time_ns_per_rep(reps, [&] {
                     wl::FlowContext ctx;
                     for (const wl::Workload* w : kernels) w->run(ctx);
                   })});
  modes.push_back({"flow-sampling",
                   time_ns_per_rep(reps, [&] {
                     for (const wl::Workload* w : kernels)
                       (void)wl::observe_flow(*w);
                   })});
  if (mon::trap_supported()) {
    mon::FlowOptions trap_opts;
    trap_opts.mode = mon::FlowMode::kTrap;
    modes.push_back({"flow-trap",
                     time_ns_per_rep(reps, [&] {
                       for (const wl::Workload* w : kernels)
                         (void)wl::observe_flow(*w, trap_opts);
                     })});
  } else {
    std::printf(
        "flow-trap: skipped (FE traps unavailable on this platform/"
        "build)\n");
  }

  const double base = modes.front().ns_per_run;
  fpq::bench::PerfJson json;
  std::printf("fpmon overhead (%zu reps x %zu healthy kernels)\n", reps,
              kernels.size());
  std::printf("%-20s %14s %10s\n", "mode", "ns/catalogue", "ratio");
  for (const Mode& m : modes) {
    const double ratio = base > 0.0 ? m.ns_per_run / base : 0.0;
    std::printf("%-20s %14.0f %9.2fx\n", m.name.c_str(), m.ns_per_run,
                ratio);
    fpq::bench::PerfRow row;
    row.name = "fpmon/" + m.name;
    row.ns_per_op = m.ns_per_run;
    row.ops_per_s = m.ns_per_run > 0.0 ? 1e9 / m.ns_per_run : 0.0;
    row.threads = 1;
    json.add(row);
  }

  bool ok = true;
  if (budget_path != nullptr) {
    std::map<std::string, double> budget;
    if (!load_budget(budget_path, budget)) {
      std::fprintf(stderr, "GATE: cannot read budget %s\n", budget_path);
      ok = false;
    } else {
      for (const Mode& m : modes) {
        const auto it = budget.find(m.name);
        if (it == budget.end()) continue;
        const double ratio = base > 0.0 ? m.ns_per_run / base : 0.0;
        if (ratio > it->second) {
          std::fprintf(stderr,
                       "GATE: fpmon mode %s overhead %.2fx exceeds"
                       " budget %.2fx\n",
                       m.name.c_str(), ratio, it->second);
          ok = false;
        }
      }
    }
  }

  if (out_path != nullptr && !json.write(out_path)) {
    std::fprintf(stderr, "GATE: cannot write %s\n", out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}
