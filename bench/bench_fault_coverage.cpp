// The detector gauntlet (§V's monitoring question turned adversarial):
// every workloads kernel runs under every fault class of fpq::inject and
// every detector fpqual ships is scored on whether it noticed. Prints the
// detection-coverage matrix, the probe contract table and the list of
// faults nobody caught.
//
//   bench_fault_coverage [--seed N] [--trials N] [--threads N]
//
// Exits nonzero if any fault class is all-miss (a detector blind spot the
// suite promises not to have) or a probe breaks its exception contract.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "inject/gauntlet.hpp"
#include "parallel/thread_pool.hpp"

namespace inj = fpq::inject;

int main(int argc, char** argv) {
  inj::GauntletConfig config;
  std::size_t threads = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--seed") == 0 && value) {
      config.seed = std::strtoull(value, nullptr, 0);
      ++i;
    } else if (std::strcmp(arg, "--trials") == 0 && value) {
      config.trials = std::strtoull(value, nullptr, 0);
      ++i;
    } else if (std::strcmp(arg, "--threads") == 0 && value) {
      threads = std::strtoull(value, nullptr, 0);
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--trials N] [--threads N]\n",
                   argv[0]);
      return 2;
    }
  }

  fpq::parallel::ThreadPool pool(threads);
  const inj::GauntletResult result = inj::run_gauntlet(pool, config);
  std::fputs(inj::render(result).c_str(), stdout);

  bool ok = true;
  for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
    ok = ok && result.class_covered(static_cast<inj::FaultClass>(c));
  }
  for (const auto& row : result.contracts) ok = ok && row.holds;
  return ok ? 0 : 1;
}
