// The detector gauntlet (§V's monitoring question turned adversarial):
// every workloads kernel runs under every fault class of fpq::inject — on
// BOTH arithmetic substrates, the softfloat engine and the host FPU — and
// every detector fpqual ships is scored on whether it noticed. Prints the
// per-substrate detection-coverage matrices, the probe contract table,
// the cross-substrate parity verdict and the list of faults nobody
// caught.
//
//   bench_fault_coverage [--seed N] [--trials N] [--threads N]
//                        [--baseline FILE] [--matrix-out FILE]
//
// Exits nonzero if any fault class is all-miss on either substrate (a
// detector blind spot the suite promises not to have), a probe breaks its
// exception contract, any campaign's softfloat and native fingerprints
// disagree, or — with --baseline — an effective fault went undetected
// that is not in the checked-in baseline list (a detection regression).
// --matrix-out writes the full coverage matrix as JSON for archival next
// to BENCH_perf.json.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "inject/gauntlet.hpp"
#include "parallel/thread_pool.hpp"

namespace inj = fpq::inject;

namespace {

// One undetected fault as a stable one-line key, the currency of the
// baseline file: "workload substrate class trial".
std::string miss_key(const inj::MissRecord& m) {
  std::ostringstream os;
  os << m.workload << ' ' << inj::substrate_name(m.substrate) << ' '
     << inj::fault_class_name(m.fault_class) << ' ' << m.trial;
  return os.str();
}

bool load_baseline(const char* path, std::set<std::string>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.front() != '#') out.insert(line);
  }
  return true;
}

bool write_matrix_json(const char* path, const inj::GauntletResult& r) {
  std::ofstream out(path);
  if (!out) return false;
  out << "{\n";
  out << "  \"seed\": " << r.config.seed << ",\n";
  out << "  \"trials\": " << r.config.trials << ",\n";
  out << "  \"fingerprint\": \"" << std::hex << r.fingerprint << std::dec
      << "\",\n";
  out << "  \"total_trials\": " << r.total_trials << ",\n";
  out << "  \"total_sites\": " << r.total_sites << ",\n";
  out << "  \"total_effective\": " << r.total_effective << ",\n";
  out << "  \"parity_mismatches\": " << r.parity_mismatches.size()
      << ",\n";
  out << "  \"capabilities\": {\"tracks_denormals\": "
      << (r.tracks_denormals ? "true" : "false")
      << ", \"trap_available\": "
      << (r.trap_available ? "true" : "false") << "},\n";
  out << "  \"flow\": {\n";
  for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
    const inj::FlowScore& fs = r.flow_scores[s];
    out << "    \"" << inj::substrate_name(static_cast<inj::Substrate>(s))
        << "\": {\"poison_attributed\": " << fs.poison_attributed
        << ", \"poison_effective\": " << fs.poison_effective
        << ", \"swallow_attributed\": " << fs.swallow_attributed
        << ", \"swallow_effective\": " << fs.swallow_effective
        << ", \"control_trials\": " << fs.control_trials
        << ", \"control_anomalies\": " << fs.control_anomalies << "}"
        << (s + 1 < inj::kSubstrateCount ? "," : "") << "\n";
  }
  out << "  },\n";
  out << "  \"matrix\": {\n";
  for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
    out << "    \"" << inj::substrate_name(static_cast<inj::Substrate>(s))
        << "\": {\n";
    for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
      out << "      \""
          << inj::fault_class_name(static_cast<inj::FaultClass>(c))
          << "\": {\n";
      for (std::size_t d = 0; d < inj::kDetectorCount; ++d) {
        const inj::CellStats& cell = r.cells[s][c][d];
        out << "        \""
            << inj::detector_name(static_cast<inj::Detector>(d))
            << "\": {\"trials\": " << cell.trials
            << ", \"hits\": " << cell.hits
            << ", \"misses\": " << cell.misses
            << ", \"false_positives\": " << cell.false_positives
            << ", \"controls\": " << cell.controls << "}"
            << (d + 1 < inj::kDetectorCount ? "," : "") << "\n";
      }
      out << "      }" << (c + 1 < inj::kFaultClassCount ? "," : "")
          << "\n";
    }
    out << "    }" << (s + 1 < inj::kSubstrateCount ? "," : "") << "\n";
  }
  out << "  },\n";
  out << "  \"undetected\": [\n";
  for (std::size_t i = 0; i < r.undetected.size(); ++i) {
    out << "    \"" << miss_key(r.undetected[i]) << "\""
        << (i + 1 < r.undetected.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
  return out.good();
}

}  // namespace

int main(int argc, char** argv) {
  inj::GauntletConfig config;
  std::size_t threads = 0;  // 0 = hardware concurrency
  const char* baseline_path = nullptr;
  const char* matrix_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = i + 1 < argc ? argv[i + 1] : nullptr;
    if (std::strcmp(arg, "--seed") == 0 && value) {
      config.seed = std::strtoull(value, nullptr, 0);
      ++i;
    } else if (std::strcmp(arg, "--trials") == 0 && value) {
      config.trials = std::strtoull(value, nullptr, 0);
      ++i;
    } else if (std::strcmp(arg, "--threads") == 0 && value) {
      threads = std::strtoull(value, nullptr, 0);
      ++i;
    } else if (std::strcmp(arg, "--baseline") == 0 && value) {
      baseline_path = value;
      ++i;
    } else if (std::strcmp(arg, "--matrix-out") == 0 && value) {
      matrix_path = value;
      ++i;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--trials N] [--threads N]"
                   " [--baseline FILE] [--matrix-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }

  fpq::parallel::ThreadPool pool(threads);
  const inj::GauntletResult result = inj::run_gauntlet(pool, config);
  std::fputs(inj::render(result).c_str(), stdout);

  bool ok = true;
  for (std::size_t c = 0; c < inj::kFaultClassCount; ++c) {
    const auto cls = static_cast<inj::FaultClass>(c);
    if (!result.class_covered(cls)) {
      std::fprintf(stderr, "GATE: fault class %s is all-miss\n",
                   inj::fault_class_name(cls).c_str());
      ok = false;
    }
  }
  for (const auto& row : result.contracts) {
    if (!row.holds) {
      std::fprintf(stderr, "GATE: probe contract broken: %s [%s]\n",
                   row.workload.c_str(),
                   inj::substrate_name(row.substrate).c_str());
      ok = false;
    }
  }
  if (!result.parity_mismatches.empty()) {
    std::fprintf(stderr,
                 "GATE: %zu campaigns diverged across substrates\n",
                 result.parity_mismatches.size());
    ok = false;
  }
  for (std::size_t s = 0; s < inj::kSubstrateCount; ++s) {
    const inj::FlowScore& fs = result.flow_scores[s];
    const std::string sub =
        inj::substrate_name(static_cast<inj::Substrate>(s));
    // The flow ledger must attribute ≥90% of effective poison faults to
    // the exact birth site; anything lower means the signature diff is
    // misfiring on sites the fault never touched.
    if (fs.poison_effective > 0 &&
        fs.poison_attributed * 10 < fs.poison_effective * 9) {
      std::fprintf(stderr,
                   "GATE: fpmon-flow poison attribution %zu/%zu < 90%%"
                   " on %s\n",
                   fs.poison_attributed, fs.poison_effective, sub.c_str());
      ok = false;
    }
    // Controls are bit-identical to the clean baseline, so any anomalous
    // site the ledger reports on one is a false birth — zero tolerance.
    if (fs.control_anomalies != 0) {
      std::fprintf(stderr,
                   "GATE: fpmon-flow reported %zu anomalies on %zu"
                   " control trials on %s\n",
                   fs.control_anomalies, fs.control_trials, sub.c_str());
      ok = false;
    }
  }

  if (baseline_path != nullptr) {
    std::set<std::string> baseline;
    if (!load_baseline(baseline_path, baseline)) {
      std::fprintf(stderr, "GATE: cannot read baseline %s\n",
                   baseline_path);
      ok = false;
    } else {
      for (const inj::MissRecord& m : result.undetected) {
        const std::string key = miss_key(m);
        if (baseline.count(key) == 0) {
          std::fprintf(stderr,
                       "GATE: undetected fault not in baseline: %s\n",
                       key.c_str());
          ok = false;
        }
      }
    }
  }

  if (matrix_path != nullptr && !write_matrix_json(matrix_path, result)) {
    std::fprintf(stderr, "GATE: cannot write matrix JSON %s\n",
                 matrix_path);
    ok = false;
  }

  return ok ? 0 : 1;
}
