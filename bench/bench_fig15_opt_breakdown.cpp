// Figure 15: per-question breakdown of the optimization quiz — the table
// where every row's "Don't Know" exceeds 50%.

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

int main() {
  const auto key = quiz::standard_opt_truths();
  const auto measured = fpq::bench::stream_main_cohort(199, [&] {
                          return sv::BreakdownAccumulator::opt(key);
                        }).finish();
  const auto paper = pd::opt_breakdown();

  constexpr double kTol = 9.0;
  std::vector<rp::ComparisonRow> rows;
  for (std::size_t q = 0; q < paper.size(); ++q) {
    rows.push_back({std::string(paper[q].label) + " %correct",
                    paper[q].pct_correct, measured[q].pct_correct, kTol});
    rows.push_back({std::string(paper[q].label) + " %incorrect",
                    paper[q].pct_incorrect, measured[q].pct_incorrect,
                    kTol});
    rows.push_back({std::string(paper[q].label) + " %don't-know",
                    paper[q].pct_dont_know, measured[q].pct_dont_know,
                    kTol});
  }
  const int rc = fpq::bench::finish(
      "Figure 15: optimization quiz by question (n=199)", rows, 1);

  bool all_dk_dominant = true;
  for (const auto& row : measured) {
    if (row.pct_dont_know <= 50.0) all_dk_dominant = false;
  }
  std::printf(
      "shape check: don't-know exceeds 50%% on every question: %s "
      "(paper: yes, on all four).\n",
      all_dk_dominant ? "yes" : "NO");
  return rc + (all_dk_dominant ? 0 : 1);
}
