// Performance of fpmon's scoped monitoring and of cohort generation
// (google-benchmark). Answers the engineering questions behind §V's
// proposed runtime monitoring tool: what does wrapping a region cost, and
// how fast can synthetic studies be generated for power analysis?

#include <benchmark/benchmark.h>

#include "fpmon/monitor.hpp"
#include "respondent/population.hpp"

namespace {

// A small "simulation" kernel: a few hundred FLOPs.
[[gnu::noinline]] double kernel(double x0) {
  volatile double x = x0;
  double acc = 0.0;
  for (int i = 0; i < 256; ++i) {
    acc += x / (1.0 + x * x);
    x = x * 1.0000001 + 1e-9;
  }
  return acc;
}

void BM_KernelUnmonitored(benchmark::State& state) {
  double seed = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel(seed));
    seed += 0.1;
  }
}

void BM_KernelMonitored(benchmark::State& state) {
  double seed = 1.0;
  for (auto _ : state) {
    fpq::mon::ScopedMonitor monitor;
    benchmark::DoNotOptimize(kernel(seed));
    benchmark::DoNotOptimize(monitor.stop().any());
    seed += 0.1;
  }
}

void BM_MonitorScopeOnly(benchmark::State& state) {
  for (auto _ : state) {
    fpq::mon::ScopedMonitor monitor;
    benchmark::DoNotOptimize(monitor.stop().any());
  }
}

void BM_GenerateCohort(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto cohort = fpq::respondent::generate_main_cohort(seed++, n);
    benchmark::DoNotOptimize(cohort.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

BENCHMARK(BM_KernelUnmonitored);
BENCHMARK(BM_KernelMonitored);
BENCHMARK(BM_MonitorScopeOnly);
BENCHMARK(BM_GenerateCohort)->Arg(199)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
