// Figures 16-19: core-quiz score conditioned on the four charted factors
// (contributed codebase size, area, role, formal training). Values are
// compared against the text-anchored reconstructions; small-n categories
// get proportionally loose tolerances.

#include <cmath>

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "report/barchart.hpp"
#include "report/table.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

namespace {

// Conditional-mean tolerance: the score sd within a level is ~2.5, so
// 2.5 * 2.5 / sqrt(n) plus reconstruction slack.
double level_tolerance(std::size_t n) {
  if (n == 0) return 15.0;
  return 2.5 * 2.5 / std::sqrt(static_cast<double>(n)) + 0.5;
}

void add_factor(std::vector<rp::ComparisonRow>& rows, const char* figure,
                std::span<const pd::FactorLevelTarget> targets,
                const std::vector<sv::FactorLevelResult>& measured) {
  for (std::size_t i = 0; i < targets.size(); ++i) {
    rows.push_back({std::string(figure) + " " +
                        std::string(targets[i].label) + " (n=" +
                        std::to_string(measured[i].n) + ")",
                    targets[i].core_correct, measured[i].core.correct,
                    level_tolerance(measured[i].n)});
  }
}

void chart(const char* title,
           const std::vector<sv::FactorLevelResult>& levels) {
  std::vector<rp::Bar> bars;
  for (const auto& level : levels) {
    bars.push_back({level.label + " (n=" + std::to_string(level.n) + ")",
                    level.core.correct});
  }
  rp::BarChartOptions opts;
  opts.reference = 7.5;
  opts.show_reference = true;
  std::fputs(rp::section(title, rp::bar_chart(bars, opts)).c_str(), stdout);
}

}  // namespace

int main() {
  constexpr std::size_t kN = 199;
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  const auto by_size =
      fpq::bench::stream_main_cohort(kN, [&] {
        return sv::FactorLevelAccumulator::by_contributed_size(core_key,
                                                               opt_key);
      }).finish();
  const auto by_area =
      fpq::bench::stream_main_cohort(kN, [&] {
        return sv::FactorLevelAccumulator::by_area_group(core_key, opt_key);
      }).finish();
  const auto by_role =
      fpq::bench::stream_main_cohort(kN, [&] {
        return sv::FactorLevelAccumulator::by_role(core_key, opt_key);
      }).finish();
  const auto by_training =
      fpq::bench::stream_main_cohort(kN, [&] {
        return sv::FactorLevelAccumulator::by_formal_training(core_key,
                                                              opt_key);
      }).finish();

  chart("Figure 16: core score by contributed codebase size", by_size);
  chart("Figure 17: core score by area", by_area);
  chart("Figure 18: core score by software development role", by_role);
  chart("Figure 19: core score by formal FP training", by_training);

  std::vector<rp::ComparisonRow> rows;
  add_factor(rows, "Fig16", pd::contributed_size_effect(), by_size);
  add_factor(rows, "Fig17", pd::area_effect(), by_area);
  add_factor(rows, "Fig18", pd::role_effect(), by_role);
  add_factor(rows, "Fig19", pd::training_effect(), by_training);

  // Prose anchors as explicit comparisons.
  rows.push_back({"Fig16 spread (paper: 4/15)", 4.0,
                  sv::core_correct_spread(by_size), 2.0});
  rows.push_back({"Fig17 spread (paper: 3.5/15)", 3.5,
                  sv::core_correct_spread(by_area), 2.2});
  rows.push_back({"Fig19 spread (paper: ~2/15)", 2.0,
                  sv::core_correct_spread(by_training), 1.5});

  return fpq::bench::finish(
      "Figures 16-19: factor effects on core score (mean correct /15)",
      rows);
}
