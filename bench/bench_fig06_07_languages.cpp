// Figures 6-7: floating point and arbitrary-precision language experience
// (multi-select membership tables), streamed through the survey
// accumulators — no record vector.

#include <cmath>

#include "bench_common.hpp"
#include "paperdata/paperdata.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;

namespace {
constexpr std::size_t kN = 199;
}  // namespace

int main() {
  std::vector<rp::ComparisonRow> rows;

  const auto fp = fpq::bench::stream_main_cohort(kN, [] {
                    return sv::MultiSelectAccumulator(
                        pd::fp_languages(),
                        [](const sv::SurveyRecord& r)
                            -> const std::vector<std::size_t>& {
                          return r.background.fp_languages;
                        });
                  }).finish();
  for (std::size_t i = 0; i < pd::fp_languages().size(); ++i) {
    const auto& paper = pd::fp_languages()[i];
    const double p = static_cast<double>(paper.n) / 199.0;
    rows.push_back({"Fig6 " + std::string(paper.label),
                    static_cast<double>(paper.n),
                    static_cast<double>(fp[i].n),
                    2.5 * std::sqrt(199.0 * p * (1.0 - p)) + 1.0});
  }

  const auto arb = fpq::bench::stream_main_cohort(kN, [] {
                     return sv::MultiSelectAccumulator(
                         pd::arb_prec_languages(),
                         [](const sv::SurveyRecord& r)
                             -> const std::vector<std::size_t>& {
                           return r.background.arb_prec_languages;
                         });
                   }).finish();
  for (std::size_t i = 0; i < pd::arb_prec_languages().size(); ++i) {
    const auto& paper = pd::arb_prec_languages()[i];
    const double p = static_cast<double>(paper.n) / 199.0;
    rows.push_back({"Fig7 " + std::string(paper.label),
                    static_cast<double>(paper.n),
                    static_cast<double>(arb[i].n),
                    2.5 * std::sqrt(199.0 * p * (1.0 - p)) + 1.0});
  }

  return fpq::bench::finish(
      "Figures 6-7: language experience (counts, multi-select, n=199)",
      rows, 0);
}
