// Figures 8-11: codebase size and floating point extent tables, streamed
// through the survey accumulators — no record vector.

#include <cmath>

#include "bench_common.hpp"
#include "paperdata/paperdata.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;

namespace {

constexpr std::size_t kN = 199;

double cell_tolerance(double expected_n) {
  const double p = expected_n / 199.0;
  return 2.5 * std::sqrt(199.0 * p * (1.0 - p)) + 1.0;
}

void add_table(std::vector<rp::ComparisonRow>& rows, const char* figure,
               std::span<const pd::CategoryCount> paper,
               const std::vector<sv::TableRow>& measured) {
  for (std::size_t i = 0; i < paper.size(); ++i) {
    rows.push_back({std::string(figure) + ": " + std::string(paper[i].label),
                    static_cast<double>(paper[i].n),
                    static_cast<double>(measured[i].n),
                    cell_tolerance(static_cast<double>(paper[i].n))});
  }
}

std::vector<sv::TableRow> stream_frequency(
    std::span<const pd::CategoryCount> table, sv::FieldSelector selector) {
  return fpq::bench::stream_main_cohort(kN, [&] {
           return sv::FrequencyAccumulator(table, selector);
         })
      .finish();
}

}  // namespace

int main() {
  std::vector<rp::ComparisonRow> rows;

  add_table(rows, "Fig8 contributed size", pd::contributed_codebase_sizes(),
            stream_frequency(pd::contributed_codebase_sizes(),
                             [](const sv::SurveyRecord& r) {
                               return r.background.contributed_size;
                             }));
  add_table(rows, "Fig9 contributed FP extent", pd::contributed_fp_extent(),
            stream_frequency(pd::contributed_fp_extent(),
                             [](const sv::SurveyRecord& r) {
                               return r.background.contributed_extent;
                             }));
  add_table(rows, "Fig10 involved size", pd::involved_codebase_sizes(),
            stream_frequency(pd::involved_codebase_sizes(),
                             [](const sv::SurveyRecord& r) {
                               return r.background.involved_size;
                             }));
  add_table(rows, "Fig11 involved FP extent", pd::involved_fp_extent(),
            stream_frequency(pd::involved_fp_extent(),
                             [](const sv::SurveyRecord& r) {
                               return r.background.involved_extent;
                             }));

  return fpq::bench::finish(
      "Figures 8-11: codebase experience (counts, n=199)", rows, 0);
}
