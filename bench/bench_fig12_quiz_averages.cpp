// Figure 12: the paper's headline table — average (expected) performance
// on the core and optimization quizzes vs chance.

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "stats/bootstrap.hpp"
#include "survey/analysis.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

int main() {
  const auto& cohort = fpq::bench::main_cohort();
  const auto core = sv::average_core(cohort, quiz::standard_core_truths());
  const auto opt = sv::average_opt_tf(cohort, quiz::standard_opt_truths());
  const auto paper_core = pd::core_quiz_averages();
  const auto paper_opt = pd::opt_quiz_averages();

  std::vector<rp::ComparisonRow> rows{
      {"core #correct (chance 7.5)", paper_core.correct, core.correct, 0.5},
      {"core #incorrect", paper_core.incorrect, core.incorrect, 0.5},
      {"core #don't-know", paper_core.dont_know, core.dont_know, 0.5},
      {"core #unanswered", paper_core.unanswered, core.unanswered, 0.25},
      {"opt #correct (chance 1.5)", paper_opt.correct, opt.correct, 0.2},
      {"opt #incorrect", paper_opt.incorrect, opt.incorrect, 0.2},
      {"opt #don't-know", paper_opt.dont_know, opt.dont_know, 0.3},
      {"opt #unanswered", paper_opt.unanswered, opt.unanswered, 0.15},
  };

  const int rc = fpq::bench::finish(
      "Figure 12: average quiz performance (n=199)", rows);
  std::printf(
      "shape check: core correct (%.2f) is slightly above chance (7.5) and "
      "well below mastery; opt don't-know (%.2f) dominates.\n",
      core.correct, opt.dont_know);

  // Resampling uncertainty: a 95% bootstrap CI for the mean core score.
  // The paper's 8.5 must fall inside it for the reproduction to be more
  // than a point coincidence.
  std::vector<double> scores;
  const auto key = quiz::standard_core_truths();
  for (const auto& r : cohort) {
    scores.push_back(
        static_cast<double>(quiz::score_core(r.core, key).correct));
  }
  fpq::stats::Xoshiro256pp g(0xB007);
  const auto ci = fpq::stats::bootstrap_mean(scores, 4000, 0.95, g);
  const bool contains_paper = ci.lower <= 8.5 && 8.5 <= ci.upper;
  std::printf(
      "bootstrap: mean core score %.2f, 95%% CI [%.2f, %.2f] — %s the "
      "paper's 8.5\n",
      ci.estimate, ci.lower, ci.upper,
      contains_paper ? "contains" : "DOES NOT contain");
  return rc + (contains_paper ? 0 : 1);
}
