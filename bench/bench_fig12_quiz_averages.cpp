// Figure 12: the paper's headline table — average (expected) performance
// on the core and optimization quizzes vs chance. The averages stream
// through AverageTallyAccumulator (no record vector); the bootstrap CI
// gate keeps the classic resample-the-scores path at n=199.

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "stats/bootstrap.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

int main() {
  constexpr std::size_t kN = 199;
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();
  const auto core = fpq::bench::stream_main_cohort(kN, [&] {
                      return sv::AverageTallyAccumulator::core(core_key);
                    }).finish();
  const auto opt = fpq::bench::stream_main_cohort(kN, [&] {
                     return sv::AverageTallyAccumulator::opt_tf(opt_key);
                   }).finish();
  const auto paper_core = pd::core_quiz_averages();
  const auto paper_opt = pd::opt_quiz_averages();

  std::vector<rp::ComparisonRow> rows{
      {"core #correct (chance 7.5)", paper_core.correct, core.correct, 0.5},
      {"core #incorrect", paper_core.incorrect, core.incorrect, 0.5},
      {"core #don't-know", paper_core.dont_know, core.dont_know, 0.5},
      {"core #unanswered", paper_core.unanswered, core.unanswered, 0.25},
      {"opt #correct (chance 1.5)", paper_opt.correct, opt.correct, 0.2},
      {"opt #incorrect", paper_opt.incorrect, opt.incorrect, 0.2},
      {"opt #don't-know", paper_opt.dont_know, opt.dont_know, 0.3},
      {"opt #unanswered", paper_opt.unanswered, opt.unanswered, 0.15},
  };

  const int rc = fpq::bench::finish(
      "Figure 12: average quiz performance (n=199)", rows);
  std::printf(
      "shape check: core correct (%.2f) is slightly above chance (7.5) and "
      "well below mastery; opt don't-know (%.2f) dominates.\n",
      core.correct, opt.dont_know);

  // Resampling uncertainty: a 95% bootstrap CI for the mean core score.
  // The paper's 8.5 must fall inside it for the reproduction to be more
  // than a point coincidence. Scores come straight off the generator.
  std::vector<double> scores;
  scores.reserve(kN);
  fpq::respondent::CohortGenerator gen(fpq::bench::kCohortSeed);
  for (std::size_t i = 0; i < kN; ++i) {
    scores.push_back(
        static_cast<double>(quiz::score_core(gen.next().core, core_key)
                                .correct));
  }
  fpq::stats::Xoshiro256pp g(0xB007);
  const auto ci = fpq::stats::bootstrap_mean(scores, 4000, 0.95, g);
  const bool contains_paper = ci.lower <= 8.5 && 8.5 <= ci.upper;
  std::printf(
      "bootstrap: mean core score %.2f, 95%% CI [%.2f, %.2f] — %s the "
      "paper's 8.5\n",
      ci.estimate, ci.lower, ci.upper,
      contains_paper ? "contains" : "DOES NOT contain");

  // The memory-bounded counterpart: a cluster bootstrap over streamed
  // chunk statistics (what the 10M-scale service uses — see
  // bench_survey_scale). Informational at n=199; its point estimate must
  // match the streamed mean exactly.
  auto chunk_stats = fpq::bench::stream_main_cohort(kN, [&] {
                       class ScoreChunks {
                        public:
                         explicit ScoreChunks(const sv::CoreKey& key)
                             : key_(key) {}
                         void add(const sv::SurveyRecord& r) {
                           acc_.add(static_cast<double>(
                               quiz::score_core(r.core, key_).correct));
                         }
                         void merge(ScoreChunks&& other) {
                           acc_.merge(std::move(other.acc_));
                         }
                         std::vector<fpq::stats::ChunkMeanStat> finish()
                             const {
                           return acc_.finish();
                         }

                        private:
                         sv::CoreKey key_;
                         fpq::stats::ChunkStatAccumulator acc_;
                       };
                       return ScoreChunks(core_key);
                     }).finish();
  const auto stream_ci = fpq::stats::bootstrap_mean_from_chunks(
      chunk_stats, 4000, 0.95, 0xB007, fpq::bench::stream_pool());
  std::printf(
      "streaming chunk bootstrap (%zu chunks): mean %.2f, 95%% CI "
      "[%.2f, %.2f]\n",
      chunk_stats.size(), stream_ci.estimate, stream_ci.lower,
      stream_ci.upper);
  const bool means_agree = stream_ci.estimate == ci.estimate;
  if (!means_agree) {
    std::printf("ERROR: streamed mean differs from resampled mean\n");
  }
  return rc + (contains_paper ? 0 : 1) + (means_agree ? 0 : 1);
}
