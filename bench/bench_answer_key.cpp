// The answer key (implicit in §II-B/§II-C and Figures 14-15): derived by
// execution on every backend and checked for agreement with the standard
// key. This is the reproduction's ground-truth audit — if any backend
// disagreed, every other figure would be built on sand.

#include <cstdio>

#include "core/ground_truth.hpp"
#include "report/table.hpp"

namespace quiz = fpq::quiz;
namespace rp = fpq::report;

int main() {
  auto backends = quiz::make_all_backends();

  rp::Table table({"backend", "IEEE?", "matches standard key",
                   "first divergence"});
  bool all_ok = true;
  for (auto& backend : backends) {
    const auto key = quiz::derive_answer_key(*backend);
    std::string mismatch;
    const bool ok = quiz::key_matches_standard(key, &mismatch);
    all_ok = all_ok && ok;
    table.add_row({backend->name(),
                   backend->ieee_compliant() ? "yes" : "no (FTZ/DAZ)",
                   ok ? "yes" : "NO", ok ? "-" : mismatch});
  }
  std::fputs(rp::section("Answer key audit across arithmetic backends",
                         table.render())
                 .c_str(),
             stdout);

  // Show the full key with evidence from the reference backend.
  auto reference = quiz::make_soft_backend_64();
  std::fputs(
      quiz::render_answer_key(quiz::derive_answer_key(*reference)).c_str(),
      stdout);

  return all_ok ? 0 : 1;
}
