// Figure 14: per-question breakdown of the core quiz — %correct,
// %incorrect, %don't-know, %unanswered for each of the 15 questions, plus
// the paper's two shape claims: 6 questions at chance, 2 majority-wrong.

#include <cmath>

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

int main() {
  const auto key = quiz::standard_core_truths();
  const auto measured = fpq::bench::stream_main_cohort(199, [&] {
                          return sv::BreakdownAccumulator::core(key);
                        }).finish();
  const auto paper = pd::core_breakdown();

  // Binomial tolerance at n=199 for a percentage: ~2.5 sigma ~ 9 points.
  constexpr double kTol = 9.0;
  std::vector<rp::ComparisonRow> rows;
  for (std::size_t q = 0; q < paper.size(); ++q) {
    rows.push_back({std::string(paper[q].label) + " %correct",
                    paper[q].pct_correct, measured[q].pct_correct, kTol});
    rows.push_back({std::string(paper[q].label) + " %don't-know",
                    paper[q].pct_dont_know, measured[q].pct_dont_know,
                    kTol});
  }
  const int rc =
      fpq::bench::finish("Figure 14: core quiz by question (n=199)", rows, 1);

  // Shape claims.
  std::size_t majority_wrong = 0;
  std::size_t near_chance = 0;
  for (std::size_t q = 0; q < measured.size(); ++q) {
    if (measured[q].pct_incorrect > 50.0) ++majority_wrong;
    if (std::fabs(measured[q].pct_correct - 50.0) < 10.0) ++near_chance;
  }
  std::printf(
      "shape check: %zu questions majority-wrong (paper: 2 — Identity, "
      "Divide by Zero); %zu questions within 10 points of chance "
      "(paper flags 6 at chance).\n",
      majority_wrong, near_chance);
  return rc;
}
