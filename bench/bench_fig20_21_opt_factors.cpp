// Figures 20-21: optimization-quiz score conditioned on area and role —
// the two factors the paper found to matter (a little) for the opt quiz.

#include <cmath>

#include "bench_common.hpp"
#include "core/ground_truth.hpp"
#include "paperdata/paperdata.hpp"
#include "report/barchart.hpp"
#include "report/table.hpp"
#include "survey/accumulators.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace rp = fpq::report;
namespace quiz = fpq::quiz;

namespace {

double level_tolerance(std::size_t n) {
  if (n == 0) return 3.0;
  // Opt scores have sd ~0.8 within a level.
  return 2.5 * 0.8 / std::sqrt(static_cast<double>(n)) + 0.2;
}

void chart(const char* title,
           const std::vector<sv::FactorLevelResult>& levels) {
  std::vector<rp::Bar> bars;
  for (const auto& level : levels) {
    bars.push_back({level.label + " (n=" + std::to_string(level.n) + ")",
                    level.opt.correct});
  }
  rp::BarChartOptions opts;
  opts.max_width = 40;
  opts.decimals = 2;
  std::fputs(rp::section(title, rp::bar_chart(bars, opts)).c_str(), stdout);
}

}  // namespace

int main() {
  constexpr std::size_t kN = 199;
  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  const auto by_area =
      fpq::bench::stream_main_cohort(kN, [&] {
        return sv::FactorLevelAccumulator::by_area_group(core_key, opt_key);
      }).finish();
  const auto by_role =
      fpq::bench::stream_main_cohort(kN, [&] {
        return sv::FactorLevelAccumulator::by_role(core_key, opt_key);
      }).finish();

  chart("Figure 20: optimization score by area (mean correct /3)", by_area);
  chart("Figure 21: optimization score by role (mean correct /3)", by_role);

  std::vector<rp::ComparisonRow> rows;
  const auto area_targets = pd::area_effect();
  for (std::size_t i = 0; i < area_targets.size(); ++i) {
    rows.push_back({"Fig20 " + std::string(area_targets[i].label) + " (n=" +
                        std::to_string(by_area[i].n) + ")",
                    area_targets[i].opt_correct, by_area[i].opt.correct,
                    level_tolerance(by_area[i].n)});
  }
  const auto role_targets = pd::role_effect();
  for (std::size_t i = 0; i < role_targets.size(); ++i) {
    rows.push_back({"Fig21 " + std::string(role_targets[i].label) + " (n=" +
                        std::to_string(by_role[i].n) + ")",
                    role_targets[i].opt_correct, by_role[i].opt.correct,
                    level_tolerance(by_role[i].n)});
  }

  const int rc = fpq::bench::finish(
      "Figures 20-21: factor effects on optimization score", rows);
  std::printf(
      "shape check: main-role software engineers best on the opt quiz "
      "(%.2f/3 vs %.2f/3 for dev-in-support), mirroring the paper's "
      "+0.7-capped role effect.\n",
      by_role[0].opt.correct, by_role[2].opt.correct);
  return rc;
}
