// survey_simulation — the full study, end to end.
//
// Streams the synthetic main cohort (n = 199) through every figure
// accumulator in ONE pass — no record vector — then streams the student
// cohort (n = 52) for Figure 22(b), and prints the headline results next
// to the paper's published numbers. Optionally exports the raw records as
// CSV (the only mode that materializes the cohort).
//
//   ./survey_simulation [seed] [--csv out.csv] [--monitor]
//
// --monitor runs the whole fold under an always-on flow monitor
// (fpq::mon) and appends the flow report: which FP conditions the
// simulation itself raised, with platform capability spelled out.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "core/ground_truth.hpp"
#include "fpmon/flow.hpp"
#include "paperdata/paperdata.hpp"
#include "report/barchart.hpp"
#include "report/table.hpp"
#include "respondent/population.hpp"
#include "survey/accumulators.hpp"
#include "survey/csv_io.hpp"

namespace sv = fpq::survey;
namespace pd = fpq::paperdata;
namespace quiz = fpq::quiz;
namespace rp = fpq::report;

int main(int argc, char** argv) {
  std::uint64_t seed = 20180521;  // IPDPS 2018
  std::string csv_path;
  bool monitor = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
      csv_path = argv[++i];
    } else if (std::strcmp(argv[i], "--monitor") == 0) {
      monitor = true;
    } else {
      seed = std::strtoull(argv[i], nullptr, 10);
    }
  }

  std::printf("streaming cohorts (seed %llu): 199 developers, 52 students\n\n",
              static_cast<unsigned long long>(seed));

  if (!csv_path.empty()) {
    const auto cohort = fpq::respondent::generate_main_cohort(seed);
    std::ofstream out(csv_path);
    sv::write_csv(out, cohort);
    std::printf("wrote %zu records to %s\n\n", cohort.size(),
                csv_path.c_str());
  }

  const auto core_key = quiz::standard_core_truths();
  const auto opt_key = quiz::standard_opt_truths();

  // One pass, every figure: the accumulators make the whole analysis a
  // fold over the record stream.
  auto core_avg_acc = sv::AverageTallyAccumulator::core(core_key);
  auto opt_avg_acc = sv::AverageTallyAccumulator::opt_tf(opt_key);
  auto hist_acc = sv::ScoreHistogramAccumulator(core_key);
  auto breakdown_acc = sv::BreakdownAccumulator::core(core_key);
  auto by_size_acc =
      sv::FactorLevelAccumulator::by_contributed_size(core_key, opt_key);
  sv::SuspicionAccumulator main_susp_acc;
  sv::SuspicionAccumulator student_susp_acc;
  fpq::mon::FlowReport flow;
  const auto fold = [&] {
    fpq::respondent::CohortGenerator gen(seed);
    for (std::size_t i = 0; i < 199; ++i) {
      const sv::SurveyRecord r = gen.next();
      core_avg_acc.add(r);
      opt_avg_acc.add(r);
      hist_acc.add(r);
      breakdown_acc.add(r);
      by_size_acc.add(r);
      main_susp_acc.add(r);
    }
    fpq::respondent::StudentCohortGenerator sgen(seed);
    for (std::size_t i = 0; i < 52; ++i) student_susp_acc.add(sgen.next());
  };
  if (monitor) {
    // The §II-D hypothetical made real: wrap the simulation with the
    // code that determines whether any exceptions occurred.
    fpq::mon::monitor_flow(fold, flow);
  } else {
    fold();
  }

  // Figure 12.
  const auto core_avg = core_avg_acc.finish();
  const auto opt_avg = opt_avg_acc.finish();
  rp::Table fig12({"quiz", "correct", "incorrect", "don't know",
                   "unanswered", "chance"});
  fig12.add_row({"core (measured)", rp::Table::fmt(core_avg.correct, 1),
                 rp::Table::fmt(core_avg.incorrect, 1),
                 rp::Table::fmt(core_avg.dont_know, 1),
                 rp::Table::fmt(core_avg.unanswered, 1), "7.5"});
  const auto paper_core = pd::core_quiz_averages();
  fig12.add_row({"core (paper)", rp::Table::fmt(paper_core.correct, 1),
                 rp::Table::fmt(paper_core.incorrect, 1),
                 rp::Table::fmt(paper_core.dont_know, 1),
                 rp::Table::fmt(paper_core.unanswered, 1), "7.5"});
  fig12.add_row({"opt (measured)", rp::Table::fmt(opt_avg.correct, 1),
                 rp::Table::fmt(opt_avg.incorrect, 1),
                 rp::Table::fmt(opt_avg.dont_know, 1),
                 rp::Table::fmt(opt_avg.unanswered, 1), "1.5"});
  const auto paper_opt = pd::opt_quiz_averages();
  fig12.add_row({"opt (paper)", rp::Table::fmt(paper_opt.correct, 1),
                 rp::Table::fmt(paper_opt.incorrect, 1),
                 rp::Table::fmt(paper_opt.dont_know, 1),
                 rp::Table::fmt(paper_opt.unanswered, 1), "1.5"});
  std::fputs(
      rp::section("Figure 12: average quiz performance", fig12.render())
          .c_str(),
      stdout);

  // Figure 13.
  const auto hist = hist_acc.finish();
  std::fputs(rp::section("Figure 13: core score histogram (mean " +
                             rp::Table::fmt(hist.mean(), 2) + ", paper 8.5)",
                         rp::int_histogram_chart(hist))
                 .c_str(),
             stdout);

  // Figure 14 (condensed: correct% measured vs paper).
  const auto breakdown = breakdown_acc.finish();
  rp::Table fig14({"question", "correct% (sim)", "correct% (paper)",
                   "don't know% (sim)"});
  const auto paper_rows = pd::core_breakdown();
  for (std::size_t q = 0; q < breakdown.size(); ++q) {
    fig14.add_row({breakdown[q].label,
                   rp::Table::fmt(breakdown[q].pct_correct, 1),
                   rp::Table::fmt(paper_rows[q].pct_correct, 1),
                   rp::Table::fmt(breakdown[q].pct_dont_know, 1)});
  }
  std::fputs(rp::section("Figure 14: core quiz by question", fig14.render())
                 .c_str(),
             stdout);

  // Figure 16: factor effect of codebase size.
  const auto by_size = by_size_acc.finish();
  std::vector<rp::Bar> bars;
  for (const auto& level : by_size) {
    bars.push_back({std::string(level.label) + " (n=" +
                        std::to_string(level.n) + ")",
                    level.core.correct});
  }
  rp::BarChartOptions opts;
  opts.reference = 7.5;
  opts.show_reference = true;
  std::fputs(rp::section("Figure 16: core score by contributed codebase size",
                         rp::bar_chart(bars, opts))
                 .c_str(),
             stdout);

  // Figure 22.
  const auto main_dists = main_susp_acc.finish();
  const auto student_dists = student_susp_acc.finish();
  const std::vector<std::string> levels{"1", "2", "3", "4", "5"};
  std::vector<rp::GroupedSeries> series;
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    rp::GroupedSeries main_series{
        quiz::suspicion_item_label(static_cast<quiz::SuspicionItemId>(c)) +
            " (main)",
        {}};
    rp::GroupedSeries student_series{
        quiz::suspicion_item_label(static_cast<quiz::SuspicionItemId>(c)) +
            " (students)",
        {}};
    for (int level = 1; level <= 5; ++level) {
      main_series.values.push_back(main_dists[c].percent(level));
      student_series.values.push_back(student_dists[c].percent(level));
    }
    series.push_back(std::move(main_series));
    series.push_back(std::move(student_series));
  }
  std::fputs(
      rp::section("Figure 22: suspicion level distribution (percent)",
                  rp::grouped_series_chart(levels, series))
          .c_str(),
      stdout);

  const auto summary = sv::summarize_suspicion(main_dists);
  std::printf(
      "headline checks: mean core score %.1f vs chance 7.5 (paper: 8.5); "
      "%.0f%% report below-max suspicion for NaN results (paper: ~33%%)\n",
      core_avg.correct, 100.0 * summary.invalid_below_max);
  if (monitor) {
    std::printf("\n");
    std::fputs(
        rp::section("Flow monitor report (--monitor)",
                    fpq::mon::render_flow_report(flow))
            .c_str(),
        stdout);
  }
  return 0;
}
