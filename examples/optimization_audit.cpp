// optimization_audit — what is your build doing to your floating point?
//
// The optimization quiz (§II-C) found that >2/3 of developers do not know
// which optimizations break standard compliance. This tool answers the
// question for the binary it is compiled into, and demonstrates each
// effect with the emulated pipeline so the output is educational even on
// a strictly-compiled build:
//
//   * compile-time facts (fast-math? contraction? excess precision?),
//   * live hardware flush-mode probe (MXCSR FTZ/DAZ),
//   * divergence demos: contraction, reassociation, flush-to-zero,
//   * the audited flag table (the optimization quiz answer key as data).

#include <cstdio>

#include "optprobe/emulated_pipeline.hpp"
#include "optprobe/flag_audit.hpp"
#include "optprobe/mxcsr.hpp"
#include "optprobe/probes.hpp"
#include "softfloat/value.hpp"

namespace opt = fpq::opt;
namespace sf = fpq::softfloat;

namespace {

void show_divergence(const char* title, const opt::Expr& expr,
                     const opt::PipelineConfig& config) {
  const auto d = opt::diverge(expr, config);
  std::printf("%s\n  expression: %s\n", title, expr.to_string().c_str());
  std::printf("  strict IEEE: %s\n", sf::describe(d.baseline.value).c_str());
  std::printf("  optimized:   %s\n",
              sf::describe(d.optimized.value).c_str());
  std::printf("  -> %s\n\n",
              d.value_differs ? "RESULTS DIFFER" : "results identical");
}

}  // namespace

int main() {
  std::puts("== this binary's floating point semantics =================");
  std::fputs(opt::describe(opt::probe_semantics_here()).c_str(), stdout);
  std::puts("");

  std::puts("== live hardware flush-mode probe ==========================");
  std::fputs(opt::describe(opt::probe_flush_modes()).c_str(), stdout);
  std::puts("");

  std::puts("== divergence demonstrations (emulated pipeline) ===========");
  show_divergence("[-O3-style contraction to fused multiply-add]",
                  opt::demo_contraction_sensitive(),
                  opt::PipelineConfig::o3_like());
  show_divergence("[-ffast-math-style reassociation]",
                  opt::demo_reassociation_sensitive(),
                  opt::PipelineConfig::fast_math_like());
  opt::PipelineConfig ftz;
  ftz.flush_to_zero = true;
  show_divergence("[FTZ hardware mode]", opt::demo_flush_sensitive(), ftz);

  std::puts("== the flag audit (optimization quiz answer key) ===========");
  std::fputs(opt::render_audit().c_str(), stdout);
  std::printf(
      "\nhighest standard-compliant optimization level: %s\n"
      "(in the paper, fewer than 10%% of participants knew this)\n",
      std::string(opt::highest_compliant_opt_level()).c_str());
  return 0;
}
