// quickstart — take the floating point quiz against your own machine.
//
// Derives the answer key by EXECUTING every question's demonstration on
// the host FPU (and cross-checks it against the softfloat engine), prints
// the quiz the way a participant would see it, then grades two synthetic
// participants: one guessing at chance and one answering from the key.
//
//   ./quickstart            # print quiz + answer key with evidence
//   ./quickstart --quiz     # print only the participant-facing quiz

#include <cstdio>
#include <cstring>
#include <string>

#include "core/session.hpp"
#include "stats/prng.hpp"

namespace quiz = fpq::quiz;

namespace {

quiz::CoreSheet guessing_sheet(fpq::stats::Xoshiro256pp& g) {
  quiz::CoreSheet sheet;
  for (auto& answer : sheet.answers) {
    answer = fpq::stats::bernoulli(g, 0.5) ? quiz::Answer::kTrue
                                           : quiz::Answer::kFalse;
  }
  return sheet;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quiz_only = argc > 1 && std::strcmp(argv[1], "--quiz") == 0;

  // Key from the host hardware...
  auto hw = quiz::make_native_double_backend();
  const quiz::QuizSession session(*hw);

  if (quiz_only) {
    std::fputs(session.render_quiz_text().c_str(), stdout);
    return 0;
  }

  std::puts("== the quiz, as a participant sees it =====================");
  std::fputs(session.render_quiz_text().c_str(), stdout);

  // ... cross-checked against the softfloat engine.
  auto soft = quiz::make_soft_backend_64();
  const quiz::QuizSession soft_session(*soft);
  std::string mismatch;
  const bool hw_standard = quiz::key_matches_standard(session.key(), &mismatch);
  const bool soft_standard =
      quiz::key_matches_standard(soft_session.key(), &mismatch);
  std::printf(
      "\nanswer keys: hardware %s, softfloat %s the IEEE standard key\n\n",
      hw_standard ? "matches" : "DIVERGES FROM",
      soft_standard ? "matches" : "DIVERGES FROM");

  std::puts("== the answer key, with executed evidence =================");
  std::fputs(quiz::render_answer_key(session.key()).c_str(), stdout);

  std::puts("== grading: a participant guessing at chance ==============");
  fpq::stats::Xoshiro256pp g(2018);
  const auto chance_report =
      session.grade(guessing_sheet(g), quiz::OptSheet{});
  std::printf("  core score %zu/15 (chance expectation 7.5)\n",
              chance_report.core_score);
  std::printf(
      "  the paper's 199 developers averaged 8.5/15 — barely better\n\n");

  std::puts("== grading: answering straight from the key ===============");
  const auto expert_report = session.grade(session.perfect_core_sheet(),
                                           session.perfect_opt_sheet());
  std::printf("  core score %zu/15, optimization %zu/3 + level correct\n",
              expert_report.core_score, expert_report.opt_tf.correct);
  return hw_standard && soft_standard ? 0 : 1;
}
