// workload_audit — the suspicion quiz run against real kernels.
//
// Runs the workload catalogue (healthy/broken numerical kernels) under the
// exception monitor and prints, for each, the observed conditions, the
// advised suspicion level, and whether the observation matches the
// workload's contract — the §II-D hypothetical as a working tool.

#include <cstdio>

#include "fpmon/report.hpp"
#include "workloads/workloads.hpp"

namespace wl = fpq::workloads;
namespace mon = fpq::mon;

int main() {
  std::puts("suspicion audit across the workload catalogue\n");
  bool all_ok = true;
  for (const auto& w : wl::catalogue()) {
    const auto observed = wl::observe(w);
    const auto verdict = mon::evaluate(observed);
    const bool ok = wl::contract_holds(w, observed);
    all_ok = all_ok && ok;
    std::printf("%-20s %s\n", w.name.c_str(), w.description.c_str());
    std::printf("  observed:  %s\n", observed.to_string().c_str());
    std::printf("  suspicion: %d/5 %s\n", verdict.suspicion_level,
                verdict.clean ? "(clean)" : "");
    std::printf("  contract:  %s\n\n", ok ? "holds" : "VIOLATED");
  }
  std::puts(all_ok
                ? "all contracts hold: the monitor separates every broken "
                  "kernel from its healthy sibling."
                : "CONTRACT VIOLATIONS — see above.");
  return all_ok ? 0 : 1;
}
