// lorenz_suspicion — the paper's motivating scenario, live.
//
// §I of the paper recalls that Lorenz's discovery of chaos was triggered
// by an innocuous rounding difference, and §II-D's suspicion quiz imagines
// wrapping a scientific simulation with code that reports which IEEE
// exceptional conditions occurred. This example does exactly that with
// fpmon's ScopedMonitor around a Lorenz-attractor integrator:
//
//   * a healthy run   — only Precision (rounding) occurs: fine;
//   * a divergent run — a too-large time step blows the integrator up
//     through Overflow into Invalid (inf - inf), demonstrating how the
//     monitor converts silent exceptional values into a loud report;
//   * a rounding-sensitivity run — the same trajectory integrated with
//     contracted vs uncontracted arithmetic (emulated pipeline) drifts
//     apart, Lorenz-style.

#include <cmath>
#include <cstdio>

#include "fpmon/monitor.hpp"
#include "fpmon/report.hpp"
#include "interval/interval.hpp"
#include "optprobe/emulated_pipeline.hpp"

namespace mon = fpq::mon;
namespace opt = fpq::opt;

namespace {

struct State {
  double x = 1.0, y = 1.0, z = 1.0;
};

// Classic Lorenz parameters.
constexpr double kSigma = 10.0;
constexpr double kRho = 28.0;
constexpr double kBeta = 8.0 / 3.0;

State step(State s, double dt) {
  const double dx = kSigma * (s.y - s.x);
  const double dy = s.x * (kRho - s.z) - s.y;
  const double dz = s.x * s.y - kBeta * s.z;
  return {s.x + dt * dx, s.y + dt * dy, s.z + dt * dz};
}

mon::ConditionSet run_simulation(double dt, int steps, State& out) {
  mon::ScopedMonitor monitor;
  State s;
  for (int i = 0; i < steps; ++i) s = step(s, dt);
  out = s;
  return monitor.stop();
}

}  // namespace

int main() {
  std::puts("Lorenz attractor under the floating point exception monitor");
  std::puts("(the suspicion quiz of the paper, §II-D, as a real tool)\n");

  {
    State s;
    const auto seen = run_simulation(0.005, 20000, s);
    std::printf("healthy run (dt = 0.005, 20000 steps):\n");
    std::printf("  final state (%.4f, %.4f, %.4f)\n", s.x, s.y, s.z);
    std::fputs(mon::render_report(seen).c_str(), stdout);
    std::puts("");
  }

  {
    State s;
    const auto seen = run_simulation(1.0, 200, s);
    std::printf("divergent run (dt = 1.0 — far too large):\n");
    std::printf("  final state (%g, %g, %g)\n", s.x, s.y, s.z);
    std::fputs(mon::render_report(seen).c_str(), stdout);
    const auto verdict = mon::evaluate(seen);
    std::printf(
        "  without the monitor, the NaNs above would be the ONLY clue —\n"
        "  and %d%% of the paper's participants believed a signal would\n"
        "  have fired (Exception Signal question).\n\n",
        30);
  }

  {
    // Rounding sensitivity: one Euler step of dy evaluated with and
    // without fused contraction, then iterated — tiny last-bit
    // differences amplify, the Lorenz story in miniature.
    std::puts("rounding sensitivity (contracted vs strict arithmetic):");
    double strict_y = 1.0, contracted_y = 1.0;
    double x = 1.0, z = 1.0;
    int first_divergence = -1;
    for (int i = 0; i < 60; ++i) {
      // dy = x*(rho - z) - y, then y += dt*dy with dt = 0.9 (chaotic).
      const auto make_expr = [&](double y) {
        using E = opt::Expr;
        return E::add(
            E::constant(y),
            E::mul(E::constant(0.9),
                   E::sub(E::mul(E::constant(x),
                                 E::sub(E::constant(kRho), E::constant(z))),
                          E::constant(y))));
      };
      const auto strict =
          opt::evaluate(make_expr(strict_y), opt::PipelineConfig::ieee_strict());
      const auto contracted =
          opt::evaluate(make_expr(contracted_y), opt::PipelineConfig::o3_like());
      strict_y = fpq::softfloat::to_native(strict.value);
      contracted_y = fpq::softfloat::to_native(contracted.value);
      if (first_divergence < 0 && strict_y != contracted_y) {
        first_divergence = i;
      }
      // Keep the orbit bounded, chaotic-map style.
      x = std::fmod(x * 1.1, 3.0) + 0.1;
      z = std::fmod(z * 1.3, 5.0) + 0.1;
    }
    if (first_divergence >= 0) {
      std::printf(
          "  trajectories first differ at step %d; after 60 steps:\n"
          "    strict      y = %.17g\n"
          "    contracted  y = %.17g\n",
          first_divergence, strict_y, contracted_y);
    } else {
      std::puts("  no divergence in 60 steps (unexpected)");
    }
    std::puts(
        "  -> identical source, different compiler flags, different\n"
        "     trajectory: the MADD question is not academic.");
  }

  {
    // Rigorous version of Lorenz's observation: track a guaranteed
    // interval enclosure of one coordinate of the logistic map (the
    // textbook chaotic system). Each step the enclosure of the EXACT
    // result widens; chaos doubles disagreement per step until the
    // interval covers the whole attractor — the formal reason a single
    // rounding error rewrote Lorenz's weather.
    std::puts("\nchaos vs enclosures (logistic map x <- 3.9 x (1-x)):");
    namespace iv = fpq::interval;
    auto x = iv::Interval::point(0.2);
    const auto r = iv::Interval::point(3.9);
    const auto one = iv::Interval::point(1.0);
    int step = 0;
    int report_at[] = {1, 10, 20, 30, 40, 50, 60};
    std::size_t next = 0;
    for (step = 1; step <= 60; ++step) {
      x = iv::Interval::mul(iv::Interval::mul(r, x),
                            iv::Interval::sub(one, x));
      if (next < std::size(report_at) && step == report_at[next]) {
        std::printf("  step %2d: width %.3g\n", step, x.width());
        ++next;
      }
      if (x.width() > 1.0) break;
    }
    std::printf(
        "  after %d steps the enclosure is wider than the whole unit\n"
        "  interval: NO double-precision trajectory of a chaotic system is\n"
        "  pointwise trustworthy this far out — only statistics are.\n",
        step);
  }
  return 0;
}
