// precision_explorer — the same computation at three precisions.
//
// A softfloat playground showing how binary16 / binary32 / binary64 treat
// the classic gotchas: 0.1 accumulation drift, saturation thresholds,
// gradual underflow staircases, and rounding-mode spread. Useful for
// building the intuition the paper found missing.

#include <cstdio>

#include "softfloat/ops.hpp"
#include "softfloat/util.hpp"

namespace sf = fpq::softfloat;

namespace {

template <int kBits>
double accumulate_tenths(int count) {
  sf::Env env;
  auto tenth = sf::convert<kBits>(sf::from_native(0.1), env);
  auto acc = sf::Float<kBits>::zero();
  for (int i = 0; i < count; ++i) acc = sf::add(acc, tenth, env);
  sf::Env widen;
  return sf::to_native(sf::convert<64>(acc, widen));
}

template <int kBits>
double saturation_threshold() {
  // Smallest power of two x where x + 1 == x.
  sf::Env env;
  auto one = sf::convert<kBits>(sf::from_native(1.0), env);
  auto x = one;
  auto two = sf::add(one, one, env);
  for (int i = 0; i < 2000; ++i) {
    if (sf::equal(sf::add(x, one, env), x, env)) break;
    x = sf::mul(x, two, env);
  }
  sf::Env widen;
  return sf::to_native(sf::convert<64>(x, widen));
}

template <int kBits>
int underflow_staircase_steps() {
  // Repeated halving from 1.0 until zero: counts total representable
  // halving steps through the normal + subnormal range.
  sf::Env env;
  auto x = sf::convert<kBits>(sf::from_native(1.0), env);
  const auto half = sf::convert<kBits>(sf::from_native(0.5), env);
  int steps = 0;
  while (!x.is_zero() && steps < 3000) {
    x = sf::mul(x, half, env);
    ++steps;
  }
  return steps;
}

}  // namespace

int main() {
  std::puts("the same code, three precisions (softfloat engine)\n");

  std::puts("sum of 1000 * 0.1  (exact answer: 100)");
  std::printf("  binary16: %.6f\n", accumulate_tenths<16>(1000));
  std::printf("  binary32: %.6f\n", accumulate_tenths<32>(1000));
  std::printf("  binary64: %.17g\n", accumulate_tenths<64>(1000));
  std::puts("  -> 0.1 is not representable in ANY binary format; the\n"
            "     error just shrinks with precision. In binary16 the sum\n"
            "     even saturates against its own granularity.\n");

  std::puts("smallest power of two where x + 1.0 == x (Saturation Plus)");
  std::printf("  binary16: %g\n", saturation_threshold<16>());
  std::printf("  binary32: %g\n", saturation_threshold<32>());
  std::printf("  binary64: %g\n", saturation_threshold<64>());
  std::puts("");

  std::puts("halvings from 1.0 until the value underflows to zero");
  std::printf("  binary16: %d steps\n", underflow_staircase_steps<16>());
  std::printf("  binary32: %d steps\n", underflow_staircase_steps<32>());
  std::printf("  binary64: %d steps\n", underflow_staircase_steps<64>());
  std::puts("  -> the tail beyond the minimum normal exponent is gradual\n"
            "     underflow through the subnormals (Denormal Precision).\n");

  std::puts("1/3 under every rounding mode (binary64)");
  for (sf::Rounding mode :
       {sf::Rounding::kNearestEven, sf::Rounding::kTowardZero,
        sf::Rounding::kDown, sf::Rounding::kUp, sf::Rounding::kNearestAway}) {
    sf::Env env(mode);
    const auto r =
        sf::div(sf::from_native(1.0), sf::from_native(3.0), env);
    std::printf("  %-20s %.17g\n", sf::rounding_to_string(mode).c_str(),
                sf::to_native(r));
  }
  std::puts("");

  std::puts("FTZ vs IEEE on a tiny value (binary32):");
  {
    sf::Env ieee;
    sf::Env ftz;
    ftz.set_flush_to_zero(true);
    const auto tiny = sf::Float32::min_normal();
    const auto half = sf::from_native(0.5f);
    const auto ieee_r = sf::mul(tiny, half, ieee);
    const auto ftz_r = sf::mul(tiny, half, ftz);
    std::printf("  IEEE: %s\n", sf::describe(ieee_r).c_str());
    std::printf("  FTZ:  %s\n", sf::describe(ftz_r).c_str());
    std::printf("  FTZ flags: %s\n",
                sf::flags_to_string(ftz.flags()).c_str());
  }
  return 0;
}
