// fp_tutor — per-question floating point lessons with executed evidence.
//
// The paper's conclusion (§V): "the community has just not found the right
// training approach yet. A rigorous process to develop effective training
// for a broad range of developers is an action that the HPC community...
// could undertake." This tool is a starting artifact: for every quiz
// question it prints the code, the claim, the answer AS DEMONSTRATED on
// this machine, the witness values, and the rationale — training material
// that can never drift out of sync with reality, because it is executed.
//
//   ./fp_tutor           # all lessons
//   ./fp_tutor 5         # one lesson by number (1-15 core, 16-19 opt)

#include <cstdio>
#include <cstdlib>

#include "core/ground_truth.hpp"

namespace quiz = fpq::quiz;

namespace {

void core_lesson(std::size_t index, const quiz::AnswerKey& key) {
  const auto id = static_cast<quiz::CoreQuestionId>(index);
  const auto& q = quiz::core_question(id);
  const auto& demo = key.core[index];
  std::printf("Lesson %zu: %s\n", index + 1,
              quiz::core_question_label(id).c_str());
  std::printf("  code:       %s\n", std::string(q.snippet).c_str());
  std::printf("  claim:      %s\n", std::string(q.assertion).c_str());
  std::printf("  answer:     %s (demonstrated, not asserted)\n",
              demo.truth == quiz::Truth::kTrue ? "TRUE" : "FALSE");
  std::printf("  evidence:   %s\n", demo.witness.c_str());
  std::printf("  why:        %s\n\n", std::string(q.rationale).c_str());
}

void opt_lesson(std::size_t index, const quiz::AnswerKey& key) {
  const auto id = static_cast<quiz::OptQuestionId>(index);
  const auto& q = quiz::opt_question(id);
  const auto& demo = key.opt[index];
  std::printf("Lesson %zu: %s\n", quiz::kCoreQuestionCount + index + 1,
              quiz::opt_question_label(id).c_str());
  std::printf("  prompt:     %s\n", std::string(q.prompt).c_str());
  std::printf("  answer:     %s\n",
              q.is_true_false
                  ? (demo.truth == quiz::Truth::kTrue ? "TRUE" : "FALSE")
                  : quiz::kOptLevelChoices[key.opt_level_choice]);
  std::printf("  evidence:   %s\n", demo.witness.c_str());
  std::printf("  why:        %s\n\n", std::string(q.rationale).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto backend = quiz::make_native_double_backend();
  const quiz::AnswerKey key = quiz::derive_answer_key(*backend);

  if (argc > 1) {
    const long n = std::strtol(argv[1], nullptr, 10);
    if (n >= 1 && n <= static_cast<long>(quiz::kCoreQuestionCount)) {
      core_lesson(static_cast<std::size_t>(n - 1), key);
      return 0;
    }
    const long opt_n = n - static_cast<long>(quiz::kCoreQuestionCount);
    if (opt_n >= 1 && opt_n <= static_cast<long>(quiz::kOptQuestionCount)) {
      opt_lesson(static_cast<std::size_t>(opt_n - 1), key);
      return 0;
    }
    std::fprintf(stderr, "lesson number out of range (1-%zu)\n",
                 quiz::kCoreQuestionCount + quiz::kOptQuestionCount);
    return 1;
  }

  std::printf("floating point lessons, evidence executed on: %s\n\n",
              key.backend_name.c_str());
  for (std::size_t i = 0; i < quiz::kCoreQuestionCount; ++i) {
    core_lesson(i, key);
  }
  for (std::size_t i = 0; i < quiz::kOptQuestionCount; ++i) {
    opt_lesson(i, key);
  }
  std::puts(
      "The paper found developers answer the first 15 barely above chance\n"
      "(8.5/15) and say \"don't know\" to the last 4 over two thirds of\n"
      "the time. Every answer above was demonstrated by running the\n"
      "arithmetic on this machine.");
  return 0;
}
