// fpcheck — shadow-execution analysis of suspicious floating point code.
//
// The paper's §V: "Static and dynamic analysis tools that can examine
// existing codebases and point developers to potentially suspicious code
// would likely have significant impact" and "a system that would allow
// code written using floating point to be seamlessly compiled to use
// arbitrary precision would enable developers to easily sanity check the
// behavior of their code." fpcheck is both on a small scale: it runs a set
// of classic numerical kernels in binary64 next to 256-bit arithmetic and
// reports where the format (not the mathematics) changed the answer.

#include <cstdio>

#include "analyze/shadow.hpp"
#include "interval/interval.hpp"
#include "ir/expr.hpp"

namespace sh = fpq::shadow;
namespace iv = fpq::interval;
using E = fpq::ir::Expr;

namespace {

void check(const char* name, const E& expr, const sh::Config& config = {}) {
  std::printf("== %s\n   %s\n", name, expr.to_string().c_str());
  std::fputs(sh::render(sh::analyze(expr, config)).c_str(), stdout);
  // Second opinion: a guaranteed interval enclosure (directed rounding).
  const auto cert = iv::certify(expr);
  std::printf("  interval enclosure:    %s%s\n",
              cert.enclosure.to_string().c_str(),
              cert.enclosure_is_wide
                  ? "  <- WIDE: the rounding genuinely destroyed precision"
                  : "");
  std::puts("");
}

}  // namespace

int main() {
  std::puts("fpcheck: binary64 vs 256-bit shadow execution\n");

  check("healthy polynomial",
        E::add(E::mul(E::constant(3.0), E::constant(4.0)),
               E::constant(5.0)));

  check("quadratic-formula style cancellation: b - sqrt(b*b - small)",
        E::sub(E::constant(1e8),
               E::sqrt(E::sub(E::mul(E::constant(1e8), E::constant(1e8)),
                              E::constant(1.0)))));

  check("absorption: (1e16 + 1) - 1e16",
        E::sub(E::add(E::constant(1e16), E::constant(1.0)),
               E::constant(1e16)));

  check("format-induced overflow: (1e300 * 1e300) / 1e300",
        E::div(E::mul(E::constant(1e300), E::constant(1e300)),
               E::constant(1e300)));

  check("format-induced NaN: big - big via inf",
        E::sub(E::mul(E::constant(1e300), E::constant(1e300)),
               E::mul(E::constant(1e300), E::constant(1e300))));

  check("mathematically singular: 1/0 stays infinite at any precision",
        E::div(E::constant(1.0), E::constant(0.0)));

  std::puts(
      "interpretation: 'format-induced' findings are bugs the IEEE format "
      "injected and higher precision would remove; mathematically singular "
      "results follow the code at every precision. This is the tool the "
      "paper's 30%-believe-in-signals participants needed.");
  return 0;
}
