// take_quiz — actually sit the paper's survey, interactively.
//
// Reads answers from stdin (T / F / D per question; an -O level or D for
// the multiple-choice one), grades against the key executed on this
// machine, and prints the full report with the paper's cohort as the
// comparison group. Pipe answers for scripted runs:
//
//   printf 'T\nF\nF\nF\nF\nF\nT\nF\nT\nF\nT\nT\nT\nT\nF\nF\nF\n-O2\nT\n4\n2\n1\n5\n2\n' \
//     | ./take_quiz

#include <array>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/question_bank.hpp"
#include "core/session.hpp"
#include "fpmon/report.hpp"
#include "paperdata/paperdata.hpp"

namespace quiz = fpq::quiz;

namespace {

bool parse_tf(const std::string& s, quiz::Answer& out) {
  if (s.empty()) return false;
  switch (s[0]) {
    case 'T':
    case 't':
      out = quiz::Answer::kTrue;
      return true;
    case 'F':
    case 'f':
      out = quiz::Answer::kFalse;
      return true;
    case 'D':
    case 'd':
      out = quiz::Answer::kDontKnow;
      return true;
    default:
      return false;
  }
}

std::string prompt_line(const char* text) {
  std::printf("%s\n> ", text);
  std::fflush(stdout);
  std::string line;
  if (!std::getline(std::cin, line)) return "";
  return line;
}

}  // namespace

int main() {
  auto backend = quiz::make_native_double_backend();
  const quiz::QuizSession session(*backend);

  std::puts("The IPDPS 2018 floating point survey. Answer T, F, or D "
            "(don't know).\n");

  quiz::CoreSheet core;
  int n = 1;
  for (const auto& q : quiz::core_questions()) {
    std::printf("Q%d.\n    %s\n  Claim: %s\n", n++,
                std::string(q.snippet).c_str(),
                std::string(q.assertion).c_str());
    quiz::Answer a = quiz::Answer::kUnanswered;
    const std::string line = prompt_line("  True / False / Don't know?");
    if (!parse_tf(line, a)) a = quiz::Answer::kUnanswered;
    core[q.id] = a;
    std::puts("");
  }

  quiz::OptSheet opt;
  const quiz::OptQuestionId tf_ids[] = {quiz::OptQuestionId::kMadd,
                                        quiz::OptQuestionId::kFlushToZero,
                                        quiz::OptQuestionId::kFastMath};
  std::size_t tf_slot = 0;
  for (const auto& q : quiz::opt_questions()) {
    std::printf("Q%d.\n  %s\n", n++, std::string(q.prompt).c_str());
    if (q.is_true_false) {
      quiz::Answer a = quiz::Answer::kUnanswered;
      const std::string line = prompt_line("  True / False / Don't know?");
      if (!parse_tf(line, a)) a = quiz::Answer::kUnanswered;
      (void)tf_ids;
      opt.tf_answers[tf_slot++] = a;
    } else {
      const std::string line =
          prompt_line("  -O0 / -O1 / -O2 / -O3 / -Ofast / D?");
      opt.level_choice = quiz::kOptLevelUnanswered;
      if (!line.empty() && (line[0] == 'D' || line[0] == 'd')) {
        opt.level_choice = quiz::kOptLevelDontKnow;
      } else {
        for (std::size_t c = 0; c < quiz::kOptLevelChoiceCount; ++c) {
          if (line == quiz::kOptLevelChoices[c]) opt.level_choice = c;
        }
      }
    }
    std::puts("");
  }

  // Suspicion quiz (§II-D): Likert 1..5 per exceptional condition.
  std::puts("Final section. A simulation ran to completion; a monitor "
            "reports which exceptional\nconditions occurred at least once. "
            "For each, how suspicious would you be of the\nresults? "
            "(1 = not suspicious, 5 = maximally suspicious)\n");
  std::array<int, quiz::kSuspicionItemCount> suspicion{};
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    const auto& item =
        quiz::suspicion_item(static_cast<quiz::SuspicionItemId>(c));
    std::printf("Q%d.\n  %s\n", n++,
                std::string(item.condition_description).c_str());
    const std::string line = prompt_line("  1-5?");
    int level = 0;
    if (!line.empty() && line[0] >= '1' && line[0] <= '5') {
      level = line[0] - '0';
    }
    suspicion[c] = level;
    std::puts("");
  }

  std::puts("================ your report ================\n");
  std::fputs(session.render_report(core, opt).c_str(), stdout);

  const auto report = session.grade(core, opt);
  const auto paper = fpq::paperdata::core_quiz_averages();
  std::printf(
      "\ncontext: the paper's %zu developers averaged %.1f/15 (chance "
      "%.1f). You scored %zu/15 — %s.\n",
      fpq::paperdata::kMainCohortSize, paper.correct, paper.chance,
      report.core_score,
      static_cast<double>(report.core_score) > paper.correct
          ? "above the studied cohort"
          : "at or below the studied cohort");

  std::puts("\nsuspicion calibration vs the expert ranking (§IV-D):");
  for (std::size_t c = 0; c < quiz::kSuspicionItemCount; ++c) {
    const auto id = static_cast<quiz::SuspicionItemId>(c);
    const auto& item = quiz::suspicion_item(id);
    if (suspicion[c] == 0) {
      std::printf("  %-10s you: -    advised: %d\n",
                  quiz::suspicion_item_label(id).c_str(),
                  item.advised_level);
      continue;
    }
    std::printf("  %-10s you: %d    advised: %d   %s\n",
                quiz::suspicion_item_label(id).c_str(), suspicion[c],
                item.advised_level,
                suspicion[c] == item.advised_level ? "" :
                suspicion[c] < item.advised_level ? "(under-suspicious!)"
                                                  : "(over-suspicious)");
  }
  std::puts("\n(the paper found ~1/3 of respondents report below-maximum "
            "suspicion even for NaN results)");
  return 0;
}
