// fpq::stats — histograms.
//
// Two flavours:
//   * IntHistogram: one bin per integer value in [lo, hi] — exactly what
//     Figure 13 of the paper needs (core quiz scores 0..15).
//   * Histogram: fixed-width real-valued bins over [lo, hi).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fpq::stats {

/// Histogram over consecutive integers [lo, hi], one bin per value.
class IntHistogram {
 public:
  /// Requires lo <= hi.
  IntHistogram(int lo, int hi);

  /// Adds one observation; values outside [lo, hi] are counted in
  /// underflow()/overflow() rather than silently dropped.
  void add(int value) noexcept;

  /// Adds every value in the span.
  void add_all(std::span<const int> values) noexcept;

  /// Absorbs another histogram's counts (including under/overflow).
  /// Counts are integers, so merging in any order equals adding the
  /// observations one at a time — the property the streaming survey
  /// accumulators rely on. Throws std::invalid_argument when the bin
  /// ranges differ.
  void merge(const IntHistogram& other);

  int lo() const noexcept { return lo_; }
  int hi() const noexcept { return hi_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(int value) const noexcept;
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }

  /// Counts indexed by (value - lo).
  std::span<const std::size_t> counts() const noexcept { return counts_; }

  /// Proportion of in-range observations with the given value
  /// (0 when the histogram is empty).
  double proportion(int value) const noexcept;

  /// Mean of recorded in-range values (0 when empty).
  double mean() const noexcept;

 private:
  int lo_;
  int hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

/// Fixed-width real-valued histogram over [lo, hi) with `bins` bins.
class Histogram {
 public:
  /// Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void add_all(std::span<const double> values) noexcept;

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  std::size_t total() const noexcept { return total_; }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }

  /// [lower, upper) edges of a bin.
  double bin_lower(std::size_t bin) const noexcept;
  double bin_upper(std::size_t bin) const noexcept;

  std::span<const std::size_t> counts() const noexcept { return counts_; }

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace fpq::stats
