#include "stats/categorical.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fpq::stats {

CategoricalDistribution::CategoricalDistribution(
    std::span<const double> weights) {
  assert(!weights.empty());
  double sum = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    sum += w;
  }
  assert(sum > 0.0);
  probs_.reserve(weights.size());
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (double w : weights) {
    const double p = w / sum;
    probs_.push_back(p);
    acc += p;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t CategoricalDistribution::sample(Xoshiro256pp& g) const noexcept {
  const double u = uniform01(g);
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  return std::min(idx, probs_.size() - 1);
}

FrequencyTable::FrequencyTable(std::size_t category_count)
    : counts_(category_count, 0) {
  assert(category_count > 0);
}

void FrequencyTable::add(std::size_t category) noexcept {
  if (category >= counts_.size()) {
    ++dropped_;
    return;
  }
  ++counts_[category];
  ++total_;
}

void FrequencyTable::add_all(std::span<const std::size_t> categories) noexcept {
  for (std::size_t c : categories) add(c);
}

std::size_t FrequencyTable::count(std::size_t category) const noexcept {
  return category < counts_.size() ? counts_[category] : 0;
}

double FrequencyTable::proportion(std::size_t category) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(category)) / static_cast<double>(total_);
}

std::vector<double> FrequencyTable::proportions() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

FrequencyTable sample_frequency(const CategoricalDistribution& dist,
                                std::size_t n, Xoshiro256pp& g) {
  FrequencyTable table(dist.category_count());
  for (std::size_t i = 0; i < n; ++i) table.add(dist.sample(g));
  return table;
}

double total_variation_distance(std::span<const double> p,
                                std::span<const double> q) noexcept {
  assert(p.size() == q.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) acc += std::fabs(p[i] - q[i]);
  return 0.5 * acc;
}

}  // namespace fpq::stats
