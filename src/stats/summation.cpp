#include "stats/summation.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace fpq::stats {

double naive_sum(std::span<const double> xs) noexcept {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum;
}

namespace {

double pairwise_range(std::span<const double> xs, std::size_t lo,
                      std::size_t hi) noexcept {
  // Base case of 2 keeps the association tree fully balanced (matching
  // fpq::opt's reassociation emulation); production implementations use a
  // larger block purely for speed.
  if (hi - lo == 1) return xs[lo];
  if (hi - lo == 2) return xs[lo] + xs[lo + 1];
  const std::size_t mid = lo + (hi - lo) / 2;
  return pairwise_range(xs, lo, mid) + pairwise_range(xs, mid, hi);
}

/// Knuth's TwoSum: s = fl(a+b), err exact such that a + b = s + err.
struct TwoSumResult {
  double sum;
  double err;
};

TwoSumResult two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double bb = s - a;
  const double err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

}  // namespace

double pairwise_sum(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return pairwise_range(xs, 0, xs.size());
}

double kahan_sum(std::span<const double> xs) noexcept {
  double sum = 0.0;
  double comp = 0.0;
  for (double x : xs) {
    const double y = x - comp;
    const double t = sum + y;
    comp = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double neumaier_sum(std::span<const double> xs) noexcept {
  double sum = 0.0;
  double comp = 0.0;
  for (double x : xs) {
    const double t = sum + x;
    if (std::fabs(sum) >= std::fabs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
  }
  return sum + comp;
}

double exact_sum(std::span<const double> xs) {
  // Shewchuk-style distillation: keep a list of non-overlapping partials;
  // each input is two_sum'd through the list. The final partials sum (in
  // increasing magnitude) to the correctly rounded total because all the
  // error terms were preserved exactly.
  std::vector<double> partials;
  for (double x : xs) {
    assert(std::isfinite(x));
    std::size_t used = 0;
    for (double p : partials) {
      auto [s, err] = two_sum(x, p);
      if (err != 0.0) partials[used++] = err;
      x = s;
    }
    partials.resize(used);
    partials.push_back(x);
  }
  double total = 0.0;
  for (double p : partials) total += p;
  return total;
}

double summation_relative_error(double approx, std::span<const double> xs) {
  const double exact = exact_sum(xs);
  const double denom =
      std::max(std::fabs(exact), std::numeric_limits<double>::min());
  return std::fabs(approx - exact) / denom;
}

}  // namespace fpq::stats
