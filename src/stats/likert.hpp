// fpq::stats — 5-point Likert scale utilities.
//
// The suspicion quiz (§II-D of the paper) asks for suspicion on a 5-point
// Likert scale per exception condition; Figure 22 plots, for each
// condition, the percentage of respondents reporting each level. This
// module provides the distribution type, sampling, and the summary
// quantities the reproduction compares against the paper.
#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "stats/prng.hpp"

namespace fpq::stats {

/// Number of points on the scale (levels are 1..5).
inline constexpr std::size_t kLikertLevels = 5;

/// A distribution over Likert levels 1..5, stored as proportions that sum
/// to 1. index 0 <-> level 1.
class LikertDistribution {
 public:
  /// Uniform distribution.
  LikertDistribution() noexcept;

  /// From proportions (any non-negative weights; normalized on entry).
  explicit LikertDistribution(
      const std::array<double, kLikertLevels>& weights) noexcept;

  /// From observed counts of levels 1..5.
  static LikertDistribution from_counts(
      const std::array<std::size_t, kLikertLevels>& counts) noexcept;

  /// Proportion reporting the given level (1..5).
  double proportion(int level) const noexcept;

  /// Percentage (0..100) reporting the given level (1..5).
  double percent(int level) const noexcept { return 100.0 * proportion(level); }

  /// Expected level in [1, 5].
  double mean_level() const noexcept;

  /// Proportion reporting strictly less than the maximum level. The paper
  /// highlights that ~1/3 of respondents reported less-than-maximum
  /// suspicion for Invalid (NaN) results.
  double proportion_below_max() const noexcept;

  /// Draws a level in 1..5.
  int sample(Xoshiro256pp& g) const noexcept;

  /// Total-variation distance to another Likert distribution, in [0, 1].
  double distance(const LikertDistribution& other) const noexcept;

  std::span<const double> proportions() const noexcept { return probs_; }

 private:
  std::array<double, kLikertLevels> probs_;
};

/// Accumulates observed Likert responses (levels 1..5) into counts.
class LikertAccumulator {
 public:
  LikertAccumulator() noexcept : counts_{} {}

  /// Levels outside 1..5 are ignored and counted as dropped.
  void add(int level) noexcept;

  /// Absorbs another accumulator's counts (including dropped). Integer
  /// counts make the merge order-insensitive: any merge tree equals the
  /// serial add() fold.
  void merge(const LikertAccumulator& other) noexcept;

  std::size_t total() const noexcept { return total_; }
  std::size_t dropped() const noexcept { return dropped_; }
  std::size_t count(int level) const noexcept;

  /// Snapshot as a normalized distribution; requires total() > 0.
  LikertDistribution distribution() const noexcept;

 private:
  std::array<std::size_t, kLikertLevels> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace fpq::stats
