#include "stats/likert.hpp"

#include <cassert>
#include <cmath>

namespace fpq::stats {

LikertDistribution::LikertDistribution() noexcept {
  probs_.fill(1.0 / static_cast<double>(kLikertLevels));
}

LikertDistribution::LikertDistribution(
    const std::array<double, kLikertLevels>& weights) noexcept {
  double sum = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    sum += w;
  }
  assert(sum > 0.0);
  for (std::size_t i = 0; i < kLikertLevels; ++i) probs_[i] = weights[i] / sum;
}

LikertDistribution LikertDistribution::from_counts(
    const std::array<std::size_t, kLikertLevels>& counts) noexcept {
  std::array<double, kLikertLevels> weights{};
  for (std::size_t i = 0; i < kLikertLevels; ++i) {
    weights[i] = static_cast<double>(counts[i]);
  }
  return LikertDistribution{weights};
}

double LikertDistribution::proportion(int level) const noexcept {
  assert(level >= 1 && level <= static_cast<int>(kLikertLevels));
  return probs_[static_cast<std::size_t>(level - 1)];
}

double LikertDistribution::mean_level() const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < kLikertLevels; ++i) {
    acc += probs_[i] * static_cast<double>(i + 1);
  }
  return acc;
}

double LikertDistribution::proportion_below_max() const noexcept {
  return 1.0 - probs_[kLikertLevels - 1];
}

int LikertDistribution::sample(Xoshiro256pp& g) const noexcept {
  const double u = uniform01(g);
  double acc = 0.0;
  for (std::size_t i = 0; i < kLikertLevels; ++i) {
    acc += probs_[i];
    if (u < acc) return static_cast<int>(i + 1);
  }
  return static_cast<int>(kLikertLevels);
}

double LikertDistribution::distance(
    const LikertDistribution& other) const noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < kLikertLevels; ++i) {
    acc += std::fabs(probs_[i] - other.probs_[i]);
  }
  return 0.5 * acc;
}

void LikertAccumulator::add(int level) noexcept {
  if (level < 1 || level > static_cast<int>(kLikertLevels)) {
    ++dropped_;
    return;
  }
  ++counts_[static_cast<std::size_t>(level - 1)];
  ++total_;
}

void LikertAccumulator::merge(const LikertAccumulator& other) noexcept {
  for (std::size_t i = 0; i < kLikertLevels; ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  dropped_ += other.dropped_;
}

std::size_t LikertAccumulator::count(int level) const noexcept {
  if (level < 1 || level > static_cast<int>(kLikertLevels)) return 0;
  return counts_[static_cast<std::size_t>(level - 1)];
}

LikertDistribution LikertAccumulator::distribution() const noexcept {
  assert(total_ > 0);
  return LikertDistribution::from_counts(counts_);
}

}  // namespace fpq::stats
