// fpq::stats — categorical distributions and frequency tables.
//
// The survey's background factors (position, area, training, ...) are all
// categorical; the respondent model samples them from the paper's published
// marginals and the analysis pipeline recovers frequency tables from raw
// records. Both directions live here.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "stats/prng.hpp"

namespace fpq::stats {

/// Immutable categorical distribution over indices 0..k-1.
///
/// Construction normalizes arbitrary non-negative weights; sampling uses
/// the cumulative table with binary search (k is small everywhere in
/// fpqual, so the alias method would be over-engineering).
class CategoricalDistribution {
 public:
  /// Requires at least one weight, all weights >= 0, and a positive sum.
  explicit CategoricalDistribution(std::span<const double> weights);

  std::size_t category_count() const noexcept { return probs_.size(); }

  /// Normalized probability of category i.
  double probability(std::size_t i) const noexcept { return probs_[i]; }

  std::span<const double> probabilities() const noexcept { return probs_; }

  /// Draws one category index.
  std::size_t sample(Xoshiro256pp& g) const noexcept;

 private:
  std::vector<double> probs_;
  std::vector<double> cumulative_;
};

/// Counts occurrences of each category index in [0, k).
/// Values outside the range are ignored (and reported via dropped()).
class FrequencyTable {
 public:
  explicit FrequencyTable(std::size_t category_count);

  void add(std::size_t category) noexcept;
  void add_all(std::span<const std::size_t> categories) noexcept;

  std::size_t category_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t category) const noexcept;
  std::size_t total() const noexcept { return total_; }
  std::size_t dropped() const noexcept { return dropped_; }

  /// Proportion of total for one category (0 when empty).
  double proportion(std::size_t category) const noexcept;

  /// Proportions for all categories (empty table -> all zero).
  std::vector<double> proportions() const;

  std::span<const std::size_t> counts() const noexcept { return counts_; }

 private:
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t dropped_ = 0;
};

/// Draws `n` samples from `dist` and returns the resulting frequency table.
FrequencyTable sample_frequency(const CategoricalDistribution& dist,
                                std::size_t n, Xoshiro256pp& g);

/// Total-variation distance between two discrete distributions given as
/// probability vectors of equal length: 0.5 * sum |p_i - q_i|.
double total_variation_distance(std::span<const double> p,
                                std::span<const double> q) noexcept;

}  // namespace fpq::stats
