// fpq::stats — summation algorithms and their error behavior.
//
// The quiz's Associativity/Ordering questions are abstract statements of a
// concrete engineering problem: how to sum many floating point numbers
// without drowning in rounding error. This header provides the standard
// answers — naive, pairwise, Kahan, Neumaier — plus an error probe used by
// tests and teaching material to rank them on ill-conditioned inputs.
#pragma once

#include <span>

namespace fpq::stats {

/// Left-to-right accumulation: what the naive loop does; worst error
/// growth (O(n) ulps on adversarial data).
double naive_sum(std::span<const double> xs) noexcept;

/// Balanced-tree reduction: what vectorized reductions approximate;
/// O(log n) error growth.
double pairwise_sum(std::span<const double> xs) noexcept;

/// Kahan compensated summation: running error term; O(1) error growth on
/// well-scaled data, but the compensation is lost when a term dwarfs the
/// running sum.
double kahan_sum(std::span<const double> xs) noexcept;

/// Neumaier's improvement: compensates in both directions, surviving
/// terms larger than the running sum (this is what fpq::stats::mean uses).
double neumaier_sum(std::span<const double> xs) noexcept;

/// Exact sum via exact two-term transformations cascaded through a
/// superaccumulator-style sweep (repeated TwoSum distillation until the
/// partials are non-overlapping), rounded once at the end. Slower, but a
/// correct reference for the error probe. Inputs must be finite.
double exact_sum(std::span<const double> xs);

/// |approx - exact| / max(|exact|, DBL_MIN) against exact_sum.
double summation_relative_error(double approx, std::span<const double> xs);

}  // namespace fpq::stats
