#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "parallel/shard.hpp"
#include "stats/descriptive.hpp"

namespace fpq::stats {

BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, Xoshiro256pp& g) {
  assert(!data.empty());
  assert(replicates >= 100);
  assert(confidence > 0.0 && confidence < 1.0);

  BootstrapInterval out;
  out.confidence = confidence;
  out.estimate = statistic(data);

  std::vector<double> resample(data.size());
  std::vector<double> estimates;
  estimates.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& slot : resample) {
      slot = data[uniform_below(g, data.size())];
    }
    estimates.push_back(statistic(resample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  out.lower = quantile(estimates, alpha);
  out.upper = quantile(estimates, 1.0 - alpha);
  return out;
}

BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 Xoshiro256pp& g) {
  return bootstrap_interval(
      data, [](std::span<const double> xs) { return mean(xs); }, replicates,
      confidence, g);
}

BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, std::uint64_t seed,
                                     parallel::ThreadPool& pool) {
  assert(!data.empty());
  assert(replicates >= 100);
  assert(confidence > 0.0 && confidence < 1.0);

  BootstrapInterval out;
  out.confidence = confidence;
  out.estimate = statistic(data);

  // Chunked so each shard reuses one resample buffer; replicate r's stream
  // depends only on (seed, r), so the chunk count (and thread count) never
  // changes which samples replicate r draws.
  std::vector<double> estimates(replicates);
  const std::size_t chunks =
      parallel::recommended_chunks(pool, replicates, 16);
  pool.run_shards(chunks, [&](std::size_t chunk) {
    const auto range = parallel::chunk_range(replicates, chunks, chunk);
    std::vector<double> resample(data.size());
    for (std::size_t r = range.begin; r < range.end; ++r) {
      Xoshiro256pp g(parallel::shard_seed(seed, r));
      for (auto& slot : resample) {
        slot = data[uniform_below(g, data.size())];
      }
      estimates[r] = statistic(resample);
    }
  });

  const double alpha = (1.0 - confidence) / 2.0;
  out.lower = quantile(estimates, alpha);
  out.upper = quantile(estimates, 1.0 - alpha);
  return out;
}

BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed,
                                 parallel::ThreadPool& pool) {
  return bootstrap_interval(
      data, [](std::span<const double> xs) { return mean(xs); }, replicates,
      confidence, seed, pool);
}

void ChunkStatAccumulator::merge(ChunkStatAccumulator&& other) {
  // Close this side's open stat before appending the other side's stats:
  // under the chunk-ordered tree merge every left subtree precedes every
  // right subtree, so the closed list ends up in chunk order.
  if (open_.n != 0) {
    closed_.push_back(open_);
    open_ = ChunkMeanStat{};
  }
  closed_.insert(closed_.end(), other.closed_.begin(), other.closed_.end());
  if (other.open_.n != 0) closed_.push_back(other.open_);
}

std::vector<ChunkMeanStat> ChunkStatAccumulator::finish() const {
  std::vector<ChunkMeanStat> out = closed_;
  if (open_.n != 0) out.push_back(open_);
  return out;
}

BootstrapInterval bootstrap_mean_from_chunks(
    std::span<const ChunkMeanStat> chunks, std::size_t replicates,
    double confidence, std::uint64_t seed, parallel::ThreadPool& pool) {
  assert(replicates >= 100);
  assert(confidence > 0.0 && confidence < 1.0);

  double total_sum = 0.0;
  std::size_t total_n = 0;
  for (const auto& c : chunks) {
    total_sum += c.sum;
    total_n += c.n;
  }
  assert(total_n > 0);

  BootstrapInterval out;
  out.confidence = confidence;
  out.estimate = total_sum / static_cast<double>(total_n);

  // Replicate r's stream depends only on (seed, r), exactly like the
  // sharded data bootstrap: the shard count never changes the draws.
  std::vector<double> estimates(replicates);
  const std::size_t shards =
      parallel::recommended_chunks(pool, replicates, 16);
  pool.run_shards(shards, [&](std::size_t shard) {
    const auto range = parallel::chunk_range(replicates, shards, shard);
    for (std::size_t r = range.begin; r < range.end; ++r) {
      Xoshiro256pp g(parallel::shard_seed(seed, r));
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t draw = 0; draw < chunks.size(); ++draw) {
        const ChunkMeanStat& pick =
            chunks[uniform_below(g, chunks.size())];
        sum += pick.sum;
        n += pick.n;
      }
      estimates[r] = n > 0 ? sum / static_cast<double>(n)
                           : out.estimate;
    }
  });

  const double alpha = (1.0 - confidence) / 2.0;
  out.lower = quantile(estimates, alpha);
  out.upper = quantile(estimates, 1.0 - alpha);
  return out;
}

}  // namespace fpq::stats
