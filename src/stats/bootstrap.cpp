#include "stats/bootstrap.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "parallel/shard.hpp"
#include "stats/descriptive.hpp"

namespace fpq::stats {

BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, Xoshiro256pp& g) {
  assert(!data.empty());
  assert(replicates >= 100);
  assert(confidence > 0.0 && confidence < 1.0);

  BootstrapInterval out;
  out.confidence = confidence;
  out.estimate = statistic(data);

  std::vector<double> resample(data.size());
  std::vector<double> estimates;
  estimates.reserve(replicates);
  for (std::size_t r = 0; r < replicates; ++r) {
    for (auto& slot : resample) {
      slot = data[uniform_below(g, data.size())];
    }
    estimates.push_back(statistic(resample));
  }
  const double alpha = (1.0 - confidence) / 2.0;
  out.lower = quantile(estimates, alpha);
  out.upper = quantile(estimates, 1.0 - alpha);
  return out;
}

BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 Xoshiro256pp& g) {
  return bootstrap_interval(
      data, [](std::span<const double> xs) { return mean(xs); }, replicates,
      confidence, g);
}

BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, std::uint64_t seed,
                                     parallel::ThreadPool& pool) {
  assert(!data.empty());
  assert(replicates >= 100);
  assert(confidence > 0.0 && confidence < 1.0);

  BootstrapInterval out;
  out.confidence = confidence;
  out.estimate = statistic(data);

  // Chunked so each shard reuses one resample buffer; replicate r's stream
  // depends only on (seed, r), so the chunk count (and thread count) never
  // changes which samples replicate r draws.
  std::vector<double> estimates(replicates);
  const std::size_t chunks =
      parallel::recommended_chunks(pool, replicates, 16);
  pool.run_shards(chunks, [&](std::size_t chunk) {
    const auto range = parallel::chunk_range(replicates, chunks, chunk);
    std::vector<double> resample(data.size());
    for (std::size_t r = range.begin; r < range.end; ++r) {
      Xoshiro256pp g(parallel::shard_seed(seed, r));
      for (auto& slot : resample) {
        slot = data[uniform_below(g, data.size())];
      }
      estimates[r] = statistic(resample);
    }
  });

  const double alpha = (1.0 - confidence) / 2.0;
  out.lower = quantile(estimates, alpha);
  out.upper = quantile(estimates, 1.0 - alpha);
  return out;
}

BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed,
                                 parallel::ThreadPool& pool) {
  return bootstrap_interval(
      data, [](std::span<const double> xs) { return mean(xs); }, replicates,
      confidence, seed, pool);
}

}  // namespace fpq::stats
