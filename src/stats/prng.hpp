// fpq::stats — deterministic pseudo-random number generation.
//
// Every stochastic component in fpqual takes an explicit 64-bit seed and
// owns its own generator; there is no global RNG state anywhere in the
// library.  The same seed therefore reproduces every figure bit-for-bit,
// which the test suite relies on.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64 so that low-entropy seeds (0, 1, 2, ...) still produce
// well-distributed streams.  Both are implemented from the published
// reference algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace fpq::stats {

/// One step of the splitmix64 sequence starting at `state`; advances state.
/// Used for seeding and for cheap stateless hashing of seed material.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256++ 1.0. 256 bits of state, period 2^256 - 1, jump support.
/// Satisfies (a useful subset of) the C++ UniformRandomBitGenerator
/// concept so it can drive <random> distributions if callers want that,
/// although fpqual uses its own distribution helpers for determinism
/// across standard library implementations.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 as recommended by the
  /// reference implementation.
  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64 uniformly distributed bits.
  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls to operator(); used to partition one seed
  /// into independent streams (one per respondent, per question, ...).
  void jump() noexcept;

  /// Derives an independent child generator: reseeds from this stream's
  /// next two outputs mixed with `stream_id`. Cheap, deterministic, and
  /// collision-resistant enough for simulation fan-out.
  Xoshiro256pp split(std::uint64_t stream_id) noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Uniform double in [0, 1) with 53 random bits (never returns 1.0).
double uniform01(Xoshiro256pp& g) noexcept;

/// Uniform double in [lo, hi). Requires lo < hi and both finite.
double uniform_range(Xoshiro256pp& g, double lo, double hi) noexcept;

/// Unbiased uniform integer in [0, n) via Lemire's multiply-shift with
/// rejection. Requires n > 0.
std::uint64_t uniform_below(Xoshiro256pp& g, std::uint64_t n) noexcept;

/// Bernoulli draw with success probability p (clamped to [0,1]).
bool bernoulli(Xoshiro256pp& g, double p) noexcept;

/// Standard normal via the Marsaglia polar method (exact, no tables).
double standard_normal(Xoshiro256pp& g) noexcept;

/// Normal with the given mean and standard deviation (sigma >= 0).
double normal(Xoshiro256pp& g, double mean, double sigma) noexcept;

}  // namespace fpq::stats
