#include "stats/chi_square.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace fpq::stats {

namespace {

// Series expansion for P(s, x), effective for x < s + 1.
double gamma_p_series(double s, double x) noexcept {
  const double gln = std::lgamma(s);
  double ap = s;
  double sum = 1.0 / s;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + s * std::log(x) - gln);
}

// Lentz continued fraction for Q(s, x), effective for x >= s + 1.
double gamma_q_cf(double s, double x) noexcept {
  const double gln = std::lgamma(s);
  constexpr double kTiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + s * std::log(x) - gln) * h;
}

}  // namespace

double regularized_gamma_p(double s, double x) noexcept {
  assert(s > 0.0);
  if (x <= 0.0) return 0.0;
  if (x < s + 1.0) return gamma_p_series(s, x);
  return 1.0 - gamma_q_cf(s, x);
}

double regularized_gamma_q(double s, double x) noexcept {
  assert(s > 0.0);
  if (x <= 0.0) return 1.0;
  if (x < s + 1.0) return 1.0 - gamma_p_series(s, x);
  return gamma_q_cf(s, x);
}

double chi_square_sf(double statistic, double dof) noexcept {
  if (dof <= 0.0) return 1.0;
  if (statistic <= 0.0) return 1.0;
  if (std::isinf(statistic)) return 0.0;
  return regularized_gamma_q(dof / 2.0, statistic / 2.0);
}

ChiSquareResult chi_square_goodness_of_fit(
    std::span<const std::size_t> observed,
    std::span<const double> expected_probs) noexcept {
  assert(observed.size() == expected_probs.size());
  std::size_t total = 0;
  for (std::size_t o : observed) total += o;
  assert(total > 0);

  ChiSquareResult result;
  std::size_t used_cells = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double expected =
        expected_probs[i] * static_cast<double>(total);
    if (expected <= 0.0) {
      // A structurally impossible cell: any observation there is an
      // infinite-statistic rejection.
      if (observed[i] > 0) {
        result.statistic = std::numeric_limits<double>::infinity();
      }
      continue;
    }
    ++used_cells;
    if (expected < 5.0) ++result.sparse_cells;
    const double diff = static_cast<double>(observed[i]) - expected;
    result.statistic += diff * diff / expected;
  }
  result.dof = used_cells > 1 ? static_cast<double>(used_cells - 1) : 0.0;
  result.p_value = chi_square_sf(result.statistic, result.dof);
  return result;
}

ChiSquareResult chi_square_independence(std::span<const std::size_t> table,
                                        std::size_t rows,
                                        std::size_t cols) noexcept {
  assert(table.size() == rows * cols);
  std::vector<double> row_sum(rows, 0.0);
  std::vector<double> col_sum(cols, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto v = static_cast<double>(table[r * cols + c]);
      row_sum[r] += v;
      col_sum[c] += v;
      total += v;
    }
  }
  ChiSquareResult result;
  if (total == 0.0) return result;

  std::size_t live_rows = 0;
  std::size_t live_cols = 0;
  for (double s : row_sum)
    if (s > 0.0) ++live_rows;
  for (double s : col_sum)
    if (s > 0.0) ++live_cols;

  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const double expected = row_sum[r] * col_sum[c] / total;
      if (expected <= 0.0) continue;
      if (expected < 5.0) ++result.sparse_cells;
      const double diff = static_cast<double>(table[r * cols + c]) - expected;
      result.statistic += diff * diff / expected;
    }
  }
  if (live_rows >= 2 && live_cols >= 2) {
    result.dof = static_cast<double>((live_rows - 1) * (live_cols - 1));
  }
  result.p_value = chi_square_sf(result.statistic, result.dof);
  return result;
}

}  // namespace fpq::stats
