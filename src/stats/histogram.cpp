#include "stats/histogram.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace fpq::stats {

IntHistogram::IntHistogram(int lo, int hi) : lo_(lo), hi_(hi) {
  assert(lo <= hi);
  counts_.assign(static_cast<std::size_t>(hi - lo) + 1, 0);
}

void IntHistogram::add(int value) noexcept {
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value > hi_) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<std::size_t>(value - lo_)];
  ++total_;
}

void IntHistogram::add_all(std::span<const int> values) noexcept {
  for (int v : values) add(v);
}

void IntHistogram::merge(const IntHistogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_) {
    throw std::invalid_argument(
        "IntHistogram::merge: bin ranges differ");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
}

std::size_t IntHistogram::count(int value) const noexcept {
  if (value < lo_ || value > hi_) return 0;
  return counts_[static_cast<std::size_t>(value - lo_)];
}

double IntHistogram::proportion(int value) const noexcept {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

double IntHistogram::mean() const noexcept {
  if (total_ == 0) return 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    weighted += static_cast<double>(counts_[i]) *
                static_cast<double>(lo_ + static_cast<int>(i));
  }
  return weighted / static_cast<double>(total_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  assert(lo < hi);
  assert(bins >= 1);
  counts_.assign(bins, 0);
}

void Histogram::add(double value) noexcept {
  if (std::isnan(value) || value < lo_) {
    ++underflow_;
    return;
  }
  if (value >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // edge rounding
  ++counts_[bin];
  ++total_;
}

void Histogram::add_all(std::span<const double> values) noexcept {
  for (double v : values) add(v);
}

double Histogram::bin_lower(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_upper(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace fpq::stats
