// fpq::stats — chi-square goodness-of-fit and independence tests.
//
// Used by the test suite to check that the calibrated synthetic population
// reproduces the paper's published marginals (a failed fit shows up as an
// implausibly small p-value), and by the factor analysis to quantify
// association between background factors and quiz outcomes.
//
// The p-value needs the regularized upper incomplete gamma function Q(s,x);
// we implement it from scratch (series + continued fraction, Numerical
// Recipes style) since the standard library does not provide it.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fpq::stats {

/// Regularized lower incomplete gamma P(s, x), s > 0, x >= 0.
double regularized_gamma_p(double s, double x) noexcept;

/// Regularized upper incomplete gamma Q(s, x) = 1 - P(s, x).
double regularized_gamma_q(double s, double x) noexcept;

/// Survival function of the chi-square distribution with `dof` degrees of
/// freedom evaluated at `statistic` (i.e. the p-value of the test).
double chi_square_sf(double statistic, double dof) noexcept;

/// Result of a chi-square test.
struct ChiSquareResult {
  double statistic = 0.0;
  double dof = 0.0;
  double p_value = 1.0;
  /// Number of cells whose expected count fell below 5 (the classical
  /// validity rule of thumb); callers may choose to pool or warn.
  std::size_t sparse_cells = 0;
};

/// Goodness-of-fit of observed counts against expected *probabilities*.
/// Requires equal sizes, total observed > 0, probabilities summing to ~1.
/// Cells with zero expected probability must have zero observed count.
ChiSquareResult chi_square_goodness_of_fit(
    std::span<const std::size_t> observed,
    std::span<const double> expected_probs) noexcept;

/// Test of independence on an r x c contingency table (row-major).
/// Rows/columns whose marginal total is zero are ignored for dof purposes.
ChiSquareResult chi_square_independence(
    std::span<const std::size_t> table, std::size_t rows,
    std::size_t cols) noexcept;

}  // namespace fpq::stats
