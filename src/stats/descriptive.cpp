#include "stats/descriptive.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fpq::stats {

double mean(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  // Neumaier compensated summation: the library is about floating point
  // gotchas, so it should not itself accumulate naively.
  double sum = 0.0;
  double comp = 0.0;
  for (double x : xs) {
    const double t = sum + x;
    if (std::fabs(sum) >= std::fabs(x)) {
      comp += (sum - t) + x;
    } else {
      comp += (x - t) + sum;
    }
    sum = t;
  }
  return (sum + comp) / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) noexcept {
  assert(xs.size() >= 2);
  double m = 0.0;
  double m2 = 0.0;
  std::size_t n = 0;
  for (double x : xs) {
    ++n;
    const double delta = x - m;
    m += delta / static_cast<double>(n);
    m2 += delta * (x - m);
  }
  return m2 / static_cast<double>(n - 1);
}

double sample_stddev(std::span<const double> xs) noexcept {
  return std::sqrt(sample_variance(xs));
}

double standard_error(std::span<const double> xs) noexcept {
  return sample_stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - std::floor(pos);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double min_value(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_value(std::span<const double> xs) noexcept {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? sample_stddev(xs) : 0.0;
  s.min = min_value(xs);
  s.q25 = quantile(xs, 0.25);
  s.median = quantile(xs, 0.5);
  s.q75 = quantile(xs, 0.75);
  s.max = max_value(xs);
  return s;
}

double mean_of_counts(std::span<const int> xs) noexcept {
  assert(!xs.empty());
  long long total = 0;
  for (int x : xs) total += x;
  return static_cast<double>(total) / static_cast<double>(xs.size());
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) noexcept {
  assert(xs.size() == ys.size());
  assert(xs.size() >= 2);
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace fpq::stats
