#include "stats/prng.hpp"

#include <cmath>

namespace fpq::stats {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

Xoshiro256pp::result_type Xoshiro256pp::operator()() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump_word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump_word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

Xoshiro256pp Xoshiro256pp::split(std::uint64_t stream_id) noexcept {
  std::uint64_t material = (*this)() ^ (stream_id * 0x9E3779B97F4A7C15ULL);
  material ^= (*this)() + 0x94D049BB133111EBULL;
  return Xoshiro256pp{material};
}

double uniform01(Xoshiro256pp& g) noexcept {
  // Top 53 bits scaled by 2^-53: every result is an exact multiple of
  // 2^-53 in [0, 1).
  return static_cast<double>(g() >> 11) * 0x1.0p-53;
}

double uniform_range(Xoshiro256pp& g, double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01(g);
}

std::uint64_t uniform_below(Xoshiro256pp& g, std::uint64_t n) noexcept {
  // Lemire's nearly-divisionless algorithm.
  std::uint64_t x = g();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = g();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool bernoulli(Xoshiro256pp& g, double p) noexcept {
  if (p <= 0.0) {
    g();  // keep stream position independent of p
    return false;
  }
  if (p >= 1.0) {
    g();
    return true;
  }
  return uniform01(g) < p;
}

double standard_normal(Xoshiro256pp& g) noexcept {
  // Marsaglia polar method; consumes a variable number of uniforms but is
  // exact and branch-simple. We deliberately discard the second variate to
  // keep the call stateless.
  for (;;) {
    const double u = 2.0 * uniform01(g) - 1.0;
    const double v = 2.0 * uniform01(g) - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double normal(Xoshiro256pp& g, double mean, double sigma) noexcept {
  return mean + sigma * standard_normal(g);
}

}  // namespace fpq::stats
