// fpq::stats — nonparametric bootstrap confidence intervals.
//
// The paper reports point estimates only; the reproduction attaches
// percentile-bootstrap confidence intervals so EXPERIMENTS.md can state not
// just "measured 8.6 vs paper 8.5" but whether the paper value is inside
// the resampling interval.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "stats/prng.hpp"

namespace fpq::stats {

/// A two-sided confidence interval with its point estimate.
struct BootstrapInterval {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;  ///< e.g. 0.95
};

/// Statistic evaluated on a resampled dataset.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap for an arbitrary statistic.
/// Requires non-empty data, replicates >= 100, confidence in (0, 1).
BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, Xoshiro256pp& g);

/// Convenience wrapper: bootstrap CI for the mean.
BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 Xoshiro256pp& g);

}  // namespace fpq::stats
