// fpq::stats — nonparametric bootstrap confidence intervals.
//
// The paper reports point estimates only; the reproduction attaches
// percentile-bootstrap confidence intervals so EXPERIMENTS.md can state not
// just "measured 8.6 vs paper 8.5" but whether the paper value is inside
// the resampling interval.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "stats/prng.hpp"

namespace fpq::stats {

/// A two-sided confidence interval with its point estimate.
struct BootstrapInterval {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;  ///< e.g. 0.95
};

/// Statistic evaluated on a resampled dataset.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap for an arbitrary statistic.
/// Requires non-empty data, replicates >= 100, confidence in (0, 1).
BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, Xoshiro256pp& g);

/// Convenience wrapper: bootstrap CI for the mean.
BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 Xoshiro256pp& g);

/// Sharded percentile bootstrap. Replicate r draws from its own generator
/// seeded with parallel::shard_seed(seed, r), so the result is a pure
/// function of (data, statistic, replicates, confidence, seed) —
/// bit-identical for every thread count, including 1. Note the resampling
/// streams differ from the sequential overload above, which threads one
/// generator through all replicates and therefore cannot be parallelized
/// without changing its answers. The statistic is invoked concurrently
/// and must be a pure function of its input span.
BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, std::uint64_t seed,
                                     parallel::ThreadPool& pool);

BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed,
                                 parallel::ThreadPool& pool);

// -- Streaming (memory-bounded) bootstrap --------------------------------
//
// At serving scale the per-respondent observations are never
// materialized, so the classic resample-the-data-vector bootstrap above
// cannot run. The streaming path resamples CHUNKS instead: each streamed
// shard reduces its records to one (sum, n) sufficient statistic, and a
// replicate draws `chunks` chunk statistics with replacement. This is a
// cluster (block) bootstrap over the deterministic chunk partition —
// memory O(chunks + replicates) regardless of record count, and it
// converges to the iid bootstrap as the chunk count grows. The interval
// is a pure function of (chunk stats, replicates, confidence, seed):
// bit-identical at every thread count, but — like any block bootstrap —
// a function of the chunk partition itself.

/// One streamed chunk's sufficient statistic for a mean. The observations
/// in the survey pipeline are small integer tallies, so `sum` is exact in
/// binary64 far past any cohort size we handle.
struct ChunkMeanStat {
  double sum = 0.0;
  std::size_t n = 0;
};

/// Mergeable accumulator producing the chunk-ordered ChunkMeanStat list
/// for stream_accumulate: each chunk's accumulator holds one open stat;
/// merging closes and concatenates them in merge order, so the
/// chunk-ordered tree merge yields the stats in chunk order.
class ChunkStatAccumulator {
 public:
  void add(double value) noexcept {
    open_.sum += value;
    ++open_.n;
  }
  void merge(ChunkStatAccumulator&& other);
  /// Closed stats in chunk order (plus the open stat, if any).
  std::vector<ChunkMeanStat> finish() const;

 private:
  std::vector<ChunkMeanStat> closed_;
  ChunkMeanStat open_;
};

/// Percentile bootstrap CI for the mean from chunk statistics. Requires
/// at least one nonempty chunk, replicates >= 100, confidence in (0, 1).
/// Replicate r draws from shard_seed(seed, r) exactly like the sharded
/// overload above.
BootstrapInterval bootstrap_mean_from_chunks(
    std::span<const ChunkMeanStat> chunks, std::size_t replicates,
    double confidence, std::uint64_t seed, parallel::ThreadPool& pool);

}  // namespace fpq::stats
