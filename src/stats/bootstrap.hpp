// fpq::stats — nonparametric bootstrap confidence intervals.
//
// The paper reports point estimates only; the reproduction attaches
// percentile-bootstrap confidence intervals so EXPERIMENTS.md can state not
// just "measured 8.6 vs paper 8.5" but whether the paper value is inside
// the resampling interval.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "parallel/thread_pool.hpp"
#include "stats/prng.hpp"

namespace fpq::stats {

/// A two-sided confidence interval with its point estimate.
struct BootstrapInterval {
  double estimate = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;  ///< e.g. 0.95
};

/// Statistic evaluated on a resampled dataset.
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap for an arbitrary statistic.
/// Requires non-empty data, replicates >= 100, confidence in (0, 1).
BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, Xoshiro256pp& g);

/// Convenience wrapper: bootstrap CI for the mean.
BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 Xoshiro256pp& g);

/// Sharded percentile bootstrap. Replicate r draws from its own generator
/// seeded with parallel::shard_seed(seed, r), so the result is a pure
/// function of (data, statistic, replicates, confidence, seed) —
/// bit-identical for every thread count, including 1. Note the resampling
/// streams differ from the sequential overload above, which threads one
/// generator through all replicates and therefore cannot be parallelized
/// without changing its answers. The statistic is invoked concurrently
/// and must be a pure function of its input span.
BootstrapInterval bootstrap_interval(std::span<const double> data,
                                     const Statistic& statistic,
                                     std::size_t replicates,
                                     double confidence, std::uint64_t seed,
                                     parallel::ThreadPool& pool);

BootstrapInterval bootstrap_mean(std::span<const double> data,
                                 std::size_t replicates, double confidence,
                                 std::uint64_t seed,
                                 parallel::ThreadPool& pool);

}  // namespace fpq::stats
