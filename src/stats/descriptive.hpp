// fpq::stats — descriptive statistics over contiguous samples.
//
// All functions take std::span<const double> (or integer spans where noted),
// never own memory, and are deterministic. Quantities that are undefined on
// empty input are documented per function; callers are expected to check
// rather than rely on sentinel values.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fpq::stats {

/// Arithmetic mean. Requires non-empty input.
double mean(std::span<const double> xs) noexcept;

/// Unbiased (n-1) sample variance. Requires xs.size() >= 2.
/// Uses Welford's single-pass algorithm for numerical stability.
double sample_variance(std::span<const double> xs) noexcept;

/// sqrt(sample_variance). Requires xs.size() >= 2.
double sample_stddev(std::span<const double> xs) noexcept;

/// Standard error of the mean: stddev / sqrt(n). Requires n >= 2.
double standard_error(std::span<const double> xs) noexcept;

/// Linear-interpolation quantile (type 7, the R/NumPy default).
/// q must be in [0, 1]; requires non-empty input. Copies + sorts.
double quantile(std::span<const double> xs, double q);

/// Median = quantile(xs, 0.5).
double median(std::span<const double> xs);

/// Minimum / maximum. Require non-empty input.
double min_value(std::span<const double> xs) noexcept;
double max_value(std::span<const double> xs) noexcept;

/// Five-number-plus summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< 0 when n < 2
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
};

/// Computes a full Summary. Requires non-empty input.
Summary summarize(std::span<const double> xs);

/// Convenience: mean of integer counts (e.g. quiz scores).
double mean_of_counts(std::span<const int> xs) noexcept;

/// Pearson correlation coefficient. Requires equal sizes >= 2 and
/// non-degenerate variance in both inputs (returns 0 if degenerate).
double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) noexcept;

}  // namespace fpq::stats
