// fpq::bigfloat — arbitrary-precision binary floating point.
//
// The paper's §V calls for exactly this: "A system that would allow code
// written using floating point to be seamlessly compiled to use arbitrary
// precision would enable developers to easily sanity check the behavior
// of their code." BigFloat is that substrate: a correctly rounded
// arbitrary-precision binary float used by fpq::shadow to re-execute
// computations at high precision next to binary64 and measure the damage.
//
// Representation: sign * M * 2^exp with M an arbitrary-precision integer
// (little-endian 64-bit words, top word nonzero). All operations round to
// the Context's precision with the Context's rounding mode, IEEE-style
// (round-to-nearest-even by default). Infinities and NaN follow IEEE
// semantics; there is no underflow (the exponent is a 64-bit integer), so
// BigFloat is a strict superset of every IEEE format's finite behavior
// away from the exponent bounds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "softfloat/env.hpp"

namespace fpq::bigfloat {

/// Precision and rounding for an operation sequence.
struct Context {
  unsigned precision = 256;  ///< significand bits kept after each op
  softfloat::Rounding rounding = softfloat::Rounding::kNearestEven;
};

class BigFloat {
 public:
  /// +0 by default.
  BigFloat() = default;

  // -- Constructors (all exact) -----------------------------------------
  static BigFloat zero(bool negative = false);
  static BigFloat infinity(bool negative = false);
  static BigFloat nan();
  /// Exact conversion from binary64 (every double is representable).
  static BigFloat from_double(double x);
  static BigFloat from_int(std::int64_t v);

  // -- Classification -----------------------------------------------------
  bool is_zero() const noexcept { return kind_ == Kind::kZero; }
  bool is_finite() const noexcept {
    return kind_ == Kind::kZero || kind_ == Kind::kFinite;
  }
  bool is_infinity() const noexcept { return kind_ == Kind::kInf; }
  bool is_nan() const noexcept { return kind_ == Kind::kNaN; }
  bool negative() const noexcept { return negative_; }

  /// Exponent of the most significant bit: value magnitude is in
  /// [2^e, 2^(e+1)). Only meaningful for finite nonzero values.
  std::int64_t msb_exponent() const noexcept;

  /// Number of significant bits in the mantissa (0 for zero).
  std::size_t significant_bits() const noexcept;

  // -- Arithmetic (correctly rounded to ctx.precision) -------------------
  static BigFloat add(const BigFloat& a, const BigFloat& b,
                      const Context& ctx);
  static BigFloat sub(const BigFloat& a, const BigFloat& b,
                      const Context& ctx);
  static BigFloat mul(const BigFloat& a, const BigFloat& b,
                      const Context& ctx);
  static BigFloat div(const BigFloat& a, const BigFloat& b,
                      const Context& ctx);
  static BigFloat sqrt(const BigFloat& a, const Context& ctx);
  static BigFloat fma(const BigFloat& a, const BigFloat& b,
                      const BigFloat& c, const Context& ctx);

  BigFloat negated() const;
  BigFloat abs() const;

  /// Three-way comparison of values: -1, 0, +1; NaN compares as +2
  /// (unordered sentinel).
  static int compare(const BigFloat& a, const BigFloat& b);

  /// Correctly rounded (to nearest even) conversion to binary64,
  /// including overflow to infinity and gradual underflow to subnormals.
  double to_double() const;

  /// Debug rendering: "-1.9999ap+12 (53 bits)" style hex-significand.
  std::string to_string() const;

 private:
  enum class Kind { kZero, kFinite, kInf, kNaN };

  // Rounds mantissa_/exp_ in place to `precision` bits.
  void round_to(unsigned precision, softfloat::Rounding rounding,
                bool extra_sticky);
  void normalize();

  Kind kind_ = Kind::kZero;
  bool negative_ = false;
  std::vector<std::uint64_t> mantissa_;  // little-endian, back() != 0
  std::int64_t exp_ = 0;                 // value = M * 2^exp_
};

/// |approx - exact| / |exact| computed in high precision and returned as a
/// double; 0 when exact==approx; +inf when exact is zero but approx is
/// not; NaN when either input is NaN.
double relative_error(double approx, const BigFloat& exact,
                      const Context& ctx);

}  // namespace fpq::bigfloat
