#include "bigfloat/bigfloat.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace fpq::bigfloat {

namespace {

using Words = std::vector<std::uint64_t>;
using U128 = unsigned __int128;

// ---- little-endian big-integer helpers ------------------------------------

void trim(Words& w) {
  while (!w.empty() && w.back() == 0) w.pop_back();
}

std::size_t bit_length(const Words& w) {
  if (w.empty()) return 0;
  return 64 * (w.size() - 1) +
         (64 - static_cast<std::size_t>(std::countl_zero(w.back())));
}

bool bit_at(const Words& w, std::size_t i) {
  const std::size_t word = i / 64;
  if (word >= w.size()) return false;
  return (w[word] >> (i % 64)) & 1;
}

/// True when any bit strictly below position `i` is set.
bool any_below(const Words& w, std::size_t i) {
  const std::size_t word = i / 64;
  for (std::size_t k = 0; k < std::min(word, w.size()); ++k) {
    if (w[k] != 0) return true;
  }
  if (word < w.size() && i % 64 != 0) {
    return (w[word] & ((std::uint64_t{1} << (i % 64)) - 1)) != 0;
  }
  return false;
}

Words shift_left(const Words& w, std::size_t bits) {
  if (w.empty() || bits == 0) return w;
  const std::size_t words = bits / 64;
  const std::size_t rem = bits % 64;
  Words out(w.size() + words + 1, 0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    out[i + words] |= rem == 0 ? w[i] : (w[i] << rem);
    if (rem != 0) out[i + words + 1] |= w[i] >> (64 - rem);
  }
  trim(out);
  return out;
}

/// Logical right shift, discarding low bits (caller tracks sticky).
Words shift_right(const Words& w, std::size_t bits) {
  const std::size_t words = bits / 64;
  if (words >= w.size()) return {};
  const std::size_t rem = bits % 64;
  Words out(w.size() - words, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = w[i + words] >> rem;
    if (rem != 0 && i + words + 1 < w.size()) {
      out[i] |= w[i + words + 1] << (64 - rem);
    }
  }
  trim(out);
  return out;
}

int compare_words(const Words& a, const Words& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Words add_words(const Words& a, const Words& b) {
  Words out(std::max(a.size(), b.size()) + 1, 0);
  U128 carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    U128 sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  trim(out);
  return out;
}

/// a - b; requires a >= b.
Words sub_words(const Words& a, const Words& b) {
  Words out(a.size(), 0);
  std::uint64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint64_t bi = i < b.size() ? b[i] : 0;
    const std::uint64_t ai = a[i];
    const std::uint64_t d1 = ai - bi;
    const std::uint64_t b1 = ai < bi ? 1u : 0u;
    const std::uint64_t d2 = d1 - borrow;
    const std::uint64_t b2 = d1 < borrow ? 1u : 0u;
    out[i] = d2;
    borrow = b1 | b2;
  }
  assert(borrow == 0 && "sub_words requires a >= b");
  trim(out);
  return out;
}

Words add_small(Words w, std::uint64_t v) {
  U128 carry = v;
  for (std::size_t i = 0; i < w.size() && carry != 0; ++i) {
    const U128 sum = carry + w[i];
    w[i] = static_cast<std::uint64_t>(sum);
    carry = sum >> 64;
  }
  if (carry != 0) w.push_back(static_cast<std::uint64_t>(carry));
  return w;
}

Words mul_words(const Words& a, const Words& b) {
  if (a.empty() || b.empty()) return {};
  Words out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    U128 carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      U128 cur = out[i + j] + static_cast<U128>(a[i]) * b[j] + carry;
      out[i + j] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
    }
    std::size_t k = i + b.size();
    while (carry != 0) {
      const U128 cur = out[k] + carry;
      out[k] = static_cast<std::uint64_t>(cur);
      carry = cur >> 64;
      ++k;
    }
  }
  trim(out);
  return out;
}

}  // namespace

// ---- construction ----------------------------------------------------------

BigFloat BigFloat::zero(bool negative) {
  BigFloat f;
  f.kind_ = Kind::kZero;
  f.negative_ = negative;
  return f;
}

BigFloat BigFloat::infinity(bool negative) {
  BigFloat f;
  f.kind_ = Kind::kInf;
  f.negative_ = negative;
  return f;
}

BigFloat BigFloat::nan() {
  BigFloat f;
  f.kind_ = Kind::kNaN;
  return f;
}

BigFloat BigFloat::from_double(double x) {
  if (std::isnan(x)) return nan();
  if (std::isinf(x)) return infinity(std::signbit(x));
  if (x == 0.0) return zero(std::signbit(x));
  BigFloat f;
  f.kind_ = Kind::kFinite;
  f.negative_ = std::signbit(x);
  int e = 0;
  // frexp gives |m| in [0.5, 1); scale to a 53-bit integer exactly.
  const double m = std::frexp(std::fabs(x), &e);
  const auto mant = static_cast<std::uint64_t>(std::ldexp(m, 53));
  f.mantissa_ = {mant};
  f.exp_ = static_cast<std::int64_t>(e) - 53;
  f.normalize();
  return f;
}

BigFloat BigFloat::from_int(std::int64_t v) {
  if (v == 0) return zero(false);
  BigFloat f;
  f.kind_ = Kind::kFinite;
  f.negative_ = v < 0;
  const std::uint64_t mag = f.negative_ ? 0 - static_cast<std::uint64_t>(v)
                                        : static_cast<std::uint64_t>(v);
  f.mantissa_ = {mag};
  f.exp_ = 0;
  f.normalize();
  return f;
}

void BigFloat::normalize() {
  trim(mantissa_);
  if (mantissa_.empty()) {
    kind_ = Kind::kZero;
    exp_ = 0;
    return;
  }
  // Strip trailing zero bits into the exponent (canonical form keeps the
  // mantissa odd — makes equality and bit counting cheap).
  std::size_t tz = 0;
  for (std::size_t i = 0; i < mantissa_.size(); ++i) {
    if (mantissa_[i] == 0) {
      tz += 64;
    } else {
      tz += static_cast<std::size_t>(std::countr_zero(mantissa_[i]));
      break;
    }
  }
  if (tz > 0) {
    mantissa_ = shift_right(mantissa_, tz);
    exp_ += static_cast<std::int64_t>(tz);
  }
}

std::int64_t BigFloat::msb_exponent() const noexcept {
  if (kind_ != Kind::kFinite) return 0;
  return exp_ + static_cast<std::int64_t>(bit_length(mantissa_)) - 1;
}

std::size_t BigFloat::significant_bits() const noexcept {
  if (kind_ != Kind::kFinite) return 0;
  return bit_length(mantissa_);
}

void BigFloat::round_to(unsigned precision, softfloat::Rounding rounding,
                        bool extra_sticky) {
  if (kind_ != Kind::kFinite) return;
  const std::size_t len = bit_length(mantissa_);
  if (len <= precision) {
    if (extra_sticky) {
      // Dropped tail below the kept bits: only away-from-zero directed
      // modes care, and the increment must land at the precision'th bit
      // (one ulp at the target precision), so pad first.
      const bool up =
          (rounding == softfloat::Rounding::kUp && !negative_) ||
          (rounding == softfloat::Rounding::kDown && negative_);
      if (up) {
        const std::size_t pad = precision - len;
        mantissa_ = shift_left(mantissa_, pad);
        exp_ -= static_cast<std::int64_t>(pad);
        mantissa_ = add_small(std::move(mantissa_), 1);
        normalize();
      }
    }
    return;
  }
  const std::size_t drop = len - precision;
  const bool round_bit = bit_at(mantissa_, drop - 1);
  const bool sticky = extra_sticky || any_below(mantissa_, drop - 1);
  Words kept = shift_right(mantissa_, drop);
  const bool lsb = !kept.empty() && (kept[0] & 1);
  bool increment = false;
  switch (rounding) {
    case softfloat::Rounding::kNearestEven:
      increment = round_bit && (sticky || lsb);
      break;
    case softfloat::Rounding::kNearestAway:
      increment = round_bit;
      break;
    case softfloat::Rounding::kTowardZero:
      increment = false;
      break;
    case softfloat::Rounding::kUp:
      increment = !negative_ && (round_bit || sticky);
      break;
    case softfloat::Rounding::kDown:
      increment = negative_ && (round_bit || sticky);
      break;
  }
  if (increment) kept = add_small(std::move(kept), 1);
  mantissa_ = std::move(kept);
  exp_ += static_cast<std::int64_t>(drop);
  normalize();
}

// ---- arithmetic ------------------------------------------------------------

namespace {

// Magnitude comparison of finite nonzero BigFloats via (msb exponent,
// aligned mantissa).
int compare_magnitude(std::int64_t ea, const Words& ma, std::int64_t base_a,
                      std::int64_t eb, const Words& mb,
                      std::int64_t base_b) {
  (void)base_a;
  (void)base_b;
  if (ea != eb) return ea < eb ? -1 : 1;
  // Same MSB exponent: compare bit by bit from the top.
  const std::size_t la = bit_length(ma);
  const std::size_t lb = bit_length(mb);
  const std::size_t n = std::max(la, lb);
  for (std::size_t i = 0; i < n; ++i) {
    const bool ba = i < la && bit_at(ma, la - 1 - i);
    const bool bb = i < lb && bit_at(mb, lb - 1 - i);
    if (ba != bb) return ba ? 1 : -1;
  }
  return 0;
}

}  // namespace

BigFloat BigFloat::add(const BigFloat& a, const BigFloat& b,
                       const Context& ctx) {
  if (a.is_nan() || b.is_nan()) return nan();
  if (a.is_infinity() || b.is_infinity()) {
    if (a.is_infinity() && b.is_infinity()) {
      if (a.negative_ != b.negative_) return nan();  // inf - inf
      return a;
    }
    return a.is_infinity() ? a : b;
  }
  if (a.is_zero() && b.is_zero()) {
    if (a.negative_ == b.negative_) return a;
    return zero(ctx.rounding == softfloat::Rounding::kDown);
  }
  if (a.is_zero()) {
    BigFloat r = b;
    r.round_to(ctx.precision, ctx.rounding, false);
    return r;
  }
  if (b.is_zero()) {
    BigFloat r = a;
    r.round_to(ctx.precision, ctx.rounding, false);
    return r;
  }

  // Alignment guard: beyond precision + 64 bits of exponent gap the
  // smaller operand is pure sticky.
  const std::int64_t msb_a = a.msb_exponent();
  const std::int64_t msb_b = b.msb_exponent();
  const bool a_bigger_mag =
      compare_magnitude(msb_a, a.mantissa_, 0, msb_b, b.mantissa_, 0) >= 0;
  const BigFloat& big = a_bigger_mag ? a : b;
  const BigFloat& small = a_bigger_mag ? b : a;
  const std::int64_t gap = big.msb_exponent() - small.msb_exponent();
  const auto limit = static_cast<std::int64_t>(ctx.precision) + 64;

  BigFloat r;
  r.kind_ = Kind::kFinite;
  r.negative_ = big.negative_;

  if (gap > limit) {
    // small contributes only sticky (and, for subtraction, a borrow of
    // less than one ulp of the guard band).
    const bool subtract = a.negative_ != b.negative_;
    Words m = shift_left(big.mantissa_, 4);  // 4 guard bits
    std::int64_t e = big.exp_ - 4;
    if (subtract) m = sub_words(m, {1});
    r.mantissa_ = std::move(m);
    r.exp_ = e;
    r.round_to(ctx.precision, ctx.rounding, true);
    return r;
  }

  // Exact alignment: bring both mantissas to the smaller exp_ scale.
  const std::int64_t common_exp = std::min(a.exp_, b.exp_);
  Words ma = shift_left(a.mantissa_,
                        static_cast<std::size_t>(a.exp_ - common_exp));
  Words mb = shift_left(b.mantissa_,
                        static_cast<std::size_t>(b.exp_ - common_exp));
  if (a.negative_ == b.negative_) {
    r.mantissa_ = add_words(ma, mb);
    r.negative_ = a.negative_;
  } else {
    const int cmp = compare_words(ma, mb);
    if (cmp == 0) {
      return zero(ctx.rounding == softfloat::Rounding::kDown);
    }
    if (cmp > 0) {
      r.mantissa_ = sub_words(ma, mb);
      r.negative_ = a.negative_;
    } else {
      r.mantissa_ = sub_words(mb, ma);
      r.negative_ = b.negative_;
    }
  }
  r.exp_ = common_exp;
  r.normalize();
  if (r.mantissa_.empty()) {
    return zero(ctx.rounding == softfloat::Rounding::kDown);
  }
  r.round_to(ctx.precision, ctx.rounding, false);
  return r;
}

BigFloat BigFloat::sub(const BigFloat& a, const BigFloat& b,
                       const Context& ctx) {
  return add(a, b.negated(), ctx);
}

BigFloat BigFloat::mul(const BigFloat& a, const BigFloat& b,
                       const Context& ctx) {
  if (a.is_nan() || b.is_nan()) return nan();
  const bool sign = a.negative_ != b.negative_;
  if (a.is_infinity() || b.is_infinity()) {
    if (a.is_zero() || b.is_zero()) return nan();  // 0 * inf
    return infinity(sign);
  }
  if (a.is_zero() || b.is_zero()) return zero(sign);
  BigFloat r;
  r.kind_ = Kind::kFinite;
  r.negative_ = sign;
  r.mantissa_ = mul_words(a.mantissa_, b.mantissa_);
  r.exp_ = a.exp_ + b.exp_;
  r.normalize();
  r.round_to(ctx.precision, ctx.rounding, false);
  return r;
}

BigFloat BigFloat::div(const BigFloat& a, const BigFloat& b,
                       const Context& ctx) {
  if (a.is_nan() || b.is_nan()) return nan();
  const bool sign = a.negative_ != b.negative_;
  if (a.is_infinity()) {
    if (b.is_infinity()) return nan();
    return infinity(sign);
  }
  if (b.is_infinity()) return zero(sign);
  if (b.is_zero()) {
    if (a.is_zero()) return nan();
    return infinity(sign);
  }
  if (a.is_zero()) return zero(sign);

  // Long division producing precision+2 quotient bits plus sticky.
  const auto want = static_cast<std::size_t>(ctx.precision) + 2;
  // Scale numerator so the first quotient bit appears near the top:
  // shift A so that msb(A') >= msb(B) + want.
  const std::int64_t msb_a = static_cast<std::int64_t>(bit_length(a.mantissa_));
  const std::int64_t msb_b = static_cast<std::int64_t>(bit_length(b.mantissa_));
  const std::int64_t pre_shift =
      std::max<std::int64_t>(0, msb_b + static_cast<std::int64_t>(want) -
                                    msb_a);
  Words rem = shift_left(a.mantissa_, static_cast<std::size_t>(pre_shift));
  const Words& divisor = b.mantissa_;

  // Quotient accumulates as a big integer via shift-and-subtract from the
  // highest feasible bit position downward.
  std::int64_t qbit = static_cast<std::int64_t>(bit_length(rem)) -
                      static_cast<std::int64_t>(bit_length(divisor));
  Words quotient;
  while (qbit >= 0) {
    const Words shifted = shift_left(divisor, static_cast<std::size_t>(qbit));
    if (compare_words(rem, shifted) >= 0) {
      rem = sub_words(rem, shifted);
      // set bit qbit of quotient
      const auto word = static_cast<std::size_t>(qbit) / 64;
      if (quotient.size() <= word) quotient.resize(word + 1, 0);
      quotient[word] |= std::uint64_t{1}
                        << (static_cast<std::size_t>(qbit) % 64);
    }
    --qbit;
    if (rem.empty()) break;
  }
  trim(quotient);
  const bool sticky = !rem.empty();

  BigFloat r;
  r.kind_ = Kind::kFinite;
  r.negative_ = sign;
  r.mantissa_ = std::move(quotient);
  // a / b = (A * 2^ea) / (B * 2^eb); we computed floor((A<<s)/B) with the
  // bits below qbit_min truncated. Quotient scale: 2^(ea - eb - s + k)
  // where k is the lowest quotient bit computed (qbit+1 after the loop).
  r.exp_ = a.exp_ - b.exp_ - pre_shift;
  r.normalize();
  if (r.mantissa_.empty()) return zero(sign);
  r.round_to(ctx.precision, ctx.rounding, sticky);
  return r;
}

BigFloat BigFloat::sqrt(const BigFloat& a, const Context& ctx) {
  if (a.is_nan()) return nan();
  if (a.is_zero()) return a;
  if (a.negative_) return nan();
  if (a.is_infinity()) return a;

  // Work on R = M * 2^(exp adjusted to even); digit-by-digit square root
  // producing precision+2 bits.
  const auto want = static_cast<std::size_t>(ctx.precision) + 2;
  // Scale so bit_length(radicand) ~ 2*want and exponent even.
  std::int64_t e = a.exp_;
  Words radicand = a.mantissa_;
  const std::size_t len = bit_length(radicand);
  std::int64_t scale =
      2 * static_cast<std::int64_t>(want) - static_cast<std::int64_t>(len);
  if (scale < 0) scale = 0;
  if ((e - scale) % 2 != 0) ++scale;
  radicand = shift_left(radicand, static_cast<std::size_t>(scale));
  e -= scale;
  // Now compute integer sqrt of `radicand` bit by bit.
  const std::size_t rlen = bit_length(radicand);
  std::int64_t bit = static_cast<std::int64_t>((rlen + 1) / 2);
  Words root;
  Words rem = radicand;
  while (bit >= 0) {
    // trial = (root << (bit+1)) + (1 << 2bit)
    Words trial = shift_left(root, static_cast<std::size_t>(bit) + 1);
    Words one_bit;
    {
      const auto pos = static_cast<std::size_t>(2 * bit);
      one_bit.resize(pos / 64 + 1, 0);
      one_bit[pos / 64] = std::uint64_t{1} << (pos % 64);
    }
    trial = add_words(trial, one_bit);
    if (compare_words(rem, trial) >= 0) {
      rem = sub_words(rem, trial);
      const auto pos = static_cast<std::size_t>(bit);
      if (root.size() <= pos / 64) root.resize(pos / 64 + 1, 0);
      root[pos / 64] |= std::uint64_t{1} << (pos % 64);
    }
    --bit;
  }
  trim(root);
  BigFloat r;
  r.kind_ = Kind::kFinite;
  r.negative_ = false;
  r.mantissa_ = std::move(root);
  r.exp_ = e / 2;
  r.normalize();
  if (r.mantissa_.empty()) return zero(false);
  r.round_to(ctx.precision, ctx.rounding, !rem.empty());
  return r;
}

BigFloat BigFloat::fma(const BigFloat& a, const BigFloat& b,
                       const BigFloat& c, const Context& ctx) {
  // Exact product (unbounded precision), then one rounded add.
  Context exact = ctx;
  exact.precision = static_cast<unsigned>(a.significant_bits() +
                                          b.significant_bits() + 4);
  if (exact.precision < ctx.precision) exact.precision = ctx.precision;
  const BigFloat product = mul(a, b, exact);
  if (product.is_nan()) return nan();
  return add(product, c, ctx);
}

BigFloat BigFloat::negated() const {
  BigFloat r = *this;
  if (!r.is_nan()) r.negative_ = !r.negative_;
  return r;
}

BigFloat BigFloat::abs() const {
  BigFloat r = *this;
  if (!r.is_nan()) r.negative_ = false;
  return r;
}

int BigFloat::compare(const BigFloat& a, const BigFloat& b) {
  if (a.is_nan() || b.is_nan()) return 2;
  if (a.is_zero() && b.is_zero()) return 0;
  // Sign classes (zero sorts with its sign only vs nonzero values).
  const int sa = a.is_zero() ? 0 : (a.negative_ ? -1 : 1);
  const int sb = b.is_zero() ? 0 : (b.negative_ ? -1 : 1);
  if (sa != sb) return sa < sb ? -1 : 1;
  if (sa == 0) return 0;
  const int mag = compare_magnitude(a.msb_exponent(), a.mantissa_, 0,
                                    b.msb_exponent(), b.mantissa_, 0);
  return sa > 0 ? mag : -mag;
}

double BigFloat::to_double() const {
  switch (kind_) {
    case Kind::kZero:
      return negative_ ? -0.0 : 0.0;
    case Kind::kInf:
      return negative_ ? -std::numeric_limits<double>::infinity()
                       : std::numeric_limits<double>::infinity();
    case Kind::kNaN:
      return std::numeric_limits<double>::quiet_NaN();
    case Kind::kFinite:
      break;
  }
  const std::int64_t msb = msb_exponent();
  if (msb > 1024) {
    return negative_ ? -std::numeric_limits<double>::infinity()
                     : std::numeric_limits<double>::infinity();
  }
  // Precision available at this magnitude (53 normal; fewer when
  // subnormal; none below the subnormal range).
  std::int64_t prec = 53;
  if (msb < -1022) prec = msb + 1075;  // subnormal staircase
  if (prec <= 0) {
    // Magnitude in (0, 2^-1074): the candidates are 0 and the smallest
    // subnormal, with the midpoint at exactly 2^-1075. Strictly above the
    // midpoint rounds to the subnormal; the midpoint itself ties to even
    // (zero); below rounds to zero.
    const double tiny = 4.9406564584124654e-324;
    if (prec == 0 && significant_bits() > 1) {
      // msb == -1075 with more than one significant bit: > midpoint.
      return negative_ ? -tiny : tiny;
    }
    return negative_ ? -0.0 : 0.0;
  }
  BigFloat copy = *this;
  copy.round_to(static_cast<unsigned>(prec),
                softfloat::Rounding::kNearestEven, false);
  // Rounding may have bumped the exponent (and with it the precision
  // class); a single re-round is stable.
  const std::int64_t msb2 = copy.msb_exponent();
  if (msb2 > 1024) {
    return negative_ ? -std::numeric_limits<double>::infinity()
                     : std::numeric_limits<double>::infinity();
  }
  // Assemble: take the mantissa as (at most 53-bit) integer * 2^exp.
  const std::size_t len = bit_length(copy.mantissa_);
  assert(len <= 53);
  std::uint64_t mant = copy.mantissa_.empty() ? 0 : copy.mantissa_[0];
  (void)len;
  const double mag =
      std::ldexp(static_cast<double>(mant), static_cast<int>(copy.exp_));
  return negative_ ? -mag : mag;
}

std::string BigFloat::to_string() const {
  switch (kind_) {
    case Kind::kZero:
      return negative_ ? "-0" : "+0";
    case Kind::kInf:
      return negative_ ? "-inf" : "+inf";
    case Kind::kNaN:
      return "nan";
    case Kind::kFinite:
      break;
  }
  char buf[96];
  const double approx = to_double();
  std::snprintf(buf, sizeof buf, "%.17g (%zu bits, 2^%lld scale)", approx,
                significant_bits(), static_cast<long long>(exp_));
  return buf;
}

double relative_error(double approx, const BigFloat& exact,
                      const Context& ctx) {
  if (std::isnan(approx) || exact.is_nan()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (exact.is_zero()) {
    return approx == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  if (std::isinf(approx) || exact.is_infinity()) {
    const bool same = std::isinf(approx) && exact.is_infinity() &&
                      std::signbit(approx) == exact.negative();
    return same ? 0.0 : std::numeric_limits<double>::infinity();
  }
  const BigFloat diff =
      BigFloat::sub(BigFloat::from_double(approx), exact, ctx);
  const BigFloat rel = BigFloat::div(diff.abs(), exact.abs(), ctx);
  return rel.to_double();
}

}  // namespace fpq::bigfloat
