// fpq::parallel — the streaming-accumulation shard driver.
//
// stream_accumulate() is the serving-scale counterpart of
// parallel_map_chunks: instead of materializing an input vector and a
// partial-result vector, each chunk builds its OWN accumulator, feeds it
// from any source (a record generator, a span, a file reader), and the
// partials are combined on the caller's thread by a fixed-shape,
// chunk-ordered binary merge tree. Memory is O(chunks · accumulator),
// independent of the item count.
//
// Determinism contract (the same rules as shard.hpp, restated for
// accumulators — docs/survey.md spells out the survey instantiation):
//
//   1. The chunk partition depends only on (total, chunks) — never on the
//      thread count or schedule (chunk_range).
//   2. fill(acc, begin, end) must be a pure function of the item range:
//      any seeding inside uses the item INDEX, never the claiming thread.
//   3. merge() combines in a fixed-shape binary tree over chunk order
//      (identical association pattern to tree_reduce), so the combined
//      result is a pure function of the chunk partition. Accumulators
//      whose merge is fully associative and commutative (all the integer
//      tally accumulators in fpq::survey) are additionally bit-identical
//      to the serial add-one-at-a-time fold for EVERY chunk count.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "parallel/shard.hpp"
#include "parallel/thread_pool.hpp"

namespace fpq::parallel {

namespace detail {

/// Chunk-ordered fixed-shape tree merge: the split point depends only on
/// the partial count, exactly like tree_reduce, but consumes the partials
/// by move through Acc::merge(Acc&&).
template <typename Acc>
Acc merge_ordered(std::vector<std::optional<Acc>>& parts, std::size_t lo,
                  std::size_t hi) {
  if (hi - lo == 1) return *std::move(parts[lo]);
  const std::size_t mid = lo + (hi - lo) / 2;
  Acc lhs = merge_ordered(parts, lo, mid);
  Acc rhs = merge_ordered(parts, mid, hi);
  lhs.merge(std::move(rhs));
  return lhs;
}

}  // namespace detail

/// Streams `total` items through per-chunk accumulators and merges them in
/// chunk order. `make_acc()` produces an identity-element accumulator
/// (called once per chunk, plus once for the empty input); `fill(acc,
/// begin, end)` feeds items [begin, end) into one chunk's accumulator via
/// acc.add(...). Returns the merged accumulator (call .finish() on it for
/// the result struct).
template <typename MakeAcc, typename FillChunk>
auto stream_accumulate(ThreadPool& pool, std::size_t total,
                       std::size_t chunks, const MakeAcc& make_acc,
                       const FillChunk& fill)
    -> std::remove_cvref_t<std::invoke_result_t<const MakeAcc&>> {
  using Acc = std::remove_cvref_t<std::invoke_result_t<const MakeAcc&>>;
  if (total == 0) return make_acc();
  if (chunks == 0) chunks = 1;
  if (chunks > total) chunks = total;

  std::vector<std::optional<Acc>> parts(chunks);
  pool.run_shards(chunks, [&](std::size_t chunk) {
    Acc acc = make_acc();
    const ChunkRange r = chunk_range(total, chunks, chunk);
    fill(acc, r.begin, r.end);
    parts[chunk].emplace(std::move(acc));
  });
  return detail::merge_ordered(parts, 0, chunks);
}

/// Span convenience: the "source" is an already-materialized span and
/// fill is acc.add(items[i]). This is what the survey analysis pooled
/// overloads run on.
template <typename T, typename MakeAcc>
auto accumulate_span(ThreadPool& pool, std::span<const T> items,
                     std::size_t chunks, const MakeAcc& make_acc) {
  return stream_accumulate(
      pool, items.size(), chunks, make_acc,
      [&items](auto& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) acc.add(items[i]);
      });
}

}  // namespace fpq::parallel
