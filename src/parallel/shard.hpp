// fpq::parallel — sharding and deterministic-reduction helpers.
//
// The rules that make every parallel workload in fpqual bit-identical to
// its single-threaded run (docs/parallel.md spells them out):
//
//   1. Decompose into shards whose COUNT and CONTENT depend only on the
//      input, never on the lane count or schedule.
//   2. Give each stochastic shard its own generator seeded with
//      shard_seed(base, shard) — no generator is ever shared or threaded
//      through shards in claim order.
//   3. Each shard writes only its own output slot.
//   4. Reduce the slot vector on the caller's thread in fixed shard order
//      (tree_reduce for FP, plain loops for integers). No atomics on
//      floating-point accumulators, ever.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace fpq::parallel {

/// Deterministic per-shard seed derived from a base seed. Uses the same
/// splitmix64 finalizer as fpq::stats (reimplemented here so the parallel
/// substrate stays dependency-free): statistically independent streams for
/// adjacent shard indices, stable across platforms and thread counts.
std::uint64_t shard_seed(std::uint64_t base_seed,
                         std::uint64_t shard_index) noexcept;

/// Half-open index range of chunk `chunk` when `total` items are split
/// into `chunks` near-equal contiguous pieces (the same partition
/// ThreadPool uses for its lane blocks).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const noexcept { return end - begin; }
};
ChunkRange chunk_range(std::size_t total, std::size_t chunks,
                       std::size_t chunk) noexcept;

/// A chunk count that gives every lane a few chunks to steal while
/// keeping at least `min_per_chunk` items per chunk.
std::size_t recommended_chunks(const ThreadPool& pool, std::size_t total,
                               std::size_t min_per_chunk = 1) noexcept;

/// Maps fn over [0, count) into an index-ordered vector; shard i writes
/// slot i only, so the result is independent of the schedule.
template <typename Fn>
auto parallel_map(ThreadPool& pool, std::size_t count, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{}))> {
  std::vector<decltype(fn(std::size_t{}))> out(count);
  pool.run_shards(count,
                  [&](std::size_t shard) { out[shard] = fn(shard); });
  return out;
}

/// Chunked variant: fn(chunk, begin, end) produces one partial result per
/// contiguous item range. Use when per-item task overhead would dominate.
/// A void-returning fn runs for its side effects only (each chunk must
/// still write only its own slots of any shared output).
template <typename Fn>
auto parallel_map_chunks(ThreadPool& pool, std::size_t total,
                         std::size_t chunks, Fn&& fn) {
  using Result = decltype(fn(std::size_t{}, std::size_t{}, std::size_t{}));
  if constexpr (std::is_void_v<Result>) {
    pool.run_shards(chunks, [&](std::size_t chunk) {
      const ChunkRange r = chunk_range(total, chunks, chunk);
      fn(chunk, r.begin, r.end);
    });
  } else {
    std::vector<Result> out(chunks);
    pool.run_shards(chunks, [&](std::size_t chunk) {
      const ChunkRange r = chunk_range(total, chunks, chunk);
      out[chunk] = fn(chunk, r.begin, r.end);
    });
    return out;
  }
}

/// Fixed-order balanced tree reduction: combine(combine(x0, x1),
/// combine(x2, x3)) ... exactly the association pattern of
/// stats::pairwise_sum, applied to already-materialized, index-ordered
/// partials. The tree shape depends only on xs.size(), so the result is
/// bit-identical for every thread count.
template <typename T, typename Combine>
T tree_reduce(std::span<const T> xs, T identity, Combine&& combine) {
  struct Rec {
    static T go(std::span<const T> s, Combine& c) {
      if (s.size() == 1) return s[0];
      if (s.size() == 2) return c(s[0], s[1]);
      const std::size_t mid = s.size() / 2;
      T lhs = go(s.first(mid), c);
      T rhs = go(s.subspan(mid), c);
      return c(lhs, rhs);
    }
  };
  if (xs.empty()) return identity;
  return Rec::go(xs, combine);
}

}  // namespace fpq::parallel
