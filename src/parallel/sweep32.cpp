// fpq::parallel::sweep32 — implementation. See sweep32.hpp for the model
// and sweep32_ref.hpp for the per-op reference arguments.

#include "parallel/sweep32.hpp"

#include <algorithm>
#include <cfenv>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <vector>

#include "ir/evaluators.hpp"
#include "ir/expr.hpp"
#include "ir/tape.hpp"
#include "ir/tape_batch.hpp"
#include "parallel/shard.hpp"
#include "parallel/sweep32_ref.hpp"
#include "parallel/sweep_util.hpp"
#include "softfloat/batch.hpp"
#include "softfloat/ops.hpp"

namespace fpq::parallel::sweep32 {

namespace {

using sweep_detail::fenv_mode_of;
using sweep_detail::hw_sqrt;
using sweep_detail::ScopedFenvRounding;
using sweep_detail::Sm64;

/// splitmix64 finalizer — the fingerprint mixer. Shared constants with
/// Sm64 so the whole module has one notion of "hash this word".
std::uint64_t mix64(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Chunk-local fold: order-dependent within the chunk (the chunk's
/// content is deterministic), mixed per value so flag bits and result
/// bits cannot alias.
std::uint64_t fold(std::uint64_t h, std::uint64_t result_bits,
                   unsigned flags) noexcept {
  return mix64(h ^ (result_bits * 0x9E3779B97F4A7C15ULL) ^ flags);
}

/// NaN-tolerant comparison for the native-hardware lane (NaN payload
/// conventions differ across vendors; any NaN matches any NaN — the same
/// policy oracle_sweep uses for its native sweeps).
template <int kBits>
bool same_result(sf::Float<kBits> x, sf::Float<kBits> y) noexcept {
  return (x.is_nan() && y.is_nan()) || x.bits == y.bits;
}

/// One shard's verified outcome.
struct ShardDone {
  std::uint64_t fingerprint = 0;
  std::uint64_t checked = 0;
  std::uint64_t mismatches = 0;
};

/// One chunk's in-flight result (ShardDone plus diagnostics).
struct ChunkStats {
  std::uint64_t fingerprint = 0;
  std::uint64_t checked = 0;
  std::uint64_t mismatches = 0;
  std::vector<std::string> samples;

  void note(std::size_t budget, const std::string& text) {
    ++mismatches;
    if (samples.size() < budget) samples.push_back(text);
  }
};

template <int kBits>
std::string describe_mismatch(const char* lane, sf::Rounding mode,
                              std::uint32_t pattern, sf::Float<kBits> got,
                              sf::Float<kBits> want) {
  std::ostringstream os;
  os << lane << " mode=" << sf::rounding_to_string(mode) << " input="
     << sf::describe(sf::Float32{pattern}) << " got=" << sf::describe(got)
     << " want=" << sf::describe(want);
  return os.str();
}

// -- Manifest ---------------------------------------------------------------

constexpr const char kManifestMagic[] = "fpq-sweep32-manifest v1";

/// The checkpoint manifest: completed-shard map, persisted as a small
/// text file rewritten atomically (tmp + rename). With an empty path it
/// degrades to the in-memory map (same orchestration code path).
class Manifest {
 public:
  Manifest(std::string path, const char* op_name, std::uint64_t identity,
           std::uint64_t total_shards)
      : path_(std::move(path)),
        op_name_(op_name),
        identity_(identity),
        total_shards_(total_shards) {}

  /// Loads an existing manifest file; throws std::runtime_error when it
  /// is malformed or records a different sweep identity. Missing file
  /// (or empty path) starts fresh.
  void load() {
    if (path_.empty()) return;
    std::ifstream in(path_);
    if (!in.is_open()) return;  // fresh sweep
    std::string line;
    if (!std::getline(in, line) || line != kManifestMagic) {
      throw std::runtime_error("sweep32 manifest " + path_ +
                               ": bad magic line");
    }
    std::string key;
    bool identity_ok = false;
    bool shards_ok = false;
    while (in >> key) {
      if (key == "op") {
        std::string name;
        in >> name;  // informational; identity covers the op
      } else if (key == "identity") {
        std::uint64_t id = 0;
        if (!(in >> std::hex >> id >> std::dec)) break;
        if (id != identity_) {
          throw std::runtime_error(
              "sweep32 manifest " + path_ +
              ": identity mismatch (different op/modes/range/chunking); "
              "refusing to resume");
        }
        identity_ok = true;
      } else if (key == "shards") {
        std::uint64_t n = 0;
        if (!(in >> n)) break;
        if (n != total_shards_) {
          throw std::runtime_error("sweep32 manifest " + path_ +
                                   ": shard-grid size mismatch");
        }
        shards_ok = true;
      } else if (key == "done") {
        std::uint64_t shard = 0;
        ShardDone d;
        if (!(in >> shard >> std::hex >> d.fingerprint >> std::dec >>
              d.checked >> d.mismatches)) {
          throw std::runtime_error("sweep32 manifest " + path_ +
                                   ": truncated done record");
        }
        if (shard >= total_shards_) {
          throw std::runtime_error("sweep32 manifest " + path_ +
                                   ": shard index out of range");
        }
        done_[shard] = d;
      } else {
        throw std::runtime_error("sweep32 manifest " + path_ +
                                 ": unknown record '" + key + "'");
      }
    }
    if (!identity_ok || !shards_ok) {
      throw std::runtime_error("sweep32 manifest " + path_ +
                               ": missing identity/shards header");
    }
  }

  bool has(std::uint64_t shard) const { return done_.count(shard) != 0; }
  void record(std::uint64_t shard, const ShardDone& d) { done_[shard] = d; }
  const std::map<std::uint64_t, ShardDone>& done() const { return done_; }

  /// Atomic rewrite: the manifest is either the old complete file or the
  /// new complete file, never a torn mix.
  void write() const {
    if (path_.empty()) return;
    const std::string tmp = path_ + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out.is_open()) {
        throw std::runtime_error("sweep32 manifest: cannot write " + tmp);
      }
      out << kManifestMagic << "\n";
      out << "op " << op_name_ << "\n";
      out << "identity " << std::hex << identity_ << std::dec << "\n";
      out << "shards " << total_shards_ << "\n";
      for (const auto& [shard, d] : done_) {
        out << "done " << shard << " " << std::hex << d.fingerprint
            << std::dec << " " << d.checked << " " << d.mismatches << "\n";
      }
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      throw std::runtime_error("sweep32 manifest: rename to " + path_ +
                               " failed");
    }
  }

 private:
  std::string path_;
  const char* op_name_;
  std::uint64_t identity_;
  std::uint64_t total_shards_;
  std::map<std::uint64_t, ShardDone> done_;
};

// -- Chunk bodies -----------------------------------------------------------

/// sqrt: soft batch kernel is the canonical lane; raced against the host
/// FPU (fenv-expressible modes) or the double-path reference
/// (roundTiesToAway), and against the tape engines when configured.
ChunkStats run_sqrt_chunk(const Sweep32Config& cfg, sf::Rounding mode,
                          std::uint64_t p0, std::uint64_t p1,
                          const ir::Tape* tape) {
  const std::size_t n = static_cast<std::size_t>(p1 - p0);
  std::vector<sf::Float32> in(n);
  std::vector<sf::Float32> soft(n);
  std::vector<unsigned> flags(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = sf::Float32{static_cast<std::uint32_t>(p0 + i)};
  }
  sf::Env env(mode);
  sf::sqrt_n<32>(in.data(), soft.data(), flags.data(), n, env);

  ChunkStats st;
  st.checked = n;
  for (std::size_t i = 0; i < n; ++i) {
    st.fingerprint = fold(st.fingerprint, soft[i].bits, flags[i]);
  }

  const std::size_t budget = cfg.max_mismatch_reports;
  if (cfg.race_hardware) {
    if (mode == sf::Rounding::kNearestAway) {
      // No fenv equivalent: the reference is the 53-bit hardware root
      // narrowed under ties-to-away (ties provably never arise).
      for (std::size_t i = 0; i < n; ++i) {
        const sf::Float32 want = ref_sqrt(in[i], mode);
        if (soft[i].bits != want.bits) {
          st.note(budget, describe_mismatch("sqrt32/ref", mode, in[i].bits,
                                            soft[i], want));
        }
      }
    } else {
      const ScopedFenvRounding guard(fenv_mode_of(mode));
      for (std::size_t i = 0; i < n; ++i) {
        const auto hw = sf::from_native(
            hw_sqrt<float>(sf::to_native(in[i])));
        if (!same_result(soft[i], hw)) {
          st.note(budget, describe_mismatch("sqrt32/hw", mode, in[i].bits,
                                            soft[i], hw));
        }
      }
    }
  }

  if (cfg.race_tape && tape != nullptr) {
    std::vector<double> rows(n);
    for (std::size_t i = 0; i < n; ++i) {
      rows[i] = sf::to_native(ref_widen64(in[i]));
    }
    std::vector<ir::Outcome> outs(n);
    ir::execute_rows(*tape, rows, 1, outs);
    sf::Env widen_env;
    for (std::size_t i = 0; i < n; ++i) {
      const sf::Float64 want = sf::convert<64, 32>(soft[i], widen_env);
      // The tape narrows its kVar operand quietly (no invalid on sNaN by
      // the evaluators' contract), so flags are compared only for
      // non-NaN inputs; values must agree everywhere.
      const bool flags_ok =
          in[i].is_nan() || outs[i].flags == flags[i];
      if (outs[i].value.bits != want.bits || !flags_ok) {
        std::ostringstream os;
        os << "sqrt32/tape mode=" << sf::rounding_to_string(mode)
           << " input=" << sf::describe(in[i]) << " got="
           << sf::describe(outs[i].value) << " flags="
           << sf::flags_to_string(outs[i].flags) << " want="
           << sf::describe(want) << " flags="
           << sf::flags_to_string(flags[i]);
        st.note(budget, os.str());
      }
      if (cfg.tape_scalar_stride != 0 &&
          i % cfg.tape_scalar_stride == 0) {
        const ir::Outcome o =
            ir::execute(*tape, std::span<const double>(&rows[i], 1));
        const bool sflags_ok =
            in[i].is_nan() || o.flags == flags[i];
        if (o.value.bits != want.bits || !sflags_ok) {
          st.note(budget,
                  describe_mismatch("sqrt32/tape-scalar", mode, in[i].bits,
                                    sf::Float32{0}, soft[i]));
        }
      }
    }
  }
  return st;
}

/// roundToIntegralExact: soft batch kernel vs the host rint/round
/// reference, plus the inexact-iff-changed flag contract.
ChunkStats run_round_int_chunk(const Sweep32Config& cfg, sf::Rounding mode,
                               std::uint64_t p0, std::uint64_t p1) {
  const std::size_t n = static_cast<std::size_t>(p1 - p0);
  std::vector<sf::Float32> in(n);
  std::vector<sf::Float32> soft(n);
  std::vector<unsigned> flags(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = sf::Float32{static_cast<std::uint32_t>(p0 + i)};
  }
  sf::Env env(mode);
  sf::round_int_n<32>(in.data(), soft.data(), flags.data(), n, env);

  ChunkStats st;
  st.checked = n;
  const std::size_t budget = cfg.max_mismatch_reports;
  for (std::size_t i = 0; i < n; ++i) {
    st.fingerprint = fold(st.fingerprint, soft[i].bits, flags[i]);
    if (cfg.race_hardware) {
      const sf::Float32 want = ref_round_to_integral(in[i], mode);
      if (soft[i].bits != want.bits) {
        st.note(budget, describe_mismatch("round_int32/ref", mode,
                                          in[i].bits, soft[i], want));
      }
    }
    if (!in[i].is_nan()) {
      const bool changed = soft[i].bits != in[i].bits;
      const bool inexact = (flags[i] & sf::kFlagInexact) != 0;
      if (changed != inexact) {
        st.note(budget, describe_mismatch("round_int32/inexact-contract",
                                          mode, in[i].bits, soft[i],
                                          in[i]));
      }
    }
  }
  return st;
}

/// Narrowing/widening conversions from binary32: the soft convert_n lanes
/// vs the independent reference for the destination format.
template <int kTo, typename RefFn>
ChunkStats run_convert_from32_chunk(const Sweep32Config& cfg,
                                    const char* lane, sf::Rounding mode,
                                    std::uint64_t p0, std::uint64_t p1,
                                    RefFn ref) {
  const std::size_t n = static_cast<std::size_t>(p1 - p0);
  std::vector<sf::Float32> in(n);
  std::vector<sf::Float<kTo>> soft(n);
  std::vector<unsigned> flags(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = sf::Float32{static_cast<std::uint32_t>(p0 + i)};
  }
  sf::Env env(mode);
  sf::convert_n<kTo, 32>(in.data(), soft.data(), flags.data(), n, env);

  ChunkStats st;
  st.checked = n;
  const std::size_t budget = cfg.max_mismatch_reports;
  for (std::size_t i = 0; i < n; ++i) {
    st.fingerprint =
        fold(st.fingerprint, static_cast<std::uint64_t>(soft[i].bits),
             flags[i]);
    if (cfg.race_hardware) {
      const sf::Float<kTo> want = ref(in[i], mode);
      if (soft[i].bits != want.bits) {
        st.note(budget, describe_mismatch<kTo>(lane, mode, in[i].bits,
                                               soft[i], want));
      }
    }
  }
  return st;
}

/// Widening conversions into binary32 (2^16 spaces): convert_n vs the
/// integer-rebias references. Exact in every mode, but swept per mode
/// anyway — a mode-dependent widening bug is exactly the kind of thing
/// the sweep exists to catch.
template <int kFrom, typename RefFn>
ChunkStats run_convert_to32_chunk(const Sweep32Config& cfg,
                                  const char* lane, sf::Rounding mode,
                                  std::uint64_t p0, std::uint64_t p1,
                                  RefFn ref) {
  const std::size_t n = static_cast<std::size_t>(p1 - p0);
  std::vector<sf::Float<kFrom>> in(n);
  std::vector<sf::Float32> soft(n);
  std::vector<unsigned> flags(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    in[i] = sf::Float<kFrom>{
        static_cast<typename sf::Float<kFrom>::Storage>(p0 + i)};
  }
  sf::Env env(mode);
  sf::convert_n<32, kFrom>(in.data(), soft.data(), flags.data(), n, env);

  ChunkStats st;
  st.checked = n;
  const std::size_t budget = cfg.max_mismatch_reports;
  for (std::size_t i = 0; i < n; ++i) {
    st.fingerprint = fold(st.fingerprint, soft[i].bits, flags[i]);
    if (cfg.race_hardware) {
      const sf::Float32 want = ref(in[i]);
      if (soft[i].bits != want.bits) {
        std::ostringstream os;
        os << lane << " mode=" << sf::rounding_to_string(mode) << " input="
           << sf::describe(in[i]) << " got=" << sf::describe(soft[i])
           << " want=" << sf::describe(want);
        st.note(budget, os.str());
      }
    }
  }
  return st;
}

ChunkStats run_chunk(const Sweep32Config& cfg, sf::Rounding mode,
                     std::uint64_t p0, std::uint64_t p1,
                     const ir::Tape* tape) {
  switch (cfg.op) {
    case UnaryOp32::kSqrt:
      return run_sqrt_chunk(cfg, mode, p0, p1, tape);
    case UnaryOp32::kRoundToIntegral:
      return run_round_int_chunk(cfg, mode, p0, p1);
    case UnaryOp32::kToBinary16:
      return run_convert_from32_chunk<16>(cfg, "convert32to16", mode, p0,
                                          p1, ref_narrow16);
    case UnaryOp32::kToBinary64:
      return run_convert_from32_chunk<64>(
          cfg, "convert32to64", mode, p0, p1,
          [](sf::Float32 a, sf::Rounding) { return ref_widen64(a); });
    case UnaryOp32::kToBFloat16:
      return run_convert_from32_chunk<sf::kBFloat16>(
          cfg, "convert32tobf16", mode, p0, p1, ref_narrow_bf16);
    case UnaryOp32::kFromBinary16:
      return run_convert_to32_chunk<16>(cfg, "convert16to32", mode, p0, p1,
                                        ref_widen_from16);
    case UnaryOp32::kFromBFloat16:
      return run_convert_to32_chunk<sf::kBFloat16>(
          cfg, "convertbf16to32", mode, p0, p1, ref_widen_from_bf16);
  }
  return {};
}

}  // namespace

const char* unary_op32_name(UnaryOp32 op) noexcept {
  switch (op) {
    case UnaryOp32::kSqrt:
      return "sqrt";
    case UnaryOp32::kRoundToIntegral:
      return "round_int";
    case UnaryOp32::kToBinary16:
      return "to_b16";
    case UnaryOp32::kToBinary64:
      return "to_b64";
    case UnaryOp32::kToBFloat16:
      return "to_bf16";
    case UnaryOp32::kFromBinary16:
      return "from_b16";
    case UnaryOp32::kFromBFloat16:
      return "from_bf16";
  }
  return "?";
}

std::uint64_t op_space_size(UnaryOp32 op) noexcept {
  switch (op) {
    case UnaryOp32::kFromBinary16:
    case UnaryOp32::kFromBFloat16:
      return std::uint64_t{1} << 16;
    default:
      return std::uint64_t{1} << 32;
  }
}

std::uint64_t sweep32_identity(const Sweep32Config& config) noexcept {
  const std::uint64_t end =
      config.end != 0 ? config.end : op_space_size(config.op);
  std::uint64_t h = mix64(0x53'57'33'32u);  // "SW32"
  h = mix64(h ^ static_cast<std::uint64_t>(config.op));
  for (const sf::Rounding m : config.modes) {
    h = mix64(h ^ static_cast<std::uint64_t>(m));
  }
  h = mix64(h ^ config.begin);
  h = mix64(h ^ end);
  h = mix64(h ^ static_cast<std::uint64_t>(config.chunk_bits));
  return h;
}

std::uint64_t sweep32_shard_count(const Sweep32Config& config) noexcept {
  const std::uint64_t end =
      config.end != 0 ? config.end : op_space_size(config.op);
  if (end <= config.begin || config.chunk_bits <= 0) return 0;
  const std::uint64_t chunk = std::uint64_t{1} << config.chunk_bits;
  const std::uint64_t chunks = (end - config.begin + chunk - 1) / chunk;
  return chunks * config.modes.size();
}

Sweep32Report run_sweep32(const Sweep32Config& config) {
  const std::uint64_t space = op_space_size(config.op);
  const std::uint64_t end = config.end != 0 ? config.end : space;
  if (config.modes.empty()) {
    throw std::invalid_argument("sweep32: empty mode list");
  }
  if (config.chunk_bits < 1 || config.chunk_bits > 32) {
    throw std::invalid_argument("sweep32: chunk_bits out of range");
  }
  if (config.begin >= end || end > space) {
    throw std::invalid_argument("sweep32: bad pattern range");
  }

  const std::uint64_t chunk = std::uint64_t{1} << config.chunk_bits;
  const std::uint64_t chunks = (end - config.begin + chunk - 1) / chunk;
  const std::uint64_t total = chunks * config.modes.size();

  Manifest manifest(config.manifest_path, unary_op32_name(config.op),
                    sweep32_identity(config), total);
  manifest.load();

  // Pending shards in ascending order; max_shards makes "run the first K
  // still-pending shards" a deterministic slice of the grid.
  std::vector<std::uint64_t> pending;
  for (std::uint64_t s = 0; s < total; ++s) {
    if (!manifest.has(s)) {
      pending.push_back(s);
      if (config.max_shards != 0 && pending.size() >= config.max_shards) {
        break;
      }
    }
  }

  // One sqrt tape per rounding mode (compiled up front; shards share it
  // read-only).
  std::vector<ir::Tape> tapes;
  if (config.op == UnaryOp32::kSqrt && config.race_tape) {
    const ir::Expr e = ir::Expr::sqrt(ir::Expr::variable("x", 0));
    for (const sf::Rounding mode : config.modes) {
      ir::EvalConfig ec;
      ec.format_bits = 32;
      ec.rounding = mode;
      tapes.push_back(ir::Tape::compile(e, ec));
    }
  }

  Sweep32Report report;
  ThreadPool pool(config.threads);
  std::mutex mu;
  std::size_t completions = 0;

  RunOptions options;
  options.deadline = config.deadline;
  const ShardRunReport run = pool.run_shards(
      pending.size(), options,
      [&](std::size_t i, const CancelToken&) {
        const std::uint64_t shard = pending[i];
        const std::uint64_t mode_idx = shard / chunks;
        const std::uint64_t chunk_idx = shard % chunks;
        const std::uint64_t p0 = config.begin + chunk_idx * chunk;
        const std::uint64_t p1 = std::min<std::uint64_t>(end, p0 + chunk);
        const ir::Tape* tape =
            tapes.empty() ? nullptr : &tapes[mode_idx];
        ChunkStats st =
            run_chunk(config, config.modes[mode_idx], p0, p1, tape);

        const std::lock_guard<std::mutex> lock(mu);
        manifest.record(shard,
                        {st.fingerprint, st.checked, st.mismatches});
        report.run_shards += 1;
        report.run_checked += st.checked;
        report.run_mismatches += st.mismatches;
        for (std::string& s : st.samples) {
          if (report.mismatch_samples.size() <
              config.max_mismatch_reports) {
            report.mismatch_samples.push_back(std::move(s));
          }
        }
        if (++completions % config.checkpoint_interval == 0) {
          manifest.write();
        }
      });
  manifest.write();

  if (run.failures.count(FailureKind::kException) > 0) {
    throw ShardFailuresError(run.failures);
  }
  report.deadline_expired = run.deadline_expired;

  report.total_shards = total;
  for (const auto& [shard, d] : manifest.done()) {
    report.done_shards += 1;
    report.checked += d.checked;
    report.mismatches += d.mismatches;
    // Order-independent: XOR of a per-shard mix, invariant under thread
    // count, completion order, and resume splits.
    report.fingerprint ^= mix64(shard ^ mix64(d.fingerprint));
  }
  report.complete = report.done_shards == total;
  return report;
}

// -- Corner-case corpus -----------------------------------------------------

namespace {

void corpus_note(CorpusReport& rep, const std::string& text) {
  ++rep.mismatches;
  if (rep.mismatch_samples.size() < 8) rep.mismatch_samples.push_back(text);
}

template <int kBits>
void corpus_check(CorpusReport& rep, const char* lane, sf::Rounding mode,
                  const std::string& operands, sf::Float<kBits> got,
                  sf::Float<kBits> want) {
  ++rep.checked;
  if (got.bits == want.bits) return;
  std::ostringstream os;
  os << lane << " mode=" << sf::rounding_to_string(mode) << " " << operands
     << " got=" << sf::describe(got) << " want=" << sf::describe(want);
  corpus_note(rep, os.str());
}

std::string one_operand(sf::Float32 a) {
  return "a=" + sf::describe(a);
}
std::string two_operands(sf::Float32 a, sf::Float32 b) {
  return "a=" + sf::describe(a) + " b=" + sf::describe(b);
}
std::string three_operands(sf::Float32 a, sf::Float32 b, sf::Float32 c) {
  return "a=" + sf::describe(a) + " b=" + sf::describe(b) +
         " c=" + sf::describe(c);
}

/// All soft-vs-reference checks for one binary32 operand.
void corpus_unary(CorpusReport& rep, sf::Rounding mode, sf::Float32 a) {
  {
    sf::Env env(mode);
    corpus_check(rep, "sqrt32", mode, one_operand(a), sf::sqrt(a, env),
                 ref_sqrt(a, mode));
  }
  {
    sf::Env env(mode);
    corpus_check(rep, "round_int32", mode, one_operand(a),
                 sf::round_to_integral(a, env),
                 ref_round_to_integral(a, mode));
  }
  {
    sf::Env env(mode);
    corpus_check(rep, "convert32to16", mode, one_operand(a),
                 sf::convert<16, 32>(a, env), ref_narrow16(a, mode));
  }
  {
    sf::Env env(mode);
    corpus_check(rep, "convert32to64", mode, one_operand(a),
                 sf::convert<64, 32>(a, env), ref_widen64(a));
  }
  {
    sf::Env env(mode);
    corpus_check(rep, "convert32tobf16", mode, one_operand(a),
                 sf::convert<sf::kBFloat16, 32>(a, env),
                 ref_narrow_bf16(a, mode));
  }
}

void corpus_div(CorpusReport& rep, sf::Rounding mode, sf::Float32 a,
                sf::Float32 b) {
  sf::Env env(mode);
  corpus_check(rep, "div32", mode, two_operands(a, b), sf::div(a, b, env),
               ref_div(a, b, mode));
}

void corpus_fma(CorpusReport& rep, sf::Rounding mode, sf::Float32 a,
                sf::Float32 b, sf::Float32 c) {
  sf::Env env(mode);
  corpus_check(rep, "fma32", mode, three_operands(a, b, c),
               sf::fma(a, b, c, env), ref_fma(a, b, c, mode));
}

}  // namespace

CorpusReport run_corner_corpus(std::size_t random_cases_per_mode,
                               std::uint64_t seed) {
  CorpusReport rep;

  // Sign-mirrored corpus operands.
  std::vector<sf::Float32> ops;
  for (const std::uint32_t p : corner32_patterns()) {
    ops.push_back(sf::Float32{p});
    ops.push_back(sf::Float32{p | 0x8000'0000u});
  }
  const std::size_t n = ops.size();

  std::size_t cell = 0;
  for (const sf::Rounding mode : kAllRoundings) {
    for (std::size_t i = 0; i < n; ++i) corpus_unary(rep, mode, ops[i]);

    // The full 2^16 widening spaces: cheap enough to sweep entirely even
    // in the "fast" corpus test.
    for (std::uint32_t p = 0; p < (1u << 16); ++p) {
      {
        const sf::Float16 a{static_cast<std::uint16_t>(p)};
        sf::Env env(mode);
        const sf::Float32 got = sf::convert<32, 16>(a, env);
        const sf::Float32 want = ref_widen_from16(a);
        ++rep.checked;
        if (got.bits != want.bits) {
          corpus_note(rep, "convert16to32 mode=" +
                               sf::rounding_to_string(mode) + " a=" +
                               sf::describe(a) + " got=" +
                               sf::describe(got) + " want=" +
                               sf::describe(want));
        }
      }
      {
        const sf::BFloat16 a{static_cast<std::uint16_t>(p)};
        sf::Env env(mode);
        const sf::Float32 got = sf::convert<32, sf::kBFloat16>(a, env);
        const sf::Float32 want = ref_widen_from_bf16(a);
        ++rep.checked;
        if (got.bits != want.bits) {
          corpus_note(rep, "convertbf16to32 mode=" +
                               sf::rounding_to_string(mode) + " a=" +
                               sf::describe(a) + " got=" +
                               sf::describe(got) + " want=" +
                               sf::describe(want));
        }
      }
    }

    // Binary/ternary ops: every pair; fma addends pivot deterministically
    // through the corpus so every operand appears in the c slot.
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        corpus_div(rep, mode, ops[i], ops[j]);
        corpus_fma(rep, mode, ops[i], ops[j],
                   ops[(7 * i + 13 * j) % n]);
        corpus_fma(rep, mode, ops[i], ops[j],
                   ops[(31 * i + 3 * j + 5) % n]);
      }
    }

    // ULP-stratified random operands, deterministic per (mode) cell.
    Sm64 g(shard_seed(seed, cell++));
    for (std::size_t k = 0; k < random_cases_per_mode; ++k) {
      const sf::Float32 a{ulp_stratified_pattern(g)};
      const sf::Float32 b{ulp_stratified_pattern(g)};
      const sf::Float32 c{ulp_stratified_pattern(g)};
      corpus_unary(rep, mode, a);
      corpus_div(rep, mode, a, b);
      corpus_fma(rep, mode, a, b, c);
    }
  }
  return rep;
}

}  // namespace fpq::parallel::sweep32
