// fpq::parallel — a fork/join work-stealing thread pool.
//
// The pool exists for one job shape: "run body(shard) exactly once for
// every shard in [0, N), as fast as the hardware allows, with results that
// are bit-identical to a single-threaded run".  Determinism is achieved by
// construction, not by luck:
//
//   * every shard index is claimed by exactly one lane (atomic cursors),
//   * shard bodies write only to their own slot of a pre-sized output,
//   * reductions happen on the caller's thread afterwards, in fixed shard
//     order (see shard.hpp's tree_reduce) — never via shared FP
//     accumulators or atomics on floating point.
//
// Scheduling is work-stealing at the shard level: run_shards() splits the
// index space into one contiguous block per lane; each lane drains its own
// block first and then steals remaining indices from other lanes' blocks,
// so an unlucky lane stuck on expensive shards never leaves the rest of
// the machine idle.  The calling thread participates as lane 0, which
// makes ThreadPool(1) a zero-thread, purely inline executor — the
// determinism baseline the tests compare against.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace fpq::parallel {

class ThreadPool {
 public:
  /// A pool with `threads` execution lanes. The calling thread of
  /// run_shards() is always one of the lanes, so `threads == 1` spawns no
  /// background workers at all and `threads == 0` picks
  /// default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (background workers + the calling thread).
  std::size_t lanes() const noexcept;

  /// Invokes body(shard) exactly once for every shard in [0, shard_count),
  /// distributed across the lanes, and blocks until every shard has
  /// finished. The calling thread participates. The first exception thrown
  /// by a shard body is rethrown here (remaining shards still run, so the
  /// index space is always fully consumed). Not reentrant: shard bodies
  /// must not call run_shards on the same pool.
  void run_shards(std::size_t shard_count,
                  const std::function<void(std::size_t)>& body);

  /// Hardware concurrency with a sane floor of 1.
  static std::size_t default_thread_count() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fpq::parallel
