// fpq::parallel — a fork/join work-stealing thread pool.
//
// The pool exists for one job shape: "run body(shard) exactly once for
// every shard in [0, N), as fast as the hardware allows, with results that
// are bit-identical to a single-threaded run".  Determinism is achieved by
// construction, not by luck:
//
//   * every shard index is claimed by exactly one lane (atomic cursors),
//   * shard bodies write only to their own slot of a pre-sized output,
//   * reductions happen on the caller's thread afterwards, in fixed shard
//     order (see shard.hpp's tree_reduce) — never via shared FP
//     accumulators or atomics on floating point.
//
// Scheduling is work-stealing at the shard level: run_shards() splits the
// index space into one contiguous block per lane; each lane drains its own
// block first and then steals remaining indices from other lanes' blocks,
// so an unlucky lane stuck on expensive shards never leaves the rest of
// the machine idle.  The calling thread participates as lane 0, which
// makes ThreadPool(1) a zero-thread, purely inline executor — the
// determinism baseline the tests compare against.
//
// Failure handling is aggregate, never first-only: EVERY task failure is
// recorded with its shard index and surfaced in a ShardFailureReport whose
// order is deterministic (sorted by shard index) regardless of thread
// count or schedule.  The options-taking overload adds the hostile-task
// toolkit: cooperative cancellation, a per-job deadline watchdog, and a
// bounded deterministic retry (quarantine) pass for throwing shards.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace fpq::parallel {

/// Why a shard has no clean result.
enum class FailureKind {
  kException,  ///< the shard body threw (message holds what())
  kCancelled,  ///< skipped: cancellation was requested before it ran
  kDeadline,   ///< skipped: the job's deadline expired before it ran
};

std::string failure_kind_name(FailureKind kind);

/// One failed shard.
struct ShardFailure {
  std::size_t shard = 0;
  FailureKind kind = FailureKind::kException;
  /// what() of the LAST exception the shard threw; empty for
  /// cancelled/deadline shards (they never ran).
  std::string message;
  /// Times the body ran for this shard (0 for cancelled/deadline shards,
  /// 1 + retries for persistent throwers).
  std::size_t attempts = 0;
};

/// Every failed shard of one run_shards job, sorted by shard index — the
/// order is a pure function of which shards failed, never of the
/// schedule, so reports are comparable across thread counts.
struct ShardFailureReport {
  std::vector<ShardFailure> failures;

  bool any() const noexcept { return !failures.empty(); }
  std::size_t count(FailureKind kind) const noexcept;
  /// "3 shard(s) failed: #4 (exception: boom, 2 attempts), ..." — one
  /// deterministic line per failure.
  std::string to_string() const;
};

/// Thrown by the report-less run_shards overload when any shard failed.
/// Derives from std::runtime_error so legacy catch sites keep working,
/// but carries the FULL deterministic failure list, not just the first.
class ShardFailuresError : public std::runtime_error {
 public:
  explicit ShardFailuresError(ShardFailureReport report);
  const ShardFailureReport& report() const noexcept { return report_; }

 private:
  ShardFailureReport report_;
};

/// Cooperative cancellation handle passed to shard bodies. Long-running
/// bodies should poll cancelled() and return early; the pool itself only
/// honours cancellation at shard claim boundaries.
class CancelToken {
 public:
  bool cancelled() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  friend struct JobAccess;
  explicit CancelToken(const std::atomic<bool>* flag) noexcept
      : flag_(flag) {}
  const std::atomic<bool>* flag_;
};

/// Hostile-task policy for one run_shards job.
struct RunOptions {
  /// Stop claiming new shards after the first shard-body exception;
  /// already-claimed shards finish, unclaimed ones are reported as
  /// kCancelled. Off by default: the whole index space runs.
  bool cancel_on_failure = false;
  /// Quarantine-and-retry budget: shards whose body threw are re-run up
  /// to this many extra times, sequentially on the CALLER's thread in
  /// shard-index order (deterministic), after the parallel pass.
  std::size_t max_retries = 0;
  /// Per-job wall-clock deadline (zero = none). A watchdog requests
  /// cancellation when it expires; unclaimed shards are reported as
  /// kDeadline. Cooperative only: a body that never returns still hangs
  /// the job.
  std::chrono::milliseconds deadline{0};
};

/// What one options-run produced.
struct ShardRunReport {
  ShardFailureReport failures;
  std::size_t shard_count = 0;
  /// Shards whose body completed cleanly (including via retry).
  std::size_t completed = 0;
  /// Shards that threw at least once but completed within the retry
  /// budget (their slots hold a valid result).
  std::size_t recovered = 0;
  bool deadline_expired = false;
  /// Cancellation was requested (by failure policy or deadline).
  bool cancelled = false;

  bool ok() const noexcept { return !failures.any(); }
};

class ThreadPool {
 public:
  /// A pool with `threads` execution lanes. The calling thread of
  /// run_shards() is always one of the lanes, so `threads == 1` spawns no
  /// background workers at all and `threads == 0` picks
  /// default_thread_count().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution lanes (background workers + the calling thread).
  std::size_t lanes() const noexcept;

  /// Invokes body(shard) exactly once for every shard in [0, shard_count),
  /// distributed across the lanes, and blocks until every shard has
  /// finished. The calling thread participates; remaining shards still run
  /// when some throw, so the index space is always fully consumed. If ANY
  /// shard body throws, a ShardFailuresError carrying the full
  /// deterministic failure list is thrown after the job drains. Not
  /// reentrant: shard bodies must not call run_shards on the same pool.
  void run_shards(std::size_t shard_count,
                  const std::function<void(std::size_t)>& body);

  /// Hardened variant: runs body(shard, token) under the given policy and
  /// returns a full report instead of throwing on task failure. Shards
  /// that were cancelled (failure policy or deadline) are listed as
  /// failures with kind kCancelled/kDeadline; throwing shards are retried
  /// per options.max_retries. Surviving shards' outputs are bit-identical
  /// to a failure-free run at any thread count.
  ShardRunReport run_shards(
      std::size_t shard_count, const RunOptions& options,
      const std::function<void(std::size_t, const CancelToken&)>& body);

  /// Hardware concurrency with a sane floor of 1.
  static std::size_t default_thread_count() noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace fpq::parallel
