// fpq::parallel — shared plumbing for the differential sweep drivers
// (oracle_sweep and sweep32): the stateless operand PRNG, the host
// rounding-direction guard, and opaque hardware arithmetic.
//
// Everything here is header-only and dependency-free beyond softfloat's
// Env, so both sweep translation units (and their tests) share one
// definition of "run this op on the real FPU under this rounding mode"
// instead of drifting copies.
#pragma once

#include <cfenv>
#include <cmath>
#include <cstdint>

#include "softfloat/env.hpp"

namespace fpq::parallel::sweep_detail {

/// Stateless-seedable splitmix64 stream for operand generation (the
/// parallel substrate cannot link fpq_stats; see shard.cpp).
struct Sm64 {
  std::uint64_t state;
  explicit Sm64(std::uint64_t seed) noexcept : state(seed) {}
  std::uint64_t next() noexcept {
    std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
};

/// RAII host rounding-direction guard (fenv state is thread-local, so
/// concurrent shards flipping modes never interfere).
class ScopedFenvRounding {
 public:
  explicit ScopedFenvRounding(int mode) : saved_(std::fegetround()) {
    std::fesetround(mode);
  }
  ~ScopedFenvRounding() { std::fesetround(saved_); }
  ScopedFenvRounding(const ScopedFenvRounding&) = delete;
  ScopedFenvRounding& operator=(const ScopedFenvRounding&) = delete;

 private:
  int saved_;
};

/// Host fenv constant for a directed mode; ties modes map to the
/// hardware's ties-to-even (callers justify, per op, where that is a
/// valid stand-in for ties-to-away — see the reference-strategy notes in
/// oracle_sweep.hpp and sweep32_ref.hpp).
inline int fenv_mode_of(softfloat::Rounding r) noexcept {
  switch (r) {
    case softfloat::Rounding::kTowardZero:
      return FE_TOWARDZERO;
    case softfloat::Rounding::kDown:
      return FE_DOWNWARD;
    case softfloat::Rounding::kUp:
      return FE_UPWARD;
    case softfloat::Rounding::kNearestEven:
    case softfloat::Rounding::kNearestAway:
      return FE_TONEAREST;
  }
  return FE_TONEAREST;
}

// Opaque host arithmetic: noinline + volatile defeat constant folding so
// the operations execute under the runtime fenv state.
template <typename T>
[[gnu::noinline]] T hw_add(T a, T b) {
  volatile T x = a, y = b, r = x + y;
  return r;
}
template <typename T>
[[gnu::noinline]] T hw_sub(T a, T b) {
  volatile T x = a, y = b, r = x - y;
  return r;
}
template <typename T>
[[gnu::noinline]] T hw_mul(T a, T b) {
  volatile T x = a, y = b, r = x * y;
  return r;
}
template <typename T>
[[gnu::noinline]] T hw_div(T a, T b) {
  volatile T x = a, y = b, r = x / y;
  return r;
}
template <typename T>
[[gnu::noinline]] T hw_sqrt(T a) {
  volatile T x = a;
  volatile T r = std::sqrt(x);
  return r;
}
template <typename T>
[[gnu::noinline]] T hw_fma(T a, T b, T c) {
  volatile T x = a, y = b, z = c;
  volatile T r = std::fma(x, y, z);
  return r;
}

/// Host float -> double widening through the FPU (exact by construction,
/// but kept opaque so the conversion instruction really executes).
[[gnu::noinline]] inline double hw_widen_f32(float a) {
  volatile float x = a;
  volatile double r = static_cast<double>(x);
  return r;
}

/// Host roundToIntegral: rint under the ambient fenv direction.
[[gnu::noinline]] inline float hw_rint_f32(float a) {
  volatile float x = a;
  volatile float r = std::rint(x);
  return r;
}

/// Host roundTiesToAway-to-integral: round() ties away from zero in every
/// fenv mode, which is exactly IEEE roundTiesToAway for this op.
[[gnu::noinline]] inline float hw_round_away_f32(float a) {
  volatile float x = a;
  volatile float r = std::round(x);
  return r;
}

}  // namespace fpq::parallel::sweep_detail
