// fpq::parallel — the per-shard differential-result cache.
//
// A sweep shard is fully described by (backend, format, op, rounding mode,
// operand class, task index): its operand stream is derived
// deterministically from shard_seed, so its outcome is a pure function of
// the key. Caching the outcome lets repeated sweeps (quiz-session scoring
// re-deriving ground truth, benchmark reruns, test retries) skip
// re-executing millions of softfloat operations and hit memoized results
// instead.
//
// The cache is a striped hash map: lookups hash to one of kStripes
// independently-locked segments, so concurrent shards rarely contend.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fpq::parallel {

/// Interned backend name: the string plus a content tag precomputed at
/// assignment, so key hashing never re-walks the string per query.
class BackendName {
 public:
  BackendName() = default;
  BackendName(std::string name)  // NOLINT(google-explicit-constructor)
      : name_(std::move(name)), tag_(tag_of(name_)) {}
  BackendName(const char* name)  // NOLINT(google-explicit-constructor)
      : BackendName(std::string(name)) {}

  const std::string& str() const noexcept { return name_; }
  std::uint64_t tag() const noexcept { return tag_; }

  bool operator==(const BackendName& other) const noexcept {
    return tag_ == other.tag_ && name_ == other.name_;
  }

 private:
  static std::uint64_t tag_of(const std::string& s) noexcept {
    // FNV-1a; the empty string hashes to the offset basis, matching the
    // default-constructed tag below.
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001B3ULL;
    }
    return h;
  }

  std::string name_;
  std::uint64_t tag_ = 0xCBF29CE484222325ULL;
};

/// Identity of one differential-sweep shard.
struct OracleKey {
  BackendName backend;             ///< e.g. "softfloat"
  std::uint8_t format_bits = 0;    ///< 16 / 32 / 64
  std::uint8_t op = 0;             ///< SweepOp
  std::uint8_t rounding = 0;       ///< softfloat::Rounding
  std::uint8_t operand_class = 0;  ///< OperandClass
  std::uint32_t task = 0;          ///< shard index within the axis

  bool operator==(const OracleKey&) const = default;
};

struct OracleKeyHash {
  std::size_t operator()(const OracleKey& k) const noexcept {
    const std::uint64_t packed =
        (std::uint64_t{k.format_bits} << 56) | (std::uint64_t{k.op} << 48) |
        (std::uint64_t{k.rounding} << 40) |
        (std::uint64_t{k.operand_class} << 32) | k.task;
    // 64-bit mix of the packed fields folded into the precomputed tag.
    std::uint64_t z = packed + 0x9E3779B97F4A7C15ULL * (k.backend.tag() + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return static_cast<std::size_t>(z ^ (z >> 27));
  }
};

/// Outcome of one shard: how many cases ran, how many diverged from the
/// reference, and a diagnostic for the first divergence (empty if none).
struct ShardResult {
  std::uint64_t checked = 0;
  std::uint64_t mismatches = 0;
  std::string first_mismatch;
};

/// Counter snapshot for benches and diagnostics.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// CRTP-free shared shape for the two caches below: striped unordered
/// maps, hit/miss/eviction counters, optional capacity bound. Kept as a
/// template over (Key, Hash, Value) so the parallel substrate stays
/// independent of the IR's types.
template <typename Key, typename Hash, typename Value>
class StripedCache {
 public:
  StripedCache() = default;
  StripedCache(const StripedCache&) = delete;
  StripedCache& operator=(const StripedCache&) = delete;

  /// Returns the memoized result, counting a hit/miss.
  std::optional<Value> find(const Key& key) {
    Stripe& s = stripe_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(key);
    if (it == s.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Memoizes (first writer wins; identical by determinism anyway). If a
  /// capacity is set and the stripe overflows, an arbitrary OTHER entry is
  /// evicted — safe for a pure memoization cache, where eviction only
  /// costs recomputation.
  void insert(const Key& key, const Value& result) {
    Stripe& s = stripe_of(key);
    std::lock_guard<std::mutex> lock(s.mutex);
    s.map.try_emplace(key, result);
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    if (cap == 0) return;
    const std::size_t per_stripe =
        std::max<std::size_t>(1, cap / kStripes);
    while (s.map.size() > per_stripe) {
      auto victim = s.map.begin();
      if (victim->first == key) ++victim;
      if (victim == s.map.end()) break;
      s.map.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      total += s.map.size();
    }
    return total;
  }

  std::uint64_t hits() const noexcept { return hits_.load(); }
  std::uint64_t misses() const noexcept { return misses_.load(); }
  std::uint64_t evictions() const noexcept { return evictions_.load(); }

  CacheStats stats() const {
    CacheStats st;
    st.hits = hits();
    st.misses = misses();
    st.evictions = evictions();
    st.entries = size();
    return st;
  }

  /// Bounds the total entry count (approximately: cap/kStripes per
  /// stripe). 0 restores the default unbounded behavior.
  void set_capacity(std::size_t max_entries) noexcept {
    capacity_.store(max_entries, std::memory_order_relaxed);
  }

  void clear() {
    for (Stripe& s : stripes_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      s.map.clear();
    }
    hits_.store(0);
    misses_.store(0);
    evictions_.store(0);
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<Key, Value, Hash> map;
  };
  Stripe& stripe_of(const Key& key) {
    return stripes_[Hash{}(key) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> capacity_{0};
};

class ResultCache : public StripedCache<OracleKey, OracleKeyHash, ShardResult> {
 public:
  /// Process-wide cache shared by sessions, benches, and tests.
  static ResultCache& global();
};

/// Identity of one chunk of a batched IR evaluation: the compiled tape's
/// content fingerprint (which already names the rewritten program AND the
/// numeric config — format, rounding, FTZ/DAZ, constant pool), a content
/// hash of the chunk's operand bindings, and the chunk index. The outcome
/// of such a chunk is a pure function of this key — exactly the same
/// determinism contract as OracleKey, applied to expression evaluation.
/// Keying on the fingerprint means NO per-query tree re-hash: the
/// fingerprint is computed once at tape compile.
struct BatchKey {
  std::uint64_t tape_fingerprint = 0;
  std::uint64_t bindings_hash = 0;
  std::uint32_t chunk = 0;
  /// The softfloat::KernelVariant the chunk executed under. The parity
  /// gates prove every variant produces identical outcomes, but the cache
  /// must not DEPEND on that proof: a miscompiled or future variant must
  /// never be served entries computed by another, so the variant is part
  /// of the key's identity.
  std::uint32_t variant = 0;

  bool operator==(const BatchKey&) const = default;
};

struct BatchKeyHash {
  std::size_t operator()(const BatchKey& k) const noexcept {
    std::uint64_t z = k.tape_fingerprint;
    z ^= k.bindings_hash + 0x9E3779B97F4A7C15ULL + (z << 6) + (z >> 2);
    z ^= k.chunk + 0x9E3779B97F4A7C15ULL + (z << 6) + (z >> 2);
    z ^= k.variant + 0x9E3779B97F4A7C15ULL + (z << 6) + (z >> 2);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return static_cast<std::size_t>(z ^ (z >> 27));
  }
};

/// Memoized outcome of one chunk: (value bits, flags) per binding row.
/// Stored as raw bits so the parallel substrate stays independent of the
/// IR's value types.
struct BatchChunkResult {
  std::vector<std::pair<std::uint64_t, unsigned>> outcomes;
};

class BatchResultCache
    : public StripedCache<BatchKey, BatchKeyHash, BatchChunkResult> {
 public:
  /// Process-wide cache shared by sessions, benches, and tests.
  static BatchResultCache& global();
};

}  // namespace fpq::parallel
