// fpq::parallel — the per-shard differential-result cache.
//
// A sweep shard is fully described by (backend, format, op, rounding mode,
// operand class, task index): its operand stream is derived
// deterministically from shard_seed, so its outcome is a pure function of
// the key. Caching the outcome lets repeated sweeps (quiz-session scoring
// re-deriving ground truth, benchmark reruns, test retries) skip
// re-executing millions of softfloat operations and hit memoized results
// instead.
//
// The cache is a striped hash map: lookups hash to one of kStripes
// independently-locked segments, so concurrent shards rarely contend.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fpq::parallel {

/// Identity of one differential-sweep shard.
struct OracleKey {
  std::string backend;          ///< e.g. "softfloat"
  std::uint8_t format_bits = 0;    ///< 16 / 32 / 64
  std::uint8_t op = 0;             ///< SweepOp
  std::uint8_t rounding = 0;       ///< softfloat::Rounding
  std::uint8_t operand_class = 0;  ///< OperandClass
  std::uint32_t task = 0;          ///< shard index within the axis

  bool operator==(const OracleKey&) const = default;
};

struct OracleKeyHash {
  std::size_t operator()(const OracleKey& k) const noexcept {
    std::size_t h = std::hash<std::string>{}(k.backend);
    const std::uint64_t packed =
        (std::uint64_t{k.format_bits} << 56) | (std::uint64_t{k.op} << 48) |
        (std::uint64_t{k.rounding} << 40) |
        (std::uint64_t{k.operand_class} << 32) | k.task;
    // 64-bit mix of the packed fields folded into the string hash.
    std::uint64_t z = packed + 0x9E3779B97F4A7C15ULL * (h + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return static_cast<std::size_t>(z ^ (z >> 27));
  }
};

/// Outcome of one shard: how many cases ran, how many diverged from the
/// reference, and a diagnostic for the first divergence (empty if none).
struct ShardResult {
  std::uint64_t checked = 0;
  std::uint64_t mismatches = 0;
  std::string first_mismatch;
};

class ResultCache {
 public:
  ResultCache() = default;
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the memoized result, counting a hit/miss.
  std::optional<ShardResult> find(const OracleKey& key);

  /// Memoizes (first writer wins; identical by determinism anyway).
  void insert(const OracleKey& key, const ShardResult& result);

  std::size_t size() const;
  std::uint64_t hits() const noexcept { return hits_.load(); }
  std::uint64_t misses() const noexcept { return misses_.load(); }
  void clear();

  /// Process-wide cache shared by sessions, benches, and tests.
  static ResultCache& global();

 private:
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<OracleKey, ShardResult, OracleKeyHash> map;
  };
  Stripe& stripe_of(const OracleKey& key) {
    return stripes_[OracleKeyHash{}(key) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

/// Identity of one chunk of a batched IR evaluation: the (hash-consed)
/// tree's structural fingerprint, the EvalConfig fingerprint, a content
/// hash of the chunk's operand bindings, and the chunk index. The outcome
/// of such a chunk is a pure function of this key — exactly the same
/// determinism contract as OracleKey, applied to expression evaluation.
struct BatchKey {
  std::uint64_t tree_hash = 0;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t bindings_hash = 0;
  std::uint32_t chunk = 0;

  bool operator==(const BatchKey&) const = default;
};

struct BatchKeyHash {
  std::size_t operator()(const BatchKey& k) const noexcept {
    std::uint64_t z = k.tree_hash;
    z ^= k.config_fingerprint + 0x9E3779B97F4A7C15ULL + (z << 6) + (z >> 2);
    z ^= k.bindings_hash + 0x9E3779B97F4A7C15ULL + (z << 6) + (z >> 2);
    z ^= k.chunk + 0x9E3779B97F4A7C15ULL + (z << 6) + (z >> 2);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    return static_cast<std::size_t>(z ^ (z >> 27));
  }
};

/// Memoized outcome of one chunk: (value bits, flags) per binding row.
/// Stored as raw bits so the parallel substrate stays independent of the
/// IR's value types.
struct BatchChunkResult {
  std::vector<std::pair<std::uint64_t, unsigned>> outcomes;
};

/// Striped memoization cache for batched expression evaluation, same
/// locking structure as ResultCache (first writer wins; identical by
/// determinism anyway).
class BatchResultCache {
 public:
  BatchResultCache() = default;
  BatchResultCache(const BatchResultCache&) = delete;
  BatchResultCache& operator=(const BatchResultCache&) = delete;

  std::optional<BatchChunkResult> find(const BatchKey& key);
  void insert(const BatchKey& key, const BatchChunkResult& result);

  std::size_t size() const;
  std::uint64_t hits() const noexcept { return hits_.load(); }
  std::uint64_t misses() const noexcept { return misses_.load(); }
  void clear();

  /// Process-wide cache shared by sessions, benches, and tests.
  static BatchResultCache& global();

 private:
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    mutable std::mutex mutex;
    std::unordered_map<BatchKey, BatchChunkResult, BatchKeyHash> map;
  };
  Stripe& stripe_of(const BatchKey& key) {
    return stripes_[BatchKeyHash{}(key) % kStripes];
  }

  std::array<Stripe, kStripes> stripes_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace fpq::parallel
