#include "parallel/result_cache.hpp"

namespace fpq::parallel {

std::optional<ShardResult> ResultCache::find(const OracleKey& key) {
  Stripe& s = stripe_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ResultCache::insert(const OracleKey& key, const ShardResult& result) {
  Stripe& s = stripe_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  s.map.try_emplace(key, result);
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.map.size();
  }
  return total;
}

void ResultCache::clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.map.clear();
  }
  hits_.store(0);
  misses_.store(0);
}

ResultCache& ResultCache::global() {
  static ResultCache cache;
  return cache;
}

std::optional<BatchChunkResult> BatchResultCache::find(
    const BatchKey& key) {
  Stripe& s = stripe_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.map.find(key);
  if (it == s.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void BatchResultCache::insert(const BatchKey& key,
                              const BatchChunkResult& result) {
  Stripe& s = stripe_of(key);
  std::lock_guard<std::mutex> lock(s.mutex);
  s.map.try_emplace(key, result);
}

std::size_t BatchResultCache::size() const {
  std::size_t total = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    total += s.map.size();
  }
  return total;
}

void BatchResultCache::clear() {
  for (Stripe& s : stripes_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.map.clear();
  }
  hits_.store(0);
  misses_.store(0);
}

BatchResultCache& BatchResultCache::global() {
  static BatchResultCache cache;
  return cache;
}

}  // namespace fpq::parallel
