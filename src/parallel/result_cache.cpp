#include "parallel/result_cache.hpp"

namespace fpq::parallel {

ResultCache& ResultCache::global() {
  static ResultCache cache;
  return cache;
}

BatchResultCache& BatchResultCache::global() {
  static BatchResultCache cache;
  return cache;
}

}  // namespace fpq::parallel
