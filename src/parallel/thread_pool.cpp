#include "parallel/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace fpq::parallel {

namespace {

// One lane's contiguous slice of the shard index space. `next` is the
// claim cursor: a lane (owner or thief) owns shard i iff it won the
// fetch_add that produced i. Claiming is the ONLY lock-free handoff in the
// pool; completion and results are synchronized through the job mutex.
struct Block {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

}  // namespace

// A single fork/join job. Heap-allocated and shared so that a worker which
// wakes up late (after the job already completed) can still safely read
// the claim cursors it holds a reference to; it will find every block
// drained and touch nothing else. The body pointer is only dereferenced
// for successfully claimed shards, all of which complete before
// run_shards() returns.
struct Job {
  std::vector<Block> blocks;
  std::size_t shard_count = 0;
  const std::function<void(std::size_t)>* body = nullptr;

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;  // guarded by done_mutex
  std::exception_ptr first_exception;  // guarded by done_mutex

  void run_lane(std::size_t lane) {
    const std::size_t n = blocks.size();
    // Own block first, then steal from the others in cyclic order.
    for (std::size_t offset = 0; offset < n; ++offset) {
      drain(blocks[(lane + offset) % n]);
    }
  }

  void drain(Block& block) {
    for (;;) {
      const std::size_t i =
          block.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= block.end) return;
      std::exception_ptr error;
      try {
        (*body)(i);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mutex);
      if (error && !first_exception) first_exception = error;
      if (++done == shard_count) done_cv.notify_all();
    }
  }
};

struct ThreadPool::Impl {
  std::size_t lane_count = 1;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_cv;
  std::shared_ptr<Job> current;  // guarded by mutex
  std::uint64_t epoch = 0;       // guarded by mutex
  bool stop = false;             // guarded by mutex

  void worker_main(std::size_t lane) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
        job = current;
      }
      if (job) job->run_lane(lane);
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) threads = default_thread_count();
  impl_->lane_count = threads;
  impl_->workers.reserve(threads - 1);
  for (std::size_t lane = 1; lane < threads; ++lane) {
    impl_->workers.emplace_back(
        [impl = impl_.get(), lane] { impl->worker_main(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::lanes() const noexcept { return impl_->lane_count; }

void ThreadPool::run_shards(
    std::size_t shard_count,
    const std::function<void(std::size_t)>& body) {
  if (shard_count == 0) return;

  auto job = std::make_shared<Job>();
  job->shard_count = shard_count;
  job->body = &body;
  const std::size_t lanes = impl_->lane_count;
  job->blocks = std::vector<Block>(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t begin = shard_count * lane / lanes;
    job->blocks[lane].next.store(begin, std::memory_order_relaxed);
    job->blocks[lane].end = shard_count * (lane + 1) / lanes;
  }

  if (lanes > 1) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current = job;
    ++impl_->epoch;
  }
  impl_->work_cv.notify_all();

  job->run_lane(0);  // the caller is lane 0

  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock,
                      [&] { return job->done == job->shard_count; });
  }
  if (lanes > 1) {
    // Detach the job so late-waking workers see a null job; stragglers
    // already inside run_lane keep the Job alive via their shared_ptr but
    // can claim nothing (every block is drained once done == shard_count).
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current = nullptr;
  }
  if (job->first_exception) std::rethrow_exception(job->first_exception);
}

std::size_t ThreadPool::default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace fpq::parallel
