#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace fpq::parallel {

std::string failure_kind_name(FailureKind kind) {
  switch (kind) {
    case FailureKind::kException:
      return "exception";
    case FailureKind::kCancelled:
      return "cancelled";
    case FailureKind::kDeadline:
      return "deadline";
  }
  return "unknown";
}

std::size_t ShardFailureReport::count(FailureKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& f : failures) n += f.kind == kind ? 1 : 0;
  return n;
}

std::string ShardFailureReport::to_string() const {
  if (failures.empty()) return "no shard failures";
  std::string out = std::to_string(failures.size()) + " shard(s) failed:";
  for (const auto& f : failures) {
    out += " #" + std::to_string(f.shard) + " (" +
           failure_kind_name(f.kind);
    if (!f.message.empty()) out += ": " + f.message;
    if (f.attempts > 1) {
      out += ", " + std::to_string(f.attempts) + " attempts";
    }
    out += ")";
  }
  return out;
}

ShardFailuresError::ShardFailuresError(ShardFailureReport report)
    : std::runtime_error(report.to_string()), report_(std::move(report)) {}

namespace {

// One lane's contiguous slice of the shard index space. `next` is the
// claim cursor: a lane (owner or thief) owns shard i iff it won the
// fetch_add that produced i. Claiming is the ONLY lock-free handoff in the
// pool; completion and results are synchronized through the job mutex.
struct Block {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

}  // namespace

// A single fork/join job. Heap-allocated and shared so that a worker which
// wakes up late (after the job already completed) can still safely read
// the claim cursors it holds a reference to; it will find every block
// drained and touch nothing else. The body pointer is only dereferenced
// for successfully claimed shards, all of which complete before
// run_shards() returns.
struct Job {
  std::vector<Block> blocks;
  std::size_t shard_count = 0;
  const std::function<void(std::size_t, const CancelToken&)>* body = nullptr;
  bool cancel_on_failure = false;

  // Cancellation is the one cross-lane signal outside the mutex: lanes
  // read it before every claim, the failure policy and the deadline
  // watchdog write it.
  std::atomic<bool> cancel{false};
  std::atomic<bool> deadline_expired{false};

  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;                  // guarded by done_mutex
  std::vector<ShardFailure> failures;    // guarded by done_mutex

  void run_lane(std::size_t lane);
  void drain(Block& block);
};

// Mints CancelTokens (their constructor is private so arbitrary code
// cannot fabricate one pointing at a dead flag).
struct JobAccess {
  static CancelToken token_of(const Job& job) noexcept {
    return CancelToken(&job.cancel);
  }
};

void Job::run_lane(std::size_t lane) {
  const std::size_t n = blocks.size();
  // Own block first, then steal from the others in cyclic order.
  for (std::size_t offset = 0; offset < n; ++offset) {
    drain(blocks[(lane + offset) % n]);
  }
}

void Job::drain(Block& block) {
  const CancelToken token = JobAccess::token_of(*this);
  for (;;) {
    const std::size_t i = block.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= block.end) return;

    ShardFailure failure;
    bool failed = false;
    if (cancel.load(std::memory_order_acquire)) {
      // Honour cancellation at claim boundaries: the shard is consumed
      // from the index space but its body never runs.
      failed = true;
      failure.shard = i;
      failure.kind = deadline_expired.load(std::memory_order_acquire)
                         ? FailureKind::kDeadline
                         : FailureKind::kCancelled;
      failure.attempts = 0;
    } else {
      try {
        (*body)(i, token);
      } catch (const std::exception& e) {
        failed = true;
        failure = {i, FailureKind::kException, e.what(), 1};
      } catch (...) {
        failed = true;
        failure = {i, FailureKind::kException, "non-standard exception", 1};
      }
    }

    std::lock_guard<std::mutex> lock(done_mutex);
    if (failed) {
      if (cancel_on_failure && failure.kind == FailureKind::kException) {
        cancel.store(true, std::memory_order_release);
      }
      failures.push_back(std::move(failure));
    }
    if (++done == shard_count) done_cv.notify_all();
  }
}

struct ThreadPool::Impl {
  std::size_t lane_count = 1;
  std::vector<std::thread> workers;

  std::mutex mutex;
  std::condition_variable work_cv;
  std::shared_ptr<Job> current;  // guarded by mutex
  std::uint64_t epoch = 0;       // guarded by mutex
  bool stop = false;             // guarded by mutex

  void worker_main(std::size_t lane) {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
        job = current;
      }
      if (job) job->run_lane(lane);
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) threads = default_thread_count();
  impl_->lane_count = threads;
  impl_->workers.reserve(threads - 1);
  for (std::size_t lane = 1; lane < threads; ++lane) {
    impl_->workers.emplace_back(
        [impl = impl_.get(), lane] { impl->worker_main(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& worker : impl_->workers) worker.join();
}

std::size_t ThreadPool::lanes() const noexcept { return impl_->lane_count; }

void ThreadPool::run_shards(
    std::size_t shard_count,
    const std::function<void(std::size_t)>& body) {
  ShardRunReport report = run_shards(
      shard_count, RunOptions{},
      [&body](std::size_t shard, const CancelToken&) { body(shard); });
  if (report.failures.any()) {
    throw ShardFailuresError(std::move(report.failures));
  }
}

ShardRunReport ThreadPool::run_shards(
    std::size_t shard_count, const RunOptions& options,
    const std::function<void(std::size_t, const CancelToken&)>& body) {
  ShardRunReport report;
  report.shard_count = shard_count;
  if (shard_count == 0) return report;

  auto job = std::make_shared<Job>();
  job->shard_count = shard_count;
  job->body = &body;
  job->cancel_on_failure = options.cancel_on_failure;
  const std::size_t lanes = impl_->lane_count;
  job->blocks = std::vector<Block>(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t begin = shard_count * lane / lanes;
    job->blocks[lane].next.store(begin, std::memory_order_relaxed);
    job->blocks[lane].end = shard_count * (lane + 1) / lanes;
  }

  // Per-job deadline watchdog: one thread that sleeps until completion or
  // expiry. On expiry it requests cancellation; lanes then skip every
  // still-unclaimed shard (reported as kDeadline). Cooperative: a body
  // that never returns still blocks the join below.
  std::thread watchdog;
  if (options.deadline.count() > 0) {
    watchdog = std::thread([job, deadline = options.deadline] {
      std::unique_lock<std::mutex> lock(job->done_mutex);
      const bool finished = job->done_cv.wait_for(
          lock, deadline, [&] { return job->done == job->shard_count; });
      if (!finished) {
        job->deadline_expired.store(true, std::memory_order_release);
        job->cancel.store(true, std::memory_order_release);
      }
    });
  }

  if (lanes > 1) {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current = job;
    ++impl_->epoch;
  }
  impl_->work_cv.notify_all();

  job->run_lane(0);  // the caller is lane 0

  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock,
                      [&] { return job->done == job->shard_count; });
  }
  if (watchdog.joinable()) watchdog.join();
  if (lanes > 1) {
    // Detach the job so late-waking workers see a null job; stragglers
    // already inside run_lane keep the Job alive via their shared_ptr but
    // can claim nothing (every block is drained once done == shard_count).
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current = nullptr;
  }

  // From here on the job is quiescent: no lane touches it again, so its
  // state can be read without the mutex.
  report.deadline_expired =
      job->deadline_expired.load(std::memory_order_acquire);
  report.cancelled = job->cancel.load(std::memory_order_acquire);
  std::vector<ShardFailure> failures = std::move(job->failures);

  // Deterministic order: failures were appended in claim order (schedule-
  // dependent); the report is sorted by shard index so the same set of
  // failing shards yields the same report at every thread count.
  std::sort(failures.begin(), failures.end(),
            [](const ShardFailure& a, const ShardFailure& b) {
              return a.shard < b.shard;
            });

  // Quarantine pass: throwing shards re-run sequentially on the caller's
  // thread, in shard-index order, up to max_retries extra attempts each.
  // Sequential + index-ordered keeps recovery deterministic for any body
  // whose behaviour is a function of the shard index.
  if (options.max_retries > 0) {
    const CancelToken token = JobAccess::token_of(*job);
    std::vector<ShardFailure> remaining;
    remaining.reserve(failures.size());
    for (ShardFailure& f : failures) {
      if (f.kind != FailureKind::kException) {
        remaining.push_back(std::move(f));
        continue;
      }
      bool recovered = false;
      for (std::size_t attempt = 0;
           attempt < options.max_retries && !recovered; ++attempt) {
        ++f.attempts;
        try {
          body(f.shard, token);
          recovered = true;
        } catch (const std::exception& e) {
          f.message = e.what();
        } catch (...) {
          f.message = "non-standard exception";
        }
      }
      if (recovered) {
        ++report.recovered;
      } else {
        remaining.push_back(std::move(f));
      }
    }
    failures = std::move(remaining);
  }

  report.completed = shard_count - failures.size();
  report.failures.failures = std::move(failures);
  return report;
}

std::size_t ThreadPool::default_thread_count() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace fpq::parallel
