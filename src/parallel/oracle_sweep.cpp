#include "parallel/oracle_sweep.hpp"

#include <bit>
#include <cfenv>
#include <cmath>
#include <limits>
#include <sstream>

#include "parallel/shard.hpp"
#include "parallel/sweep_util.hpp"
#include "softfloat/ops.hpp"

namespace sf = fpq::softfloat;

namespace fpq::parallel {

const char* sweep_op_name(SweepOp op) noexcept {
  switch (op) {
    case SweepOp::kAdd:
      return "add";
    case SweepOp::kSub:
      return "sub";
    case SweepOp::kMul:
      return "mul";
    case SweepOp::kDiv:
      return "div";
    case SweepOp::kSqrt:
      return "sqrt";
    case SweepOp::kFma:
      return "fma";
  }
  return "?";
}

const char* operand_class_name(OperandClass c) noexcept {
  switch (c) {
    case OperandClass::kNormal:
      return "normal";
    case OperandClass::kSubnormal:
      return "subnormal";
    case OperandClass::kSpecial:
      return "special";
    case OperandClass::kMixed:
      return "mixed";
  }
  return "?";
}

namespace {

// The operand PRNG, fenv rounding guard and opaque hardware arithmetic
// are shared with sweep32 (parallel/sweep_util.hpp).
using sweep_detail::fenv_mode_of;
using sweep_detail::hw_add;
using sweep_detail::hw_div;
using sweep_detail::hw_fma;
using sweep_detail::hw_mul;
using sweep_detail::hw_sqrt;
using sweep_detail::hw_sub;
using sweep_detail::ScopedFenvRounding;
using sweep_detail::Sm64;

// -- Operand generation -----------------------------------------------------

template <int kBits>
typename sf::Float<kBits>::Storage gen_operand(OperandClass cls,
                                               Sm64& g) noexcept {
  using F = sf::Float<kBits>;
  using C = typename F::Constants;
  using S = typename F::Storage;
  const std::uint64_t r = g.next();
  switch (cls) {
    case OperandClass::kNormal: {
      const auto exp = static_cast<S>(
          1 + g.next() % static_cast<std::uint64_t>(C::kExpInfNan - 1));
      S bits = static_cast<S>((static_cast<S>(exp) << C::kSigBits) |
                              (static_cast<S>(r) & C::kFracMask));
      if (r >> 63) bits = static_cast<S>(bits | C::kSignMask);
      return bits;
    }
    case OperandClass::kSubnormal: {
      S frac = static_cast<S>(static_cast<S>(r) & C::kFracMask);
      if (frac == 0) frac = 1;
      return (r >> 63) ? static_cast<S>(frac | C::kSignMask) : frac;
    }
    case OperandClass::kSpecial: {
      static constexpr S kTable[] = {
          S{0},
          C::kSignMask,
          C::kPositiveInfinityBits,
          C::kNegativeInfinityBits,
          C::kDefaultNaNBits,
          static_cast<S>(C::kExpMask | S{1}),  // signaling NaN
          C::kMaxFiniteBits,
          static_cast<S>(C::kMaxFiniteBits | C::kSignMask),
          C::kMinNormalBits,
          static_cast<S>(C::kMinNormalBits | C::kSignMask),
          C::kMinSubnormalBits,
          static_cast<S>(C::kMinSubnormalBits | C::kSignMask),
          static_cast<S>(static_cast<S>(C::kBias) << C::kSigBits),  // 1.0
          static_cast<S>((static_cast<S>(C::kBias) << C::kSigBits) |
                         C::kSignMask),
      };
      return kTable[r % (sizeof(kTable) / sizeof(kTable[0]))];
    }
    case OperandClass::kMixed:
      return static_cast<S>(r);
  }
  return S{0};
}

// -- binary16 exact/tight references ---------------------------------------

using F16 = sf::Float16;

double widen16(F16 x) {
  sf::Env env;  // widening is exact; flags irrelevant here
  return sf::to_native(sf::convert<64>(x, env));
}

F16 narrow16(double v, sf::Rounding mode) {
  sf::Env env(mode);
  return sf::convert<16>(sf::from_native(v), env);
}

/// IEEE 854/754 6.3 sign rule for an EXACT zero sum of two addends: same
/// signs keep the common sign; exact cancellation is +0 in every mode
/// except roundTowardNegative.
double exact_zero_sum_sign(double lhs, double rhs, sf::Rounding mode) {
  const bool neg = std::signbit(lhs) == std::signbit(rhs)
                       ? std::signbit(lhs)
                       : mode == sf::Rounding::kDown;
  return neg ? -0.0 : 0.0;
}

struct TwoSum {
  double sum;
  double err;
};

TwoSum two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double bb = s - a;
  const double err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

/// Correctly rounded binary16 reference for every op and all five modes.
F16 ref_f16(SweepOp op, F16 a, F16 b, F16 c, sf::Rounding mode) {
  const double wa = widen16(a);
  switch (op) {
    case SweepOp::kAdd:
    case SweepOp::kSub: {
      // <= 50 significant bits: the binary64 sum is exact, so the single
      // soft narrowing under `mode` is the correctly rounded answer.
      const double wb =
          op == SweepOp::kSub ? -widen16(b) : widen16(b);
      double s = wa + wb;
      if (s == 0.0 && !std::isnan(wa) && !std::isnan(wb)) {
        s = exact_zero_sum_sign(wa, wb, mode);
      }
      return narrow16(s, mode);
    }
    case SweepOp::kMul:
      // 22 significant bits: exact, including the sign of zero products.
      return narrow16(wa * widen16(b), mode);
    case SweepOp::kDiv: {
      // Double rounding 53 -> 11 bits is innocuous for division when the
      // wide precision is >= 2p + 2 (Figueroa), and directed modes compose
      // exactly when the wide step uses the same direction. Ties-to-away:
      // a binary16 quotient can never be an 11-bit midpoint (the product
      // of a 12-bit-odd significand with any 11-bit significand needs >=
      // 12 bits), so ties never arise and the hardware's ties-to-even
      // intermediate serves both nearest modes.
      ScopedFenvRounding guard(fenv_mode_of(mode));
      return narrow16(hw_div(wa, widen16(b)), mode);
    }
    case SweepOp::kSqrt: {
      // Same structure as division: 53-bit correctly rounded sqrt narrows
      // exactly (>= 2p + 2), and a binary16 root can never be an 11-bit
      // midpoint (its square would need ~23 significand bits).
      ScopedFenvRounding guard(fenv_mode_of(mode));
      return narrow16(hw_sqrt(wa), mode);
    }
    case SweepOp::kFma: {
      const double p = wa * widen16(b);  // exact: 22 bits
      const double wc = widen16(c);
      if (!std::isfinite(p) || !std::isfinite(wc)) {
        // NaN/infinity propagation: the (possibly invalid) sum decides.
        return narrow16(p + wc, mode);
      }
      auto [s, err] = two_sum(p, wc);  // s + err == p + wc exactly
      if (s == 0.0) {
        // err is zero too (exact cancellation); apply the sign rule.
        return narrow16(exact_zero_sum_sign(p, wc, mode), mode);
      }
      if (err != 0.0) {
        // Round to odd (Boldo–Melquiond): with >= p + 2 extra bits the
        // final narrowing then rounds as if from the exact value, in
        // every rounding mode.
        const std::uint64_t bits = std::bit_cast<std::uint64_t>(s);
        if ((bits & 1) == 0) {
          s = std::nextafter(
              s, err > 0 ? std::numeric_limits<double>::infinity()
                         : -std::numeric_limits<double>::infinity());
        }
      }
      return narrow16(s, mode);
    }
  }
  return F16{};
}

template <int kBits>
sf::Float<kBits> soft_op(SweepOp op, sf::Float<kBits> a, sf::Float<kBits> b,
                         sf::Float<kBits> c, sf::Env& env) {
  switch (op) {
    case SweepOp::kAdd:
      return sf::add(a, b, env);
    case SweepOp::kSub:
      return sf::sub(a, b, env);
    case SweepOp::kMul:
      return sf::mul(a, b, env);
    case SweepOp::kDiv:
      return sf::div(a, b, env);
    case SweepOp::kSqrt:
      return sf::sqrt(a, env);
    case SweepOp::kFma:
      return sf::fma(a, b, c, env);
  }
  return sf::Float<kBits>{};
}

constexpr bool is_unary(SweepOp op) noexcept { return op == SweepOp::kSqrt; }
constexpr bool is_ternary(SweepOp op) noexcept {
  return op == SweepOp::kFma;
}

template <int kBits>
bool same_result(sf::Float<kBits> x, sf::Float<kBits> y) noexcept {
  return (x.is_nan() && y.is_nan()) || x.bits == y.bits;
}

template <int kBits>
void note_mismatch(ShardResult& res, SweepOp op, sf::Rounding mode,
                   sf::Float<kBits> a, sf::Float<kBits> b,
                   sf::Float<kBits> c, sf::Float<kBits> got,
                   sf::Float<kBits> want) {
  ++res.mismatches;
  if (!res.first_mismatch.empty()) return;
  std::ostringstream os;
  os << sweep_op_name(op) << "<" << kBits << "> mode="
     << sf::rounding_to_string(mode) << " a=" << sf::describe(a);
  if (!is_unary(op)) os << " b=" << sf::describe(b);
  if (is_ternary(op)) os << " c=" << sf::describe(c);
  os << " soft=" << sf::describe(got) << " ref=" << sf::describe(want);
  res.first_mismatch = os.str();
}

// -- Task bodies ------------------------------------------------------------

ShardResult run_f16_task(SweepOp op, sf::Rounding mode, OperandClass cls,
                         std::uint64_t task_seed, std::size_t cases) {
  ShardResult res;
  Sm64 g(task_seed);
  for (std::size_t i = 0; i < cases; ++i) {
    const F16 a{gen_operand<16>(cls, g)};
    const F16 b = is_unary(op) ? F16{} : F16{gen_operand<16>(cls, g)};
    const F16 c = is_ternary(op) ? F16{gen_operand<16>(cls, g)} : F16{};
    sf::Env env(mode);
    const F16 got = soft_op<16>(op, a, b, c, env);
    const F16 want = ref_f16(op, a, b, c, mode);
    ++res.checked;
    if (!same_result(got, want)) {
      note_mismatch(res, op, mode, a, b, c, got, want);
    }
  }
  return res;
}

template <int kBits, typename Native>
ShardResult run_native_task(SweepOp op, sf::Rounding mode, OperandClass cls,
                            std::uint64_t task_seed, std::size_t cases) {
  using F = sf::Float<kBits>;
  ShardResult res;
  Sm64 g(task_seed);
  const ScopedFenvRounding guard(fenv_mode_of(mode));
  for (std::size_t i = 0; i < cases; ++i) {
    const F a{gen_operand<kBits>(cls, g)};
    const F b = is_unary(op) ? F{} : F{gen_operand<kBits>(cls, g)};
    const F c = is_ternary(op) ? F{gen_operand<kBits>(cls, g)} : F{};
    sf::Env env(mode);
    const F got = soft_op<kBits>(op, a, b, c, env);
    const Native na = std::bit_cast<Native>(a.bits);
    const Native nb = std::bit_cast<Native>(b.bits);
    const Native nc = std::bit_cast<Native>(c.bits);
    Native nr{};
    switch (op) {
      case SweepOp::kAdd:
        nr = hw_add(na, nb);
        break;
      case SweepOp::kSub:
        nr = hw_sub(na, nb);
        break;
      case SweepOp::kMul:
        nr = hw_mul(na, nb);
        break;
      case SweepOp::kDiv:
        nr = hw_div(na, nb);
        break;
      case SweepOp::kSqrt:
        nr = hw_sqrt(na);
        break;
      case SweepOp::kFma:
        nr = hw_fma(na, nb, nc);
        break;
    }
    const F want{std::bit_cast<typename F::Storage>(nr)};
    ++res.checked;
    if (!same_result(got, want)) {
      note_mismatch(res, op, mode, a, b, c, got, want);
    }
  }
  return res;
}

// -- Orchestration ----------------------------------------------------------

struct TaskSpec {
  SweepOp op;
  sf::Rounding mode;
  OperandClass cls;
  std::uint32_t task = 0;
};

std::uint64_t cell_seed(std::uint64_t base, int format_bits, SweepOp op,
                        sf::Rounding mode, OperandClass cls) noexcept {
  const auto cell = (std::uint64_t{static_cast<std::uint8_t>(format_bits)}
                     << 24) |
                    (std::uint64_t{static_cast<std::uint8_t>(op)} << 16) |
                    (std::uint64_t{static_cast<std::uint8_t>(mode)} << 8) |
                    std::uint64_t{static_cast<std::uint8_t>(cls)};
  return base ^ (cell * 0x9E3779B97F4A7C15ULL);
}

template <typename Runner>
SweepReport run_sweep(ThreadPool& pool, const std::string& backend,
                      int format_bits, const SweepConfig& config,
                      ResultCache* cache, Runner&& runner) {
  std::vector<TaskSpec> specs;
  for (SweepOp op : config.ops) {
    for (sf::Rounding mode : config.modes) {
      for (OperandClass cls : config.classes) {
        for (std::size_t t = 0; t < config.tasks_per_axis; ++t) {
          specs.push_back({op, mode, cls, static_cast<std::uint32_t>(t)});
        }
      }
    }
  }

  struct TaskOutcome {
    ShardResult result;
    bool from_cache = false;
  };
  const auto outcomes = parallel_map(
      pool, specs.size(), [&](std::size_t i) -> TaskOutcome {
        const TaskSpec& spec = specs[i];
        OracleKey key;
        key.backend = backend;
        key.format_bits = static_cast<std::uint8_t>(format_bits);
        key.op = static_cast<std::uint8_t>(spec.op);
        key.rounding = static_cast<std::uint8_t>(spec.mode);
        key.operand_class = static_cast<std::uint8_t>(spec.cls);
        key.task = spec.task;
        if (cache != nullptr) {
          if (auto hit = cache->find(key)) return {*hit, true};
        }
        const std::uint64_t seed = shard_seed(
            cell_seed(config.seed, format_bits, spec.op, spec.mode,
                      spec.cls),
            spec.task);
        TaskOutcome out;
        out.result = runner(spec.op, spec.mode, spec.cls, seed,
                            config.cases_per_task);
        if (cache != nullptr) cache->insert(key, out.result);
        return out;
      });

  SweepReport report;
  report.tasks = outcomes.size();
  for (const TaskOutcome& out : outcomes) {  // fixed index order
    report.checked += out.result.checked;
    report.mismatches += out.result.mismatches;
    if (out.from_cache) ++report.cache_hits;
    if (report.first_mismatch.empty() &&
        !out.result.first_mismatch.empty()) {
      report.first_mismatch = out.result.first_mismatch;
    }
  }
  return report;
}

}  // namespace

SweepReport run_binary16_sweep(ThreadPool& pool, const SweepConfig& config,
                               ResultCache* cache) {
  return run_sweep(pool, "softfloat", 16, config, cache, run_f16_task);
}

SweepReport run_native_sweep(ThreadPool& pool, int format_bits,
                             const SweepConfig& config, ResultCache* cache) {
  SweepConfig filtered = config;
  // The host FPU cannot express roundTiesToAway; skip rather than fail.
  std::erase(filtered.modes, sf::Rounding::kNearestAway);
  if (format_bits == 32) {
    return run_sweep(pool, "native", 32, filtered, cache,
                     run_native_task<32, float>);
  }
  return run_sweep(pool, "native", 64, filtered, cache,
                   run_native_task<64, double>);
}

SweepReport run_exhaustive_binary16(ThreadPool& pool,
                                    const ExhaustiveConfig& config) {
  constexpr std::size_t kSpace = 0x10000;
  struct Cell {
    SweepOp op;
    sf::Rounding mode;
  };
  std::vector<Cell> cells;
  for (SweepOp op : config.ops) {
    for (sf::Rounding mode : config.modes) cells.push_back({op, mode});
  }
  const std::size_t chunks =
      std::min<std::size_t>(config.chunks_per_cell, kSpace);
  const std::size_t total_shards = cells.size() * chunks;

  const auto partials = parallel_map(
      pool, total_shards, [&](std::size_t shard) -> ShardResult {
        const Cell& cell = cells[shard / chunks];
        const ChunkRange range =
            chunk_range(kSpace, chunks, shard % chunks);
        const std::uint64_t base = cell_seed(
            config.seed, 16, cell.op, cell.mode, OperandClass::kMixed);
        ShardResult res;
        for (std::size_t raw = range.begin; raw < range.end; ++raw) {
          const F16 a{static_cast<std::uint16_t>(raw)};
          // Partner operands are seeded per (cell, a), so results are
          // independent of the chunking as well as the thread count.
          Sm64 g(shard_seed(base, raw));
          const std::size_t samples =
              is_unary(cell.op) ? 1 : config.samples_per_operand;
          for (std::size_t s = 0; s < samples; ++s) {
            const F16 b = is_unary(cell.op)
                              ? F16{}
                              : F16{static_cast<std::uint16_t>(g.next())};
            const F16 c = is_ternary(cell.op)
                              ? F16{static_cast<std::uint16_t>(g.next())}
                              : F16{};
            sf::Env env(cell.mode);
            const F16 got = soft_op<16>(cell.op, a, b, c, env);
            const F16 want = ref_f16(cell.op, a, b, c, cell.mode);
            ++res.checked;
            if (!same_result(got, want)) {
              note_mismatch(res, cell.op, cell.mode, a, b, c, got, want);
            }
          }
        }
        return res;
      });

  SweepReport report;
  report.tasks = partials.size();
  for (const ShardResult& partial : partials) {
    report.checked += partial.checked;
    report.mismatches += partial.mismatches;
    if (report.first_mismatch.empty() && !partial.first_mismatch.empty()) {
      report.first_mismatch = partial.first_mismatch;
    }
  }
  return report;
}

}  // namespace fpq::parallel
