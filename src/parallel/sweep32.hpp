// fpq::parallel::sweep32 — exhaustive binary32 differential verification:
// sharded 2^32 sweeps with a checkpointed, resumable manifest.
//
// The binary16 oracle (oracle_sweep.hpp) proves soft/hardware agreement
// exhaustively at 2^16. This module pushes the same claim to the full
// 2^32 encoding space for the unary operations — sqrt,
// roundToIntegralExact, and the conversions binary32 <-> {binary16,
// binary64, bfloat16} — racing, per pattern and rounding mode:
//
//   * the soft engine's batch kernels (softfloat/batch.hpp), which are
//     the scalar operations by construction,
//   * an independent reference (sweep32_ref.hpp): the host FPU under a
//     matching fenv direction where the hardware op exists (sqrt,
//     round-to-int, widening), or an integer/add-and-mask algorithm that
//     shares no code with the soft converter (binary16/bfloat16
//     narrowing and widening),
//   * for sqrt, the tape engines: ir::execute_rows (the batched
//     interpreter — the same code path execute_batch runs per chunk, but
//     callable inside a pool shard) on every pattern, and the scalar
//     Tape::execute on a configurable stride.
//
// Binary operations (div, fma) cannot be swept exhaustively at 2^64/2^96;
// they are covered by run_corner_corpus: every sign-mirrored pair (and
// corpus-pivoted triple) from the checked-in corner corpus plus
// ULP-stratified random operands, against the exact references.
//
// Sharding and checkpointing: the pattern space is cut into fixed
// 2^chunk_bits shards per rounding mode; shard identity, content and seed
// are pure functions of the config (docs/parallel.md determinism rules),
// so any subset of shards can run in any order on any thread count. A
// manifest file records each completed shard's result fingerprint; it is
// rewritten atomically (tmp + rename) every checkpoint_interval
// completions, so a killed sweep resumes where it left off and CI can run
// bounded slices (max_shards / deadline) of a full overnight job. The
// whole-sweep fingerprint XORs a per-shard mix, making it independent of
// completion order, thread count, and how many runs the sweep was split
// across — "interrupted + resumed" is bit-identical to "uninterrupted"
// by construction, which the sweep tests assert.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <string>
#include <vector>

#include "parallel/oracle_sweep.hpp"
#include "softfloat/env.hpp"

namespace fpq::parallel::sweep32 {

/// The unary operations whose full binary32 input space is swept.
enum class UnaryOp32 : std::uint8_t {
  kSqrt,            ///< sqrt(x), all five modes, raced against the tape too
  kRoundToIntegral, ///< roundToIntegralExact(x)
  kToBinary16,      ///< convert<16, 32>
  kToBinary64,      ///< convert<64, 32> (exact widening)
  kToBFloat16,      ///< convert<kBFloat16, 32>
  kFromBinary16,    ///< convert<32, 16> (2^16 space)
  kFromBFloat16,    ///< convert<32, kBFloat16> (2^16 space)
};
const char* unary_op32_name(UnaryOp32 op) noexcept;

inline constexpr UnaryOp32 kAllUnaryOps32[] = {
    UnaryOp32::kSqrt,        UnaryOp32::kRoundToIntegral,
    UnaryOp32::kToBinary16,  UnaryOp32::kToBinary64,
    UnaryOp32::kToBFloat16,  UnaryOp32::kFromBinary16,
    UnaryOp32::kFromBFloat16,
};

/// Size of an op's input pattern space: 2^32, or 2^16 for the
/// narrow-source conversions.
std::uint64_t op_space_size(UnaryOp32 op) noexcept;

struct Sweep32Config {
  UnaryOp32 op = UnaryOp32::kSqrt;
  std::vector<softfloat::Rounding> modes{std::begin(kAllRoundings),
                                         std::end(kAllRoundings)};
  /// Half-open pattern subrange to sweep; end == 0 means op_space_size.
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  /// Patterns per shard = 2^chunk_bits. The shard grid is part of the
  /// sweep's identity: resuming with a different chunk_bits is an error.
  int chunk_bits = 18;
  /// Pool lanes; 0 picks ThreadPool::default_thread_count().
  std::size_t threads = 0;
  /// Checkpoint manifest path; empty runs the sweep without a checkpoint
  /// (still sharded and fingerprinted identically).
  std::string manifest_path;
  /// Shard completions between atomic manifest rewrites. The manifest is
  /// also written once at the end of every run.
  std::size_t checkpoint_interval = 256;
  /// Cap on shards THIS run executes (0 = all still pending) — the
  /// deterministic way to split a sweep across runs, and what the
  /// interruption tests use. Pending shards run in ascending shard order.
  std::size_t max_shards = 0;
  /// Wall-clock bound for this run (0 = none): shards not yet claimed
  /// when it expires are left pending in the manifest (CI slice mode).
  std::chrono::milliseconds deadline{0};
  /// Race the independent reference / host FPU lane.
  bool race_hardware = true;
  /// Race the tape engines (sqrt only; other ops have no IR node).
  bool race_tape = true;
  /// Scalar Tape::execute is raced every this-many patterns (the batched
  /// interpreter covers every pattern); 0 disables the scalar lane.
  std::size_t tape_scalar_stride = 64;
  /// Cap on human-readable mismatch samples collected per run.
  std::size_t max_mismatch_reports = 8;
};

/// Stable identity of a sweep's shard grid: op, mode list, range and
/// chunk size. A manifest written under a different identity refuses to
/// resume (run_sweep32 throws std::runtime_error).
std::uint64_t sweep32_identity(const Sweep32Config& config) noexcept;

/// Total shards in the sweep's grid (modes x chunks).
std::uint64_t sweep32_shard_count(const Sweep32Config& config) noexcept;

struct Sweep32Report {
  // -- Whole-sweep state (manifest union across every contributing run) --
  std::uint64_t total_shards = 0;
  std::uint64_t done_shards = 0;
  std::uint64_t checked = 0;      ///< patterns verified (sum over shards)
  std::uint64_t mismatches = 0;   ///< lane disagreements (sum over shards)
  /// Order-independent fingerprint over every completed shard's soft-lane
  /// results (values AND flags): XOR of a per-shard mix, so it is
  /// invariant under thread count, completion order, and run splits. Only
  /// comparable between runs once complete == true.
  std::uint64_t fingerprint = 0;
  bool complete = false;
  // -- This run's contribution ------------------------------------------
  std::uint64_t run_shards = 0;
  std::uint64_t run_checked = 0;
  std::uint64_t run_mismatches = 0;
  bool deadline_expired = false;
  /// Up to max_mismatch_reports human-readable samples from this run.
  std::vector<std::string> mismatch_samples;
};

/// Runs (or resumes) a sweep. Throws std::runtime_error when the manifest
/// exists but is malformed or was written for a different sweep identity.
Sweep32Report run_sweep32(const Sweep32Config& config);

// -- Corner-case corpus runner ----------------------------------------------

struct CorpusReport {
  std::uint64_t checked = 0;
  std::uint64_t mismatches = 0;
  std::vector<std::string> mismatch_samples;  ///< up to 8
};

/// Runs the checked-in corner corpus (sweep32_ref.hpp) against the exact
/// references under all five rounding modes, single-threaded:
///   * div: every sign-mirrored operand pair,
///   * fma: every sign-mirrored (a, b) pair with deterministically
///     corpus-pivoted addends,
///   * sqrt, round-to-int and all five conversions: every sign-mirrored
///     operand,
/// plus `random_cases_per_mode` ULP-stratified random operand draws per
/// (op, mode) cell seeded through shard_seed(seed, cell).
CorpusReport run_corner_corpus(std::size_t random_cases_per_mode = 0,
                               std::uint64_t seed = 0x5EE9'32);

}  // namespace fpq::parallel::sweep32
