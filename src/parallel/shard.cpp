#include "parallel/shard.hpp"

#include <algorithm>

namespace fpq::parallel {

namespace {

// splitmix64 finalizer (Steele/Lea/Flood), identical to the one in
// stats/prng.cpp. Duplicated five lines keep fpq_parallel a leaf library
// that fpq_stats itself can link against.
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t shard_seed(std::uint64_t base_seed,
                         std::uint64_t shard_index) noexcept {
  // Mix the shard index into the stream position, then finalize twice so
  // that even base_seed == shard_index patterns decorrelate.
  std::uint64_t state = base_seed ^ (0x9E3779B97F4A7C15ULL * (shard_index + 1));
  (void)splitmix64(state);
  return splitmix64(state);
}

ChunkRange chunk_range(std::size_t total, std::size_t chunks,
                       std::size_t chunk) noexcept {
  ChunkRange r;
  r.begin = total * chunk / chunks;
  r.end = total * (chunk + 1) / chunks;
  return r;
}

std::size_t recommended_chunks(const ThreadPool& pool, std::size_t total,
                               std::size_t min_per_chunk) noexcept {
  if (total == 0) return 0;
  if (min_per_chunk == 0) min_per_chunk = 1;
  // 4 chunks per lane leaves enough slack for stealing to even out load
  // imbalance without drowning in per-chunk overhead.
  const std::size_t by_lanes = pool.lanes() * 4;
  const std::size_t by_grain = (total + min_per_chunk - 1) / min_per_chunk;
  return std::clamp<std::size_t>(std::min(by_lanes, by_grain), 1, total);
}

}  // namespace fpq::parallel
