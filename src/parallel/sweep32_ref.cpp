// fpq::parallel::sweep32 — reference strategies and corpus. See
// sweep32_ref.hpp for the correctness arguments each reference leans on.

#include "parallel/sweep32_ref.hpp"

#include <array>
#include <bit>
#include <cfenv>
#include <cmath>

#include "softfloat/fast16.hpp"
#include "softfloat/format.hpp"

namespace fpq::parallel::sweep32 {

namespace {

using sweep_detail::fenv_mode_of;
using sweep_detail::hw_div;
using sweep_detail::hw_rint_f32;
using sweep_detail::hw_round_away_f32;
using sweep_detail::hw_sqrt;
using sweep_detail::hw_widen_f32;
using sweep_detail::ScopedFenvRounding;

constexpr std::uint32_t kSign32 = 0x8000'0000u;
constexpr std::uint32_t kQuiet32 = 0x0040'0000u;
constexpr std::uint64_t kSign64 = std::uint64_t{1} << 63;

/// NaN propagation matching detail::propagate_nan: first NaN operand in
/// argument order, quieted (flags are out of scope for the value refs).
sf::Float32 nan_of(sf::Float32 a, sf::Float32 b) noexcept {
  return a.is_nan() ? a.quieted() : b.quieted();
}

/// Narrow a host double to binary32 through the soft converter, value
/// only. The callers guarantee the double is the correctly rounded (or
/// round-to-odd compressed) 53-bit image of the exact result, making the
/// second rounding innocuous per the header notes.
sf::Float32 narrow53(double wide, sf::Rounding mode) noexcept {
  sf::Env env(mode);
  return sf::convert<32, 64>(sf::from_native(wide), env);
}

/// Encode a double that is exactly a binary16 value (or ±inf) back into
/// the binary16 format, by inverting fast16::widen with integer
/// arithmetic. Never touches the soft round/pack pipeline.
sf::Float16 encode16(double v) noexcept {
  const std::uint64_t b = std::bit_cast<std::uint64_t>(v);
  const auto sign = static_cast<std::uint16_t>((b >> 63) << 15);
  const std::uint64_t mag = b & ~kSign64;
  if (mag == 0) return sf::Float16{sign};
  if ((mag & sf::fast16::kExpMask64) == sf::fast16::kExpMask64) {
    return sf::Float16{static_cast<std::uint16_t>(sign | 0x7C00u)};
  }
  const int e = static_cast<int>(mag >> 52) - 1023;
  const std::uint64_t frac52 = mag & ((std::uint64_t{1} << 52) - 1);
  if (e >= -14) {  // normal in binary16: rebias 1023 -> 15
    const auto be = static_cast<std::uint16_t>(e + 15);
    return sf::Float16{static_cast<std::uint16_t>(
        sign | (be << 10) | static_cast<std::uint16_t>(frac52 >> 42))};
  }
  // Subnormal: value = sig16 * 2^-24 with sig16 < 2^10.
  const std::uint64_t sig = (frac52 | (std::uint64_t{1} << 52)) >>
                            (42 + (-14 - e));
  return sf::Float16{static_cast<std::uint16_t>(sign | sig)};
}

}  // namespace

sf::Float32 ref_sqrt(sf::Float32 a, sf::Rounding mode) {
  if (a.is_nan()) return a.quieted();
  if (a.is_zero()) return a;                       // sqrt(±0) = ±0
  if (a.sign()) return sf::Float32::quiet_nan();   // incl. sqrt(-inf)
  if (a.is_infinity()) return a;                   // sqrt(+inf) = +inf
  double wide;
  {
    ScopedFenvRounding guard(fenv_mode_of(mode));
    wide = hw_sqrt<double>(hw_widen_f32(sf::to_native(a)));
  }
  return narrow53(wide, mode);
}

sf::Float32 ref_div(sf::Float32 a, sf::Float32 b, sf::Rounding mode) {
  const bool sign = a.sign() != b.sign();
  if (a.is_nan() || b.is_nan()) return nan_of(a, b);
  if (a.is_infinity()) {
    if (b.is_infinity()) return sf::Float32::quiet_nan();
    return sf::Float32::infinity(sign);
  }
  if (b.is_infinity()) return sf::Float32::zero(sign);
  if (b.is_zero()) {
    if (a.is_zero()) return sf::Float32::quiet_nan();
    return sf::Float32::infinity(sign);
  }
  if (a.is_zero()) return sf::Float32::zero(sign);
  double wide;
  {
    ScopedFenvRounding guard(fenv_mode_of(mode));
    wide = hw_div<double>(hw_widen_f32(sf::to_native(a)),
                          hw_widen_f32(sf::to_native(b)));
  }
  return narrow53(wide, mode);
}

sf::Float32 ref_fma(sf::Float32 a, sf::Float32 b, sf::Float32 c,
                    sf::Rounding mode) {
  const bool prod_sign = a.sign() != b.sign();
  const bool zero_times_inf = (a.is_zero() && b.is_infinity()) ||
                              (a.is_infinity() && b.is_zero());
  if (a.is_nan()) return a.quieted();
  if (b.is_nan()) return b.quieted();
  if (c.is_nan()) return c.quieted();
  if (zero_times_inf) return sf::Float32::quiet_nan();
  if (a.is_infinity() || b.is_infinity()) {
    if (c.is_infinity() && c.sign() != prod_sign) {
      return sf::Float32::quiet_nan();  // inf - inf
    }
    return sf::Float32::infinity(prod_sign);
  }
  if (c.is_infinity()) return c;

  if (a.is_zero() || b.is_zero()) {  // exact product zero: result is 0 + c
    if (!c.is_zero()) return c;
    if (prod_sign == c.sign()) return sf::Float32::zero(prod_sign);
    return sf::Float32::zero(mode == sf::Rounding::kDown);
  }

  double odd;  // round-to-odd 53-bit image of the exact a*b + c
  {
    // TwoSum needs round-to-nearest; the product and widenings are exact
    // in any mode but run under the same guard for clarity.
    ScopedFenvRounding guard(FE_TONEAREST);
    const double pa = hw_widen_f32(sf::to_native(a)) *
                      hw_widen_f32(sf::to_native(b));  // exact: <= 48 bits
    const double cw = hw_widen_f32(sf::to_native(c));
    const double s = pa + cw;
    if (s == 0.0) {
      // The exact sum is a multiple of 2^-298, so RN(sum) == 0 implies the
      // sum is exactly zero: nonzero operands cancelled.
      return sf::Float32::zero(mode == sf::Rounding::kDown);
    }
    const double bb = s - pa;
    const double err = (pa - (s - bb)) + (cw - bb);
    odd = s;
    if (err != 0.0 && (std::bit_cast<std::uint64_t>(s) & 1) == 0) {
      // s is the even neighbour of the exact sum: step one ulp toward the
      // residual so the kept value is odd (round-to-odd).
      odd = sf::fast16::step_toward(s, err);
    }
  }
  return narrow53(odd, mode);
}

sf::Float32 ref_round_to_integral(sf::Float32 a, sf::Rounding mode) {
  if (a.is_nan()) return a.quieted();
  if (!a.is_finite() || a.is_zero()) return a;
  if (mode == sf::Rounding::kNearestAway) {
    return sf::from_native(hw_round_away_f32(sf::to_native(a)));
  }
  ScopedFenvRounding guard(fenv_mode_of(mode));
  return sf::from_native(hw_rint_f32(sf::to_native(a)));
}

sf::Float64 ref_widen64(sf::Float32 a) {
  if (a.is_nan()) {
    const std::uint64_t bits =
        (a.sign() ? kSign64 : 0) | sf::fast16::kExpMask64 |
        (std::uint64_t{1} << 51) |  // quiet bit
        (static_cast<std::uint64_t>(a.fraction()) << 29);
    return sf::Float64{bits};
  }
  return sf::from_native(hw_widen_f32(sf::to_native(a)));
}

sf::Float16 ref_narrow16(sf::Float32 a, sf::Rounding mode) {
  if (a.is_nan()) {
    const auto frac = static_cast<std::uint16_t>((a.fraction() >> 13) |
                                                 0x0200u);  // quiet bit
    return sf::Float16{static_cast<std::uint16_t>(
        (a.sign() ? 0x8000u : 0u) | 0x7C00u | frac)};
  }
  if (a.is_infinity()) {
    return sf::Float16{
        static_cast<std::uint16_t>((a.sign() ? 0x8000u : 0u) | 0x7C00u)};
  }
  if (a.is_zero()) {
    return sf::Float16{static_cast<std::uint16_t>(a.sign() ? 0x8000u : 0u)};
  }
  // Finite nonzero binary32 values are normal doubles (min subnormal is
  // 2^-149), so narrow16_value's precondition holds.
  return encode16(
      sf::fast16::narrow16_value(hw_widen_f32(sf::to_native(a)), mode));
}

sf::BFloat16 ref_narrow_bf16(sf::Float32 a, sf::Rounding mode) {
  const std::uint32_t b = a.bits;
  const std::uint32_t sign = b & kSign32;
  if (a.is_nan()) {
    const auto frac = static_cast<std::uint16_t>(((b & 0x007F'FFFFu) >> 16) |
                                                 0x0040u);  // quiet bit
    return sf::BFloat16{static_cast<std::uint16_t>(
        (sign >> 16) | 0x7F80u | frac)};
  }
  if (a.is_infinity()) {
    return sf::BFloat16{
        static_cast<std::uint16_t>((sign >> 16) | 0x7F80u)};
  }
  // bfloat16 is binary32's sign/exponent layout with the low 16 fraction
  // bits dropped, and the encodings order magnitudes monotonically, so
  // one masked integer add on the binary32 pattern rounds correctly in
  // every mode — the carry out of the fraction walks binades (subnormal
  // boundary included) and anything past the largest finite pattern
  // saturates per mode.
  std::uint32_t mag = b ^ sign;
  constexpr std::uint32_t kLow = 0xFFFFu;
  constexpr std::uint32_t kMaxMag = 0x7F7F'0000u;  // bf16 max finite, widened
  switch (mode) {
    case sf::Rounding::kNearestEven:
      mag += (kLow >> 1) + ((mag >> 16) & 1);
      break;
    case sf::Rounding::kNearestAway:
      mag += (kLow >> 1) + 1;
      break;
    case sf::Rounding::kTowardZero:
      break;
    case sf::Rounding::kUp:
      if (sign == 0) mag += kLow;
      break;
    case sf::Rounding::kDown:
      if (sign != 0) mag += kLow;
      break;
  }
  mag &= ~kLow;
  if (mag > kMaxMag) {
    const bool to_inf = mode == sf::Rounding::kNearestEven ||
                        mode == sf::Rounding::kNearestAway ||
                        (mode == sf::Rounding::kUp && sign == 0) ||
                        (mode == sf::Rounding::kDown && sign != 0);
    mag = to_inf ? 0x7F80'0000u : kMaxMag;
  }
  return sf::BFloat16{static_cast<std::uint16_t>((sign | mag) >> 16)};
}

sf::Float32 ref_widen_from16(sf::Float16 a) {
  const std::uint32_t sign = a.sign() ? kSign32 : 0;
  const auto be = static_cast<std::uint32_t>(a.biased_exponent());
  const auto frac = static_cast<std::uint32_t>(a.fraction());
  if (be == 0x1F) {  // inf / NaN: payload into the top fraction bits
    std::uint32_t bits = sign | 0x7F80'0000u | (frac << 13);
    if (frac != 0) bits |= kQuiet32;
    return sf::Float32{bits};
  }
  if (be != 0) {  // normal: rebias 15 -> 127
    return sf::Float32{sign | ((be - 15 + 127) << 23) | (frac << 13)};
  }
  if (frac == 0) return sf::Float32{sign};
  // Subnormal: value = frac * 2^-24, normalized in binary32.
  const int top = 31 - std::countl_zero(frac);  // 0..9
  const std::uint32_t mant = (frac ^ (std::uint32_t{1} << top))
                             << (23 - top);
  const auto bexp = static_cast<std::uint32_t>(top - 24 + 127);
  return sf::Float32{sign | (bexp << 23) | mant};
}

sf::Float32 ref_widen_from_bf16(sf::BFloat16 a) {
  std::uint32_t bits = static_cast<std::uint32_t>(a.bits) << 16;
  if (a.is_nan()) bits |= kQuiet32;
  return sf::Float32{bits};
}

// -- Corner-case corpus -----------------------------------------------------

namespace {

// Positive binary32 encodings; the drivers mirror the sign bit. Grouped by
// what they stress. See docs/sweep.md for the rationale per group.
constexpr std::uint32_t kCorner32[] = {
    // Zero and the subnormal border.
    0x0000'0000u,  // +0
    0x0000'0001u,  // min subnormal 2^-149
    0x0000'0002u, 0x0000'0003u,
    0x0000'8000u,               // bfloat16-tie generator in the subnormals
    0x0001'8000u,               // odd-kept-bit bfloat16 tie
    0x003F'FFFFu, 0x0040'0000u,  // mid-subnormal carry edge
    0x007F'FFFEu, 0x007F'FFFFu,  // max subnormal
    0x0080'0000u, 0x0080'0001u,  // min normal 2^-126 and successor
    0x00FF'FFFFu, 0x0100'0000u,  // first binade edge
    // Powers of two across the range (exact sqrt/div scaling, tie
    // generators for div: 2^k / 3, 3 / 2^k land on repeating fractions).
    0x0180'0000u,               // 2^-124
    0x1000'0000u,               // 2^-95
    0x2000'0000u,               // 2^-63
    0x3000'0000u,               // 2^-31
    0x3300'0000u,               // 2^-25 (half of binary16 min subnormal)
    0x3300'0001u,               // just above that half
    0x3380'0000u,               // 2^-24 = binary16 min subnormal
    0x3380'0001u,
    0x3800'0000u,               // 2^-15
    0x3880'0000u,               // 2^-14 = binary16 min normal
    0x387F'C000u,               // binary16 max subnormal, exactly
    0x387F'E000u,               // tie between b16 max subnormal and min normal
    0x3880'1000u,               // b16 normal tie (2^-14 + half b16-ulp)
    0x3880'2000u,               // 2^-14 + one b16-ulp (exact in b16)
    // Around one.
    0x3F7F'FFFEu, 0x3F7F'FFFFu,  // just under 1
    0x3F80'0000u, 0x3F80'0001u, 0x3F80'0002u,
    0x3F80'8000u,               // 1 + 2^-8: bfloat16 tie above 1
    0x3F81'8000u,               // odd-kept-bit bfloat16 tie above 1
    0x3FC0'0000u,               // 1.5
    0x3FFF'FFFFu,               // just under 2
    0x4000'0000u,               // 2
    0x4040'0000u,               // 3 (div ties: x/3 patterns)
    0x4049'0FDBu,               // pi (inexact everything)
    0x40C0'0000u,               // 6
    0x4100'0000u,               // 8
    0x4110'0000u,               // 9 (perfect square)
    0x42C8'0000u,               // 100
    0x447A'0000u,               // 1000
    // Integer-boundary region for round-to-int.
    0x4AFF'FFFFu,               // 8388607.5 (odd .5: ties differ by mode)
    0x4B00'0000u,               // 2^23 (first all-integral binade)
    0x4B00'0001u,
    0x4B7F'FFFFu,
    0x4B80'0000u,               // 2^24
    0x4BFF'FFFFu,
    0x4F00'0000u,               // 2^31
    // binary16 overflow border (narrowing saturation per mode).
    0x477F'E000u,               // 65504 = binary16 max finite
    0x477F'EFFFu,               // below the overflow tie
    0x477F'F000u,               // 65520: the exact b16 overflow tie
    0x477F'F001u,               // just above the tie
    0x4780'0000u,               // 65536 = 2^16
    0x4980'0000u,               // 2^20 (well past b16 range)
    // bfloat16 overflow border.
    0x7F7F'0000u,               // bf16 max finite, widened
    0x7F7F'7FFFu,               // below the bf16 overflow tie
    0x7F7F'8000u,               // the exact bf16 overflow tie
    0x7F7F'8001u,               // just above the tie
    // Large normals and the top binade.
    0x5F80'0000u,               // 2^64
    0x7E80'0000u,               // 2^126
    0x7F00'0000u,               // 2^127
    0x7F7F'FFFEu, 0x7F7F'FFFFu,  // max finite
    // Cancellation halves (fma residue stressors: 1 +/- ulp, 2^24 +/- 1).
    0x4B80'0001u,               // 2^24 + 2
    0x4B7F'FFFEu,               // 2^24 - 2
    0x3F80'0003u,               // 1 + 3 ulp
    0x3E80'0000u,               // 0.25
    0x3EAA'AAABu,               // nearest to 1/3
    0x3E99'999Au,               // nearest to 0.3 (paper's decimal trap)
    0x3DCC'CCCDu,               // nearest to 0.1
    0x4093'4A45u,               // 4.6027 (arbitrary dense pattern)
    0x3C23'D70Au,               // nearest to 0.01
    0x3300'0003u,               // deep subnormal neighbour
    0x0B80'0000u,               // 2^-104 (fma product underflow range)
    0x0B80'0001u,
    0x1780'0000u,               // 2^-80
    0x5A00'0000u,               // 2^53 (double-precision quantum edge)
    0x5A80'0000u,               // 2^54
    // Rounding-boundary quotients: operands whose pairwise quotients land
    // on or next to binary32 rounding boundaries, probing the div/sqrt
    // innocuous-double-rounding exclusion from both sides. Odd integers
    // just above 2^23 divided by the powers of two here produce exact
    // x.5 quotients (real ties); the 4/3 neighbours produce quotients a
    // minimal distance from a tie.
    0x40A0'0000u,               // 5
    0x40E0'0000u,               // 7
    0x4120'0000u,               // 10
    0x4B00'0003u,               // 2^23 + 3 (odd: /2 is an exact .5 tie)
    0x4B00'0005u,               // 2^23 + 5
    0x3FAA'AAAAu, 0x3FAA'AAABu,  // straddling 4/3 (quotient tie probe)
    // Subnormal x subnormal fma operands: products down at 2^-298 that
    // only the widened TwoSum tail can see against a normal addend, and
    // 2^-75-scale values whose squares sit exactly at half the minimum
    // subnormal (the hardest underflow-rounding tie).
    0x0000'0007u, 0x0000'00FFu,  // small subnormals, dense low bits
    0x0012'3456u, 0x0055'5555u,  // patterned subnormal fractions
    0x007F'0000u,               // near-max subnormal, trailing zeros
    0x1A00'0000u,               // 2^-75 (square = 2^-150 = half min sub)
    0x1A00'0001u,               // 2^-75 + ulp (square just above the tie)
    0x1A80'0000u,               // 2^-74
    // narrow16_value boundary neighbourhood: encodings bracketing the
    // fast16 operand-narrowing branch points (half the minimum binary16
    // subnormal, the subnormal-step ties, and the max-subnormal /
    // min-normal border), so a misplaced branch in the value-only
    // narrower shows up as a corpus mismatch.
    0x32FF'FFFFu,               // just below 2^-25 (rounds to 0 or minsub)
    0x33C0'0000u,               // 1.5 * 2^-24: exact b16 subnormal-step tie
    0x33A0'0000u,               // 1.25 * 2^-24 (interior, rounds down)
    0x387F'DFFFu,               // just below the max-sub/min-normal tie
    0x387F'E001u,               // just above that tie
    0x38FF'F000u,               // b16 normal tie just under 2^-13
    0x38FF'E000u,               // exactly representable neighbour below
    // Infinity and NaN payload variants.
    0x7F80'0000u,               // +inf
    0x7F80'0001u,               // sNaN, minimum payload
    0x7FBF'FFFFu,               // sNaN, maximum payload
    0x7FC0'0000u,               // default qNaN
    0x7FC0'0001u,               // qNaN, low payload bit
    0x7FC1'5555u,               // qNaN, patterned payload
    0x7FFF'FFFFu,               // qNaN, maximum payload
};

}  // namespace

std::span<const std::uint32_t> corner32_patterns() { return kCorner32; }

std::size_t corner32_operand_count() {
  return 2 * std::size(kCorner32);  // sign-mirrored; -0 is distinct from +0
}

std::uint32_t ulp_stratified_pattern(sweep_detail::Sm64& g) noexcept {
  const std::uint64_t r = g.next();
  // Exponent band uniform over [0, 254]: band 0 is the subnormals, 254 the
  // top binade; 255 (inf/NaN) is excluded — the corpus covers specials
  // deterministically. The modulo bias (2^41 % 255) is irrelevant for a
  // stress sampler and keeps the draw a single next() call.
  const auto band = static_cast<std::uint32_t>((r >> 23) % 255u);
  const auto frac = static_cast<std::uint32_t>(r & 0x007F'FFFFu);
  const auto sign = static_cast<std::uint32_t>(r >> 63) << 31;
  return sign | (band << 23) | frac;
}

}  // namespace fpq::parallel::sweep32
