// fpq::parallel::sweep32 — exact (or provably correctly rounded) binary32
// references, the corner-case corpus, and ULP-stratified operand sampling.
//
// These are the "want" side of the 2^32 differential sweeps in sweep32.hpp
// and of the checked-in div/fma corpus. Reference strategies, per op:
//
//  * sqrt: the host's 53-bit correctly rounded sqrt computed under a
//    matching fenv direction, narrowed under the target mode. Double
//    rounding 53 -> 24 bits is innocuous (Figueroa: wide precision >=
//    2p + 2 = 50), and a binary32 root can never land on a 24-bit-grid
//    midpoint (its square would need ~49 significand bits), so ties never
//    arise and the hardware's ties-to-even intermediate also serves
//    roundTiesToAway.
//
//  * div: same structure. A finite quotient exactly equal to a 24-bit
//    midpoint (a 25-bit-odd significand) would force the dividend's
//    significand past 24 bits, so the true quotient is never a midpoint;
//    and any value that IS a representable midpoint has <= 25 significand
//    bits and is therefore exact in binary64, meaning the 53-bit
//    intermediate never sits ambiguously on a 24-bit rounding boundary.
//    This covers subnormal quotients too (53 >= 2p + 2 holds a fortiori
//    at reduced subnormal precision).
//
//  * fma: the product of two binary32 values is EXACT in binary64
//    (<= 48 significand bits); Knuth TwoSum captures the addend exactly,
//    and rounding the 53-bit sum to odd before the final narrowing
//    (Boldo–Melquiond, valid since 53 >= 24 + 2) makes the narrowing
//    round as if from the exact value in all five modes.
//
//  * roundToIntegralExact: the host's rint under a matching fenv
//    direction; roundTiesToAway uses the host's round(), whose
//    ties-away-from-zero semantics are mode-independent and exactly the
//    IEEE attribute.
//
//  * binary32 -> binary64: the host's widening conversion (exact in every
//    mode).
//
//  * binary32 -> binary16: exact widening to binary64 followed by
//    fast16::narrow16_value — the add-and-mask narrowing path that shares
//    no code with convert<16,32>'s unpack/round_pack pipeline.
//
//  * binary32 <-> bfloat16: pure integer arithmetic on the encodings.
//    bfloat16 is binary32's exponent layout with 16 fraction bits
//    dropped, so correctly rounding binary32 -> bfloat16 is rounding the
//    low 16 bits of the binary32 pattern (the carry walks binades and
//    saturates into infinity per mode), and widening is a 16-bit shift.
//
//  * binary16 -> binary32: integer re-biasing (subnormals normalize),
//    independent of convert's unpack path.
//
// NaN convention matches the soft engine's convert: quiet the NaN, keep
// sign, keep as much payload as fits (shifted into the destination's top
// fraction bits); signaling NaN inputs additionally raise invalid.
#pragma once

#include <cstdint>
#include <span>

#include "parallel/sweep_util.hpp"
#include "softfloat/env.hpp"
#include "softfloat/value.hpp"

namespace fpq::parallel::sweep32 {

namespace sf = fpq::softfloat;

// -- Correctly rounded references -------------------------------------------

/// sqrt(a), correctly rounded under `mode` (all five modes).
sf::Float32 ref_sqrt(sf::Float32 a, sf::Rounding mode);

/// a / b, correctly rounded under `mode` (all five modes).
sf::Float32 ref_div(sf::Float32 a, sf::Float32 b, sf::Rounding mode);

/// fma(a, b, c) with a single rounding under `mode` (all five modes).
sf::Float32 ref_fma(sf::Float32 a, sf::Float32 b, sf::Float32 c,
                    sf::Rounding mode);

/// roundToIntegralExact(a) under `mode` (all five modes). Value only; the
/// inexact-iff-changed flag contract is asserted by the sweep separately.
sf::Float32 ref_round_to_integral(sf::Float32 a, sf::Rounding mode);

/// binary32 -> binary64 (exact, mode-independent).
sf::Float64 ref_widen64(sf::Float32 a);

/// binary32 -> binary16, correctly rounded under `mode`.
sf::Float16 ref_narrow16(sf::Float32 a, sf::Rounding mode);

/// binary32 -> bfloat16, correctly rounded under `mode` (integer
/// add-and-mask on the encoding).
sf::BFloat16 ref_narrow_bf16(sf::Float32 a, sf::Rounding mode);

/// binary16 -> binary32 (exact widening; integer re-biasing).
sf::Float32 ref_widen_from16(sf::Float16 a);

/// bfloat16 -> binary32 (exact widening; a 16-bit shift).
sf::Float32 ref_widen_from_bf16(sf::BFloat16 a);

// -- Corner-case corpus -----------------------------------------------------

/// The checked-in binary32 corner patterns: subnormal borders, binade
/// edges, format extremes, exactly-representable tie generators,
/// cancellation pairs' halves, NaN payload variants. Positive encodings
/// only — callers mirror the sign bit (the corpus driver does).
std::span<const std::uint32_t> corner32_patterns();

/// Number of distinct operand encodings the corpus spans once signs are
/// mirrored (2 * corner32_patterns().size(), minus the duplicated zero).
std::size_t corner32_operand_count();

/// ULP-stratified random binary32 pattern: the exponent band is drawn
/// uniformly over [subnormal, max-normal] (so deep subnormals and huge
/// magnitudes are as likely as the dense middle — a uniform draw over
/// encodings would almost never probe the extremes' ULP regimes), the
/// fraction and sign uniformly. Never produces Inf/NaN; corner32_patterns
/// covers those deterministically.
std::uint32_t ulp_stratified_pattern(sweep_detail::Sm64& g) noexcept;

}  // namespace fpq::parallel::sweep32
