// fpq::parallel — the sharded softfloat-vs-native differential oracle.
//
// The harness's ground truth rests on the soft IEEE-754 engine agreeing
// with native hardware wherever hardware is IEEE. This module turns that
// claim into a scalable sweep: the (format × operation × rounding mode ×
// operand class) space is sharded into independent tasks, distributed over
// a ThreadPool, checked against exact (or provably tight) references, and
// memoized per shard in a ResultCache so repeated sweeps are nearly free.
//
// Two reference strategies:
//
//  * binary16: every add/sub/mul of binary16 values is EXACT in binary64
//    (<= 50 significant bits), so one soft narrowing under the target mode
//    is the correctly rounded answer. div/sqrt use the hardware binary64
//    result computed under a matching rounding direction — double rounding
//    53 -> 11 bits is innocuous (Figueroa: wide precision >= 2p + 2), and
//    binary16 quotients/roots can never land on an 11-bit tie, which also
//    legitimizes roundTiesToAway via the hardware's ties-to-even. fma uses
//    the exact product plus Knuth TwoSum, rounded to odd before the final
//    narrowing (Boldo–Melquiond), which is exact in all five modes.
//
//  * binary32/binary64: the soft engine runs head-to-head against the
//    host FPU's same-width operations under the four hardware-expressible
//    rounding modes, bit for bit.
//
// Determinism: task operand streams derive from shard_seed(seed, task) —
// a sweep's counts are a pure function of its config, independent of
// thread count and schedule, which is what makes the per-shard cache
// sound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/result_cache.hpp"
#include "parallel/thread_pool.hpp"
#include "softfloat/env.hpp"

namespace fpq::parallel {

enum class SweepOp : std::uint8_t { kAdd, kSub, kMul, kDiv, kSqrt, kFma };
const char* sweep_op_name(SweepOp op) noexcept;

/// Operand population a task draws from; part of the cache key so a shard
/// advertises exactly which slice of the input space it covered.
enum class OperandClass : std::uint8_t {
  kNormal,     ///< finite normals, full exponent range
  kSubnormal,  ///< subnormals (and the zero border)
  kSpecial,    ///< zeros, infinities, NaNs, format extremes
  kMixed,      ///< uniform over all encodings
};
const char* operand_class_name(OperandClass c) noexcept;

inline constexpr SweepOp kAllSweepOps[] = {
    SweepOp::kAdd, SweepOp::kSub, SweepOp::kMul,
    SweepOp::kDiv, SweepOp::kSqrt, SweepOp::kFma,
};
inline constexpr softfloat::Rounding kAllRoundings[] = {
    softfloat::Rounding::kNearestEven, softfloat::Rounding::kTowardZero,
    softfloat::Rounding::kDown, softfloat::Rounding::kUp,
    softfloat::Rounding::kNearestAway,
};
inline constexpr OperandClass kAllOperandClasses[] = {
    OperandClass::kNormal, OperandClass::kSubnormal, OperandClass::kSpecial,
    OperandClass::kMixed,
};

struct SweepConfig {
  std::vector<SweepOp> ops{std::begin(kAllSweepOps), std::end(kAllSweepOps)};
  std::vector<softfloat::Rounding> modes{std::begin(kAllRoundings),
                                         std::end(kAllRoundings)};
  std::vector<OperandClass> classes{std::begin(kAllOperandClasses),
                                    std::end(kAllOperandClasses)};
  std::uint64_t seed = 0x5EED16;
  std::size_t cases_per_task = 2048;
  std::size_t tasks_per_axis = 8;  ///< shards per (op, mode, class) cell
};

struct SweepReport {
  std::uint64_t checked = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t tasks = 0;
  std::string first_mismatch;  ///< diagnostic for the lowest-index failure
};

/// Randomized class-stratified binary16 differential sweep (exact oracle).
SweepReport run_binary16_sweep(ThreadPool& pool, const SweepConfig& config,
                               ResultCache* cache);

/// Same sweep against the host FPU at native widths. `format_bits` must
/// be 32 or 64; roundTiesToAway (not hardware-expressible) and kFma-free
/// op lists are filtered automatically... modes the hardware cannot
/// express are skipped rather than failed.
SweepReport run_native_sweep(ThreadPool& pool, int format_bits,
                             const SweepConfig& config, ResultCache* cache);

/// Exhaustive binary16 sweep: for every op and mode, ALL 65536 encodings
/// of the first operand, with `samples_per_operand` deterministic partner
/// operands each for binary/ternary ops (unary ops cover the full space
/// exactly once). This is the bench's `--threads N` workload and the
/// engine behind the exhaustive fma/sqrt tests.
struct ExhaustiveConfig {
  std::vector<SweepOp> ops{std::begin(kAllSweepOps), std::end(kAllSweepOps)};
  std::vector<softfloat::Rounding> modes{std::begin(kAllRoundings),
                                         std::end(kAllRoundings)};
  std::size_t samples_per_operand = 4;
  std::uint64_t seed = 0xE16;
  std::size_t chunks_per_cell = 64;  ///< shards over the 2^16 space per cell
};

SweepReport run_exhaustive_binary16(ThreadPool& pool,
                                    const ExhaustiveConfig& config);

}  // namespace fpq::parallel
