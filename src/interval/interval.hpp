// fpq::interval — interval arithmetic with directed rounding.
//
// A second rigorous answer to the paper's §V "sanity check" action,
// complementary to shadow execution: instead of re-running at higher
// precision, compute a GUARANTEED enclosure [lo, hi] of the exact real
// result using the softfloat engine's correctly rounded roundTowardNegative
// / roundTowardPositive modes. If the enclosure is wide, the binary64
// answer cannot be trusted — no oracle precision choice required.
//
// Intervals are over binary64 endpoints. Empty and whole-line intervals
// are representable; NaN operands produce the "invalid" interval.
#pragma once

#include <span>
#include <string>

#include "ir/expr.hpp"
#include "softfloat/ops.hpp"
#include "softfloat/value.hpp"

namespace fpq::interval {

/// A closed interval [lo, hi] with lo <= hi, or invalid() when an invalid
/// operation (0/0, inf-inf, sqrt of an all-negative interval) occurred.
class Interval {
 public:
  /// [0, 0].
  Interval() = default;

  /// Degenerate interval [x, x]; NaN gives invalid().
  static Interval point(double x);
  /// [lo, hi]; requires lo <= hi (asserted).
  static Interval bounds(double lo, double hi);
  static Interval invalid();
  /// (-inf, +inf).
  static Interval whole();

  bool is_invalid() const noexcept { return invalid_; }
  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// hi - lo rounded up (so the reported width is itself an upper bound);
  /// +inf for unbounded or invalid intervals.
  double width() const noexcept;

  /// Width relative to magnitude: width / max(|lo|, |hi|, DBL_MIN);
  /// +inf for unbounded/invalid. The "suspicion score" of an enclosure.
  double relative_width() const noexcept;

  bool contains(double x) const noexcept;

  /// "[1.0000000000000000, 1.0000000000000002]" or "[invalid]".
  std::string to_string() const;

  // -- Arithmetic (directed rounding on each endpoint) --------------------
  static Interval add(const Interval& a, const Interval& b);
  static Interval sub(const Interval& a, const Interval& b);
  static Interval mul(const Interval& a, const Interval& b);
  /// Division by an interval containing 0 (but not identical to [0,0])
  /// returns whole(); [x,x]/[0,0] is invalid.
  static Interval div(const Interval& a, const Interval& b);
  /// sqrt clips the negative part; an entirely negative interval is
  /// invalid.
  static Interval sqrt(const Interval& a);

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  bool invalid_ = false;
};

/// Evaluates an fpq::ir expression tree (opt::Expr is the same type) to a
/// guaranteed enclosure of its exact real value given exact constants.
/// `bindings` feeds any kVar nodes, indexed by var_index; each bound value
/// enters as the degenerate interval [x, x].
Interval evaluate(const ir::Expr& expr,
                  std::span<const double> bindings = {});

/// Combined verdict: the binary64 result, its guaranteed enclosure, and
/// whether the enclosure certifies / indicts the double result.
struct EnclosureReport {
  double double_result = 0.0;
  Interval enclosure;
  /// The enclosure proves the true value is NOT representable anywhere
  /// near the double result (double outside the enclosure) — impossible
  /// for correct interval arithmetic unless the double path hit a
  /// format-induced NaN; recorded for completeness.
  bool double_escapes = false;
  /// relative_width() above this is flagged.
  bool enclosure_is_wide = false;
  double relative_width = 0.0;
};

/// Runs both the strict binary64 evaluation (through fpq::ir) and the
/// interval evaluation.
EnclosureReport certify(const ir::Expr& expr,
                        double wide_threshold = 1e-6,
                        std::span<const double> bindings = {});

}  // namespace fpq::interval
