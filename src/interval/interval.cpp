#include "interval/interval.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

#include "ir/evaluator.hpp"
#include "ir/evaluators.hpp"

namespace fpq::interval {

namespace {

namespace sf = fpq::softfloat;

constexpr double kInf = std::numeric_limits<double>::infinity();

// Directed binary64 operations via the softfloat engine: round the exact
// result toward -inf / +inf. (The host FPU could do this with fesetround,
// but the engine keeps it portable and independent of the build's fenv
// discipline.)
double op_down(char o, double a, double b) {
  sf::Env env(sf::Rounding::kDown);
  switch (o) {
    case '+':
      return sf::to_native(
          sf::add(sf::from_native(a), sf::from_native(b), env));
    case '-':
      return sf::to_native(
          sf::sub(sf::from_native(a), sf::from_native(b), env));
    case '*':
      return sf::to_native(
          sf::mul(sf::from_native(a), sf::from_native(b), env));
    case '/':
      return sf::to_native(
          sf::div(sf::from_native(a), sf::from_native(b), env));
  }
  return 0.0;
}

double op_up(char o, double a, double b) {
  sf::Env env(sf::Rounding::kUp);
  switch (o) {
    case '+':
      return sf::to_native(
          sf::add(sf::from_native(a), sf::from_native(b), env));
    case '-':
      return sf::to_native(
          sf::sub(sf::from_native(a), sf::from_native(b), env));
    case '*':
      return sf::to_native(
          sf::mul(sf::from_native(a), sf::from_native(b), env));
    case '/':
      return sf::to_native(
          sf::div(sf::from_native(a), sf::from_native(b), env));
  }
  return 0.0;
}

}  // namespace

Interval Interval::point(double x) {
  if (std::isnan(x)) return invalid();
  Interval r;
  r.lo_ = x;
  r.hi_ = x;
  return r;
}

Interval Interval::bounds(double lo, double hi) {
  if (std::isnan(lo) || std::isnan(hi)) return invalid();
  assert(lo <= hi);
  Interval r;
  r.lo_ = lo;
  r.hi_ = hi;
  return r;
}

Interval Interval::invalid() {
  Interval r;
  r.invalid_ = true;
  r.lo_ = std::numeric_limits<double>::quiet_NaN();
  r.hi_ = std::numeric_limits<double>::quiet_NaN();
  return r;
}

Interval Interval::whole() { return bounds(-kInf, kInf); }

double Interval::width() const noexcept {
  if (invalid_) return kInf;
  return op_up('-', hi_, lo_);
}

double Interval::relative_width() const noexcept {
  if (invalid_) return kInf;
  const double w = width();
  if (std::isinf(w)) return kInf;
  const double mag = std::max(
      {std::fabs(lo_), std::fabs(hi_), std::numeric_limits<double>::min()});
  return w / mag;
}

bool Interval::contains(double x) const noexcept {
  if (invalid_ || std::isnan(x)) return false;
  return lo_ <= x && x <= hi_;
}

std::string Interval::to_string() const {
  if (invalid_) return "[invalid]";
  char buf[96];
  std::snprintf(buf, sizeof buf, "[%.17g, %.17g]", lo_, hi_);
  return buf;
}

Interval Interval::add(const Interval& a, const Interval& b) {
  if (a.invalid_ || b.invalid_) return invalid();
  // inf + (-inf) at an endpoint means the enclosure is unbounded there.
  const double lo = op_down('+', a.lo_, b.lo_);
  const double hi = op_up('+', a.hi_, b.hi_);
  if (std::isnan(lo) || std::isnan(hi)) return whole();
  return bounds(lo, hi);
}

Interval Interval::sub(const Interval& a, const Interval& b) {
  if (a.invalid_ || b.invalid_) return invalid();
  const double lo = op_down('-', a.lo_, b.hi_);
  const double hi = op_up('-', a.hi_, b.lo_);
  if (std::isnan(lo) || std::isnan(hi)) return whole();
  return bounds(lo, hi);
}

Interval Interval::mul(const Interval& a, const Interval& b) {
  if (a.invalid_ || b.invalid_) return invalid();
  double lo = kInf, hi = -kInf;
  for (double x : {a.lo_, a.hi_}) {
    for (double y : {b.lo_, b.hi_}) {
      double down = op_down('*', x, y);
      double up = op_up('*', x, y);
      // 0 * inf corner: the exact product of an endpoint pair is an
      // indeterminate form only when one side is an unbounded endpoint;
      // the enclosure contribution of "0 times anything" is 0.
      if (std::isnan(down)) down = 0.0;
      if (std::isnan(up)) up = 0.0;
      lo = std::min(lo, down);
      hi = std::max(hi, up);
    }
  }
  return bounds(lo, hi);
}

Interval Interval::div(const Interval& a, const Interval& b) {
  if (a.invalid_ || b.invalid_) return invalid();
  if (b.lo_ == 0.0 && b.hi_ == 0.0) {
    // x / [0,0]: invalid if 0 in a (0/0 possible), else unbounded.
    if (a.contains(0.0)) return invalid();
    return whole();
  }
  if (b.contains(0.0)) return whole();
  double lo = kInf, hi = -kInf;
  for (double x : {a.lo_, a.hi_}) {
    for (double y : {b.lo_, b.hi_}) {
      double down = op_down('/', x, y);
      double up = op_up('/', x, y);
      if (std::isnan(down)) down = 0.0;  // inf/inf corner: 0-ward
      if (std::isnan(up)) up = 0.0;
      lo = std::min(lo, down);
      hi = std::max(hi, up);
    }
  }
  return bounds(lo, hi);
}

Interval Interval::sqrt(const Interval& a) {
  if (a.invalid_) return invalid();
  if (a.hi_ < 0.0) return invalid();
  const double lo_clipped = std::max(a.lo_, 0.0);
  sf::Env down(sf::Rounding::kDown);
  sf::Env up(sf::Rounding::kUp);
  const double lo =
      sf::to_native(sf::sqrt(sf::from_native(lo_clipped), down));
  const double hi = sf::to_native(sf::sqrt(sf::from_native(a.hi_), up));
  return bounds(lo, hi);
}

namespace {

// The interval semantics of every IR node, as one ir::Evaluator whose
// value domain is the enclosure itself.
class IntervalEvaluator final : public ir::Evaluator<Interval> {
 public:
  Interval constant(const ir::Expr& e) override {
    return Interval::point(sf::to_native(e.node().value));
  }
  Interval variable(const ir::Expr& e, double bound) override {
    (void)e;
    return Interval::point(bound);
  }
  Interval neg(const ir::Expr& e, const Interval& a) override {
    (void)e;
    if (a.is_invalid()) return Interval::invalid();
    // Endpoint negation is exact in binary64: no directed rounding needed.
    return Interval::bounds(-a.hi(), -a.lo());
  }
  Interval add(const ir::Expr& e, const Interval& a,
               const Interval& b) override {
    (void)e;
    return Interval::add(a, b);
  }
  Interval sub(const ir::Expr& e, const Interval& a,
               const Interval& b) override {
    (void)e;
    return Interval::sub(a, b);
  }
  Interval mul(const ir::Expr& e, const Interval& a,
               const Interval& b) override {
    (void)e;
    return Interval::mul(a, b);
  }
  Interval div(const ir::Expr& e, const Interval& a,
               const Interval& b) override {
    (void)e;
    return Interval::div(a, b);
  }
  Interval sqrt(const ir::Expr& e, const Interval& a) override {
    (void)e;
    return Interval::sqrt(a);
  }
  Interval fma(const ir::Expr& e, const Interval& a, const Interval& b,
               const Interval& c) override {
    (void)e;
    // Enclosure of a*b + c (no single-rounding advantage needed:
    // enclosures only widen).
    return Interval::add(Interval::mul(a, b), c);
  }
  Interval cmp_eq(const ir::Expr& e, const Interval& a,
                  const Interval& b) override {
    (void)e;
    if (a.is_invalid() || b.is_invalid()) return Interval::invalid();
    if (a.hi() < b.lo() || b.hi() < a.lo()) return Interval::point(0.0);
    if (a.lo() == a.hi() && b.lo() == b.hi() && a.lo() == b.lo())
      return Interval::point(1.0);
    return Interval::bounds(0.0, 1.0);  // undecidable from the enclosures
  }
  Interval cmp_lt(const ir::Expr& e, const Interval& a,
                  const Interval& b) override {
    (void)e;
    if (a.is_invalid() || b.is_invalid()) return Interval::invalid();
    if (a.hi() < b.lo()) return Interval::point(1.0);
    if (b.hi() <= a.lo()) return Interval::point(0.0);
    return Interval::bounds(0.0, 1.0);
  }
};

}  // namespace

Interval evaluate(const ir::Expr& expr, std::span<const double> bindings) {
  IntervalEvaluator evaluator;
  return ir::evaluate_tree<Interval>(expr, evaluator, bindings);
}

EnclosureReport certify(const ir::Expr& expr, double wide_threshold,
                        std::span<const double> bindings) {
  EnclosureReport report;
  report.double_result = sf::to_native(
      ir::evaluate(expr, ir::EvalConfig::ieee_strict(), bindings).value);
  report.enclosure = evaluate(expr, bindings);
  report.relative_width = report.enclosure.relative_width();
  report.enclosure_is_wide = report.relative_width > wide_threshold;
  report.double_escapes =
      !std::isnan(report.double_result) &&
      !report.enclosure.is_invalid() &&
      !report.enclosure.contains(report.double_result) &&
      // Rounding of the double path can step one ulp outside the exact
      // enclosure; only a material escape is reported.
      !(std::nextafter(report.double_result, report.enclosure.lo()) <=
            report.enclosure.hi() &&
        std::nextafter(report.double_result, report.enclosure.hi()) >=
            report.enclosure.lo());
  return report;
}

}  // namespace fpq::interval
